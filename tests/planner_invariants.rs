//! Planner invariants: the deployment auto-optimizer and the fleet
//! capacity planner must never emit a plan the SLO or the physics
//! contradicts.
//!
//! * the SLO search never returns a violating plan, across model families;
//! * capacity curves are monotone in the secure-memory budget;
//! * the round-robin fleet schedule conserves per-tenant request counts;
//! * the calibrated simulator brackets a live `ServeEngine` run's
//!   throughput within the stated tolerance.

use std::time::Duration;

use tbnet_core::pipeline::{run_pipeline, PipelineConfig};
use tbnet_core::planner::{
    capacity_curve, optimize_deployment, plan_fleet, pruned_spec, validate_against_live,
    FleetSchedule, SearchSpace, Slo, TenantDemand, TenantMix,
};
use tbnet_core::serve::{ServeConfig, ServeEngine};
use tbnet_core::CoreError;
use tbnet_data::{DatasetKind, SyntheticCifar};
use tbnet_models::{resnet, vgg, ModelSpec};
use tbnet_tee::CostModel;

fn zoo() -> Vec<ModelSpec> {
    vec![
        vgg::vgg_tiny(10, 3, (16, 16)),
        resnet::resnet20_tiny(10, 3, (16, 16)),
    ]
}

fn space() -> SearchSpace {
    SearchSpace {
        ratio: 0.2,
        min_channels: 2,
        max_prune_iters: 4,
        batches: vec![1, 2, 4, 8, 16],
    }
}

#[test]
fn search_never_returns_slo_violating_plan() {
    let cost = CostModel::raspberry_pi3();
    let slos = [
        Slo::new("generous", 10.0, 64 << 20, 0.0),
        Slo::new("latency-bound", 0.05, 64 << 20, 0.55),
        Slo::new("memory-bound", 10.0, 1 << 20, 0.45),
        Slo::new("balanced", 0.2, 4 << 20, 0.6),
    ];
    for victim in zoo() {
        for slo in &slos {
            match optimize_deployment(&victim, &space(), slo, &cost) {
                Ok(plan) => {
                    assert!(
                        plan.latency_s() <= slo.max_latency_s,
                        "{} / {}: latency {} over {}",
                        victim.name,
                        slo.name,
                        plan.latency_s(),
                        slo.max_latency_s
                    );
                    assert!(plan.secure_bytes() <= slo.secure_memory_bytes);
                    assert!(plan.capacity_retention >= slo.min_capacity_retention);
                    assert!(plan.rollback <= plan.prune_iters);
                    // The winning architectures stay simulatable and loadable.
                    plan.mt_spec.trace().unwrap();
                    plan.mr_spec.trace().unwrap();
                }
                Err(CoreError::NoFeasiblePlan { explored, .. }) => {
                    // Infeasibility must come with evidence of a real search.
                    assert!(explored > 0, "{}: empty search", slo.name);
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
    }
}

#[test]
fn capacity_curve_is_monotone_in_budget() {
    let cost = CostModel::raspberry_pi3();
    let vgg_victim = vgg::vgg_tiny(10, 3, (16, 16));
    let res_victim = resnet::resnet20_tiny(10, 3, (16, 16));
    let mix = vec![
        TenantMix {
            name: "vgg-heavy".into(),
            mt_spec: pruned_spec(&vgg_victim, 0.2, 2, 3).unwrap(),
            mr_spec: pruned_spec(&vgg_victim, 0.2, 2, 1).unwrap(),
            fraction: 3.0,
        },
        TenantMix {
            name: "resnet-light".into(),
            mt_spec: pruned_spec(&res_victim, 0.2, 2, 2).unwrap(),
            mr_spec: pruned_spec(&res_victim, 0.2, 2, 0).unwrap(),
            fraction: 1.0,
        },
    ];
    let budgets: Vec<usize> = (1..=16).map(|i| i * (1 << 20)).collect();
    let curve = capacity_curve(&mix, &cost, &budgets, &[1, 2, 4, 8, 16]).unwrap();
    assert_eq!(curve.points.len(), budgets.len());
    for pair in curve.points.windows(2) {
        assert!(pair[1].budget_bytes > pair[0].budget_bytes);
        assert!(
            pair[1].qps >= pair[0].qps - 1e-12,
            "capacity dipped between {} and {} MB",
            pair[0].budget_bytes >> 20,
            pair[1].budget_bytes >> 20
        );
    }
    // The knee exists and sits at the first ≥95%-of-max budget.
    let knee = curve.knee().expect("feasible curve has a knee");
    assert!(knee.qps >= 0.95 * curve.max_qps());
}

#[test]
fn fleet_schedule_conserves_per_tenant_requests() {
    let victim = vgg::vgg_tiny(10, 3, (16, 16));
    let tenants: Vec<TenantDemand> = [(2usize, 1usize, 4usize), (3, 2, 7), (4, 3, 1), (1, 0, 16)]
        .iter()
        .enumerate()
        .map(|(i, &(k, r, b))| TenantDemand {
            name: format!("tenant{i}"),
            mt_spec: pruned_spec(&victim, 0.2, 2, k).unwrap(),
            mr_spec: pruned_spec(&victim, 0.2, 2, r).unwrap(),
            batch: b,
            qps: 5.0,
        })
        .collect();
    // Request counts deliberately not divisible by the batch sizes.
    let requests = [13u64, 29, 5, 33];
    let sched = FleetSchedule::round_robin(&tenants, &requests).unwrap();
    assert_eq!(
        sched.served_per_tenant(tenants.len()),
        requests.to_vec(),
        "schedule lost or invented requests"
    );
    for slot in &sched.slots {
        assert!(slot.batch >= 1 && slot.batch <= tenants[slot.tenant].batch.max(1));
    }
    assert!(sched.amortization_factor() >= 1.0);
    // The same tenants pack into finitely many worlds under the pi3 budget.
    let cost = CostModel::raspberry_pi3();
    let fleet = plan_fleet(&tenants, &cost, cost.secure_memory_budget).unwrap();
    let placed: usize = fleet.worlds.iter().map(|w| w.tenants.len()).sum();
    assert_eq!(placed, tenants.len());
}

#[test]
fn calibrated_simulator_brackets_live_serving_throughput() {
    // A short live ServeEngine run on a trained smoke deployment; the
    // planner's validation hook must bracket its measured throughput.
    // Large enough that per-batch compute dominates the scheduling overhead
    // the stage timers cannot see (which a debug build inflates).
    let data = SyntheticCifar::generate(
        DatasetKind::Cifar10Like
            .config()
            .with_classes(3)
            .with_train_per_class(10)
            .with_test_per_class(8)
            .with_size(12, 12)
            .with_noise_std(0.25),
    );
    let spec = vgg::vgg_from_stages("planner-live", &[(12, 1), (12, 1)], 3, 3, (12, 12));
    let mut cfg = PipelineConfig::smoke();
    cfg.prune.drop_budget = 1.0;
    let artifacts = run_pipeline(&spec, &data, &cfg).expect("smoke pipeline trains");
    let model = artifacts.model;

    let serve_cfg = ServeConfig {
        ree_workers: 1,
        max_batch: 4,
        batch_linger: Duration::from_micros(100),
        queue_high_water: 1024, // saturation load must not shed
        default_deadline: Duration::from_secs(30),
        ..ServeConfig::default()
    };
    let engine =
        ServeEngine::start(&model, serve_cfg, tbnet_tee::FaultPlan::none()).expect("engine starts");
    // Enough requests that fixed costs (engine start, linger, drain) stop
    // dominating the wall clock the stage timers cannot see.
    let requests = 160usize;
    let started = std::time::Instant::now();
    for i in 0..requests {
        let image = data.test().gather(&[i % data.test().len()]).images;
        engine.submit(&image).expect("admission accepts");
    }
    let report = engine.shutdown();
    let elapsed = started.elapsed().as_secs_f64();
    let completed = (report.counts.answered + report.counts.degraded) as f64;
    assert!(completed > 0.0, "live run completed nothing");
    let measured_qps = completed / elapsed.max(1e-9);

    let mt = model.mt().spec();
    let mr = model.mr().spec();
    let tolerance = 4.0; // debug build on an arbitrary host: a wide, stated bracket
    let validation = validate_against_live(&report, &mt, &mr, measured_qps, tolerance).unwrap();
    assert!(
        validation.predicted_serial_qps <= validation.predicted_pipelined_qps,
        "bracket inverted: serial {} > pipelined {}",
        validation.predicted_serial_qps,
        validation.predicted_pipelined_qps
    );
    assert!(
        validation.within_tolerance,
        "measured {:.1} qps outside [{:.1}, {:.1}] × tolerance {}",
        validation.measured_qps,
        validation.predicted_serial_qps,
        validation.predicted_pipelined_qps,
        tolerance
    );
}
