//! Robustness of the pruning machinery under randomized masks and
//! randomized architectures — failure-injection style tests beyond the
//! curated unit cases.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use tbnet_core::pruning::{apply_masks_to_chain, prune_two_branch_once};
use tbnet_core::TwoBranchModel;
use tbnet_models::{vgg, ChainNet};
use tbnet_nn::{Layer, Mode};
use tbnet_tensor::Tensor;

fn random_keep_mask(channels: usize, bits: u64) -> Vec<bool> {
    // Derive a mask from the bits, forcing at least one kept channel.
    let mut mask: Vec<bool> = (0..channels).map(|i| (bits >> (i % 64)) & 1 == 1).collect();
    if !mask.iter().any(|&k| k) {
        mask[0] = true;
    }
    mask
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any valid random mask leaves a network that still runs forward with
    /// consistent shapes — pruning never wedges the model.
    #[test]
    fn random_masks_keep_network_runnable(
        c0 in 2usize..7,
        c1 in 2usize..7,
        bits0 in any::<u64>(),
        bits1 in any::<u64>(),
    ) {
        let spec = vgg::vgg_from_stages("p", &[(c0, 1), (c1, 1)], 3, 2, (8, 8));
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = ChainNet::from_spec(&spec, &mut rng).unwrap();
        let masks = vec![random_keep_mask(c0, bits0), random_keep_mask(c1, bits1)];
        apply_masks_to_chain(&mut net, &masks).unwrap();
        let kept0 = masks[0].iter().filter(|&&k| k).count();
        let kept1 = masks[1].iter().filter(|&&k| k).count();
        prop_assert_eq!(net.units()[0].out_channels(), kept0);
        prop_assert_eq!(net.units()[1].in_channels(), kept0);
        prop_assert_eq!(net.units()[1].out_channels(), kept1);
        let y = net.forward(&Tensor::zeros(&[2, 2, 8, 8]), Mode::Eval).unwrap();
        prop_assert_eq!(y.dims(), &[2, 3]);
        prop_assert!(y.all_finite());
        // The derived spec still validates after the rewrite.
        prop_assert!(net.spec().trace().is_ok());
    }

    /// Two-branch pruning with random masks keeps the branches congruent and
    /// the books consistent with the live shapes.
    #[test]
    fn random_masks_keep_branches_congruent(
        c0 in 3usize..7,
        bits in any::<u64>(),
    ) {
        let spec = vgg::vgg_from_stages("p", &[(c0, 1)], 3, 2, (8, 8));
        let mut rng = StdRng::seed_from_u64(8);
        let victim = ChainNet::from_spec(&spec, &mut rng).unwrap();
        let mut tb = TwoBranchModel::from_victim(&victim, &mut rng).unwrap();
        let masks = vec![random_keep_mask(c0, bits)];
        prune_two_branch_once(&mut tb, &masks).unwrap();
        prop_assert_eq!(
            tb.mr().units()[0].out_channels(),
            tb.mt().units()[0].out_channels()
        );
        prop_assert_eq!(tb.mt_book().unit(0).len(), tb.mt().units()[0].out_channels());
        // Still runs end to end.
        let y = tb.predict(&Tensor::zeros(&[1, 2, 8, 8])).unwrap();
        prop_assert_eq!(y.dims(), &[1, 3]);
    }

    /// Training after pruning produces finite gradients for every parameter
    /// (no stale optimizer state survives the rewrite).
    #[test]
    fn gradients_finite_after_pruning(bits in any::<u64>()) {
        use tbnet_nn::loss::softmax_cross_entropy;
        let spec = vgg::vgg_from_stages("p", &[(5, 1), (5, 1)], 3, 2, (8, 8));
        let mut rng = StdRng::seed_from_u64(9);
        let victim = ChainNet::from_spec(&spec, &mut rng).unwrap();
        let mut tb = TwoBranchModel::from_victim(&victim, &mut rng).unwrap();
        let masks = vec![random_keep_mask(5, bits), random_keep_mask(5, bits.rotate_left(13))];
        prune_two_branch_once(&mut tb, &masks).unwrap();
        let x = tbnet_tensor::init::randn(&[2, 2, 8, 8], 1.0, &mut rng);
        tb.zero_grad();
        let logits = tb.forward(&x, Mode::Train).unwrap();
        let out = softmax_cross_entropy(&logits, &[0, 1]).unwrap();
        tb.backward(&out.grad).unwrap();
        let mut all_finite = true;
        tb.visit_params(&mut |p| all_finite &= p.grad.all_finite());
        prop_assert!(all_finite);
    }
}

#[test]
fn repeated_pruning_to_the_floor_is_safe() {
    // Prune the same model many times; the min-channel floor must stop the
    // process without errors or empty layers.
    use tbnet_core::pruning::{build_masks, composite_scores};
    let spec = vgg::vgg_from_stages("p", &[(8, 1), (8, 1)], 3, 2, (8, 8));
    let mut rng = StdRng::seed_from_u64(10);
    let victim = ChainNet::from_spec(&spec, &mut rng).unwrap();
    let mut tb = TwoBranchModel::from_victim(&victim, &mut rng).unwrap();
    for _ in 0..12 {
        let scores = composite_scores(&tb).unwrap();
        let masks = build_masks(&tb, &scores, 0.4, 2).unwrap();
        prune_two_branch_once(&mut tb, &masks).unwrap();
    }
    for u in tb.mt().units() {
        assert!(u.out_channels() >= 2);
    }
    let y = tb.predict(&Tensor::zeros(&[1, 2, 8, 8])).unwrap();
    assert_eq!(y.dims(), &[1, 3]);
}
