//! Sequential-parity suite for the data-parallel pruning fine-tune (paper
//! steps ③–⑤): after composite-weight pruning, fine-tuning the pruned
//! two-branch model through the generic `DataParallelTrainer` at
//! W ∈ {1, 2, 4} must match the sequential fine-tune loop within 1e-5
//! (loss components, weights of both branches, BN running statistics) —
//! and pruned channels must *stay* pruned: branch widths, channel books
//! and merge alignment are invariant across data-parallel fine-tune steps.

use rand::rngs::StdRng;
use rand::SeedableRng;

use tbnet_core::pruning::{
    build_masks, composite_scores, iterative_prune_with_workers, prune_two_branch_once,
    total_channels, PruneConfig,
};
use tbnet_core::transfer::{
    evaluate_two_branch, train_two_branch_seq, train_two_branch_with_workers, TransferConfig,
};
use tbnet_core::TwoBranchModel;
use tbnet_data::{DatasetKind, SyntheticCifar};
use tbnet_models::{vgg, ChainNet};
use tbnet_tensor::{par, Tensor};

const TOL: f32 = 1e-5;

/// Forces multi-shard pool paths on few-core dev hosts, but respects an
/// explicit `TBNET_THREADS` (the CI thread matrix runs this suite at both
/// 1 and 4 threads — overriding it here would collapse the legs).
fn pin_threads() {
    if std::env::var("TBNET_THREADS").is_err() {
        par::set_max_threads(4);
    }
}

fn data() -> SyntheticCifar {
    SyntheticCifar::generate(
        DatasetKind::Cifar10Like
            .config()
            .with_classes(4)
            .with_train_per_class(12)
            .with_test_per_class(6)
            .with_size(8, 8)
            .with_noise_std(0.3),
    )
}

fn cfg(epochs: usize) -> TransferConfig {
    TransferConfig {
        epochs,
        batch_size: 16,
        ..TransferConfig::paper_scaled(epochs)
    }
}

/// A transferred-then-pruned two-branch model: the state the per-iteration
/// fine-tune of Alg. 1 actually starts from.
fn pruned_model(seed: u64) -> TwoBranchModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = vgg::vgg_from_stages("parity-ft", &[(8, 1), (8, 1)], 4, 3, (8, 8));
    let victim = ChainNet::from_spec(&spec, &mut rng).unwrap();
    let mut tb = TwoBranchModel::from_victim(&victim, &mut rng).unwrap();
    let d = data();
    // A short transfer shapes the γ so composite scores are meaningful.
    train_two_branch_seq(&mut tb, d.train(), &cfg(2)).unwrap();
    let scores = composite_scores(&tb).unwrap();
    let masks = build_masks(&tb, &scores, 0.25, 2).unwrap();
    prune_two_branch_once(&mut tb, &masks).unwrap();
    tb
}

fn collect_params(model: &mut TwoBranchModel) -> Vec<Tensor> {
    let mut out = Vec::new();
    model.visit_params(&mut |p| out.push(p.value.clone()));
    out
}

fn max_abs_diff(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.dims(), b.dims(), "shape drift between trainers");
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max)
}

/// Widths, books and alignment — everything pruning rewrote and fine-tuning
/// must preserve.
fn prune_fingerprint(model: &TwoBranchModel) -> (Vec<usize>, Vec<Vec<usize>>, Vec<Vec<usize>>) {
    let widths = model
        .mr()
        .units()
        .iter()
        .chain(model.mt().units())
        .map(|u| u.out_channels())
        .collect();
    let mr_book = (0..model.unit_count())
        .map(|i| model.mr_book().unit(i).to_vec())
        .collect();
    let mt_book = (0..model.unit_count())
        .map(|i| model.mt_book().unit(i).to_vec())
        .collect();
    (widths, mr_book, mt_book)
}

/// Fine-tunes the same pruned model sequentially and data-parallel and
/// asserts full numeric parity plus mask preservation.
fn assert_finetune_parity(workers: usize, seed: u64) {
    let d = data();
    let pruned = pruned_model(seed);
    let before = prune_fingerprint(&pruned);
    let mut seq = pruned.clone();
    let mut dp = pruned;
    let cfg = cfg(3).with_lambda(1e-4);

    let seq_hist = train_two_branch_seq(&mut seq, d.train(), &cfg).unwrap();
    let dp_hist = train_two_branch_with_workers(&mut dp, d.train(), &cfg, workers).unwrap();

    for (s, p) in seq_hist.iter().zip(&dp_hist) {
        assert!(
            (s.ce_loss - p.ce_loss).abs() < TOL,
            "W={workers} epoch {}: fine-tune ce {} vs {}",
            s.epoch,
            s.ce_loss,
            p.ce_loss
        );
        assert!(
            (s.sparsity_loss - p.sparsity_loss).abs() < TOL,
            "W={workers} epoch {}: fine-tune sparsity diverged",
            s.epoch
        );
    }
    for (i, (s, p)) in collect_params(&mut seq)
        .iter()
        .zip(&collect_params(&mut dp))
        .enumerate()
    {
        let diff = max_abs_diff(s, p);
        assert!(diff < TOL, "W={workers} param {i}: max |Δ| = {diff}");
    }
    for (i, (su, pu)) in seq.mr().units().iter().zip(dp.mr().units()).enumerate() {
        assert!(
            max_abs_diff(su.bn().running_mean(), pu.bn().running_mean()) < TOL
                && max_abs_diff(su.bn().running_var(), pu.bn().running_var()) < TOL,
            "W={workers} M_R BN {i} running stats diverged"
        );
    }
    for (i, (su, pu)) in seq.mt().units().iter().zip(dp.mt().units()).enumerate() {
        assert!(
            max_abs_diff(su.bn().running_mean(), pu.bn().running_mean()) < TOL
                && max_abs_diff(su.bn().running_var(), pu.bn().running_var()) < TOL,
            "W={workers} M_T BN {i} running stats diverged"
        );
    }

    // Pruned masks are preserved across every data-parallel fine-tune
    // step: widths, both channel books and the identity alignment are
    // exactly what pruning left behind.
    assert_eq!(
        prune_fingerprint(&dp),
        before,
        "W={workers}: fine-tune must not disturb pruning state"
    );
    assert!(
        dp.align().iter().all(|a| a.is_none()),
        "W={workers}: iterative pruning keeps identity alignment"
    );
    let batch = d.test().as_batch();
    let ys = seq.predict(&batch.images).unwrap();
    let yp = dp.predict(&batch.images).unwrap();
    assert!(max_abs_diff(&ys, &yp) < 1e-4, "W={workers} logits diverged");
}

#[test]
fn one_worker_matches_sequential() {
    pin_threads();
    assert_finetune_parity(1, 60);
}

#[test]
fn two_workers_match_sequential() {
    pin_threads();
    assert_finetune_parity(2, 61);
}

#[test]
fn four_workers_match_sequential() {
    pin_threads();
    assert_finetune_parity(4, 62);
}

#[test]
fn iterative_prune_with_workers_shrinks_and_preserves_masks() {
    // The full Alg. 1 loop with a data-parallel fine-tune: channels shrink
    // monotonically, every kept iteration's fine-tune leaves the books
    // congruent with the live widths, and the final model still predicts.
    pin_threads();
    let d = data();
    let mut rng = StdRng::seed_from_u64(63);
    let spec = vgg::vgg_from_stages("prune-dp", &[(8, 1), (8, 1)], 4, 3, (8, 8));
    let victim = ChainNet::from_spec(&spec, &mut rng).unwrap();
    let mut tb = TwoBranchModel::from_victim(&victim, &mut rng).unwrap();
    train_two_branch_with_workers(&mut tb, d.train(), &cfg(3), 4).unwrap();
    let ref_acc = evaluate_two_branch(&mut tb, d.test()).unwrap();
    let before = total_channels(&tb);
    let cfg = PruneConfig {
        ratio: 0.2,
        min_channels: 2,
        drop_budget: 1.0,
        max_iterations: 2,
        finetune: TransferConfig {
            epochs: 2,
            batch_size: 16,
            ..TransferConfig::paper_scaled(2)
        },
    };
    let outcome =
        iterative_prune_with_workers(&mut tb, d.train(), d.test(), ref_acc, &cfg, 4).unwrap();
    assert!(total_channels(&tb) < before);
    assert!(!outcome.history.is_empty());
    for (i, (ru, tu)) in tb.mr().units().iter().zip(tb.mt().units()).enumerate() {
        assert_eq!(
            tb.mr_book().unit(i).len(),
            ru.out_channels(),
            "M_R book/width mismatch at unit {i}"
        );
        assert_eq!(
            tb.mt_book().unit(i).len(),
            tu.out_channels(),
            "M_T book/width mismatch at unit {i}"
        );
    }
    let batch = d.test().as_batch();
    let logits = tb.predict(&batch.images).unwrap();
    assert_eq!(logits.dims(), &[batch.len(), 4]);
}
