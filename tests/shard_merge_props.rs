//! Property tests for the shard-merge algebra underneath data-parallel
//! training: gradients summed over arbitrary contiguous shard splits equal
//! the whole-batch gradient, and the weighted BatchNorm mean/variance merge
//! reproduces whole-batch statistics for randomized shard sizes.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tbnet_nn::loss::{softmax_cross_entropy, softmax_cross_entropy_scaled};
use tbnet_nn::merge_batch_stats;
use tbnet_tensor::{init, ops, Tensor};

/// Draws a random contiguous split of `0..n` into 1..=n parts.
fn random_split(n: usize, rng: &mut StdRng) -> Vec<std::ops::Range<usize>> {
    let mut cuts: Vec<usize> = (1..n).filter(|_| rng.gen_bool(0.4)).collect();
    cuts.push(n);
    let mut out = Vec::with_capacity(cuts.len());
    let mut start = 0;
    for c in cuts {
        out.push(start..c);
        start = c;
    }
    out
}

/// Copies sample rows `range` out of an `[N, …]` tensor.
fn shard(x: &Tensor, range: &std::ops::Range<usize>) -> Tensor {
    let dims = x.dims();
    let sample: usize = dims[1..].iter().product();
    let mut shape = dims.to_vec();
    shape[0] = range.len();
    Tensor::from_vec(
        x.as_slice()[range.start * sample..range.end * sample].to_vec(),
        &shape,
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// BN weighted mean/var merge over random shard splits equals the
    /// whole-batch statistics.
    #[test]
    fn bn_stat_merge_matches_whole_batch(
        n in 2usize..9,
        c in 1usize..4,
        hw in 2usize..5,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = init::randn(&[n, c, hw, hw], 1.5, &mut rng);
        let (whole_m, whole_v) = ops::channel_mean_var(&x).unwrap();
        let parts: Vec<(Tensor, Tensor, usize)> = random_split(n, &mut rng)
            .iter()
            .map(|r| {
                let xs = shard(&x, r);
                let (m, v) = ops::channel_mean_var(&xs).unwrap();
                (m, v, r.len() * hw * hw)
            })
            .collect();
        let (merged_m, merged_v) = merge_batch_stats(&parts).unwrap();
        for ci in 0..c {
            let dm = (merged_m.as_slice()[ci] - whole_m.as_slice()[ci]).abs();
            let dv = (merged_v.as_slice()[ci] - whole_v.as_slice()[ci]).abs();
            prop_assert!(dm < 1e-5, "channel {ci}: mean diff {dm}");
            prop_assert!(dv < 1e-5, "channel {ci}: var diff {dv}");
        }
    }

    /// Convolution weight gradients are additive over shard splits: the sum
    /// of per-shard gradients equals the whole-batch gradient.
    #[test]
    fn conv_weight_grad_sums_over_shards(
        n in 2usize..7,
        c in 1usize..3,
        hw in 3usize..6,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = init::randn(&[n, c, hw, hw], 1.0, &mut rng);
        let w = init::randn(&[3, c, 3, 3], 0.5, &mut rng);
        let g = init::randn(&[n, 3, hw, hw], 1.0, &mut rng);
        let whole = ops::conv2d_backward(&x, &w, &g, 1, 1, false).unwrap();
        let mut summed = Tensor::zeros(w.dims());
        for r in random_split(n, &mut rng) {
            let grads = ops::conv2d_backward(&shard(&x, &r), &w, &shard(&g, &r), 1, 1, false)
                .unwrap();
            ops::add_assign(&mut summed, &grads.grad_weight).unwrap();
        }
        for (a, b) in summed.as_slice().iter().zip(whole.grad_weight.as_slice()) {
            prop_assert!(
                (a - b).abs() < 1e-4 + 1e-4 * b.abs(),
                "weight grad shard sum {a} vs whole {b}"
            );
        }
    }

    /// Per-shard losses scaled by the global batch size recompose the
    /// whole-batch loss, and shard gradients concatenate to the whole-batch
    /// gradient.
    #[test]
    fn scaled_loss_shards_recompose(
        n in 2usize..9,
        classes in 2usize..5,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let logits = init::randn(&[n, classes], 2.0, &mut rng);
        let labels: Vec<usize> = (0..n).map(|_| rng.gen_range(0..classes)).collect();
        let whole = softmax_cross_entropy(&logits, &labels).unwrap();
        let mut loss_sum = 0.0f32;
        let mut grads: Vec<f32> = Vec::with_capacity(n * classes);
        for r in random_split(n, &mut rng) {
            let out = softmax_cross_entropy_scaled(
                &shard(&logits, &r),
                &labels[r.clone()],
                n,
            )
            .unwrap();
            loss_sum += out.loss;
            grads.extend_from_slice(out.grad.as_slice());
        }
        prop_assert!((loss_sum - whole.loss).abs() < 1e-5);
        for (a, b) in grads.iter().zip(whole.grad.as_slice()) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }
}
