//! End-to-end integration: the six-step TBNet pipeline across crates
//! (data → models → nn → core → tee).

use tbnet_core::attack::direct_use_attack;
use tbnet_core::deploy::{run_split_inference, DeploymentPlan};
use tbnet_core::pipeline::{run_pipeline, PipelineConfig};
use tbnet_data::{DatasetKind, SyntheticCifar};
use tbnet_models::{resnet, vgg, ModelSpec};
use tbnet_tee::CostModel;

fn tiny_data(classes: usize) -> SyntheticCifar {
    SyntheticCifar::generate(
        DatasetKind::Cifar10Like
            .config()
            .with_classes(classes)
            .with_train_per_class(14)
            .with_test_per_class(6)
            .with_size(12, 12)
            .with_noise_std(1.0),
    )
}

fn smoke_cfg() -> PipelineConfig {
    let mut cfg = PipelineConfig::smoke();
    cfg.prune.drop_budget = 1.0; // keep pruning iterations deterministic here
    cfg
}

fn vgg_spec(classes: usize) -> ModelSpec {
    vgg::vgg_from_stages("vgg-it", &[(10, 2), (12, 1)], classes, 3, (12, 12))
}

#[test]
fn vgg_pipeline_produces_consistent_artifacts() {
    let data = tiny_data(4);
    let artifacts = run_pipeline(&vgg_spec(4), &data, &smoke_cfg()).unwrap();

    // Finalized, diverged, and every branch still traces as a valid model.
    assert!(artifacts.model.is_finalized());
    assert!(artifacts.mr_spec().trace().is_ok());
    assert!(artifacts.mt_spec().trace().is_ok());
    let mr_total: usize = artifacts
        .mr_spec()
        .units
        .iter()
        .map(|u| u.out_channels)
        .sum();
    let mt_total: usize = artifacts
        .mt_spec()
        .units
        .iter()
        .map(|u| u.out_channels)
        .sum();
    assert!(mr_total >= mt_total);

    // Accuracy values live in [0, 1] and training history is populated.
    assert!((0.0..=1.0).contains(&artifacts.victim_acc));
    assert!((0.0..=1.0).contains(&artifacts.tbnet_acc));
    assert!(!artifacts.transfer_history.is_empty());
}

#[test]
fn resnet_pipeline_handles_skips_and_groups() {
    let data = tiny_data(4);
    let spec = resnet::resnet_from_stages("res-it", &[8, 10], 2, 4, 3, (12, 12));
    let artifacts = run_pipeline(&spec, &data, &smoke_cfg()).unwrap();
    // M_T keeps residual structure; M_R lost it.
    assert!(artifacts
        .mt_spec()
        .units
        .iter()
        .any(|u| u.skip_from.is_some()));
    assert!(artifacts
        .mr_spec()
        .units
        .iter()
        .all(|u| u.skip_from.is_none()));
    // Residual groups stayed consistent through pruning: spec still validates.
    assert!(artifacts.mt_spec().trace().is_ok());
}

#[test]
fn split_inference_equals_monolithic_after_full_pipeline() {
    let data = tiny_data(3);
    let mut artifacts = run_pipeline(&vgg_spec(3), &data, &smoke_cfg()).unwrap();
    let batch = data.test().gather(&[0, 1, 2, 3, 4]);
    let expected = artifacts.model.predict(&batch.images).unwrap();
    let split = run_split_inference(&mut artifacts.model, &batch.images).unwrap();
    for (a, b) in split.logits.as_slice().iter().zip(expected.as_slice()) {
        assert!((a - b).abs() < 1e-4);
    }
    // Exactly one payload per unit plus the input crossed the channel.
    assert_eq!(
        split.channel.messages,
        artifacts.model.unit_count() as u64 + 1
    );
}

#[test]
fn deployment_plan_prices_finalized_pipeline() {
    let data = tiny_data(3);
    let artifacts = run_pipeline(&vgg_spec(3), &data, &smoke_cfg()).unwrap();
    let plan = DeploymentPlan::new(&artifacts.model, artifacts.victim.spec()).unwrap();
    let cost = CostModel::raspberry_pi3();
    let lat = plan.latency(&cost).unwrap();
    let mem = plan.memory().unwrap();
    assert!(lat.baseline.total_s > 0.0);
    assert!(lat.tbnet.total_s > 0.0);
    assert!(mem.tbnet.weight_bytes <= mem.baseline.weight_bytes);
}

#[test]
fn attacker_cannot_beat_tbnet_by_direct_use() {
    let data = tiny_data(4);
    let artifacts = run_pipeline(&vgg_spec(4), &data, &smoke_cfg()).unwrap();
    let attack = direct_use_attack(&artifacts.model, data.test()).unwrap();
    assert!(
        attack <= artifacts.tbnet_acc + 0.10,
        "attack {attack} vs tbnet {}",
        artifacts.tbnet_acc
    );
}

#[test]
fn pipeline_is_deterministic_given_seeds() {
    let data = tiny_data(3);
    let a = run_pipeline(&vgg_spec(3), &data, &smoke_cfg()).unwrap();
    let b = run_pipeline(&vgg_spec(3), &data, &smoke_cfg()).unwrap();
    assert_eq!(a.victim_acc, b.victim_acc);
    assert_eq!(a.tbnet_acc, b.tbnet_acc);
    assert_eq!(a.prune_history.len(), b.prune_history.len());
}
