//! Security-property integration tests: the design requirements of the paper
//! (§3.1) hold in the implementation, not just in the prose.

use rand::SeedableRng;

use tbnet_core::transfer::{train_two_branch, TransferConfig};
use tbnet_core::TwoBranchModel;
use tbnet_data::{DatasetKind, SyntheticCifar};
use tbnet_models::{resnet, vgg, ChainNet};
use tbnet_tee::channel::one_way;
use tbnet_tee::{Deployment, SecureWorld};

fn data() -> SyntheticCifar {
    SyntheticCifar::generate(
        DatasetKind::Cifar10Like
            .config()
            .with_classes(4)
            .with_train_per_class(12)
            .with_test_per_class(6)
            .with_size(12, 12)
            .with_noise_std(1.0),
    )
}

/// Requirement: one-way context switch. The channel types make TEE→REE
/// traffic unwritable; this test documents the API surface.
#[test]
fn channel_is_one_way_by_construction() {
    let (ree, tee) = one_way::<Vec<f32>>();
    ree.send(vec![1.0], 4);
    assert_eq!(tee.recv(), Some(vec![1.0]));
    // `tee` has no send method and `ree` has no recv method. The following
    // lines do not compile (kept as documentation):
    // tee.send(vec![2.0], 4);
    // ree.recv();
}

/// Requirement: TEE contents are a black box. The secure world exposes only
/// opaque handles and byte counts — no weight accessors exist.
#[test]
fn secure_world_does_not_leak_contents() {
    let mut world = SecureWorld::new(64 << 20);
    let spec = vgg::vgg_tiny(10, 3, (16, 16));
    let handle = world.load_model(&spec, Deployment::SecureBranch).unwrap();
    // All an observer gets is sizes.
    let fp = world.footprint(handle).unwrap();
    assert!(fp.total() > 0);
}

/// Requirement: reduced confidentiality exposure. After knowledge transfer,
/// the weights visible in REE (`M_R`) are no longer the victim's weights.
#[test]
fn transfer_moves_mr_away_from_victim_weights() {
    let d = data();
    let spec = vgg::vgg_from_stages("v", &[(8, 1), (8, 1)], 4, 3, (12, 12));
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let victim = ChainNet::from_spec(&spec, &mut rng).unwrap();
    let mut tb = TwoBranchModel::from_victim(&victim, &mut rng).unwrap();

    let victim_w = victim.units()[0].conv().weight().value.clone();
    // Before transfer M_R *is* the victim.
    assert_eq!(
        tb.mr().units()[0].conv().weight().value.as_slice(),
        victim_w.as_slice()
    );
    train_two_branch(&mut tb, d.train(), &TransferConfig::paper_scaled(3)).unwrap();
    let drift: f32 = tb.mr().units()[0]
        .conv()
        .weight()
        .value
        .as_slice()
        .iter()
        .zip(victim_w.as_slice())
        .map(|(a, b)| (a - b).abs())
        .sum();
    assert!(drift > 0.0, "M_R weights did not move off the victim's");
}

/// Requirement: architectural confidentiality. A finalized deployment never
/// has `M_R` and `M_T` with identical channel widths when pruning succeeded,
/// and `M_R` carries no skip metadata for residual victims.
#[test]
fn resnet_mr_exposes_no_residual_architecture() {
    let d = data();
    let spec = resnet::resnet_from_stages("r", &[8, 10], 2, 4, 3, (12, 12));
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let victim = ChainNet::from_spec(&spec, &mut rng).unwrap();
    let tb = TwoBranchModel::from_victim(&victim, &mut rng).unwrap();
    let stolen = tb.extract_unsecured_branch();
    assert!(stolen.spec().units.iter().all(|u| u.skip_from.is_none()));
    let _ = d;
}

/// Requirement: the TBNet output comes from the TEE. The REE-side classifier
/// (victim leftover inside `M_R`) receives no gradient during transfer, so
/// an attacker cannot read a trained classifier out of REE memory.
#[test]
fn ree_classifier_receives_no_training_signal() {
    let d = data();
    let spec = vgg::vgg_from_stages("v", &[(8, 1)], 4, 3, (12, 12));
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let victim = ChainNet::from_spec(&spec, &mut rng).unwrap();
    let mut tb = TwoBranchModel::from_victim(&victim, &mut rng).unwrap();
    train_two_branch(&mut tb, d.train(), &TransferConfig::paper_scaled(2)).unwrap();
    assert_eq!(tb.mr().head().linear().weight().grad.l1_norm(), 0.0);
}

/// The secure world enforces its budget: an oversized secure branch is
/// rejected rather than silently spilling to normal memory.
#[test]
fn oversized_secure_branch_rejected() {
    let mut world = SecureWorld::new(1024); // 1 KiB
    let spec = vgg::vgg_tiny(10, 3, (16, 16));
    assert!(world.load_model(&spec, Deployment::SecureBranch).is_err());
    assert_eq!(world.used(), 0);
}
