//! Sequential-parity suite for the data-parallel training engine: for
//! W ∈ {1, 2, 4} workers, the loss curve, final weights and BatchNorm
//! running statistics must match the sequential trainer within 1e-5, and
//! the work must flow through the persistent pool in `tbnet_tensor::par`
//! (no per-call thread spawns on the training hot path).

use rand::rngs::StdRng;
use rand::SeedableRng;

use tbnet_core::dp_train::train_victim_dp;
use tbnet_core::train::{train_victim, TrainConfig};
use tbnet_data::{DatasetKind, SyntheticCifar};
use tbnet_models::{resnet, vgg, ChainNet, ModelSpec};
use tbnet_nn::{Layer, Mode};
use tbnet_tensor::{par, Tensor};

const TOL: f32 = 1e-5;

/// Forces multi-shard pool paths on few-core dev hosts, but respects an
/// explicit `TBNET_THREADS` (the CI thread matrix runs this suite at both
/// 1 and 4 threads — overriding it here would collapse the legs).
fn pin_threads() {
    if std::env::var("TBNET_THREADS").is_err() {
        par::set_max_threads(4);
    }
}

fn data() -> SyntheticCifar {
    SyntheticCifar::generate(
        DatasetKind::Cifar10Like
            .config()
            .with_classes(4)
            .with_train_per_class(12)
            .with_test_per_class(6)
            .with_size(8, 8)
            .with_noise_std(0.3),
    )
}

fn cfg(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 16,
        ..TrainConfig::paper_scaled(epochs)
    }
}

fn collect_params(net: &mut ChainNet) -> Vec<Tensor> {
    let mut out = Vec::new();
    net.visit_params(&mut |p| out.push(p.value.clone()));
    out
}

fn collect_bn_stats(net: &ChainNet) -> Vec<(Tensor, Tensor)> {
    net.units()
        .iter()
        .map(|u| (u.bn().running_mean().clone(), u.bn().running_var().clone()))
        .collect()
}

fn max_abs_diff(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.dims(), b.dims(), "shape drift between trainers");
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max)
}

/// Runs the sequential and data-parallel trainers from identical initial
/// state and asserts epoch-by-epoch loss parity plus final weight and BN
/// running-stat parity.
fn assert_parity(spec: &ModelSpec, workers: usize, seed: u64) {
    let d = data();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seq_net = ChainNet::from_spec(spec, &mut rng).unwrap();
    let mut dp_net = seq_net.clone();
    let cfg = cfg(3);

    let seq_hist = train_victim(&mut seq_net, d.train(), &cfg).unwrap();
    let dp_hist = train_victim_dp(&mut dp_net, d.train(), &cfg, workers).unwrap();

    assert_eq!(seq_hist.len(), dp_hist.len());
    for (s, p) in seq_hist.iter().zip(&dp_hist) {
        assert!(
            (s.train_loss - p.train_loss).abs() < TOL,
            "W={workers} epoch {}: sequential loss {} vs data-parallel {}",
            s.epoch,
            s.train_loss,
            p.train_loss
        );
        assert!(
            (s.train_acc - p.train_acc).abs() < TOL,
            "W={workers} epoch {}: accuracy diverged",
            s.epoch
        );
    }

    for (i, (s, p)) in collect_params(&mut seq_net)
        .iter()
        .zip(&collect_params(&mut dp_net))
        .enumerate()
    {
        let diff = max_abs_diff(s, p);
        assert!(diff < TOL, "W={workers} param {i}: max |Δ| = {diff}");
    }

    for (i, ((sm, sv), (pm, pv))) in collect_bn_stats(&seq_net)
        .iter()
        .zip(&collect_bn_stats(&dp_net))
        .enumerate()
    {
        assert!(
            max_abs_diff(sm, pm) < TOL,
            "W={workers} BN {i} running mean diverged"
        );
        assert!(
            max_abs_diff(sv, pv) < TOL,
            "W={workers} BN {i} running var diverged"
        );
    }

    // Both nets predict identically after training.
    let batch = d.test().as_batch();
    let ys = seq_net.forward(&batch.images, Mode::Eval).unwrap();
    let yp = dp_net.forward(&batch.images, Mode::Eval).unwrap();
    assert!(max_abs_diff(&ys, &yp) < 1e-4, "W={workers} logits diverged");
}

fn vgg_spec() -> ModelSpec {
    vgg::vgg_from_stages("parity-vgg", &[(8, 1), (8, 1)], 4, 3, (8, 8))
}

#[test]
fn one_worker_matches_sequential() {
    pin_threads();
    assert_parity(&vgg_spec(), 1, 40);
}

#[test]
fn two_workers_match_sequential() {
    pin_threads();
    assert_parity(&vgg_spec(), 2, 41);
}

#[test]
fn four_workers_match_sequential() {
    pin_threads();
    assert_parity(&vgg_spec(), 4, 42);
}

#[test]
fn residual_model_matches_sequential_across_workers() {
    // Skip connections exercise the cross-unit gradient accumulation and
    // the shard-local skip-gradient path of the engine.
    pin_threads();
    let spec = resnet::resnet_from_stages("parity-res", &[6, 8], 2, 4, 3, (8, 8));
    assert_parity(&spec, 2, 43);
    assert_parity(&spec, 4, 43);
}

#[test]
fn training_runs_on_the_persistent_pool() {
    // Force multi-chunk paths even on a single-core host so the
    // multi-shard machinery actually executes.
    pin_threads();
    if par::max_threads() < 2 {
        // TBNET_THREADS=1 runs fully serial by design — no pool workers to
        // observe (the thread-matrix 1-thread leg covers the inline path).
        return;
    }
    let d = data();
    let mut rng = StdRng::seed_from_u64(44);
    let net = ChainNet::from_spec(&vgg_spec(), &mut rng).unwrap();
    let cfg = cfg(1);

    // Warm-up: pool workers come up lazily on first demand.
    let mut warm = net.clone();
    train_victim_dp(&mut warm, d.train(), &cfg, 4).unwrap();
    let workers_after_warmup = par::pool_workers();
    assert!(
        workers_after_warmup >= 1,
        "data-parallel training must engage the pool"
    );

    // Steady state: the job counter advances (shard phases run as pool
    // tasks) while the worker count stays flat — the hot path spawns no
    // threads.
    let jobs_before = par::pool_jobs_completed();
    let mut dp_net = net.clone();
    train_victim_dp(&mut dp_net, d.train(), &cfg, 4).unwrap();
    assert!(
        par::pool_jobs_completed() > jobs_before,
        "training steps must submit pool jobs"
    );
    assert_eq!(
        par::pool_workers(),
        workers_after_warmup,
        "steady-state training must not spawn threads"
    );

    // The Parallel backend's kernels ride the same pool: a plain sequential
    // training run (Parallel backend kernels inside) also advances the
    // shared job counter without growing the worker set.
    let jobs_before = par::pool_jobs_completed();
    let mut seq_net = net.clone();
    train_victim(&mut seq_net, d.train(), &cfg).unwrap();
    assert!(
        par::pool_jobs_completed() >= jobs_before,
        "kernel chunking shares the same pool"
    );
    assert_eq!(par::pool_workers(), workers_after_warmup);
}
