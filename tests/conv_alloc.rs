//! Steady-state allocation guarantees of the fused convolution engine.
//!
//! Two contracts, asserted with a counting global allocator (this
//! integration test is its own binary, so the allocator hook and the
//! process-global arena counters see no other tests):
//!
//! 1. **Warmed-up conv calls allocate only their returned tensors.** After
//!    one warm-up call per geometry, a forward allocates exactly the output
//!    tensor and a backward exactly its gradients — every im2col panel,
//!    operand pack and partial accumulator comes from the thread-local
//!    arena, and the arena itself stops growing.
//! 2. **Training reaches arena steady state after one step.** A second
//!    data-parallel training step on the same batch geometry draws every
//!    scratch buffer from warm arenas: zero new arena growth (mirroring the
//!    pool-usage assertions in `tests/train_parity.rs`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::StdRng;
use rand::SeedableRng;
use tbnet_core::dp_train::DataParallelTrainer;
use tbnet_data::Batch;
use tbnet_models::{vgg, ChainNet};
use tbnet_nn::optim::Sgd;
use tbnet_tensor::{arena, init, par, BackendKind, Tensor};

struct CountingAlloc;

static ALLOCATED: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATED.fetch_add(
            new_size.saturating_sub(layout.size()) as u64,
            Ordering::Relaxed,
        );
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocated_bytes() -> u64 {
    ALLOCATED.load(Ordering::Relaxed)
}

/// Per-tensor bookkeeping slack (shape vector, `Vec` rounding): generous,
/// still orders of magnitude below any scratch buffer these kernels need.
const SLACK: u64 = 1024;

fn tensor_bytes(t: &Tensor) -> u64 {
    (t.numel() * std::mem::size_of::<f32>()) as u64
}

/// Asserts that one warmed-up forward + backward pair on `stride`/`pad`
/// geometry allocates only its returned tensors and grows no arena.
fn assert_steady_state(x: &Tensor, w: &Tensor, stride: usize, pad: usize, label: &str) {
    let parallel = BackendKind::Parallel.imp();
    let packed = tbnet_tensor::ops::PackedConv2dWeight::new(w).unwrap();
    // Warm up: arenas grow to this geometry's working set.
    let out = parallel
        .conv2d_forward_packed(x, &packed, None, stride, pad)
        .unwrap();
    let grad = init::randn(out.dims(), 1.0, &mut StdRng::seed_from_u64(7));
    let _ = parallel
        .conv2d_backward_packed(x, &packed, &grad, stride, pad, false)
        .unwrap();

    let arena_before = arena::reserved_elems();
    let a0 = allocated_bytes();
    let out2 = parallel
        .conv2d_forward_packed(x, &packed, None, stride, pad)
        .unwrap();
    let fwd_delta = allocated_bytes() - a0;
    let fwd_budget = tensor_bytes(&out2) + SLACK;
    assert!(
        fwd_delta <= fwd_budget,
        "{label}: second forward allocated {fwd_delta} B, budget {fwd_budget} B \
         (output only) — scratch leaked to the heap"
    );

    let a0 = allocated_bytes();
    let grads = parallel
        .conv2d_backward_packed(x, &packed, &grad, stride, pad, false)
        .unwrap();
    let bwd_delta = allocated_bytes() - a0;
    let bwd_budget = tensor_bytes(&grads.grad_input) + tensor_bytes(&grads.grad_weight) + 2 * SLACK;
    assert!(
        bwd_delta <= bwd_budget,
        "{label}: second backward allocated {bwd_delta} B, budget {bwd_budget} B \
         (gradients only) — scratch leaked to the heap"
    );

    assert_eq!(
        arena::reserved_elems(),
        arena_before,
        "{label}: second-step conv calls must not grow the scratch arena"
    );
}

/// Depthwise twin of [`assert_steady_state`]: one warmed-up depthwise
/// forward + backward pair allocates only its returned tensors and grows no
/// arena.
fn assert_depthwise_steady_state(x: &Tensor, w: &Tensor, stride: usize, pad: usize, label: &str) {
    let parallel = BackendKind::Parallel.imp();
    let packed = tbnet_tensor::ops::PackedConv2dWeight::new(w).unwrap();
    let out = parallel
        .conv2d_depthwise_forward(x, &packed, None, stride, pad)
        .unwrap();
    let grad = init::randn(out.dims(), 1.0, &mut StdRng::seed_from_u64(7));
    let _ = parallel
        .conv2d_depthwise_backward(x, &packed, &grad, stride, pad, false)
        .unwrap();

    let arena_before = arena::reserved_elems();
    let a0 = allocated_bytes();
    let out2 = parallel
        .conv2d_depthwise_forward(x, &packed, None, stride, pad)
        .unwrap();
    let fwd_delta = allocated_bytes() - a0;
    let fwd_budget = tensor_bytes(&out2) + SLACK;
    assert!(
        fwd_delta <= fwd_budget,
        "{label}: second forward allocated {fwd_delta} B, budget {fwd_budget} B \
         (output only) — scratch leaked to the heap"
    );

    let a0 = allocated_bytes();
    let grads = parallel
        .conv2d_depthwise_backward(x, &packed, &grad, stride, pad, false)
        .unwrap();
    let bwd_delta = allocated_bytes() - a0;
    let bwd_budget = tensor_bytes(&grads.grad_input) + tensor_bytes(&grads.grad_weight) + 2 * SLACK;
    assert!(
        bwd_delta <= bwd_budget,
        "{label}: second backward allocated {bwd_delta} B, budget {bwd_budget} B \
         (gradients only) — scratch leaked to the heap"
    );

    assert_eq!(
        arena::reserved_elems(),
        arena_before,
        "{label}: second-step depthwise calls must not grow the scratch arena"
    );
}

fn synthetic_batch(n: usize, c: usize, hw: usize, classes: usize, seed: u64) -> Batch {
    let mut rng = StdRng::seed_from_u64(seed);
    Batch {
        images: init::randn(&[n, c, hw, hw], 1.0, &mut rng),
        labels: (0..n).map(|i| i % classes).collect(),
    }
}

/// One test function so the phases run sequentially: the allocator counter
/// and the arena counters are process-global.
#[test]
fn fused_conv_engine_reaches_allocation_steady_state() {
    // Phase 1: single-thread, per-dispatch-path output-only allocation.
    par::set_max_threads(1);
    let mut rng = StdRng::seed_from_u64(11);
    let x = init::randn(&[2, 8, 12, 12], 1.0, &mut rng);

    let w3 = init::randn(&[8, 8, 3, 3], 0.5, &mut rng);
    assert_steady_state(&x, &w3, 1, 1, "direct 3x3");
    assert_steady_state(&x, &w3, 2, 1, "direct 3x3 strided");
    assert_steady_state(&x, &w3, 1, 0, "panel fallback (3x3 unpadded)");
    let w5 = init::randn(&[8, 8, 5, 5], 0.5, &mut rng);
    assert_steady_state(&x, &w5, 1, 2, "direct 5x5");
    assert_steady_state(&x, &w5, 2, 2, "panel fallback (5x5 stride 2)");
    let w1 = init::randn(&[8, 8, 1, 1], 0.5, &mut rng);
    assert_steady_state(&x, &w1, 1, 0, "1x1 matmul");
    assert_steady_state(&x, &w1, 2, 0, "1x1 strided matmul");

    // Depthwise family: per-channel stencils (3x3, strided 3x3, 5x5) and the
    // generic-tap fallback, forward and backward.
    let dw3 = init::randn(&[8, 1, 3, 3], 0.5, &mut rng);
    assert_depthwise_steady_state(&x, &dw3, 1, 1, "depthwise 3x3");
    assert_depthwise_steady_state(&x, &dw3, 2, 1, "depthwise 3x3 strided");
    assert_depthwise_steady_state(&x, &dw3, 1, 0, "depthwise 3x3 generic taps");
    let dw5 = init::randn(&[8, 1, 5, 5], 0.5, &mut rng);
    assert_depthwise_steady_state(&x, &dw5, 1, 2, "depthwise 5x5");

    // A larger geometry that crosses the pool-dispatch work floors still
    // keeps the arena flat (threads = 1 ⇒ the chunks run inline).
    let xl = init::randn(&[4, 16, 24, 24], 1.0, &mut rng);
    let wl = init::randn(&[24, 16, 3, 3], 0.3, &mut rng);
    assert_steady_state(&xl, &wl, 1, 1, "pool-scale 3x3");

    // Phase 2a: single-threaded training — every task runs inline on this
    // thread, so one step warms the arena completely and the second step
    // must grow it by exactly zero.
    let spec = vgg::vgg_from_stages("alloc-probe", &[(8, 1), (8, 1)], 4, 3, (8, 8));
    let mut net = ChainNet::from_spec(&spec, &mut StdRng::seed_from_u64(5)).unwrap();
    net.set_backend(BackendKind::Parallel);
    let sgd = Sgd::new(0.05, 0.9, 5e-4).unwrap();
    let batch = synthetic_batch(16, 3, 8, 4, 23);

    let mut seq_trainer = DataParallelTrainer::new(&net, 4).unwrap();
    seq_trainer.step(&batch, &sgd).unwrap();
    let arena_after_first = arena::reserved_elems();
    seq_trainer.step(&batch, &sgd).unwrap();
    assert_eq!(
        arena::reserved_elems(),
        arena_after_first,
        "second training step must draw all scratch from warm arenas (zero growth)"
    );

    // Phase 2b: with the pool engaged, task→worker assignment varies from
    // step to step, so each worker's arena warms when it first touches a
    // task shape — the step at which the *last* worker finishes warming is
    // scheduling-dependent. What the engine does guarantee is that growth
    // converges to zero: a scratch leak would grow the arena on *every*
    // step and could never produce consecutive flat steps.
    par::set_max_threads(4);
    let mut trainer = DataParallelTrainer::new(&net, 4).unwrap();
    let mut flat_streak = 0;
    for step in 0..30 {
        let before = arena::reserved_elems();
        trainer.step(&batch, &sgd).unwrap();
        if arena::reserved_elems() == before {
            flat_streak += 1;
            if flat_streak >= 3 {
                break;
            }
        } else {
            flat_streak = 0;
        }
        assert!(
            step < 29,
            "pooled training never reached arena steady state in 30 steps \
             (scratch is leaking to fresh buffers every step)"
        );
    }
    par::reset_max_threads();

    // Phase 3: the inference fast path. Fused-epilogue forwards, index-free
    // eval pooling and the int8 kernel must likewise allocate only their
    // outputs once warm — steady-state inference scratch lives in the
    // arenas (f32 panels) and the byte arena (u8/i8 panels).
    par::set_max_threads(1);
    inference_steady_state();
    par::reset_max_threads();
}

/// Asserts output-only allocation for the fused f32 epilogue forward, the
/// index-free eval max-pool, and the int8 quantized forward.
fn inference_steady_state() {
    use tbnet_tensor::ops::{conv2d_forward_q8, ActQuant, Epilogue, QuantConv2dWeight};

    let parallel = BackendKind::Parallel.imp();
    let mut rng = StdRng::seed_from_u64(31);
    let x = init::randn(&[2, 8, 12, 12], 1.0, &mut rng);
    let w3 = init::randn(&[8, 8, 3, 3], 0.5, &mut rng);
    let packed = tbnet_tensor::ops::PackedConv2dWeight::new(&w3).unwrap();
    let bias = init::randn(&[8], 0.1, &mut rng);
    let merge = {
        let probe = parallel
            .conv2d_forward_fused(&x, &packed, Some(&bias), 1, 1, Epilogue::Relu)
            .unwrap();
        init::randn(probe.dims(), 1.0, &mut rng)
    };

    // Fused forward with every epilogue variant: warm once, then assert the
    // second call allocates only its output tensor.
    for (label, epi) in [
        ("fused relu", Epilogue::Relu),
        ("fused add-relu", Epilogue::AddRelu(&merge)),
        ("fused relu-add", Epilogue::ReluAdd(&merge)),
    ] {
        let _ = parallel
            .conv2d_forward_fused(&x, &packed, Some(&bias), 1, 1, epi)
            .unwrap();
        let arena_before = arena::reserved_elems();
        let a0 = allocated_bytes();
        let out = parallel
            .conv2d_forward_fused(&x, &packed, Some(&bias), 1, 1, epi)
            .unwrap();
        let delta = allocated_bytes() - a0;
        let budget = tensor_bytes(&out) + SLACK;
        assert!(
            delta <= budget,
            "{label}: warmed fused forward allocated {delta} B, budget {budget} B"
        );
        assert_eq!(arena::reserved_elems(), arena_before, "{label}: arena grew");
    }

    // Index-free eval pooling: no winners map, only the pooled output.
    let _ = parallel.maxpool2d_eval(&x, 2).unwrap();
    let a0 = allocated_bytes();
    let pooled = parallel.maxpool2d_eval(&x, 2).unwrap();
    let delta = allocated_bytes() - a0;
    let budget = tensor_bytes(&pooled) + SLACK;
    assert!(
        delta <= budget,
        "maxpool2d_eval: warmed call allocated {delta} B, budget {budget} B \
         (an index map would roughly double the output bytes)"
    );

    // Int8 forward: u8 image, panels and i32 accumulators all come from the
    // byte arena once warm.
    let qw = QuantConv2dWeight::quantize(&w3).unwrap();
    let act = ActQuant::from_tensor(&x);
    let _ = conv2d_forward_q8(&x, &qw, act, Some(&bias), 1, 1, true).unwrap();
    let arena_before = arena::reserved_elems();
    let a0 = allocated_bytes();
    let qout = conv2d_forward_q8(&x, &qw, act, Some(&bias), 1, 1, true).unwrap();
    let delta = allocated_bytes() - a0;
    let budget = tensor_bytes(&qout) + SLACK;
    assert!(
        delta <= budget,
        "int8 conv: warmed call allocated {delta} B, budget {budget} B"
    );
    assert_eq!(
        arena::reserved_elems(),
        arena_before,
        "int8 conv: second call must not grow the f32 arena"
    );
}
