//! Sequential-parity suite for data-parallel knowledge transfer (paper
//! step ②): for W ∈ {1, 2, 4} workers, the per-epoch cross-entropy,
//! sparsity-penalty and accuracy curves, the final weights of *both*
//! branches and their BatchNorm running statistics must match the
//! sequential transfer loop within 1e-5, and the work must flow through
//! the persistent pool in `tbnet_tensor::par`.

use rand::rngs::StdRng;
use rand::SeedableRng;

use tbnet_core::transfer::{train_two_branch_seq, train_two_branch_with_workers, TransferConfig};
use tbnet_core::TwoBranchModel;
use tbnet_data::{DatasetKind, SyntheticCifar};
use tbnet_models::{resnet, vgg, ChainNet, ModelSpec};
use tbnet_tensor::{par, Tensor};

const TOL: f32 = 1e-5;

/// Forces multi-shard pool paths on few-core dev hosts, but respects an
/// explicit `TBNET_THREADS` (the CI thread matrix runs this suite at both
/// 1 and 4 threads — overriding it here would collapse the legs).
fn pin_threads() {
    if std::env::var("TBNET_THREADS").is_err() {
        par::set_max_threads(4);
    }
}

fn data() -> SyntheticCifar {
    SyntheticCifar::generate(
        DatasetKind::Cifar10Like
            .config()
            .with_classes(4)
            .with_train_per_class(12)
            .with_test_per_class(6)
            .with_size(8, 8)
            .with_noise_std(0.3),
    )
}

fn cfg(epochs: usize) -> TransferConfig {
    TransferConfig {
        epochs,
        batch_size: 16,
        ..TransferConfig::paper_scaled(epochs)
    }
}

fn tb_from_spec(spec: &ModelSpec, seed: u64) -> TwoBranchModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let victim = ChainNet::from_spec(spec, &mut rng).unwrap();
    TwoBranchModel::from_victim(&victim, &mut rng).unwrap()
}

fn collect_params(model: &mut TwoBranchModel) -> Vec<Tensor> {
    let mut out = Vec::new();
    model.visit_params(&mut |p| out.push(p.value.clone()));
    out
}

fn collect_bn_stats(model: &TwoBranchModel) -> Vec<(Tensor, Tensor)> {
    model
        .mr()
        .units()
        .iter()
        .chain(model.mt().units())
        .map(|u| (u.bn().running_mean().clone(), u.bn().running_var().clone()))
        .collect()
}

fn max_abs_diff(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.dims(), b.dims(), "shape drift between trainers");
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max)
}

/// Runs the sequential and data-parallel transfer loops from identical
/// initial state and asserts epoch-by-epoch loss-component parity plus
/// final weight and BN running-stat parity for both branches.
fn assert_transfer_parity(spec: &ModelSpec, workers: usize, seed: u64, lambda: f32) {
    let d = data();
    let tb0 = tb_from_spec(spec, seed);
    let mut seq = tb0.clone();
    let mut dp = tb0;
    let cfg = cfg(3).with_lambda(lambda);

    let seq_hist = train_two_branch_seq(&mut seq, d.train(), &cfg).unwrap();
    let dp_hist = train_two_branch_with_workers(&mut dp, d.train(), &cfg, workers).unwrap();

    assert_eq!(seq_hist.len(), dp_hist.len());
    for (s, p) in seq_hist.iter().zip(&dp_hist) {
        assert!(
            (s.ce_loss - p.ce_loss).abs() < TOL,
            "W={workers} epoch {}: sequential ce {} vs data-parallel {}",
            s.epoch,
            s.ce_loss,
            p.ce_loss
        );
        assert!(
            (s.sparsity_loss - p.sparsity_loss).abs() < TOL,
            "W={workers} epoch {}: sparsity penalty diverged ({} vs {})",
            s.epoch,
            s.sparsity_loss,
            p.sparsity_loss
        );
        assert!(
            (s.train_acc - p.train_acc).abs() < TOL,
            "W={workers} epoch {}: accuracy diverged",
            s.epoch
        );
    }

    for (i, (s, p)) in collect_params(&mut seq)
        .iter()
        .zip(&collect_params(&mut dp))
        .enumerate()
    {
        let diff = max_abs_diff(s, p);
        assert!(diff < TOL, "W={workers} param {i}: max |Δ| = {diff}");
    }

    for (i, ((sm, sv), (pm, pv))) in collect_bn_stats(&seq)
        .iter()
        .zip(&collect_bn_stats(&dp))
        .enumerate()
    {
        assert!(
            max_abs_diff(sm, pm) < TOL,
            "W={workers} BN {i} running mean diverged"
        );
        assert!(
            max_abs_diff(sv, pv) < TOL,
            "W={workers} BN {i} running var diverged"
        );
    }

    // Both models predict identically after training.
    let batch = d.test().as_batch();
    let ys = seq.predict(&batch.images).unwrap();
    let yp = dp.predict(&batch.images).unwrap();
    assert!(max_abs_diff(&ys, &yp) < 1e-4, "W={workers} logits diverged");
}

fn vgg_spec() -> ModelSpec {
    vgg::vgg_from_stages("parity-tb-vgg", &[(8, 1), (8, 1)], 4, 3, (8, 8))
}

#[test]
fn one_worker_matches_sequential() {
    pin_threads();
    assert_transfer_parity(&vgg_spec(), 1, 50, 1e-4);
}

#[test]
fn two_workers_match_sequential() {
    pin_threads();
    assert_transfer_parity(&vgg_spec(), 2, 51, 1e-4);
}

#[test]
fn four_workers_match_sequential() {
    pin_threads();
    assert_transfer_parity(&vgg_spec(), 4, 52, 1e-4);
}

#[test]
fn strong_sparsity_penalty_matches_sequential() {
    // A large λ makes the penalty subgradient a first-order part of the
    // update, so this pins the merged-gradient penalty application (once
    // per step, after the shard fold) against the sequential ordering.
    pin_threads();
    assert_transfer_parity(&vgg_spec(), 2, 53, 5e-3);
}

#[test]
fn residual_victim_matches_sequential_across_workers() {
    // A residual victim gives M_T skip connections (M_R's are stripped at
    // step ①), exercising the merged-stream skip-gradient accumulation of
    // the two-branch DpTrainable schedule.
    pin_threads();
    let spec = resnet::resnet_from_stages("parity-tb-res", &[6], 2, 4, 3, (8, 8));
    assert_transfer_parity(&spec, 2, 54, 1e-4);
    assert_transfer_parity(&spec, 4, 54, 1e-4);
}

#[test]
fn transfer_runs_on_the_persistent_pool() {
    pin_threads();
    if par::max_threads() < 2 {
        // TBNET_THREADS=1 runs fully serial by design — no pool workers to
        // observe (the thread-matrix 1-thread leg covers the inline path).
        return;
    }
    let d = data();
    let tb = tb_from_spec(&vgg_spec(), 55);
    let cfg = cfg(1);

    // Warm-up: pool workers come up lazily on first demand.
    let mut warm = tb.clone();
    train_two_branch_with_workers(&mut warm, d.train(), &cfg, 4).unwrap();
    let workers_after_warmup = par::pool_workers();
    assert!(
        workers_after_warmup >= 1,
        "data-parallel transfer must engage the pool"
    );

    // Steady state: shard phases run as pool jobs, no thread spawns.
    let jobs_before = par::pool_jobs_completed();
    let mut dp = tb.clone();
    train_two_branch_with_workers(&mut dp, d.train(), &cfg, 4).unwrap();
    assert!(
        par::pool_jobs_completed() > jobs_before,
        "transfer steps must submit pool jobs"
    );
    assert_eq!(
        par::pool_workers(),
        workers_after_warmup,
        "steady-state transfer must not spawn threads"
    );
}
