//! Oracle parity for the model-zoo conv dispatch shapes: the strided direct
//! 3×3 stencil, the widened direct 5×5 stencil and the depthwise per-channel
//! kernels must agree with the `Naive` reference within 1e-5 — forward,
//! backward, packed-weight and fused-epilogue entry points alike — across
//! stride/pad/batch edge geometries.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tbnet_tensor::ops::{conv_output_size, Epilogue, PackedConv2dWeight};
use tbnet_tensor::{init, par, Backend, BackendKind, Tensor};

/// Force multi-chunk code paths even on single-core hosts (see
/// `backend_parity.rs`).
fn pin_threads() {
    par::set_max_threads(3);
}

fn close(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(a.dims(), b.dims(), "{what}: shape mismatch");
    let scale = a.as_slice().iter().fold(0.0f32, |m, x| m.max(x.abs()));
    let tol = 1e-5 * (1.0 + scale);
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert!(
            (x - y).abs() <= 1e-5 * (1.0 + x.abs()) || (x - y).abs() <= tol,
            "{what}[{i}]: naive {x} vs parallel {y} (tol {tol})"
        );
    }
}

fn naive() -> &'static dyn Backend {
    BackendKind::Naive.imp()
}

fn parallel() -> &'static dyn Backend {
    BackendKind::Parallel.imp()
}

/// Forward (raw + packed), fused epilogues and packed backward for one dense
/// conv geometry, parallel vs naive.
#[allow(clippy::too_many_arguments)]
fn check_dense_case(
    c: usize,
    hw: usize,
    o: usize,
    kern: usize,
    stride: usize,
    pad: usize,
    label: &str,
    rng: &mut StdRng,
) {
    assert!(
        conv_output_size(hw, kern, stride, pad).is_ok(),
        "bad case {label}"
    );
    for n in [1usize, 3] {
        let x = init::randn(&[n, c, hw, hw], 1.0, rng);
        let w = init::randn(&[o, c, kern, kern], 0.5, rng);
        let bias = init::randn(&[o], 0.1, rng);
        let packed = PackedConv2dWeight::new(&w).unwrap();

        let fwd_n = naive()
            .conv2d_forward(&x, &w, Some(&bias), stride, pad)
            .unwrap();
        let fwd_p = parallel()
            .conv2d_forward(&x, &w, Some(&bias), stride, pad)
            .unwrap();
        close(&fwd_n, &fwd_p, &format!("{label} fwd (raw weight)"));
        let fwd_pk = parallel()
            .conv2d_forward_packed(&x, &packed, Some(&bias), stride, pad)
            .unwrap();
        close(&fwd_n, &fwd_pk, &format!("{label} fwd (packed)"));

        // Fused epilogues: plain ReLU, skip-add-then-ReLU, ReLU-then-merge.
        let operand = init::randn(fwd_n.dims(), 1.0, rng);
        for (epi, name) in [
            (Epilogue::Relu, "relu"),
            (Epilogue::AddRelu(&operand), "add_relu"),
            (Epilogue::ReluAdd(&operand), "relu_add"),
        ] {
            let e_n = naive()
                .conv2d_forward_fused(&x, &packed, Some(&bias), stride, pad, epi)
                .unwrap();
            let e_p = parallel()
                .conv2d_forward_fused(&x, &packed, Some(&bias), stride, pad, epi)
                .unwrap();
            close(&e_n, &e_p, &format!("{label} fused {name}"));
        }

        let g = init::randn(fwd_n.dims(), 1.0, rng);
        let bwd_n = naive()
            .conv2d_backward(&x, &w, &g, stride, pad, true)
            .unwrap();
        let bwd_pk = parallel()
            .conv2d_backward_packed(&x, &packed, &g, stride, pad, true)
            .unwrap();
        close(
            &bwd_n.grad_input,
            &bwd_pk.grad_input,
            &format!("{label} grad_input"),
        );
        close(
            &bwd_n.grad_weight,
            &bwd_pk.grad_weight,
            &format!("{label} grad_weight"),
        );
        close(
            bwd_n.grad_bias.as_ref().unwrap(),
            bwd_pk.grad_bias.as_ref().unwrap(),
            &format!("{label} grad_bias"),
        );
    }
}

/// Strided 3×3 geometries dispatch to the stride-aware direct stencil below
/// the flop ceiling and to panels above it; both must match the oracle.
#[test]
fn strided_3x3_matches_oracle() {
    pin_threads();
    let mut rng = StdRng::seed_from_u64(31);
    // (c, hw, o, stride, label)
    let cases: &[(usize, usize, usize, usize, &str)] = &[
        (6, 10, 8, 2, "3x3 stride 2"),
        (3, 9, 4, 2, "3x3 stride 2 odd width"),
        (6, 11, 7, 2, "3x3 stride 2 remainder channels"),
        (4, 12, 5, 3, "3x3 stride 3"),
        (2, 5, 3, 2, "3x3 stride 2 tiny input"),
        (64, 12, 64, 2, "3x3 stride 2 above flop ceiling (panels)"),
    ];
    for &(c, hw, o, stride, label) in cases {
        check_dense_case(c, hw, o, 3, stride, 1, label, &mut rng);
    }
}

/// 5×5/s1/p2 geometries dispatch to the widened direct stencil below the
/// flop ceiling and to panels above it; both must match the oracle.
#[test]
fn direct_5x5_matches_oracle() {
    pin_threads();
    let mut rng = StdRng::seed_from_u64(51);
    // (c, hw, o, label)
    let cases: &[(usize, usize, usize, &str)] = &[
        (4, 12, 6, "5x5 direct"),
        (3, 9, 5, "5x5 direct odd width"),
        (6, 10, 7, "5x5 direct remainder channels"),
        (2, 5, 3, "5x5 input == kernel"),
        (1, 4, 2, "5x5 input smaller than kernel (pad carries)"),
        (48, 20, 48, "5x5 above flop ceiling (panels)"),
    ];
    for &(c, hw, o, label) in cases {
        check_dense_case(c, hw, o, 5, 1, 2, label, &mut rng);
    }
}

/// Depthwise forward/backward/fused parity across kernel/stride/pad edges,
/// including the specialized 3×3 and 5×5 per-plane stencils and the generic
/// fallback taps.
#[test]
fn depthwise_matches_oracle() {
    pin_threads();
    let mut rng = StdRng::seed_from_u64(71);
    // (c, hw, kern, stride, pad, label)
    let cases: &[(usize, usize, usize, usize, usize, &str)] = &[
        (8, 10, 3, 1, 1, "dw 3x3"),
        (8, 10, 3, 2, 1, "dw 3x3 stride 2"),
        (5, 9, 3, 1, 0, "dw 3x3 unpadded (generic taps)"),
        (6, 12, 5, 1, 2, "dw 5x5"),
        (4, 11, 5, 2, 2, "dw 5x5 stride 2 (generic taps)"),
        (3, 8, 4, 2, 1, "dw 4x4 stride 2 (generic taps)"),
        (2, 6, 1, 1, 0, "dw 1x1"),
        (16, 32, 3, 1, 1, "dw 3x3 multi-chunk scale"),
    ];
    for &(c, hw, kern, stride, pad, label) in cases {
        if conv_output_size(hw, kern, stride, pad).is_err() {
            panic!("bad case {label}");
        }
        for n in [1usize, 4] {
            let x = init::randn(&[n, c, hw, hw], 1.0, &mut rng);
            let w = init::randn(&[c, 1, kern, kern], 0.5, &mut rng);
            let bias = init::randn(&[c], 0.1, &mut rng);
            let packed = PackedConv2dWeight::new(&w).unwrap();

            let fwd_n = naive()
                .conv2d_depthwise_forward(&x, &packed, Some(&bias), stride, pad)
                .unwrap();
            let fwd_p = parallel()
                .conv2d_depthwise_forward(&x, &packed, Some(&bias), stride, pad)
                .unwrap();
            close(&fwd_n, &fwd_p, &format!("{label} fwd"));

            // A depthwise conv is a dense conv with a block-diagonal weight;
            // pin the whole family to the dense oracle, not just to its own
            // naive twin.
            let mut dense = Tensor::zeros(&[c, c, kern, kern]);
            for ch in 0..c {
                let k2 = kern * kern;
                let taps = &w.as_slice()[ch * k2..(ch + 1) * k2];
                dense.as_mut_slice()[(ch * c + ch) * k2..(ch * c + ch) * k2 + k2]
                    .copy_from_slice(taps);
            }
            let fwd_dense = naive()
                .conv2d_forward(&x, &dense, Some(&bias), stride, pad)
                .unwrap();
            close(&fwd_dense, &fwd_p, &format!("{label} fwd vs dense oracle"));

            let operand = init::randn(fwd_n.dims(), 1.0, &mut rng);
            for (epi, name) in [
                (Epilogue::Relu, "relu"),
                (Epilogue::AddRelu(&operand), "add_relu"),
                (Epilogue::ReluAdd(&operand), "relu_add"),
            ] {
                let e_n = naive()
                    .conv2d_depthwise_forward_fused(&x, &packed, Some(&bias), stride, pad, epi)
                    .unwrap();
                let e_p = parallel()
                    .conv2d_depthwise_forward_fused(&x, &packed, Some(&bias), stride, pad, epi)
                    .unwrap();
                close(&e_n, &e_p, &format!("{label} fused {name}"));
            }

            let g = init::randn(fwd_n.dims(), 1.0, &mut rng);
            let bwd_n = naive()
                .conv2d_depthwise_backward(&x, &packed, &g, stride, pad, true)
                .unwrap();
            let bwd_p = parallel()
                .conv2d_depthwise_backward(&x, &packed, &g, stride, pad, true)
                .unwrap();
            close(
                &bwd_n.grad_input,
                &bwd_p.grad_input,
                &format!("{label} grad_input"),
            );
            close(
                &bwd_n.grad_weight,
                &bwd_p.grad_weight,
                &format!("{label} grad_weight"),
            );
            close(
                bwd_n.grad_bias.as_ref().unwrap(),
                bwd_p.grad_bias.as_ref().unwrap(),
                &format!("{label} grad_bias"),
            );

            // Depthwise backward vs the dense oracle: the dense grad-weight's
            // diagonal blocks are the depthwise grad-weight, and its
            // off-diagonal blocks must vanish.
            let bwd_dense = naive()
                .conv2d_backward(&x, &dense, &g, stride, pad, true)
                .unwrap();
            close(
                &bwd_dense.grad_input,
                &bwd_p.grad_input,
                &format!("{label} grad_input vs dense oracle"),
            );
            let k2 = kern * kern;
            let gw_dense = bwd_dense.grad_weight.as_slice();
            let mut gw_diag = Vec::with_capacity(c * k2);
            for ch in 0..c {
                gw_diag.extend_from_slice(&gw_dense[(ch * c + ch) * k2..(ch * c + ch) * k2 + k2]);
            }
            let gw_diag = Tensor::from_vec(gw_diag, &[c, 1, kern, kern]).unwrap();
            close(
                &gw_diag,
                &bwd_p.grad_weight,
                &format!("{label} grad_weight vs dense diagonal"),
            );
        }
    }
}

/// Depthwise shape validation: a dense-shaped weight, a channel mismatch or
/// a rank error must be rejected, not silently folded.
#[test]
fn depthwise_rejects_bad_shapes() {
    let x = Tensor::zeros(&[1, 4, 6, 6]);
    for bad in [
        Tensor::zeros(&[4, 2, 3, 3]), // second dim must be 1
        Tensor::zeros(&[3, 1, 3, 3]), // channel count mismatch
        Tensor::zeros(&[4, 1, 3]),    // rank
    ] {
        let packed = match PackedConv2dWeight::new(&bad) {
            Ok(p) => p,
            Err(_) => continue, // rank error already caught at pack time
        };
        for backend in [naive(), parallel()] {
            assert!(
                backend
                    .conv2d_depthwise_forward(&x, &packed, None, 1, 1)
                    .is_err(),
                "accepted weight {:?}",
                bad.dims()
            );
            assert!(
                backend
                    .conv2d_depthwise_backward(&x, &packed, &x, 1, 1, false)
                    .is_err(),
                "backward accepted weight {:?}",
                bad.dims()
            );
        }
    }
}
