//! Cross-crate consistency: the architecture descriptors (`ModelSpec`), the
//! executable networks (`ChainNet`) and the TEE pricing must agree with each
//! other — a spec that lies to the cost model would silently corrupt every
//! latency/memory figure.

use rand::rngs::StdRng;
use rand::SeedableRng;

use tbnet_models::{resnet, vgg, ChainNet};
use tbnet_tee::{
    simulate_baseline, simulate_partition, simulate_two_branch, CostModel, MemoryReport,
};

fn zoo() -> Vec<tbnet_models::ModelSpec> {
    vec![
        vgg::vgg_tiny(10, 3, (16, 16)),
        vgg::vgg_tiny(100, 3, (16, 16)),
        vgg::vgg18(10, 3, (32, 32)),
        resnet::resnet20_tiny(10, 3, (16, 16)),
        resnet::resnet20(100, 3, (32, 32)),
    ]
}

#[test]
fn descriptor_param_count_matches_live_networks() {
    let mut rng = StdRng::seed_from_u64(0);
    for spec in [
        vgg::vgg_tiny(10, 3, (16, 16)),
        resnet::resnet20_tiny(7, 3, (16, 16)),
    ] {
        let mut net = ChainNet::from_spec(&spec, &mut rng).unwrap();
        assert_eq!(
            net.param_count(),
            spec.param_count().unwrap(),
            "spec {} disagrees with the live network",
            spec.name
        );
    }
}

#[test]
fn every_zoo_spec_traces_and_prices() {
    let cost = CostModel::raspberry_pi3();
    for spec in zoo() {
        assert!(spec.trace().is_ok(), "{} fails trace", spec.name);
        assert!(spec.forward_macs().unwrap() > 0);
        assert!(spec.param_count().unwrap() > 0);
        assert!(spec.peak_activation_elems().unwrap() > 0);
        let base = simulate_baseline(&spec, &cost).unwrap();
        assert!(base.total_s > 0.0 && base.total_s.is_finite());
        let mem = MemoryReport::for_baseline(&spec).unwrap();
        assert!(mem.total() > 0);
    }
}

#[test]
fn bigger_models_cost_more_everywhere() {
    let cost = CostModel::raspberry_pi3();
    let small = vgg::vgg_tiny(10, 3, (16, 16));
    let large = vgg::vgg18(10, 3, (32, 32));
    assert!(large.forward_macs().unwrap() > small.forward_macs().unwrap());
    assert!(large.param_count().unwrap() > small.param_count().unwrap());
    let lat_s = simulate_baseline(&small, &cost).unwrap();
    let lat_l = simulate_baseline(&large, &cost).unwrap();
    assert!(lat_l.total_s > lat_s.total_s);
    let mem_s = MemoryReport::for_baseline(&small).unwrap();
    let mem_l = MemoryReport::for_baseline(&large).unwrap();
    assert!(mem_l.total() > mem_s.total());
}

#[test]
fn paper_scale_models_show_paper_scale_latency_shape() {
    // With the full-size CIFAR models and the Pi-3 profile, the simulated
    // baseline should land in the paper's order of magnitude (seconds, not
    // micro- or kilo-seconds), and TBNet with a pruned M_T should win.
    let cost = CostModel::raspberry_pi3();
    let vgg18 = vgg::vgg18(10, 3, (32, 32));
    let base = simulate_baseline(&vgg18, &cost).unwrap();
    assert!(
        base.total_s > 0.05 && base.total_s < 60.0,
        "implausible baseline latency {}",
        base.total_s
    );
    let mut pruned = vgg18.clone();
    for u in &mut pruned.units {
        u.out_channels = (u.out_channels * 7 / 10).max(2); // ~30% pruned
    }
    let tb = simulate_two_branch(&pruned, &vgg18, &cost).unwrap();
    assert!(
        tb.total_s < base.total_s,
        "tbnet {} vs baseline {}",
        tb.total_s,
        base.total_s
    );
    let ratio = base.total_s / tb.total_s;
    assert!(
        (1.0..3.0).contains(&ratio),
        "reduction {ratio} outside the plausible band"
    );
}

#[test]
fn partition_split_monotonically_shifts_compute() {
    let cost = CostModel::raspberry_pi3();
    let spec = vgg::vgg_tiny(10, 3, (16, 16));
    let mut last_tee = f64::INFINITY;
    for split in 0..=spec.units.len() {
        let r = simulate_partition(&spec, split, &cost).unwrap();
        assert!(r.tee_compute_s <= last_tee);
        last_tee = r.tee_compute_s;
    }
}

#[test]
fn memory_reports_decompose_exactly() {
    for spec in zoo() {
        let base = MemoryReport::for_baseline(&spec).unwrap();
        assert_eq!(
            base.total(),
            base.weight_bytes + base.activation_bytes + base.merge_buffer_bytes
        );
        let branch = MemoryReport::for_secure_branch(&spec).unwrap();
        assert_eq!(base.weight_bytes, branch.weight_bytes);
        assert!(branch.merge_buffer_bytes > 0);
    }
}
