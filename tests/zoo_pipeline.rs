//! Zoo end-to-end properties: for each conv-dispatch architecture family
//! (strided-3×3 resnet, 5×5 vgg, depthwise mobile) the data-parallel trainer
//! must match the sequential one, the protect pipeline must keep pruned
//! masks and `ChannelBook`s aligned across residual skips, and the fused /
//! int8 inference paths must agree with the f32 reference on the pruned
//! deployment.

use rand::rngs::StdRng;
use rand::SeedableRng;

use tbnet_core::dp_train::train_victim_dp;
use tbnet_core::pipeline::{run_pipeline, PipelineConfig};
use tbnet_core::train::{train_victim, TrainConfig};
use tbnet_data::{DatasetKind, SyntheticCifar};
use tbnet_models::{mobile, resnet, vgg, ChainNet, ModelSpec};
use tbnet_nn::Layer;
use tbnet_tensor::{par, Tensor};

const TOL: f32 = 1e-5;

/// Forces multi-shard pool paths on few-core dev hosts, but respects an
/// explicit `TBNET_THREADS` (the CI thread matrix runs this suite at both
/// 1 and 4 threads).
fn pin_threads() {
    if std::env::var("TBNET_THREADS").is_err() {
        par::set_max_threads(4);
    }
}

fn data() -> SyntheticCifar {
    SyntheticCifar::generate(
        DatasetKind::Cifar10Like
            .config()
            .with_classes(3)
            .with_train_per_class(24)
            .with_test_per_class(48)
            .with_size(8, 8)
            .with_noise_std(0.3),
    )
}

/// One victim per new dispatch family (the plain-3×3 family is covered by
/// `train_parity.rs` and `pipeline_end_to_end.rs`).
fn zoo_specs() -> Vec<(&'static str, ModelSpec)> {
    vec![
        (
            "resnet-strided",
            resnet::resnet_from_stages("zoo-res", &[8, 16], 1, 3, 3, (8, 8)),
        ),
        (
            "vgg5x5",
            vgg::vgg5x5_from_stages("zoo-v5", &[(8, 1), (16, 1)], 3, 3, (8, 8)),
        ),
        (
            "mobile",
            mobile::mobile_from_stages("zoo-mob", &[(8, 1), (16, 1)], 3, 3, (8, 8)),
        ),
    ]
}

fn max_abs_diff(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.dims(), b.dims(), "shape drift");
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max)
}

fn collect_params(net: &mut ChainNet) -> Vec<Tensor> {
    let mut out = Vec::new();
    net.visit_params(&mut |p| out.push(p.value.clone()));
    out
}

/// Sequential vs data-parallel training parity for every zoo architecture
/// at W ∈ {1, 2}: loss curves and final weights within 1e-5.
#[test]
fn zoo_dp_train_matches_sequential() {
    pin_threads();
    let d = data();
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 16,
        ..TrainConfig::paper_scaled(2)
    };
    for (name, spec) in zoo_specs() {
        let mut rng = StdRng::seed_from_u64(0xA11CE);
        let seq_init = ChainNet::from_spec(&spec, &mut rng).unwrap();
        let mut seq_net = seq_init.clone();
        let seq_hist = train_victim(&mut seq_net, d.train(), &cfg).unwrap();
        let seq_params = collect_params(&mut seq_net);

        for workers in [1usize, 2] {
            let mut dp_net = seq_init.clone();
            let dp_hist = train_victim_dp(&mut dp_net, d.train(), &cfg, workers).unwrap();
            assert_eq!(seq_hist.len(), dp_hist.len());
            for (s, p) in seq_hist.iter().zip(&dp_hist) {
                assert!(
                    (s.train_loss - p.train_loss).abs() < TOL,
                    "{name} W={workers} epoch {}: loss {} vs {}",
                    s.epoch,
                    s.train_loss,
                    p.train_loss
                );
            }
            for (i, (s, p)) in seq_params
                .iter()
                .zip(&collect_params(&mut dp_net))
                .enumerate()
            {
                let diff = max_abs_diff(s, p);
                assert!(diff < TOL, "{name} W={workers} param {i}: max |Δ| = {diff}");
            }
        }
    }
}

fn smoke_cfg() -> PipelineConfig {
    let mut cfg = PipelineConfig::smoke();
    cfg.prune.drop_budget = 1.0; // keep pruning iterations deterministic
    cfg.workers = tbnet_core::dp_train::WorkerPolicy::Fixed(1); // seed-deterministic
    cfg
}

fn argmax_rows(logits: &Tensor) -> Vec<usize> {
    let classes = logits.dim(1);
    logits
        .as_slice()
        .chunks(classes)
        .map(|r| {
            r.iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
        .collect()
}

/// After iterative pruning, residual-skip endpoints must still be channel
/// congruent: equal surviving widths AND identical `ChannelBook` rows (the
/// skip adds feature maps element-wise, so the books must name the same
/// original channels in the same order on both ends).
#[test]
fn pruned_books_stay_aligned_across_residual_skips() {
    pin_threads();
    let d = data();
    let spec = resnet::resnet_from_stages("zoo-res-book", &[8, 16], 1, 3, 3, (8, 8));
    let artifacts = run_pipeline(&spec, &d, &smoke_cfg()).unwrap();
    assert!(artifacts.model.is_finalized());

    let mt_spec = artifacts.mt_spec();
    assert!(mt_spec.trace().is_ok(), "pruned M_T no longer traces");
    let skip_pairs: Vec<(usize, usize)> = mt_spec
        .units
        .iter()
        .enumerate()
        .filter_map(|(i, u)| u.skip_from.map(|j| (i, j)))
        .collect();
    assert!(!skip_pairs.is_empty(), "resnet lost its skips in the zoo");
    for (i, j) in skip_pairs {
        assert_eq!(
            mt_spec.units[i].out_channels, mt_spec.units[j].out_channels,
            "skip {j}→{i}: pruned widths diverged"
        );
        assert_eq!(
            artifacts.model.mt_book().unit(i),
            artifacts.model.mt_book().unit(j),
            "skip {j}→{i}: surviving-channel books diverged"
        );
        // Pruning is group-synchronized: both ends carry the same group, so
        // the masks that produced those books were identical by construction.
        assert_eq!(mt_spec.units[i].group, mt_spec.units[j].group);
    }
    // Book widths describe the live layers everywhere, not just at skips.
    for (i, u) in mt_spec.units.iter().enumerate() {
        assert_eq!(artifacts.model.mt_book().unit(i).len(), u.out_channels);
        assert_eq!(
            artifacts.model.mr_book().unit(i).len(),
            artifacts.mr_spec().units[i].out_channels
        );
    }
}

/// On every pruned zoo deployment, the fused f32 path must track the
/// unfused reference almost exactly and the int8 path must agree on ≥ 99%
/// of top-1 decisions.
#[test]
fn fused_and_int8_agree_on_pruned_zoo_models() {
    pin_threads();
    let d = data();
    // A longer-trained smoke config than the book-alignment test: top-1
    // agreement on a barely-trained model measures tie-breaking on near-zero
    // logit margins, not quantization quality.
    let mut cfg = PipelineConfig::paper_scaled(6, 6, 3);
    cfg.prune.max_iterations = 2;
    cfg.prune.ratio = 0.15;
    cfg.prune.drop_budget = 1.0;
    cfg.workers = tbnet_core::dp_train::WorkerPolicy::Fixed(1);
    for (name, spec) in zoo_specs() {
        let mut artifacts = run_pipeline(&spec, &d, &cfg).unwrap();
        let eval = d.test().gather(&(0..d.test().len()).collect::<Vec<_>>());
        let model = &mut artifacts.model;

        let reference = model.predict(&eval.images).unwrap();
        let fused = model.predict_fused(&eval.images).unwrap();
        let int8 = model.predict_int8(&eval.images).unwrap();

        // Fused differs from the reference only by BN-folding rounding.
        let scale = reference
            .as_slice()
            .iter()
            .fold(0.0f32, |m, x| m.max(x.abs()))
            .max(1.0);
        let fused_err = max_abs_diff(&reference, &fused);
        assert!(
            fused_err <= 1e-3 * scale,
            "{name}: fused logits drifted {fused_err} (scale {scale})"
        );

        let ra = argmax_rows(&reference);
        let fa = argmax_rows(&fused);
        let qa = argmax_rows(&int8);
        let fused_agree = ra.iter().zip(&fa).filter(|(a, b)| a == b).count();
        let int8_agree = ra.iter().zip(&qa).filter(|(a, b)| a == b).count();
        assert_eq!(
            fused_agree,
            ra.len(),
            "{name}: fused top-1 diverged from reference"
        );
        assert!(
            int8_agree as f64 / ra.len() as f64 >= 0.99,
            "{name}: int8 top-1 agreement {}/{}",
            int8_agree,
            ra.len()
        );
    }
}
