//! Parity of the inference fast path against the training-shaped forward.
//!
//! Three layers of the stack are compared:
//!
//! 1. **Unit level, across the kernel dispatch matrix** — one conv→BN→ReLU
//!    unit per geometry (1×1 / 3×3-s1-p1 / general stride & pad edges,
//!    batch 1 and 16, with and without pooling, skip and merge epilogues).
//!    `Unit::forward_inference` folds BN into the packed weight and runs
//!    the epilogue inside the conv kernel; it must match `forward(Eval)`
//!    to ≤1e-5.
//! 2. **Model level** — `ChainNet::predict_inference` and
//!    `TwoBranchModel::predict_fused` against their unfused references on
//!    both paper-family geometries (VGG chain and bottleneck-residual with
//!    identity skips). Fold rounding compounds across depth, so the logit
//!    tolerance is 1e-4.
//! 3. **Int8 branch** — on a *trained* smoke deployment, the quantized
//!    rich branch must agree with the unfused f32 reference on ≥99% of
//!    top-1 decisions; the max absolute logit error is printed.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tbnet_core::pipeline::{run_pipeline, PipelineConfig};
use tbnet_core::TwoBranchModel;
use tbnet_data::{DatasetKind, SyntheticCifar};
use tbnet_models::{resnet, vgg, ChainNet, HeadSpec, ModelSpec, UnitSpec};
use tbnet_nn::{Layer, Mode};
use tbnet_tensor::{init, BackendKind, Tensor};

fn max_abs_diff(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.dims(), b.dims(), "shape mismatch");
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max)
}

/// Builds a warmed single-unit net: `c_in → c_out` with the given conv
/// geometry, BN running statistics warmed by a few training forwards.
#[allow(clippy::too_many_arguments)] // a test-matrix constructor, one arg per axis
fn warmed_unit_net(
    c_in: usize,
    c_out: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    pool: Option<usize>,
    hw: usize,
    backend: BackendKind,
    rng: &mut StdRng,
) -> ChainNet {
    let spec = ModelSpec {
        name: format!("unit-k{kernel}s{stride}p{pad}"),
        in_channels: c_in,
        input_hw: (hw, hw),
        classes: 2,
        units: vec![UnitSpec {
            out_channels: c_out,
            kernel,
            stride,
            pad,
            pool_after: pool,
            group: 0,
            skip_from: None,
            depthwise: false,
        }],
        head: HeadSpec::GapLinear,
    };
    let mut net = ChainNet::from_spec(&spec, rng).unwrap();
    net.set_backend(backend);
    for _ in 0..3 {
        let warm = init::randn(&[4, c_in, hw, hw], 1.0, rng);
        net.forward(&warm, Mode::Train).unwrap();
    }
    net
}

#[test]
fn unit_fused_matches_eval_across_dispatch_matrix() {
    let mut rng = StdRng::seed_from_u64(41);
    // (kernel, stride, pad, pool): the 1×1 strided-matmul path, the direct
    // 3×3 stencil, the general im2col panels (5×5, stride 2, pad 0 edge)
    // and the pooled variant.
    let geometries = [
        (1usize, 1usize, 0usize, None),
        (1, 2, 0, None),
        (3, 1, 1, None),
        (3, 2, 1, None),
        (3, 1, 0, None),
        (5, 1, 2, None),
        (3, 1, 1, Some(2)),
    ];
    for backend in [BackendKind::Parallel, BackendKind::Naive] {
        for &(k, s, p, pool) in &geometries {
            for batch in [1usize, 16] {
                let mut net = warmed_unit_net(5, 7, k, s, p, pool, 12, backend, &mut rng);
                let x = init::randn(&[batch, 5, 12, 12], 1.0, &mut rng);
                let reference = net.units_mut()[0].forward(&x, None, Mode::Eval).unwrap();
                let fused = net.units_mut()[0]
                    .forward_inference(&x, None, None)
                    .unwrap();
                let err = max_abs_diff(&reference, &fused);
                assert!(
                    err <= 1e-5,
                    "{backend:?} k{k} s{s} p{p} pool{pool:?} b{batch}: \
                     fused unit deviates by {err}"
                );
            }
        }
    }
}

#[test]
fn unit_skip_and_merge_epilogues_match_unfused_composition() {
    let mut rng = StdRng::seed_from_u64(43);
    for pool in [None, Some(2)] {
        // Same-width 3×3 s1 p1 so a skip tensor with the unit's output shape
        // exists; the skip adds post-BN (AddRelu), the merge adds after the
        // activation and pooling (ReluAdd / post-pool add).
        let mut net = warmed_unit_net(6, 6, 3, 1, 1, pool, 10, BackendKind::Parallel, &mut rng);
        let x = init::randn(&[4, 6, 10, 10], 1.0, &mut rng);

        let out_dims = net.units_mut()[0]
            .forward(&x, None, Mode::Eval)
            .unwrap()
            .dims()
            .to_vec();
        let pre_pool_dims = if pool.is_some() {
            vec![4, 6, 10, 10]
        } else {
            out_dims.clone()
        };

        // Skip epilogue: reference adds pre-activation inside forward().
        let skip = init::randn(&pre_pool_dims, 1.0, &mut rng);
        let reference = net.units_mut()[0]
            .forward(&x, Some(&skip), Mode::Eval)
            .unwrap();
        let fused = net.units_mut()[0]
            .forward_inference(&x, Some(&skip), None)
            .unwrap();
        let err = max_abs_diff(&reference, &fused);
        assert!(
            err <= 1e-5,
            "skip epilogue (pool {pool:?}) deviates by {err}"
        );

        // Merge epilogue: reference adds after the full unit.
        let merge = init::randn(&out_dims, 1.0, &mut rng);
        let mut reference = net.units_mut()[0].forward(&x, None, Mode::Eval).unwrap();
        for (r, m) in reference.as_mut_slice().iter_mut().zip(merge.as_slice()) {
            *r += m;
        }
        let fused = net.units_mut()[0]
            .forward_inference(&x, None, Some(&merge))
            .unwrap();
        let err = max_abs_diff(&reference, &fused);
        assert!(
            err <= 1e-5,
            "merge epilogue (pool {pool:?}) deviates by {err}"
        );
    }
}

#[test]
fn chain_predict_inference_matches_predict() {
    let mut rng = StdRng::seed_from_u64(47);
    let specs = [
        vgg::vgg_from_stages("vgg-par", &[(6, 2), (8, 2)], 4, 3, (16, 16)),
        resnet::bottleneck_from_stages("bneck-par", &[8, 12], 2, 4, 3, (16, 16)),
    ];
    for spec in specs {
        let mut net = ChainNet::from_spec(&spec, &mut rng).unwrap();
        net.set_backend(BackendKind::Parallel);
        for _ in 0..3 {
            let warm = init::randn(&[4, 3, 16, 16], 1.0, &mut rng);
            net.forward(&warm, Mode::Train).unwrap();
        }
        let x = init::randn(&[8, 3, 16, 16], 1.0, &mut rng);
        let reference = net.forward(&x, Mode::Eval).unwrap();
        let fused = net.predict_inference(&x).unwrap();
        let err = max_abs_diff(&reference, &fused);
        assert!(
            err <= 1e-4,
            "{}: predict_inference deviates from eval forward by {err}",
            spec.name
        );
    }
}

#[test]
fn two_branch_predict_fused_matches_predict() {
    let mut rng = StdRng::seed_from_u64(53);
    let specs = [
        vgg::vgg_from_stages("vgg-2b", &[(6, 2), (8, 2)], 4, 3, (16, 16)),
        resnet::bottleneck_from_stages("bneck-2b", &[8, 12], 2, 4, 3, (16, 16)),
    ];
    for spec in specs {
        let victim = ChainNet::from_spec(&spec, &mut rng).unwrap();
        let mut model = TwoBranchModel::from_victim(&victim, &mut rng).unwrap();
        for _ in 0..3 {
            let warm = init::randn(&[4, 3, 16, 16], 1.0, &mut rng);
            model.forward(&warm, Mode::Train).unwrap();
        }
        for batch in [1usize, 16] {
            let x = init::randn(&[batch, 3, 16, 16], 1.0, &mut rng);
            let reference = model.predict(&x).unwrap();
            let fused = model.predict_fused(&x).unwrap();
            let err = max_abs_diff(&reference, &fused);
            assert!(
                err <= 1e-4,
                "{} b{batch}: predict_fused deviates from predict by {err}",
                spec.name
            );
        }
    }
}

#[test]
fn int8_branch_top1_agreement_on_trained_deployment() {
    let data = SyntheticCifar::generate(
        DatasetKind::Cifar10Like
            .config()
            .with_classes(4)
            .with_train_per_class(24)
            .with_test_per_class(32)
            .with_size(12, 12)
            .with_noise_std(0.3),
    );
    let spec = vgg::vgg_from_stages("agree", &[(12, 1), (16, 1)], 4, 3, (12, 12));
    let mut cfg = PipelineConfig::smoke();
    cfg.prune.drop_budget = 1.0;
    let artifacts = run_pipeline(&spec, &data, &cfg).expect("smoke pipeline trains");
    let mut model = artifacts.model;
    let eval = data
        .test()
        .gather(&(0..data.test().len()).collect::<Vec<_>>());

    let reference = model.predict(&eval.images).unwrap();
    let int8 = model.predict_int8(&eval.images).unwrap();

    let classes = reference.dim(1);
    let argmax = |t: &Tensor| -> Vec<usize> {
        t.as_slice()
            .chunks(classes)
            .map(|r| {
                r.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap()
            })
            .collect()
    };
    let ra = argmax(&reference);
    let qa = argmax(&int8);
    let agree = ra.iter().zip(&qa).filter(|(a, b)| a == b).count();
    let agreement = agree as f64 / ra.len() as f64;
    let n = ra.len();
    let max_err = max_abs_diff(&reference, &int8);
    println!("int8 agreement: top-1 {agreement:.4} over {n} samples, max |Δlogit| {max_err:.5}");
    assert!(
        agreement >= 0.99,
        "int8 top-1 agreement {agreement:.4} below 0.99 (max |Δlogit| {max_err:.5})"
    );
}
