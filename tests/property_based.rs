//! Property-based tests (proptest) on the numerical substrates: the
//! invariants the TBNet pipeline silently relies on.

use proptest::prelude::*;

use tbnet_core::{gather_channels, scatter_add_channels, ChannelBook};
use tbnet_tensor::{init, ops, Tensor};

fn small_dims() -> impl Strategy<Value = (usize, usize, usize, usize)> {
    (1usize..3, 1usize..5, 2usize..6, 2usize..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Softmax rows always sum to 1 and stay in [0, 1].
    #[test]
    fn softmax_is_a_distribution(rows in 1usize..5, cols in 1usize..8, seed in 0u64..1000) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let logits = init::randn(&[rows, cols], 3.0, &mut rng);
        let p = ops::softmax_rows(&logits).unwrap();
        for r in 0..rows {
            let row = &p.as_slice()[r * cols..(r + 1) * cols];
            let s: f32 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    /// matmul distributes over addition: (A+B)C = AC + BC.
    #[test]
    fn matmul_distributes(m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in 0u64..1000) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let a = init::randn(&[m, k], 1.0, &mut rng);
        let b = init::randn(&[m, k], 1.0, &mut rng);
        let c = init::randn(&[k, n], 1.0, &mut rng);
        let lhs = ops::matmul(&ops::add(&a, &b).unwrap(), &c).unwrap();
        let rhs = ops::add(&ops::matmul(&a, &c).unwrap(), &ops::matmul(&b, &c).unwrap()).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3 + 1e-3 * x.abs());
        }
    }

    /// Convolution is linear in its input: conv(x+y) = conv(x) + conv(y).
    #[test]
    fn conv_is_linear((n, c, h, w) in small_dims(), seed in 0u64..1000) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let x = init::randn(&[n, c, h, w], 1.0, &mut rng);
        let y = init::randn(&[n, c, h, w], 1.0, &mut rng);
        let wt = init::randn(&[3, c, 3, 3], 0.5, &mut rng);
        let lhs = ops::conv2d_forward(&ops::add(&x, &y).unwrap(), &wt, None, 1, 1).unwrap();
        let rhs = ops::add(
            &ops::conv2d_forward(&x, &wt, None, 1, 1).unwrap(),
            &ops::conv2d_forward(&y, &wt, None, 1, 1).unwrap(),
        )
        .unwrap();
        for (a, b) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((a - b).abs() < 1e-3 + 1e-3 * a.abs());
        }
    }

    /// im2col and col2im are adjoint: <im2col(x), y> == <x, col2im(y)>.
    #[test]
    fn im2col_col2im_adjoint(c in 1usize..4, h in 3usize..7, w in 3usize..7, seed in 0u64..1000) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let x = init::randn(&[c, h, w], 1.0, &mut rng);
        let oh = ops::conv_output_size(h, 3, 1, 1).unwrap();
        let ow = ops::conv_output_size(w, 3, 1, 1).unwrap();
        let y = init::randn(&[c * 9, oh * ow], 1.0, &mut rng);
        let cols = ops::im2col(x.as_slice(), c, h, w, 3, 3, 1, 1).unwrap();
        let lhs: f32 = cols.as_slice().iter().zip(y.as_slice()).map(|(a, b)| a * b).sum();
        let mut back = vec![0.0f32; c * h * w];
        ops::col2im(&y, &mut back, c, h, w, 3, 3, 1, 1).unwrap();
        let rhs: f32 = back.iter().zip(x.as_slice()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()));
    }

    /// gather/scatter are adjoint for any valid index set — the property the
    /// two-branch merge backward pass depends on after rollback.
    #[test]
    fn gather_scatter_adjoint(
        (n, c, h, w) in small_dims(),
        seed in 0u64..1000,
        idx_seed in 0u64..1000,
    ) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let x = init::randn(&[n, c, h, w], 1.0, &mut rng);
        let mut irng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(idx_seed);
        let k = 1 + (idx_seed as usize % c);
        let idx: Vec<usize> = (0..k).map(|_| rand::Rng::gen_range(&mut irng, 0..c)).collect();
        let y = init::randn(&[n, k, h, w], 1.0, &mut rng);
        let gx = gather_channels(&x, &idx).unwrap();
        let lhs: f32 = gx.as_slice().iter().zip(y.as_slice()).map(|(a, b)| a * b).sum();
        let mut sc = Tensor::zeros(x.dims());
        scatter_add_channels(&mut sc, &y, &idx).unwrap();
        let rhs: f32 = sc.as_slice().iter().zip(x.as_slice()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()));
    }

    /// Channel books: any sequence of masks keeps ids sorted, unique and a
    /// subset of the previous generation (the rollback-alignment invariant).
    #[test]
    fn channel_book_masks_preserve_subset_order(
        channels in 2usize..12,
        mask_bits in proptest::collection::vec(any::<bool>(), 2..12),
    ) {
        let mut book = ChannelBook::identity(&[channels]);
        let before = book.unit(0).to_vec();
        let mut mask = vec![false; channels];
        for (m, &b) in mask.iter_mut().zip(&mask_bits) {
            *m = b;
        }
        mask[0] = true; // keep at least one channel
        book.apply_mask(0, &mask).unwrap();
        let after = book.unit(0);
        prop_assert!(after.windows(2).all(|p| p[0] < p[1]));
        prop_assert!(after.iter().all(|id| before.contains(id)));
        // Alignment into the identity book recovers the ids themselves.
        let wide = ChannelBook::identity(&[channels]);
        let maps = book.alignment_into(&wide).unwrap();
        prop_assert_eq!(&maps[0], after);
    }

    /// im2col/col2im stay adjoint on the widened 5×5 stencil geometry — both
    /// the direct-dispatch shape (stride 1 / pad 2) and the strided panel
    /// fallback (stride 2).
    #[test]
    fn im2col_col2im_adjoint_5x5(
        c in 1usize..4,
        h in 5usize..9,
        w in 5usize..9,
        stride in 1usize..3,
        seed in 0u64..1000,
    ) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let x = init::randn(&[c, h, w], 1.0, &mut rng);
        let oh = ops::conv_output_size(h, 5, stride, 2).unwrap();
        let ow = ops::conv_output_size(w, 5, stride, 2).unwrap();
        let y = init::randn(&[c * 25, oh * ow], 1.0, &mut rng);
        let cols = ops::im2col(x.as_slice(), c, h, w, 5, 5, stride, 2).unwrap();
        let lhs: f32 = cols.as_slice().iter().zip(y.as_slice()).map(|(a, b)| a * b).sum();
        let mut back = vec![0.0f32; c * h * w];
        ops::col2im(&y, &mut back, c, h, w, 5, 5, stride, 2).unwrap();
        let rhs: f32 = back.iter().zip(x.as_slice()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()));
    }

    /// The depthwise convolution is linear in both arguments, so its backward
    /// pass must be the exact adjoint of the forward map:
    /// ⟨dw(x; w), g⟩ = ⟨x, ∂L/∂x⟩ = ⟨w, ∂L/∂w⟩.
    #[test]
    fn depthwise_forward_backward_adjoint(
        (n, c, h, w) in small_dims(),
        wide in any::<bool>(),
        stride in 1usize..3,
        seed in 0u64..1000,
    ) {
        let (kernel, pad) = if wide { (5, 2) } else { (3, 1) };
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let x = init::randn(&[n, c, h, w], 1.0, &mut rng);
        let wt = init::randn(&[c, 1, kernel, kernel], 0.5, &mut rng);
        let packed = ops::PackedConv2dWeight::new(&wt).unwrap();
        let out = ops::conv2d_depthwise_forward(&x, &packed, None, stride, pad).unwrap();
        let g = init::randn(out.dims(), 1.0, &mut rng);
        let grads = ops::conv2d_depthwise_backward(&x, &packed, &g, stride, pad, false).unwrap();
        let lhs: f32 = out.as_slice().iter().zip(g.as_slice()).map(|(a, b)| a * b).sum();
        let via_x: f32 = x
            .as_slice()
            .iter()
            .zip(grads.grad_input.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let via_w: f32 = wt
            .as_slice()
            .iter()
            .zip(grads.grad_weight.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        prop_assert!((lhs - via_x).abs() < 1e-2 * (1.0 + lhs.abs()));
        prop_assert!((lhs - via_w).abs() < 1e-2 * (1.0 + lhs.abs()));
    }

    /// Weight gradients are additive over batch shards for the direct 5×5
    /// path: per-sample backwards sum to the full-batch backward, and each
    /// sample's input gradient is independent of its batch-mates — the
    /// invariant the data-parallel trainer relies on.
    #[test]
    fn shard_grads_add_for_5x5(
        n in 2usize..5,
        c in 1usize..4,
        hw in 5usize..8,
        seed in 0u64..1000,
    ) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let o = 3;
        let x = init::randn(&[n, c, hw, hw], 1.0, &mut rng);
        let wt = init::randn(&[o, c, 5, 5], 0.5, &mut rng);
        let out = ops::conv2d_forward(&x, &wt, None, 1, 2).unwrap();
        let g = init::randn(out.dims(), 1.0, &mut rng);
        let full = ops::conv2d_backward(&x, &wt, &g, 1, 2, false).unwrap();

        let xs = c * hw * hw;
        let gs = g.as_slice().len() / n;
        let mut summed = vec![0.0f32; wt.as_slice().len()];
        for i in 0..n {
            let xi = Tensor::from_vec(x.as_slice()[i * xs..(i + 1) * xs].to_vec(), &[1, c, hw, hw])
                .unwrap();
            let gi_dims = [1, o, out.dim(2), out.dim(3)];
            let gi =
                Tensor::from_vec(g.as_slice()[i * gs..(i + 1) * gs].to_vec(), &gi_dims).unwrap();
            let shard = ops::conv2d_backward(&xi, &wt, &gi, 1, 2, false).unwrap();
            for (acc, v) in summed.iter_mut().zip(shard.grad_weight.as_slice()) {
                *acc += v;
            }
            let full_gi = &full.grad_input.as_slice()[i * xs..(i + 1) * xs];
            for (a, b) in shard.grad_input.as_slice().iter().zip(full_gi) {
                prop_assert!((a - b).abs() < 1e-3 + 1e-3 * a.abs());
            }
        }
        for (a, b) in summed.iter().zip(full.grad_weight.as_slice()) {
            prop_assert!((a - b).abs() < 1e-3 + 1e-3 * a.abs());
        }
    }

    /// The same shard additivity for the depthwise kernels (3×3 and 5×5
    /// stencils chosen by the generator).
    #[test]
    fn shard_grads_add_for_depthwise(
        n in 2usize..5,
        c in 1usize..5,
        hw in 5usize..8,
        wide in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let (kernel, pad) = if wide { (5, 2) } else { (3, 1) };
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let x = init::randn(&[n, c, hw, hw], 1.0, &mut rng);
        let wt = init::randn(&[c, 1, kernel, kernel], 0.5, &mut rng);
        let packed = ops::PackedConv2dWeight::new(&wt).unwrap();
        let out = ops::conv2d_depthwise_forward(&x, &packed, None, 1, pad).unwrap();
        let g = init::randn(out.dims(), 1.0, &mut rng);
        let full = ops::conv2d_depthwise_backward(&x, &packed, &g, 1, pad, false).unwrap();

        let xs = c * hw * hw;
        let gs = g.as_slice().len() / n;
        let mut summed = vec![0.0f32; wt.as_slice().len()];
        for i in 0..n {
            let xi = Tensor::from_vec(x.as_slice()[i * xs..(i + 1) * xs].to_vec(), &[1, c, hw, hw])
                .unwrap();
            let gi_dims = [1, c, out.dim(2), out.dim(3)];
            let gi =
                Tensor::from_vec(g.as_slice()[i * gs..(i + 1) * gs].to_vec(), &gi_dims).unwrap();
            let shard = ops::conv2d_depthwise_backward(&xi, &packed, &gi, 1, pad, false).unwrap();
            for (acc, v) in summed.iter_mut().zip(shard.grad_weight.as_slice()) {
                *acc += v;
            }
            let full_gi = &full.grad_input.as_slice()[i * xs..(i + 1) * xs];
            for (a, b) in shard.grad_input.as_slice().iter().zip(full_gi) {
                prop_assert!((a - b).abs() < 1e-3 + 1e-3 * a.abs());
            }
        }
        for (a, b) in summed.iter().zip(full.grad_weight.as_slice()) {
            prop_assert!((a - b).abs() < 1e-3 + 1e-3 * a.abs());
        }
    }

    /// Max pooling never invents values: every output element equals some
    /// input element, and pooling then backprop conserves gradient mass.
    #[test]
    fn maxpool_selects_existing_values((n, c) in (1usize..3, 1usize..4), seed in 0u64..1000) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let x = init::randn(&[n, c, 4, 4], 1.0, &mut rng);
        let (y, idx) = ops::maxpool2d_forward(&x, 2).unwrap();
        for &v in y.as_slice() {
            prop_assert!(x.as_slice().contains(&v));
        }
        let g = Tensor::ones(y.dims());
        let gi = ops::maxpool2d_backward(&g, &idx).unwrap();
        prop_assert!((gi.sum() - g.sum()).abs() < 1e-4);
    }
}
