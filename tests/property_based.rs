//! Property-based tests (proptest) on the numerical substrates: the
//! invariants the TBNet pipeline silently relies on.

use proptest::prelude::*;

use tbnet_core::{gather_channels, scatter_add_channels, ChannelBook};
use tbnet_tensor::{init, ops, Tensor};

fn small_dims() -> impl Strategy<Value = (usize, usize, usize, usize)> {
    (1usize..3, 1usize..5, 2usize..6, 2usize..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Softmax rows always sum to 1 and stay in [0, 1].
    #[test]
    fn softmax_is_a_distribution(rows in 1usize..5, cols in 1usize..8, seed in 0u64..1000) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let logits = init::randn(&[rows, cols], 3.0, &mut rng);
        let p = ops::softmax_rows(&logits).unwrap();
        for r in 0..rows {
            let row = &p.as_slice()[r * cols..(r + 1) * cols];
            let s: f32 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    /// matmul distributes over addition: (A+B)C = AC + BC.
    #[test]
    fn matmul_distributes(m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in 0u64..1000) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let a = init::randn(&[m, k], 1.0, &mut rng);
        let b = init::randn(&[m, k], 1.0, &mut rng);
        let c = init::randn(&[k, n], 1.0, &mut rng);
        let lhs = ops::matmul(&ops::add(&a, &b).unwrap(), &c).unwrap();
        let rhs = ops::add(&ops::matmul(&a, &c).unwrap(), &ops::matmul(&b, &c).unwrap()).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3 + 1e-3 * x.abs());
        }
    }

    /// Convolution is linear in its input: conv(x+y) = conv(x) + conv(y).
    #[test]
    fn conv_is_linear((n, c, h, w) in small_dims(), seed in 0u64..1000) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let x = init::randn(&[n, c, h, w], 1.0, &mut rng);
        let y = init::randn(&[n, c, h, w], 1.0, &mut rng);
        let wt = init::randn(&[3, c, 3, 3], 0.5, &mut rng);
        let lhs = ops::conv2d_forward(&ops::add(&x, &y).unwrap(), &wt, None, 1, 1).unwrap();
        let rhs = ops::add(
            &ops::conv2d_forward(&x, &wt, None, 1, 1).unwrap(),
            &ops::conv2d_forward(&y, &wt, None, 1, 1).unwrap(),
        )
        .unwrap();
        for (a, b) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((a - b).abs() < 1e-3 + 1e-3 * a.abs());
        }
    }

    /// im2col and col2im are adjoint: <im2col(x), y> == <x, col2im(y)>.
    #[test]
    fn im2col_col2im_adjoint(c in 1usize..4, h in 3usize..7, w in 3usize..7, seed in 0u64..1000) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let x = init::randn(&[c, h, w], 1.0, &mut rng);
        let oh = ops::conv_output_size(h, 3, 1, 1).unwrap();
        let ow = ops::conv_output_size(w, 3, 1, 1).unwrap();
        let y = init::randn(&[c * 9, oh * ow], 1.0, &mut rng);
        let cols = ops::im2col(x.as_slice(), c, h, w, 3, 3, 1, 1).unwrap();
        let lhs: f32 = cols.as_slice().iter().zip(y.as_slice()).map(|(a, b)| a * b).sum();
        let mut back = vec![0.0f32; c * h * w];
        ops::col2im(&y, &mut back, c, h, w, 3, 3, 1, 1).unwrap();
        let rhs: f32 = back.iter().zip(x.as_slice()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()));
    }

    /// gather/scatter are adjoint for any valid index set — the property the
    /// two-branch merge backward pass depends on after rollback.
    #[test]
    fn gather_scatter_adjoint(
        (n, c, h, w) in small_dims(),
        seed in 0u64..1000,
        idx_seed in 0u64..1000,
    ) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let x = init::randn(&[n, c, h, w], 1.0, &mut rng);
        let mut irng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(idx_seed);
        let k = 1 + (idx_seed as usize % c);
        let idx: Vec<usize> = (0..k).map(|_| rand::Rng::gen_range(&mut irng, 0..c)).collect();
        let y = init::randn(&[n, k, h, w], 1.0, &mut rng);
        let gx = gather_channels(&x, &idx).unwrap();
        let lhs: f32 = gx.as_slice().iter().zip(y.as_slice()).map(|(a, b)| a * b).sum();
        let mut sc = Tensor::zeros(x.dims());
        scatter_add_channels(&mut sc, &y, &idx).unwrap();
        let rhs: f32 = sc.as_slice().iter().zip(x.as_slice()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()));
    }

    /// Channel books: any sequence of masks keeps ids sorted, unique and a
    /// subset of the previous generation (the rollback-alignment invariant).
    #[test]
    fn channel_book_masks_preserve_subset_order(
        channels in 2usize..12,
        mask_bits in proptest::collection::vec(any::<bool>(), 2..12),
    ) {
        let mut book = ChannelBook::identity(&[channels]);
        let before = book.unit(0).to_vec();
        let mut mask = vec![false; channels];
        for (m, &b) in mask.iter_mut().zip(&mask_bits) {
            *m = b;
        }
        mask[0] = true; // keep at least one channel
        book.apply_mask(0, &mask).unwrap();
        let after = book.unit(0);
        prop_assert!(after.windows(2).all(|p| p[0] < p[1]));
        prop_assert!(after.iter().all(|id| before.contains(id)));
        // Alignment into the identity book recovers the ids themselves.
        let wide = ChannelBook::identity(&[channels]);
        let maps = book.alignment_into(&wide).unwrap();
        prop_assert_eq!(&maps[0], after);
    }

    /// Max pooling never invents values: every output element equals some
    /// input element, and pooling then backprop conserves gradient mass.
    #[test]
    fn maxpool_selects_existing_values((n, c) in (1usize..3, 1usize..4), seed in 0u64..1000) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let x = init::randn(&[n, c, 4, 4], 1.0, &mut rng);
        let (y, idx) = ops::maxpool2d_forward(&x, 2).unwrap();
        for &v in y.as_slice() {
            prop_assert!(x.as_slice().contains(&v));
        }
        let g = Tensor::ones(y.dims());
        let gi = ops::maxpool2d_backward(&g, &idx).unwrap();
        prop_assert!((gi.sum() - g.sum()).abs() < 1e-4);
    }
}
