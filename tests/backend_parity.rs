//! Property tests pinning the `Parallel` backend to the `Naive` oracle:
//! every accelerated kernel must agree with the single-threaded reference
//! within 1e-5 (relative) across randomized shapes, including the
//! stride/pad edge cases admitted by `conv_output_size`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tbnet_core::parallel::parallel_eval;
use tbnet_tensor::ops::{
    col2im, col2im_panel, conv_output_size, im2col, im2col_panel, PackedConv2dWeight,
};
use tbnet_tensor::{init, par, Backend, BackendKind, Tensor};

/// Force multi-chunk code paths even on single-core hosts: with the
/// default thread cap of 1, every chunked kernel would collapse to one
/// chunk and the chunk-boundary arithmetic would go untested.
fn pin_threads() {
    par::set_max_threads(3);
}

fn close(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(a.dims(), b.dims(), "{what}: shape mismatch");
    // Tolerance is 1e-5 relative to the element — or to the tensor's
    // magnitude scale, whichever is larger: reduction outputs can cancel to
    // values far smaller than their accumulation terms, where per-element
    // relative error is dominated by reassociation ulps, not bugs. Real
    // chunking bugs produce errors at the tensor's own scale and still trip
    // this.
    let scale = a.as_slice().iter().fold(0.0f32, |m, x| m.max(x.abs()));
    let tol = 1e-5 * (1.0 + scale);
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert!(
            (x - y).abs() <= 1e-5 * (1.0 + x.abs()) || (x - y).abs() <= tol,
            "{what}[{i}]: naive {x} vs parallel {y} (tol {tol})"
        );
    }
}

fn naive() -> &'static dyn Backend {
    BackendKind::Naive.imp()
}

fn parallel() -> &'static dyn Backend {
    BackendKind::Parallel.imp()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All three matmul variants agree across random (possibly lopsided)
    /// shapes, spanning the small/naive and blocked/threaded code paths.
    #[test]
    fn matmul_variants_agree(m in 1usize..40, k in 1usize..40, n in 1usize..40, seed in 0u64..1000) {
        pin_threads();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = init::randn(&[m, k], 1.0, &mut rng);
        let b = init::randn(&[k, n], 1.0, &mut rng);
        close(
            &naive().matmul(&a, &b).unwrap(),
            &parallel().matmul(&a, &b).unwrap(),
            "matmul",
        );
        let at = init::randn(&[k, m], 1.0, &mut rng);
        close(
            &naive().matmul_transpose_a(&at, &b).unwrap(),
            &parallel().matmul_transpose_a(&at, &b).unwrap(),
            "matmul_transpose_a",
        );
        let bt = init::randn(&[n, k], 1.0, &mut rng);
        close(
            &naive().matmul_transpose_b(&a, &bt).unwrap(),
            &parallel().matmul_transpose_b(&a, &bt).unwrap(),
            "matmul_transpose_b",
        );
    }

    /// A paper-scale matmul takes the blocked/threaded path; agreement must
    /// hold there too, not just on tiny inputs.
    #[test]
    fn large_matmul_agrees(seed in 0u64..50) {
        pin_threads();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = init::randn(&[96, 130], 1.0, &mut rng);
        let b = init::randn(&[130, 75], 1.0, &mut rng);
        close(
            &naive().matmul(&a, &b).unwrap(),
            &parallel().matmul(&a, &b).unwrap(),
            "large matmul",
        );
    }

    /// Conv forward/backward parity across randomized geometry, including
    /// stride/pad combinations at the edge of validity.
    #[test]
    fn conv2d_agrees(
        n in 1usize..4,
        c in 1usize..4,
        hw in 4usize..10,
        o in 1usize..5,
        kern in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..3,
        seed in 0u64..1000,
    ) {
        pin_threads();
        // Keep only geometries conv_output_size admits (kernel must fit in
        // the padded input).
        if conv_output_size(hw, kern, stride, pad).is_err() {
            return Ok(());
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let x = init::randn(&[n, c, hw, hw], 1.0, &mut rng);
        let w = init::randn(&[o, c, kern, kern], 0.5, &mut rng);
        let bias = init::randn(&[o], 0.1, &mut rng);

        let fwd_naive = naive().conv2d_forward(&x, &w, Some(&bias), stride, pad).unwrap();
        let fwd_par = parallel().conv2d_forward(&x, &w, Some(&bias), stride, pad).unwrap();
        close(&fwd_naive, &fwd_par, "conv2d_forward");

        let grad = init::randn(fwd_naive.dims(), 1.0, &mut rng);
        let bwd_naive = naive().conv2d_backward(&x, &w, &grad, stride, pad, true).unwrap();
        let bwd_par = parallel().conv2d_backward(&x, &w, &grad, stride, pad, true).unwrap();
        close(&bwd_naive.grad_input, &bwd_par.grad_input, "conv2d grad_input");
        close(&bwd_naive.grad_weight, &bwd_par.grad_weight, "conv2d grad_weight");
        close(
            bwd_naive.grad_bias.as_ref().unwrap(),
            bwd_par.grad_bias.as_ref().unwrap(),
            "conv2d grad_bias",
        );
    }

    /// Elementwise and reduction kernels agree (sizes straddle the
    /// parallelization threshold).
    #[test]
    fn elementwise_and_reductions_agree(
        n in 1usize..6,
        c in 1usize..8,
        hw in 1usize..12,
        seed in 0u64..1000,
    ) {
        pin_threads();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = init::randn(&[n, c, hw, hw], 1.0, &mut rng);
        let b = init::randn(&[n, c, hw, hw], 1.0, &mut rng);

        close(&naive().add(&a, &b).unwrap(), &parallel().add(&a, &b).unwrap(), "add");
        close(&naive().sub(&a, &b).unwrap(), &parallel().sub(&a, &b).unwrap(), "sub");
        close(
            &naive().hadamard(&a, &b).unwrap(),
            &parallel().hadamard(&a, &b).unwrap(),
            "hadamard",
        );
        close(
            &naive().scale(&a, -1.37),
            &parallel().scale(&a, -1.37),
            "scale",
        );

        let (mean_n, var_n) = naive().channel_mean_var(&a).unwrap();
        let (mean_p, var_p) = parallel().channel_mean_var(&a).unwrap();
        close(&mean_n, &mean_p, "channel mean");
        close(&var_n, &var_p, "channel var");
        close(
            &naive().channel_sum(&a).unwrap(),
            &parallel().channel_sum(&a).unwrap(),
            "channel_sum",
        );

        let logits = init::randn(&[n * c, hw * hw], 2.0, &mut rng);
        close(
            &naive().softmax_rows(&logits).unwrap(),
            &parallel().softmax_rows(&logits).unwrap(),
            "softmax_rows",
        );
        close(
            &naive().sum_axis0(&logits).unwrap(),
            &parallel().sum_axis0(&logits).unwrap(),
            "sum_axis0",
        );
    }

    /// BatchNorm channel kernels and pooling agree.
    #[test]
    fn bn_and_pool_agree(
        n in 1usize..4,
        c in 1usize..6,
        half in 1usize..6,
        seed in 0u64..1000,
    ) {
        pin_threads();
        let hw = half * 2; // even spatial so 2x2 max pooling is valid
        let mut rng = StdRng::seed_from_u64(seed);
        let x = init::randn(&[n, c, hw, hw], 1.0, &mut rng);
        let (mean, var) = naive().channel_mean_var(&x).unwrap();
        let inv_std = var.map(|v| 1.0 / (v + 1e-5).sqrt());
        let gamma = init::randn(&[c], 1.0, &mut rng);
        let beta = init::randn(&[c], 1.0, &mut rng);

        let xh_n = naive().bn_normalize(&x, &mean, &inv_std).unwrap();
        let xh_p = parallel().bn_normalize(&x, &mean, &inv_std).unwrap();
        close(&xh_n, &xh_p, "bn_normalize");
        close(
            &naive().channel_affine(&xh_n, &gamma, &beta).unwrap(),
            &parallel().channel_affine(&xh_n, &gamma, &beta).unwrap(),
            "channel_affine",
        );

        let g = init::randn(&[n, c, hw, hw], 1.0, &mut rng);
        let (sd_n, sdx_n) = naive().bn_backward_reduce(&g, &xh_n).unwrap();
        let (sd_p, sdx_p) = parallel().bn_backward_reduce(&g, &xh_n).unwrap();
        close(&sd_n, &sd_p, "bn sum_dy");
        close(&sdx_n, &sdx_p, "bn sum_dy_xhat");
        close(
            &naive().bn_input_grad(&g, &xh_n, &gamma, &inv_std, &sd_n, &sdx_n).unwrap(),
            &parallel().bn_input_grad(&g, &xh_n, &gamma, &inv_std, &sd_n, &sdx_n).unwrap(),
            "bn_input_grad",
        );

        let (pool_n, idx_n) = naive().maxpool2d_forward(&x, 2).unwrap();
        let (pool_p, idx_p) = parallel().maxpool2d_forward(&x, 2).unwrap();
        close(&pool_n, &pool_p, "maxpool fwd");
        let pg = init::randn(pool_n.dims(), 1.0, &mut rng);
        close(
            &naive().maxpool2d_backward(&pg, &idx_n).unwrap(),
            &parallel().maxpool2d_backward(&pg, &idx_p).unwrap(),
            "maxpool bwd",
        );

        let gap_n = naive().avgpool2d_global_forward(&x).unwrap();
        close(
            &gap_n,
            &parallel().avgpool2d_global_forward(&x).unwrap(),
            "gap fwd",
        );
        let gg = init::randn(gap_n.dims(), 1.0, &mut rng);
        close(
            &naive().avgpool2d_global_backward(&gg, x.dims()).unwrap(),
            &parallel().avgpool2d_global_backward(&gg, x.dims()).unwrap(),
            "gap bwd",
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The panel-wise unfold tiles exactly to the whole-matrix `im2col`,
    /// and `col2im_panel` is its adjoint: `⟨im2col(x), y⟩ = ⟨x, col2im(y)⟩`
    /// assembled panel by panel over an arbitrary row partition. Adjointness
    /// is what makes the fused backward the true gradient of the fused
    /// forward.
    #[test]
    fn panel_unfold_tiles_and_is_adjoint(
        c in 1usize..4,
        h in 3usize..9,
        w in 3usize..9,
        kern in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..3,
        tile in 1usize..4,
        seed in 0u64..1000,
    ) {
        if conv_output_size(h, kern, stride, pad).is_err()
            || conv_output_size(w, kern, stride, pad).is_err()
        {
            return Ok(());
        }
        let oh = conv_output_size(h, kern, stride, pad).unwrap();
        let ow = conv_output_size(w, kern, stride, pad).unwrap();
        let ckk = c * kern * kern;
        let spatial = oh * ow;
        let mut rng = StdRng::seed_from_u64(seed);
        let x = init::randn(&[c, h, w], 1.0, &mut rng);
        let y = init::randn(&[ckk, spatial], 1.0, &mut rng);

        // Assemble the unfold panel by panel…
        let mut assembled = vec![0.0f32; ckk * spatial];
        let mut oh0 = 0;
        while oh0 < oh {
            let oh1 = (oh0 + tile).min(oh);
            let t = (oh1 - oh0) * ow;
            let mut panel = vec![0.0f32; ckk * t];
            im2col_panel(x.as_slice(), c, h, w, kern, kern, stride, pad, oh0, oh1, &mut panel)
                .unwrap();
            for row in 0..ckk {
                assembled[row * spatial + oh0 * ow..row * spatial + oh0 * ow + t]
                    .copy_from_slice(&panel[row * t..(row + 1) * t]);
            }
            oh0 = oh1;
        }
        // …and it must equal the whole-matrix reference unfold.
        let full = im2col(x.as_slice(), c, h, w, kern, kern, stride, pad).unwrap();
        prop_assert_eq!(full.as_slice(), assembled.as_slice());

        // Adjointness through the panel fold.
        let lhs: f64 = assembled
            .iter()
            .zip(y.as_slice())
            .map(|(a, b)| (a * b) as f64)
            .sum();
        let mut folded = vec![0.0f32; c * h * w];
        let mut oh0 = 0;
        while oh0 < oh {
            let oh1 = (oh0 + tile).min(oh);
            let t = (oh1 - oh0) * ow;
            let mut y_panel = vec![0.0f32; ckk * t];
            for row in 0..ckk {
                y_panel[row * t..(row + 1) * t].copy_from_slice(
                    &y.as_slice()[row * spatial + oh0 * ow..row * spatial + oh0 * ow + t],
                );
            }
            col2im_panel(&y_panel, &mut folded, c, h, w, kern, kern, stride, pad, oh0, oh1)
                .unwrap();
            oh0 = oh1;
        }
        let rhs: f64 = folded
            .iter()
            .zip(x.as_slice())
            .map(|(a, b)| (a * b) as f64)
            .sum();
        prop_assert!((lhs - rhs).abs() < 1e-2, "⟨im2col x, y⟩ {lhs} vs ⟨x, col2im y⟩ {rhs}");

        // Panel fold assembled over the partition equals the whole-matrix
        // fold.
        let mut folded_full = vec![0.0f32; c * h * w];
        col2im(&y, &mut folded_full, c, h, w, kern, kern, stride, pad).unwrap();
        for (i, (a, b)) in folded.iter().zip(&folded_full).enumerate() {
            prop_assert!((a - b).abs() <= 1e-5 * (1.0 + a.abs()), "col2im[{i}]: {a} vs {b}");
        }
    }
}

/// Pins every shape-dispatch path of the fused conv engine (1×1 pure
/// matmul, 1×1 strided, direct 3×3, panel-wise im2col fallback) to the
/// naive oracle across stride/pad edge shapes, on both the raw-weight and
/// the packed (layer steady-state) entry points.
#[test]
fn fused_dispatch_paths_match_oracle() {
    pin_threads();
    let mut rng = StdRng::seed_from_u64(77);
    // (c, hw, o, kern, stride, pad, label)
    let cases: &[(usize, usize, usize, usize, usize, usize, &str)] = &[
        (8, 10, 12, 1, 1, 0, "1x1 pure matmul"),
        (8, 10, 12, 1, 2, 0, "1x1 strided matmul"),
        (8, 11, 12, 1, 3, 0, "1x1 stride 3"),
        (8, 10, 12, 1, 1, 1, "1x1 padded (panel fallback)"),
        (6, 10, 8, 3, 1, 1, "direct 3x3"),
        (3, 9, 4, 3, 1, 1, "direct 3x3 odd width"),
        (6, 10, 7, 3, 1, 1, "direct 3x3 remainder channels"),
        (
            64,
            12,
            64,
            3,
            1,
            1,
            "3x3 above direct flop ceiling (panels)",
        ),
        (6, 10, 8, 3, 2, 1, "3x3 strided (panel fallback)"),
        (6, 10, 8, 3, 1, 0, "3x3 unpadded (panel fallback)"),
        (6, 10, 8, 3, 1, 2, "3x3 over-padded (panel fallback)"),
        (4, 12, 6, 5, 1, 2, "5x5 panels"),
        (4, 12, 6, 5, 2, 2, "5x5 strided panels"),
        (4, 9, 6, 4, 3, 1, "4x4 stride 3 panels"),
        (2, 5, 3, 5, 1, 0, "kernel == input (single output)"),
        (2, 4, 3, 7, 1, 2, "kernel larger than input, padded"),
    ];
    for &(c, hw, o, kern, stride, pad, label) in cases {
        assert!(
            conv_output_size(hw, kern, stride, pad).is_ok(),
            "bad case {label}"
        );
        for n in [1usize, 3] {
            let x = init::randn(&[n, c, hw, hw], 1.0, &mut rng);
            let w = init::randn(&[o, c, kern, kern], 0.5, &mut rng);
            let bias = init::randn(&[o], 0.1, &mut rng);
            let packed = PackedConv2dWeight::new(&w).unwrap();

            let fwd_n = naive()
                .conv2d_forward(&x, &w, Some(&bias), stride, pad)
                .unwrap();
            let fwd_p = parallel()
                .conv2d_forward(&x, &w, Some(&bias), stride, pad)
                .unwrap();
            close(&fwd_n, &fwd_p, &format!("{label} fwd (raw weight)"));
            let fwd_pk = parallel()
                .conv2d_forward_packed(&x, &packed, Some(&bias), stride, pad)
                .unwrap();
            close(&fwd_n, &fwd_pk, &format!("{label} fwd (packed)"));

            let g = init::randn(fwd_n.dims(), 1.0, &mut rng);
            let bwd_n = naive()
                .conv2d_backward(&x, &w, &g, stride, pad, true)
                .unwrap();
            let bwd_pk = parallel()
                .conv2d_backward_packed(&x, &packed, &g, stride, pad, true)
                .unwrap();
            close(
                &bwd_n.grad_input,
                &bwd_pk.grad_input,
                &format!("{label} grad_input"),
            );
            close(
                &bwd_n.grad_weight,
                &bwd_pk.grad_weight,
                &format!("{label} grad_weight"),
            );
            close(
                bwd_n.grad_bias.as_ref().unwrap(),
                bwd_pk.grad_bias.as_ref().unwrap(),
                &format!("{label} grad_bias"),
            );
        }
    }
}

/// Training-scale tensors cross the parallel kernels' work thresholds
/// (MIN_PAR_ELEMS / MIN_PAR_FLOPS), so with the thread cap pinned above 1
/// this exercises the real multi-chunk branches — chunk offsets, partial
/// folds — rather than the small-input naive fallbacks.
#[test]
fn training_scale_parity_multi_chunk() {
    pin_threads();
    let mut rng = StdRng::seed_from_u64(9);
    // 32*64*32*32 = 2M elements: far beyond every threshold.
    let a = init::randn(&[32, 64, 32, 32], 1.0, &mut rng);
    let b = init::randn(&[32, 64, 32, 32], 1.0, &mut rng);

    close(
        &naive().add(&a, &b).unwrap(),
        &parallel().add(&a, &b).unwrap(),
        "large add",
    );
    let mut aa = a.clone();
    let mut ab = a.clone();
    naive().add_scaled(&mut aa, &b, 0.37).unwrap();
    parallel().add_scaled(&mut ab, &b, 0.37).unwrap();
    close(&aa, &ab, "large add_scaled");
    close(
        &naive().unary(&a, &|x| x.max(0.0)),
        &parallel().unary(&a, &|x| x.max(0.0)),
        "large unary relu",
    );

    let (mean, var) = naive().channel_mean_var(&a).unwrap();
    let (mean_p, var_p) = parallel().channel_mean_var(&a).unwrap();
    close(&mean, &mean_p, "large channel mean");
    close(&var, &var_p, "large channel var");
    let inv_std = var.map(|v| 1.0 / (v + 1e-5).sqrt());
    let gamma = init::randn(&[64], 1.0, &mut rng);
    let beta = init::randn(&[64], 1.0, &mut rng);
    let xh = naive().bn_normalize(&a, &mean, &inv_std).unwrap();
    close(
        &xh,
        &parallel().bn_normalize(&a, &mean, &inv_std).unwrap(),
        "large bn_normalize",
    );
    close(
        &naive().channel_affine(&xh, &gamma, &beta).unwrap(),
        &parallel().channel_affine(&xh, &gamma, &beta).unwrap(),
        "large channel_affine",
    );
    let (sd, sdx) = naive().bn_backward_reduce(&b, &xh).unwrap();
    let (sd_p, sdx_p) = parallel().bn_backward_reduce(&b, &xh).unwrap();
    close(&sd, &sd_p, "large bn sum_dy");
    close(&sdx, &sdx_p, "large bn sum_dy_xhat");
    close(
        &naive()
            .bn_input_grad(&b, &xh, &gamma, &inv_std, &sd, &sdx)
            .unwrap(),
        &parallel()
            .bn_input_grad(&b, &xh, &gamma, &inv_std, &sd, &sdx)
            .unwrap(),
        "large bn_input_grad",
    );

    let (pool_n, idx_n) = naive().maxpool2d_forward(&a, 2).unwrap();
    let (pool_p, idx_p) = parallel().maxpool2d_forward(&a, 2).unwrap();
    close(&pool_n, &pool_p, "large maxpool fwd");
    let pg = init::randn(pool_n.dims(), 1.0, &mut rng);
    close(
        &naive().maxpool2d_backward(&pg, &idx_n).unwrap(),
        &parallel().maxpool2d_backward(&pg, &idx_p).unwrap(),
        "large maxpool bwd",
    );
    close(
        &naive().avgpool2d_global_forward(&a).unwrap(),
        &parallel().avgpool2d_global_forward(&a).unwrap(),
        "large gap fwd",
    );

    let m = init::randn(&[512, 160], 2.0, &mut rng);
    close(
        &naive().softmax_rows(&m).unwrap(),
        &parallel().softmax_rows(&m).unwrap(),
        "large softmax_rows",
    );
    close(
        &naive().sum_axis0(&m).unwrap(),
        &parallel().sum_axis0(&m).unwrap(),
        "large sum_axis0",
    );
    let mut bias_n = m.clone();
    let mut bias_p = m.clone();
    let bias = init::randn(&[160], 1.0, &mut rng);
    naive().add_bias_rows(&mut bias_n, &bias).unwrap();
    parallel().add_bias_rows(&mut bias_p, &bias).unwrap();
    close(&bias_n, &bias_p, "large add_bias_rows");

    // Conv at ResNet scale (multi-sample, multi-chunk backward).
    let x = init::randn(&[6, 16, 24, 24], 1.0, &mut rng);
    let w = init::randn(&[24, 16, 3, 3], 0.3, &mut rng);
    let fwd_n = naive().conv2d_forward(&x, &w, None, 1, 1).unwrap();
    let fwd_p = parallel().conv2d_forward(&x, &w, None, 1, 1).unwrap();
    close(&fwd_n, &fwd_p, "large conv fwd");
    let g = init::randn(fwd_n.dims(), 1.0, &mut rng);
    let bwd_n = naive().conv2d_backward(&x, &w, &g, 1, 1, false).unwrap();
    let bwd_p = parallel().conv2d_backward(&x, &w, &g, 1, 1, false).unwrap();
    close(
        &bwd_n.grad_input,
        &bwd_p.grad_input,
        "large conv grad_input",
    );
    close(
        &bwd_n.grad_weight,
        &bwd_p.grad_weight,
        "large conv grad_weight",
    );
}

/// Backend choice must not change what a whole network computes: pinning a
/// model to Naive vs Parallel yields matching logits.
#[test]
fn whole_model_forward_parity() {
    use tbnet::models::{vgg, ChainNet};
    use tbnet::nn::{Layer, Mode};

    let spec = vgg::vgg_tiny(10, 3, (16, 16));
    let mut rng = StdRng::seed_from_u64(42);
    let mut net = ChainNet::from_spec(&spec, &mut rng).unwrap();
    let x = init::randn(&[4, 3, 16, 16], 1.0, &mut rng);

    net.set_backend(BackendKind::Naive);
    let logits_naive = net.forward(&x, Mode::Eval).unwrap();
    net.set_backend(BackendKind::Parallel);
    let logits_parallel = net.forward(&x, Mode::Eval).unwrap();
    close(&logits_naive, &logits_parallel, "vgg_tiny logits");
}

/// The batch-parallel evaluator agrees with a hand-rolled sequential loop.
#[test]
fn parallel_eval_matches_sequential() {
    let acc = parallel_eval(&7u8, 97, 8, |_m, r| Ok((r.end as f32, r.len()))).unwrap();
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    let mut start = 0usize;
    while start < 97 {
        let end = (start + 8).min(97);
        num += end as f64 * (end - start) as f64;
        den += (end - start) as f64;
        start = end;
    }
    assert!((acc as f64 - num / den).abs() < 1e-4);
}
