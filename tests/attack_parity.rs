//! Sequential-parity suite for the engine-routed attacker fine-tune: for
//! W ∈ {1, 2, 4} workers, `attack_with_workers` must reproduce
//! `attack_seq`'s loss curve, final weights and BatchNorm running
//! statistics within 1e-5 (W = 1 bit-identically), and
//! `WorkerPolicy::Auto` must stay within the thread cap and resolve
//! deterministically.

use rand::rngs::StdRng;
use rand::SeedableRng;

use tbnet_core::attack::{
    attack_seq, attack_with_workers, fine_tune_attack_seq, fine_tune_attack_with_workers,
};
use tbnet_core::dp_train::WorkerPolicy;
use tbnet_core::train::TrainConfig;
use tbnet_core::transfer::{train_two_branch, TransferConfig};
use tbnet_core::TwoBranchModel;
use tbnet_data::{DatasetKind, SyntheticCifar};
use tbnet_models::{vgg, ChainNet};
use tbnet_nn::optim::Sgd;
use tbnet_nn::{Layer, Mode};
use tbnet_tensor::{par, Tensor};

const TOL: f32 = 1e-5;

/// Forces multi-shard pool paths on few-core dev hosts, but respects an
/// explicit `TBNET_THREADS` (the CI thread matrix runs this suite at both
/// 1 and 4 threads — overriding it here would collapse the legs).
fn pin_threads() {
    if std::env::var("TBNET_THREADS").is_err() {
        par::set_max_threads(4);
    }
}

fn data() -> SyntheticCifar {
    SyntheticCifar::generate(
        DatasetKind::Cifar10Like
            .config()
            .with_classes(4)
            .with_train_per_class(12)
            .with_test_per_class(6)
            .with_size(8, 8)
            .with_noise_std(0.25),
    )
}

/// A knowledge-transferred two-branch model — the deployment the attacker
/// steals `M_R` from.
fn deployed_model(d: &SyntheticCifar, seed: u64) -> TwoBranchModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = vgg::vgg_from_stages("attack-parity", &[(8, 1), (8, 1)], 4, 3, (8, 8));
    let victim = ChainNet::from_spec(&spec, &mut rng).unwrap();
    let mut tb = TwoBranchModel::from_victim(&victim, &mut rng).unwrap();
    train_two_branch(&mut tb, d.train(), &TransferConfig::paper_scaled(3)).unwrap();
    tb
}

fn cfg(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 16,
        ..TrainConfig::paper_scaled(epochs)
    }
}

fn collect_params(net: &mut ChainNet) -> Vec<Tensor> {
    let mut out = Vec::new();
    net.visit_params(&mut |p| out.push(p.value.clone()));
    out
}

fn collect_bn_stats(net: &ChainNet) -> Vec<(Tensor, Tensor)> {
    net.units()
        .iter()
        .map(|u| (u.bn().running_mean().clone(), u.bn().running_var().clone()))
        .collect()
}

fn max_abs_diff(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.dims(), b.dims(), "shape drift between trainers");
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max)
}

/// Fine-tunes the stolen branch with the sequential reference and the
/// engine at `workers` shards from identical initial state, asserting
/// epoch-by-epoch loss parity plus final weight and BN running-stat parity
/// within `tol` (`0.0` = bit-identical).
fn assert_attack_parity(workers: usize, tol: f32, seed: u64) {
    let d = data();
    let stolen0 = deployed_model(&d, seed).extract_unsecured_branch();
    let cfg = cfg(3);

    let mut seq_net = stolen0.clone();
    let seq_hist = attack_seq(&mut seq_net, d.train(), &cfg).unwrap();
    let mut dp_net = stolen0;
    let dp_hist = attack_with_workers(&mut dp_net, d.train(), &cfg, workers).unwrap();

    assert_eq!(seq_hist.len(), dp_hist.len());
    for (s, p) in seq_hist.iter().zip(&dp_hist) {
        assert!(
            (s.train_loss - p.train_loss).abs() <= tol,
            "W={workers} epoch {}: sequential loss {} vs engine {}",
            s.epoch,
            s.train_loss,
            p.train_loss
        );
        assert!(
            (s.train_acc - p.train_acc).abs() <= tol,
            "W={workers} epoch {}: accuracy diverged",
            s.epoch
        );
    }

    for (i, (s, p)) in collect_params(&mut seq_net)
        .iter()
        .zip(&collect_params(&mut dp_net))
        .enumerate()
    {
        let diff = max_abs_diff(s, p);
        assert!(diff <= tol, "W={workers} param {i}: max |Δ| = {diff}");
    }

    for (i, ((sm, sv), (pm, pv))) in collect_bn_stats(&seq_net)
        .iter()
        .zip(&collect_bn_stats(&dp_net))
        .enumerate()
    {
        assert!(
            max_abs_diff(sm, pm) <= tol,
            "W={workers} BN {i} running mean diverged"
        );
        assert!(
            max_abs_diff(sv, pv) <= tol,
            "W={workers} BN {i} running var diverged"
        );
    }

    // Both stolen models predict identically after fine-tuning.
    let batch = d.test().as_batch();
    let ys = seq_net.forward(&batch.images, Mode::Eval).unwrap();
    let yp = dp_net.forward(&batch.images, Mode::Eval).unwrap();
    assert!(
        max_abs_diff(&ys, &yp) <= tol.max(1e-4),
        "W={workers} logits diverged"
    );
}

#[test]
fn one_worker_is_bit_identical_to_sequential() {
    pin_threads();
    // W = 1: one whole-batch shard, identity stat merge, single-shard
    // gradient fold — the engine must reproduce the sequential loop bit
    // for bit, not just within tolerance.
    assert_attack_parity(1, 0.0, 50);
}

#[test]
fn two_workers_match_sequential() {
    pin_threads();
    assert_attack_parity(2, TOL, 51);
}

#[test]
fn four_workers_match_sequential() {
    pin_threads();
    assert_attack_parity(4, TOL, 52);
}

#[test]
fn end_to_end_outcome_matches_sequential_reference() {
    pin_threads();
    let d = data();
    let tb = deployed_model(&d, 53);
    let cfg = cfg(2);
    let seq = fine_tune_attack_seq(&tb, d.train(), d.test(), 0.5, &cfg).unwrap();
    for w in [1usize, 2, 4] {
        let dp = fine_tune_attack_with_workers(&tb, d.train(), d.test(), 0.5, &cfg, w).unwrap();
        assert_eq!(dp.workers, w);
        assert_eq!(dp.samples_used, seq.samples_used);
        assert!(
            (dp.accuracy - seq.accuracy).abs() <= TOL,
            "W={w}: attack accuracy {} vs sequential {}",
            dp.accuracy,
            seq.accuracy
        );
    }
}

#[test]
fn auto_policy_respects_thread_cap_and_is_deterministic() {
    pin_threads();
    let d = data();
    let stolen = deployed_model(&d, 54).extract_unsecured_branch();
    let sgd = Sgd::new(0.05, 0.9, 1e-4).unwrap();

    let w1 = WorkerPolicy::Auto
        .resolve(&stolen, d.train(), 16, &sgd, 0.0)
        .unwrap();
    assert!(
        (1..=par::max_threads()).contains(&w1),
        "Auto resolved to {w1}, cap {}",
        par::max_threads()
    );

    // The probe result is memoized per (model widths, batch, cap), so
    // repeated resolutions are deterministic even though timings are noisy.
    let w2 = WorkerPolicy::Auto
        .resolve(&stolen, d.train(), 16, &sgd, 0.0)
        .unwrap();
    assert_eq!(w1, w2, "Auto must resolve deterministically in-process");

    // Under TBNET_THREADS=1 (the CI matrix' single-thread leg) the
    // candidate set collapses to {1}: no probe, fully deterministic.
    if std::env::var("TBNET_THREADS").as_deref() == Ok("1") {
        assert_eq!(w1, 1, "a single-thread cap must resolve to one worker");
    }
}

#[test]
fn auto_policy_trains_identically_to_its_resolved_fixed_count() {
    pin_threads();
    let d = data();
    let stolen0 = deployed_model(&d, 55).extract_unsecured_branch();
    let cfg = cfg(2);
    let sgd = Sgd::new(cfg.lr, cfg.momentum, cfg.weight_decay).unwrap();
    let resolved = WorkerPolicy::Auto
        .resolve(&stolen0, d.train(), cfg.batch_size, &sgd, 0.0)
        .unwrap();

    // Auto is a worker-count chooser, not a different algorithm: training
    // under Auto must equal training under Fixed(resolved) bit for bit.
    let mut auto_net = stolen0.clone();
    let auto_hist =
        attack_with_workers(&mut auto_net, d.train(), &cfg, WorkerPolicy::Auto).unwrap();
    let mut fixed_net = stolen0;
    let fixed_hist = attack_with_workers(&mut fixed_net, d.train(), &cfg, resolved).unwrap();

    for (a, f) in auto_hist.iter().zip(&fixed_hist) {
        assert_eq!(a.train_loss, f.train_loss);
    }
    for (a, f) in collect_params(&mut auto_net)
        .iter()
        .zip(&collect_params(&mut fixed_net))
    {
        assert_eq!(max_abs_diff(a, f), 0.0);
    }
}
