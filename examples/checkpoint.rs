//! Checkpointing a TBNet deployment: save the finalized two-branch model and
//! its deployment plan as JSON, reload them, and verify the restored model
//! predicts identically.
//!
//! ```sh
//! cargo run --release --example checkpoint
//! ```

use tbnet_core::deploy::DeploymentPlan;
use tbnet_core::persist::{load_json, save_json, TwoBranchState};
use tbnet_core::pipeline::{run_pipeline, PipelineConfig};
use tbnet_data::{DatasetKind, SyntheticCifar};
use tbnet_models::vgg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = SyntheticCifar::generate(
        DatasetKind::Cifar10Like
            .config()
            .with_train_per_class(30)
            .with_test_per_class(10),
    );
    let spec = vgg::vgg_tiny(data.train().classes(), 3, (16, 16));
    println!("training a TBNet deployment to checkpoint…");
    let mut artifacts = run_pipeline(&spec, &data, &PipelineConfig::smoke())?;

    let dir = std::env::temp_dir().join("tbnet_checkpoint_example");
    std::fs::create_dir_all(&dir)?;

    // Save the full two-branch model (weights, books, alignment).
    let model_path = dir.join("tbnet_model.json");
    save_json(&TwoBranchState::capture(&artifacts.model), &model_path)?;
    println!("model   → {}", model_path.display());

    // Save the deployment plan (architectures only — what an integrator
    // needs to provision the TEE).
    let plan = DeploymentPlan::new(&artifacts.model, artifacts.victim.spec())?;
    let plan_path = dir.join("deployment_plan.json");
    save_json(&plan, &plan_path)?;
    println!("plan    → {}", plan_path.display());

    // Reload and verify bit-equal predictions.
    let state: TwoBranchState = load_json(&model_path)?;
    let mut restored = state.restore()?;
    let batch = data.test().gather(&[0, 1, 2, 3]);
    let original = artifacts.model.predict(&batch.images)?;
    let reloaded = restored.predict(&batch.images)?;
    let max_diff = original
        .as_slice()
        .iter()
        .zip(reloaded.as_slice())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("restored model max logit difference: {max_diff:.2e}");
    assert_eq!(original.as_slice(), reloaded.as_slice());
    println!("checkpoint roundtrip verified: predictions identical.");

    let plan2: DeploymentPlan = load_json(&plan_path)?;
    println!(
        "plan roundtrip verified: M_T has {} units, M_R has {} units.",
        plan2.mt_spec.units.len(),
        plan2.mr_spec.units.len()
    );
    Ok(())
}
