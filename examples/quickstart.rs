//! Quickstart: protect a small CNN with TBNet in a dozen lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a CIFAR-10-like synthetic dataset, runs the six-step TBNet
//! pipeline (victim training → two-branch init → knowledge transfer →
//! iterative pruning → rollback finalization) and reports what a user sees
//! versus what an attacker gets.

use std::time::Instant;

use tbnet_core::attack::direct_use_attack;
use tbnet_core::pipeline::{run_pipeline, PipelineConfig};
use tbnet_data::{DatasetKind, SyntheticCifar};
use tbnet_models::vgg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A reduced dataset keeps this example under a minute on one core.
    let data = SyntheticCifar::generate(
        DatasetKind::Cifar10Like
            .config()
            .with_train_per_class(40)
            .with_test_per_class(15),
    );
    let spec = vgg::vgg_tiny(data.train().classes(), 3, (16, 16));

    println!(
        "training victim + building TBNet ({} units)…",
        spec.units.len()
    );
    let mut artifacts = run_pipeline(&spec, &data, &PipelineConfig::smoke())?;

    let attack_acc = direct_use_attack(&artifacts.model, data.test())?;
    println!("victim accuracy : {:.1}%", artifacts.victim_acc * 100.0);
    println!(
        "TBNet accuracy  : {:.1}%  (what the user gets, from M_T in the TEE)",
        artifacts.tbnet_acc * 100.0
    );
    println!(
        "attacker direct : {:.1}%  (transplanting M_R from REE memory)",
        attack_acc * 100.0
    );
    println!(
        "accuracy gap    : {:.1} points",
        (artifacts.tbnet_acc - attack_acc) * 100.0
    );
    println!(
        "M_T channels: {:?}",
        artifacts
            .model
            .mt()
            .units()
            .iter()
            .map(|u| u.out_channels())
            .collect::<Vec<_>>()
    );
    println!(
        "M_R channels: {:?}  (rolled back — wider, architecture diverged)",
        artifacts
            .model
            .mr()
            .units()
            .iter()
            .map(|u| u.out_channels())
            .collect::<Vec<_>>()
    );

    // Serving uses the fused inference path: BatchNorm folded into the
    // packed conv weights, ReLU and the branch merge run as conv epilogues.
    let batch = data
        .test()
        .gather(&(0..data.test().len()).collect::<Vec<_>>());
    let model = &mut artifacts.model;
    let time_best = |f: &mut dyn FnMut()| {
        f(); // warm caches, packs and arenas
        (0..5)
            .map(|_| {
                let t0 = Instant::now();
                f();
                t0.elapsed().as_secs_f64() * 1e3
            })
            .fold(f64::MAX, f64::min)
    };
    let unfused_ms = time_best(&mut || {
        model.predict(&batch.images).expect("predict");
    });
    let fused_ms = time_best(&mut || {
        model.predict_fused(&batch.images).expect("fused predict");
    });
    println!(
        "\ninference latency ({} samples): unfused {unfused_ms:.3} ms → fused {fused_ms:.3} ms \
         ({:.2}x)",
        batch.images.dim(0),
        unfused_ms / fused_ms
    );
    Ok(())
}
