//! Attacker's-eye view of a TBNet deployment: direct transplantation and
//! fine-tuning with increasing amounts of stolen training data (the paper's
//! Fig. 2 scenario).
//!
//! ```sh
//! cargo run --release --example attack_study
//! ```

use tbnet_core::attack::{direct_use_attack, fine_tune_attack};
use tbnet_core::pipeline::{run_pipeline, PipelineConfig};
use tbnet_core::train::TrainConfig;
use tbnet_data::{DatasetKind, SyntheticCifar};
use tbnet_models::vgg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = SyntheticCifar::generate(
        DatasetKind::Cifar10Like
            .config()
            .with_train_per_class(40)
            .with_test_per_class(15),
    );
    let spec = vgg::vgg_tiny(data.train().classes(), 3, (16, 16));
    println!("deploying TBNet…");
    let artifacts = run_pipeline(&spec, &data, &PipelineConfig::smoke())?;
    println!("TBNet accuracy: {:.1}%\n", artifacts.tbnet_acc * 100.0);

    // The attacker reads M_R (architecture + weights) straight out of REE
    // memory — that is the threat model; no exploit needed in the simulation.
    let direct = direct_use_attack(&artifacts.model, data.test())?;
    println!("direct use of stolen M_R: {:.1}%", direct * 100.0);

    println!("\nfine-tuning the stolen branch with partial training data:");
    println!("{:>10} {:>9} {:>11}", "fraction", "samples", "attacker %");
    let cfg = TrainConfig::paper_scaled(4);
    for frac in [0.01, 0.1, 0.25, 0.5, 1.0] {
        let out = fine_tune_attack(&artifacts.model, data.train(), data.test(), frac, &cfg)?;
        println!(
            "{:>9.0}% {:>9} {:>10.1}%",
            frac * 100.0,
            out.samples_used,
            out.accuracy * 100.0
        );
    }
    println!(
        "\nTBNet stays at {:.1}% — the attacker cannot match it even with 100% of the data.",
        artifacts.tbnet_acc * 100.0
    );
    Ok(())
}
