//! Deployment planning against the simulated Raspberry-Pi-3/OP-TEE substrate:
//! latency (paper Table 3), secure memory (paper Fig. 3), a world-switch-cost
//! sensitivity sweep, and a *functional* split inference over the
//! type-enforced one-way REE→TEE channel.
//!
//! ```sh
//! cargo run --release --example deployment_report
//! ```

use tbnet_core::deploy::{run_split_inference, DeploymentPlan};
use tbnet_core::pipeline::{run_pipeline, PipelineConfig};
use tbnet_data::{DatasetKind, SyntheticCifar};
use tbnet_models::vgg;
use tbnet_tee::{CostModel, SecureWorld};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = SyntheticCifar::generate(
        DatasetKind::Cifar10Like
            .config()
            .with_train_per_class(40)
            .with_test_per_class(15),
    );
    let spec = vgg::vgg_tiny(data.train().classes(), 3, (16, 16));
    println!("building a finalized TBNet deployment…");
    let mut artifacts = run_pipeline(&spec, &data, &PipelineConfig::smoke())?;
    let plan = DeploymentPlan::new(&artifacts.model, artifacts.victim.spec())?;

    // --- Latency (Table 3 shape). ---
    let cost = CostModel::raspberry_pi3();
    let lat = plan.latency(&cost)?;
    println!("\nlatency (simulated Pi 3 + OP-TEE):");
    println!(
        "  baseline (victim fully in TEE): {:.3} ms",
        lat.baseline.total_s * 1e3
    );
    println!(
        "  TBNet (M_R in REE ∥ M_T in TEE): {:.3} ms",
        lat.tbnet.total_s * 1e3
    );
    println!(
        "  reduction: {:.2}x  ({} world switches)",
        lat.reduction_factor(),
        lat.tbnet.switches
    );

    // --- Secure memory (Fig. 3 shape). ---
    let mem = plan.memory()?;
    println!("\nsecure memory:");
    println!(
        "  baseline: {:.1} KiB (weights {:.1} + activations {:.1})",
        mem.baseline.total() as f64 / 1024.0,
        mem.baseline.weight_bytes as f64 / 1024.0,
        mem.baseline.activation_bytes as f64 / 1024.0
    );
    println!(
        "  TBNet   : {:.1} KiB (weights {:.1} + activations {:.1} + merge buffer {:.1})",
        mem.tbnet.total() as f64 / 1024.0,
        mem.tbnet.weight_bytes as f64 / 1024.0,
        mem.tbnet.activation_bytes as f64 / 1024.0,
        mem.tbnet.merge_buffer_bytes as f64 / 1024.0
    );
    println!("  reduction: {:.2}x", mem.reduction_factor());

    // --- World-switch-cost sensitivity (DESIGN.md ablation 4). ---
    println!("\nworld-switch cost sensitivity (TBNet total latency):");
    for switch_us in [10.0, 60.0, 200.0, 1000.0] {
        let mut c = CostModel::raspberry_pi3();
        c.world_switch_s = switch_us * 1e-6;
        let l = plan.latency(&c)?;
        println!(
            "  {:>6.0} µs/switch → {:.3} ms ({:.2}x vs baseline)",
            switch_us,
            l.tbnet.total_s * 1e3,
            l.baseline.total_s / l.tbnet.total_s
        );
    }

    // --- Budget check: load M_T into a 16 MiB secure world. ---
    let mut world = SecureWorld::from_cost_model(&cost);
    let used = plan.load_into_secure_world(&mut world)?;
    println!(
        "\nsecure world after loading M_T: {used} bytes used of {}",
        cost.secure_memory_budget
    );

    // --- Functional split inference over the one-way channel. ---
    let batch = data.test().gather(&[0, 1, 2, 3]);
    let split = run_split_inference(&mut artifacts.model, &batch.images)?;
    println!(
        "\nfunctional split inference: {} payloads, {} bytes crossed REE→TEE (one-way by type)",
        split.channel.messages, split.channel.bytes
    );
    let t = &split.timings;
    println!(
        "  measured stages: total {:.3} ms (ree {:.3} | transfer {:.3} | tee {:.3} | merge {:.3}) \
         — same shape as the simulator's LatencyReport above",
        t.total_ms, t.ree_ms, t.transfer_ms, t.tee_ms, t.merge_ms
    );
    let monolithic = artifacts.model.predict(&batch.images)?;
    let max_diff = split
        .logits
        .as_slice()
        .iter()
        .zip(monolithic.as_slice())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("  max |split − monolithic| logit difference: {max_diff:.2e}");

    // --- Inference fast path: fused f32 and the int8 REE branch. ---
    let eval = data
        .test()
        .gather(&(0..data.test().len()).collect::<Vec<_>>());
    let model = &mut artifacts.model;
    let time_best = |f: &mut dyn FnMut()| {
        f(); // warm caches, packs and arenas
        (0..5)
            .map(|_| {
                let t0 = std::time::Instant::now();
                f();
                t0.elapsed().as_secs_f64() * 1e3
            })
            .fold(f64::MAX, f64::min)
    };
    let unfused_ms = time_best(&mut || {
        model.predict(&eval.images).expect("predict");
    });
    let fused_ms = time_best(&mut || {
        model.predict_fused(&eval.images).expect("fused predict");
    });
    let int8_ms = time_best(&mut || {
        model.predict_int8(&eval.images).expect("int8 predict");
    });
    println!("\ninference fast path ({} samples):", eval.images.dim(0));
    println!("  unfused f32 (training-shaped): {unfused_ms:.3} ms");
    println!(
        "  fused f32 (BN-folded epilogues): {fused_ms:.3} ms ({:.2}x)",
        unfused_ms / fused_ms
    );
    println!(
        "  int8 M_R + f32 M_T             : {int8_ms:.3} ms ({:.2}x)",
        unfused_ms / int8_ms
    );
    Ok(())
}
