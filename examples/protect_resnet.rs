//! Step-by-step TBNet protection of a residual victim (ResNet-20 family),
//! driving each pipeline stage manually instead of using
//! [`tbnet_core::pipeline::run_pipeline`].
//!
//! ```sh
//! cargo run --release --example protect_resnet
//! ```
//!
//! Residual victims are the interesting case: the unsecured branch `M_R` is
//! initialized from the *main branch only* (skips stripped), so the stolen
//! model is architecturally crippled — the paper's Table 1 shows a 10%
//! (random-chance) direct-use accuracy for ResNet-20 on CIFAR-10.

use rand::SeedableRng;

use tbnet_core::attack::direct_use_attack;
use tbnet_core::pruning::{iterative_prune, PruneConfig};
use tbnet_core::train::{evaluate, train_victim, TrainConfig};
use tbnet_core::transfer::{evaluate_two_branch, train_two_branch, TransferConfig};
use tbnet_core::TwoBranchModel;
use tbnet_data::{DatasetKind, SyntheticCifar};
use tbnet_models::{resnet, ChainNet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = SyntheticCifar::generate(
        DatasetKind::Cifar10Like
            .config()
            .with_train_per_class(40)
            .with_test_per_class(15),
    );
    let spec = resnet::resnet20_tiny(data.train().classes(), 3, (16, 16));
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    // Step 0 — the vendor's victim model.
    println!("[0] training the ResNet-20 victim…");
    let mut victim = ChainNet::from_spec(&spec, &mut rng)?;
    train_victim(&mut victim, data.train(), &TrainConfig::paper_scaled(5))?;
    let victim_acc = evaluate(&mut victim, data.test())?;
    println!("    victim accuracy: {:.1}%", victim_acc * 100.0);

    // Step 1 — two-branch initialization.
    let mut tb = TwoBranchModel::from_victim(&victim, &mut rng)?;
    let mr_skips = tb
        .mr()
        .units()
        .iter()
        .filter(|u| u.spec().skip_from.is_some())
        .count();
    let mt_skips = tb
        .mt()
        .units()
        .iter()
        .filter(|u| u.spec().skip_from.is_some())
        .count();
    println!("[1] two-branch init: M_R skips = {mr_skips}, M_T skips = {mt_skips}");

    // Step 2 — knowledge transfer (Eq. 1).
    println!("[2] knowledge transfer…");
    let history = train_two_branch(&mut tb, data.train(), &TransferConfig::paper_scaled(6))?;
    println!(
        "    CE loss {:.3} → {:.3}",
        history.first().unwrap().ce_loss,
        history.last().unwrap().ce_loss
    );

    // Steps 3–5 — iterative two-branch pruning.
    println!("[3-5] iterative pruning…");
    let mut prune = PruneConfig::paper_scaled(1);
    prune.max_iterations = 3;
    prune.ratio = 0.12;
    prune.drop_budget = 0.08;
    let outcome = iterative_prune(&mut tb, data.train(), data.test(), victim_acc, &prune)?;
    for it in &outcome.history {
        println!(
            "    iter {}: {} channels, acc {:.1}% ({})",
            it.iteration,
            it.channels_after,
            it.accuracy * 100.0,
            if it.kept { "kept" } else { "reverted" }
        );
    }

    // Step 6 — rollback finalization.
    tb.finalize_with_rollback(outcome.rollback_mr, outcome.rollback_mr_book)?;
    println!("[6] rollback finalization done (M_R is one iteration wider than M_T)");

    let tbnet_acc = evaluate_two_branch(&mut tb, data.test())?;
    let attack_acc = direct_use_attack(&tb, data.test())?;
    println!("TBNet accuracy   : {:.1}%", tbnet_acc * 100.0);
    println!(
        "direct-use attack: {:.1}%  (chance = 10%)",
        attack_acc * 100.0
    );
    Ok(())
}
