//! Classification metrics.

use tbnet_tensor::{Tensor, TensorError};

use crate::{NnError, Result};

/// Top-1 accuracy of `logits: [N, C]` against integer `targets`, in `[0, 1]`.
///
/// # Errors
///
/// Returns [`NnError::BatchMismatch`] when the batch sizes disagree and a
/// rank error for non-matrix logits.
pub fn accuracy(logits: &Tensor, targets: &[usize]) -> Result<f32> {
    if logits.rank() != 2 {
        return Err(NnError::Tensor(TensorError::RankMismatch {
            expected: 2,
            got: logits.rank(),
            op: "accuracy",
        }));
    }
    let (n, c) = (logits.dim(0), logits.dim(1));
    if targets.len() != n {
        return Err(NnError::BatchMismatch {
            lhs: n,
            rhs: targets.len(),
            op: "accuracy",
        });
    }
    if n == 0 {
        return Ok(0.0);
    }
    let lv = logits.as_slice();
    let mut correct = 0usize;
    for (ni, &t) in targets.iter().enumerate() {
        let row = &lv[ni * c..(ni + 1) * c];
        let mut best = 0usize;
        for (j, &x) in row.iter().enumerate() {
            if x > row[best] {
                best = j;
            }
        }
        if best == t {
            correct += 1;
        }
    }
    Ok(correct as f32 / n as f32)
}

/// A `C × C` confusion matrix: `counts[actual][predicted]`.
///
/// Used by the attack analysis to show *how* a crippled stolen model fails
/// (e.g. collapsing onto one class), not just that it fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<u32>>,
}

impl ConfusionMatrix {
    /// Builds the matrix from logits `[N, C]` and integer targets.
    ///
    /// # Errors
    ///
    /// Same conditions as [`accuracy`].
    pub fn from_logits(logits: &Tensor, targets: &[usize]) -> Result<Self> {
        if logits.rank() != 2 {
            return Err(NnError::Tensor(TensorError::RankMismatch {
                expected: 2,
                got: logits.rank(),
                op: "confusion_matrix",
            }));
        }
        let (n, c) = (logits.dim(0), logits.dim(1));
        if targets.len() != n {
            return Err(NnError::BatchMismatch {
                lhs: n,
                rhs: targets.len(),
                op: "confusion_matrix",
            });
        }
        let mut counts = vec![vec![0u32; c]; c];
        let lv = logits.as_slice();
        for (ni, &t) in targets.iter().enumerate() {
            if t >= c {
                return Err(NnError::LabelOutOfRange {
                    label: t,
                    classes: c,
                });
            }
            let row = &lv[ni * c..(ni + 1) * c];
            let mut best = 0usize;
            for (j, &x) in row.iter().enumerate() {
                if x > row[best] {
                    best = j;
                }
            }
            counts[t][best] += 1;
        }
        Ok(ConfusionMatrix { counts })
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.counts.len()
    }

    /// Count of samples with true class `actual` predicted as `predicted`.
    pub fn count(&self, actual: usize, predicted: usize) -> u32 {
        self.counts[actual][predicted]
    }

    /// Overall accuracy derived from the matrix diagonal.
    pub fn accuracy(&self) -> f32 {
        let total: u32 = self.counts.iter().flatten().sum();
        if total == 0 {
            return 0.0;
        }
        let diag: u32 = (0..self.classes()).map(|i| self.counts[i][i]).sum();
        diag as f32 / total as f32
    }

    /// The class most frequently predicted, with its share of all
    /// predictions — detects mode collapse in stolen models.
    pub fn dominant_prediction(&self) -> Option<(usize, f32)> {
        let c = self.classes();
        let total: u32 = self.counts.iter().flatten().sum();
        if total == 0 {
            return None;
        }
        let mut best = 0usize;
        let mut best_count = 0u32;
        for p in 0..c {
            let col: u32 = (0..c).map(|a| self.counts[a][p]).sum();
            if col > best_count {
                best_count = col;
                best = p;
            }
        }
        Some((best, best_count as f32 / total as f32))
    }
}

/// Running average helper for accumulating per-batch metrics into an epoch
/// summary.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningMean {
    sum: f64,
    weight: f64,
}

impl RunningMean {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation with the given weight (e.g. batch size).
    pub fn add(&mut self, value: f32, weight: usize) {
        self.sum += value as f64 * weight as f64;
        self.weight += weight as f64;
    }

    /// The weighted mean so far (0.0 when empty).
    pub fn mean(&self) -> f32 {
        if self.weight == 0.0 {
            0.0
        } else {
            (self.sum / self.weight) as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_correct_rows() {
        let logits = Tensor::from_vec(
            vec![
                2.0, 1.0, 0.0, // pred 0
                0.0, 3.0, 1.0, // pred 1
                0.0, 1.0, 5.0, // pred 2
            ],
            &[3, 3],
        )
        .unwrap();
        assert!((accuracy(&logits, &[0, 1, 1]).unwrap() - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(accuracy(&logits, &[0, 1, 2]).unwrap(), 1.0);
        assert_eq!(accuracy(&logits, &[1, 0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn validation() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(accuracy(&logits, &[0]).is_err());
        assert!(accuracy(&Tensor::zeros(&[3]), &[0, 1, 2]).is_err());
    }

    #[test]
    fn empty_batch_is_zero() {
        let logits = Tensor::zeros(&[0, 3]);
        assert_eq!(accuracy(&logits, &[]).unwrap(), 0.0);
    }

    #[test]
    fn confusion_matrix_counts_and_accuracy() {
        let logits = Tensor::from_vec(
            vec![
                2.0, 0.0, // pred 0, true 0 ✓
                2.0, 0.0, // pred 0, true 1 ✗
                0.0, 2.0, // pred 1, true 1 ✓
                2.0, 0.0, // pred 0, true 1 ✗
            ],
            &[4, 2],
        )
        .unwrap();
        let cm = ConfusionMatrix::from_logits(&logits, &[0, 1, 1, 1]).unwrap();
        assert_eq!(cm.classes(), 2);
        assert_eq!(cm.count(0, 0), 1);
        assert_eq!(cm.count(1, 0), 2);
        assert_eq!(cm.count(1, 1), 1);
        assert!((cm.accuracy() - 0.5).abs() < 1e-6);
        // Class 0 dominates predictions (3 of 4).
        let (class, share) = cm.dominant_prediction().unwrap();
        assert_eq!(class, 0);
        assert!((share - 0.75).abs() < 1e-6);
    }

    #[test]
    fn confusion_matrix_validation() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(ConfusionMatrix::from_logits(&logits, &[0]).is_err());
        assert!(ConfusionMatrix::from_logits(&logits, &[0, 9]).is_err());
        let empty = ConfusionMatrix::from_logits(&Tensor::zeros(&[0, 3]), &[]).unwrap();
        assert_eq!(empty.accuracy(), 0.0);
        assert!(empty.dominant_prediction().is_none());
    }

    #[test]
    fn running_mean_weights_batches() {
        let mut rm = RunningMean::new();
        assert_eq!(rm.mean(), 0.0);
        rm.add(1.0, 10);
        rm.add(0.0, 30);
        assert!((rm.mean() - 0.25).abs() < 1e-6);
    }
}
