use tbnet_tensor::{BackendKind, Tensor};

use crate::{Layer, Mode, Param, Result};

/// An ordered chain of layers executed front to back (and back to front for
/// gradients).
///
/// `Sequential` is itself a [`Layer`], so chains nest. The victim models in
/// `tbnet-models` are plain `Sequential`s; the two-branch substitution model
/// in `tbnet-core` wires its own graph instead because of the cross-branch
/// merges.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates a chain from boxed layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Sequential { layers }
    }

    /// Creates an empty chain; see [`Sequential::push`].
    pub fn empty() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer to the chain.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers in the chain.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` if the chain has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Borrow the layers.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutably borrow the layers (pruning rewrites them in place).
    pub fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential[")?;
        for (i, l) in self.layers.iter().enumerate() {
            if i > 0 {
                write!(f, " → ")?;
            }
            write!(f, "{}", l.name())?;
        }
        write!(f, "]")
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, mode)?;
        }
        Ok(x)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    fn name(&self) -> &'static str {
        "Sequential"
    }

    fn set_backend(&mut self, kind: BackendKind) {
        for layer in &mut self.layers {
            layer.set_backend(kind);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Linear, Relu};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mlp(rng: &mut StdRng) -> Sequential {
        Sequential::new(vec![
            Box::new(Linear::new(2, 8, rng)),
            Box::new(Relu::new()),
            Box::new(Linear::new(8, 2, rng)),
        ])
    }

    #[test]
    fn forward_chains_layers() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = mlp(&mut rng);
        let y = net.forward(&Tensor::zeros(&[4, 2]), Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[4, 2]);
        assert_eq!(net.len(), 3);
        assert!(!net.is_empty());
    }

    #[test]
    fn backward_chains_in_reverse() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = mlp(&mut rng);
        let x = tbnet_tensor::init::randn(&[3, 2], 1.0, &mut rng);
        let y = net.forward(&x, Mode::Train).unwrap();
        let gx = net.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(gx.dims(), x.dims());
        // Numerical check on one input coordinate.
        let eps = 1e-2f32;
        let mut xp = x.clone();
        xp.as_mut_slice()[0] += eps;
        let mut xm = x.clone();
        xm.as_mut_slice()[0] -= eps;
        let lp = net.forward(&xp, Mode::Eval).unwrap().sum();
        let lm = net.forward(&xm, Mode::Eval).unwrap().sum();
        let num = (lp - lm) / (2.0 * eps);
        assert!((num - gx.as_slice()[0]).abs() < 1e-2);
    }

    #[test]
    fn visits_all_params() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = mlp(&mut rng);
        // 2*8 + 8 + 8*2 + 2 = 42
        assert_eq!(net.param_count(), 42);
    }

    #[test]
    fn push_and_debug() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = Sequential::empty();
        assert!(net.is_empty());
        net.push(Box::new(Linear::new(2, 2, &mut rng)));
        net.push(Box::new(Relu::new()));
        let dbg = format!("{net:?}");
        assert!(dbg.contains("Linear"));
        assert!(dbg.contains("Relu"));
    }
}
