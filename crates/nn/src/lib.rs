//! Neural-network layers with hand-written backpropagation for the TBNet
//! reproduction.
//!
//! The TBNet pipeline (DAC 2024) trains networks three times over — victim
//! training, knowledge transfer into the two-branch substitution model, and
//! the fine-tune step of every pruning iteration — so this crate provides a
//! complete, dependency-free training stack:
//!
//! * [`Layer`] — the forward/backward contract, with parameter visitation for
//!   optimizers ([`Conv2d`], [`BatchNorm2d`], [`Linear`], [`Relu`],
//!   [`MaxPool2d`], [`GlobalAvgPool`], [`Flatten`], [`Sequential`]);
//! * [`loss`] — softmax cross-entropy plus the L1 sparsity penalty on
//!   BatchNorm scales from Eq. 1 of the paper;
//! * [`optim`] — SGD with momentum and weight decay, and the step-decay
//!   learning-rate schedule the paper uses;
//! * [`metrics`] — classification accuracy.
//!
//! # Compute backends
//!
//! Every layer dispatches its kernels through a
//! [`tbnet_tensor::Backend`]: new layers start on the process-wide default
//! (see `tbnet_tensor::backend::global_kind`), and
//! [`Layer::set_backend`] re-pins a layer — containers like [`Sequential`]
//! propagate the choice to their children. Pinning a model to
//! `BackendKind::Naive` reproduces the single-threaded reference
//! arithmetic; `BackendKind::Parallel` runs the blocked/threaded kernels.
//!
//! (An earlier draft kept a stray `src/README.md` beside the sources; its
//! contents are folded into these module docs.)
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), tbnet_nn::NnError> {
//! use rand::SeedableRng;
//! use tbnet_nn::{Layer, Linear, Mode, Relu, Sequential};
//! use tbnet_tensor::Tensor;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut net = Sequential::new(vec![
//!     Box::new(Linear::new(4, 8, &mut rng)),
//!     Box::new(Relu::new()),
//!     Box::new(Linear::new(8, 2, &mut rng)),
//! ]);
//! let x = Tensor::zeros(&[3, 4]);
//! let logits = net.forward(&x, Mode::Eval)?;
//! assert_eq!(logits.dims(), &[3, 2]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod layer;
mod param;
mod sequential;

pub mod layers;
pub mod loss;
pub mod metrics;
pub mod optim;

pub use error::NnError;
pub use layer::{Layer, Mode};
pub use layers::{
    merge_batch_stats, BatchNorm2d, Conv2d, Flatten, GlobalAvgPool, Linear, MaxPool2d, Relu,
};
pub use param::Param;
pub use sequential::Sequential;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, NnError>;
