use std::error::Error;
use std::fmt;

use tbnet_tensor::TensorError;

/// Error type for every fallible operation in `tbnet-nn`.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NnError {
    /// A tensor kernel failed (shape mismatch, bad geometry, …).
    Tensor(TensorError),
    /// `backward` was called without a preceding `forward` (no cache).
    MissingForwardCache {
        /// Layer whose cache was missing.
        layer: &'static str,
    },
    /// A label index was out of range for the number of classes.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// The number of classes.
        classes: usize,
    },
    /// The batch dimension of two related tensors disagreed.
    BatchMismatch {
        /// Batch size of the first operand.
        lhs: usize,
        /// Batch size of the second operand.
        rhs: usize,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// A hyper-parameter was outside its valid range.
    InvalidHyperparameter {
        /// Name of the parameter.
        name: &'static str,
        /// Description of the constraint that was violated.
        reason: String,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor kernel failure: {e}"),
            NnError::MissingForwardCache { layer } => {
                write!(
                    f,
                    "backward called on `{layer}` without a cached forward pass"
                )
            }
            NnError::LabelOutOfRange { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            NnError::BatchMismatch { lhs, rhs, op } => {
                write!(f, "batch size mismatch in `{op}`: {lhs} vs {rhs}")
            }
            NnError::InvalidHyperparameter { name, reason } => {
                write!(f, "invalid hyper-parameter `{name}`: {reason}")
            }
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_tensor_error_with_source() {
        let e = NnError::from(TensorError::ZeroSizedParameter { name: "stride" });
        assert!(e.to_string().contains("stride"));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }

    #[test]
    fn display_variants() {
        assert!(NnError::MissingForwardCache { layer: "conv" }
            .to_string()
            .contains("conv"));
        assert!(NnError::LabelOutOfRange {
            label: 12,
            classes: 10
        }
        .to_string()
        .contains("12"));
        assert!(NnError::BatchMismatch {
            lhs: 4,
            rhs: 8,
            op: "loss"
        }
        .to_string()
        .contains("loss"));
    }
}
