//! Optimizers and learning-rate schedules.
//!
//! The TBNet paper trains with SGD (lr 0.1, momentum 0.9, weight decay 1e-4)
//! and decays the learning rate ×0.1 every 100 epochs; [`Sgd`] and [`StepLr`]
//! reproduce exactly that configuration (scaled-down epoch counts use the
//! same shapes).

use crate::{Layer, NnError, Result};

/// Stochastic gradient descent with momentum and decoupled per-parameter
/// weight decay (decay is only applied to parameters whose
/// [`Param::decay`](crate::Param) flag is set — convolution and linear
/// weights, not BatchNorm scales).
///
/// The update matches PyTorch's `torch.optim.SGD`:
///
/// ```text
/// g ← grad + wd·θ          (if decay)
/// v ← momentum·v + g
/// θ ← θ − lr·v
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
}

impl Sgd {
    /// Creates an SGD optimizer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidHyperparameter`] for a non-positive learning
    /// rate or momentum/decay outside `[0, 1)` / `[0, ∞)`.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Result<Self> {
        if !(lr > 0.0 && lr.is_finite()) {
            return Err(NnError::InvalidHyperparameter {
                name: "lr",
                reason: format!("must be positive and finite, got {lr}"),
            });
        }
        if !(0.0..1.0).contains(&momentum) {
            return Err(NnError::InvalidHyperparameter {
                name: "momentum",
                reason: format!("must be in [0, 1), got {momentum}"),
            });
        }
        if weight_decay < 0.0 {
            return Err(NnError::InvalidHyperparameter {
                name: "weight_decay",
                reason: format!("must be non-negative, got {weight_decay}"),
            });
        }
        Ok(Sgd {
            lr,
            momentum,
            weight_decay,
        })
    }

    /// The paper's configuration: lr 0.1, momentum 0.9, weight decay 1e-4.
    pub fn paper_defaults() -> Self {
        Sgd {
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 1e-4,
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Overrides the learning rate (driven by a schedule).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update step to every parameter of `layer`.
    pub fn step(&self, layer: &mut dyn Layer) {
        let (lr, momentum, wd) = (self.lr, self.momentum, self.weight_decay);
        layer.visit_params(&mut |p| {
            let decay = if p.decay { wd } else { 0.0 };
            let value = p.value.as_mut_slice();
            let grad = p.grad.as_slice();
            let vel = p.velocity.as_mut_slice();
            for ((th, &g), v) in value.iter_mut().zip(grad).zip(vel.iter_mut()) {
                let g = g + decay * *th;
                *v = momentum * *v + g;
                *th -= lr * *v;
            }
        });
    }
}

/// Step-decay learning-rate schedule: `lr(e) = base · gamma^(e / step)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepLr {
    base_lr: f32,
    gamma: f32,
    step_size: usize,
}

impl StepLr {
    /// Creates a schedule decaying by `gamma` every `step_size` epochs.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidHyperparameter`] for a zero step size.
    pub fn new(base_lr: f32, gamma: f32, step_size: usize) -> Result<Self> {
        if step_size == 0 {
            return Err(NnError::InvalidHyperparameter {
                name: "step_size",
                reason: "must be at least 1".into(),
            });
        }
        Ok(StepLr {
            base_lr,
            gamma,
            step_size,
        })
    }

    /// Learning rate for the given 0-based epoch.
    pub fn lr_at(&self, epoch: usize) -> f32 {
        self.base_lr * self.gamma.powi((epoch / self.step_size) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Linear, Mode, Param};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tbnet_tensor::Tensor;

    struct OneParam(Param);
    impl Layer for OneParam {
        fn forward(&mut self, x: &Tensor, _m: Mode) -> Result<Tensor> {
            Ok(x.clone())
        }
        fn backward(&mut self, g: &Tensor) -> Result<Tensor> {
            Ok(g.clone())
        }
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.0);
        }
        fn name(&self) -> &'static str {
            "OneParam"
        }
    }

    #[test]
    fn plain_sgd_step() {
        let mut layer = OneParam(Param::new(Tensor::from_slice(&[1.0]), false));
        layer.0.grad = Tensor::from_slice(&[0.5]);
        let sgd = Sgd::new(0.1, 0.0, 0.0).unwrap();
        sgd.step(&mut layer);
        assert!((layer.0.value.as_slice()[0] - 0.95).abs() < 1e-6);
    }

    #[test]
    fn momentum_accumulates() {
        let mut layer = OneParam(Param::new(Tensor::from_slice(&[0.0]), false));
        let sgd = Sgd::new(1.0, 0.5, 0.0).unwrap();
        layer.0.grad = Tensor::from_slice(&[1.0]);
        sgd.step(&mut layer); // v = 1, θ = −1
        sgd.step(&mut layer); // v = 1.5, θ = −2.5
        assert!((layer.0.value.as_slice()[0] + 2.5).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_respects_flag() {
        let sgd = Sgd::new(0.1, 0.0, 1.0).unwrap();
        let mut decayed = OneParam(Param::new(Tensor::from_slice(&[1.0]), true));
        let mut plain = OneParam(Param::new(Tensor::from_slice(&[1.0]), false));
        sgd.step(&mut decayed);
        sgd.step(&mut plain);
        assert!((decayed.0.value.as_slice()[0] - 0.9).abs() < 1e-6);
        assert!((plain.0.value.as_slice()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn hyperparameter_validation() {
        assert!(Sgd::new(0.0, 0.9, 0.0).is_err());
        assert!(Sgd::new(f32::NAN, 0.9, 0.0).is_err());
        assert!(Sgd::new(0.1, 1.0, 0.0).is_err());
        assert!(Sgd::new(0.1, -0.1, 0.0).is_err());
        assert!(Sgd::new(0.1, 0.9, -1.0).is_err());
        assert!(StepLr::new(0.1, 0.1, 0).is_err());
    }

    #[test]
    fn step_lr_schedule() {
        let sched = StepLr::new(0.1, 0.1, 100).unwrap();
        assert!((sched.lr_at(0) - 0.1).abs() < 1e-7);
        assert!((sched.lr_at(99) - 0.1).abs() < 1e-7);
        assert!((sched.lr_at(100) - 0.01).abs() < 1e-7);
        assert!((sched.lr_at(250) - 0.001).abs() < 1e-8);
    }

    #[test]
    fn sgd_reduces_loss_on_regression_task() {
        // Fit y = 2x with a linear layer: loss must decrease monotonically-ish.
        let mut rng = StdRng::seed_from_u64(0);
        let mut lin = Linear::new(1, 1, &mut rng);
        let sgd = Sgd::new(0.05, 0.9, 0.0).unwrap();
        let xs = Tensor::from_vec(vec![-1.0, 0.0, 1.0, 2.0], &[4, 1]).unwrap();
        let ys = [-2.0f32, 0.0, 2.0, 4.0];
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..100 {
            lin.zero_grad();
            let pred = lin.forward(&xs, Mode::Train).unwrap();
            // MSE loss gradient: 2(pred − y)/N
            let mut grad = pred.clone();
            let mut loss = 0.0f32;
            for (i, g) in grad.as_mut_slice().iter_mut().enumerate() {
                let d = *g - ys[i];
                loss += d * d / 4.0;
                *g = 2.0 * d / 4.0;
            }
            lin.backward(&grad).unwrap();
            sgd.step(&mut lin);
            first.get_or_insert(loss);
            last = loss;
        }
        assert!(last < first.unwrap() * 0.01, "loss {last} did not decrease");
        assert!((lin.weight().value.as_slice()[0] - 2.0).abs() < 0.1);
    }

    #[test]
    fn paper_defaults_match_paper() {
        let sgd = Sgd::paper_defaults();
        assert!((sgd.lr() - 0.1).abs() < 1e-7);
    }
}
