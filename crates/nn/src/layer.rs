use crate::{Param, Result};
use tbnet_tensor::{BackendKind, Tensor};

/// Whether a forward pass is part of training (batch statistics, caches for
/// backprop) or inference (running statistics, no caches required).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Training: layers cache activations and BatchNorm uses batch statistics.
    Train,
    /// Inference: no caches, BatchNorm uses running statistics.
    Eval,
}

impl Mode {
    /// `true` for [`Mode::Train`].
    pub fn is_train(self) -> bool {
        matches!(self, Mode::Train)
    }
}

/// The contract every network layer implements.
///
/// Layers own their parameters ([`Param`]) and any caches needed by the
/// backward pass. `backward` *accumulates* into parameter gradients, so a
/// training step is: `zero_grad` → `forward(Train)` → loss backward →
/// `backward` → optimizer step.
///
/// The trait is object-safe; [`Sequential`](crate::Sequential) stores
/// `Box<dyn Layer>`.
pub trait Layer: Send {
    /// Runs the layer on `input`, caching whatever the backward pass needs
    /// when `mode` is [`Mode::Train`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError`] when shapes are inconsistent with the
    /// layer's configuration.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor>;

    /// Propagates `grad_out` (gradient w.r.t. this layer's output) back to a
    /// gradient w.r.t. its input, accumulating parameter gradients.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::MissingForwardCache`] when called before
    /// `forward(…, Mode::Train)`, or shape errors for inconsistent gradients.
    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor>;

    /// Visits every trainable parameter (for optimizers and regularizers).
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Human-readable layer name for diagnostics.
    fn name(&self) -> &'static str;

    /// Re-pins this layer (and any children) to a compute backend. Layers
    /// without kernels ignore it; containers propagate it. New layers start
    /// on [`tbnet_tensor::backend::global_kind`].
    fn set_backend(&mut self, kind: BackendKind) {
        let _ = kind;
    }

    /// Clears gradients of all owned parameters.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Total number of scalar parameters in this layer.
    fn param_count(&mut self) -> usize {
        let mut count = 0;
        self.visit_params(&mut |p| count += p.numel());
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_predicates() {
        assert!(Mode::Train.is_train());
        assert!(!Mode::Eval.is_train());
    }

    #[test]
    fn layer_trait_is_object_safe() {
        fn _takes_dyn(_l: &mut dyn Layer) {}
    }
}
