use serde::{Deserialize, Serialize};

use tbnet_tensor::Tensor;

/// A trainable parameter: value, accumulated gradient and SGD momentum
/// buffer, plus a flag controlling whether weight decay applies.
///
/// BatchNorm scales/offsets conventionally skip weight decay (decay would
/// fight the L1 sparsity signal TBNet relies on for pruning), so the flag is
/// per-parameter rather than per-optimizer.
///
/// # Example
///
/// ```
/// use tbnet_nn::Param;
/// use tbnet_tensor::Tensor;
///
/// let mut p = Param::new(Tensor::ones(&[3]), true);
/// p.grad.as_mut_slice()[0] = 0.5;
/// p.zero_grad();
/// assert_eq!(p.grad.sum(), 0.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
    /// SGD momentum buffer (same shape as `value`).
    pub velocity: Tensor,
    /// Whether weight decay (L2) applies to this parameter.
    pub decay: bool,
}

impl Param {
    /// Creates a parameter with zeroed gradient and momentum buffers.
    pub fn new(value: Tensor, decay: bool) -> Self {
        let grad = Tensor::zeros(value.dims());
        let velocity = Tensor::zeros(value.dims());
        Param {
            value,
            grad,
            velocity,
            decay,
        }
    }

    /// Replaces the value and resets gradient/momentum buffers to match the
    /// (possibly new) shape. Used by the pruning pass, which shrinks
    /// parameter tensors in place.
    pub fn set_value(&mut self, value: Tensor) {
        self.grad = Tensor::zeros(value.dims());
        self.velocity = Tensor::zeros(value.dims());
        self.value = value;
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// Number of scalar parameters.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_buffers_match_shape() {
        let p = Param::new(Tensor::ones(&[2, 3]), true);
        assert_eq!(p.grad.dims(), &[2, 3]);
        assert_eq!(p.velocity.dims(), &[2, 3]);
        assert_eq!(p.grad.sum(), 0.0);
        assert!(p.decay);
    }

    #[test]
    fn set_value_resets_buffers() {
        let mut p = Param::new(Tensor::ones(&[4]), false);
        p.grad.fill(1.0);
        p.velocity.fill(2.0);
        p.set_value(Tensor::zeros(&[2]));
        assert_eq!(p.value.dims(), &[2]);
        assert_eq!(p.grad.dims(), &[2]);
        assert_eq!(p.velocity.dims(), &[2]);
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.velocity.sum(), 0.0);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Tensor::ones(&[3]), true);
        p.grad.fill(5.0);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.numel(), 3);
    }
}
