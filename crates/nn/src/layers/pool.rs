use tbnet_tensor::{backend, ops, BackendKind, Tensor};

use crate::{Layer, Mode, NnError, Param, Result};

/// Non-overlapping 2-D max pooling with a square window (VGG-style).
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    k: usize,
    indices: Option<ops::MaxPoolIndices>,
    backend: BackendKind,
}

impl MaxPool2d {
    /// Creates a max-pool layer with window and stride `k`.
    pub fn new(k: usize) -> Self {
        MaxPool2d {
            k,
            indices: None,
            backend: backend::global_kind(),
        }
    }

    /// Pooling window size.
    pub fn window(&self) -> usize {
        self.k
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let (out, idx) = self.backend.imp().maxpool2d_forward(input, self.k)?;
        self.indices = mode.is_train().then_some(idx);
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let idx = self
            .indices
            .as_ref()
            .ok_or(NnError::MissingForwardCache { layer: "MaxPool2d" })?;
        Ok(self.backend.imp().maxpool2d_backward(grad_out, idx)?)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "MaxPool2d"
    }

    fn set_backend(&mut self, kind: BackendKind) {
        self.backend = kind;
    }
}

/// Global average pooling, `[N, C, H, W]` → `[N, C]` (ResNet classifier head).
#[derive(Debug, Clone)]
pub struct GlobalAvgPool {
    input_dims: Option<Vec<usize>>,
    backend: BackendKind,
}

impl GlobalAvgPool {
    /// Creates a global average-pool layer.
    pub fn new() -> Self {
        GlobalAvgPool {
            input_dims: None,
            backend: backend::global_kind(),
        }
    }
}

impl Default for GlobalAvgPool {
    fn default() -> Self {
        GlobalAvgPool::new()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let out = self.backend.imp().avgpool2d_global_forward(input)?;
        self.input_dims = mode.is_train().then(|| input.dims().to_vec());
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let dims = self
            .input_dims
            .as_ref()
            .ok_or(NnError::MissingForwardCache {
                layer: "GlobalAvgPool",
            })?;
        Ok(self
            .backend
            .imp()
            .avgpool2d_global_backward(grad_out, dims)?)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "GlobalAvgPool"
    }

    fn set_backend(&mut self, kind: BackendKind) {
        self.backend = kind;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_layer_roundtrip() {
        let mut pool = MaxPool2d::new(2);
        assert_eq!(pool.window(), 2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let y = pool.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.as_slice(), &[4.0]);
        let g = pool
            .backward(&Tensor::from_vec(vec![2.0], &[1, 1, 1, 1]).unwrap())
            .unwrap();
        assert_eq!(g.as_slice(), &[0.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn gap_layer_roundtrip() {
        let mut gap = GlobalAvgPool::new();
        let x = Tensor::from_vec(vec![2.0, 4.0, 6.0, 8.0], &[1, 1, 2, 2]).unwrap();
        let y = gap.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.as_slice(), &[5.0]);
        let g = gap
            .backward(&Tensor::from_vec(vec![4.0], &[1, 1]).unwrap())
            .unwrap();
        assert_eq!(g.as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn backward_needs_forward() {
        let mut pool = MaxPool2d::new(2);
        assert!(pool.backward(&Tensor::zeros(&[1, 1, 1, 1])).is_err());
        let mut gap = GlobalAvgPool::new();
        assert!(gap.backward(&Tensor::zeros(&[1, 1])).is_err());
    }

    #[test]
    fn eval_mode_skips_cache() {
        let mut pool = MaxPool2d::new(2);
        pool.forward(&Tensor::zeros(&[1, 1, 2, 2]), Mode::Eval)
            .unwrap();
        assert!(pool.backward(&Tensor::zeros(&[1, 1, 1, 1])).is_err());
    }
}
