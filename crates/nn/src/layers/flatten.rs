use tbnet_tensor::Tensor;

use crate::{Layer, Mode, NnError, Param, Result};

/// Flattens `[N, …]` to `[N, prod(…)]` — the bridge from convolutional
/// features to the linear classifier head.
#[derive(Debug, Default, Clone)]
pub struct Flatten {
    input_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { input_dims: None }
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if input.rank() < 1 {
            return Err(NnError::Tensor(tbnet_tensor::TensorError::RankMismatch {
                expected: 2,
                got: input.rank(),
                op: "Flatten",
            }));
        }
        let n = input.dim(0);
        let rest: usize = input.dims().iter().skip(1).product();
        let out = input.reshape(&[n, rest])?;
        self.input_dims = mode.is_train().then(|| input.dims().to_vec());
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let dims = self
            .input_dims
            .as_ref()
            .ok_or(NnError::MissingForwardCache { layer: "Flatten" })?;
        Ok(grad_out.reshape(dims)?)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "Flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flattens_and_restores() {
        let mut fl = Flatten::new();
        let x = Tensor::zeros(&[2, 3, 4, 4]);
        let y = fl.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[2, 48]);
        let g = fl.backward(&Tensor::ones(&[2, 48])).unwrap();
        assert_eq!(g.dims(), &[2, 3, 4, 4]);
    }

    #[test]
    fn backward_requires_cache() {
        let mut fl = Flatten::new();
        assert!(fl.backward(&Tensor::zeros(&[2, 4])).is_err());
    }
}
