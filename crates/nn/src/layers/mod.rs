//! Concrete layer implementations.
//!
//! Each layer lives in its own module and carries unit tests that check its
//! backward pass against a numerical gradient.

mod bn;
mod conv;
mod flatten;
mod linear;
mod pool;
mod relu;

pub use bn::{merge_batch_stats, BatchNorm2d};
pub use conv::Conv2d;
pub use flatten::Flatten;
pub use linear::Linear;
pub use pool::{GlobalAvgPool, MaxPool2d};
pub use relu::Relu;
