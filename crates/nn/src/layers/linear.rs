use rand::Rng;

use tbnet_tensor::{backend, init, BackendKind, Tensor, TensorError};

use crate::{Layer, Mode, NnError, Param, Result};

/// Fully-connected layer: `y = x Wᵀ + b` for `x: [N, in]`, `W: [out, in]`.
///
/// Used as the classifier head of every network in the reproduction. The
/// pruning pass rewrites its input dimension when the preceding feature
/// extractor loses channels, via [`Linear::set_weight`].
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Param,
    bias: Param,
    cache_input: Option<Tensor>,
    backend: BackendKind,
}

impl Linear {
    /// Creates a linear layer with Xavier-uniform weights and zero bias.
    pub fn new<R: Rng + ?Sized>(in_features: usize, out_features: usize, rng: &mut R) -> Self {
        Linear {
            weight: Param::new(
                init::xavier_uniform(&[out_features, in_features], rng),
                true,
            ),
            bias: Param::new(Tensor::zeros(&[out_features]), false),
            cache_input: None,
            backend: backend::global_kind(),
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.value.dim(1)
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.value.dim(0)
    }

    /// Read access to the weight parameter.
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Mutable access to the weight parameter.
    pub fn weight_mut(&mut self) -> &mut Param {
        &mut self.weight
    }

    /// Read access to the bias parameter.
    pub fn bias(&self) -> &Param {
        &self.bias
    }

    /// Mutable access to the bias parameter (used by persistence and the
    /// substitute-attack baseline when re-initializing heads).
    pub fn bias_mut(&mut self) -> &mut Param {
        &mut self.bias
    }

    /// Replaces the weight tensor (optimizer state resets); used by pruning
    /// to drop input features.
    pub fn set_weight(&mut self, weight: Tensor) {
        self.weight.set_value(weight);
        self.cache_input = None;
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if input.rank() != 2 {
            return Err(NnError::Tensor(TensorError::RankMismatch {
                expected: 2,
                got: input.rank(),
                op: "Linear",
            }));
        }
        if input.dim(1) != self.in_features() {
            return Err(NnError::Tensor(TensorError::ShapeMismatch {
                expected: vec![input.dim(0), self.in_features()],
                got: input.dims().to_vec(),
                op: "Linear",
            }));
        }
        // y = x @ Wᵀ + b
        let imp = self.backend.imp();
        let mut out = imp.matmul_transpose_b(input, &self.weight.value)?;
        imp.add_bias_rows(&mut out, &self.bias.value)?;
        self.cache_input = mode.is_train().then(|| input.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let input = self
            .cache_input
            .as_ref()
            .ok_or(NnError::MissingForwardCache { layer: "Linear" })?;
        // dW = dyᵀ @ x ; dx = dy @ W ; db = Σ_N dy
        let imp = self.backend.imp();
        let gw = imp.matmul_transpose_a(grad_out, input)?;
        imp.add_assign(&mut self.weight.grad, &gw)?;
        let gb = imp.sum_axis0(grad_out)?;
        imp.add_assign(&mut self.bias.grad, &gb)?;
        Ok(imp.matmul(grad_out, &self.weight.value)?)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn name(&self) -> &'static str {
        "Linear"
    }

    fn set_backend(&mut self, kind: BackendKind) {
        self.backend = kind;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut lin = Linear::new(3, 2, &mut rng);
        lin.weight_mut().value = Tensor::zeros(&[2, 3]);
        lin.bias.value = Tensor::from_slice(&[1.0, -1.0]);
        let y = lin.forward(&Tensor::ones(&[4, 3]), Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[4, 2]);
        assert_eq!(&y.as_slice()[..2], &[1.0, -1.0]);
    }

    #[test]
    fn known_product() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut lin = Linear::new(2, 2, &mut rng);
        lin.weight_mut().value = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]).unwrap();
        let y = lin.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.as_slice(), &[3.0, 7.0]);
    }

    #[test]
    fn numerical_gradient() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lin = Linear::new(4, 3, &mut rng);
        let x = init::randn(&[2, 4], 1.0, &mut rng);
        let w_mask = init::randn(&[2, 3], 1.0, &mut rng);

        let y = lin.forward(&x, Mode::Train).unwrap();
        let gx = lin.backward(&w_mask).unwrap();

        let eps = 1e-2f32;
        let loss = |lin: &mut Linear, x: &Tensor| {
            lin.forward(x, Mode::Eval)
                .unwrap()
                .as_slice()
                .iter()
                .zip(w_mask.as_slice())
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };
        // Input gradient.
        for idx in 0..x.numel() {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let num = (loss(&mut lin, &xp) - loss(&mut lin, &xm)) / (2.0 * eps);
            assert!((num - gx.as_slice()[idx]).abs() < 1e-2);
        }
        // Weight gradient.
        let base_w = lin.weight().value.clone();
        for &idx in &[0usize, 5, 11] {
            let mut wp = base_w.clone();
            wp.as_mut_slice()[idx] += eps;
            let mut wm = base_w.clone();
            wm.as_mut_slice()[idx] -= eps;
            lin.weight_mut().value = wp;
            let lp = loss(&mut lin, &x);
            lin.weight_mut().value = wm;
            let lm = loss(&mut lin, &x);
            lin.weight_mut().value = base_w.clone();
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - lin.weight().grad.as_slice()[idx]).abs() < 1e-2);
        }
        let _ = y;
    }

    #[test]
    fn input_validation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lin = Linear::new(4, 3, &mut rng);
        assert!(lin.forward(&Tensor::zeros(&[2, 5]), Mode::Eval).is_err());
        assert!(lin.forward(&Tensor::zeros(&[4]), Mode::Eval).is_err());
        assert!(lin.backward(&Tensor::zeros(&[2, 3])).is_err());
    }

    #[test]
    fn set_weight_changes_dims() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lin = Linear::new(8, 2, &mut rng);
        lin.set_weight(Tensor::zeros(&[2, 6]));
        assert_eq!(lin.in_features(), 6);
        assert_eq!(lin.out_features(), 2);
    }
}
