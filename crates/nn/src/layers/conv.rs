use rand::Rng;

use tbnet_tensor::ops::PackedConv2dWeight;
use tbnet_tensor::{backend, init, BackendKind, Tensor};

use crate::{Layer, Mode, NnError, Param, Result};

/// 2-D convolution layer (`[N, C, H, W]` activations, `[O, C, KH, KW]`
/// weight, optional bias).
///
/// The TBNet networks follow every convolution with a
/// [`BatchNorm2d`](crate::BatchNorm2d), so the default constructors create
/// bias-free convolutions; [`Conv2d::with_bias`] exists for
/// classifier-adjacent uses.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), tbnet_nn::NnError> {
/// use rand::SeedableRng;
/// use tbnet_nn::{Conv2d, Layer, Mode};
/// use tbnet_tensor::Tensor;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng);
/// let y = conv.forward(&Tensor::zeros(&[2, 3, 16, 16]), Mode::Eval)?;
/// assert_eq!(y.dims(), &[2, 8, 16, 16]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Param,
    bias: Option<Param>,
    stride: usize,
    pad: usize,
    cache_input: Option<Tensor>,
    backend: BackendKind,
    /// Depthwise mode: weight is `[C, 1, K, K]` (one kernel per channel, no
    /// cross-channel reduction) and forward/backward route to the backend's
    /// depthwise kernels instead of the GEMM engine.
    depthwise: bool,
    /// Cache-blocked pack of `weight` consumed by the fused conv kernels.
    /// Built lazily on the first forward of a weight-update epoch and
    /// dropped on every path that may mutate the weight (`visit_params`,
    /// `weight_mut`, `set_weight`, `set_backend`), so it can never go stale.
    packed: Option<PackedConv2dWeight>,
    /// BN-folded inference pack (see [`Conv2d::packed_inference`]),
    /// invalidated by the same hooks as `packed` plus a per-call
    /// scale/shift comparison that catches BatchNorm-side drift.
    folded: Option<FoldedConv>,
}

/// The inference-time weight pack with a downstream BatchNorm folded in:
/// weight rows scaled by `gamma / sqrt(var + eps)` per output channel, bias
/// carrying the affine shift.
#[derive(Debug, Clone)]
struct FoldedConv {
    pack: PackedConv2dWeight,
    bias: Tensor,
    scale: Vec<f32>,
    shift: Vec<f32>,
}

impl Conv2d {
    /// Creates a bias-free convolution with Kaiming-normal weights.
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut R,
    ) -> Self {
        let weight = init::kaiming_normal(&[out_channels, in_channels, kernel, kernel], rng);
        Conv2d {
            weight: Param::new(weight, true),
            bias: None,
            stride,
            pad,
            cache_input: None,
            backend: backend::global_kind(),
            depthwise: false,
            packed: None,
            folded: None,
        }
    }

    /// Creates a bias-free *depthwise* convolution: `channels` independent
    /// `[K, K]` kernels (weight `[channels, 1, K, K]`), each convolving its
    /// own input channel.
    pub fn new_depthwise<R: Rng + ?Sized>(
        channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut R,
    ) -> Self {
        let mut conv = Conv2d::new(1, channels, kernel, stride, pad, rng);
        conv.depthwise = true;
        conv
    }

    /// Creates a convolution with a zero-initialized bias.
    pub fn with_bias<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut R,
    ) -> Self {
        let mut conv = Conv2d::new(in_channels, out_channels, kernel, stride, pad, rng);
        conv.bias = Some(Param::new(Tensor::zeros(&[out_channels]), false));
        conv
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.weight.value.dim(0)
    }

    /// Number of input channels (for a depthwise conv this is the channel
    /// count itself — the weight's second dimension is the per-channel 1).
    pub fn in_channels(&self) -> usize {
        if self.depthwise {
            self.weight.value.dim(0)
        } else {
            self.weight.value.dim(1)
        }
    }

    /// Whether this is a depthwise convolution (weight `[C, 1, K, K]`).
    pub fn is_depthwise(&self) -> bool {
        self.depthwise
    }

    /// Kernel size (square).
    pub fn kernel(&self) -> usize {
        self.weight.value.dim(2)
    }

    /// Convolution stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Zero padding on each side.
    pub fn pad(&self) -> usize {
        self.pad
    }

    /// Read access to the weight parameter.
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Mutable access to the weight parameter (used by pruning to rewrite
    /// channel slices). Drops the cached weight pack — the caller may
    /// mutate the tensor through the returned reference.
    pub fn weight_mut(&mut self) -> &mut Param {
        self.packed = None;
        self.folded = None;
        &mut self.weight
    }

    /// Read access to the optional bias parameter.
    pub fn bias(&self) -> Option<&Param> {
        self.bias.as_ref()
    }

    /// Replaces the weight tensor, resetting optimizer state. The pruning
    /// pass uses this after slicing channels out.
    pub fn set_weight(&mut self, weight: Tensor) {
        self.weight.set_value(weight);
        self.cache_input = None;
        self.packed = None;
        self.folded = None;
    }

    /// The weight pack for the current weight-update epoch, (re)built on
    /// first use after any invalidation.
    fn packed_weight(&mut self) -> Result<&PackedConv2dWeight> {
        if self.packed.is_none() {
            self.packed = Some(PackedConv2dWeight::new(&self.weight.value)?);
        }
        Ok(self.packed.as_ref().expect("packed just ensured"))
    }

    /// The BN-folded inference pack for a downstream BatchNorm whose
    /// per-channel affine is `y = scale · conv(x) + shift` (see
    /// [`BatchNorm2d::inference_scale_shift`](crate::BatchNorm2d::inference_scale_shift)).
    ///
    /// Conv-side staleness is handled by the same invalidation hooks as the
    /// training pack; BN-side staleness (running-stat updates, `gamma`/`beta`
    /// steps) is caught by comparing the cached fold coefficients against the
    /// ones passed in — an O(C) check per call, against an O(O·C·K²) refold.
    ///
    /// # Errors
    ///
    /// Returns shape errors if `scale`/`shift` don't match the output
    /// channel count.
    pub fn packed_inference(
        &mut self,
        scale: &[f32],
        shift: &[f32],
    ) -> Result<(&PackedConv2dWeight, &Tensor)> {
        let stale = match &self.folded {
            Some(f) => f.scale != scale || f.shift != shift,
            None => true,
        };
        if stale {
            let (pack, bias) = PackedConv2dWeight::fold_bn(
                &self.weight.value,
                self.bias.as_ref().map(|b| &b.value),
                scale,
                shift,
            )?;
            self.folded = Some(FoldedConv {
                pack,
                bias,
                scale: scale.to_vec(),
                shift: shift.to_vec(),
            });
        }
        let f = self.folded.as_ref().expect("folded just ensured");
        Ok((&f.pack, &f.bias))
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        self.packed_weight()?;
        let packed = self.packed.as_ref().expect("packed ensured above");
        let imp = self.backend.imp();
        let bias = self.bias.as_ref().map(|b| &b.value);
        let out = if self.depthwise {
            imp.conv2d_depthwise_forward(input, packed, bias, self.stride, self.pad)?
        } else {
            imp.conv2d_forward_packed(input, packed, bias, self.stride, self.pad)?
        };
        self.cache_input = mode.is_train().then(|| input.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        if self.cache_input.is_none() {
            return Err(NnError::MissingForwardCache { layer: "Conv2d" });
        }
        // Forward ran with this weight epoch, so the pack is still valid
        // (every weight mutation path drops it); rebuild defensively if a
        // caller invalidated it between forward and backward.
        if self.packed.is_none() {
            self.packed = Some(PackedConv2dWeight::new(&self.weight.value)?);
        }
        let input = self.cache_input.as_ref().expect("checked above");
        let packed = self.packed.as_ref().expect("ensured above");
        let imp = self.backend.imp();
        let grads = if self.depthwise {
            imp.conv2d_depthwise_backward(
                input,
                packed,
                grad_out,
                self.stride,
                self.pad,
                self.bias.is_some(),
            )?
        } else {
            imp.conv2d_backward_packed(
                input,
                packed,
                grad_out,
                self.stride,
                self.pad,
                self.bias.is_some(),
            )?
        };
        imp.add_assign(&mut self.weight.grad, &grads.grad_weight)?;
        if let (Some(b), Some(gb)) = (self.bias.as_mut(), grads.grad_bias) {
            imp.add_assign(&mut b.grad, &gb)?;
        }
        Ok(grads.grad_input)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        // Visitors (optimizer steps, regularizers) may mutate the weight:
        // drop the packs so the next forward repacks the new epoch.
        self.packed = None;
        self.folded = None;
        f(&mut self.weight);
        if let Some(b) = self.bias.as_mut() {
            f(b);
        }
    }

    fn name(&self) -> &'static str {
        "Conv2d"
    }

    fn set_backend(&mut self, kind: BackendKind) {
        self.backend = kind;
        self.packed = None;
        self.folded = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng);
        let y = conv
            .forward(&Tensor::zeros(&[2, 3, 8, 8]), Mode::Eval)
            .unwrap();
        assert_eq!(y.dims(), &[2, 8, 8, 8]);
        assert_eq!(conv.out_channels(), 8);
        assert_eq!(conv.in_channels(), 3);
        assert_eq!(conv.kernel(), 3);
    }

    #[test]
    fn backward_without_forward_fails() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, &mut rng);
        assert!(matches!(
            conv.backward(&Tensor::zeros(&[1, 1, 4, 4])),
            Err(NnError::MissingForwardCache { .. })
        ));
    }

    #[test]
    fn eval_mode_does_not_cache() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, &mut rng);
        conv.forward(&Tensor::zeros(&[1, 1, 4, 4]), Mode::Eval)
            .unwrap();
        assert!(conv.backward(&Tensor::zeros(&[1, 1, 4, 4])).is_err());
    }

    #[test]
    fn gradient_accumulates_across_backwards() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut conv = Conv2d::new(1, 2, 3, 1, 1, &mut rng);
        let x = init::randn(&[1, 1, 4, 4], 1.0, &mut rng);
        let y = conv.forward(&x, Mode::Train).unwrap();
        let g = Tensor::ones(y.dims());
        conv.backward(&g).unwrap();
        let g1 = conv.weight().grad.clone();
        conv.forward(&x, Mode::Train).unwrap();
        conv.backward(&g).unwrap();
        for (a, b) in conv.weight().grad.as_slice().iter().zip(g1.as_slice()) {
            assert!((a - 2.0 * b).abs() < 1e-4);
        }
        conv.zero_grad();
        assert_eq!(conv.weight().grad.sum(), 0.0);
    }

    #[test]
    fn numerical_gradient_with_bias() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut conv = Conv2d::with_bias(2, 3, 3, 1, 1, &mut rng);
        let x = init::randn(&[1, 2, 5, 5], 1.0, &mut rng);
        let y = conv.forward(&x, Mode::Train).unwrap();
        let gx = conv.backward(&Tensor::ones(y.dims())).unwrap();

        let eps = 1e-2f32;
        for &idx in &[0usize, 10, 30] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let lp = conv.forward(&xp, Mode::Eval).unwrap().sum();
            let lm = conv.forward(&xm, Mode::Eval).unwrap().sum();
            let num = (lp - lm) / (2.0 * eps);
            let ana = gx.as_slice()[idx];
            assert!((num - ana).abs() < 2e-2, "idx {idx}: {num} vs {ana}");
        }
    }

    #[test]
    fn param_count_and_visitation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut conv = Conv2d::with_bias(2, 4, 3, 1, 1, &mut rng);
        assert_eq!(conv.param_count(), 4 * 2 * 3 * 3 + 4);
        let mut names = 0;
        conv.visit_params(&mut |_| names += 1);
        assert_eq!(names, 2);
    }

    #[test]
    fn set_weight_resets_cache_and_state() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut conv = Conv2d::new(2, 4, 3, 1, 1, &mut rng);
        let x = Tensor::zeros(&[1, 2, 4, 4]);
        conv.forward(&x, Mode::Train).unwrap();
        conv.set_weight(Tensor::zeros(&[3, 2, 3, 3]));
        assert_eq!(conv.out_channels(), 3);
        // Cache cleared, so backward must fail rather than mixing shapes.
        assert!(conv.backward(&Tensor::zeros(&[1, 3, 4, 4])).is_err());
    }
}
