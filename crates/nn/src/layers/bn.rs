use tbnet_tensor::{backend, BackendKind, Tensor, TensorError};

use crate::{Layer, Mode, NnError, Param, Result};

/// 2-D batch normalization over `[N, C, H, W]` activations.
///
/// The learnable scale γ is the channel-importance signal TBNet's composite
/// pruning criterion reads (Alg. 1 of the paper), and the L1 penalty of Eq. 1
/// is applied to it by the trainer in `tbnet-core` via [`BatchNorm2d::gamma_mut`].
///
/// γ and β are created with weight decay disabled so the only shrinkage
/// pressure on γ is the explicit sparsity penalty.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Tensor,
    running_var: Tensor,
    eps: f32,
    momentum: f32,
    cache: Option<BnCache>,
    backend: BackendKind,
}

#[derive(Debug, Clone)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Tensor,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature maps with γ = 1,
    /// β = 0, ε = 1e-5 and running-stat momentum 0.1 (PyTorch defaults).
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Param::new(Tensor::ones(&[channels]), false),
            beta: Param::new(Tensor::zeros(&[channels]), false),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
            eps: 1e-5,
            momentum: 0.1,
            cache: None,
            backend: backend::global_kind(),
        }
    }

    /// Number of normalized channels.
    pub fn channels(&self) -> usize {
        self.gamma.value.numel()
    }

    /// Read access to the scale parameter γ.
    pub fn gamma(&self) -> &Param {
        &self.gamma
    }

    /// Mutable access to γ (used for the L1 sparsity penalty and pruning).
    pub fn gamma_mut(&mut self) -> &mut Param {
        &mut self.gamma
    }

    /// Read access to the offset parameter β.
    pub fn beta(&self) -> &Param {
        &self.beta
    }

    /// Mutable access to β.
    pub fn beta_mut(&mut self) -> &mut Param {
        &mut self.beta
    }

    /// Running mean (inference statistics).
    pub fn running_mean(&self) -> &Tensor {
        &self.running_mean
    }

    /// Running variance (inference statistics).
    pub fn running_var(&self) -> &Tensor {
        &self.running_var
    }

    /// Replaces all per-channel state at once — the pruning pass uses this to
    /// drop channels. All four tensors must be rank-1 of equal length.
    ///
    /// # Errors
    ///
    /// Returns a shape error when the tensors disagree in length.
    pub fn set_channel_state(
        &mut self,
        gamma: Tensor,
        beta: Tensor,
        running_mean: Tensor,
        running_var: Tensor,
    ) -> Result<()> {
        let n = gamma.numel();
        for (t, name) in [
            (&beta, "beta"),
            (&running_mean, "running_mean"),
            (&running_var, "running_var"),
        ] {
            if t.numel() != n {
                return Err(NnError::Tensor(TensorError::ShapeMismatch {
                    expected: vec![n],
                    got: t.dims().to_vec(),
                    op: match name {
                        "beta" => "set_channel_state (beta)",
                        "running_mean" => "set_channel_state (running_mean)",
                        _ => "set_channel_state (running_var)",
                    },
                }));
            }
        }
        self.gamma.set_value(gamma);
        self.beta.set_value(beta);
        self.running_mean = running_mean;
        self.running_var = running_var;
        self.cache = None;
        Ok(())
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if input.rank() != 4 {
            return Err(NnError::Tensor(TensorError::RankMismatch {
                expected: 4,
                got: input.rank(),
                op: "BatchNorm2d",
            }));
        }
        let c = input.dim(1);
        if c != self.channels() {
            return Err(NnError::Tensor(TensorError::ShapeMismatch {
                expected: vec![self.channels()],
                got: vec![c],
                op: "BatchNorm2d (channels)",
            }));
        }
        let imp = self.backend.imp();
        let (mean, var) = if mode.is_train() {
            let (m, v) = imp.channel_mean_var(input)?;
            // Update running statistics.
            for ci in 0..c {
                let rm = &mut self.running_mean.as_mut_slice()[ci];
                *rm = (1.0 - self.momentum) * *rm + self.momentum * m.as_slice()[ci];
                let rv = &mut self.running_var.as_mut_slice()[ci];
                *rv = (1.0 - self.momentum) * *rv + self.momentum * v.as_slice()[ci];
            }
            (m, v)
        } else {
            (self.running_mean.clone(), self.running_var.clone())
        };

        let mut inv_std = Tensor::zeros(&[c]);
        for ci in 0..c {
            inv_std.as_mut_slice()[ci] = 1.0 / (var.as_slice()[ci] + self.eps).sqrt();
        }

        let x_hat = imp.bn_normalize(input, &mean, &inv_std)?;
        let out = imp.channel_affine(&x_hat, &self.gamma.value, &self.beta.value)?;

        self.cache = mode.is_train().then_some(BnCache { x_hat, inv_std });
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let cache = self.cache.as_ref().ok_or(NnError::MissingForwardCache {
            layer: "BatchNorm2d",
        })?;
        grad_out
            .expect_same_shape(&cache.x_hat, "BatchNorm2d backward")
            .map_err(NnError::Tensor)?;
        let c = grad_out.dim(1);
        let imp = self.backend.imp();

        // Per-channel reductions: Σ dy and Σ dy·x̂.
        let (sum_dy, sum_dy_xhat) = imp.bn_backward_reduce(grad_out, &cache.x_hat)?;

        // Parameter gradients.
        for ci in 0..c {
            self.gamma.grad.as_mut_slice()[ci] += sum_dy_xhat.as_slice()[ci];
            self.beta.grad.as_mut_slice()[ci] += sum_dy.as_slice()[ci];
        }

        // Input gradient:
        // dx = γ·inv_std · (dy − mean(dy) − x̂·mean(dy·x̂))
        imp.bn_input_grad(
            grad_out,
            &cache.x_hat,
            &self.gamma.value,
            &cache.inv_std,
            &sum_dy,
            &sum_dy_xhat,
        )
        .map_err(NnError::Tensor)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn name(&self) -> &'static str {
        "BatchNorm2d"
    }

    fn set_backend(&mut self, kind: BackendKind) {
        self.backend = kind;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tbnet_tensor::{init, ops};

    #[test]
    fn train_forward_normalizes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut bn = BatchNorm2d::new(3);
        let x = init::randn(&[8, 3, 4, 4], 2.0, &mut rng);
        let y = bn.forward(&x, Mode::Train).unwrap();
        let (mean, var) = ops::channel_mean_var(&y).unwrap();
        for ci in 0..3 {
            assert!(mean.as_slice()[ci].abs() < 1e-4, "channel {ci} mean");
            assert!((var.as_slice()[ci] - 1.0).abs() < 1e-3, "channel {ci} var");
        }
    }

    #[test]
    fn gamma_beta_apply_affine() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut bn = BatchNorm2d::new(2);
        bn.gamma_mut().value = Tensor::from_slice(&[2.0, 0.5]);
        bn.beta_mut().value = Tensor::from_slice(&[1.0, -1.0]);
        let x = init::randn(&[4, 2, 3, 3], 1.0, &mut rng);
        let y = bn.forward(&x, Mode::Train).unwrap();
        let (mean, var) = ops::channel_mean_var(&y).unwrap();
        assert!((mean.as_slice()[0] - 1.0).abs() < 1e-4);
        assert!((mean.as_slice()[1] + 1.0).abs() < 1e-4);
        assert!((var.as_slice()[0] - 4.0).abs() < 1e-2);
        assert!((var.as_slice()[1] - 0.25).abs() < 1e-2);
    }

    #[test]
    fn running_stats_converge_to_batch_stats() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut bn = BatchNorm2d::new(1);
        // Constant-distribution batches: running stats should approach (3, 4).
        for _ in 0..200 {
            let mut x = init::randn(&[16, 1, 2, 2], 2.0, &mut rng);
            x.map_inplace(|v| v + 3.0);
            bn.forward(&x, Mode::Train).unwrap();
        }
        assert!((bn.running_mean().as_slice()[0] - 3.0).abs() < 0.3);
        assert!((bn.running_var().as_slice()[0] - 4.0).abs() < 1.0);
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        // With default running stats (mean 0, var 1), eval is ~identity.
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let y = bn.forward(&x, Mode::Eval).unwrap();
        for (a, b) in y.as_slice().iter().zip(x.as_slice()) {
            assert!((a - b).abs() < 1e-3);
        }
        // Eval forward must not populate the training cache.
        assert!(bn.backward(&x).is_err());
    }

    #[test]
    fn backward_matches_numerical_gradient() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = init::randn(&[2, 2, 3, 3], 1.0, &mut rng);

        // Loss: weighted sum so the gradient is not uniform.
        let weights = init::randn(&[2, 2, 3, 3], 1.0, &mut rng);
        let loss_of = |bn: &mut BatchNorm2d, x: &Tensor| {
            let y = bn.forward(x, Mode::Train).unwrap();
            y.as_slice()
                .iter()
                .zip(weights.as_slice())
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };

        let make_bn = || {
            let mut bn = BatchNorm2d::new(2);
            bn.gamma_mut().value = Tensor::from_slice(&[1.3, 0.7]);
            bn.beta_mut().value = Tensor::from_slice(&[0.2, -0.1]);
            bn
        };

        let mut bn = make_bn();
        bn.forward(&x, Mode::Train).unwrap();
        let gx = bn.backward(&weights).unwrap();

        let eps = 1e-2f32;
        for &idx in &[0usize, 5, 17, 35] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            // Fresh BN each time so running stats do not drift into the check.
            let num = (loss_of(&mut make_bn(), &xp) - loss_of(&mut make_bn(), &xm)) / (2.0 * eps);
            let ana = gx.as_slice()[idx];
            assert!(
                (num - ana).abs() < 3e-2,
                "idx {idx}: num {num} vs ana {ana}"
            );
        }

        // γ gradient check.
        for ci in 0..2 {
            let mut bn_p = make_bn();
            bn_p.gamma_mut().value.as_mut_slice()[ci] += eps;
            let mut bn_m = make_bn();
            bn_m.gamma_mut().value.as_mut_slice()[ci] -= eps;
            let num = (loss_of(&mut bn_p, &x) - loss_of(&mut bn_m, &x)) / (2.0 * eps);
            let ana = bn.gamma().grad.as_slice()[ci];
            assert!((num - ana).abs() < 3e-2, "gamma[{ci}]: {num} vs {ana}");
        }
    }

    #[test]
    fn channel_count_validated() {
        let mut bn = BatchNorm2d::new(3);
        assert!(bn
            .forward(&Tensor::zeros(&[1, 2, 4, 4]), Mode::Train)
            .is_err());
        assert!(bn.forward(&Tensor::zeros(&[2, 4]), Mode::Train).is_err());
    }

    #[test]
    fn set_channel_state_validates_and_applies() {
        let mut bn = BatchNorm2d::new(4);
        assert!(bn
            .set_channel_state(
                Tensor::ones(&[2]),
                Tensor::zeros(&[3]),
                Tensor::zeros(&[2]),
                Tensor::ones(&[2]),
            )
            .is_err());
        bn.set_channel_state(
            Tensor::ones(&[2]),
            Tensor::zeros(&[2]),
            Tensor::zeros(&[2]),
            Tensor::ones(&[2]),
        )
        .unwrap();
        assert_eq!(bn.channels(), 2);
    }

    #[test]
    fn param_visitation_sees_gamma_and_beta() {
        let mut bn = BatchNorm2d::new(5);
        assert_eq!(bn.param_count(), 10);
    }

    #[test]
    fn bn_params_skip_weight_decay() {
        let bn = BatchNorm2d::new(2);
        assert!(!bn.gamma().decay);
        assert!(!bn.beta().decay);
    }
}
