use tbnet_tensor::{backend, BackendKind, Tensor, TensorError};

use crate::{Layer, Mode, NnError, Param, Result};

/// 2-D batch normalization over `[N, C, H, W]` activations.
///
/// The learnable scale γ is the channel-importance signal TBNet's composite
/// pruning criterion reads (Alg. 1 of the paper), and the L1 penalty of Eq. 1
/// is applied to it by the trainer in `tbnet-core` via [`BatchNorm2d::gamma_mut`].
///
/// γ and β are created with weight decay disabled so the only shrinkage
/// pressure on γ is the explicit sparsity penalty.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Tensor,
    running_var: Tensor,
    eps: f32,
    momentum: f32,
    cache: Option<BnCache>,
    backend: BackendKind,
}

#[derive(Debug, Clone)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Tensor,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature maps with γ = 1,
    /// β = 0, ε = 1e-5 and running-stat momentum 0.1 (PyTorch defaults).
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Param::new(Tensor::ones(&[channels]), false),
            beta: Param::new(Tensor::zeros(&[channels]), false),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
            eps: 1e-5,
            momentum: 0.1,
            cache: None,
            backend: backend::global_kind(),
        }
    }

    /// Number of normalized channels.
    pub fn channels(&self) -> usize {
        self.gamma.value.numel()
    }

    /// Read access to the scale parameter γ.
    pub fn gamma(&self) -> &Param {
        &self.gamma
    }

    /// Mutable access to γ (used for the L1 sparsity penalty and pruning).
    pub fn gamma_mut(&mut self) -> &mut Param {
        &mut self.gamma
    }

    /// Read access to the offset parameter β.
    pub fn beta(&self) -> &Param {
        &self.beta
    }

    /// Mutable access to β.
    pub fn beta_mut(&mut self) -> &mut Param {
        &mut self.beta
    }

    /// Running mean (inference statistics).
    pub fn running_mean(&self) -> &Tensor {
        &self.running_mean
    }

    /// Running variance (inference statistics).
    pub fn running_var(&self) -> &Tensor {
        &self.running_var
    }

    /// Numerical-stability epsilon added to the variance.
    pub fn eps(&self) -> f32 {
        self.eps
    }

    /// The per-channel affine this layer applies at inference, as
    /// `(scale, shift)` with `y = scale · x + shift`:
    /// `scale = gamma / sqrt(running_var + eps)`,
    /// `shift = beta − running_mean · scale`.
    ///
    /// This is the fold target for BN-folded inference: multiplying the
    /// preceding convolution's weight rows by `scale` and adding `shift` to
    /// its bias makes the convolution output the post-BN activation
    /// directly.
    pub fn inference_scale_shift(&self) -> (Vec<f32>, Vec<f32>) {
        let g = self.gamma.value.as_slice();
        let b = self.beta.value.as_slice();
        let rm = self.running_mean.as_slice();
        let rv = self.running_var.as_slice();
        let scale: Vec<f32> = g
            .iter()
            .zip(rv)
            .map(|(&gi, &vi)| gi / (vi + self.eps).sqrt())
            .collect();
        let shift: Vec<f32> = b
            .iter()
            .zip(rm.iter().zip(&scale))
            .map(|(&bi, (&mi, &si))| bi - mi * si)
            .collect();
        (scale, shift)
    }

    fn check_input(&self, input: &Tensor, op_channels: &'static str) -> Result<usize> {
        if input.rank() != 4 {
            return Err(NnError::Tensor(TensorError::RankMismatch {
                expected: 4,
                got: input.rank(),
                op: "BatchNorm2d",
            }));
        }
        let c = input.dim(1);
        if c != self.channels() {
            return Err(NnError::Tensor(TensorError::ShapeMismatch {
                expected: vec![self.channels()],
                got: vec![c],
                op: op_channels,
            }));
        }
        Ok(c)
    }

    /// Training-mode forward with externally supplied batch statistics
    /// (synchronized BatchNorm). A data-parallel trainer computes per-shard
    /// statistics, merges them (see [`merge_batch_stats`]) and hands every
    /// replica the *global* batch mean/variance, so normalization, the
    /// running-stat update, and the backward cache all match a sequential
    /// whole-batch step. The plain train-mode [`Layer::forward`] is exactly
    /// this method fed with the input's own statistics.
    ///
    /// # Errors
    ///
    /// Returns shape errors when `input` is not `[N, C, H, W]` or the
    /// statistics are not `[C]`.
    pub fn forward_with_batch_stats(
        &mut self,
        input: &Tensor,
        mean: &Tensor,
        var: &Tensor,
    ) -> Result<Tensor> {
        let c = self.check_input(input, "BatchNorm2d (channels)")?;
        for (t, op) in [
            (mean, "BatchNorm2d (batch mean)"),
            (var, "BatchNorm2d (batch var)"),
        ] {
            if t.dims() != [c] {
                return Err(NnError::Tensor(TensorError::ShapeMismatch {
                    expected: vec![c],
                    got: t.dims().to_vec(),
                    op,
                }));
            }
        }
        let imp = self.backend.imp();
        // Update running statistics.
        for ci in 0..c {
            let rm = &mut self.running_mean.as_mut_slice()[ci];
            *rm = (1.0 - self.momentum) * *rm + self.momentum * mean.as_slice()[ci];
            let rv = &mut self.running_var.as_mut_slice()[ci];
            *rv = (1.0 - self.momentum) * *rv + self.momentum * var.as_slice()[ci];
        }

        let mut inv_std = Tensor::zeros(&[c]);
        for ci in 0..c {
            inv_std.as_mut_slice()[ci] = 1.0 / (var.as_slice()[ci] + self.eps).sqrt();
        }

        let x_hat = imp.bn_normalize(input, mean, &inv_std)?;
        let out = imp.channel_affine(&x_hat, &self.gamma.value, &self.beta.value)?;
        self.cache = Some(BnCache { x_hat, inv_std });
        Ok(out)
    }

    /// First half of the backward pass: computes the per-channel reductions
    /// `(Σ dy, Σ dy·x̂)` over *this* gradient (one shard, in data-parallel
    /// training) and accumulates the γ/β parameter gradients from them.
    /// Summing the returned pairs across shards reproduces the whole-batch
    /// reductions.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MissingForwardCache`] before a training-mode
    /// forward, or shape errors for inconsistent gradients.
    pub fn backward_reduce(&mut self, grad_out: &Tensor) -> Result<(Tensor, Tensor)> {
        let cache = self.cache.as_ref().ok_or(NnError::MissingForwardCache {
            layer: "BatchNorm2d",
        })?;
        grad_out
            .expect_same_shape(&cache.x_hat, "BatchNorm2d backward")
            .map_err(NnError::Tensor)?;
        let c = grad_out.dim(1);
        let (sum_dy, sum_dy_xhat) = self
            .backend
            .imp()
            .bn_backward_reduce(grad_out, &cache.x_hat)?;
        for ci in 0..c {
            self.gamma.grad.as_mut_slice()[ci] += sum_dy_xhat.as_slice()[ci];
            self.beta.grad.as_mut_slice()[ci] += sum_dy.as_slice()[ci];
        }
        Ok((sum_dy, sum_dy_xhat))
    }

    /// Second half of the backward pass: the input gradient
    /// `dx = γ·inv_std · (dy − mean(dy) − x̂·mean(dy·x̂))`, where the means
    /// divide `sum_dy` / `sum_dy_xhat` by `total_count` (the per-channel
    /// element count `N·H·W` of the statistics batch). With per-shard sums
    /// and the shard's own count this is the classic single-device formula;
    /// a data-parallel trainer passes the *globally summed* reductions and
    /// the global count instead, coupling the shards exactly like one big
    /// batch.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MissingForwardCache`] before a training-mode
    /// forward, or shape errors for inconsistent operands.
    pub fn backward_input_with_stats(
        &self,
        grad_out: &Tensor,
        sum_dy: &Tensor,
        sum_dy_xhat: &Tensor,
        total_count: usize,
    ) -> Result<Tensor> {
        let cache = self.cache.as_ref().ok_or(NnError::MissingForwardCache {
            layer: "BatchNorm2d",
        })?;
        grad_out
            .expect_same_shape(&cache.x_hat, "BatchNorm2d backward")
            .map_err(NnError::Tensor)?;
        let local_count = grad_out.dim(0) * grad_out.dim(2) * grad_out.dim(3);
        // The kernel divides by the *local* element count; pre-scaling the
        // sums by local/total turns that into a division by `total_count`.
        let (sd, sdx) = if local_count == total_count {
            (sum_dy.clone(), sum_dy_xhat.clone())
        } else {
            let factor = local_count as f32 / total_count as f32;
            (sum_dy.map(|v| v * factor), sum_dy_xhat.map(|v| v * factor))
        };
        self.backend
            .imp()
            .bn_input_grad(
                grad_out,
                &cache.x_hat,
                &self.gamma.value,
                &cache.inv_std,
                &sd,
                &sdx,
            )
            .map_err(NnError::Tensor)
    }

    /// Replaces all per-channel state at once — the pruning pass uses this to
    /// drop channels. All four tensors must be rank-1 of equal length.
    ///
    /// # Errors
    ///
    /// Returns a shape error when the tensors disagree in length.
    pub fn set_channel_state(
        &mut self,
        gamma: Tensor,
        beta: Tensor,
        running_mean: Tensor,
        running_var: Tensor,
    ) -> Result<()> {
        let n = gamma.numel();
        for (t, name) in [
            (&beta, "beta"),
            (&running_mean, "running_mean"),
            (&running_var, "running_var"),
        ] {
            if t.numel() != n {
                return Err(NnError::Tensor(TensorError::ShapeMismatch {
                    expected: vec![n],
                    got: t.dims().to_vec(),
                    op: match name {
                        "beta" => "set_channel_state (beta)",
                        "running_mean" => "set_channel_state (running_mean)",
                        _ => "set_channel_state (running_var)",
                    },
                }));
            }
        }
        self.gamma.set_value(gamma);
        self.beta.set_value(beta);
        self.running_mean = running_mean;
        self.running_var = running_var;
        self.cache = None;
        Ok(())
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if mode.is_train() {
            // forward_with_batch_stats validates the input; the kernel only
            // needs rank 4, which it checks itself.
            let (mean, var) = self.backend.imp().channel_mean_var(input)?;
            return self.forward_with_batch_stats(input, &mean, &var);
        }
        let c = self.check_input(input, "BatchNorm2d (channels)")?;
        let imp = self.backend.imp();
        let mean = self.running_mean.clone();
        let var = self.running_var.clone();
        let mut inv_std = Tensor::zeros(&[c]);
        for ci in 0..c {
            inv_std.as_mut_slice()[ci] = 1.0 / (var.as_slice()[ci] + self.eps).sqrt();
        }
        let x_hat = imp.bn_normalize(input, &mean, &inv_std)?;
        let out = imp.channel_affine(&x_hat, &self.gamma.value, &self.beta.value)?;
        self.cache = None;
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        // The two halves with this gradient's own reductions and element
        // count reproduce the classic single-device formula exactly; a
        // data-parallel trainer calls them separately with globally merged
        // sums instead.
        let (sum_dy, sum_dy_xhat) = self.backward_reduce(grad_out)?;
        let local_count = grad_out.dim(0) * grad_out.dim(2) * grad_out.dim(3);
        self.backward_input_with_stats(grad_out, &sum_dy, &sum_dy_xhat, local_count)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn name(&self) -> &'static str {
        "BatchNorm2d"
    }

    fn set_backend(&mut self, kind: BackendKind) {
        self.backend = kind;
    }
}

/// Merges per-shard batch statistics `(mean, var, count)` into whole-batch
/// statistics with the weighted parallel-variance formula (Chan et al.):
///
/// ```text
/// mean = Σ wₛ·meanₛ / Σ wₛ
/// var  = Σ wₛ·(varₛ + (meanₛ − mean)²) / Σ wₛ
/// ```
///
/// `count` is the per-channel element count of the shard (`Nₛ·H·W`); with
/// biased per-shard variances (what
/// [`tbnet_tensor::ops::channel_mean_var`] produces) the merge equals the
/// statistics of the concatenated batch in exact arithmetic. Accumulation
/// runs in `f64`, folding shards left-to-right, so the result is
/// deterministic for a fixed shard split.
///
/// # Errors
///
/// Returns a shape error when `parts` is empty, a shard's tensors are not
/// `[C]` of a common length, or a shard count is zero.
pub fn merge_batch_stats(parts: &[(Tensor, Tensor, usize)]) -> Result<(Tensor, Tensor)> {
    let Some((first_mean, _, _)) = parts.first() else {
        return Err(NnError::Tensor(TensorError::InvalidGeometry {
            reason: "merge_batch_stats: no shard statistics to merge".into(),
        }));
    };
    let c = first_mean.numel();
    for (mean, var, count) in parts {
        if mean.dims() != [c] || var.dims() != [c] {
            return Err(NnError::Tensor(TensorError::ShapeMismatch {
                expected: vec![c],
                got: if mean.dims() == [c] {
                    var.dims().to_vec()
                } else {
                    mean.dims().to_vec()
                },
                op: "merge_batch_stats",
            }));
        }
        if *count == 0 {
            return Err(NnError::Tensor(TensorError::InvalidGeometry {
                reason: "merge_batch_stats: shard with zero element count".into(),
            }));
        }
    }
    let total: f64 = parts.iter().map(|(_, _, w)| *w as f64).sum();
    let mut mean = Tensor::zeros(&[c]);
    let mut var = Tensor::zeros(&[c]);
    for ci in 0..c {
        let mut m = 0.0f64;
        for (shard_mean, _, w) in parts {
            m += shard_mean.as_slice()[ci] as f64 * *w as f64;
        }
        let m = m / total;
        let mut v = 0.0f64;
        for (shard_mean, shard_var, w) in parts {
            let d = shard_mean.as_slice()[ci] as f64 - m;
            v += *w as f64 * (shard_var.as_slice()[ci] as f64 + d * d);
        }
        mean.as_mut_slice()[ci] = m as f32;
        var.as_mut_slice()[ci] = (v / total) as f32;
    }
    Ok((mean, var))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tbnet_tensor::{init, ops};

    #[test]
    fn train_forward_normalizes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut bn = BatchNorm2d::new(3);
        let x = init::randn(&[8, 3, 4, 4], 2.0, &mut rng);
        let y = bn.forward(&x, Mode::Train).unwrap();
        let (mean, var) = ops::channel_mean_var(&y).unwrap();
        for ci in 0..3 {
            assert!(mean.as_slice()[ci].abs() < 1e-4, "channel {ci} mean");
            assert!((var.as_slice()[ci] - 1.0).abs() < 1e-3, "channel {ci} var");
        }
    }

    #[test]
    fn gamma_beta_apply_affine() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut bn = BatchNorm2d::new(2);
        bn.gamma_mut().value = Tensor::from_slice(&[2.0, 0.5]);
        bn.beta_mut().value = Tensor::from_slice(&[1.0, -1.0]);
        let x = init::randn(&[4, 2, 3, 3], 1.0, &mut rng);
        let y = bn.forward(&x, Mode::Train).unwrap();
        let (mean, var) = ops::channel_mean_var(&y).unwrap();
        assert!((mean.as_slice()[0] - 1.0).abs() < 1e-4);
        assert!((mean.as_slice()[1] + 1.0).abs() < 1e-4);
        assert!((var.as_slice()[0] - 4.0).abs() < 1e-2);
        assert!((var.as_slice()[1] - 0.25).abs() < 1e-2);
    }

    #[test]
    fn running_stats_converge_to_batch_stats() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut bn = BatchNorm2d::new(1);
        // Constant-distribution batches: running stats should approach (3, 4).
        for _ in 0..200 {
            let mut x = init::randn(&[16, 1, 2, 2], 2.0, &mut rng);
            x.map_inplace(|v| v + 3.0);
            bn.forward(&x, Mode::Train).unwrap();
        }
        assert!((bn.running_mean().as_slice()[0] - 3.0).abs() < 0.3);
        assert!((bn.running_var().as_slice()[0] - 4.0).abs() < 1.0);
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        // With default running stats (mean 0, var 1), eval is ~identity.
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let y = bn.forward(&x, Mode::Eval).unwrap();
        for (a, b) in y.as_slice().iter().zip(x.as_slice()) {
            assert!((a - b).abs() < 1e-3);
        }
        // Eval forward must not populate the training cache.
        assert!(bn.backward(&x).is_err());
    }

    #[test]
    fn backward_matches_numerical_gradient() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = init::randn(&[2, 2, 3, 3], 1.0, &mut rng);

        // Loss: weighted sum so the gradient is not uniform.
        let weights = init::randn(&[2, 2, 3, 3], 1.0, &mut rng);
        let loss_of = |bn: &mut BatchNorm2d, x: &Tensor| {
            let y = bn.forward(x, Mode::Train).unwrap();
            y.as_slice()
                .iter()
                .zip(weights.as_slice())
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };

        let make_bn = || {
            let mut bn = BatchNorm2d::new(2);
            bn.gamma_mut().value = Tensor::from_slice(&[1.3, 0.7]);
            bn.beta_mut().value = Tensor::from_slice(&[0.2, -0.1]);
            bn
        };

        let mut bn = make_bn();
        bn.forward(&x, Mode::Train).unwrap();
        let gx = bn.backward(&weights).unwrap();

        let eps = 1e-2f32;
        for &idx in &[0usize, 5, 17, 35] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            // Fresh BN each time so running stats do not drift into the check.
            let num = (loss_of(&mut make_bn(), &xp) - loss_of(&mut make_bn(), &xm)) / (2.0 * eps);
            let ana = gx.as_slice()[idx];
            assert!(
                (num - ana).abs() < 3e-2,
                "idx {idx}: num {num} vs ana {ana}"
            );
        }

        // γ gradient check.
        for ci in 0..2 {
            let mut bn_p = make_bn();
            bn_p.gamma_mut().value.as_mut_slice()[ci] += eps;
            let mut bn_m = make_bn();
            bn_m.gamma_mut().value.as_mut_slice()[ci] -= eps;
            let num = (loss_of(&mut bn_p, &x) - loss_of(&mut bn_m, &x)) / (2.0 * eps);
            let ana = bn.gamma().grad.as_slice()[ci];
            assert!((num - ana).abs() < 3e-2, "gamma[{ci}]: {num} vs {ana}");
        }
    }

    #[test]
    fn channel_count_validated() {
        let mut bn = BatchNorm2d::new(3);
        assert!(bn
            .forward(&Tensor::zeros(&[1, 2, 4, 4]), Mode::Train)
            .is_err());
        assert!(bn.forward(&Tensor::zeros(&[2, 4]), Mode::Train).is_err());
    }

    #[test]
    fn set_channel_state_validates_and_applies() {
        let mut bn = BatchNorm2d::new(4);
        assert!(bn
            .set_channel_state(
                Tensor::ones(&[2]),
                Tensor::zeros(&[3]),
                Tensor::zeros(&[2]),
                Tensor::ones(&[2]),
            )
            .is_err());
        bn.set_channel_state(
            Tensor::ones(&[2]),
            Tensor::zeros(&[2]),
            Tensor::zeros(&[2]),
            Tensor::ones(&[2]),
        )
        .unwrap();
        assert_eq!(bn.channels(), 2);
    }

    #[test]
    fn param_visitation_sees_gamma_and_beta() {
        let mut bn = BatchNorm2d::new(5);
        assert_eq!(bn.param_count(), 10);
    }

    #[test]
    fn bn_params_skip_weight_decay() {
        let bn = BatchNorm2d::new(2);
        assert!(!bn.gamma().decay);
        assert!(!bn.beta().decay);
    }

    #[test]
    fn merged_shard_stats_match_whole_batch() {
        let mut rng = StdRng::seed_from_u64(11);
        let x = init::randn(&[7, 3, 4, 4], 1.5, &mut rng);
        let (whole_m, whole_v) = ops::channel_mean_var(&x).unwrap();
        // Split the batch 7 = 2 + 4 + 1 and merge per-shard statistics.
        let sample = 3 * 4 * 4;
        let mut parts = Vec::new();
        for (lo, hi) in [(0usize, 2usize), (2, 6), (6, 7)] {
            let shard = Tensor::from_vec(
                x.as_slice()[lo * sample..hi * sample].to_vec(),
                &[hi - lo, 3, 4, 4],
            )
            .unwrap();
            let (m, v) = ops::channel_mean_var(&shard).unwrap();
            parts.push((m, v, (hi - lo) * 16));
        }
        let (merged_m, merged_v) = merge_batch_stats(&parts).unwrap();
        for ci in 0..3 {
            assert!((merged_m.as_slice()[ci] - whole_m.as_slice()[ci]).abs() < 1e-5);
            assert!((merged_v.as_slice()[ci] - whole_v.as_slice()[ci]).abs() < 1e-5);
        }
    }

    #[test]
    fn merge_batch_stats_validates() {
        assert!(merge_batch_stats(&[]).is_err());
        let m = Tensor::zeros(&[2]);
        let v = Tensor::ones(&[2]);
        assert!(merge_batch_stats(&[(m.clone(), Tensor::ones(&[3]), 4)]).is_err());
        assert!(merge_batch_stats(&[(m.clone(), v.clone(), 0)]).is_err());
        assert!(merge_batch_stats(&[(m, v, 4)]).is_ok());
    }

    #[test]
    fn sync_forward_equals_plain_forward_on_one_shard() {
        // forward_with_batch_stats fed the input's own statistics must be
        // the plain training forward, bit for bit (same kernels, same
        // running-stat update).
        let mut rng = StdRng::seed_from_u64(12);
        let x = init::randn(&[4, 2, 3, 3], 1.0, &mut rng);
        let mut plain = BatchNorm2d::new(2);
        let mut synced = plain.clone();
        let y_plain = plain.forward(&x, Mode::Train).unwrap();
        let (m, v) = ops::channel_mean_var(&x).unwrap();
        let y_synced = synced.forward_with_batch_stats(&x, &m, &v).unwrap();
        assert_eq!(y_plain.as_slice(), y_synced.as_slice());
        assert_eq!(
            plain.running_mean().as_slice(),
            synced.running_mean().as_slice()
        );
        assert_eq!(
            plain.running_var().as_slice(),
            synced.running_var().as_slice()
        );
        // Both caches support backward and agree there too.
        let g = init::randn(&[4, 2, 3, 3], 1.0, &mut rng);
        let gx_plain = plain.backward(&g).unwrap();
        let gx_synced = synced.backward(&g).unwrap();
        assert_eq!(gx_plain.as_slice(), gx_synced.as_slice());
    }

    #[test]
    fn split_backward_with_global_stats_couples_shards() {
        // Two shards with globally merged reductions must reproduce the
        // whole-batch backward exactly (within f32 rounding).
        let mut rng = StdRng::seed_from_u64(13);
        let x = init::randn(&[6, 2, 3, 3], 1.0, &mut rng);
        let g = init::randn(&[6, 2, 3, 3], 1.0, &mut rng);
        let sample = 2 * 3 * 3;

        let mut whole = BatchNorm2d::new(2);
        whole.gamma_mut().value = Tensor::from_slice(&[1.3, 0.7]);
        whole.forward(&x, Mode::Train).unwrap();
        let gx_whole = whole.backward(&g).unwrap();

        let (gm, gv) = ops::channel_mean_var(&x).unwrap();
        let mut shard_bns = Vec::new();
        let mut sums: Vec<(Tensor, Tensor)> = Vec::new();
        let shards = [(0usize, 2usize), (2, 6)];
        for &(lo, hi) in &shards {
            let xs = Tensor::from_vec(
                x.as_slice()[lo * sample..hi * sample].to_vec(),
                &[hi - lo, 2, 3, 3],
            )
            .unwrap();
            let gs = Tensor::from_vec(
                g.as_slice()[lo * sample..hi * sample].to_vec(),
                &[hi - lo, 2, 3, 3],
            )
            .unwrap();
            let mut bn = BatchNorm2d::new(2);
            bn.gamma_mut().value = Tensor::from_slice(&[1.3, 0.7]);
            bn.forward_with_batch_stats(&xs, &gm, &gv).unwrap();
            let s = bn.backward_reduce(&gs).unwrap();
            shard_bns.push((bn, gs, lo));
            sums.push(s);
        }
        let mut sum_dy = sums[0].0.clone();
        let mut sum_dy_xhat = sums[0].1.clone();
        for (sd, sdx) in &sums[1..] {
            for ci in 0..2 {
                sum_dy.as_mut_slice()[ci] += sd.as_slice()[ci];
                sum_dy_xhat.as_mut_slice()[ci] += sdx.as_slice()[ci];
            }
        }
        let total = 6 * 3 * 3;
        for (bn, gs, lo) in &shard_bns {
            let gx = bn
                .backward_input_with_stats(gs, &sum_dy, &sum_dy_xhat, total)
                .unwrap();
            for (i, val) in gx.as_slice().iter().enumerate() {
                let whole_val = gx_whole.as_slice()[lo * sample + i];
                assert!(
                    (val - whole_val).abs() < 1e-5,
                    "shard@{lo} elem {i}: {val} vs {whole_val}"
                );
            }
        }
        // γ/β gradients summed across shards match the whole-batch ones.
        let mut gamma_grad = [0.0f32; 2];
        let mut beta_grad = [0.0f32; 2];
        for (bn, _, _) in &shard_bns {
            for ci in 0..2 {
                gamma_grad[ci] += bn.gamma().grad.as_slice()[ci];
                beta_grad[ci] += bn.beta().grad.as_slice()[ci];
            }
        }
        for ci in 0..2 {
            assert!((gamma_grad[ci] - whole.gamma().grad.as_slice()[ci]).abs() < 1e-4);
            assert!((beta_grad[ci] - whole.beta().grad.as_slice()[ci]).abs() < 1e-4);
        }
    }
}
