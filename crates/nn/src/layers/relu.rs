use tbnet_tensor::{backend, BackendKind, Tensor};

use crate::{Layer, Mode, NnError, Param, Result};

/// Rectified linear unit, `y = max(x, 0)`, applied elementwise.
///
/// Stateless apart from the backward mask; works on tensors of any rank.
#[derive(Debug, Clone)]
pub struct Relu {
    mask: Option<Vec<bool>>,
    backend: BackendKind,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu {
            mask: None,
            backend: backend::global_kind(),
        }
    }
}

impl Default for Relu {
    fn default() -> Self {
        Relu::new()
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let out = self.backend.imp().unary(input, &|x| x.max(0.0));
        self.mask = mode
            .is_train()
            .then(|| input.as_slice().iter().map(|&x| x > 0.0).collect());
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mask = self
            .mask
            .as_ref()
            .ok_or(NnError::MissingForwardCache { layer: "Relu" })?;
        if mask.len() != grad_out.numel() {
            return Err(NnError::Tensor(tbnet_tensor::TensorError::LengthMismatch {
                expected: mask.len(),
                got: grad_out.numel(),
                op: "Relu backward",
            }));
        }
        let mut grad_in = grad_out.clone();
        for (g, &keep) in grad_in.as_mut_slice().iter_mut().zip(mask) {
            if !keep {
                *g = 0.0;
            }
        }
        Ok(grad_in)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "Relu"
    }

    fn set_backend(&mut self, kind: BackendKind) {
        self.backend = kind;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamps_negatives() {
        let mut relu = Relu::new();
        let x = Tensor::from_slice(&[-1.0, 0.0, 2.0]);
        let y = relu.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn backward_gates_gradient() {
        let mut relu = Relu::new();
        let x = Tensor::from_slice(&[-1.0, 3.0, 0.0, 2.0]);
        relu.forward(&x, Mode::Train).unwrap();
        let g = relu
            .backward(&Tensor::from_slice(&[1.0, 1.0, 1.0, 1.0]))
            .unwrap();
        assert_eq!(g.as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn backward_requires_cache_and_shape() {
        let mut relu = Relu::new();
        assert!(relu.backward(&Tensor::ones(&[2])).is_err());
        relu.forward(&Tensor::ones(&[2]), Mode::Train).unwrap();
        assert!(relu.backward(&Tensor::ones(&[3])).is_err());
    }

    #[test]
    fn no_params() {
        let mut relu = Relu::new();
        assert_eq!(relu.param_count(), 0);
    }
}
