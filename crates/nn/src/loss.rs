//! Loss functions: softmax cross-entropy for classification plus the L1
//! sparsity penalty on BatchNorm scales from Eq. 1 of the TBNet paper.

use tbnet_tensor::{ops, Tensor, TensorError};

use crate::{BatchNorm2d, NnError, Result};

/// Output of [`softmax_cross_entropy`]: mean loss and the gradient w.r.t. the
/// logits (already divided by the batch size).
#[derive(Debug, Clone)]
pub struct LossOutput {
    /// Mean cross-entropy over the batch.
    pub loss: f32,
    /// Gradient w.r.t. the logits, `[N, C]`.
    pub grad: Tensor,
}

/// Softmax cross-entropy with integer targets.
///
/// `logits` is `[N, C]`; `targets` holds `N` class indices. Returns the mean
/// loss and its gradient `softmax(logits) − onehot(target)` scaled by `1/N`.
///
/// # Errors
///
/// Returns [`NnError::BatchMismatch`] when `targets.len() != N` and
/// [`NnError::LabelOutOfRange`] for an invalid class index.
pub fn softmax_cross_entropy(logits: &Tensor, targets: &[usize]) -> Result<LossOutput> {
    softmax_cross_entropy_scaled(logits, targets, targets.len())
}

/// Softmax cross-entropy normalized by an explicit `denom` instead of the
/// local batch size.
///
/// Data-parallel training computes the loss per contiguous shard but must
/// scale gradients by the *global* minibatch size `N`, so that summing the
/// per-shard parameter gradients reproduces the sequential whole-batch
/// gradient exactly: every shard passes `denom = N` and the returned `loss`
/// values add up to the whole-batch mean loss. With `denom == targets.len()`
/// this is precisely [`softmax_cross_entropy`].
///
/// # Errors
///
/// Same conditions as [`softmax_cross_entropy`], plus
/// [`NnError::InvalidHyperparameter`] for a zero `denom`.
pub fn softmax_cross_entropy_scaled(
    logits: &Tensor,
    targets: &[usize],
    denom: usize,
) -> Result<LossOutput> {
    if denom == 0 {
        return Err(NnError::InvalidHyperparameter {
            name: "denom",
            reason: "scaled cross-entropy needs a positive denominator".into(),
        });
    }
    if logits.rank() != 2 {
        return Err(NnError::Tensor(TensorError::RankMismatch {
            expected: 2,
            got: logits.rank(),
            op: "softmax_cross_entropy",
        }));
    }
    let (n, c) = (logits.dim(0), logits.dim(1));
    if targets.len() != n {
        return Err(NnError::BatchMismatch {
            lhs: n,
            rhs: targets.len(),
            op: "softmax_cross_entropy",
        });
    }
    let probs = ops::softmax_rows(logits)?;
    let mut loss = 0.0f64;
    let mut grad = probs.clone();
    {
        let gv = grad.as_mut_slice();
        let pv = probs.as_slice();
        for (ni, &t) in targets.iter().enumerate() {
            if t >= c {
                return Err(NnError::LabelOutOfRange {
                    label: t,
                    classes: c,
                });
            }
            let p = pv[ni * c + t].max(1e-12);
            loss -= (p as f64).ln();
            gv[ni * c + t] -= 1.0;
        }
        let inv_n = 1.0 / denom as f32;
        for g in gv.iter_mut() {
            *g *= inv_n;
        }
    }
    Ok(LossOutput {
        loss: (loss / denom as f64) as f32,
        grad,
    })
}

/// Adds the subgradient of `λ · Σ |γ|` to a BatchNorm layer's γ gradient and
/// returns the penalty value — the sparsity term `g(γ)` of Eq. 1.
///
/// Call once per training step, after the backward pass and before the
/// optimizer step.
pub fn apply_bn_sparsity_penalty(bn: &mut BatchNorm2d, lambda: f32) -> f32 {
    let mut penalty = 0.0f32;
    let gamma = bn.gamma_mut();
    let values: Vec<f32> = gamma.value.as_slice().to_vec();
    for (g, v) in gamma.grad.as_mut_slice().iter_mut().zip(values) {
        penalty += v.abs();
        // Subgradient of |γ|: pick 0 at γ = 0 (f32::signum(0.0) would be 1).
        if v != 0.0 {
            *g += lambda * v.signum();
        }
    }
    lambda * penalty
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Layer, Mode};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tbnet_tensor::init;

    #[test]
    fn perfect_prediction_has_low_loss() {
        let logits = Tensor::from_vec(vec![10.0, -10.0, -10.0, 10.0], &[2, 2]).unwrap();
        let out = softmax_cross_entropy(&logits, &[0, 1]).unwrap();
        assert!(out.loss < 1e-3);
    }

    #[test]
    fn uniform_logits_give_log_c() {
        let logits = Tensor::zeros(&[4, 10]);
        let out = softmax_cross_entropy(&logits, &[0, 3, 7, 9]).unwrap();
        assert!((out.loss - (10.0f32).ln()).abs() < 1e-4);
    }

    #[test]
    fn gradient_matches_numerical() {
        let mut rng = StdRng::seed_from_u64(0);
        let logits = init::randn(&[3, 4], 1.0, &mut rng);
        let targets = [1usize, 0, 3];
        let out = softmax_cross_entropy(&logits, &targets).unwrap();
        let eps = 1e-2f32;
        for idx in 0..logits.numel() {
            let mut lp = logits.clone();
            lp.as_mut_slice()[idx] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[idx] -= eps;
            let fp = softmax_cross_entropy(&lp, &targets).unwrap().loss;
            let fm = softmax_cross_entropy(&lm, &targets).unwrap().loss;
            let num = (fp - fm) / (2.0 * eps);
            assert!((num - out.grad.as_slice()[idx]).abs() < 1e-3, "logit {idx}");
        }
    }

    #[test]
    fn grad_rows_sum_to_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let logits = init::randn(&[5, 7], 1.0, &mut rng);
        let out = softmax_cross_entropy(&logits, &[0, 1, 2, 3, 4]).unwrap();
        for ni in 0..5 {
            let s: f32 = out.grad.as_slice()[ni * 7..(ni + 1) * 7].iter().sum();
            assert!(s.abs() < 1e-5);
        }
    }

    #[test]
    fn validation_errors() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(matches!(
            softmax_cross_entropy(&logits, &[0]),
            Err(NnError::BatchMismatch { .. })
        ));
        assert!(matches!(
            softmax_cross_entropy(&logits, &[0, 3]),
            Err(NnError::LabelOutOfRange { .. })
        ));
        assert!(softmax_cross_entropy(&Tensor::zeros(&[6]), &[0]).is_err());
    }

    #[test]
    fn scaled_loss_shards_recompose_the_whole_batch() {
        let mut rng = StdRng::seed_from_u64(2);
        let logits = init::randn(&[5, 3], 1.0, &mut rng);
        let targets = [0usize, 2, 1, 1, 0];
        let whole = softmax_cross_entropy(&logits, &targets).unwrap();
        // Shards 5 = 2 + 3, every shard scaled by the global batch size.
        let rows = |lo: usize, hi: usize| {
            Tensor::from_vec(logits.as_slice()[lo * 3..hi * 3].to_vec(), &[hi - lo, 3]).unwrap()
        };
        let a = softmax_cross_entropy_scaled(&rows(0, 2), &targets[..2], 5).unwrap();
        let b = softmax_cross_entropy_scaled(&rows(2, 5), &targets[2..], 5).unwrap();
        assert!((a.loss + b.loss - whole.loss).abs() < 1e-6);
        let recomposed: Vec<f32> = a
            .grad
            .as_slice()
            .iter()
            .chain(b.grad.as_slice())
            .copied()
            .collect();
        for (x, y) in recomposed.iter().zip(whole.grad.as_slice()) {
            assert!((x - y).abs() < 1e-7);
        }
        assert!(softmax_cross_entropy_scaled(&logits, &targets, 0).is_err());
    }

    #[test]
    fn sparsity_penalty_pushes_toward_zero() {
        let mut bn = BatchNorm2d::new(3);
        bn.gamma_mut().value = Tensor::from_slice(&[0.5, -0.5, 0.0]);
        let penalty = apply_bn_sparsity_penalty(&mut bn, 0.1);
        assert!((penalty - 0.1).abs() < 1e-6);
        let grads = bn.gamma().grad.as_slice();
        assert!((grads[0] - 0.1).abs() < 1e-6);
        assert!((grads[1] + 0.1).abs() < 1e-6);
        assert_eq!(grads[2], 0.0);
    }

    #[test]
    fn sparsity_penalty_shrinks_gamma_in_training() {
        // One SGD-like step along the L1 subgradient must shrink |γ|.
        let mut bn = BatchNorm2d::new(2);
        bn.gamma_mut().value = Tensor::from_slice(&[1.0, -1.0]);
        apply_bn_sparsity_penalty(&mut bn, 1.0);
        let lr = 0.1;
        let g = bn.gamma().grad.clone();
        for (v, gr) in bn
            .gamma_mut()
            .value
            .as_mut_slice()
            .iter_mut()
            .zip(g.as_slice())
        {
            *v -= lr * gr;
        }
        assert!((bn.gamma().value.as_slice()[0] - 0.9).abs() < 1e-6);
        assert!((bn.gamma().value.as_slice()[1] + 0.9).abs() < 1e-6);
        let _ = bn.forward(&Tensor::zeros(&[1, 2, 2, 2]), Mode::Eval);
    }
}
