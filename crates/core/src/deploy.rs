//! Deployment against the simulated TEE substrate.
//!
//! Two layers of fidelity:
//!
//! * **analytical** — [`DeploymentPlan`] prices the finalized TBNet
//!   deployment with `tbnet-tee`'s cost model: latency (Table 3) and secure
//!   memory (Fig. 3), always against the baseline of running the whole
//!   victim inside the TEE;
//! * **functional** — [`run_split_inference`] actually executes the split:
//!   `M_R` runs "in the REE" producing feature maps that cross the
//!   type-enforced one-way channel; the "TEE side" merges them into `M_T`
//!   and classifies. Its logits must match [`TwoBranchModel::predict`]
//!   exactly, which the tests assert.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use tbnet_models::ModelSpec;
use tbnet_nn::Mode;
use tbnet_tee::channel::{one_way, ChannelStats};
use tbnet_tee::{
    simulate_baseline, simulate_two_branch, CostModel, Deployment, LatencyReport, MemoryReport,
    SecureWorld,
};
use tbnet_tensor::Tensor;

use crate::channels::gather_channels;
use crate::{CoreError, Result, TwoBranchModel};

/// The architectures of a finalized TBNet deployment plus the victim
/// baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentPlan {
    /// The victim architecture (baseline: fully inside the TEE).
    pub victim_spec: ModelSpec,
    /// The pruned secure branch deployed in the TEE.
    pub mt_spec: ModelSpec,
    /// The rolled-back unsecured branch deployed in the REE.
    pub mr_spec: ModelSpec,
}

/// Side-by-side latency numbers (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyComparison {
    /// Whole victim inside the TEE.
    pub baseline: LatencyReport,
    /// TBNet split execution.
    pub tbnet: LatencyReport,
}

impl LatencyComparison {
    /// Baseline-over-TBNet speedup (the paper reports up to 1.22×).
    pub fn reduction_factor(&self) -> f64 {
        self.baseline.total_s / self.tbnet.total_s
    }
}

/// Side-by-side secure-memory numbers (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryComparison {
    /// Whole victim inside the TEE.
    pub baseline: MemoryReport,
    /// Only `M_T` (plus merge buffer) inside the TEE.
    pub tbnet: MemoryReport,
}

impl MemoryComparison {
    /// Baseline-over-TBNet memory reduction (the paper reports up to 2.45×).
    pub fn reduction_factor(&self) -> f64 {
        self.baseline.total() as f64 / self.tbnet.total() as f64
    }
}

impl DeploymentPlan {
    /// Builds the plan from a finalized two-branch model and the victim's
    /// architecture.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BranchMismatch`] when the model has not been
    /// finalized (deploying a non-finalized model would leak `M_T`'s
    /// architecture through `M_R`'s).
    pub fn new(model: &TwoBranchModel, victim_spec: ModelSpec) -> Result<Self> {
        if !model.is_finalized() {
            return Err(CoreError::BranchMismatch {
                reason: "deployment requires rollback finalization (step ⑥)".into(),
            });
        }
        Ok(DeploymentPlan {
            victim_spec,
            mt_spec: model.mt().spec(),
            mr_spec: model.mr().spec(),
        })
    }

    /// Builds a plan directly from architecture specs, without a trained
    /// model. This is the planner's entry point: candidate (pruning ×
    /// rollback) architectures can be priced analytically before any
    /// training is spent on them — only the winning plan needs to go
    /// through the pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BranchMismatch`] when the branches' unit counts
    /// disagree (they must be branch-wise aligned for the per-unit merges).
    ///
    /// # Examples
    ///
    /// ```
    /// use tbnet_core::deploy::DeploymentPlan;
    /// use tbnet_models::vgg;
    /// use tbnet_tee::CostModel;
    ///
    /// let victim = vgg::vgg_tiny(10, 3, (16, 16));
    /// let mut mt = victim.clone();
    /// for u in &mut mt.units {
    ///     u.out_channels = (u.out_channels / 2).max(1);
    /// }
    /// let plan = DeploymentPlan::from_specs(victim.clone(), mt, victim).unwrap();
    /// let lat = plan.latency(&CostModel::raspberry_pi3()).unwrap();
    /// assert!(lat.reduction_factor() > 1.0); // pruned M_T beats the baseline
    /// ```
    pub fn from_specs(
        victim_spec: ModelSpec,
        mt_spec: ModelSpec,
        mr_spec: ModelSpec,
    ) -> Result<Self> {
        if mt_spec.units.len() != mr_spec.units.len() {
            return Err(CoreError::BranchMismatch {
                reason: format!(
                    "branch unit counts disagree: M_T has {}, M_R has {}",
                    mt_spec.units.len(),
                    mr_spec.units.len()
                ),
            });
        }
        Ok(DeploymentPlan {
            victim_spec,
            mt_spec,
            mr_spec,
        })
    }

    /// Prices both deployments' inference latency (Table 3).
    ///
    /// # Errors
    ///
    /// Propagates cost-model/spec validation errors.
    pub fn latency(&self, cost: &CostModel) -> Result<LatencyComparison> {
        Ok(LatencyComparison {
            baseline: simulate_baseline(&self.victim_spec, cost)?,
            tbnet: simulate_two_branch(&self.mt_spec, &self.mr_spec, cost)?,
        })
    }

    /// Prices both deployments' secure-memory footprint (Fig. 3).
    ///
    /// # Errors
    ///
    /// Propagates spec validation errors.
    pub fn memory(&self) -> Result<MemoryComparison> {
        Ok(MemoryComparison {
            baseline: MemoryReport::for_baseline(&self.victim_spec)?,
            tbnet: MemoryReport::for_secure_branch(&self.mt_spec)?,
        })
    }

    /// Verifies the TBNet deployment fits the secure world's budget by
    /// actually loading it, and returns the bytes used.
    ///
    /// # Errors
    ///
    /// Returns [`tbnet_tee::TeeError::SecureMemoryExhausted`] (wrapped) when
    /// the secure branch does not fit.
    pub fn load_into_secure_world(&self, world: &mut SecureWorld) -> Result<usize> {
        world.load_model(&self.mt_spec, Deployment::SecureBranch)?;
        Ok(world.used())
    }
}

/// Wall-clock breakdown of a [`run_split_inference`] call, shaped like the
/// analytical [`LatencyReport`] so the simulator (Table 3) and the real
/// execution become directly comparable: `ree_ms` ↔ `ree_compute_s`,
/// `tee_ms` ↔ `tee_compute_s`, `transfer_ms` ↔ `transfer_s`,
/// `merge_ms` ↔ `merge_s` (there is no switch cost in-process).
///
/// `merge_ms` covers the TEE-side channel extraction (the step-⑥ gather);
/// the elementwise add itself rides inside `tee_ms` whenever `M_T`'s unit
/// fuses it into its conv epilogue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SplitTimings {
    /// REE-side `M_R` unit forwards.
    pub ree_ms: f64,
    /// One-way channel sends and receives (payload clones included).
    pub transfer_ms: f64,
    /// TEE-side `M_T` unit forwards (fused merges included) and the head.
    pub tee_ms: f64,
    /// TEE-side aligned-channel extraction before each merge.
    pub merge_ms: f64,
    /// End-to-end wall clock of the split execution.
    pub total_ms: f64,
}

/// Result of a functional split inference.
#[derive(Debug, Clone)]
pub struct SplitInference {
    /// Logits produced by the TEE side.
    pub logits: Tensor,
    /// Traffic that crossed the one-way channel.
    pub channel: ChannelStats,
    /// Per-stage wall-clock breakdown.
    pub timings: SplitTimings,
}

/// Executes the finalized model as it would deploy: the REE side runs `M_R`
/// and streams feature maps through a one-way channel; the TEE side runs
/// `M_T`, extracting aligned channels and merging. Both sides run the
/// BN-folded fused inference path ([`tbnet_models::Unit::forward_inference`]);
/// `M_T` fuses each merge into its conv epilogue where its unit geometry
/// allows.
///
/// The data flow is exactly the paper's: nothing is ever sent TEE→REE (the
/// channel type has no such method), and the TEE performs the per-unit
/// channel extraction of step ⑥.
///
/// # Errors
///
/// Returns shape errors when `images` disagree with the model geometry and
/// [`CoreError::BranchMismatch`] if the channel underflows (impossible with
/// congruent branches).
#[allow(clippy::needless_range_loop)] // i drives units, channel payloads and align together
pub fn run_split_inference(model: &mut TwoBranchModel, images: &Tensor) -> Result<SplitInference> {
    let n = model.unit_count();
    let (tx, rx) = one_way::<Tensor>();
    let t_start = Instant::now();
    let (mut ree_ms, mut transfer_ms, mut tee_ms, mut merge_ms) = (0.0, 0.0, 0.0, 0.0);

    // ---- REE side: run M_R and stream every feature map. ----
    {
        let mr = model.mr_mut();
        let mut r = images.clone();
        let t = Instant::now();
        tx.send(images.clone(), images.numel() * 4);
        transfer_ms += ms_since(t);
        for i in 0..n {
            let t = Instant::now();
            r = mr.units_mut()[i].forward_inference(&r, None, None)?;
            ree_ms += ms_since(t);
            let t = Instant::now();
            tx.send(r.clone(), r.numel() * 4);
            transfer_ms += ms_since(t);
        }
    }

    // ---- TEE side: run M_T over merged feature maps. ----
    let align: Vec<Option<Vec<usize>>> = model.align().to_vec();
    let mt = model.mt_mut();
    let t = Instant::now();
    let mut m = rx.recv().ok_or_else(|| CoreError::BranchMismatch {
        reason: "channel underflow: missing input payload".into(),
    })?;
    transfer_ms += ms_since(t);
    let mut merged_outs: Vec<Tensor> = Vec::with_capacity(n);
    for i in 0..n {
        let t = Instant::now();
        let r_out = rx.recv().ok_or_else(|| CoreError::BranchMismatch {
            reason: format!("channel underflow at unit {i}"),
        })?;
        transfer_ms += ms_since(t);
        let t = Instant::now();
        let r_sel = match &align[i] {
            None => r_out,
            Some(idx) => gather_channels(&r_out, idx)?,
        };
        merge_ms += ms_since(t);
        let skip = mt.units()[i]
            .spec()
            .skip_from
            .map(|j| merged_outs[j].clone());
        let t = Instant::now();
        m = mt.units_mut()[i].forward_inference(&m, skip.as_ref(), Some(&r_sel))?;
        tee_ms += ms_since(t);
        merged_outs.push(m.clone());
    }
    let t = Instant::now();
    let logits = mt.head_mut().forward(&m, Mode::Eval)?;
    tee_ms += ms_since(t);
    Ok(SplitInference {
        logits,
        channel: tx.stats(),
        timings: SplitTimings {
            ree_ms,
            transfer_ms,
            tee_ms,
            merge_ms,
            total_ms: ms_since(t_start),
        },
    })
}

fn ms_since(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tbnet_data::{DatasetKind, SyntheticCifar};
    use tbnet_models::{vgg, ChainNet};

    use crate::pipeline::{run_pipeline, PipelineConfig};

    fn finalized_artifacts() -> (crate::pipeline::TbnetArtifacts, SyntheticCifar) {
        let data = SyntheticCifar::generate(
            DatasetKind::Cifar10Like
                .config()
                .with_classes(3)
                .with_train_per_class(10)
                .with_test_per_class(5)
                .with_size(8, 8)
                .with_noise_std(0.25),
        );
        let spec = vgg::vgg_from_stages("v", &[(8, 1), (8, 1)], 3, 3, (8, 8));
        let mut cfg = PipelineConfig::smoke();
        cfg.prune.drop_budget = 1.0;
        let artifacts = run_pipeline(&spec, &data, &cfg).unwrap();
        (artifacts, data)
    }

    #[test]
    fn plan_requires_finalization() {
        let mut rng = StdRng::seed_from_u64(0);
        let spec = vgg::vgg_from_stages("v", &[(4, 1)], 3, 2, (8, 8));
        let victim = ChainNet::from_spec(&spec, &mut rng).unwrap();
        let tb = TwoBranchModel::from_victim(&victim, &mut rng).unwrap();
        assert!(DeploymentPlan::new(&tb, spec).is_err());
    }

    #[test]
    fn latency_and_memory_favor_tbnet() {
        let (artifacts, _) = finalized_artifacts();
        let plan = DeploymentPlan::new(&artifacts.model, artifacts.victim.spec()).unwrap();
        let cost = CostModel::raspberry_pi3();
        let lat = plan.latency(&cost).unwrap();
        let mem = plan.memory().unwrap();
        // M_T is pruned, so its weights must use less secure memory than the
        // victim's. (Total reduction — Fig. 3 — is weight-dominated at paper
        // scale and asserted by the experiment harness; at this toy scale the
        // merge buffer can outweigh the savings.)
        assert!(
            mem.tbnet.weight_bytes < mem.baseline.weight_bytes,
            "pruned M_T weights {} ≥ victim weights {}",
            mem.tbnet.weight_bytes,
            mem.baseline.weight_bytes
        );
        assert!(lat.baseline.total_s > 0.0 && lat.tbnet.total_s > 0.0);
        assert!(lat.reduction_factor() > 0.0 && mem.reduction_factor() > 0.0);
    }

    #[test]
    fn secure_world_loading_respects_budget() {
        let (artifacts, _) = finalized_artifacts();
        let plan = DeploymentPlan::new(&artifacts.model, artifacts.victim.spec()).unwrap();
        let mut world = SecureWorld::new(64 * 1024 * 1024);
        let used = plan.load_into_secure_world(&mut world).unwrap();
        assert!(used > 0);
        let mut tiny = SecureWorld::new(16);
        assert!(plan.load_into_secure_world(&mut tiny).is_err());
    }

    #[test]
    fn split_inference_matches_monolithic_forward() {
        let (mut artifacts, data) = finalized_artifacts();
        let batch = data.test().gather(&[0, 1, 2, 3]);
        let expected = artifacts.model.predict(&batch.images).unwrap();
        let split = run_split_inference(&mut artifacts.model, &batch.images).unwrap();
        assert_eq!(split.logits.dims(), expected.dims());
        for (a, b) in split.logits.as_slice().iter().zip(expected.as_slice()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
        // One payload per unit plus the input.
        assert_eq!(
            split.channel.messages,
            artifacts.model.unit_count() as u64 + 1
        );
        assert!(split.channel.bytes > 0);
        // Per-stage wall clock: every stage ran, and the stages cannot
        // exceed the end-to-end clock.
        let t = split.timings;
        assert!(t.ree_ms > 0.0 && t.tee_ms > 0.0);
        assert!(t.transfer_ms >= 0.0 && t.merge_ms >= 0.0);
        assert!(t.ree_ms + t.transfer_ms + t.tee_ms + t.merge_ms <= t.total_ms);
    }

    #[test]
    fn fused_and_int8_predictions_track_reference() {
        let (mut artifacts, data) = finalized_artifacts();
        let batch = data.test().gather(&[0, 1, 2, 3, 4]);
        let reference = artifacts.model.predict(&batch.images).unwrap();
        let fused = artifacts.model.predict_fused(&batch.images).unwrap();
        for (a, b) in fused.as_slice().iter().zip(reference.as_slice()) {
            assert!((a - b).abs() < 1e-4, "fused {a} vs reference {b}");
        }
        let int8 = artifacts.model.predict_int8(&batch.images).unwrap();
        assert_eq!(int8.dims(), reference.dims());
        // Quantization shifts logits but must preserve the decisions on
        // this easy synthetic batch.
        let classes = reference.dim(1);
        for (qr, rr) in int8
            .as_slice()
            .chunks(classes)
            .zip(reference.as_slice().chunks(classes))
        {
            let qa = qr
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0;
            let ra = rr
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0;
            assert_eq!(qa, ra, "int8 top-1 diverged: {qr:?} vs {rr:?}");
        }
    }
}
