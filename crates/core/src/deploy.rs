//! Deployment against the simulated TEE substrate.
//!
//! Two layers of fidelity:
//!
//! * **analytical** — [`DeploymentPlan`] prices the finalized TBNet
//!   deployment with `tbnet-tee`'s cost model: latency (Table 3) and secure
//!   memory (Fig. 3), always against the baseline of running the whole
//!   victim inside the TEE;
//! * **functional** — [`run_split_inference`] actually executes the split:
//!   `M_R` runs "in the REE" producing feature maps that cross the
//!   type-enforced one-way channel; the "TEE side" merges them into `M_T`
//!   and classifies. Its logits must match [`TwoBranchModel::predict`]
//!   exactly, which the tests assert.

use serde::{Deserialize, Serialize};

use tbnet_models::ModelSpec;
use tbnet_nn::Mode;
use tbnet_tee::channel::{one_way, ChannelStats};
use tbnet_tee::{
    simulate_baseline, simulate_two_branch, CostModel, Deployment, LatencyReport, MemoryReport,
    SecureWorld,
};
use tbnet_tensor::Tensor;

use crate::channels::gather_channels;
use crate::{CoreError, Result, TwoBranchModel};

/// The architectures of a finalized TBNet deployment plus the victim
/// baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentPlan {
    /// The victim architecture (baseline: fully inside the TEE).
    pub victim_spec: ModelSpec,
    /// The pruned secure branch deployed in the TEE.
    pub mt_spec: ModelSpec,
    /// The rolled-back unsecured branch deployed in the REE.
    pub mr_spec: ModelSpec,
}

/// Side-by-side latency numbers (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyComparison {
    /// Whole victim inside the TEE.
    pub baseline: LatencyReport,
    /// TBNet split execution.
    pub tbnet: LatencyReport,
}

impl LatencyComparison {
    /// Baseline-over-TBNet speedup (the paper reports up to 1.22×).
    pub fn reduction_factor(&self) -> f64 {
        self.baseline.total_s / self.tbnet.total_s
    }
}

/// Side-by-side secure-memory numbers (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryComparison {
    /// Whole victim inside the TEE.
    pub baseline: MemoryReport,
    /// Only `M_T` (plus merge buffer) inside the TEE.
    pub tbnet: MemoryReport,
}

impl MemoryComparison {
    /// Baseline-over-TBNet memory reduction (the paper reports up to 2.45×).
    pub fn reduction_factor(&self) -> f64 {
        self.baseline.total() as f64 / self.tbnet.total() as f64
    }
}

impl DeploymentPlan {
    /// Builds the plan from a finalized two-branch model and the victim's
    /// architecture.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BranchMismatch`] when the model has not been
    /// finalized (deploying a non-finalized model would leak `M_T`'s
    /// architecture through `M_R`'s).
    pub fn new(model: &TwoBranchModel, victim_spec: ModelSpec) -> Result<Self> {
        if !model.is_finalized() {
            return Err(CoreError::BranchMismatch {
                reason: "deployment requires rollback finalization (step ⑥)".into(),
            });
        }
        Ok(DeploymentPlan {
            victim_spec,
            mt_spec: model.mt().spec(),
            mr_spec: model.mr().spec(),
        })
    }

    /// Prices both deployments' inference latency (Table 3).
    ///
    /// # Errors
    ///
    /// Propagates cost-model/spec validation errors.
    pub fn latency(&self, cost: &CostModel) -> Result<LatencyComparison> {
        Ok(LatencyComparison {
            baseline: simulate_baseline(&self.victim_spec, cost)?,
            tbnet: simulate_two_branch(&self.mt_spec, &self.mr_spec, cost)?,
        })
    }

    /// Prices both deployments' secure-memory footprint (Fig. 3).
    ///
    /// # Errors
    ///
    /// Propagates spec validation errors.
    pub fn memory(&self) -> Result<MemoryComparison> {
        Ok(MemoryComparison {
            baseline: MemoryReport::for_baseline(&self.victim_spec)?,
            tbnet: MemoryReport::for_secure_branch(&self.mt_spec)?,
        })
    }

    /// Verifies the TBNet deployment fits the secure world's budget by
    /// actually loading it, and returns the bytes used.
    ///
    /// # Errors
    ///
    /// Returns [`tbnet_tee::TeeError::SecureMemoryExhausted`] (wrapped) when
    /// the secure branch does not fit.
    pub fn load_into_secure_world(&self, world: &mut SecureWorld) -> Result<usize> {
        world.load_model(&self.mt_spec, Deployment::SecureBranch)?;
        Ok(world.used())
    }
}

/// Result of a functional split inference.
#[derive(Debug, Clone)]
pub struct SplitInference {
    /// Logits produced by the TEE side.
    pub logits: Tensor,
    /// Traffic that crossed the one-way channel.
    pub channel: ChannelStats,
}

/// Executes the finalized model as it would deploy: the REE side runs `M_R`
/// and streams feature maps through a one-way channel; the TEE side runs
/// `M_T`, extracting aligned channels and merging.
///
/// The data flow is exactly the paper's: nothing is ever sent TEE→REE (the
/// channel type has no such method), and the TEE performs the per-unit
/// channel extraction of step ⑥.
///
/// # Errors
///
/// Returns shape errors when `images` disagree with the model geometry and
/// [`CoreError::BranchMismatch`] if the channel underflows (impossible with
/// congruent branches).
#[allow(clippy::needless_range_loop)] // i drives units, channel payloads and align together
pub fn run_split_inference(model: &mut TwoBranchModel, images: &Tensor) -> Result<SplitInference> {
    let n = model.unit_count();
    let (tx, rx) = one_way::<Tensor>();

    // ---- REE side: run M_R and stream every feature map. ----
    {
        let mr = model.mr_mut();
        let mut r = images.clone();
        tx.send(images.clone(), images.numel() * 4);
        for i in 0..n {
            r = mr.units_mut()[i].forward(&r, None, Mode::Eval)?;
            tx.send(r.clone(), r.numel() * 4);
        }
    }

    // ---- TEE side: run M_T over merged feature maps. ----
    let align: Vec<Option<Vec<usize>>> = model.align().to_vec();
    let mt = model.mt_mut();
    let mut m = rx.recv().ok_or_else(|| CoreError::BranchMismatch {
        reason: "channel underflow: missing input payload".into(),
    })?;
    let mut merged_outs: Vec<Tensor> = Vec::with_capacity(n);
    for i in 0..n {
        let skip = mt.units()[i]
            .spec()
            .skip_from
            .map(|j| merged_outs[j].clone());
        let t_out = mt.units_mut()[i].forward(&m, skip.as_ref(), Mode::Eval)?;
        let r_out = rx.recv().ok_or_else(|| CoreError::BranchMismatch {
            reason: format!("channel underflow at unit {i}"),
        })?;
        let r_sel = match &align[i] {
            None => r_out,
            Some(idx) => gather_channels(&r_out, idx)?,
        };
        m = tbnet_tensor::ops::add(&t_out, &r_sel)?;
        merged_outs.push(m.clone());
    }
    let logits = mt.head_mut().forward(&m, Mode::Eval)?;
    Ok(SplitInference {
        logits,
        channel: tx.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tbnet_data::{DatasetKind, SyntheticCifar};
    use tbnet_models::{vgg, ChainNet};

    use crate::pipeline::{run_pipeline, PipelineConfig};

    fn finalized_artifacts() -> (crate::pipeline::TbnetArtifacts, SyntheticCifar) {
        let data = SyntheticCifar::generate(
            DatasetKind::Cifar10Like
                .config()
                .with_classes(3)
                .with_train_per_class(10)
                .with_test_per_class(5)
                .with_size(8, 8)
                .with_noise_std(0.25),
        );
        let spec = vgg::vgg_from_stages("v", &[(8, 1), (8, 1)], 3, 3, (8, 8));
        let mut cfg = PipelineConfig::smoke();
        cfg.prune.drop_budget = 1.0;
        let artifacts = run_pipeline(&spec, &data, &cfg).unwrap();
        (artifacts, data)
    }

    #[test]
    fn plan_requires_finalization() {
        let mut rng = StdRng::seed_from_u64(0);
        let spec = vgg::vgg_from_stages("v", &[(4, 1)], 3, 2, (8, 8));
        let victim = ChainNet::from_spec(&spec, &mut rng).unwrap();
        let tb = TwoBranchModel::from_victim(&victim, &mut rng).unwrap();
        assert!(DeploymentPlan::new(&tb, spec).is_err());
    }

    #[test]
    fn latency_and_memory_favor_tbnet() {
        let (artifacts, _) = finalized_artifacts();
        let plan = DeploymentPlan::new(&artifacts.model, artifacts.victim.spec()).unwrap();
        let cost = CostModel::raspberry_pi3();
        let lat = plan.latency(&cost).unwrap();
        let mem = plan.memory().unwrap();
        // M_T is pruned, so its weights must use less secure memory than the
        // victim's. (Total reduction — Fig. 3 — is weight-dominated at paper
        // scale and asserted by the experiment harness; at this toy scale the
        // merge buffer can outweigh the savings.)
        assert!(
            mem.tbnet.weight_bytes < mem.baseline.weight_bytes,
            "pruned M_T weights {} ≥ victim weights {}",
            mem.tbnet.weight_bytes,
            mem.baseline.weight_bytes
        );
        assert!(lat.baseline.total_s > 0.0 && lat.tbnet.total_s > 0.0);
        assert!(lat.reduction_factor() > 0.0 && mem.reduction_factor() > 0.0);
    }

    #[test]
    fn secure_world_loading_respects_budget() {
        let (artifacts, _) = finalized_artifacts();
        let plan = DeploymentPlan::new(&artifacts.model, artifacts.victim.spec()).unwrap();
        let mut world = SecureWorld::new(64 * 1024 * 1024);
        let used = plan.load_into_secure_world(&mut world).unwrap();
        assert!(used > 0);
        let mut tiny = SecureWorld::new(16);
        assert!(plan.load_into_secure_world(&mut tiny).is_err());
    }

    #[test]
    fn split_inference_matches_monolithic_forward() {
        let (mut artifacts, data) = finalized_artifacts();
        let batch = data.test().gather(&[0, 1, 2, 3]);
        let expected = artifacts.model.predict(&batch.images).unwrap();
        let split = run_split_inference(&mut artifacts.model, &batch.images).unwrap();
        assert_eq!(split.logits.dims(), expected.dims());
        for (a, b) in split.logits.as_slice().iter().zip(expected.as_slice()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
        // One payload per unit plus the input.
        assert_eq!(
            split.channel.messages,
            artifacts.model.unit_count() as u64 + 1
        );
        assert!(split.channel.bytes > 0);
    }
}
