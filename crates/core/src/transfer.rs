//! Step ② — knowledge transfer into the two-branch model.
//!
//! Minimizes Eq. 1 of the paper:
//!
//! ```text
//! L = Σ l(f(x, W_R, W_T), y)  +  λ · Σ g(γ_R + γ_T)
//! ```
//!
//! where `l` is softmax cross-entropy on `M_T`'s output, `g` is the L1
//! sparsity penalty and the γ are BatchNorm scales of both branches. The
//! penalty distributes the victim's knowledge across the branches *and*
//! drives unimportant channels toward zero, preparing the composite-weight
//! pruning of steps ③–⑤.
//!
//! Since the unification of all training phases on the generic engine in
//! [`crate::dp_train`], [`train_two_branch`] runs through
//! [`DataParallelTrainer`] (sharding every minibatch across
//! `tbnet_tensor::par::max_threads()` model replicas with synchronized
//! BatchNorm statistics); [`train_two_branch_seq`] keeps the plain
//! sequential loop as the arithmetic reference the parity suite
//! (`tests/transfer_parity.rs`) pins the engine against.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use tbnet_data::ImageDataset;
use tbnet_models::ChainNet;
use tbnet_nn::loss::{apply_bn_sparsity_penalty, softmax_cross_entropy};
use tbnet_nn::metrics::{accuracy, RunningMean};
use tbnet_nn::optim::{Sgd, StepLr};
use tbnet_nn::Mode;
use tbnet_tensor::par;

use crate::dp_train::{DataParallelTrainer, WorkerPolicy};
use crate::{CoreError, Result, TwoBranchModel};

/// Hyper-parameters of the knowledge-transfer optimization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Weight decay on conv/linear weights.
    pub weight_decay: f32,
    /// λ — the sparsity-penalty weight of Eq. 1 (paper: 1e-4).
    pub lambda: f32,
    /// Epochs between learning-rate decays.
    pub lr_step: usize,
    /// Learning-rate decay factor.
    pub lr_gamma: f32,
    /// RNG seed for batch shuffling.
    pub seed: u64,
}

impl TransferConfig {
    /// The paper's settings (λ = 1e-4, SGD 0.1/0.9/1e-4, ×0.1 decay) at an
    /// experiment-scale epoch count and learning rate.
    pub fn paper_scaled(epochs: usize) -> Self {
        TransferConfig {
            epochs,
            batch_size: 32,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            lambda: 1e-4,
            lr_step: (epochs / 3).max(1),
            lr_gamma: 0.1,
            seed: 11,
        }
    }

    /// Overrides λ (used by the ablation benches).
    pub fn with_lambda(mut self, lambda: f32) -> Self {
        self.lambda = lambda;
        self
    }

    fn validate(&self) -> Result<()> {
        if self.epochs == 0 {
            return Err(CoreError::InvalidConfig {
                field: "epochs",
                reason: "must be at least 1".into(),
            });
        }
        if self.batch_size == 0 {
            return Err(CoreError::InvalidConfig {
                field: "batch_size",
                reason: "must be at least 1".into(),
            });
        }
        if self.lambda < 0.0 {
            return Err(CoreError::InvalidConfig {
                field: "lambda",
                reason: "must be non-negative".into(),
            });
        }
        Ok(())
    }
}

/// Per-epoch transfer record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferEpoch {
    /// 0-based epoch index.
    pub epoch: usize,
    /// Mean cross-entropy component of the loss.
    pub ce_loss: f32,
    /// Mean sparsity-penalty component (λ·Σ|γ|).
    pub sparsity_loss: f32,
    /// Training accuracy of the two-branch output.
    pub train_acc: f32,
}

/// Applies the L1 sparsity subgradient to every BatchNorm γ in a branch and
/// returns the penalty value λ·Σ|γ|.
pub fn apply_branch_sparsity(net: &mut ChainNet, lambda: f32) -> f32 {
    let mut total = 0.0;
    for u in net.units_mut() {
        total += apply_bn_sparsity_penalty(u.bn_mut(), lambda);
    }
    total
}

/// Runs the knowledge-transfer optimization (Eq. 1) over the two-branch
/// model, updating both branches concurrently.
///
/// Routes through the generic [`DataParallelTrainer`] with
/// `tbnet_tensor::par::max_threads()` workers; results match
/// [`train_two_branch_seq`] to f32 rounding (1e-5 in the parity suite) for
/// any worker count.
///
/// # Errors
///
/// Returns configuration or shape errors.
pub fn train_two_branch(
    model: &mut TwoBranchModel,
    data: &ImageDataset,
    cfg: &TransferConfig,
) -> Result<Vec<TransferEpoch>> {
    train_two_branch_with_workers(model, data, cfg, par::max_threads())
}

/// Knowledge transfer (Eq. 1) through the generic data-parallel engine
/// under a [`WorkerPolicy`] (a plain `usize` converts to
/// [`WorkerPolicy::Fixed`]): every minibatch is sharded across the resolved
/// number of model replicas with synchronized BatchNorm statistics,
/// gradients merge with a deterministic left-to-right fold, the sparsity
/// subgradient is applied to the merged gradient, and every replica takes
/// the identical SGD step. [`WorkerPolicy::Auto`] resolves against the
/// model's *live* branch widths, so repeated fine-tunes of a shrinking
/// model (the pruning loop) re-tune per iteration.
///
/// # Errors
///
/// Returns configuration or shape errors.
pub fn train_two_branch_with_workers(
    model: &mut TwoBranchModel,
    data: &ImageDataset,
    cfg: &TransferConfig,
    workers: impl Into<WorkerPolicy>,
) -> Result<Vec<TransferEpoch>> {
    cfg.validate()?;
    let mut sgd = Sgd::new(cfg.lr, cfg.momentum, cfg.weight_decay)?;
    let workers = workers
        .into()
        .resolve(model, data, cfg.batch_size, &sgd, cfg.lambda)?;
    let mut trainer = DataParallelTrainer::new(model, workers)?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let sched = StepLr::new(cfg.lr, cfg.lr_gamma, cfg.lr_step)?;
    let mut history = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        sgd.set_lr(sched.lr_at(epoch));
        let mut ce = RunningMean::new();
        let mut sparsity = RunningMean::new();
        let mut acc = RunningMean::new();
        for batch in data.minibatches(cfg.batch_size, &mut rng) {
            let stats = trainer.step_with_penalty(&batch, &sgd, cfg.lambda)?;
            ce.add(stats.loss, batch.len());
            sparsity.add(stats.penalty, batch.len());
            acc.add(stats.acc, batch.len());
        }
        history.push(TransferEpoch {
            epoch,
            ce_loss: ce.mean(),
            sparsity_loss: sparsity.mean(),
            train_acc: acc.mean(),
        });
    }
    *model = trainer.into_model();
    Ok(history)
}

/// The plain sequential knowledge-transfer loop — the arithmetic reference
/// the data-parallel parity suite pins [`train_two_branch_with_workers`]
/// against. Prefer [`train_two_branch`] everywhere else.
///
/// # Errors
///
/// Returns configuration or shape errors.
pub fn train_two_branch_seq(
    model: &mut TwoBranchModel,
    data: &ImageDataset,
    cfg: &TransferConfig,
) -> Result<Vec<TransferEpoch>> {
    cfg.validate()?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut sgd = Sgd::new(cfg.lr, cfg.momentum, cfg.weight_decay)?;
    let sched = StepLr::new(cfg.lr, cfg.lr_gamma, cfg.lr_step)?;
    let mut history = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        sgd.set_lr(sched.lr_at(epoch));
        let mut ce = RunningMean::new();
        let mut sparsity = RunningMean::new();
        let mut acc = RunningMean::new();
        for batch in data.minibatches(cfg.batch_size, &mut rng) {
            model.zero_grad();
            let logits = model.forward(&batch.images, Mode::Train)?;
            let out = softmax_cross_entropy(&logits, &batch.labels)?;
            model.backward(&out.grad)?;
            // Sparsity on γ_R and γ_T — the g(γ_R + γ_T) term of Eq. 1
            // separates because the L1 norm of concatenated vectors is the
            // sum of the branch norms.
            let mut pen = apply_branch_sparsity(model.mr_mut(), cfg.lambda);
            pen += apply_branch_sparsity(model.mt_mut(), cfg.lambda);
            step_both(&sgd, model);
            ce.add(out.loss, batch.len());
            sparsity.add(pen, batch.len());
            acc.add(accuracy(&logits, &batch.labels)?, batch.len());
        }
        history.push(TransferEpoch {
            epoch,
            ce_loss: ce.mean(),
            sparsity_loss: sparsity.mean(),
            train_acc: acc.mean(),
        });
    }
    Ok(history)
}

fn step_both(sgd: &Sgd, model: &mut TwoBranchModel) {
    use tbnet_nn::Layer;
    sgd.step(model.mr_mut() as &mut dyn Layer);
    sgd.step(model.mt_mut() as &mut dyn Layer);
}

/// Evaluates the two-branch model on a dataset (eval mode, batched).
///
/// # Errors
///
/// Returns shape errors when the dataset disagrees with the model geometry.
pub fn evaluate_two_branch(model: &mut TwoBranchModel, data: &ImageDataset) -> Result<f32> {
    let chunk = 64usize;
    crate::parallel::parallel_eval(&*model, data.len(), chunk, |worker, range| {
        let idx: Vec<usize> = range.collect();
        let batch = data.gather(&idx);
        let logits = worker.predict(&batch.images)?;
        Ok((accuracy(&logits, &batch.labels)?, batch.len()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbnet_data::{DatasetKind, SyntheticCifar};
    use tbnet_models::vgg;
    use tbnet_models::ChainNet;

    fn setup() -> (TwoBranchModel, SyntheticCifar) {
        let mut rng = StdRng::seed_from_u64(0);
        let data = SyntheticCifar::generate(
            DatasetKind::Cifar10Like
                .config()
                .with_classes(4)
                .with_train_per_class(12)
                .with_test_per_class(6)
                .with_size(8, 8)
                .with_noise_std(0.2),
        );
        let spec = vgg::vgg_from_stages("v", &[(8, 1), (8, 1)], 4, 3, (8, 8));
        let victim = ChainNet::from_spec(&spec, &mut rng).unwrap();
        let tb = TwoBranchModel::from_victim(&victim, &mut rng).unwrap();
        (tb, data)
    }

    #[test]
    fn config_validation() {
        let (mut tb, data) = setup();
        let mut cfg = TransferConfig::paper_scaled(1);
        cfg.epochs = 0;
        assert!(train_two_branch(&mut tb, data.train(), &cfg).is_err());
        let cfg = TransferConfig::paper_scaled(1).with_lambda(-1.0);
        assert!(train_two_branch(&mut tb, data.train(), &cfg).is_err());
    }

    #[test]
    fn transfer_learns_above_chance() {
        let (mut tb, data) = setup();
        let cfg = TransferConfig::paper_scaled(8);
        let history = train_two_branch(&mut tb, data.train(), &cfg).unwrap();
        assert_eq!(history.len(), 8);
        assert!(history.last().unwrap().ce_loss < history[0].ce_loss);
        let acc = evaluate_two_branch(&mut tb, data.test()).unwrap();
        assert!(acc > 0.4, "two-branch accuracy {acc} not above chance");
    }

    #[test]
    fn sparsity_penalty_shrinks_gammas() {
        let (tb0, data) = setup();
        // Strong λ run vs zero-λ run: the strong-λ model must end with a
        // smaller total |γ|.
        let total_gamma = |tb: &TwoBranchModel| {
            let mut s = 0.0f32;
            for u in tb.mr().units().iter().chain(tb.mt().units()) {
                s += u.bn().gamma().value.l1_norm();
            }
            s
        };
        let mut strong = tb0.clone();
        let mut free = tb0;
        train_two_branch(
            &mut strong,
            data.train(),
            &TransferConfig::paper_scaled(5).with_lambda(5e-3),
        )
        .unwrap();
        train_two_branch(
            &mut free,
            data.train(),
            &TransferConfig::paper_scaled(5).with_lambda(0.0),
        )
        .unwrap();
        assert!(
            total_gamma(&strong) < total_gamma(&free),
            "λ did not shrink γ: {} vs {}",
            total_gamma(&strong),
            total_gamma(&free)
        );
    }

    #[test]
    fn transfer_reports_sparsity_component() {
        let (mut tb, data) = setup();
        let cfg = TransferConfig::paper_scaled(2).with_lambda(1e-3);
        let history = train_two_branch(&mut tb, data.train(), &cfg).unwrap();
        assert!(history.iter().all(|e| e.sparsity_loss > 0.0));
    }

    #[test]
    fn victim_head_in_mr_stays_frozen() {
        let (mut tb, data) = setup();
        let before = tb.mr().head().linear().weight().value.clone();
        train_two_branch(&mut tb, data.train(), &TransferConfig::paper_scaled(2)).unwrap();
        // Weight decay is the only force on the unused head; with wd=1e-4
        // and a handful of steps the drift is tiny but non-random. Check the
        // head did not receive task gradient (relative change ≪ conv drift).
        let after = tb.mr().head().linear().weight().value.clone();
        let head_drift: f32 = before
            .as_slice()
            .iter()
            .zip(after.as_slice())
            .map(|(a, b)| (a - b).abs())
            .sum::<f32>()
            / before.numel() as f32;
        assert!(head_drift < 1e-3, "unexpected head drift {head_drift}");
    }
}
