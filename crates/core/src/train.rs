//! Victim-model training and shared evaluation helpers.
//!
//! The threat model assumes the vendor ships a *well-trained, highly
//! optimized* victim (paper §2.2); [`train_victim`] produces it with the
//! paper's optimizer settings (SGD, momentum 0.9, weight decay 1e-4, step LR
//! decay). [`train_victim_with_workers`] runs the same recipe through the
//! data-parallel engine in [`crate::dp_train`] (synchronized BatchNorm,
//! deterministic shard-merge), which reproduces the sequential results to
//! f32 rounding at any worker count.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use tbnet_data::ImageDataset;
use tbnet_models::ChainNet;
use tbnet_nn::loss::softmax_cross_entropy;
use tbnet_nn::metrics::{accuracy, RunningMean};
use tbnet_nn::optim::{Sgd, StepLr};
use tbnet_nn::{Layer, Mode};

use crate::dp_train::WorkerPolicy;
use crate::{CoreError, Result};

/// Hyper-parameters for plain classifier training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Weight decay (applied to conv/linear weights only).
    pub weight_decay: f32,
    /// Epochs between ×`lr_gamma` decays.
    pub lr_step: usize,
    /// Learning-rate decay factor.
    pub lr_gamma: f32,
    /// RNG seed for batch shuffling.
    pub seed: u64,
}

impl TrainConfig {
    /// The paper's hyper-parameters with an experiment-scale epoch count.
    pub fn paper_scaled(epochs: usize) -> Self {
        TrainConfig {
            epochs,
            batch_size: 32,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            // The paper decays ×0.1 every 100 of 300 epochs; keep the
            // one-decay-per-third shape at reduced scale.
            lr_step: (epochs / 3).max(1),
            lr_gamma: 0.1,
            seed: 7,
        }
    }

    pub(crate) fn validate(&self) -> Result<()> {
        if self.epochs == 0 {
            return Err(CoreError::InvalidConfig {
                field: "epochs",
                reason: "must be at least 1".into(),
            });
        }
        if self.batch_size == 0 {
            return Err(CoreError::InvalidConfig {
                field: "batch_size",
                reason: "must be at least 1".into(),
            });
        }
        Ok(())
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// 0-based epoch index.
    pub epoch: usize,
    /// Mean training loss.
    pub train_loss: f32,
    /// Training accuracy.
    pub train_acc: f32,
}

/// Trains a [`ChainNet`] classifier in place, returning per-epoch stats.
///
/// # Errors
///
/// Returns configuration or shape errors.
pub fn train_victim(
    net: &mut ChainNet,
    data: &ImageDataset,
    cfg: &TrainConfig,
) -> Result<Vec<EpochStats>> {
    cfg.validate()?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut sgd = Sgd::new(cfg.lr, cfg.momentum, cfg.weight_decay)?;
    let sched = StepLr::new(cfg.lr, cfg.lr_gamma, cfg.lr_step)?;
    let mut history = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        sgd.set_lr(sched.lr_at(epoch));
        let mut loss_acc = RunningMean::new();
        let mut acc_acc = RunningMean::new();
        for batch in data.minibatches(cfg.batch_size, &mut rng) {
            net.zero_grad();
            let logits = net.forward(&batch.images, Mode::Train)?;
            let out = softmax_cross_entropy(&logits, &batch.labels)?;
            net.backward(&out.grad)?;
            sgd.step(net);
            loss_acc.add(out.loss, batch.len());
            acc_acc.add(accuracy(&logits, &batch.labels)?, batch.len());
        }
        history.push(EpochStats {
            epoch,
            train_loss: loss_acc.mean(),
            train_acc: acc_acc.mean(),
        });
    }
    Ok(history)
}

/// Trains with data parallelism under a [`WorkerPolicy`] (a plain `usize`
/// converts to [`WorkerPolicy::Fixed`]), falling back to the plain
/// sequential loop when the policy resolves to a single worker. The
/// data-parallel engine ([`crate::dp_train`]) synchronizes BatchNorm
/// statistics across shards and merges gradients deterministically, so
/// every worker count produces the same loss curve, weights and running
/// statistics to f32 rounding — pass [`WorkerPolicy::Auto`] for a per-phase
/// autotuned count, or a fixed count to pin the shard layout.
///
/// # Errors
///
/// Returns configuration or shape errors.
pub fn train_victim_with_workers(
    net: &mut ChainNet,
    data: &ImageDataset,
    cfg: &TrainConfig,
    workers: impl Into<WorkerPolicy>,
) -> Result<Vec<EpochStats>> {
    cfg.validate()?;
    let sgd = Sgd::new(cfg.lr, cfg.momentum, cfg.weight_decay)?;
    let workers = workers
        .into()
        .resolve(net, data, cfg.batch_size, &sgd, 0.0)?;
    if workers == 1 {
        train_victim(net, data, cfg)
    } else {
        // workers == 0 reaches the trainer and is rejected there, keeping
        // the Fixed(0) contract identical across all four entry points.
        crate::dp_train::train_victim_dp(net, data, cfg, workers)
    }
}

/// Evaluates a [`ChainNet`] on a dataset (eval mode, batched to bound
/// memory). Returns top-1 accuracy in `[0, 1]`.
///
/// # Errors
///
/// Returns shape errors when the dataset geometry disagrees with the model.
pub fn evaluate(net: &mut ChainNet, data: &ImageDataset) -> Result<f32> {
    let chunk = 64usize;
    crate::parallel::parallel_eval(&*net, data.len(), chunk, |worker, range| {
        let idx: Vec<usize> = range.collect();
        let batch = data.gather(&idx);
        let logits = worker.forward(&batch.images, Mode::Eval)?;
        Ok((accuracy(&logits, &batch.labels)?, batch.len()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbnet_data::{DatasetKind, SyntheticCifar};
    use tbnet_models::vgg;

    fn tiny_data() -> SyntheticCifar {
        SyntheticCifar::generate(
            DatasetKind::Cifar10Like
                .config()
                .with_classes(4)
                .with_train_per_class(12)
                .with_test_per_class(6)
                .with_size(8, 8)
                .with_noise_std(0.2),
        )
    }

    #[test]
    fn config_validation() {
        let mut cfg = TrainConfig::paper_scaled(3);
        cfg.epochs = 0;
        let mut rng = StdRng::seed_from_u64(0);
        let spec = vgg::vgg_from_stages("v", &[(4, 1)], 4, 3, (8, 8));
        let mut net = ChainNet::from_spec(&spec, &mut rng).unwrap();
        let data = tiny_data();
        assert!(train_victim(&mut net, data.train(), &cfg).is_err());
        cfg.epochs = 1;
        cfg.batch_size = 0;
        assert!(train_victim(&mut net, data.train(), &cfg).is_err());
    }

    #[test]
    fn zero_workers_rejected_like_every_other_entry_point() {
        let mut rng = StdRng::seed_from_u64(9);
        let spec = vgg::vgg_from_stages("v", &[(4, 1)], 4, 3, (8, 8));
        let mut net = ChainNet::from_spec(&spec, &mut rng).unwrap();
        let data = tiny_data();
        let cfg = TrainConfig::paper_scaled(1);
        assert!(train_victim_with_workers(&mut net, data.train(), &cfg, 0).is_err());
        assert!(train_victim_with_workers(&mut net, data.train(), &cfg, 1).is_ok());
    }

    #[test]
    fn training_improves_over_chance() {
        let mut rng = StdRng::seed_from_u64(1);
        let spec = vgg::vgg_from_stages("v", &[(8, 1), (8, 1)], 4, 3, (8, 8));
        let mut net = ChainNet::from_spec(&spec, &mut rng).unwrap();
        let data = tiny_data();
        let cfg = TrainConfig {
            epochs: 8,
            ..TrainConfig::paper_scaled(8)
        };
        let history = train_victim(&mut net, data.train(), &cfg).unwrap();
        assert_eq!(history.len(), 8);
        let acc = evaluate(&mut net, data.test()).unwrap();
        assert!(acc > 0.4, "test accuracy {acc} not above chance (0.25)");
        // Loss went down.
        assert!(history.last().unwrap().train_loss < history[0].train_loss);
    }

    #[test]
    fn evaluate_handles_ragged_batches() {
        let mut rng = StdRng::seed_from_u64(2);
        let spec = vgg::vgg_from_stages("v", &[(4, 1)], 4, 3, (8, 8));
        let mut net = ChainNet::from_spec(&spec, &mut rng).unwrap();
        let data = tiny_data();
        // 24 test samples < chunk of 64 and 48 train > nothing; both work.
        let a = evaluate(&mut net, data.test()).unwrap();
        let b = evaluate(&mut net, data.train()).unwrap();
        assert!((0.0..=1.0).contains(&a));
        assert!((0.0..=1.0).contains(&b));
    }

    #[test]
    fn paper_scaled_has_paper_shape() {
        let cfg = TrainConfig::paper_scaled(9);
        assert_eq!(cfg.lr_step, 3);
        assert!((cfg.momentum - 0.9).abs() < 1e-7);
        assert!((cfg.weight_decay - 1e-4).abs() < 1e-9);
    }
}
