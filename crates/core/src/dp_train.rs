//! Data-parallel victim training with synchronized BatchNorm statistics.
//!
//! [`train_victim_dp`] reproduces [`crate::train::train_victim`]'s SGD loop
//! across `W` model replicas: every minibatch is split into `W` contiguous
//! shards, each replica runs forward/backward on its shard, and the two
//! places where shards couple are synchronized between lockstep phases:
//!
//! * **BatchNorm batch statistics** — per-shard `(mean, var, count)` are
//!   merged with the weighted parallel-variance formula
//!   ([`tbnet_nn::merge_batch_stats`]) and every replica normalizes (and
//!   updates its running statistics) with the *global* batch statistics,
//!   exactly like the sequential whole-batch step;
//! * **BatchNorm backward reductions** — per-shard `(Σ dy, Σ dy·x̂)` are
//!   summed left-to-right across shards and fed back into each shard's
//!   input-gradient computation over the global element count.
//!
//! Everything else in backward is linear in the loss gradient, so scaling
//! each shard's loss gradient by the *global* minibatch size
//! ([`tbnet_nn::loss::softmax_cross_entropy_scaled`]) makes the sum of
//! per-shard parameter gradients equal the sequential whole-batch gradient.
//! Gradients are merged with a fixed left-to-right fold over contiguous
//! shards, the merged gradient is broadcast to every replica, and each
//! replica takes the *same* SGD step — replicas therefore stay
//! numerically identical, replica 0 is canonical, and a `W`-worker step
//! matches the sequential step to f32 rounding (the parity suite pins
//! 1e-5).
//!
//! All lockstep phases and the final optimizer fan-out run on the
//! persistent worker pool in [`tbnet_tensor::par`] — the training hot path
//! spawns no threads.

use rand::rngs::StdRng;
use rand::SeedableRng;

use tbnet_data::{Batch, ImageDataset};
use tbnet_models::{accumulate_grad, ChainNet};
use tbnet_nn::loss::softmax_cross_entropy_scaled;
use tbnet_nn::merge_batch_stats;
use tbnet_nn::metrics::{accuracy, RunningMean};
use tbnet_nn::optim::{Sgd, StepLr};
use tbnet_nn::{Layer, Mode};
use tbnet_tensor::{ops, par, Tensor};

use crate::train::{EpochStats, TrainConfig};
use crate::{CoreError, Result};

/// Data-parallel SGD driver: `W` replicas of one [`ChainNet`] that stay
/// numerically identical across steps (see the module docs for the
/// synchronization contract). Most callers want [`train_victim_dp`]; the
/// trainer is public so benches and future transfer-training work can step
/// it batch by batch.
#[derive(Debug)]
pub struct DataParallelTrainer {
    replicas: Vec<ChainNet>,
}

/// Per-shard scratch state threaded through the lockstep phases of one
/// training step.
struct ShardCtx {
    batch: Batch,
    /// Conv output of the unit currently in flight (forward).
    conv_out: Option<Tensor>,
    /// Unit outputs, for skip connections (mirrors the sequential forward).
    outs: Vec<Tensor>,
    /// Pre-activation gradient of the unit currently in flight (backward).
    grad_pre: Option<Tensor>,
    /// Pending skip gradient of the unit currently in flight.
    grad_skip: Option<Tensor>,
    /// Per-unit output gradients (mirrors the sequential backward).
    gouts: Vec<Option<Tensor>>,
    loss: f32,
    acc: f32,
}

impl ShardCtx {
    fn new(batch: Batch, n_units: usize) -> Self {
        ShardCtx {
            batch,
            conv_out: None,
            outs: Vec::with_capacity(n_units),
            grad_pre: None,
            grad_skip: None,
            gouts: vec![None; n_units],
            loss: 0.0,
            acc: 0.0,
        }
    }
}

/// Copies the samples of `range` out of `batch` (contiguous rows, so shard
/// boundaries match the sequential sample order exactly).
fn shard_batch(batch: &Batch, range: &std::ops::Range<usize>) -> Batch {
    let dims = batch.images.dims();
    let sample = dims[1] * dims[2] * dims[3];
    let images = Tensor::from_vec(
        batch.images.as_slice()[range.start * sample..range.end * sample].to_vec(),
        &[range.len(), dims[1], dims[2], dims[3]],
    )
    .expect("shard slicing preserves the sample geometry");
    Batch {
        images,
        labels: batch.labels[range.clone()].to_vec(),
    }
}

/// Runs `f` on every (replica, shard) pair via the persistent pool,
/// propagating the first error in shard order.
fn phase<R, F>(replicas: &mut [ChainNet], ctxs: &mut [ShardCtx], f: F) -> Result<Vec<R>>
where
    R: Send,
    F: Fn(usize, &mut ChainNet, &mut ShardCtx) -> Result<R> + Sync,
{
    let items: Vec<(&mut ChainNet, &mut ShardCtx)> =
        replicas.iter_mut().zip(ctxs.iter_mut()).collect();
    par::run(items, |i, (net, ctx)| f(i, net, ctx))
        .into_iter()
        .collect()
}

/// Left-to-right fold of per-shard BatchNorm reductions into global sums
/// plus the global per-channel element count.
fn fold_bn_sums(parts: Vec<(Tensor, Tensor, usize)>) -> Result<(Tensor, Tensor, usize)> {
    let mut iter = parts.into_iter();
    let (mut sum_dy, mut sum_dy_xhat, mut total) = iter
        .next()
        .expect("dp_step always has at least one active shard");
    for (sd, sdx, count) in iter {
        ops::add_assign(&mut sum_dy, &sd)?;
        ops::add_assign(&mut sum_dy_xhat, &sdx)?;
        total += count;
    }
    Ok((sum_dy, sum_dy_xhat, total))
}

impl DataParallelTrainer {
    /// Clones `net` into `workers` replicas.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for zero workers.
    pub fn new(net: &ChainNet, workers: usize) -> Result<Self> {
        if workers == 0 {
            return Err(CoreError::InvalidConfig {
                field: "workers",
                reason: "data-parallel training needs at least one worker".into(),
            });
        }
        Ok(DataParallelTrainer {
            replicas: vec![net.clone(); workers],
        })
    }

    /// Number of replicas.
    pub fn workers(&self) -> usize {
        self.replicas.len()
    }

    /// The canonical model state (replica 0).
    pub fn into_net(mut self) -> ChainNet {
        self.replicas.swap_remove(0)
    }

    /// One data-parallel SGD step over `batch`, returning the batch's mean
    /// loss and accuracy (both match the sequential step's values to f32
    /// rounding).
    ///
    /// When the batch is smaller than the worker count, the surplus
    /// replicas skip the forward/backward but still receive the merged
    /// gradient and the identical optimizer step, so all replicas keep the
    /// same parameters and momentum buffers. (Their BatchNorm *running*
    /// statistics may lag — those never feed training math, and replica 0
    /// always owns a shard, so the canonical state stays sequential-exact.)
    ///
    /// # Errors
    ///
    /// Propagates shape/configuration errors from the shard phases.
    pub fn step(&mut self, batch: &Batch, sgd: &Sgd) -> Result<(f32, f32)> {
        let n_total = batch.len();
        if n_total == 0 {
            return Err(CoreError::InvalidConfig {
                field: "batch",
                reason: "cannot step on an empty batch".into(),
            });
        }
        let ranges = par::partition(n_total, self.replicas.len());
        let active = ranges.len();
        let n_units = self.replicas[0].units().len();
        let mut ctxs: Vec<ShardCtx> = ranges
            .iter()
            .map(|r| ShardCtx::new(shard_batch(batch, r), n_units))
            .collect();
        let (act, _idle) = self.replicas.split_at_mut(active);

        phase(act, &mut ctxs, |_, net, _| {
            net.zero_grad();
            Ok(())
        })?;

        // Forward, unit by unit, with a BN statistics barrier per unit.
        for u in 0..n_units {
            let stats = phase(act, &mut ctxs, |_, net, ctx| {
                let input = if u == 0 {
                    &ctx.batch.images
                } else {
                    &ctx.outs[u - 1]
                };
                let conv_out = net.units_mut()[u].forward_conv(input, Mode::Train)?;
                let (mean, var) = ops::channel_mean_var(&conv_out)?;
                let count = conv_out.dim(0) * conv_out.dim(2) * conv_out.dim(3);
                ctx.conv_out = Some(conv_out);
                Ok((mean, var, count))
            })?;
            let (mean, var) = merge_batch_stats(&stats)?;
            phase(act, &mut ctxs, |_, net, ctx| {
                let conv_out = ctx.conv_out.take().expect("set by the conv phase");
                let skip = net.units()[u].spec().skip_from.map(|j| ctx.outs[j].clone());
                let y = net.units_mut()[u].forward_from_conv(
                    &conv_out,
                    skip.as_ref(),
                    Mode::Train,
                    Some((&mean, &var)),
                )?;
                ctx.outs.push(y);
                Ok(())
            })?;
        }

        // Head forward, loss (scaled by the global batch size), head
        // backward.
        phase(act, &mut ctxs, |_, net, ctx| {
            let logits = net
                .head_mut()
                .forward(&ctx.outs[n_units - 1], Mode::Train)?;
            let out = softmax_cross_entropy_scaled(&logits, &ctx.batch.labels, n_total)?;
            ctx.acc = accuracy(&logits, &ctx.batch.labels)?;
            ctx.loss = out.loss;
            let g = net.head_mut().backward(&out.grad)?;
            ctx.gouts[n_units - 1] = Some(g);
            Ok(())
        })?;

        // Backward, unit by unit, with a BN reduction barrier per unit.
        for u in (0..n_units).rev() {
            let sums = phase(act, &mut ctxs, |_, net, ctx| {
                let g = ctx.gouts[u]
                    .take()
                    .expect("every unit output feeds the chain, so a gradient must exist");
                let halfway = net.units_mut()[u].backward_to_bn(&g)?;
                let count =
                    halfway.grad_pre.dim(0) * halfway.grad_pre.dim(2) * halfway.grad_pre.dim(3);
                ctx.grad_pre = Some(halfway.grad_pre);
                ctx.grad_skip = halfway.grad_skip;
                Ok((halfway.sum_dy, halfway.sum_dy_xhat, count))
            })?;
            let (sum_dy, sum_dy_xhat, total) = fold_bn_sums(sums)?;
            phase(act, &mut ctxs, |_, net, ctx| {
                let grad_pre = ctx.grad_pre.take().expect("set by the reduce phase");
                let grad_input =
                    net.units_mut()[u].backward_from_bn(&grad_pre, &sum_dy, &sum_dy_xhat, total)?;
                let kind = net.backend_kind();
                if let (Some(j), Some(gs)) = (net.units()[u].spec().skip_from, ctx.grad_skip.take())
                {
                    accumulate_grad(&mut ctx.gouts[j], gs, kind)?;
                }
                if u > 0 {
                    accumulate_grad(&mut ctx.gouts[u - 1], grad_input, kind)?;
                }
                Ok(())
            })?;
        }

        // Deterministic gradient merge: fixed left-to-right fold over the
        // contiguous shards.
        let mut merged: Vec<Tensor> = Vec::new();
        {
            let (first, rest) = self
                .replicas
                .split_first_mut()
                .expect("trainer holds at least one replica");
            first.visit_params(&mut |p| merged.push(p.grad.clone()));
            for net in rest[..active - 1].iter_mut() {
                let mut idx = 0;
                net.visit_params(&mut |p| {
                    ops::add_assign(&mut merged[idx], &p.grad)
                        .expect("replica gradients share shapes");
                    idx += 1;
                });
            }
        }

        // Broadcast the merged gradient and take the identical SGD step on
        // every replica (active or not) so all replicas stay in sync.
        let merged_ref = &merged;
        let items: Vec<&mut ChainNet> = self.replicas.iter_mut().collect();
        par::run(items, |_, net| {
            let mut idx = 0;
            net.visit_params(&mut |p| {
                p.grad
                    .as_mut_slice()
                    .copy_from_slice(merged_ref[idx].as_slice());
                idx += 1;
            });
            sgd.step(net);
        });

        let loss: f32 = ctxs.iter().map(|c| c.loss).sum();
        let mut acc = RunningMean::new();
        for c in &ctxs {
            acc.add(c.acc, c.batch.len());
        }
        Ok((loss, acc.mean()))
    }
}

/// Trains a [`ChainNet`] classifier in place with `workers`-way data
/// parallelism, returning per-epoch stats. Batch composition, shuffling and
/// the optimizer schedule are identical to
/// [`crate::train::train_victim`]; the result matches the sequential
/// trainer to f32 rounding (1e-5 in the parity suite) for any worker
/// count.
///
/// # Errors
///
/// Returns configuration or shape errors.
pub fn train_victim_dp(
    net: &mut ChainNet,
    data: &ImageDataset,
    cfg: &TrainConfig,
    workers: usize,
) -> Result<Vec<EpochStats>> {
    cfg.validate()?;
    let mut trainer = DataParallelTrainer::new(net, workers)?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut sgd = Sgd::new(cfg.lr, cfg.momentum, cfg.weight_decay)?;
    let sched = StepLr::new(cfg.lr, cfg.lr_gamma, cfg.lr_step)?;
    let mut history = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        sgd.set_lr(sched.lr_at(epoch));
        let mut loss_acc = RunningMean::new();
        let mut acc_acc = RunningMean::new();
        for batch in data.minibatches(cfg.batch_size, &mut rng) {
            let (loss, acc) = trainer.step(&batch, &sgd)?;
            loss_acc.add(loss, batch.len());
            acc_acc.add(acc, batch.len());
        }
        history.push(EpochStats {
            epoch,
            train_loss: loss_acc.mean(),
            train_acc: acc_acc.mean(),
        });
    }
    *net = trainer.into_net();
    Ok(history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::train_victim;
    use tbnet_data::{DatasetKind, SyntheticCifar};
    use tbnet_models::vgg;

    fn tiny_data() -> SyntheticCifar {
        SyntheticCifar::generate(
            DatasetKind::Cifar10Like
                .config()
                .with_classes(4)
                .with_train_per_class(8)
                .with_test_per_class(4)
                .with_size(8, 8)
                .with_noise_std(0.2),
        )
    }

    #[test]
    fn zero_workers_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let spec = vgg::vgg_from_stages("v", &[(4, 1)], 4, 3, (8, 8));
        let mut net = ChainNet::from_spec(&spec, &mut rng).unwrap();
        let data = tiny_data();
        let cfg = TrainConfig::paper_scaled(1);
        assert!(train_victim_dp(&mut net, data.train(), &cfg, 0).is_err());
    }

    #[test]
    fn more_workers_than_samples_still_trains() {
        let mut rng = StdRng::seed_from_u64(1);
        let spec = vgg::vgg_from_stages("v", &[(4, 1)], 4, 3, (8, 8));
        let mut seq = ChainNet::from_spec(&spec, &mut rng).unwrap();
        let mut dp = seq.clone();
        let data = tiny_data();
        let mut cfg = TrainConfig::paper_scaled(1);
        cfg.batch_size = 3; // smaller than the worker count below
        let hs = train_victim(&mut seq, data.train(), &cfg).unwrap();
        let hd = train_victim_dp(&mut dp, data.train(), &cfg, 5).unwrap();
        assert_eq!(hs.len(), hd.len());
        assert!((hs[0].train_loss - hd[0].train_loss).abs() < 1e-5);
    }

    #[test]
    fn trainer_accessors() {
        let mut rng = StdRng::seed_from_u64(2);
        let spec = vgg::vgg_from_stages("v", &[(4, 1)], 4, 3, (8, 8));
        let net = ChainNet::from_spec(&spec, &mut rng).unwrap();
        let trainer = DataParallelTrainer::new(&net, 3).unwrap();
        assert_eq!(trainer.workers(), 3);
        let back = trainer.into_net();
        assert_eq!(back.units().len(), net.units().len());
    }
}
