//! Model-generic data-parallel training with synchronized BatchNorm
//! statistics.
//!
//! [`DataParallelTrainer`] reproduces a sequential SGD loop across `W`
//! replicas of any [`DpTrainable`] model: every minibatch is split into `W`
//! contiguous shards, each replica runs forward/backward on its shard, and
//! the two places where shards couple are synchronized between lockstep
//! phases:
//!
//! * **BatchNorm batch statistics** — per-shard `(mean, var, count)` are
//!   merged with the weighted parallel-variance formula
//!   ([`tbnet_nn::merge_batch_stats`]) and every replica normalizes (and
//!   updates its running statistics) with the *global* batch statistics,
//!   exactly like the sequential whole-batch step;
//! * **BatchNorm backward reductions** — per-shard `(Σ dy, Σ dy·x̂)` are
//!   summed left-to-right across shards and fed back into each shard's
//!   input-gradient computation over the global element count.
//!
//! A model describes its BatchNorm coupling as an ordered list of **sync
//! points** (one per BN layer in execution order); the trainer drives the
//! same schedule for every model: `forward_sync → stats merge →
//! forward_resume` per point, the head/loss phase, then `backward_reduce →
//! reduction fold → backward_resume` per point in reverse.
//!
//! Everything else in backward is linear in the loss gradient, so scaling
//! each shard's loss gradient by the *global* minibatch size
//! ([`tbnet_nn::loss::softmax_cross_entropy_scaled`]) makes the sum of
//! per-shard parameter gradients equal the sequential whole-batch gradient.
//! Gradients are merged with a fixed left-to-right fold over contiguous
//! shards, the merged gradient is broadcast to every replica, each replica
//! applies any loss penalty subgradient (the transfer phase's L1 sparsity
//! term) to the *merged* gradient, and all replicas take the *same*
//! optimizer step — replicas therefore stay numerically identical, replica
//! 0 is canonical, and a `W`-worker step matches the sequential step to f32
//! rounding (the parity suites pin 1e-5).
//!
//! Four trainings ride this engine: victim training ([`train_victim_dp`]
//! here), knowledge transfer ([`crate::transfer::train_two_branch`]), the
//! pruning fine-tune loop
//! ([`crate::pruning::iterative_prune_with_workers`]) and the attacker's
//! fine-tuning attack ([`crate::attack::attack_with_workers`]) — transfer
//! and fine-tune via the [`crate::TwoBranchModel`] implementation of
//! [`DpTrainable`] in `two_branch.rs`, the other two via the [`ChainNet`]
//! implementation below.
//!
//! Worker counts are chosen per phase through a [`WorkerPolicy`]:
//! [`WorkerPolicy::Fixed`] pins an explicit count (what the parity suites
//! use), while [`WorkerPolicy::Auto`] autotunes from the live layer widths
//! plus a short, memoized step-timing probe — see the type's docs for the
//! exact contract.
//!
//! All lockstep phases and the final optimizer fan-out run on the
//! persistent worker pool in [`tbnet_tensor::par`] — the training hot path
//! spawns no threads.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use tbnet_data::{Batch, ImageDataset};
use tbnet_models::{accumulate_grad, ChainNet};
use tbnet_nn::loss::softmax_cross_entropy_scaled;
use tbnet_nn::merge_batch_stats;
use tbnet_nn::metrics::{accuracy, RunningMean};
use tbnet_nn::optim::{Sgd, StepLr};
use tbnet_nn::{Layer, Mode, Param};
use tbnet_tensor::{ops, par, BackendKind, Tensor};

use crate::train::{EpochStats, TrainConfig};
use crate::transfer::apply_branch_sparsity;
use crate::{CoreError, Result};

/// Per-shard state threaded through the lockstep phases of one
/// data-parallel step: the shard's slice of the minibatch, its loss and
/// accuracy contributions, and the model-specific activation/gradient
/// scratch.
#[derive(Debug)]
pub struct DpShard<S> {
    /// This shard's contiguous slice of the global minibatch.
    pub batch: Batch,
    /// Loss contribution of this shard, scaled so the per-shard values sum
    /// to the global-batch mean loss.
    pub loss: f32,
    /// Mean accuracy over this shard's samples.
    pub acc: f32,
    /// Model-specific per-shard scratch.
    pub scratch: S,
}

/// What one model replica must expose for the lockstep schedule of
/// [`DataParallelTrainer`]. Implementations exist for [`ChainNet`] (victim
/// training) and [`crate::TwoBranchModel`] (knowledge transfer and the
/// pruning fine-tune loop).
///
/// The contract (specified in full in `ARCHITECTURE.md` at the repo root):
///
/// * a `W = 1` trainer step must be arithmetically identical to one step of
///   the model's sequential training loop;
/// * for `W > 1` the only cross-shard coupling may be the BatchNorm
///   statistics/reductions the trainer synchronizes at the declared sync
///   points, visited in forward order `0..sync_points()` and revisited in
///   exact reverse order by the backward pass;
/// * [`visit_params`](DpTrainable::visit_params) must enumerate parameters
///   in one deterministic order — it defines the layout of the merged
///   gradient — and [`penalty`](DpTrainable::penalty) must be a pure
///   function of the current parameters and gradients, because the trainer
///   calls it once per replica on the *merged* gradient;
/// * [`optimizer_step`](DpTrainable::optimizer_step) must be a
///   deterministic function of parameters + gradients so every replica
///   stays bit-identical after the step.
///
/// # Examples
///
/// Any implementation can be driven batch by batch:
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use tbnet_core::dp_train::{DataParallelTrainer, DpTrainable};
/// use tbnet_models::{vgg, ChainNet};
///
/// let spec = vgg::vgg_from_stages("doc", &[(4, 1)], 2, 3, (8, 8));
/// let mut rng = StdRng::seed_from_u64(0);
/// let net = ChainNet::from_spec(&spec, &mut rng)?;
/// // One BN sync point per unit, and one live width per sync point.
/// assert_eq!(net.sync_points(), 1);
/// assert_eq!(net.sync_widths(), vec![4]);
/// let trainer = DataParallelTrainer::new(&net, 2)?;
/// assert_eq!(trainer.workers(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub trait DpTrainable: Clone + Send {
    /// Per-shard scratch (activations and pending gradients) carried across
    /// the lockstep phases of one step.
    type Scratch: Send;

    /// Fresh scratch for one shard, created at the start of every step.
    fn make_scratch(&self) -> Self::Scratch;

    /// Number of BatchNorm synchronization points in one forward pass; the
    /// backward pass revisits them in reverse order.
    fn sync_points(&self) -> usize;

    /// Live channel width at every sync point, in forward order (length
    /// must equal [`sync_points`](DpTrainable::sync_points)). The
    /// [`WorkerPolicy::Auto`] autotuner reads these to bound the useful
    /// worker count — per-step synchronization cost grows with the number
    /// of barriers and their channel widths, so narrow (late-pruning)
    /// models resolve to fewer workers.
    fn sync_widths(&self) -> Vec<usize>;

    /// Backend the trainer's gradient folds should run on (kept identical
    /// to the model's own accumulation arithmetic).
    fn backend_kind(&self) -> BackendKind;

    /// Clears all parameter gradients.
    fn zero_grad(&mut self);

    /// Local forward compute up to (and including) sync point `point`'s
    /// BatchNorm input; returns this shard's per-channel
    /// `(mean, var, element count)` for the statistics merge.
    fn forward_sync(
        &mut self,
        point: usize,
        shard: &mut DpShard<Self::Scratch>,
    ) -> Result<(Tensor, Tensor, usize)>;

    /// Resumes the forward pass at `point` with the globally merged batch
    /// statistics.
    fn forward_resume(
        &mut self,
        point: usize,
        shard: &mut DpShard<Self::Scratch>,
        mean: &Tensor,
        var: &Tensor,
    ) -> Result<()>;

    /// Head forward, loss scaled to `global_batch` samples, and head
    /// backward. Must fill `shard.loss` / `shard.acc` and seed the output
    /// gradients in the scratch.
    fn loss_phase(&mut self, shard: &mut DpShard<Self::Scratch>, global_batch: usize)
        -> Result<()>;

    /// Local backward compute down to sync point `point`'s BatchNorm;
    /// returns this shard's `(Σ dy, Σ dy·x̂, element count)` for the
    /// reduction fold.
    fn backward_reduce(
        &mut self,
        point: usize,
        shard: &mut DpShard<Self::Scratch>,
    ) -> Result<(Tensor, Tensor, usize)>;

    /// Resumes the backward pass at `point` with the globally summed
    /// reductions over `total` elements per channel.
    fn backward_resume(
        &mut self,
        point: usize,
        shard: &mut DpShard<Self::Scratch>,
        sum_dy: &Tensor,
        sum_dy_xhat: &Tensor,
        total: usize,
    ) -> Result<()>;

    /// Visits every trainable parameter in a deterministic order — the
    /// order the trainer folds and broadcasts gradients in.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Adds the model's loss-penalty subgradient (scaled by `lambda`) to
    /// the parameter gradients and returns the penalty value. Called once
    /// per replica *after* the merged-gradient broadcast, immediately
    /// before the optimizer step, so the penalty is applied exactly once to
    /// the global gradient — matching a sequential loop that penalizes
    /// after its whole-batch backward.
    fn penalty(&mut self, lambda: f32) -> f32;

    /// One optimizer step (must be identical on every replica).
    fn optimizer_step(&mut self, sgd: &Sgd);
}

/// Loss/accuracy/penalty of one data-parallel step, matching the values the
/// sequential loop would report for the same minibatch to f32 rounding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepStats {
    /// Mean loss over the global minibatch (penalty excluded).
    pub loss: f32,
    /// Mean accuracy over the global minibatch.
    pub acc: f32,
    /// Penalty value (λ·Σ|γ| for the transfer phase; 0 when `lambda` is 0).
    pub penalty: f32,
}

/// How a training phase chooses its data-parallel worker count.
///
/// Every training entry point (`train_victim_with_workers`,
/// `train_two_branch_with_workers`, `iterative_prune_with_workers`,
/// [`crate::attack::attack_with_workers`] and
/// [`crate::pipeline::run_pipeline`] via `PipelineConfig::workers`) accepts
/// `impl Into<WorkerPolicy>`, and a plain `usize` converts to
/// [`WorkerPolicy::Fixed`] — existing call sites that pass a count keep
/// their exact behavior.
///
/// # Resolution contract
///
/// [`WorkerPolicy::resolve`] turns a policy into a concrete worker count:
///
/// * `Fixed(w)` resolves to `w` unchanged (the parity suites rely on this
///   to pin exact shard layouts);
/// * `Auto` resolves per phase, in two stages:
///   1. a **width prefilter** derived from the model's live
///      [`sync_widths`](DpTrainable::sync_widths) and the minibatch size
///      caps the candidate set — each shard must own enough channel×sample
///      work to amortize its barrier crossings, so small late-pruning
///      models resolve to few (often one) workers without any timing;
///   2. when more than one candidate survives, a short **step-timing
///      probe** runs a few data-parallel steps per candidate on *cloned*
///      replicas (the caller's model state is never advanced) and commits
///      to the fastest, ties broken toward fewer workers.
///
/// The resolved count never exceeds [`par::max_threads`], and the probe
/// result is memoized per (model type, live widths, batch size, thread
/// cap), so repeated resolutions inside one process are deterministic and
/// the probe cost is amortized across epochs and pruning iterations. Under
/// `TBNET_THREADS=1` the candidate set collapses to `{1}` and `Auto` is
/// fully deterministic with zero probe overhead.
///
/// # Examples
///
/// ```
/// use tbnet_core::dp_train::WorkerPolicy;
///
/// // usize → Fixed, for drop-in compatibility at explicit call sites.
/// assert_eq!(WorkerPolicy::from(4), WorkerPolicy::Fixed(4));
/// assert_eq!(WorkerPolicy::default(), WorkerPolicy::Auto);
/// ```
///
/// Resolving against a live model:
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use tbnet_core::dp_train::WorkerPolicy;
/// use tbnet_data::{DatasetKind, SyntheticCifar};
/// use tbnet_models::{vgg, ChainNet};
/// use tbnet_nn::optim::Sgd;
/// use tbnet_tensor::par;
///
/// let data = SyntheticCifar::generate(
///     DatasetKind::Cifar10Like
///         .config()
///         .with_classes(2)
///         .with_train_per_class(4)
///         .with_test_per_class(2)
///         .with_size(8, 8),
/// );
/// let spec = vgg::vgg_from_stages("doc", &[(4, 1)], 2, 3, (8, 8));
/// let mut rng = StdRng::seed_from_u64(0);
/// let net = ChainNet::from_spec(&spec, &mut rng)?;
/// let sgd = Sgd::new(0.05, 0.9, 1e-4)?;
/// let w = WorkerPolicy::Auto.resolve(&net, data.train(), 8, &sgd, 0.0)?;
/// assert!(w >= 1 && w <= par::max_threads());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorkerPolicy {
    /// Exactly this many replicas, no tuning. `Fixed(0)` is rejected at
    /// trainer construction, like an explicit zero count always was.
    Fixed(usize),
    /// Autotune per phase from live layer widths plus a memoized
    /// step-timing probe, capped at [`par::max_threads`].
    #[default]
    Auto,
}

impl From<usize> for WorkerPolicy {
    fn from(workers: usize) -> Self {
        WorkerPolicy::Fixed(workers)
    }
}

// The serde shim derives only unit-variant enums, so the JSON mapping is
// hand-written: `Auto` ⇄ `"auto"`, `Fixed(w)` ⇄ `w`.
impl Serialize for WorkerPolicy {
    fn to_value(&self) -> serde::Value {
        match self {
            WorkerPolicy::Fixed(w) => serde::Value::Num(*w as f64),
            WorkerPolicy::Auto => serde::Value::Str("auto".to_string()),
        }
    }
}

impl<'de> Deserialize<'de> for WorkerPolicy {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        match v {
            // Absent field (older configs predate the policy): autotune.
            serde::Value::Null => Ok(WorkerPolicy::Auto),
            serde::Value::Num(n) => Ok(WorkerPolicy::Fixed(*n as usize)),
            serde::Value::Str(s) if s == "auto" => Ok(WorkerPolicy::Auto),
            other => Err(serde::DeError(format!(
                "expected a worker count or \"auto\", got {other:?}"
            ))),
        }
    }
}

impl WorkerPolicy {
    /// Resolves the policy into a concrete worker count for one training
    /// phase over `data` with minibatches of `batch_size` samples; see the
    /// type-level docs for the full contract. `sgd` and `lambda` are what
    /// the phase will train with — the probe steps use them so the timed
    /// work matches the real steps.
    ///
    /// # Errors
    ///
    /// Propagates shape/configuration errors from the probe steps.
    pub fn resolve<M: DpTrainable>(
        self,
        model: &M,
        data: &ImageDataset,
        batch_size: usize,
        sgd: &Sgd,
        lambda: f32,
    ) -> Result<usize> {
        match self {
            WorkerPolicy::Fixed(w) => Ok(w),
            WorkerPolicy::Auto => {
                autotune_workers(model, data, batch_size, sgd, lambda, par::max_threads())
            }
        }
    }
}

/// Channel×sample work one shard must own per step for another worker to
/// pay for its barrier crossings; calibrated against the training bench's
/// sync-overhead rows (`BENCH_train.json`, W > 1 at one thread).
const MIN_SHARD_CHANNEL_SAMPLES: usize = 128;

/// Timed data-parallel steps per probe candidate (after one warm-up step
/// that absorbs pool spin-up and arena growth).
const PROBE_STEPS: usize = 2;

/// Width prefilter of the autotuner: the largest worker count for which
/// every shard still owns at least [`MIN_SHARD_CHANNEL_SAMPLES`] of
/// channel×sample work per step, additionally capped by the batch size
/// (emptier shards than samples are pure overhead) and `cap`.
fn width_worker_cap(widths: &[usize], batch_size: usize, cap: usize) -> usize {
    let per_sample: usize = widths.iter().sum::<usize>().max(1);
    let total = per_sample.saturating_mul(batch_size.max(1));
    (total / MIN_SHARD_CHANNEL_SAMPLES).clamp(1, cap.max(1).min(batch_size.max(1)))
}

/// Candidate worker counts: powers of two up to `cap`, plus `cap` itself.
fn worker_candidates(cap: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut w = 1;
    while w <= cap {
        out.push(w);
        w *= 2;
    }
    if out.last() != Some(&cap) {
        out.push(cap);
    }
    out
}

fn autotune_cache() -> &'static Mutex<HashMap<String, usize>> {
    static CACHE: OnceLock<Mutex<HashMap<String, usize>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Drops every memoized [`WorkerPolicy::Auto`] probe result, forcing the
/// next resolution to re-probe. Benches use this between reports; ordinary
/// training never needs it.
pub fn clear_autotune_cache() {
    autotune_cache().lock().unwrap().clear();
}

/// [`WorkerPolicy::Auto`]'s resolver with an explicit thread `cap` (the
/// public path passes [`par::max_threads`]); split out so the cap logic is
/// testable without mutating the process-wide thread setting.
fn autotune_workers<M: DpTrainable>(
    model: &M,
    data: &ImageDataset,
    batch_size: usize,
    sgd: &Sgd,
    lambda: f32,
    cap: usize,
) -> Result<usize> {
    if data.is_empty() || batch_size == 0 || cap <= 1 {
        return Ok(1);
    }
    let widths = model.sync_widths();
    let probe_batch_len = batch_size.min(data.len());
    let candidates = worker_candidates(width_worker_cap(&widths, probe_batch_len, cap));
    if candidates.len() == 1 {
        return Ok(candidates[0]);
    }

    let key = format!(
        "{}|{:?}|b{}|c{}",
        std::any::type_name::<M>(),
        widths,
        probe_batch_len,
        cap
    );
    if let Some(&w) = autotune_cache().lock().unwrap().get(&key) {
        return Ok(w);
    }

    // Probe on a real leading minibatch so shard shapes match training.
    let indices: Vec<usize> = (0..probe_batch_len).collect();
    let batch = data.gather(&indices);
    let mut best = (candidates[0], f64::INFINITY);
    for &w in &candidates {
        let mut trainer = DataParallelTrainer::new(model, w)?;
        trainer.step_with_penalty(&batch, sgd, lambda)?; // warm-up
        let t0 = Instant::now();
        for _ in 0..PROBE_STEPS {
            trainer.step_with_penalty(&batch, sgd, lambda)?;
        }
        let secs = t0.elapsed().as_secs_f64();
        // Strict `<`: ties commit to the smaller worker count.
        if secs < best.1 {
            best = (w, secs);
        }
    }
    // First writer wins: concurrent first resolutions of the same key probe
    // under each other's load and can disagree, so every caller — the
    // losing prober included — returns whatever landed in the cache first,
    // keeping in-process resolutions deterministic.
    Ok(*autotune_cache()
        .lock()
        .unwrap()
        .entry(key)
        .or_insert(best.0))
}

/// Data-parallel SGD driver: `W` replicas of one [`DpTrainable`] model that
/// stay numerically identical across steps (see the module docs for the
/// synchronization contract). [`train_victim_dp`],
/// [`crate::transfer::train_two_branch_with_workers`],
/// [`crate::pruning::iterative_prune_with_workers`] and
/// [`crate::attack::attack_with_workers`] drive it; it is public so benches
/// and future phases can step it batch by batch.
///
/// # Examples
///
/// Stepping a [`ChainNet`] replica set directly:
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use tbnet_core::dp_train::DataParallelTrainer;
/// use tbnet_data::{DatasetKind, SyntheticCifar};
/// use tbnet_models::{vgg, ChainNet};
/// use tbnet_nn::optim::Sgd;
///
/// let data = SyntheticCifar::generate(
///     DatasetKind::Cifar10Like
///         .config()
///         .with_classes(2)
///         .with_train_per_class(4)
///         .with_test_per_class(2)
///         .with_size(8, 8),
/// );
/// let spec = vgg::vgg_from_stages("doc", &[(4, 1)], 2, 3, (8, 8));
/// let mut rng = StdRng::seed_from_u64(0);
/// let net = ChainNet::from_spec(&spec, &mut rng)?;
/// let sgd = Sgd::new(0.05, 0.9, 1e-4)?;
///
/// let mut trainer = DataParallelTrainer::new(&net, 2)?;
/// let stats = trainer.step(&data.train().as_batch(), &sgd)?;
/// assert!(stats.loss.is_finite());
/// let trained: ChainNet = trainer.into_model(); // replica 0 is canonical
/// # let _ = trained;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct DataParallelTrainer<M: DpTrainable> {
    replicas: Vec<M>,
}

/// Copies the samples of `range` out of `batch` (contiguous rows, so shard
/// boundaries match the sequential sample order exactly).
fn shard_batch(batch: &Batch, range: &std::ops::Range<usize>) -> Batch {
    let dims = batch.images.dims();
    let sample = dims[1] * dims[2] * dims[3];
    let images = Tensor::from_vec(
        batch.images.as_slice()[range.start * sample..range.end * sample].to_vec(),
        &[range.len(), dims[1], dims[2], dims[3]],
    )
    .expect("shard slicing preserves the sample geometry");
    Batch {
        images,
        labels: batch.labels[range.clone()].to_vec(),
    }
}

/// Runs `f` on every (replica, shard) pair via the persistent pool,
/// propagating the first error in shard order.
fn phase<M, R, F>(replicas: &mut [M], shards: &mut [DpShard<M::Scratch>], f: F) -> Result<Vec<R>>
where
    M: DpTrainable,
    R: Send,
    F: Fn(usize, &mut M, &mut DpShard<M::Scratch>) -> Result<R> + Sync,
{
    let items: Vec<(&mut M, &mut DpShard<M::Scratch>)> =
        replicas.iter_mut().zip(shards.iter_mut()).collect();
    par::run(items, |i, (model, shard)| f(i, model, shard))
        .into_iter()
        .collect()
}

/// Left-to-right fold of per-shard BatchNorm reductions into global sums
/// plus the global per-channel element count.
fn fold_bn_sums(parts: Vec<(Tensor, Tensor, usize)>) -> Result<(Tensor, Tensor, usize)> {
    let mut iter = parts.into_iter();
    let (mut sum_dy, mut sum_dy_xhat, mut total) = iter
        .next()
        .expect("dp_step always has at least one active shard");
    for (sd, sdx, count) in iter {
        ops::add_assign(&mut sum_dy, &sd)?;
        ops::add_assign(&mut sum_dy_xhat, &sdx)?;
        total += count;
    }
    Ok((sum_dy, sum_dy_xhat, total))
}

impl<M: DpTrainable> DataParallelTrainer<M> {
    /// Clones `model` into `workers` replicas.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for zero workers.
    pub fn new(model: &M, workers: usize) -> Result<Self> {
        if workers == 0 {
            return Err(CoreError::InvalidConfig {
                field: "workers",
                reason: "data-parallel training needs at least one worker".into(),
            });
        }
        Ok(DataParallelTrainer {
            replicas: vec![model.clone(); workers],
        })
    }

    /// Number of replicas.
    pub fn workers(&self) -> usize {
        self.replicas.len()
    }

    /// The canonical model state (replica 0).
    pub fn into_model(mut self) -> M {
        self.replicas.swap_remove(0)
    }

    /// One data-parallel SGD step over `batch` without a loss penalty.
    ///
    /// # Errors
    ///
    /// See [`DataParallelTrainer::step_with_penalty`].
    pub fn step(&mut self, batch: &Batch, sgd: &Sgd) -> Result<StepStats> {
        self.step_with_penalty(batch, sgd, 0.0)
    }

    /// One data-parallel SGD step over `batch`, applying the model's loss
    /// penalty (e.g. the transfer phase's L1 sparsity term) at weight
    /// `lambda`. The returned statistics match the sequential step's values
    /// to f32 rounding.
    ///
    /// When the batch is smaller than the worker count, the surplus
    /// replicas skip the forward/backward but still receive the merged
    /// gradient, the penalty and the identical optimizer step, so all
    /// replicas keep the same parameters and momentum buffers. (Their
    /// BatchNorm *running* statistics may lag — those never feed training
    /// math, and replica 0 always owns a shard, so the canonical state
    /// stays sequential-exact.)
    ///
    /// # Invariants
    ///
    /// * The penalty subgradient is applied to the **merged** gradient,
    ///   once per step per replica, after the broadcast — matching a
    ///   sequential loop that penalizes after its whole-batch backward.
    /// * Shard gradients fold left-to-right over contiguous shards, so the
    ///   result is deterministic for a fixed worker count regardless of
    ///   pool scheduling.
    ///
    /// # Examples
    ///
    /// ```
    /// # use rand::rngs::StdRng;
    /// # use rand::SeedableRng;
    /// # use tbnet_core::dp_train::DataParallelTrainer;
    /// # use tbnet_data::{DatasetKind, SyntheticCifar};
    /// # use tbnet_models::{vgg, ChainNet};
    /// # use tbnet_nn::optim::Sgd;
    /// # let data = SyntheticCifar::generate(
    /// #     DatasetKind::Cifar10Like.config().with_classes(2)
    /// #         .with_train_per_class(4).with_test_per_class(2).with_size(8, 8),
    /// # );
    /// # let spec = vgg::vgg_from_stages("doc", &[(4, 1)], 2, 3, (8, 8));
    /// # let mut rng = StdRng::seed_from_u64(0);
    /// # let net = ChainNet::from_spec(&spec, &mut rng)?;
    /// # let sgd = Sgd::new(0.05, 0.9, 1e-4)?;
    /// let mut trainer = DataParallelTrainer::new(&net, 2)?;
    /// // λ = 0 ⇒ the reported penalty is exactly zero.
    /// let stats = trainer.step_with_penalty(&data.train().as_batch(), &sgd, 0.0)?;
    /// assert_eq!(stats.penalty, 0.0);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates shape/configuration errors from the shard phases.
    pub fn step_with_penalty(
        &mut self,
        batch: &Batch,
        sgd: &Sgd,
        lambda: f32,
    ) -> Result<StepStats> {
        let n_total = batch.len();
        if n_total == 0 {
            return Err(CoreError::InvalidConfig {
                field: "batch",
                reason: "cannot step on an empty batch".into(),
            });
        }
        let ranges = par::partition(n_total, self.replicas.len());
        let active = ranges.len();
        let mut shards: Vec<DpShard<M::Scratch>> = ranges
            .iter()
            .map(|r| DpShard {
                batch: shard_batch(batch, r),
                loss: 0.0,
                acc: 0.0,
                scratch: self.replicas[0].make_scratch(),
            })
            .collect();
        let (act, _idle) = self.replicas.split_at_mut(active);

        phase(act, &mut shards, |_, model, _| {
            model.zero_grad();
            Ok(())
        })?;

        // Forward, with a BN statistics barrier per sync point.
        let points = act[0].sync_points();
        for p in 0..points {
            let stats = phase(act, &mut shards, |_, model, shard| {
                model.forward_sync(p, shard)
            })?;
            let (mean, var) = merge_batch_stats(&stats)?;
            phase(act, &mut shards, |_, model, shard| {
                model.forward_resume(p, shard, &mean, &var)
            })?;
        }

        // Head forward, loss (scaled by the global batch size), head
        // backward.
        phase(act, &mut shards, |_, model, shard| {
            model.loss_phase(shard, n_total)
        })?;

        // Backward, with a BN reduction barrier per sync point.
        for p in (0..points).rev() {
            let sums = phase(act, &mut shards, |_, model, shard| {
                model.backward_reduce(p, shard)
            })?;
            let (sum_dy, sum_dy_xhat, total) = fold_bn_sums(sums)?;
            phase(act, &mut shards, |_, model, shard| {
                model.backward_resume(p, shard, &sum_dy, &sum_dy_xhat, total)
            })?;
        }

        // Deterministic gradient merge: fixed left-to-right fold over the
        // contiguous shards.
        let mut merged: Vec<Tensor> = Vec::new();
        {
            let (first, rest) = self
                .replicas
                .split_first_mut()
                .expect("trainer holds at least one replica");
            first.visit_params(&mut |p| merged.push(p.grad.clone()));
            for model in rest[..active - 1].iter_mut() {
                let mut idx = 0;
                model.visit_params(&mut |p| {
                    ops::add_assign(&mut merged[idx], &p.grad)
                        .expect("replica gradients share shapes");
                    idx += 1;
                });
            }
        }

        // Broadcast the merged gradient, apply the penalty subgradient to
        // it, and take the identical optimizer step on every replica
        // (active or not) so all replicas stay in sync.
        let merged_ref = &merged;
        let items: Vec<&mut M> = self.replicas.iter_mut().collect();
        let penalties = par::run(items, |_, model| {
            let mut idx = 0;
            model.visit_params(&mut |p| {
                p.grad
                    .as_mut_slice()
                    .copy_from_slice(merged_ref[idx].as_slice());
                idx += 1;
            });
            let penalty = if lambda != 0.0 {
                model.penalty(lambda)
            } else {
                0.0
            };
            model.optimizer_step(sgd);
            penalty
        });

        let loss: f32 = shards.iter().map(|s| s.loss).sum();
        let mut acc = RunningMean::new();
        for s in &shards {
            acc.add(s.acc, s.batch.len());
        }
        Ok(StepStats {
            loss,
            acc: acc.mean(),
            penalty: penalties[0],
        })
    }
}

/// [`ChainNet`]'s per-shard scratch: the activation chain of the split
/// forward and the pending per-unit gradients of the split backward
/// (mirrors the sequential passes exactly).
#[derive(Debug, Default)]
pub struct ChainScratch {
    /// Conv output of the unit currently in flight (forward).
    conv_out: Option<Tensor>,
    /// Unit outputs, for skip connections.
    outs: Vec<Tensor>,
    /// Pre-activation gradient of the unit currently in flight (backward).
    grad_pre: Option<Tensor>,
    /// Pending skip gradient of the unit currently in flight.
    grad_skip: Option<Tensor>,
    /// Per-unit output gradients.
    gouts: Vec<Option<Tensor>>,
}

impl DpTrainable for ChainNet {
    type Scratch = ChainScratch;

    fn make_scratch(&self) -> ChainScratch {
        let n = self.units().len();
        ChainScratch {
            conv_out: None,
            outs: Vec::with_capacity(n),
            grad_pre: None,
            grad_skip: None,
            gouts: vec![None; n],
        }
    }

    fn sync_points(&self) -> usize {
        self.units().len()
    }

    fn sync_widths(&self) -> Vec<usize> {
        self.units().iter().map(|u| u.out_channels()).collect()
    }

    fn backend_kind(&self) -> BackendKind {
        ChainNet::backend_kind(self)
    }

    fn zero_grad(&mut self) {
        Layer::zero_grad(self);
    }

    fn forward_sync(
        &mut self,
        u: usize,
        shard: &mut DpShard<ChainScratch>,
    ) -> Result<(Tensor, Tensor, usize)> {
        let DpShard { batch, scratch, .. } = shard;
        let input = if u == 0 {
            &batch.images
        } else {
            &scratch.outs[u - 1]
        };
        let conv_out = self.units_mut()[u].forward_conv(input, Mode::Train)?;
        let (mean, var) = ops::channel_mean_var(&conv_out)?;
        let count = conv_out.dim(0) * conv_out.dim(2) * conv_out.dim(3);
        scratch.conv_out = Some(conv_out);
        Ok((mean, var, count))
    }

    fn forward_resume(
        &mut self,
        u: usize,
        shard: &mut DpShard<ChainScratch>,
        mean: &Tensor,
        var: &Tensor,
    ) -> Result<()> {
        let scratch = &mut shard.scratch;
        let conv_out = scratch.conv_out.take().expect("set by the conv phase");
        let skip = self.units()[u]
            .spec()
            .skip_from
            .map(|j| scratch.outs[j].clone());
        let y = self.units_mut()[u].forward_from_conv(
            &conv_out,
            skip.as_ref(),
            Mode::Train,
            Some((mean, var)),
        )?;
        scratch.outs.push(y);
        Ok(())
    }

    fn loss_phase(&mut self, shard: &mut DpShard<ChainScratch>, global_batch: usize) -> Result<()> {
        let n = self.units().len();
        let logits = self
            .head_mut()
            .forward(&shard.scratch.outs[n - 1], Mode::Train)?;
        let out = softmax_cross_entropy_scaled(&logits, &shard.batch.labels, global_batch)?;
        shard.acc = accuracy(&logits, &shard.batch.labels)?;
        shard.loss = out.loss;
        let g = self.head_mut().backward(&out.grad)?;
        shard.scratch.gouts[n - 1] = Some(g);
        Ok(())
    }

    fn backward_reduce(
        &mut self,
        u: usize,
        shard: &mut DpShard<ChainScratch>,
    ) -> Result<(Tensor, Tensor, usize)> {
        let scratch = &mut shard.scratch;
        let g = scratch.gouts[u]
            .take()
            .expect("every unit output feeds the chain, so a gradient must exist");
        let halfway = self.units_mut()[u].backward_to_bn(&g)?;
        let count = halfway.grad_pre.dim(0) * halfway.grad_pre.dim(2) * halfway.grad_pre.dim(3);
        scratch.grad_pre = Some(halfway.grad_pre);
        scratch.grad_skip = halfway.grad_skip;
        Ok((halfway.sum_dy, halfway.sum_dy_xhat, count))
    }

    fn backward_resume(
        &mut self,
        u: usize,
        shard: &mut DpShard<ChainScratch>,
        sum_dy: &Tensor,
        sum_dy_xhat: &Tensor,
        total: usize,
    ) -> Result<()> {
        let scratch = &mut shard.scratch;
        let grad_pre = scratch.grad_pre.take().expect("set by the reduce phase");
        let grad_input =
            self.units_mut()[u].backward_from_bn(&grad_pre, sum_dy, sum_dy_xhat, total)?;
        let kind = ChainNet::backend_kind(self);
        if let (Some(j), Some(gs)) = (self.units()[u].spec().skip_from, scratch.grad_skip.take()) {
            accumulate_grad(&mut scratch.gouts[j], gs, kind)?;
        }
        if u > 0 {
            accumulate_grad(&mut scratch.gouts[u - 1], grad_input, kind)?;
        }
        Ok(())
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        Layer::visit_params(self, f);
    }

    fn penalty(&mut self, lambda: f32) -> f32 {
        apply_branch_sparsity(self, lambda)
    }

    fn optimizer_step(&mut self, sgd: &Sgd) {
        sgd.step(self);
    }
}

/// Trains a [`ChainNet`] classifier in place with `workers`-way data
/// parallelism, returning per-epoch stats. Batch composition, shuffling and
/// the optimizer schedule are identical to
/// [`crate::train::train_victim`]; the result matches the sequential
/// trainer to f32 rounding (1e-5 in the parity suite) for any worker
/// count.
///
/// # Errors
///
/// Returns configuration or shape errors.
pub fn train_victim_dp(
    net: &mut ChainNet,
    data: &ImageDataset,
    cfg: &TrainConfig,
    workers: usize,
) -> Result<Vec<EpochStats>> {
    cfg.validate()?;
    let mut trainer = DataParallelTrainer::new(net, workers)?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut sgd = Sgd::new(cfg.lr, cfg.momentum, cfg.weight_decay)?;
    let sched = StepLr::new(cfg.lr, cfg.lr_gamma, cfg.lr_step)?;
    let mut history = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        sgd.set_lr(sched.lr_at(epoch));
        let mut loss_acc = RunningMean::new();
        let mut acc_acc = RunningMean::new();
        for batch in data.minibatches(cfg.batch_size, &mut rng) {
            let stats = trainer.step(&batch, &sgd)?;
            loss_acc.add(stats.loss, batch.len());
            acc_acc.add(stats.acc, batch.len());
        }
        history.push(EpochStats {
            epoch,
            train_loss: loss_acc.mean(),
            train_acc: acc_acc.mean(),
        });
    }
    *net = trainer.into_model();
    Ok(history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::train_victim;
    use tbnet_data::{DatasetKind, SyntheticCifar};
    use tbnet_models::vgg;

    fn tiny_data() -> SyntheticCifar {
        SyntheticCifar::generate(
            DatasetKind::Cifar10Like
                .config()
                .with_classes(4)
                .with_train_per_class(8)
                .with_test_per_class(4)
                .with_size(8, 8)
                .with_noise_std(0.2),
        )
    }

    #[test]
    fn zero_workers_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let spec = vgg::vgg_from_stages("v", &[(4, 1)], 4, 3, (8, 8));
        let mut net = ChainNet::from_spec(&spec, &mut rng).unwrap();
        let data = tiny_data();
        let cfg = TrainConfig::paper_scaled(1);
        assert!(train_victim_dp(&mut net, data.train(), &cfg, 0).is_err());
    }

    #[test]
    fn more_workers_than_samples_still_trains() {
        let mut rng = StdRng::seed_from_u64(1);
        let spec = vgg::vgg_from_stages("v", &[(4, 1)], 4, 3, (8, 8));
        let mut seq = ChainNet::from_spec(&spec, &mut rng).unwrap();
        let mut dp = seq.clone();
        let data = tiny_data();
        let mut cfg = TrainConfig::paper_scaled(1);
        cfg.batch_size = 3; // smaller than the worker count below
        let hs = train_victim(&mut seq, data.train(), &cfg).unwrap();
        let hd = train_victim_dp(&mut dp, data.train(), &cfg, 5).unwrap();
        assert_eq!(hs.len(), hd.len());
        assert!((hs[0].train_loss - hd[0].train_loss).abs() < 1e-5);
    }

    #[test]
    fn trainer_accessors() {
        let mut rng = StdRng::seed_from_u64(2);
        let spec = vgg::vgg_from_stages("v", &[(4, 1)], 4, 3, (8, 8));
        let net = ChainNet::from_spec(&spec, &mut rng).unwrap();
        let trainer = DataParallelTrainer::new(&net, 3).unwrap();
        assert_eq!(trainer.workers(), 3);
        let back = trainer.into_model();
        assert_eq!(back.units().len(), net.units().len());
    }

    #[test]
    fn width_cap_bounds_and_candidates() {
        // Narrow model + small batch: sync-dominated, capped to one worker.
        assert_eq!(width_worker_cap(&[4, 4], 8, 8), 1);
        // Wide model: capped only by the explicit cap / batch size.
        assert_eq!(width_worker_cap(&[256, 256], 32, 8), 8);
        assert_eq!(width_worker_cap(&[256, 256], 4, 8), 4);
        // Degenerate inputs stay sane.
        assert_eq!(width_worker_cap(&[], 0, 0), 1);
        assert_eq!(worker_candidates(1), vec![1]);
        assert_eq!(worker_candidates(4), vec![1, 2, 4]);
        assert_eq!(worker_candidates(6), vec![1, 2, 4, 6]);
    }

    #[test]
    fn autotune_respects_explicit_cap_and_memoizes() {
        let mut rng = StdRng::seed_from_u64(5);
        // Wide enough that the width prefilter leaves several candidates.
        let spec = vgg::vgg_from_stages("v", &[(16, 1), (16, 1)], 4, 3, (8, 8));
        let net = ChainNet::from_spec(&spec, &mut rng).unwrap();
        let data = tiny_data();
        let sgd = Sgd::new(0.05, 0.9, 1e-4).unwrap();
        for cap in [1usize, 2, 3] {
            let w = autotune_workers(&net, data.train(), 16, &sgd, 0.0, cap).unwrap();
            assert!(w >= 1 && w <= cap, "cap {cap} resolved to {w}");
            // Memoized: the second resolution must repeat the first even
            // though step timings are noisy.
            let again = autotune_workers(&net, data.train(), 16, &sgd, 0.0, cap).unwrap();
            assert_eq!(w, again);
        }
        clear_autotune_cache();
    }

    #[test]
    fn empty_data_or_single_thread_resolve_to_one_worker() {
        let mut rng = StdRng::seed_from_u64(6);
        let spec = vgg::vgg_from_stages("v", &[(16, 1)], 4, 3, (8, 8));
        let net = ChainNet::from_spec(&spec, &mut rng).unwrap();
        let data = tiny_data();
        let sgd = Sgd::new(0.05, 0.9, 1e-4).unwrap();
        assert_eq!(
            autotune_workers(&net, data.train(), 16, &sgd, 0.0, 1).unwrap(),
            1
        );
        assert_eq!(
            autotune_workers(&net, data.train(), 0, &sgd, 0.0, 4).unwrap(),
            1
        );
        assert_eq!(
            WorkerPolicy::from(3)
                .resolve(&net, data.train(), 16, &sgd, 0.0)
                .unwrap(),
            3
        );
    }

    #[test]
    fn zero_lambda_step_reports_zero_penalty() {
        let mut rng = StdRng::seed_from_u64(3);
        let spec = vgg::vgg_from_stages("v", &[(4, 1)], 4, 3, (8, 8));
        let net = ChainNet::from_spec(&spec, &mut rng).unwrap();
        let data = tiny_data();
        let sgd = Sgd::new(0.05, 0.9, 1e-4).unwrap();
        let mut trainer = DataParallelTrainer::new(&net, 2).unwrap();
        let batch = data.train().as_batch();
        let stats = trainer.step(&batch, &sgd).unwrap();
        assert_eq!(stats.penalty, 0.0);
        assert!(stats.loss.is_finite());
    }
}
