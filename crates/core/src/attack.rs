//! The attacker suite of the paper's evaluation.
//!
//! Threat model (paper §2.2): the attacker reads *everything* in REE memory —
//! `M_R`'s architecture, weights and the victim-inherited classifier — but
//! the TEE contents are a black box. Three attacks are evaluated:
//!
//! * [`direct_use_attack`] — transplant `M_R` and use it as-is (Table 1's
//!   "Attack Acc.");
//! * [`fine_tune_attack`] — retrain the stolen `M_R` with a fraction of the
//!   training data (Fig. 2);
//! * [`retrain_secure_branch_alone`] — the defender-side ablation of §5.1 /
//!   Table 2: how good can `M_T` get without `M_R`?
//!
//! The attacker's fine-tune is a plain [`ChainNet`] classifier training, so
//! it rides the same unified data-parallel engine
//! ([`crate::dp_train::DataParallelTrainer`]) as the defender's three
//! pipeline phases: [`attack_with_workers`] is the engine-routed training
//! loop (worker count chosen by a [`WorkerPolicy`], default autotuned), and
//! [`attack_seq`] keeps the sequential loop as the arithmetic reference the
//! parity suite (`tests/attack_parity.rs`) pins the engine against —
//! W ∈ {1, 2, 4} loss curves, final weights and BatchNorm running
//! statistics agree within 1e-5, W = 1 bit-identically.
//!
//! [`ChainNet`]: tbnet_models::ChainNet

use serde::{Deserialize, Serialize};

use tbnet_data::ImageDataset;
use tbnet_models::ChainNet;
use tbnet_nn::optim::Sgd;

use crate::dp_train::{train_victim_dp, WorkerPolicy};
use crate::train::{evaluate, train_victim, EpochStats, TrainConfig};
use crate::{Result, TwoBranchModel};

/// Outcome of a fine-tuning attack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FineTuneOutcome {
    /// Fraction of the training data the attacker had.
    pub data_fraction: f64,
    /// Number of training samples that fraction amounted to.
    pub samples_used: usize,
    /// Test accuracy of the fine-tuned stolen model.
    pub accuracy: f32,
    /// Data-parallel worker count the fine-tune resolved to (1 when the
    /// attacker had no data to train on).
    pub workers: usize,
}

/// The attacker's fine-tune loop, routed through the unified data-parallel
/// engine: shards every minibatch across the resolved number of `stolen`
/// replicas with synchronized BatchNorm statistics and a deterministic
/// left-to-right gradient merge. A plain `usize` converts to
/// [`WorkerPolicy::Fixed`]; [`WorkerPolicy::Auto`] autotunes from the
/// stolen branch's live widths plus a memoized step-timing probe.
///
/// Unlike [`crate::train::train_victim_with_workers`], a resolved count of
/// one still runs *through the engine* (a single whole-batch shard), which
/// is bit-identical to [`attack_seq`] — the parity suite measures this —
/// so every attack run exercises the exact code path that scales.
///
/// # Examples
///
/// ```no_run
/// use tbnet_core::attack::attack_with_workers;
/// use tbnet_core::dp_train::WorkerPolicy;
/// use tbnet_core::train::TrainConfig;
/// # fn demo(
/// #     model: &tbnet_core::TwoBranchModel,
/// #     data: &tbnet_data::ImageDataset,
/// # ) -> tbnet_core::Result<()> {
/// let mut stolen = model.extract_unsecured_branch();
/// let history = attack_with_workers(
///     &mut stolen,
///     data,
///     &TrainConfig::paper_scaled(4),
///     WorkerPolicy::Auto,
/// )?;
/// assert!(!history.is_empty());
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns configuration or shape errors.
pub fn attack_with_workers(
    stolen: &mut ChainNet,
    data: &ImageDataset,
    cfg: &TrainConfig,
    workers: impl Into<WorkerPolicy>,
) -> Result<Vec<EpochStats>> {
    let sgd = Sgd::new(cfg.lr, cfg.momentum, cfg.weight_decay)?;
    let workers = workers
        .into()
        .resolve(stolen, data, cfg.batch_size, &sgd, 0.0)?;
    train_victim_dp(stolen, data, cfg, workers)
}

/// The plain sequential attacker fine-tune loop — the arithmetic reference
/// the parity suite (`tests/attack_parity.rs`) pins
/// [`attack_with_workers`] against. Prefer the engine-routed entry point
/// everywhere else.
///
/// # Errors
///
/// Returns configuration or shape errors.
pub fn attack_seq(
    stolen: &mut ChainNet,
    data: &ImageDataset,
    cfg: &TrainConfig,
) -> Result<Vec<EpochStats>> {
    train_victim(stolen, data, cfg)
}

/// Table 1's "Attack Acc.": the attacker extracts `M_R` from REE memory and
/// uses it directly, with its victim-inherited classifier head.
///
/// For residual victims this branch lacks the skip connections, and after
/// knowledge transfer its weights serve the *merged* computation — both
/// effects degrade standalone accuracy, which is exactly the defense.
///
/// # Errors
///
/// Returns shape errors when the dataset disagrees with the model geometry.
pub fn direct_use_attack(model: &TwoBranchModel, test: &ImageDataset) -> Result<f32> {
    let mut stolen = model.extract_unsecured_branch();
    evaluate(&mut stolen, test)
}

/// Fig. 2's attacker: extract `M_R`, then fine-tune all of it (classifier
/// included) on `data_fraction` of the training set. Routes through the
/// unified data-parallel engine with an autotuned worker count — exactly
/// [`fine_tune_attack_with_workers`] at [`WorkerPolicy::Auto`].
///
/// # Errors
///
/// Returns configuration or shape errors.
pub fn fine_tune_attack(
    model: &TwoBranchModel,
    train: &ImageDataset,
    test: &ImageDataset,
    data_fraction: f64,
    cfg: &TrainConfig,
) -> Result<FineTuneOutcome> {
    fine_tune_attack_with_workers(model, train, test, data_fraction, cfg, WorkerPolicy::Auto)
}

/// [`fine_tune_attack`] under an explicit [`WorkerPolicy`]: the stolen
/// branch trains through [`attack_with_workers`], and the resolved worker
/// count is recorded in [`FineTuneOutcome::workers`].
///
/// # Errors
///
/// Returns configuration or shape errors.
pub fn fine_tune_attack_with_workers(
    model: &TwoBranchModel,
    train: &ImageDataset,
    test: &ImageDataset,
    data_fraction: f64,
    cfg: &TrainConfig,
    workers: impl Into<WorkerPolicy>,
) -> Result<FineTuneOutcome> {
    let mut stolen = model.extract_unsecured_branch();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(cfg.seed ^ 0x5eed_a77a);
    let subset = train.stratified_fraction(data_fraction, &mut rng);
    let samples_used = subset.len();
    let mut resolved = 1;
    if !subset.is_empty() {
        let sgd = Sgd::new(cfg.lr, cfg.momentum, cfg.weight_decay)?;
        resolved = workers
            .into()
            .resolve(&stolen, &subset, cfg.batch_size, &sgd, 0.0)?;
        attack_with_workers(&mut stolen, &subset, cfg, resolved)?;
    }
    let accuracy = evaluate(&mut stolen, test)?;
    Ok(FineTuneOutcome {
        data_fraction,
        samples_used,
        accuracy,
        workers: resolved,
    })
}

/// The sequential-reference variant of [`fine_tune_attack`] (stolen branch
/// trained with [`attack_seq`]); exists so end-to-end attack outcomes can
/// be pinned against the engine-routed path.
///
/// # Errors
///
/// Returns configuration or shape errors.
pub fn fine_tune_attack_seq(
    model: &TwoBranchModel,
    train: &ImageDataset,
    test: &ImageDataset,
    data_fraction: f64,
    cfg: &TrainConfig,
) -> Result<FineTuneOutcome> {
    let mut stolen = model.extract_unsecured_branch();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(cfg.seed ^ 0x5eed_a77a);
    let subset = train.stratified_fraction(data_fraction, &mut rng);
    let samples_used = subset.len();
    if !subset.is_empty() {
        attack_seq(&mut stolen, &subset, cfg)?;
    }
    let accuracy = evaluate(&mut stolen, test)?;
    Ok(FineTuneOutcome {
        data_fraction,
        samples_used,
        accuracy,
        workers: 1,
    })
}

/// §5.1 / Table 2: strip `M_R` entirely and retrain the remaining `M_T` as a
/// standalone network on the full training set — the best possible
/// `M_T`-only model. The paper finds it a few points *below* TBNet, showing
/// the unsecured branch genuinely contributes. Like the fine-tune attack,
/// the retraining rides the data-parallel engine at an autotuned worker
/// count.
///
/// # Errors
///
/// Returns configuration or shape errors.
pub fn retrain_secure_branch_alone(
    model: &TwoBranchModel,
    train: &ImageDataset,
    test: &ImageDataset,
    cfg: &TrainConfig,
) -> Result<f32> {
    let mut alone = model.mt().clone();
    attack_with_workers(&mut alone, train, cfg, WorkerPolicy::Auto)?;
    evaluate(&mut alone, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tbnet_data::{DatasetKind, SyntheticCifar};
    use tbnet_models::vgg;
    use tbnet_models::ChainNet as Net;

    use crate::transfer::{evaluate_two_branch, train_two_branch, TransferConfig};

    fn setup() -> (TwoBranchModel, SyntheticCifar) {
        let mut rng = StdRng::seed_from_u64(0);
        let data = SyntheticCifar::generate(
            DatasetKind::Cifar10Like
                .config()
                .with_classes(4)
                .with_train_per_class(16)
                .with_test_per_class(8)
                .with_size(8, 8)
                .with_noise_std(0.25),
        );
        let spec = vgg::vgg_from_stages("v", &[(8, 1), (8, 1)], 4, 3, (8, 8));
        let victim = Net::from_spec(&spec, &mut rng).unwrap();
        let mut tb = TwoBranchModel::from_victim(&victim, &mut rng).unwrap();
        train_two_branch(&mut tb, data.train(), &TransferConfig::paper_scaled(6)).unwrap();
        (tb, data)
    }

    #[test]
    fn direct_use_is_worse_than_tbnet() {
        let (mut tb, data) = setup();
        let tbnet_acc = evaluate_two_branch(&mut tb, data.test()).unwrap();
        let attack_acc = direct_use_attack(&tb, data.test()).unwrap();
        assert!(
            attack_acc < tbnet_acc,
            "direct use ({attack_acc}) should be below TBNet ({tbnet_acc})"
        );
    }

    #[test]
    fn fine_tune_improves_with_more_data() {
        let (tb, data) = setup();
        let cfg = TrainConfig {
            epochs: 4,
            ..TrainConfig::paper_scaled(4)
        };
        let small = fine_tune_attack(&tb, data.train(), data.test(), 0.1, &cfg).unwrap();
        let large = fine_tune_attack(&tb, data.train(), data.test(), 1.0, &cfg).unwrap();
        assert!(small.samples_used < large.samples_used);
        assert_eq!(large.samples_used, data.train().len());
        // More data should not hurt (tolerate small-sample noise).
        assert!(large.accuracy + 0.15 >= small.accuracy);
    }

    #[test]
    fn zero_fraction_means_direct_use() {
        let (tb, data) = setup();
        let cfg = TrainConfig::paper_scaled(2);
        let out = fine_tune_attack(&tb, data.train(), data.test(), 0.0, &cfg).unwrap();
        assert_eq!(out.samples_used, 0);
        let direct = direct_use_attack(&tb, data.test()).unwrap();
        assert!((out.accuracy - direct).abs() < 1e-6);
    }

    #[test]
    fn attack_does_not_mutate_deployed_model() {
        let (tb, data) = setup();
        let before = tb.mr().units()[0].conv().weight().value.clone();
        let cfg = TrainConfig::paper_scaled(2);
        fine_tune_attack(&tb, data.train(), data.test(), 0.5, &cfg).unwrap();
        assert_eq!(
            tb.mr().units()[0].conv().weight().value.as_slice(),
            before.as_slice()
        );
    }

    #[test]
    fn mt_alone_retrains_to_sensible_accuracy() {
        let (tb, data) = setup();
        let cfg = TrainConfig {
            epochs: 6,
            ..TrainConfig::paper_scaled(6)
        };
        let acc = retrain_secure_branch_alone(&tb, data.train(), data.test(), &cfg).unwrap();
        assert!((0.0..=1.0).contains(&acc));
        assert!(acc > 0.3, "retrained M_T should beat chance, got {acc}");
    }
}
