//! TBNet: a neural-architectural defense framework for protecting DNN models
//! with Trusted Execution Environments — Rust reproduction of the DAC 2024
//! paper.
//!
//! TBNet rewrites a well-trained *victim* model into a **two-branch
//! substitution model**:
//!
//! * the **unsecured branch `M_R`** runs in the rich world (REE) and is fully
//!   attacker-visible;
//! * the **secure branch `M_T`** runs inside the TEE and produces the final
//!   prediction;
//! * after every unit, `M_R`'s feature map crosses a one-way REE→TEE channel
//!   and is element-wise added into `M_T`'s feature map.
//!
//! The pipeline (paper Fig. 1) is implemented end to end:
//!
//! 1. [`TwoBranchModel::from_victim`] — two-branch initialization (step ①);
//! 2. [`transfer::train_two_branch`] — knowledge transfer minimizing Eq. 1
//!    (cross-entropy + λ·L1 on BatchNorm scales) (step ②);
//! 3. [`pruning`] — iterative two-branch pruning driven by composite BN
//!    weights, with fine-tuning and an accuracy-drop budget (steps ③–⑤,
//!    Alg. 1);
//! 4. [`TwoBranchModel::finalize_with_rollback`] — rollback finalization that
//!    makes `M_R`'s architecture diverge from `M_T`'s (step ⑥);
//! 5. [`attack`] — the evaluation's attacker suite: direct transplantation of
//!    `M_R`, fine-tuning with partial data, and the `M_T`-only ablation;
//! 6. [`deploy`] — deployment planning against the simulated TEE substrate
//!    (latency and secure-memory reports, plus a *functional* split
//!    inference over the type-enforced one-way channel);
//! 7. [`serve`] — the fault-tolerant concurrent serving runtime around that
//!    split: deadlines, dynamic batching, backpressure, nemesis-driven TEE
//!    fault injection and graceful int8 degradation;
//! 8. [`planner`] — capacity planning on top of it all: a deployment
//!    auto-optimizer searching (pruning × rollback × batch) against an SLO,
//!    and a fleet planner packing tenant models into secure worlds with
//!    capacity curves validated against live serving runs.
//!
//! [`pipeline::run_pipeline`] chains all six steps and is what the benchmark
//! harness calls to regenerate every table and figure of the paper.
//!
//! Every training phase — victim training, knowledge transfer and the
//! pruning fine-tune — runs through the model-generic data-parallel engine
//! in [`dp_train`]: [`dp_train::DpTrainable`] is implemented by both
//! [`tbnet_models::ChainNet`] and [`TwoBranchModel`], and
//! [`dp_train::DataParallelTrainer`] reproduces the sequential loops to
//! f32 rounding at any worker count (pinned at 1e-5 by the parity suites).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channels;
mod error;
mod two_branch;

pub mod analysis;
pub mod attack;
pub mod baselines;
pub mod deploy;
pub mod dp_train;
pub mod parallel;
pub mod persist;
pub mod pipeline;
pub mod planner;
pub mod pruning;
pub mod serve;
pub mod train;
pub mod transfer;

pub use channels::{gather_channels, scatter_add_channels, ChannelBook};
pub use dp_train::{DataParallelTrainer, DpTrainable, WorkerPolicy};
pub use error::CoreError;
pub use two_branch::{TwoBranchModel, TwoBranchScratch};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
