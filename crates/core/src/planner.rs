//! Capacity planning: inverting the cost model into deployment decisions.
//!
//! The paper prices one fixed TBNet deployment (Table 3, Fig. 3). This
//! module runs the pricing machinery *backwards*, answering the two
//! questions an operator actually asks:
//!
//! * **Which deployment should I build?** [`optimize_deployment`] searches
//!   the (pruning iterations × rollback point × batch size) space for the
//!   cheapest candidate meeting a latency/secure-memory/capacity SLO. Each
//!   candidate is priced analytically — [`DeploymentPlan::from_specs`] +
//!   the event-driven simulator — so the search spends no training time;
//!   only the winner needs to go through
//!   [`run_pipeline`](crate::pipeline::run_pipeline) (see
//!   [`PipelineConfig::for_plan`](crate::pipeline::PipelineConfig::for_plan)).
//! * **How many enclaves does my traffic mix need?** [`plan_fleet`] packs
//!   tenant models into simulated [`SecureWorld`]s under both a memory and
//!   a compute constraint, [`capacity_curve`] sweeps the secure-memory
//!   budget to produce max-sustained-QPS-per-MB curves, and
//!   [`FleetSchedule::round_robin`] emits the batched cross-tenant schedule
//!   whose world-switch amortization those numbers assume.
//!
//! The cost model the planner prices against is fitted to the target host
//! by a short live run: [`ServeReport::calibrated_cost_model`] turns
//! measured stage times into a [`CostModel`], and [`validate_against_live`]
//! closes the loop by checking a live run's throughput against the
//! calibrated prediction bracket. `docs/CAPACITY.md` is the operator-facing
//! walkthrough of this workflow.
//!
//! # The objective
//!
//! Candidates are ranked by **secure-world occupancy per request** —
//! [`LatencyReport::secure_occupancy_s`] divided by the batch size. Unlike
//! end-to-end latency (most of which the REE hides via pipelining), TEE
//! compute, merges and world switches serialize across every request that
//! shares a secure world, so occupancy is exactly the denominator of
//! sustained fleet capacity. Ties break on secure bytes, then latency.
//!
//! # The accuracy proxy
//!
//! Pruning iterations trade accuracy for TEE cheapness, and the rollback
//! point buys accuracy back by widening `M_R` at zero secure-memory cost
//! (paper step ⑥). A training-free search needs a stand-in for fine-tuned
//! accuracy, so the SLO carries a **capacity-retention floor**: the merged
//! model's total channel count relative to the victim's
//! ([`capacity_retention`]). The floor is what makes the rollback dimension
//! real — under a tight floor the optimizer must keep `M_R` wide while it
//! prunes `M_T` hard.

use serde::{Deserialize, Serialize};

use tbnet_models::ModelSpec;
use tbnet_tee::{
    simulate_two_branch, simulate_two_branch_batched, CostModel, Deployment, LatencyReport,
    MeasuredStages, MemoryReport, SecureWorld,
};

use crate::deploy::DeploymentPlan;
use crate::pruning::PruneConfig;
use crate::serve::ServeReport;
use crate::{CoreError, Result};

/// Exhaustive batch-assignment search is used while the choice product
/// stays under this bound; larger fleets fall back to the greedy ascent.
const EXHAUSTIVE_ASSIGNMENT_LIMIT: usize = 1 << 14;

/// A service-level objective for one deployed model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Slo {
    /// Human-readable label, carried into reports.
    pub name: String,
    /// Upper bound on the latency of one (batched) inference, seconds. A
    /// request admitted into a batch waits for the whole batch, so the
    /// bound is checked against the batch's end-to-end time.
    pub max_latency_s: f64,
    /// Upper bound on the deployment's secure-memory footprint, bytes.
    pub secure_memory_bytes: usize,
    /// Lower bound on [`capacity_retention`] — the training-free accuracy
    /// proxy. `0.0` disables the floor.
    pub min_capacity_retention: f64,
}

impl Slo {
    /// Builds an SLO.
    pub fn new(
        name: &str,
        max_latency_s: f64,
        secure_memory_bytes: usize,
        min_capacity_retention: f64,
    ) -> Self {
        Slo {
            name: name.to_string(),
            max_latency_s,
            secure_memory_bytes,
            min_capacity_retention,
        }
    }
}

/// The (pruning × rollback × batch) space [`optimize_deployment`] explores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchSpace {
    /// Fraction of channels removed per pruning iteration (paper: 0.10).
    pub ratio: f32,
    /// Minimum channels every pruning group keeps.
    pub min_channels: usize,
    /// Largest pruning-iteration count considered for `M_T`.
    pub max_prune_iters: usize,
    /// Batch sizes considered.
    pub batches: Vec<usize>,
}

impl SearchSpace {
    /// Derives the search space from the pruning configuration that would
    /// realize it, so the planner explores exactly what
    /// [`run_pipeline`](crate::pipeline::run_pipeline) can build.
    pub fn from_prune_config(cfg: &PruneConfig, batches: Vec<usize>) -> Self {
        SearchSpace {
            ratio: cfg.ratio,
            min_channels: cfg.min_channels,
            max_prune_iters: cfg.max_iterations,
            batches,
        }
    }

    fn validate(&self) -> Result<()> {
        if !(0.0..1.0).contains(&self.ratio) {
            return Err(CoreError::InvalidConfig {
                field: "ratio",
                reason: format!("must be in [0, 1), got {}", self.ratio),
            });
        }
        if self.min_channels == 0 {
            return Err(CoreError::InvalidConfig {
                field: "min_channels",
                reason: "must be at least 1".into(),
            });
        }
        if self.batches.is_empty() || self.batches.contains(&0) {
            return Err(CoreError::InvalidConfig {
                field: "batches",
                reason: "need at least one non-zero batch size".into(),
            });
        }
        Ok(())
    }
}

/// One priced point of the search space.
#[derive(Debug, Clone)]
pub struct CandidatePlan {
    /// Pruning iterations applied to the secure branch `M_T`.
    pub prune_iters: usize,
    /// Pruning iterations applied to the unsecured branch `M_R`
    /// (`rollback ≤ prune_iters`; smaller = wider `M_R` = more accuracy
    /// headroom at zero secure-memory cost).
    pub rollback: usize,
    /// Samples per REE→TEE crossing.
    pub batch: usize,
    /// Per-iteration pruning ratio the architectures assume.
    pub ratio: f32,
    /// The candidate `M_T` architecture.
    pub mt_spec: ModelSpec,
    /// The candidate `M_R` architecture.
    pub mr_spec: ModelSpec,
    /// Simulated schedule of one whole batch.
    pub latency: LatencyReport,
    /// Secure-memory footprint at this batch size.
    pub memory: MemoryReport,
    /// Capacity-retention proxy of the candidate (see [`capacity_retention`]).
    pub capacity_retention: f64,
}

impl CandidatePlan {
    /// Seconds the secure world is busy per *request* — the planner's
    /// objective and the fleet capacity denominator.
    pub fn occupancy_per_request_s(&self) -> f64 {
        self.latency.secure_occupancy_s() / self.batch as f64
    }

    /// Sustained single-world throughput bound implied by the occupancy.
    pub fn max_qps(&self) -> f64 {
        1.0 / self.occupancy_per_request_s()
    }

    /// End-to-end latency of one batch (what an admitted request can wait).
    pub fn latency_s(&self) -> f64 {
        self.latency.total_s
    }

    /// Secure-memory footprint in bytes.
    pub fn secure_bytes(&self) -> usize {
        self.memory.total()
    }
}

/// The analytic pruning schedule: every pruning group's width decays
/// geometrically, `w_k = max(min_channels, round(w_0 · (1-ratio)^k))`,
/// clamped to the victim's width. Widths are decided per *group* (from the
/// group's first unit) and applied to every unit in the group, mirroring
/// the shared keep-masks of [`crate::pruning`] — which is what keeps
/// residual skip additions shape-consistent in the pruned spec.
///
/// # Errors
///
/// Propagates spec validation errors from the victim.
pub fn pruned_spec(
    victim: &ModelSpec,
    ratio: f32,
    min_channels: usize,
    iters: usize,
) -> Result<ModelSpec> {
    victim.trace().map_err(CoreError::Model)?;
    let keep = (1.0 - ratio as f64).powi(iters as i32);
    let mut spec = victim.clone();
    let mut group_width: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for u in &mut spec.units {
        let target = *group_width.entry(u.group).or_insert_with(|| {
            let scaled = (u.out_channels as f64 * keep).round() as usize;
            scaled.max(min_channels).min(u.out_channels)
        });
        u.out_channels = target;
    }
    spec.name = format!("{}-k{iters}", victim.name);
    Ok(spec)
}

/// Training-free accuracy proxy: the merged model's channel capacity
/// relative to the victim's, `(ΣC(M_T) + ΣC(M_R)) / (2·ΣC(victim))`. Both
/// branches feed every merged feature map, so joint width is what the
/// composite-weight pruning of [`crate::pruning`] preserves; the rollback
/// point buys this back on the `M_R` side without touching secure memory.
pub fn capacity_retention(victim: &ModelSpec, mt: &ModelSpec, mr: &ModelSpec) -> f64 {
    let total = |s: &ModelSpec| s.units.iter().map(|u| u.out_channels).sum::<usize>() as f64;
    let denom = 2.0 * total(victim);
    if denom > 0.0 {
        (total(mt) + total(mr)) / denom
    } else {
        0.0
    }
}

/// Searches the (pruning × rollback × batch) space for the feasible
/// candidate with the lowest secure-world occupancy per request. Ties
/// break on secure bytes, then batch latency.
///
/// Feasibility requires all three SLO clauses: batch latency within
/// `max_latency_s`, batched footprint within `secure_memory_bytes`, and
/// [`capacity_retention`] at or above `min_capacity_retention`.
///
/// # Errors
///
/// [`CoreError::NoFeasiblePlan`] when the space contains no candidate
/// meeting the SLO (the reason names the tightest misses), plus config,
/// spec and cost-model validation errors.
///
/// # Examples
///
/// ```
/// use tbnet_core::planner::{optimize_deployment, SearchSpace, Slo};
/// use tbnet_models::vgg;
/// use tbnet_tee::CostModel;
///
/// let victim = vgg::vgg_tiny(10, 3, (16, 16));
/// let space = SearchSpace {
///     ratio: 0.2,
///     min_channels: 2,
///     max_prune_iters: 2,
///     batches: vec![1, 4],
/// };
/// let slo = Slo::new("generous", 1.0, 64 << 20, 0.0);
/// let plan = optimize_deployment(&victim, &space, &slo, &CostModel::raspberry_pi3()).unwrap();
/// assert!(plan.latency_s() <= slo.max_latency_s);
/// assert!(plan.secure_bytes() <= slo.secure_memory_bytes);
/// ```
pub fn optimize_deployment(
    victim: &ModelSpec,
    space: &SearchSpace,
    slo: &Slo,
    cost: &CostModel,
) -> Result<CandidatePlan> {
    space.validate()?;
    cost.validate().map_err(CoreError::Tee)?;
    let mut best: Option<CandidatePlan> = None;
    let mut explored = 0usize;
    let (mut best_latency, mut best_bytes, mut best_retention) = (f64::INFINITY, usize::MAX, 0.0);

    for prune_iters in 0..=space.max_prune_iters {
        let mt = pruned_spec(victim, space.ratio, space.min_channels, prune_iters)?;
        for rollback in 0..=prune_iters {
            let mr = pruned_spec(victim, space.ratio, space.min_channels, rollback)?;
            let retention = capacity_retention(victim, &mt, &mr);
            // Congruence check once per architecture pair.
            let deploy = DeploymentPlan::from_specs(victim.clone(), mt.clone(), mr.clone())?;
            for &batch in &space.batches {
                explored += 1;
                let latency =
                    simulate_two_branch_batched(&deploy.mt_spec, &deploy.mr_spec, cost, batch)?;
                let memory = MemoryReport::for_secure_branch_batched(&deploy.mt_spec, batch)?;
                best_latency = best_latency.min(latency.total_s);
                best_bytes = best_bytes.min(memory.total());
                best_retention = f64::max(best_retention, retention);
                if latency.total_s > slo.max_latency_s
                    || memory.total() > slo.secure_memory_bytes
                    || retention < slo.min_capacity_retention
                {
                    continue;
                }
                let candidate = CandidatePlan {
                    prune_iters,
                    rollback,
                    batch,
                    ratio: space.ratio,
                    mt_spec: deploy.mt_spec.clone(),
                    mr_spec: deploy.mr_spec.clone(),
                    latency,
                    memory,
                    capacity_retention: retention,
                };
                let better = match &best {
                    None => true,
                    Some(b) => {
                        let (co, cb, cl) = (
                            candidate.occupancy_per_request_s(),
                            candidate.secure_bytes(),
                            candidate.latency_s(),
                        );
                        let (bo, bb, bl) =
                            (b.occupancy_per_request_s(), b.secure_bytes(), b.latency_s());
                        co < bo || (co == bo && (cb < bb || (cb == bb && cl < bl)))
                    }
                };
                if better {
                    best = Some(candidate);
                }
            }
        }
    }

    best.ok_or_else(|| CoreError::NoFeasiblePlan {
        explored,
        reason: format!(
            "tightest candidates reached latency {:.3e}s (SLO {:.3e}s), \
             {} secure bytes (SLO {}), retention {:.3} (floor {:.3})",
            best_latency,
            slo.max_latency_s,
            best_bytes,
            slo.secure_memory_bytes,
            best_retention,
            slo.min_capacity_retention
        ),
    })
}

// ---------------------------------------------------------------------------
// Fleet packing.
// ---------------------------------------------------------------------------

/// One tenant model plus its offered load, as the fleet packer sees it.
#[derive(Debug, Clone)]
pub struct TenantDemand {
    /// Tenant label, carried into reports.
    pub name: String,
    /// The tenant's secure branch.
    pub mt_spec: ModelSpec,
    /// The tenant's unsecured branch.
    pub mr_spec: ModelSpec,
    /// Samples per REE→TEE crossing for this tenant.
    pub batch: usize,
    /// Offered load in requests per second.
    pub qps: f64,
}

impl TenantDemand {
    /// Builds a demand from an optimizer-chosen plan.
    pub fn from_plan(name: &str, plan: &CandidatePlan, qps: f64) -> Self {
        TenantDemand {
            name: name.to_string(),
            mt_spec: plan.mt_spec.clone(),
            mr_spec: plan.mr_spec.clone(),
            batch: plan.batch,
            qps,
        }
    }
}

/// One secure world's share of a [`FleetPlan`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldPlan {
    /// Indices into the input tenant slice.
    pub tenants: Vec<usize>,
    /// Secure bytes the world's tenants occupy.
    pub used_bytes: usize,
    /// The world's byte budget.
    pub budget_bytes: usize,
    /// Σ qps·occupancy of the world's tenants — the fraction of the secure
    /// world's time the offered load keeps busy (must stay ≤ 1).
    pub compute_utilization: f64,
}

/// Result of [`plan_fleet`]: tenant models packed into secure worlds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetPlan {
    /// Per-world assignments, in packing order.
    pub worlds: Vec<WorldPlan>,
}

impl FleetPlan {
    /// Number of secure worlds (enclaves) the mix needs.
    pub fn world_count(&self) -> usize {
        self.worlds.len()
    }
}

/// Packs tenants into as few [`SecureWorld`]s as first-fit-decreasing
/// achieves, honoring both constraints a real enclave imposes: the byte
/// budget (checked by *actually loading* each tenant's batched secure
/// branch into the world) and secure-time capacity (Σ qps·occupancy ≤ 1).
///
/// # Errors
///
/// [`CoreError::NoFeasiblePlan`] when a single tenant alone exceeds a
/// world's byte budget or compute capacity (such a tenant must be sharded,
/// which this planner does not do), plus spec/cost validation errors.
pub fn plan_fleet(
    tenants: &[TenantDemand],
    cost: &CostModel,
    world_budget_bytes: usize,
) -> Result<FleetPlan> {
    cost.validate().map_err(CoreError::Tee)?;
    // Price every tenant once.
    let mut priced: Vec<(usize, usize, f64)> = Vec::with_capacity(tenants.len()); // (idx, bytes, util)
    for (i, t) in tenants.iter().enumerate() {
        let report = simulate_two_branch_batched(&t.mt_spec, &t.mr_spec, cost, t.batch)?;
        let occ_per_req = report.secure_occupancy_s() / t.batch.max(1) as f64;
        let bytes = MemoryReport::for_secure_branch_batched(&t.mt_spec, t.batch)?.total();
        let util = t.qps * occ_per_req;
        if bytes > world_budget_bytes || util > 1.0 {
            return Err(CoreError::NoFeasiblePlan {
                explored: i + 1,
                reason: format!(
                    "tenant `{}` needs {} bytes (budget {}) at utilization {:.3}; \
                     it must be sharded across worlds, which plan_fleet does not do",
                    t.name, bytes, world_budget_bytes, util
                ),
            });
        }
        priced.push((i, bytes, util));
    }
    // First-fit-decreasing by footprint.
    priced.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut worlds: Vec<(SecureWorld, WorldPlan)> = Vec::new();
    for (idx, _, util) in priced {
        let t = &tenants[idx];
        let deployment = Deployment::SecureBranchBatched(t.batch);
        let placed = worlds.iter_mut().find_map(|(world, plan)| {
            if plan.compute_utilization + util > 1.0 {
                return None;
            }
            match world.load_model(&t.mt_spec, deployment) {
                Ok(_) => Some(plan),
                Err(_) => None, // does not fit this world's remaining bytes
            }
        });
        match placed {
            Some(plan) => {
                plan.tenants.push(idx);
                plan.compute_utilization += util;
            }
            None => {
                let mut world = SecureWorld::new(world_budget_bytes);
                world.load_model(&t.mt_spec, deployment)?;
                worlds.push((
                    world,
                    WorldPlan {
                        tenants: vec![idx],
                        used_bytes: 0,
                        budget_bytes: world_budget_bytes,
                        compute_utilization: util,
                    },
                ));
            }
        }
    }
    let worlds = worlds
        .into_iter()
        .map(|(world, mut plan)| {
            plan.used_bytes = world.used();
            plan
        })
        .collect();
    Ok(FleetPlan { worlds })
}

// ---------------------------------------------------------------------------
// Capacity curves.
// ---------------------------------------------------------------------------

/// One tenant's share of a traffic mix, for [`capacity_curve`].
#[derive(Debug, Clone)]
pub struct TenantMix {
    /// Tenant label.
    pub name: String,
    /// The tenant's secure branch.
    pub mt_spec: ModelSpec,
    /// The tenant's unsecured branch.
    pub mr_spec: ModelSpec,
    /// Fraction of total traffic this tenant receives (normalized by the
    /// curve builder).
    pub fraction: f64,
}

/// One point of a capacity curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CapacityPoint {
    /// Secure-memory budget of this point, bytes.
    pub budget_bytes: usize,
    /// Max sustained aggregate QPS at this budget (0.0 when infeasible).
    pub qps: f64,
    /// Per-tenant batch sizes achieving it (input order).
    pub batches: Vec<usize>,
    /// Whether any batch assignment fit the budget.
    pub feasible: bool,
}

/// Max sustained QPS as a function of the secure-memory budget.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CapacityCurve {
    /// Points in ascending budget order.
    pub points: Vec<CapacityPoint>,
}

impl CapacityCurve {
    /// Largest sustained QPS on the curve.
    pub fn max_qps(&self) -> f64 {
        self.points.iter().fold(0.0, |m, p| f64::max(m, p.qps))
    }

    /// The curve's knee: the smallest budget reaching ≥ 95 % of the curve
    /// maximum — the point past which more secure memory stops paying.
    /// `None` when no point is feasible.
    pub fn knee(&self) -> Option<&CapacityPoint> {
        let target = 0.95 * self.max_qps();
        if target <= 0.0 {
            return None;
        }
        self.points.iter().find(|p| p.feasible && p.qps >= target)
    }
}

/// Sweeps secure-memory budgets for the best batch assignment per budget:
/// maximize aggregate `QPS = 1 / Σ fraction·occupancy_per_request(batch)`
/// subject to `Σ footprint(batch) ≤ budget`. Larger batches amortize world
/// switches but cost linearly more secure memory, so each budget picks its
/// own trade-off — the curve is the pareto front the operator reads.
///
/// While the assignment product `batch_choices^tenants` stays under 2^14
/// the search is exhaustive (which makes the curve provably monotone in
/// the budget: a larger budget's feasible set contains the smaller's);
/// beyond that a greedy batch-upgrade ascent is used.
///
/// # Errors
///
/// Config validation errors for an empty mix, empty budget/batch lists or
/// non-positive fractions, plus spec/cost validation errors.
pub fn capacity_curve(
    mix: &[TenantMix],
    cost: &CostModel,
    budgets: &[usize],
    batch_choices: &[usize],
) -> Result<CapacityCurve> {
    cost.validate().map_err(CoreError::Tee)?;
    if mix.is_empty() || budgets.is_empty() || batch_choices.is_empty() {
        return Err(CoreError::InvalidConfig {
            field: "capacity_curve",
            reason: "need at least one tenant, one budget and one batch choice".into(),
        });
    }
    if batch_choices.contains(&0) {
        return Err(CoreError::InvalidConfig {
            field: "batch_choices",
            reason: "batch sizes must be non-zero".into(),
        });
    }
    let total_fraction: f64 = mix.iter().map(|t| t.fraction).sum();
    let fractions_valid =
        total_fraction.is_finite() && total_fraction > 0.0 && mix.iter().all(|t| t.fraction >= 0.0);
    if !fractions_valid {
        return Err(CoreError::InvalidConfig {
            field: "fraction",
            reason: "tenant fractions must be non-negative and sum above zero".into(),
        });
    }

    // Price every (tenant, batch) pair once: (occupancy per request, bytes).
    let mut table: Vec<Vec<(f64, usize)>> = Vec::with_capacity(mix.len());
    for t in mix {
        let mut row = Vec::with_capacity(batch_choices.len());
        for &b in batch_choices {
            let report = simulate_two_branch_batched(&t.mt_spec, &t.mr_spec, cost, b)?;
            let occ = report.secure_occupancy_s() / b as f64;
            let bytes = MemoryReport::for_secure_branch_batched(&t.mt_spec, b)?.total();
            row.push((occ, bytes));
        }
        table.push(row);
    }
    let fractions: Vec<f64> = mix.iter().map(|t| t.fraction / total_fraction).collect();

    let combos = batch_choices
        .len()
        .checked_pow(mix.len() as u32)
        .unwrap_or(usize::MAX);
    let mut budgets = budgets.to_vec();
    budgets.sort_unstable();
    let points = budgets
        .into_iter()
        .map(|budget| {
            let assignment = if combos <= EXHAUSTIVE_ASSIGNMENT_LIMIT {
                best_assignment_exhaustive(&table, &fractions, budget)
            } else {
                best_assignment_greedy(&table, &fractions, budget)
            };
            match assignment {
                Some((choice, qps)) => CapacityPoint {
                    budget_bytes: budget,
                    qps,
                    batches: choice.iter().map(|&c| batch_choices[c]).collect(),
                    feasible: true,
                },
                None => CapacityPoint {
                    budget_bytes: budget,
                    qps: 0.0,
                    batches: Vec::new(),
                    feasible: false,
                },
            }
        })
        .collect();
    Ok(CapacityCurve { points })
}

fn assignment_qps(table: &[Vec<(f64, usize)>], fractions: &[f64], choice: &[usize]) -> f64 {
    let weighted_occ: f64 = choice
        .iter()
        .enumerate()
        .map(|(t, &c)| fractions[t] * table[t][c].0)
        .sum();
    if weighted_occ > 0.0 {
        1.0 / weighted_occ
    } else {
        0.0
    }
}

fn assignment_bytes(table: &[Vec<(f64, usize)>], choice: &[usize]) -> usize {
    choice.iter().enumerate().map(|(t, &c)| table[t][c].1).sum()
}

fn best_assignment_exhaustive(
    table: &[Vec<(f64, usize)>],
    fractions: &[f64],
    budget: usize,
) -> Option<(Vec<usize>, f64)> {
    let choices = table[0].len();
    let mut choice = vec![0usize; table.len()];
    let mut best: Option<(Vec<usize>, f64)> = None;
    loop {
        if assignment_bytes(table, &choice) <= budget {
            let qps = assignment_qps(table, fractions, &choice);
            if best.as_ref().is_none_or(|(_, b)| qps > *b) {
                best = Some((choice.clone(), qps));
            }
        }
        // Odometer increment over the assignment product.
        let mut i = 0;
        loop {
            if i == choice.len() {
                return best;
            }
            choice[i] += 1;
            if choice[i] < choices {
                break;
            }
            choice[i] = 0;
            i += 1;
        }
    }
}

fn best_assignment_greedy(
    table: &[Vec<(f64, usize)>],
    fractions: &[f64],
    budget: usize,
) -> Option<(Vec<usize>, f64)> {
    // Start every tenant at its cheapest-bytes choice.
    let mut choice: Vec<usize> = table
        .iter()
        .map(|row| {
            row.iter()
                .enumerate()
                .min_by(|a, b| a.1 .1.cmp(&b.1 .1).then(a.0.cmp(&b.0)))
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
        .collect();
    if assignment_bytes(table, &choice) > budget {
        return None;
    }
    // Repeatedly apply the single-tenant upgrade with the best occupancy
    // gain per extra byte that still fits.
    loop {
        let current_bytes = assignment_bytes(table, &choice);
        let mut best_move: Option<(usize, usize, f64)> = None; // (tenant, choice, gain/byte)
        for (t, row) in table.iter().enumerate() {
            let (cur_occ, cur_bytes) = row[choice[t]];
            for (c, &(occ, bytes)) in row.iter().enumerate() {
                if occ >= cur_occ {
                    continue;
                }
                let extra = bytes.saturating_sub(cur_bytes);
                if current_bytes + extra > budget {
                    continue;
                }
                let gain = fractions[t] * (cur_occ - occ) / extra.max(1) as f64;
                if best_move.as_ref().is_none_or(|&(_, _, g)| gain > g) {
                    best_move = Some((t, c, gain));
                }
            }
        }
        match best_move {
            Some((t, c, _)) => choice[t] = c,
            None => break,
        }
    }
    let qps = assignment_qps(table, fractions, &choice);
    Some((choice, qps))
}

// ---------------------------------------------------------------------------
// Cross-tenant scheduling.
// ---------------------------------------------------------------------------

/// One batched secure-world crossing in a [`FleetSchedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleSlot {
    /// Index into the tenant slice.
    pub tenant: usize,
    /// Samples carried by this crossing.
    pub batch: usize,
}

/// A deterministic batched cross-tenant schedule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetSchedule {
    /// Crossings in execution order.
    pub slots: Vec<ScheduleSlot>,
    /// REE→TEE world switches the schedule performs.
    pub switches: u64,
    /// Switches the same traffic would cost unbatched (one request per
    /// crossing) — the amortization baseline.
    pub unbatched_switches: u64,
}

impl FleetSchedule {
    /// Builds the round-robin batched schedule for the given per-tenant
    /// request counts: tenants take turns emitting one full (or final
    /// partial) batch until every request is scheduled. Round-robin bounds
    /// each tenant's inter-service gap, which is what keeps per-tenant tail
    /// latency flat while batching amortizes the switch cost.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] when `requests` and `tenants` lengths
    /// disagree, plus spec validation errors (unit counts set the switch
    /// cost per crossing).
    pub fn round_robin(tenants: &[TenantDemand], requests: &[u64]) -> Result<FleetSchedule> {
        if tenants.len() != requests.len() {
            return Err(CoreError::InvalidConfig {
                field: "requests",
                reason: format!(
                    "got {} request counts for {} tenants",
                    requests.len(),
                    tenants.len()
                ),
            });
        }
        // Switches per crossing: one per unit plus the input delivery.
        let per_crossing: Vec<u64> = tenants
            .iter()
            .map(|t| t.mt_spec.units.len() as u64 + 1)
            .collect();
        let mut remaining = requests.to_vec();
        let mut slots = Vec::new();
        let mut switches = 0u64;
        while remaining.iter().any(|&r| r > 0) {
            for (t, rem) in remaining.iter_mut().enumerate() {
                if *rem == 0 {
                    continue;
                }
                let batch = (tenants[t].batch.max(1) as u64).min(*rem);
                *rem -= batch;
                slots.push(ScheduleSlot {
                    tenant: t,
                    batch: batch as usize,
                });
                switches += per_crossing[t];
            }
        }
        let unbatched_switches = requests
            .iter()
            .zip(&per_crossing)
            .map(|(&r, &s)| r * s)
            .sum();
        Ok(FleetSchedule {
            slots,
            switches,
            unbatched_switches,
        })
    }

    /// Requests the schedule serves per tenant (conservation check: equals
    /// the requested counts).
    pub fn served_per_tenant(&self, tenants: usize) -> Vec<u64> {
        let mut served = vec![0u64; tenants];
        for s in &self.slots {
            served[s.tenant] += s.batch as u64;
        }
        served
    }

    /// World-switch amortization over the unbatched baseline (≥ 1.0; equals
    /// the mean batch size when every crossing is full).
    pub fn amortization_factor(&self) -> f64 {
        if self.switches == 0 {
            1.0
        } else {
            self.unbatched_switches as f64 / self.switches as f64
        }
    }
}

// ---------------------------------------------------------------------------
// Live validation.
// ---------------------------------------------------------------------------

/// Result of checking predicted capacity against a live serving run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LiveValidation {
    /// Throughput the live run achieved, requests per second.
    pub measured_qps: f64,
    /// Calibrated lower bracket: throughput with zero pipelining
    /// (`batch / stage_sum`).
    pub predicted_serial_qps: f64,
    /// Calibrated upper bracket: steady-state two-stage pipeline throughput
    /// (`batch / bottleneck stage`).
    pub predicted_pipelined_qps: f64,
    /// Multiplicative tolerance applied to the bracket.
    pub tolerance: f64,
    /// `measured ∈ [serial/tolerance, pipelined·tolerance]`.
    pub within_tolerance: bool,
}

/// Checks a measured throughput against the prediction bracket implied by
/// measured stage times: the calibrated simulator gives a serial floor
/// (stage sum) and a pipelined ceiling (bottleneck stage), and the live
/// number must land inside that bracket widened by `tolerance` on both
/// sides. This is the planner's ground-truth hook — capacity curves are
/// only trustworthy when live runs keep landing inside the bracket.
///
/// # Errors
///
/// Propagates calibration/spec/cost validation errors.
pub fn validate_qps(
    stages: &MeasuredStages,
    batch: usize,
    mt_spec: &ModelSpec,
    mr_spec: &ModelSpec,
    measured_qps: f64,
    tolerance: f64,
) -> Result<LiveValidation> {
    let batch = batch.max(1);
    let cost = tbnet_tee::calibrate_cost_model(mt_spec, mr_spec, stages, batch)?;
    let sim = simulate_two_branch(mt_spec, mr_spec, &cost)?;
    // The calibrated simulator replays the measured batch, so its stage
    // totals are per-batch times.
    let serial_s = sim.stage_sum_s();
    let ree_stage_s = sim.ree_compute_s + sim.transfer_s + sim.switch_s;
    let tee_stage_s = sim.tee_compute_s + sim.merge_s;
    let bottleneck_s = ree_stage_s.max(tee_stage_s).max(1e-12);
    let predicted_serial_qps = batch as f64 / serial_s.max(1e-12);
    let predicted_pipelined_qps = batch as f64 / bottleneck_s;
    let tolerance = tolerance.max(1.0);
    let within_tolerance = measured_qps >= predicted_serial_qps / tolerance
        && measured_qps <= predicted_pipelined_qps * tolerance;
    Ok(LiveValidation {
        measured_qps,
        predicted_serial_qps,
        predicted_pipelined_qps,
        tolerance,
        within_tolerance,
    })
}

/// [`validate_qps`] fed from a live [`ServeReport`]: the report supplies
/// the measured stage times and mean batch, the caller supplies the
/// wall-clock throughput it observed.
///
/// # Errors
///
/// [`CoreError::InvalidConfig`] when the run completed no healthy batch,
/// plus calibration errors.
pub fn validate_against_live(
    report: &ServeReport,
    mt_spec: &ModelSpec,
    mr_spec: &ModelSpec,
    measured_qps: f64,
    tolerance: f64,
) -> Result<LiveValidation> {
    // Reuse the report's own calibration gate for the no-batches case.
    report.calibrated_cost_model(mt_spec, mr_spec)?;
    let batch = (report.mean_batch.round() as usize).max(1);
    validate_qps(
        &report.stages,
        batch,
        mt_spec,
        mr_spec,
        measured_qps,
        tolerance,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbnet_models::{resnet, vgg};

    fn victim() -> ModelSpec {
        vgg::vgg_tiny(10, 3, (16, 16))
    }

    fn space() -> SearchSpace {
        SearchSpace {
            ratio: 0.2,
            min_channels: 2,
            max_prune_iters: 4,
            batches: vec![1, 2, 4, 8],
        }
    }

    #[test]
    fn pruned_spec_decays_and_respects_floor() {
        let v = victim();
        let mut prev: usize = v.units.iter().map(|u| u.out_channels).sum();
        for k in 1..=6 {
            let p = pruned_spec(&v, 0.3, 2, k).unwrap();
            p.trace().unwrap();
            let total: usize = p.units.iter().map(|u| u.out_channels).sum();
            assert!(total <= prev, "iteration {k} widened the spec");
            assert!(p.units.iter().all(|u| u.out_channels >= 2));
            prev = total;
        }
        // k=0 is the victim (clamped).
        assert_eq!(pruned_spec(&v, 0.3, 2, 0).unwrap().units, v.units);
    }

    #[test]
    fn pruned_spec_keeps_residual_groups_valid() {
        let v = resnet::resnet20_tiny(10, 3, (16, 16));
        for k in 0..5 {
            let p = pruned_spec(&v, 0.25, 2, k).unwrap();
            // Skip-connected units kept shape-consistent via shared groups.
            p.trace().unwrap();
        }
    }

    #[test]
    fn capacity_retention_rewards_rollback() {
        let v = victim();
        let mt = pruned_spec(&v, 0.3, 2, 4).unwrap();
        let narrow = capacity_retention(&v, &mt, &mt);
        let wide = capacity_retention(&v, &mt, &pruned_spec(&v, 0.3, 2, 1).unwrap());
        let full = capacity_retention(&v, &v, &v);
        assert!(narrow < wide && wide < full);
        assert!((full - 1.0).abs() < 1e-12);
    }

    #[test]
    fn optimizer_never_returns_slo_violating_plan() {
        let v = victim();
        let cost = CostModel::raspberry_pi3();
        let slos = [
            Slo::new("generous", 1.0, 64 << 20, 0.0),
            Slo::new("tight-latency", 0.01, 64 << 20, 0.6),
            Slo::new("tight-memory", 1.0, 1 << 20, 0.5),
        ];
        for slo in &slos {
            let plan = optimize_deployment(&v, &space(), slo, &cost).unwrap();
            assert!(
                plan.latency_s() <= slo.max_latency_s,
                "{}: latency {} over SLO {}",
                slo.name,
                plan.latency_s(),
                slo.max_latency_s
            );
            assert!(plan.secure_bytes() <= slo.secure_memory_bytes);
            assert!(plan.capacity_retention >= slo.min_capacity_retention);
            assert!(plan.rollback <= plan.prune_iters);
            assert!(plan.max_qps() > 0.0);
        }
    }

    #[test]
    fn optimizer_minimizes_occupancy_among_feasible() {
        let v = victim();
        let cost = CostModel::raspberry_pi3();
        let slo = Slo::new("check", 0.5, 8 << 20, 0.55);
        let sp = space();
        let plan = optimize_deployment(&v, &sp, &slo, &cost).unwrap();
        // Brute-force the same space and confirm nothing feasible beats it.
        for k in 0..=sp.max_prune_iters {
            let mt = pruned_spec(&v, sp.ratio, sp.min_channels, k).unwrap();
            for r in 0..=k {
                let mr = pruned_spec(&v, sp.ratio, sp.min_channels, r).unwrap();
                if capacity_retention(&v, &mt, &mr) < slo.min_capacity_retention {
                    continue;
                }
                for &b in &sp.batches {
                    let lat = simulate_two_branch_batched(&mt, &mr, &cost, b).unwrap();
                    let mem = MemoryReport::for_secure_branch_batched(&mt, b).unwrap();
                    if lat.total_s > slo.max_latency_s || mem.total() > slo.secure_memory_bytes {
                        continue;
                    }
                    let occ = lat.secure_occupancy_s() / b as f64;
                    assert!(
                        plan.occupancy_per_request_s() <= occ + 1e-15,
                        "({k},{r},{b}) occ {occ} beats chosen {}",
                        plan.occupancy_per_request_s()
                    );
                }
            }
        }
    }

    #[test]
    fn impossible_slo_reports_no_feasible_plan() {
        let v = victim();
        let cost = CostModel::raspberry_pi3();
        let slo = Slo::new("impossible", 1e-9, 1, 0.0);
        match optimize_deployment(&v, &space(), &slo, &cost) {
            Err(CoreError::NoFeasiblePlan { explored, reason }) => {
                assert!(explored > 0);
                assert!(reason.contains("latency"));
            }
            other => panic!("expected NoFeasiblePlan, got {other:?}"),
        }
    }

    #[test]
    fn distinct_slos_choose_distinct_plans() {
        let v = victim();
        let cost = CostModel::raspberry_pi3();
        let interactive = Slo::new("interactive", 0.012, 32 << 20, 0.55);
        let constrained = Slo::new("constrained", 0.5, 1 << 20, 0.45);
        let a = optimize_deployment(&v, &space(), &interactive, &cost).unwrap();
        let b = optimize_deployment(&v, &space(), &constrained, &cost).unwrap();
        assert_ne!(
            (a.prune_iters, a.rollback, a.batch),
            (b.prune_iters, b.rollback, b.batch),
            "both SLOs chose ({}, {}, {})",
            a.prune_iters,
            a.rollback,
            a.batch
        );
    }

    fn demand(name: &str, k: usize, r: usize, batch: usize, qps: f64) -> TenantDemand {
        let v = victim();
        TenantDemand {
            name: name.into(),
            mt_spec: pruned_spec(&v, 0.2, 2, k).unwrap(),
            mr_spec: pruned_spec(&v, 0.2, 2, r).unwrap(),
            batch,
            qps,
        }
    }

    #[test]
    fn fleet_packing_respects_both_constraints() {
        let cost = CostModel::raspberry_pi3();
        let tenants: Vec<TenantDemand> = (0..6)
            .map(|i| demand(&format!("t{i}"), 2, 1, 4, 10.0))
            .collect();
        let budget = 2 << 20;
        let fleet = plan_fleet(&tenants, &cost, budget).unwrap();
        assert!(!fleet.worlds.is_empty());
        let mut seen = vec![false; tenants.len()];
        for w in &fleet.worlds {
            assert!(w.used_bytes <= w.budget_bytes);
            assert!(w.compute_utilization <= 1.0 + 1e-12);
            for &t in &w.tenants {
                assert!(!seen[t], "tenant {t} placed twice");
                seen[t] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every tenant placed");
        // Oversized tenant rejected with the planner error.
        let huge = vec![demand("huge", 0, 0, 64, 1.0)];
        assert!(matches!(
            plan_fleet(&huge, &cost, 1 << 16),
            Err(CoreError::NoFeasiblePlan { .. })
        ));
    }

    #[test]
    fn capacity_curve_monotone_in_budget() {
        let cost = CostModel::raspberry_pi3();
        let v = victim();
        let mix: Vec<TenantMix> = (0..3)
            .map(|i| TenantMix {
                name: format!("m{i}"),
                mt_spec: pruned_spec(&v, 0.2, 2, 2 + i).unwrap(),
                mr_spec: pruned_spec(&v, 0.2, 2, 1).unwrap(),
                fraction: 1.0 + i as f64,
            })
            .collect();
        let budgets: Vec<usize> = (1..=12).map(|i| i * (1 << 20)).collect();
        let curve = capacity_curve(&mix, &cost, &budgets, &[1, 2, 4, 8, 16]).unwrap();
        assert_eq!(curve.points.len(), budgets.len());
        for pair in curve.points.windows(2) {
            assert!(
                pair[1].qps >= pair[0].qps - 1e-12,
                "curve dipped: {} MB -> {:.1} qps, {} MB -> {:.1} qps",
                pair[0].budget_bytes >> 20,
                pair[0].qps,
                pair[1].budget_bytes >> 20,
                pair[1].qps
            );
        }
        let knee = curve.knee().expect("some budget is feasible");
        assert!(knee.qps >= 0.95 * curve.max_qps());
        // The knee is the *first* such budget.
        for p in &curve.points {
            if p.budget_bytes < knee.budget_bytes {
                assert!(p.qps < 0.95 * curve.max_qps());
            } else {
                break;
            }
        }
    }

    #[test]
    fn greedy_assignment_stays_within_budget() {
        // Force the greedy path with a tiny exhaustive limit stand-in: call
        // the greedy directly on the table the curve would build.
        let cost = CostModel::raspberry_pi3();
        let v = victim();
        let mt = pruned_spec(&v, 0.2, 2, 2).unwrap();
        let batches = [1usize, 2, 4, 8];
        let mut row = Vec::new();
        for &b in &batches {
            let rep = simulate_two_branch_batched(&mt, &v, &cost, b).unwrap();
            let bytes = MemoryReport::for_secure_branch_batched(&mt, b)
                .unwrap()
                .total();
            row.push((rep.secure_occupancy_s() / b as f64, bytes));
        }
        let table = vec![row.clone(), row];
        let fractions = [0.5, 0.5];
        let budget = 4 << 20;
        let (choice, qps) = best_assignment_greedy(&table, &fractions, budget).unwrap();
        assert!(assignment_bytes(&table, &choice) <= budget);
        assert!(qps > 0.0);
        // Greedy never beats exhaustive, and both fit the budget.
        let (ex_choice, ex_qps) = best_assignment_exhaustive(&table, &fractions, budget).unwrap();
        assert!(assignment_bytes(&table, &ex_choice) <= budget);
        assert!(ex_qps >= qps - 1e-12);
    }

    #[test]
    fn round_robin_schedule_conserves_requests() {
        let tenants = vec![
            demand("a", 2, 1, 4, 1.0),
            demand("b", 3, 2, 8, 1.0),
            demand("c", 1, 0, 3, 1.0),
        ];
        let requests = [10u64, 17, 4];
        let sched = FleetSchedule::round_robin(&tenants, &requests).unwrap();
        assert_eq!(sched.served_per_tenant(tenants.len()), requests.to_vec());
        // No crossing exceeds its tenant's batch size.
        for s in &sched.slots {
            assert!(s.batch >= 1 && s.batch <= tenants[s.tenant].batch);
        }
        // Batching strictly amortizes switches for this traffic.
        assert!(sched.switches < sched.unbatched_switches);
        assert!(sched.amortization_factor() > 1.0);
        // Length mismatch rejected.
        assert!(FleetSchedule::round_robin(&tenants, &[1, 2]).is_err());
    }

    #[test]
    fn live_validation_brackets_measured_qps() {
        let v = victim();
        let mt = pruned_spec(&v, 0.2, 2, 2).unwrap();
        let stages = MeasuredStages {
            ree_s: 0.030,
            tee_s: 0.050,
            transfer_s: 0.004,
            merge_s: 0.002,
            switch_s: 0.001,
        };
        let batch = 8;
        // A throughput between the serial floor and pipelined ceiling passes.
        let serial = validate_qps(&stages, batch, &mt, &v, 0.0, 1.0).unwrap();
        assert!(serial.predicted_pipelined_qps >= serial.predicted_serial_qps);
        let mid = 0.5 * (serial.predicted_serial_qps + serial.predicted_pipelined_qps);
        assert!(
            validate_qps(&stages, batch, &mt, &v, mid, 1.0)
                .unwrap()
                .within_tolerance
        );
        // Far outside the bracket fails even with slack...
        let absurd = 100.0 * serial.predicted_pipelined_qps;
        assert!(
            !validate_qps(&stages, batch, &mt, &v, absurd, 2.0)
                .unwrap()
                .within_tolerance
        );
        // ...and tolerance widens the bracket symmetrically.
        let low = serial.predicted_serial_qps * 0.6;
        assert!(
            !validate_qps(&stages, batch, &mt, &v, low, 1.0)
                .unwrap()
                .within_tolerance
        );
        assert!(
            validate_qps(&stages, batch, &mt, &v, low, 2.0)
                .unwrap()
                .within_tolerance
        );
    }
}
