//! Fault-tolerant split-inference serving runtime.
//!
//! [`crate::deploy::run_split_inference`] executes one split inference on one
//! thread — correct, but nothing like a deployment, where requests arrive
//! concurrently, the secure world is a shared bottleneck, and TrustZone
//! fails in ways the happy path never shows. This module is the runtime the
//! paper's deployment section implies but does not build:
//!
//! * an **admission queue** with per-request deadlines and a high-water mark
//!   (past it, requests are shed immediately instead of queued to die);
//! * a **dynamic batcher**: REE workers merge single-sample requests into
//!   batches up to [`ServeConfig::max_batch`], waiting at most
//!   [`ServeConfig::batch_linger`] for stragglers;
//! * a **pipelined split execution**: the REE worker streams `M_R` feature
//!   maps through a *bounded* one-way channel while a dedicated TEE consumer
//!   thread merges and classifies — REE compute, transfer and TEE compute
//!   genuinely overlap, which [`ServeReport::validate_pipeline`] checks
//!   against the event-driven simulator's prediction;
//! * a **nemesis-driven fault model** ([`tbnet_tee::FaultPlan`]) answered
//!   with *typed* recovery: transient world-switch failures get bounded
//!   retry with exponential backoff, channel stalls and checksum-detected
//!   corruption get the batch requeued, a crashed TEE consumer is reclaimed
//!   and restarted by the supervisor (secure memory released and the model
//!   reloaded), and a TEE declared unhealthy by the supervisor's probes
//!   routes requests to a **graceful degradation** path: an REE-resident
//!   int8 answer ([`TwoBranchModel::predict_int8`]), flagged
//!   [`Outcome::Degraded`] so the caller knows the TEE guarantee was not
//!   met.
//!
//! Every admitted request reaches **exactly one** terminal [`Outcome`]
//! (answered, degraded, shed, or expired) — the in-flight registry makes
//! completion a compare-and-remove, so worker/consumer/supervisor races
//! cannot double-complete or lose a request. The integration suites
//! (`tests/serve_runtime.rs`, `tests/serve_faults.rs`) assert this under
//! seeded fault schedules, including a mid-run consumer crash.
//!
//! Data still only flows REE→TEE: requeues and job announcements are
//! control-plane supervisor traffic, never `M_T` activations.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use tbnet_models::{ChainNet, ModelSpec};
use tbnet_nn::Mode;
use tbnet_tee::channel::{one_way_bounded, RecvError, ReeSender, SendError, TeeReceiver};
use tbnet_tee::{
    calibrate_cost_model, checksum_f32, corrupt_f32, simulate_two_branch, ConsumerFault, CostModel,
    Deployment, FaultCounts, FaultPlan, LatencyReport, MeasuredStages, SecureWorld,
};
use tbnet_tensor::Tensor;

use crate::channels::gather_channels;
use crate::{CoreError, Result, TwoBranchModel};

/// Tuning knobs of the serving runtime. [`ServeConfig::default`] is sized
/// for a real deployment; [`ServeConfig::fast_test`] shrinks every timeout
/// so deterministic fault tests finish in milliseconds.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// REE worker threads forming and executing batches.
    pub ree_workers: usize,
    /// Largest batch the dynamic batcher will form.
    pub max_batch: usize,
    /// Longest a worker waits for stragglers after the first request of a
    /// batch arrives.
    pub batch_linger: Duration,
    /// Admission-queue depth past which new requests are shed immediately.
    pub queue_high_water: usize,
    /// Deadline attached by [`ServeEngine::submit`] (see
    /// [`ServeEngine::submit_with_deadline`] for per-request control).
    pub default_deadline: Duration,
    /// Capacity of each batch's bounded REE→TEE channel, in payloads.
    pub channel_cap: usize,
    /// Longest a worker blocks on a full channel before declaring the
    /// secure world stalled and requeueing the batch.
    pub send_timeout: Duration,
    /// Longest the TEE consumer waits for the next feature map before
    /// declaring the rich world stalled and abandoning the batch.
    pub recv_timeout: Duration,
    /// Bounded retry budget for transient world-switch failures, per send.
    pub max_send_retries: u32,
    /// How many times a request may be requeued (stall, corruption, crash
    /// reclaim) before it is answered by the degraded path instead.
    pub max_requeues: u32,
    /// First retry backoff; doubles per attempt.
    pub backoff_base: Duration,
    /// Upper bound on a single retry backoff.
    pub backoff_cap: Duration,
    /// Consecutive health failures before the TEE is declared unhealthy.
    pub unhealthy_after: u32,
    /// Consecutive probe successes before an unhealthy TEE is trusted
    /// again.
    pub healthy_after: u32,
    /// Supervisor tick: health probes and consumer crash detection.
    pub probe_interval: Duration,
    /// Hang guard for [`ServeEngine::shutdown`]'s drain: in-flight requests
    /// still unresolved past it are force-expired so shutdown always
    /// terminates with every request accounted for.
    pub drain_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            ree_workers: 1,
            max_batch: 8,
            batch_linger: Duration::from_millis(2),
            queue_high_water: 64,
            default_deadline: Duration::from_secs(2),
            channel_cap: 4,
            send_timeout: Duration::from_millis(500),
            recv_timeout: Duration::from_millis(500),
            max_send_retries: 4,
            max_requeues: 3,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(50),
            unhealthy_after: 3,
            healthy_after: 2,
            probe_interval: Duration::from_millis(10),
            drain_timeout: Duration::from_secs(30),
        }
    }
}

impl ServeConfig {
    /// A configuration with millisecond-scale timeouts for deterministic
    /// fault tests on slow CI hosts.
    pub fn fast_test() -> Self {
        ServeConfig {
            ree_workers: 1,
            max_batch: 4,
            batch_linger: Duration::from_millis(1),
            queue_high_water: 256,
            default_deadline: Duration::from_secs(10),
            channel_cap: 2,
            send_timeout: Duration::from_millis(200),
            recv_timeout: Duration::from_millis(200),
            max_send_retries: 3,
            max_requeues: 2,
            backoff_base: Duration::from_micros(200),
            backoff_cap: Duration::from_millis(5),
            unhealthy_after: 1,
            healthy_after: 1,
            probe_interval: Duration::from_millis(2),
            drain_timeout: Duration::from_secs(20),
        }
    }

    fn validate(&self) -> Result<()> {
        let check = |ok: bool, field: &'static str, reason: &str| {
            if ok {
                Ok(())
            } else {
                Err(CoreError::InvalidConfig {
                    field,
                    reason: reason.to_string(),
                })
            }
        };
        check(self.ree_workers >= 1, "ree_workers", "need >= 1 worker")?;
        check(self.max_batch >= 1, "max_batch", "need >= 1")?;
        check(self.queue_high_water >= 1, "queue_high_water", "need >= 1")?;
        check(self.channel_cap >= 1, "channel_cap", "need >= 1")?;
        check(self.unhealthy_after >= 1, "unhealthy_after", "need >= 1")?;
        check(self.healthy_after >= 1, "healthy_after", "need >= 1")?;
        check(!self.probe_interval.is_zero(), "probe_interval", "need > 0")?;
        check(!self.drain_timeout.is_zero(), "drain_timeout", "need > 0")
    }
}

/// Exponential backoff for retry `attempt` (0-based): `base << attempt`,
/// saturating at `cap`. Monotone non-decreasing in `attempt`.
fn backoff_for(cfg: &ServeConfig, attempt: u32) -> Duration {
    let factor = 1u32.checked_shl(attempt.min(24)).unwrap_or(u32::MAX);
    cfg.backoff_base.saturating_mul(factor).min(cfg.backoff_cap)
}

/// The terminal state of one admitted request.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The full two-branch split answered inside the TEE.
    Answered {
        /// The logits row produced by `M_T`'s head.
        logits: Vec<f32>,
        /// Submit-to-completion wall clock.
        latency_ms: f64,
        /// How many times this request was requeued before it completed.
        requeues: u32,
    },
    /// The TEE was unavailable; an REE-only int8 answer was produced by
    /// [`TwoBranchModel::predict_int8`] on a batch of one, so it is
    /// bit-identical to calling that method directly on the same sample.
    Degraded {
        /// The logits row of the fallback int8 path.
        logits: Vec<f32>,
        /// Submit-to-completion wall clock.
        latency_ms: f64,
    },
    /// Load-shedding refused the request at admission (queue past its
    /// high-water mark).
    Shed,
    /// The request's deadline passed before a worker reached it.
    Expired,
}

/// One request's identity and terminal outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The id returned by [`ServeEngine::submit`].
    pub id: u64,
    /// What happened to it.
    pub outcome: Outcome,
}

/// Outcome tally of a serving session. Always satisfies
/// `admitted == answered + degraded + shed + expired`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeCounts {
    /// Requests accepted by [`ServeEngine::submit`].
    pub admitted: u64,
    /// Full TEE answers.
    pub answered: u64,
    /// REE-only int8 fallback answers.
    pub degraded: u64,
    /// Requests refused at admission.
    pub shed: u64,
    /// Requests whose deadline passed (including force-expired at drain).
    pub expired: u64,
}

/// Counters and stage-time accumulators of a serving session.
#[derive(Debug, Clone, Default)]
pub struct ServeMetrics {
    /// Healthy-path batches completed end to end.
    pub batches: u64,
    /// Samples across those batches.
    pub batch_samples: u64,
    /// REE `M_R` unit-forward nanoseconds, summed over healthy batches.
    pub ree_ns: u64,
    /// Channel send nanoseconds (clone + enqueue + backpressure waits).
    pub transfer_ns: u64,
    /// TEE `M_T` unit-forward and head nanoseconds.
    pub tee_ns: u64,
    /// TEE-side checksum verification and aligned-channel extraction.
    pub merge_ns: u64,
    /// Batch-formation-to-classification wall clock, summed per batch.
    pub makespan_ns: u64,
    /// World-switch retries performed by senders.
    pub send_retries: u64,
    /// Backoff sequences (milliseconds, in retry order) of every send that
    /// retried at least once — the monotone-backoff regression test reads
    /// this.
    pub retry_traces: Vec<Vec<f64>>,
    /// Batches pushed back into admission (stall, corruption, crash).
    pub requeues: u64,
    /// Sends abandoned after the retry budget or a channel stall/timeout.
    pub send_failures: u64,
    /// Payloads whose checksum did not survive the channel.
    pub corruption_detected: u64,
    /// TEE consumer restarts performed by the supervisor.
    pub consumer_restarts: u64,
    /// Healthy→unhealthy transitions.
    pub unhealthy_transitions: u64,
    /// Requests force-expired by the shutdown hang guard.
    pub forced_expired: u64,
    /// Deepest any batch channel ever got (max over batches).
    pub channel_high_water: u64,
    /// Payloads dropped across all batch channels.
    pub channel_dropped: u64,
}

/// Everything a finished serving session reports.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Terminal outcome of every admitted request, in completion order.
    pub completions: Vec<Completion>,
    /// Outcome tally (consistent with `completions`).
    pub counts: OutcomeCounts,
    /// Counters and accumulators.
    pub metrics: ServeMetrics,
    /// Mean per-batch stage times of the healthy path, in the shape the
    /// simulator calibration expects.
    pub stages: MeasuredStages,
    /// Mean samples per healthy batch.
    pub mean_batch: f64,
    /// Measured pipeline overlap: per-batch stage-time sum over per-batch
    /// makespan (1.0 = fully serial; above 1.0 = stages overlapped).
    pub measured_overlap: f64,
    /// Everything the nemesis injected and observed.
    pub faults: FaultCounts,
}

impl ServeReport {
    /// Latency percentile (`q` in `[0, 1]`) over answered and degraded
    /// requests. Returns 0.0 when nothing completed with an answer.
    pub fn latency_percentile(&self, q: f64) -> f64 {
        let mut lat: Vec<f64> = self
            .completions
            .iter()
            .filter_map(|c| match &c.outcome {
                Outcome::Answered { latency_ms, .. } | Outcome::Degraded { latency_ms, .. } => {
                    Some(*latency_ms)
                }
                _ => None,
            })
            .collect();
        if lat.is_empty() {
            return 0.0;
        }
        lat.sort_by(f64::total_cmp);
        let idx = (q.clamp(0.0, 1.0) * (lat.len() - 1) as f64).round() as usize;
        lat[idx]
    }

    /// Fraction of admitted requests that were shed.
    pub fn shed_rate(&self) -> f64 {
        if self.counts.admitted == 0 {
            0.0
        } else {
            self.counts.shed as f64 / self.counts.admitted as f64
        }
    }

    /// Checks the healthy-path pipeline against the event-driven simulator:
    /// fits a [`CostModel`] to the measured per-batch stage times
    /// ([`calibrate_cost_model`]) and compares the measured stage overlap
    /// with [`LatencyReport::pipeline_overlap`] of the simulated schedule.
    /// A `ratio` near 1.0 means the concurrent runtime pipelines stages the
    /// way the simulator predicts.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] when no healthy batch completed (there
    /// is nothing to calibrate from), plus spec/cost validation errors.
    pub fn validate_pipeline(
        &self,
        mt_spec: &ModelSpec,
        mr_spec: &ModelSpec,
    ) -> Result<PipelineValidation> {
        let cost = self.calibrated_cost_model(mt_spec, mr_spec)?;
        let simulated = simulate_two_branch(mt_spec, mr_spec, &cost)?;
        let simulated_overlap = simulated.pipeline_overlap();
        Ok(PipelineValidation {
            measured_overlap: self.measured_overlap,
            simulated_overlap,
            ratio: self.measured_overlap / simulated_overlap,
            simulated,
        })
    }

    /// Fits a [`CostModel`] to this run's measured per-batch stage times at
    /// its mean batch size — the host-calibration step of capacity planning:
    /// a short live run on the target host turns into the cost model the
    /// planner ([`crate::planner`]) prices every candidate against.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] when no healthy batch completed (there
    /// is nothing to calibrate from), plus spec/cost validation errors.
    pub fn calibrated_cost_model(
        &self,
        mt_spec: &ModelSpec,
        mr_spec: &ModelSpec,
    ) -> Result<CostModel> {
        if self.metrics.batches == 0 {
            return Err(CoreError::InvalidConfig {
                field: "calibrated_cost_model",
                reason: "no healthy batches completed; nothing to calibrate from".into(),
            });
        }
        let batch = (self.mean_batch.round() as usize).max(1);
        Ok(calibrate_cost_model(mt_spec, mr_spec, &self.stages, batch)?)
    }
}

/// Result of [`ServeReport::validate_pipeline`].
#[derive(Debug, Clone, Copy)]
pub struct PipelineValidation {
    /// Stage overlap the concurrent runtime actually achieved.
    pub measured_overlap: f64,
    /// Stage overlap the calibrated simulator predicts.
    pub simulated_overlap: f64,
    /// `measured_overlap / simulated_overlap`.
    pub ratio: f64,
    /// The full simulated schedule, for inspection.
    pub simulated: LatencyReport,
}

// ---------------------------------------------------------------------------
// Internal shared state.
// ---------------------------------------------------------------------------

/// A feature map (or the input batch) crossing the one-way channel, with
/// the integrity checksum the sender computed *before* the nemesis had a
/// chance to scribble the payload.
#[derive(Debug)]
struct Payload {
    data: Tensor,
    checksum: u64,
}

/// One admitted request waiting in (or requeued to) the admission queue.
#[derive(Debug)]
struct Job {
    id: u64,
    /// Normalized to `[1, C, H, W]`.
    image: Tensor,
}

/// In-flight registry entry; removing it is the one and only way a request
/// completes, which makes every outcome exactly-once.
#[derive(Debug)]
struct Pending {
    submitted: Instant,
    deadline: Instant,
    requeues: u32,
}

/// A batch announced to the TEE consumer: who is in it (ids and original
/// images, so a crashed consumer's batch can be reclaimed and requeued) and
/// the receive end of its private bounded channel.
struct TeeJob {
    items: Vec<(u64, Tensor)>,
    rx: TeeReceiver<Payload>,
    batch_start: Instant,
}

#[derive(Debug)]
struct HealthState {
    consec_fail: u32,
    consec_ok: u32,
    healthy: bool,
}

/// Terminal outcome before latency stamping (the registry supplies the
/// submit time and requeue count at completion).
enum Terminal {
    Answered(Vec<f32>),
    Degraded(Vec<f32>),
    Shed,
    Expired,
}

/// Why a batch's REE side gave up.
enum SendFail {
    /// World-switch retry budget exhausted.
    RetriesExhausted,
    /// The channel stayed full past `send_timeout` (secure world stalled).
    Stalled,
    /// The consumer endpoint disappeared mid-batch (TA crash).
    Disconnected,
}

/// Why the consumer abandoned a batch.
enum ConsumeFail {
    /// Requeue the batch: stall timeout or detected corruption. The sender
    /// believes the batch was delivered, so the consumer owns recovery.
    Requeue,
    /// The sender already gave up (it requeues); just drop the job.
    Quiet,
    /// Injected TA crash: the thread dies, the supervisor reclaims.
    Crashed,
}

/// Locks a mutex, recovering from poisoning: an injected consumer crash (a
/// real panic in a worker) must never wedge the whole runtime.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

struct Shared {
    cfg: ServeConfig,
    fault: FaultPlan,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    jobs: Mutex<VecDeque<TeeJob>>,
    jobs_cv: Condvar,
    registry: Mutex<HashMap<u64, Pending>>,
    completions: Mutex<Vec<Completion>>,
    /// The batch the consumer is processing right now (ids + images), so
    /// the supervisor can reclaim it after a crash.
    current: Mutex<Option<Vec<(u64, Tensor)>>>,
    world: Mutex<SecureWorld>,
    mt_spec: ModelSpec,
    mt_template: ChainNet,
    align: Vec<Option<Vec<usize>>>,
    health: Mutex<HealthState>,
    healthy_flag: AtomicBool,
    consumer_alive: AtomicBool,
    closed: AtomicBool,
    stop: AtomicBool,
    next_id: AtomicU64,
    admitted: AtomicU64,
    metrics: Mutex<ServeMetrics>,
    consumer_handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Completes `id` with `terminal` if (and only if) it is still
    /// in-flight. Returns whether this call won the completion.
    fn complete(&self, id: u64, terminal: Terminal) -> bool {
        let pending = lock(&self.registry).remove(&id);
        let Some(p) = pending else {
            return false;
        };
        let latency_ms = p.submitted.elapsed().as_secs_f64() * 1e3;
        let outcome = match terminal {
            Terminal::Answered(logits) => Outcome::Answered {
                logits,
                latency_ms,
                requeues: p.requeues,
            },
            Terminal::Degraded(logits) => Outcome::Degraded { logits, latency_ms },
            Terminal::Shed => Outcome::Shed,
            Terminal::Expired => Outcome::Expired,
        };
        lock(&self.completions).push(Completion { id, outcome });
        true
    }

    /// Pushes a failed batch back into admission, bumping each request's
    /// requeue count. Already-completed or already-queued requests are
    /// skipped, so racing recoveries (worker send failure vs supervisor
    /// crash reclaim) stay idempotent.
    fn requeue(&self, items: Vec<(u64, Tensor)>) {
        let mut registry = lock(&self.registry);
        let mut queue = lock(&self.queue);
        let mut pushed = false;
        for (id, image) in items {
            let Some(p) = registry.get_mut(&id) else {
                continue;
            };
            if queue.iter().any(|j| j.id == id) {
                continue;
            }
            p.requeues += 1;
            queue.push_back(Job { id, image });
            pushed = true;
        }
        drop(queue);
        drop(registry);
        if pushed {
            lock(&self.metrics).requeues += 1;
            self.queue_cv.notify_all();
        }
    }

    fn health_failure(&self) {
        let mut h = lock(&self.health);
        h.consec_ok = 0;
        h.consec_fail = h.consec_fail.saturating_add(1);
        if h.healthy && h.consec_fail >= self.cfg.unhealthy_after {
            h.healthy = false;
            self.healthy_flag.store(false, Ordering::Release);
            lock(&self.metrics).unhealthy_transitions += 1;
        }
    }

    fn health_success(&self) {
        let mut h = lock(&self.health);
        h.consec_fail = 0;
        h.consec_ok = h.consec_ok.saturating_add(1);
        if !h.healthy && h.consec_ok >= self.cfg.healthy_after {
            h.healthy = true;
            self.healthy_flag.store(true, Ordering::Release);
        }
    }

    fn is_healthy(&self) -> bool {
        self.healthy_flag.load(Ordering::Acquire)
    }

    /// Pops the next admission job, waiting at most `wait`.
    fn pop_job(&self, wait: Duration) -> Option<Job> {
        let mut q = lock(&self.queue);
        if q.is_empty() {
            q = self
                .queue_cv
                .wait_timeout(q, wait)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
        q.pop_front()
    }

    /// One world-switch-guarded send with bounded exponential-backoff
    /// retries. On success returns the attempts used; the payload's
    /// checksum covers its pre-corruption bits, so a nemesis scribble is
    /// caught by the receiver.
    fn send_with_retry(
        &self,
        tx: &ReeSender<Payload>,
        data: Tensor,
        trace: &mut Vec<f64>,
    ) -> std::result::Result<u32, SendFail> {
        let bytes = data.numel() * 4;
        let checksum = checksum_f32(data.as_slice());
        let mut payload = Payload { data, checksum };
        if self.fault.on_payload_send() {
            corrupt_f32(payload.data.as_mut_slice(), checksum);
        }
        let mut attempt = 0u32;
        loop {
            if self.fault.on_world_switch() {
                self.health_failure();
                if attempt >= self.cfg.max_send_retries {
                    return Err(SendFail::RetriesExhausted);
                }
                let backoff = backoff_for(&self.cfg, attempt);
                trace.push(backoff.as_secs_f64() * 1e3);
                lock(&self.metrics).send_retries += 1;
                std::thread::sleep(backoff);
                attempt += 1;
                continue;
            }
            match tx.send_timeout(payload, bytes, self.cfg.send_timeout) {
                Ok(()) => return Ok(attempt),
                Err(SendError::TimedOut(_)) => {
                    self.health_failure();
                    return Err(SendFail::Stalled);
                }
                Err(SendError::Disconnected(_)) => return Err(SendFail::Disconnected),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Worker (REE side): triage, dynamic batching, split execution.
// ---------------------------------------------------------------------------

/// What triage decided about a popped job.
enum Triage {
    /// Run it through the healthy pipeline.
    Run(Job),
    /// Already handled (expired / degraded); nothing to batch.
    Handled,
}

fn triage(shared: &Shared, fallback: &mut TwoBranchModel, job: Job) -> Triage {
    let (deadline, requeues) = match lock(&shared.registry).get(&job.id) {
        Some(p) => (p.deadline, p.requeues),
        // Completed while queued (e.g. force-expired): drop silently.
        None => return Triage::Handled,
    };
    if Instant::now() > deadline {
        shared.complete(job.id, Terminal::Expired);
        return Triage::Handled;
    }
    if requeues > shared.cfg.max_requeues || !shared.is_healthy() {
        degrade(shared, fallback, &job);
        return Triage::Handled;
    }
    Triage::Run(job)
}

/// The graceful-degradation path: a batch-of-one
/// [`TwoBranchModel::predict_int8`] on the REE-resident fallback model —
/// bit-identical to calling that method directly on the same sample,
/// because the quantized first unit's activation range is batch-dependent.
fn degrade(shared: &Shared, fallback: &mut TwoBranchModel, job: &Job) {
    let logits = fallback
        .predict_int8(&job.image)
        .expect("degraded int8 predict on validated geometry");
    shared.complete(job.id, Terminal::Degraded(logits.as_slice().to_vec()));
}

/// Concatenates `[1, C, H, W]` request images into one `[B, C, H, W]`
/// batch.
fn concat_batch(jobs: &[Job]) -> Tensor {
    let dims = jobs[0].image.dims();
    let row = dims[1] * dims[2] * dims[3];
    let mut out = Tensor::zeros(&[jobs.len(), dims[1], dims[2], dims[3]]);
    for (k, job) in jobs.iter().enumerate() {
        out.as_mut_slice()[k * row..(k + 1) * row].copy_from_slice(job.image.as_slice());
    }
    out
}

fn worker_loop(shared: &Arc<Shared>, mut mr: ChainNet, mut fallback: TwoBranchModel) {
    while !shared.stopping() {
        let Some(first) = shared.pop_job(Duration::from_millis(5)) else {
            continue;
        };
        let first = match triage(shared, &mut fallback, first) {
            Triage::Run(job) => job,
            Triage::Handled => continue,
        };
        // Dynamic batching: linger for stragglers up to the batch cap.
        let mut batch = vec![first];
        let linger_until = Instant::now() + shared.cfg.batch_linger;
        while batch.len() < shared.cfg.max_batch {
            let remaining = match linger_until.checked_duration_since(Instant::now()) {
                Some(r) if !r.is_zero() => r,
                _ => break,
            };
            let Some(job) = shared.pop_job(remaining) else {
                break;
            };
            match triage(shared, &mut fallback, job) {
                Triage::Run(job) => batch.push(job),
                Triage::Handled => {}
            }
        }
        execute_batch(shared, &mut mr, batch);
    }
}

/// Runs one batch's REE side: announce the batch to the consumer, then
/// stream the input and every `M_R` feature map through the batch's private
/// bounded channel. Any send-side failure requeues the whole batch (the
/// consumer sees the sender vanish and drops the job quietly).
fn execute_batch(shared: &Arc<Shared>, mr: &mut ChainNet, batch: Vec<Job>) {
    let batch_start = Instant::now();
    let items: Vec<(u64, Tensor)> = batch.iter().map(|j| (j.id, j.image.clone())).collect();
    let input = concat_batch(&batch);
    let (tx, rx) = one_way_bounded::<Payload>(shared.cfg.channel_cap);
    {
        let mut jobs = lock(&shared.jobs);
        jobs.push_back(TeeJob {
            items: items.clone(),
            rx,
            batch_start,
        });
    }
    shared.jobs_cv.notify_all();

    // One backoff trace per *send*: each send's retry sequence starts over
    // at the base backoff, so traces must not be concatenated across the
    // batch's sends (the monotonicity contract is per retry sequence).
    let mut traces: Vec<Vec<f64>> = Vec::new();
    let mut ree_ns = 0u64;
    let mut transfer_ns = 0u64;
    let result = {
        let mut timed_send = |data: Tensor, transfer_ns: &mut u64| {
            let mut trace = Vec::new();
            let t = Instant::now();
            let res = shared.send_with_retry(&tx, data, &mut trace);
            *transfer_ns += t.elapsed().as_nanos() as u64;
            if !trace.is_empty() {
                traces.push(trace);
            }
            res.map(|_attempts| ())
        };
        (|| -> std::result::Result<(), SendFail> {
            timed_send(input.clone(), &mut transfer_ns)?;
            let mut r = input;
            for i in 0..mr.units().len() {
                let t = Instant::now();
                r = mr.units_mut()[i]
                    .forward_inference(&r, None, None)
                    .expect("M_R unit forward on validated geometry");
                ree_ns += t.elapsed().as_nanos() as u64;
                timed_send(r.clone(), &mut transfer_ns)?;
            }
            Ok(())
        })()
    };
    let channel = tx.stats();
    drop(tx); // the consumer sees end-of-batch (success) or abandonment

    let mut metrics = lock(&shared.metrics);
    metrics.channel_high_water = metrics.channel_high_water.max(channel.high_water);
    metrics.channel_dropped += channel.dropped;
    metrics.retry_traces.append(&mut traces);
    match result {
        Ok(()) => {
            metrics.ree_ns += ree_ns;
            metrics.transfer_ns += transfer_ns;
        }
        Err(_) => {
            metrics.send_failures += 1;
            drop(metrics);
            shared.requeue(items);
        }
    }
}

// ---------------------------------------------------------------------------
// Consumer (TEE side): merge, classify, complete.
// ---------------------------------------------------------------------------

fn recv_payload(
    shared: &Shared,
    rx: &TeeReceiver<Payload>,
) -> std::result::Result<Tensor, ConsumeFail> {
    let payload = match rx.recv_timeout(shared.cfg.recv_timeout) {
        Ok(p) => p,
        Err(RecvError::TimedOut) => return Err(ConsumeFail::Requeue),
        Err(RecvError::Disconnected) => return Err(ConsumeFail::Quiet),
    };
    match shared.fault.on_consumer_payload() {
        ConsumerFault::None => {}
        ConsumerFault::Stall(d) => std::thread::sleep(d),
        ConsumerFault::Crash => return Err(ConsumeFail::Crashed),
    }
    if checksum_f32(payload.data.as_slice()) != payload.checksum {
        lock(&shared.metrics).corruption_detected += 1;
        return Err(ConsumeFail::Requeue);
    }
    Ok(payload.data)
}

/// Receives one batch's payload stream, runs the merged `M_T` forward and
/// returns the logits plus (tee, merge) stage nanoseconds.
#[allow(clippy::needless_range_loop)] // i drives units, payloads and align together
fn consume_batch(
    shared: &Shared,
    mt: &mut ChainNet,
    align: &[Option<Vec<usize>>],
    rx: &TeeReceiver<Payload>,
) -> std::result::Result<(Tensor, u64, u64), ConsumeFail> {
    let n = mt.units().len();
    let mut tee_ns = 0u64;
    let mut merge_ns = 0u64;
    let mut m = recv_payload(shared, rx)?;
    let mut merged_outs: Vec<Tensor> = Vec::with_capacity(n);
    for i in 0..n {
        let r_out = recv_payload(shared, rx)?;
        let t = Instant::now();
        let r_sel = match &align[i] {
            None => r_out,
            Some(idx) => gather_channels(&r_out, idx)
                .expect("alignment validated against the deployed branches"),
        };
        merge_ns += t.elapsed().as_nanos() as u64;
        let skip = mt.units()[i]
            .spec()
            .skip_from
            .map(|j| merged_outs[j].clone());
        let t = Instant::now();
        m = mt.units_mut()[i]
            .forward_inference(&m, skip.as_ref(), Some(&r_sel))
            .expect("M_T unit forward on validated geometry");
        tee_ns += t.elapsed().as_nanos() as u64;
        merged_outs.push(m.clone());
    }
    let t = Instant::now();
    let logits = mt
        .head_mut()
        .forward(&m, Mode::Eval)
        .expect("M_T head forward on validated geometry");
    tee_ns += t.elapsed().as_nanos() as u64;
    Ok((logits, tee_ns, merge_ns))
}

fn consumer_loop(shared: &Arc<Shared>, mut mt: ChainNet, align: Vec<Option<Vec<usize>>>) {
    loop {
        if shared.stopping() {
            return;
        }
        let job = {
            let mut jobs = lock(&shared.jobs);
            if jobs.is_empty() {
                jobs = shared
                    .jobs_cv
                    .wait_timeout(jobs, Duration::from_millis(5))
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
            jobs.pop_front()
        };
        let Some(job) = job else {
            continue;
        };
        *lock(&shared.current) = Some(job.items.clone());
        match consume_batch(shared, &mut mt, &align, &job.rx) {
            Ok((logits, tee_ns, merge_ns)) => {
                let classes = logits.dim(1);
                for (k, (id, _)) in job.items.iter().enumerate() {
                    let row = logits.as_slice()[k * classes..(k + 1) * classes].to_vec();
                    shared.complete(*id, Terminal::Answered(row));
                }
                *lock(&shared.current) = None;
                let mut metrics = lock(&shared.metrics);
                metrics.batches += 1;
                metrics.batch_samples += job.items.len() as u64;
                metrics.tee_ns += tee_ns;
                metrics.merge_ns += merge_ns;
                metrics.makespan_ns += job.batch_start.elapsed().as_nanos() as u64;
            }
            Err(ConsumeFail::Requeue) => {
                let items = lock(&shared.current).take().unwrap_or_default();
                shared.requeue(items);
            }
            Err(ConsumeFail::Quiet) => {
                // The sender abandoned the batch and owns its requeue.
                *lock(&shared.current) = None;
            }
            Err(ConsumeFail::Crashed) => {
                // Die like a real TA: no cleanup. `current` stays set for
                // the supervisor to reclaim; dropping `job.rx` is what the
                // secure OS tearing down the session does to the channel.
                shared.consumer_alive.store(false, Ordering::Release);
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Supervisor: health probes, crash detection, TA restart.
// ---------------------------------------------------------------------------

fn spawn_consumer(shared: &Arc<Shared>) {
    let s = Arc::clone(shared);
    let mt = shared.mt_template.clone();
    let align = shared.align.clone();
    shared.consumer_alive.store(true, Ordering::Release);
    let handle = std::thread::Builder::new()
        .name("tbnet-serve-tee".into())
        .spawn(move || consumer_loop(&s, mt, align))
        .expect("spawn TEE consumer thread");
    lock(&shared.consumer_handles).push(handle);
}

fn supervisor_loop(shared: &Arc<Shared>) {
    while !shared.stopping() {
        std::thread::sleep(shared.cfg.probe_interval);
        if shared.stopping() {
            return;
        }
        // Crash detection and TA restart.
        if !shared.consumer_alive.load(Ordering::Acquire) {
            if let Some(items) = lock(&shared.current).take() {
                shared.requeue(items);
            }
            let reloaded = {
                let mut world = lock(&shared.world);
                // The crashed TA's pool is reclaimed by the secure OS before
                // the restarted instance loads the branch again.
                world.unload_all();
                shared
                    .fault
                    .load_model(&mut world, &shared.mt_spec, Deployment::SecureBranch)
            };
            match reloaded {
                Ok(_) => {
                    spawn_consumer(shared);
                    lock(&shared.metrics).consumer_restarts += 1;
                }
                Err(_) => {
                    // Secure memory exhausted at restart: stay down, degrade
                    // traffic, retry next tick.
                    shared.health_failure();
                    continue;
                }
            }
        }
        // Health probe: a no-payload world switch into the secure world.
        if shared.fault.on_world_switch() {
            shared.health_failure();
        } else {
            shared.health_success();
        }
    }
}

// ---------------------------------------------------------------------------
// The engine.
// ---------------------------------------------------------------------------

/// A running serving session. Submit requests with [`ServeEngine::submit`],
/// then call [`ServeEngine::shutdown`] to drain and collect the
/// [`ServeReport`].
pub struct ServeEngine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
    mt_spec: ModelSpec,
    mr_spec: ModelSpec,
}

impl ServeEngine {
    /// Starts the runtime around a deployed two-branch model: loads `M_T`
    /// into the secure world (through the fault plan — a scripted
    /// exhaustion is retried with backoff), runs one synchronous health
    /// probe so a scripted dead TEE is degraded from the first request, and
    /// spawns the worker, consumer and supervisor threads.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] for inconsistent configuration and
    /// [`CoreError::Tee`] when the secure branch cannot be loaded within
    /// the retry budget.
    pub fn start(model: &TwoBranchModel, cfg: ServeConfig, fault: FaultPlan) -> Result<Self> {
        cfg.validate()?;
        let mt_spec = model.mt().spec();
        let mr_spec = model.mr().spec();
        // The degraded path must bit-match `predict_int8`, so the fallback
        // clones carry a pre-built int8 snapshot of M_R.
        let mut fallback_template = model.clone();
        fallback_template.quantized_branch()?;

        let mut world = SecureWorld::from_cost_model(&CostModel::raspberry_pi3());
        let mut load_attempt = 0u32;
        loop {
            match fault.load_model(&mut world, &mt_spec, Deployment::SecureBranch) {
                Ok(_) => break,
                Err(e) if load_attempt < cfg.max_send_retries => {
                    std::thread::sleep(backoff_for(&cfg, load_attempt));
                    load_attempt += 1;
                    let _ = e;
                }
                Err(e) => return Err(CoreError::Tee(e)),
            }
        }

        let shared = Arc::new(Shared {
            mt_template: model.mt().clone(),
            align: model.align().to_vec(),
            mt_spec: mt_spec.clone(),
            world: Mutex::new(world),
            fault,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            jobs: Mutex::new(VecDeque::new()),
            jobs_cv: Condvar::new(),
            registry: Mutex::new(HashMap::new()),
            completions: Mutex::new(Vec::new()),
            current: Mutex::new(None),
            health: Mutex::new(HealthState {
                consec_fail: 0,
                consec_ok: 0,
                healthy: true,
            }),
            healthy_flag: AtomicBool::new(true),
            consumer_alive: AtomicBool::new(false),
            closed: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            next_id: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            metrics: Mutex::new(ServeMetrics::default()),
            consumer_handles: Mutex::new(Vec::new()),
            cfg,
        });

        // Synchronous startup probe: with `unhealthy_after == 1` and a
        // total-outage plan, the engine starts in degraded mode instead of
        // burning the first batches on doomed retries.
        if shared.fault.on_world_switch() {
            shared.health_failure();
        } else {
            shared.health_success();
        }

        spawn_consumer(&shared);
        let mut workers = Vec::with_capacity(shared.cfg.ree_workers);
        for w in 0..shared.cfg.ree_workers {
            let s = Arc::clone(&shared);
            let mr = model.mr().clone();
            let fallback = fallback_template.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("tbnet-serve-ree-{w}"))
                    .spawn(move || worker_loop(&s, mr, fallback))
                    .expect("spawn REE worker thread"),
            );
        }
        let s = Arc::clone(&shared);
        let supervisor = std::thread::Builder::new()
            .name("tbnet-serve-supervisor".into())
            .spawn(move || supervisor_loop(&s))
            .expect("spawn supervisor thread");

        Ok(ServeEngine {
            shared,
            workers,
            supervisor: Some(supervisor),
            mt_spec,
            mr_spec,
        })
    }

    /// Submits a single-sample request with the configured default
    /// deadline. See [`ServeEngine::submit_with_deadline`].
    ///
    /// # Errors
    ///
    /// See [`ServeEngine::submit_with_deadline`].
    pub fn submit(&self, image: &Tensor) -> Result<u64> {
        self.submit_with_deadline(image, self.shared.cfg.default_deadline)
    }

    /// Submits a single-sample request (`[C, H, W]` or `[1, C, H, W]`)
    /// that must complete within `deadline`. Returns the request id; the
    /// terminal [`Outcome`] arrives in the shutdown report. A queue past
    /// its high-water mark sheds the request immediately (it still counts
    /// as admitted and gets its [`Outcome::Shed`]).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] after shutdown began or for a
    /// non-single-sample shape.
    pub fn submit_with_deadline(&self, image: &Tensor, deadline: Duration) -> Result<u64> {
        if self.shared.closed.load(Ordering::Acquire) {
            return Err(CoreError::InvalidConfig {
                field: "submit",
                reason: "the engine is shutting down".into(),
            });
        }
        let image = match image.dims() {
            [c, h, w] => {
                let mut t = Tensor::zeros(&[1, *c, *h, *w]);
                t.as_mut_slice().copy_from_slice(image.as_slice());
                t
            }
            [1, _, _, _] => image.clone(),
            dims => {
                return Err(CoreError::InvalidConfig {
                    field: "submit",
                    reason: format!("expected [C,H,W] or [1,C,H,W], got {dims:?}"),
                })
            }
        };
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let now = Instant::now();
        lock(&self.shared.registry).insert(
            id,
            Pending {
                submitted: now,
                deadline: now + deadline,
                requeues: 0,
            },
        );
        self.shared.admitted.fetch_add(1, Ordering::Relaxed);
        let depth = lock(&self.shared.queue).len();
        if depth >= self.shared.cfg.queue_high_water {
            self.shared.complete(id, Terminal::Shed);
            return Ok(id);
        }
        lock(&self.shared.queue).push_back(Job { id, image });
        self.shared.queue_cv.notify_one();
        Ok(id)
    }

    /// Whether the supervisor currently trusts the TEE.
    pub fn is_healthy(&self) -> bool {
        self.shared.is_healthy()
    }

    /// Requests still in flight (admitted, no terminal outcome yet).
    pub fn in_flight(&self) -> usize {
        lock(&self.shared.registry).len()
    }

    /// Closes admission, drains every in-flight request to a terminal
    /// outcome (force-expiring any survivor of the
    /// [`ServeConfig::drain_timeout`] hang guard), stops all threads and
    /// returns the session report.
    pub fn shutdown(mut self) -> ServeReport {
        let shared = &self.shared;
        shared.closed.store(true, Ordering::Release);
        let drain_deadline = Instant::now() + shared.cfg.drain_timeout;
        while !lock(&shared.registry).is_empty() {
            if Instant::now() > drain_deadline {
                let ids: Vec<u64> = lock(&shared.registry).keys().copied().collect();
                let forced = ids.len() as u64;
                for id in ids {
                    shared.complete(id, Terminal::Expired);
                }
                lock(&shared.metrics).forced_expired += forced;
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        shared.stop.store(true, Ordering::Release);
        shared.queue_cv.notify_all();
        shared.jobs_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        if let Some(handle) = self.supervisor.take() {
            let _ = handle.join();
        }
        let consumers: Vec<JoinHandle<()>> = lock(&shared.consumer_handles).drain(..).collect();
        for handle in consumers {
            let _ = handle.join();
        }

        let completions = lock(&shared.completions).clone();
        let metrics = lock(&shared.metrics).clone();
        let mut counts = OutcomeCounts {
            admitted: shared.admitted.load(Ordering::Relaxed),
            ..OutcomeCounts::default()
        };
        for c in &completions {
            match c.outcome {
                Outcome::Answered { .. } => counts.answered += 1,
                Outcome::Degraded { .. } => counts.degraded += 1,
                Outcome::Shed => counts.shed += 1,
                Outcome::Expired => counts.expired += 1,
            }
        }
        let batches = metrics.batches.max(1) as f64;
        let stages = MeasuredStages {
            ree_s: metrics.ree_ns as f64 / 1e9 / batches,
            tee_s: metrics.tee_ns as f64 / 1e9 / batches,
            transfer_s: metrics.transfer_ns as f64 / 1e9 / batches,
            merge_s: metrics.merge_ns as f64 / 1e9 / batches,
            switch_s: 0.0,
        };
        let stage_ns = metrics.ree_ns + metrics.tee_ns + metrics.transfer_ns + metrics.merge_ns;
        let measured_overlap = if metrics.makespan_ns == 0 {
            1.0
        } else {
            stage_ns as f64 / metrics.makespan_ns as f64
        };
        ServeReport {
            completions,
            counts,
            mean_batch: if metrics.batches == 0 {
                0.0
            } else {
                metrics.batch_samples as f64 / metrics.batches as f64
            },
            stages,
            measured_overlap,
            faults: shared.fault.counts(),
            metrics,
        }
    }

    /// The deployed secure-branch architecture (for simulator validation).
    pub fn mt_spec(&self) -> &ModelSpec {
        &self.mt_spec
    }

    /// The deployed rich-branch architecture (for simulator validation).
    pub fn mr_spec(&self) -> &ModelSpec {
        &self.mr_spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation_rejects_zeroes() {
        let cfg = ServeConfig {
            ree_workers: 0,
            ..ServeConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = ServeConfig {
            max_batch: 0,
            ..ServeConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = ServeConfig {
            probe_interval: Duration::ZERO,
            ..ServeConfig::default()
        };
        assert!(cfg.validate().is_err());
        assert!(ServeConfig::default().validate().is_ok());
        assert!(ServeConfig::fast_test().validate().is_ok());
    }

    #[test]
    fn backoff_is_monotone_and_capped() {
        let cfg = ServeConfig {
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(20),
            ..ServeConfig::default()
        };
        let seq: Vec<Duration> = (0..10).map(|a| backoff_for(&cfg, a)).collect();
        assert!(seq.windows(2).all(|w| w[0] <= w[1]), "monotone: {seq:?}");
        assert_eq!(seq[0], Duration::from_millis(1));
        assert_eq!(seq[1], Duration::from_millis(2));
        assert_eq!(seq[9], Duration::from_millis(20), "capped");
        // Huge attempt numbers must not overflow.
        assert_eq!(backoff_for(&cfg, 40), Duration::from_millis(20));
    }

    #[test]
    fn batch_concat_lays_rows_out_contiguously() {
        let mut a = Tensor::zeros(&[1, 2, 2, 2]);
        a.as_mut_slice()
            .iter_mut()
            .enumerate()
            .for_each(|(i, v)| *v = i as f32);
        let mut b = Tensor::zeros(&[1, 2, 2, 2]);
        b.as_mut_slice()
            .iter_mut()
            .enumerate()
            .for_each(|(i, v)| *v = 100.0 + i as f32);
        let jobs = vec![Job { id: 0, image: a }, Job { id: 1, image: b }];
        let batch = concat_batch(&jobs);
        assert_eq!(batch.dims(), &[2, 2, 2, 2]);
        assert_eq!(batch.as_slice()[0], 0.0);
        assert_eq!(batch.as_slice()[8], 100.0);
        assert_eq!(batch.as_slice()[15], 107.0);
    }
}
