//! Batch-level parallelism for inference-style loops.
//!
//! Evaluation, attack scoring and transfer soft-labeling all walk a dataset
//! in independent fixed-size batches. [`parallel_eval`] splits the batch
//! sequence across the persistent worker pool in [`tbnet_tensor::par`],
//! giving each worker its own clone of the model (forward passes mutate
//! layer caches, so sharing one model is not an option). Training, whose
//! steps *do* depend on each other, parallelizes within a step instead —
//! see [`crate::dp_train`] for the shard-synchronized SGD engine that
//! shares the same pool.
//!
//! Determinism: the batch boundaries are identical to the sequential loop's
//! and per-batch results are folded in batch order, so the returned mean is
//! the same regardless of worker count.

use std::ops::Range;

use tbnet_nn::metrics::RunningMean;
use tbnet_tensor::par;

use crate::Result;

/// Evaluates `data_len` items in `chunk`-sized batches across worker
/// threads, returning the weighted mean of the per-batch values.
///
/// `eval_batch(model, range)` must compute one batch's `(value, weight)` —
/// typically (accuracy, batch length). Each worker gets a private clone of
/// `model`.
///
/// # Errors
///
/// Propagates the first batch error (in batch order).
pub fn parallel_eval<M, F>(model: &M, data_len: usize, chunk: usize, eval_batch: F) -> Result<f32>
where
    M: Clone + Send + Sync,
    F: Fn(&mut M, Range<usize>) -> Result<(f32, usize)> + Sync,
{
    let chunk = chunk.max(1);
    let n_batches = data_len.div_ceil(chunk);
    let per_part = batches_per_worker(n_batches);
    let results: Vec<Result<Vec<(f32, usize)>>> = par::map_parts(n_batches, per_part, |batches| {
        let mut worker = model.clone();
        batches
            .map(|b| {
                let lo = b * chunk;
                let hi = (lo + chunk).min(data_len);
                eval_batch(&mut worker, lo..hi)
            })
            .collect()
    });
    let mut mean = RunningMean::new();
    for part in results {
        for (value, weight) in part? {
            mean.add(value, weight);
        }
    }
    Ok(mean.mean())
}

/// Floor on batches per worker: cloning a model and spawning a thread is
/// only worth several batches of work.
fn batches_per_worker(n_batches: usize) -> usize {
    n_batches.div_ceil(par::max_threads()).max(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_weighted_mean() {
        // "Model" is a counter; value is the first index of the range.
        let acc = parallel_eval(&0u32, 103, 10, |_m, r| Ok((r.start as f32, r.len()))).unwrap();
        let mut mean = RunningMean::new();
        let mut start = 0;
        while start < 103 {
            let end = (start + 10).min(103);
            mean.add(start as f32, end - start);
            start = end;
        }
        assert!((acc - mean.mean()).abs() < 1e-6);
    }

    #[test]
    fn empty_dataset_is_zero() {
        let acc = parallel_eval(&(), 0, 10, |_m, _r| Ok((1.0, 1))).unwrap();
        assert_eq!(acc, 0.0);
    }

    #[test]
    fn propagates_errors() {
        let r = parallel_eval(&(), 10, 3, |_m, r| {
            if r.start >= 3 {
                Err(crate::CoreError::InvalidConfig {
                    field: "test",
                    reason: "boom".into(),
                })
            } else {
                Ok((1.0, r.len()))
            }
        });
        assert!(r.is_err());
    }
}
