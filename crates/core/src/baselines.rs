//! Prior-art defense baselines and the attacks that defeat them (paper §2.3).
//!
//! The paper motivates TBNet by the weaknesses of earlier TEE deployments:
//!
//! * **full-TEE** — the whole victim inside the TEE. Secure but slow and
//!   memory-hungry (this is the paper's Table 3 / Fig. 3 baseline, priced by
//!   [`tbnet_tee::simulate_baseline`]).
//! * **layer partitioning (DarkneTZ-style)** — only the last layers run in
//!   the TEE; the first layers sit in REE memory *in plaintext*, and the
//!   boundary feature maps plus the final predictions cross the world
//!   boundary in both directions. [`LayerPartition`] models this deployment
//!   and [`substitute_model_attack`] implements §2.3's attack against it:
//!   the attacker keeps the exposed layers verbatim, observes the deployed
//!   model's predictions for inputs of their choosing, and trains substitute
//!   layers for the hidden part.
//!
//! The `baselines` benchmark binary runs this attack side by side with the
//! direct-use attack on TBNet, reproducing the paper's qualitative claim:
//! partition defenses leak enough to reconstruct the victim; TBNet does not.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use tbnet_data::ImageDataset;
use tbnet_models::{ChainNet, ModelSpec};
use tbnet_nn::{Layer, Mode};
use tbnet_tee::{simulate_partition, CostModel, LatencyReport, MemoryReport};

use crate::train::{evaluate, train_victim, TrainConfig};
use crate::{CoreError, Result};

/// A DarkneTZ-style deployment: victim units `..split` in the REE
/// (plaintext), units `split..` plus the classifier in the TEE.
#[derive(Debug, Clone)]
pub struct LayerPartition {
    victim: ChainNet,
    split: usize,
}

impl LayerPartition {
    /// Creates a partition deployment.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when `split` is 0 (nothing
    /// protected ≠ a defense) or ≥ the unit count (that is the full-TEE
    /// baseline, not a partition).
    pub fn new(victim: ChainNet, split: usize) -> Result<Self> {
        let n = victim.units().len();
        if split == 0 || split >= n {
            return Err(CoreError::InvalidConfig {
                field: "split",
                reason: format!("must be in 1..{n} (got {split})"),
            });
        }
        Ok(LayerPartition { victim, split })
    }

    /// The partition point: units `..split` are exposed.
    pub fn split(&self) -> usize {
        self.split
    }

    /// The deployed model (functionally identical to the victim — layer
    /// partitioning does not change the computation).
    pub fn victim(&self) -> &ChainNet {
        &self.victim
    }

    /// Test accuracy of the deployment (== the victim's).
    ///
    /// # Errors
    ///
    /// Returns shape errors when the dataset disagrees with the model.
    pub fn accuracy(&mut self, test: &ImageDataset) -> Result<f32> {
        evaluate(&mut self.victim, test)
    }

    /// The architecture of the TEE-resident tail.
    ///
    /// # Errors
    ///
    /// Propagates spec validation errors.
    pub fn tee_spec(&self) -> Result<ModelSpec> {
        Ok(self.victim.spec().tail(self.split)?)
    }

    /// Secure-memory footprint of the TEE tail.
    ///
    /// # Errors
    ///
    /// Propagates spec validation errors.
    pub fn memory(&self) -> Result<MemoryReport> {
        Ok(MemoryReport::for_baseline(&self.tee_spec()?)?)
    }

    /// Latency of the partition deployment under a cost model.
    ///
    /// # Errors
    ///
    /// Propagates cost-model/spec validation errors.
    pub fn latency(&self, cost: &CostModel) -> Result<LatencyReport> {
        Ok(simulate_partition(&self.victim.spec(), self.split, cost)?)
    }

    /// What the attacker reads from REE memory: the exposed leading units,
    /// verbatim, including well-trained weights (§2.3's core criticism).
    pub fn exposed_units(&self) -> Vec<&tbnet_models::Unit> {
        self.victim.units().iter().take(self.split).collect()
    }
}

/// Result of the substitute-model attack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SubstituteAttackOutcome {
    /// Fraction of training inputs the attacker had.
    pub data_fraction: f64,
    /// How many of those inputs were used.
    pub samples_used: usize,
    /// Test accuracy of the attacker's reconstructed model.
    pub accuracy: f32,
}

/// §2.3's attack on layer partitioning: keep the exposed REE layers, query
/// the deployed model for labels on attacker-held inputs, and train fresh
/// substitute layers for the TEE part.
///
/// The attacker needs **no ground-truth labels** — the deployed model's own
/// predictions (returned to the REE after every inference) are the training
/// signal, which is precisely the leakage TBNet's one-way design removes.
///
/// # Errors
///
/// Returns configuration or shape errors.
pub fn substitute_model_attack(
    partition: &LayerPartition,
    inputs: &ImageDataset,
    test: &ImageDataset,
    data_fraction: f64,
    cfg: &TrainConfig,
) -> Result<SubstituteAttackOutcome> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x0dab_b1e5);
    let subset = inputs.stratified_fraction(data_fraction, &mut rng);
    let samples_used = subset.len();

    // Query phase: the deployed model labels the attacker's inputs.
    let mut oracle = partition.victim.clone();
    let mut pseudo_labels = Vec::with_capacity(subset.len());
    let chunk = 64usize;
    let mut start = 0;
    while start < subset.len() {
        let end = (start + chunk).min(subset.len());
        let idx: Vec<usize> = (start..end).collect();
        let batch = subset.gather(&idx);
        let logits = oracle.forward(&batch.images, Mode::Eval)?;
        let (n, c) = (logits.dim(0), logits.dim(1));
        for ni in 0..n {
            let row = &logits.as_slice()[ni * c..(ni + 1) * c];
            let mut best = 0;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            pseudo_labels.push(best);
        }
        start = end;
    }
    let query_set = ImageDataset::new(subset.images().clone(), pseudo_labels, inputs.classes())?;

    // Reconstruction phase: exposed layers verbatim, fresh tail + head.
    let mut substitute = partition.victim.clone();
    let mut init_rng = StdRng::seed_from_u64(cfg.seed ^ 0x50b0);
    reinitialize_tail(&mut substitute, partition.split, &mut init_rng);
    if !query_set.is_empty() {
        train_victim(&mut substitute, &query_set, cfg)?;
    }
    let accuracy = evaluate(&mut substitute, test)?;
    Ok(SubstituteAttackOutcome {
        data_fraction,
        samples_used,
        accuracy,
    })
}

/// Re-initializes units `split..` and the classifier with fresh weights —
/// the part of the model the attacker could not read.
fn reinitialize_tail(net: &mut ChainNet, split: usize, rng: &mut StdRng) {
    use tbnet_tensor::{init, Tensor};
    let n = net.units().len();
    for i in split..n {
        let unit = &mut net.units_mut()[i];
        let dims = unit.conv().weight().value.dims().to_vec();
        unit.conv_mut().set_weight(init::kaiming_normal(&dims, rng));
        let c = unit.out_channels();
        unit.bn_mut()
            .set_channel_state(
                Tensor::ones(&[c]),
                Tensor::zeros(&[c]),
                Tensor::zeros(&[c]),
                Tensor::ones(&[c]),
            )
            .expect("channel counts are consistent by construction");
    }
    let (out_f, in_f) = (
        net.head().linear().out_features(),
        net.head().linear().in_features(),
    );
    net.head_mut()
        .linear_mut()
        .set_weight(init::xavier_uniform(&[out_f, in_f], rng));
    net.head_mut()
        .linear_mut()
        .bias_mut()
        .set_value(Tensor::zeros(&[out_f]));
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbnet_data::{DatasetKind, SyntheticCifar};
    use tbnet_models::vgg;

    fn setup() -> (ChainNet, SyntheticCifar) {
        let data = SyntheticCifar::generate(
            DatasetKind::Cifar10Like
                .config()
                .with_classes(4)
                .with_train_per_class(20)
                .with_test_per_class(8)
                .with_size(8, 8)
                .with_noise_std(0.6),
        );
        let spec = vgg::vgg_from_stages("v", &[(8, 1), (8, 1), (8, 1)], 4, 3, (8, 8));
        let mut rng = StdRng::seed_from_u64(0);
        let mut victim = ChainNet::from_spec(&spec, &mut rng).unwrap();
        train_victim(&mut victim, data.train(), &TrainConfig::paper_scaled(6)).unwrap();
        (victim, data)
    }

    #[test]
    fn partition_validation() {
        let (victim, _) = setup();
        assert!(LayerPartition::new(victim.clone(), 0).is_err());
        assert!(LayerPartition::new(victim.clone(), 3).is_err());
        let p = LayerPartition::new(victim, 2).unwrap();
        assert_eq!(p.split(), 2);
        assert_eq!(p.exposed_units().len(), 2);
    }

    #[test]
    fn partition_deployment_keeps_victim_accuracy() {
        let (victim, data) = setup();
        let victim_acc = {
            let mut v = victim.clone();
            evaluate(&mut v, data.test()).unwrap()
        };
        let mut p = LayerPartition::new(victim, 1).unwrap();
        assert_eq!(p.accuracy(data.test()).unwrap(), victim_acc);
    }

    #[test]
    fn partition_tee_footprint_shrinks_with_split() {
        let (victim, _) = setup();
        let p1 = LayerPartition::new(victim.clone(), 1).unwrap();
        let p2 = LayerPartition::new(victim, 2).unwrap();
        assert!(p2.memory().unwrap().total() < p1.memory().unwrap().total());
    }

    #[test]
    fn partition_latency_prices() {
        let (victim, _) = setup();
        let p = LayerPartition::new(victim, 2).unwrap();
        let lat = p.latency(&CostModel::raspberry_pi3()).unwrap();
        assert!(lat.total_s > 0.0);
        assert_eq!(lat.switches, 2);
    }

    #[test]
    fn substitute_attack_reconstructs_partitioned_victim() {
        let (victim, data) = setup();
        let victim_acc = {
            let mut v = victim.clone();
            evaluate(&mut v, data.test()).unwrap()
        };
        // Expose 2 of 3 units; the attacker rebuilds the last unit + head
        // from the deployment's own predictions.
        let p = LayerPartition::new(victim, 2).unwrap();
        let out = substitute_model_attack(
            &p,
            data.train(),
            data.test(),
            1.0,
            &TrainConfig::paper_scaled(6),
        )
        .unwrap();
        assert_eq!(out.samples_used, data.train().len());
        assert!(
            out.accuracy > victim_acc * 0.7,
            "substitute attack only reached {} of victim {}",
            out.accuracy,
            victim_acc
        );
    }

    #[test]
    fn substitute_attack_with_no_data_is_chance() {
        let (victim, data) = setup();
        let p = LayerPartition::new(victim, 2).unwrap();
        let out = substitute_model_attack(
            &p,
            data.train(),
            data.test(),
            0.0,
            &TrainConfig::paper_scaled(2),
        )
        .unwrap();
        assert_eq!(out.samples_used, 0);
        // Fresh tail, no training: near chance.
        assert!(out.accuracy < 0.6);
    }
}
