//! Analysis utilities for §5.2 of the paper (Fig. 4): the distribution of
//! BatchNorm scales in the two branches after knowledge transfer.
//!
//! The paper observes that `M_R`'s γ end up smaller on average than `M_T`'s —
//! evidence that the transfer moved the important channels' weight into the
//! secure branch.

use serde::{Deserialize, Serialize};

use tbnet_models::ChainNet;

use crate::TwoBranchModel;

/// A fixed-width histogram over non-negative values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Inclusive lower bound of the first bin.
    pub lo: f32,
    /// Exclusive upper bound of the last bin.
    pub hi: f32,
    /// Per-bin counts.
    pub counts: Vec<u32>,
}

impl Histogram {
    /// Builds a histogram with `bins` equal-width bins spanning
    /// `[min(values), max(values)]`. Empty input yields a single empty bin.
    pub fn build(values: &[f32], bins: usize) -> Self {
        let bins = bins.max(1);
        if values.is_empty() {
            return Histogram {
                lo: 0.0,
                hi: 1.0,
                counts: vec![0; bins],
            };
        }
        let lo = values.iter().copied().fold(f32::INFINITY, f32::min);
        let mut hi = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        if hi <= lo {
            hi = lo + 1e-6;
        }
        let width = (hi - lo) / bins as f32;
        let mut counts = vec![0u32; bins];
        for &v in values {
            let b = (((v - lo) / width) as usize).min(bins - 1);
            counts[b] += 1;
        }
        Histogram { lo, hi, counts }
    }

    /// Total number of observations.
    pub fn total(&self) -> u32 {
        self.counts.iter().sum()
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f32 {
        let width = (self.hi - self.lo) / self.counts.len() as f32;
        self.lo + width * (i as f32 + 0.5)
    }
}

/// Summary statistics of one branch's γ magnitudes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GammaSummary {
    /// Number of γ values (total channels).
    pub count: usize,
    /// Mean |γ|.
    pub mean: f32,
    /// Median |γ|.
    pub median: f32,
    /// Fraction of channels with |γ| below 0.1 (near-prunable mass).
    pub frac_small: f32,
}

impl GammaSummary {
    /// Computes the summary from raw magnitudes.
    pub fn from_values(values: &[f32]) -> Self {
        if values.is_empty() {
            return GammaSummary {
                count: 0,
                mean: 0.0,
                median: 0.0,
                frac_small: 0.0,
            };
        }
        let mut sorted: Vec<f32> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let mean = sorted.iter().sum::<f32>() / sorted.len() as f32;
        let median = sorted[sorted.len() / 2];
        let frac_small = sorted.iter().filter(|&&v| v < 0.1).count() as f32 / sorted.len() as f32;
        GammaSummary {
            count: sorted.len(),
            mean,
            median,
            frac_small,
        }
    }
}

/// All |γ| magnitudes of a network's BatchNorm layers.
pub fn gamma_magnitudes(net: &ChainNet) -> Vec<f32> {
    net.units()
        .iter()
        .flat_map(|u| u.bn().gamma().value.as_slice().iter().map(|g| g.abs()))
        .collect()
}

/// Fig. 4's data: per-branch γ distributions after knowledge transfer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BnDistributionReport {
    /// Summary of `M_R`'s scales.
    pub mr: GammaSummary,
    /// Summary of `M_T`'s scales.
    pub mt: GammaSummary,
    /// Histogram of `M_R`'s scales.
    pub mr_hist: Histogram,
    /// Histogram of `M_T`'s scales.
    pub mt_hist: Histogram,
}

/// Builds the Fig. 4 report for a two-branch model.
pub fn bn_weight_report(model: &TwoBranchModel, bins: usize) -> BnDistributionReport {
    let mr = gamma_magnitudes(model.mr());
    let mt = gamma_magnitudes(model.mt());
    BnDistributionReport {
        mr: GammaSummary::from_values(&mr),
        mt: GammaSummary::from_values(&mt),
        mr_hist: Histogram::build(&mr, bins),
        mt_hist: Histogram::build(&mt, bins),
    }
}

/// How far the public `M_R` architecture has diverged from the secret `M_T`
/// architecture — the quantity rollback finalization (step ⑥) exists to make
/// non-zero. An attacker inspecting `M_R` learns the *wrong* channel widths
/// for every diverged unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DivergenceReport {
    /// Per-unit channel surplus of `M_R` over `M_T` (`mr − mt`, never
    /// negative after a valid rollback).
    pub per_unit_surplus: Vec<isize>,
    /// Total channels in `M_R`.
    pub mr_channels: usize,
    /// Total channels in `M_T`.
    pub mt_channels: usize,
    /// Number of units whose widths differ.
    pub diverged_units: usize,
}

impl DivergenceReport {
    /// Fraction of units whose public width misleads the attacker.
    pub fn diverged_fraction(&self) -> f32 {
        if self.per_unit_surplus.is_empty() {
            0.0
        } else {
            self.diverged_units as f32 / self.per_unit_surplus.len() as f32
        }
    }
}

/// Computes the architectural divergence between the deployed branches.
pub fn architecture_divergence(model: &TwoBranchModel) -> DivergenceReport {
    let per_unit_surplus: Vec<isize> = model
        .mr()
        .units()
        .iter()
        .zip(model.mt().units())
        .map(|(r, t)| r.out_channels() as isize - t.out_channels() as isize)
        .collect();
    let mr_channels = model.mr().units().iter().map(|u| u.out_channels()).sum();
    let mt_channels = model.mt().units().iter().map(|u| u.out_channels()).sum();
    let diverged_units = per_unit_surplus.iter().filter(|&&d| d != 0).count();
    DivergenceReport {
        per_unit_surplus,
        mr_channels,
        mt_channels,
        diverged_units,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tbnet_models::vgg;
    use tbnet_tensor::Tensor;

    #[test]
    fn histogram_bins_and_totals() {
        let h = Histogram::build(&[0.0, 0.1, 0.2, 0.9, 1.0], 5);
        assert_eq!(h.total(), 5);
        assert_eq!(h.counts.len(), 5);
        assert_eq!(h.counts[0], 2); // 0.0 and 0.1 fall into [0, 0.2)
        assert_eq!(h.counts[4], 2); // 0.9 and 1.0 (max clamps to last bin)
        assert!(h.bin_center(0) > 0.0 && h.bin_center(0) < 0.2);
    }

    #[test]
    fn histogram_handles_degenerate_inputs() {
        let empty = Histogram::build(&[], 4);
        assert_eq!(empty.total(), 0);
        let constant = Histogram::build(&[0.5; 10], 3);
        assert_eq!(constant.total(), 10);
    }

    #[test]
    fn summary_statistics() {
        let s = GammaSummary::from_values(&[0.05, 0.05, 0.2, 0.3, 1.0]);
        assert_eq!(s.count, 5);
        assert!((s.mean - 0.32).abs() < 1e-6);
        assert_eq!(s.median, 0.2);
        assert!((s.frac_small - 0.4).abs() < 1e-6);
        let empty = GammaSummary::from_values(&[]);
        assert_eq!(empty.count, 0);
    }

    #[test]
    fn report_reads_both_branches() {
        let mut rng = StdRng::seed_from_u64(0);
        let spec = vgg::vgg_from_stages("v", &[(4, 1)], 3, 2, (8, 8));
        let victim = tbnet_models::ChainNet::from_spec(&spec, &mut rng).unwrap();
        let mut tb = crate::TwoBranchModel::from_victim(&victim, &mut rng).unwrap();
        tb.mr_mut().units_mut()[0].bn_mut().gamma_mut().value =
            Tensor::from_slice(&[0.1, 0.1, 0.1, 0.1]);
        tb.mt_mut().units_mut()[0].bn_mut().gamma_mut().value =
            Tensor::from_slice(&[0.9, 0.9, 0.9, 0.9]);
        let report = bn_weight_report(&tb, 4);
        assert!(report.mr.mean < report.mt.mean);
        assert_eq!(report.mr_hist.total(), 4);
        assert_eq!(report.mt_hist.total(), 4);
    }

    #[test]
    fn divergence_zero_before_rollback() {
        let mut rng = StdRng::seed_from_u64(2);
        let spec = vgg::vgg_from_stages("v", &[(4, 1), (6, 1)], 3, 2, (8, 8));
        let victim = tbnet_models::ChainNet::from_spec(&spec, &mut rng).unwrap();
        let tb = crate::TwoBranchModel::from_victim(&victim, &mut rng).unwrap();
        let d = architecture_divergence(&tb);
        assert_eq!(d.diverged_units, 0);
        assert_eq!(d.diverged_fraction(), 0.0);
        assert_eq!(d.mr_channels, d.mt_channels);
        assert_eq!(d.per_unit_surplus, vec![0, 0]);
    }

    #[test]
    fn divergence_counts_width_differences() {
        use crate::pruning::prune_two_branch_once;
        let mut rng = StdRng::seed_from_u64(3);
        let spec = vgg::vgg_from_stages("v", &[(6, 1), (6, 1)], 3, 2, (8, 8));
        let victim = tbnet_models::ChainNet::from_spec(&spec, &mut rng).unwrap();
        let mut tb = crate::TwoBranchModel::from_victim(&victim, &mut rng).unwrap();
        let prev_mr = tb.mr().clone();
        let prev_book = tb.mr_book().clone();
        prune_two_branch_once(
            &mut tb,
            &[
                vec![true, false, true, true, true, false],
                vec![true, true, true, true, true, true],
            ],
        )
        .unwrap();
        tb.finalize_with_rollback(prev_mr, prev_book).unwrap();
        let d = architecture_divergence(&tb);
        assert_eq!(d.per_unit_surplus, vec![2, 0]);
        assert_eq!(d.diverged_units, 1);
        assert!((d.diverged_fraction() - 0.5).abs() < 1e-6);
        assert_eq!(d.mr_channels, 12);
        assert_eq!(d.mt_channels, 10);
    }

    #[test]
    fn magnitudes_are_absolute_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let spec = vgg::vgg_from_stages("v", &[(3, 1)], 3, 2, (8, 8));
        let mut net = tbnet_models::ChainNet::from_spec(&spec, &mut rng).unwrap();
        net.units_mut()[0].bn_mut().gamma_mut().value = Tensor::from_slice(&[-0.5, 0.25, -1.0]);
        let mags = gamma_magnitudes(&net);
        assert_eq!(mags, vec![0.5, 0.25, 1.0]);
    }
}
