//! Channel-identity tracking and gather/scatter kernels for the REE→TEE
//! merge.
//!
//! During iterative pruning both branches shrink in lockstep, so the merge is
//! a plain elementwise add. After rollback finalization `M_R` is one pruning
//! iteration *wider* than `M_T`, and the TEE must select the subset of
//! incoming `M_R` channels that corresponds to its own surviving channels
//! (paper §3.5: "`M_T` identifies and extracts the specific channel that
//! aligns with their pre-stored feature map"). [`ChannelBook`] tracks original
//! channel identities through pruning so that selection is exact, and
//! [`gather_channels`] / [`scatter_add_channels`] are the forward/backward
//! kernels of the selection.

use tbnet_tensor::{Tensor, TensorError};

use crate::{CoreError, Result};

/// Tracks, per unit, which *original* channel indices survive in a branch.
///
/// Freshly initialized branches carry identity books; every applied pruning
/// mask filters them. Because both branches start identical and are pruned
/// with shared masks, `M_T`'s surviving set is always a subset of `M_R`'s
/// set from any earlier iteration — which is what makes rollback alignment
/// well-defined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelBook {
    per_unit: Vec<Vec<usize>>,
}

impl ChannelBook {
    /// An identity book for a model whose units have the given channel
    /// counts.
    pub fn identity(unit_channels: &[usize]) -> Self {
        ChannelBook {
            per_unit: unit_channels.iter().map(|&c| (0..c).collect()).collect(),
        }
    }

    /// Rebuilds a book from raw per-unit channel-id lists (persistence).
    pub fn from_parts(per_unit: Vec<Vec<usize>>) -> Self {
        ChannelBook { per_unit }
    }

    /// Number of units tracked.
    pub fn len(&self) -> usize {
        self.per_unit.len()
    }

    /// `true` when no units are tracked.
    pub fn is_empty(&self) -> bool {
        self.per_unit.is_empty()
    }

    /// The surviving original channel ids of `unit`.
    pub fn unit(&self, unit: usize) -> &[usize] {
        &self.per_unit[unit]
    }

    /// Applies a keep-mask to one unit's channel list.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::PruningError`] when the mask length disagrees
    /// with the current channel count.
    pub fn apply_mask(&mut self, unit: usize, keep: &[bool]) -> Result<()> {
        let current = &self.per_unit[unit];
        if keep.len() != current.len() {
            return Err(CoreError::PruningError {
                reason: format!(
                    "mask length {} does not match {} channels of unit {unit}",
                    keep.len(),
                    current.len()
                ),
            });
        }
        self.per_unit[unit] = current
            .iter()
            .zip(keep)
            .filter_map(|(&id, &k)| k.then_some(id))
            .collect();
        Ok(())
    }

    /// Computes, for every unit, the positions of `self`'s channels within
    /// `wider`'s channel list — the alignment map the TEE uses to extract the
    /// matching incoming channels.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::AlignmentError`] if some channel of `self` does
    /// not appear in `wider` (i.e. `self` is not a subset).
    pub fn alignment_into(&self, wider: &ChannelBook) -> Result<Vec<Vec<usize>>> {
        if self.len() != wider.len() {
            return Err(CoreError::BranchMismatch {
                reason: format!(
                    "channel books track {} vs {} units",
                    self.len(),
                    wider.len()
                ),
            });
        }
        let mut maps = Vec::with_capacity(self.len());
        for (unit, (narrow, wide)) in self.per_unit.iter().zip(&wider.per_unit).enumerate() {
            let mut map = Vec::with_capacity(narrow.len());
            for &id in narrow {
                let pos = wide.iter().position(|&w| w == id).ok_or_else(|| {
                    CoreError::AlignmentError {
                        unit,
                        reason: format!("channel id {id} missing from the wider branch"),
                    }
                })?;
                map.push(pos);
            }
            maps.push(map);
        }
        Ok(maps)
    }
}

/// Selects channels `idx` from a `[N, C, H, W]` tensor, producing
/// `[N, idx.len(), H, W]`.
///
/// # Errors
///
/// Returns rank/index errors for inconsistent arguments.
pub fn gather_channels(t: &Tensor, idx: &[usize]) -> Result<Tensor> {
    if t.rank() != 4 {
        return Err(CoreError::Tensor(TensorError::RankMismatch {
            expected: 4,
            got: t.rank(),
            op: "gather_channels",
        }));
    }
    let (n, c, h, w) = (t.dim(0), t.dim(1), t.dim(2), t.dim(3));
    if let Some(&bad) = idx.iter().find(|&&i| i >= c) {
        return Err(CoreError::Tensor(TensorError::InvalidGeometry {
            reason: format!("channel index {bad} out of range for {c} channels"),
        }));
    }
    let plane = h * w;
    let mut out = Tensor::zeros(&[n, idx.len(), h, w]);
    let src = t.as_slice();
    let dst = out.as_mut_slice();
    for ni in 0..n {
        for (k, &ci) in idx.iter().enumerate() {
            let s = (ni * c + ci) * plane;
            let d = (ni * idx.len() + k) * plane;
            dst[d..d + plane].copy_from_slice(&src[s..s + plane]);
        }
    }
    Ok(out)
}

/// Adds `src: [N, K, H, W]` into channels `idx` of `dst: [N, C, H, W]` — the
/// adjoint of [`gather_channels`], used in the backward pass of the merge.
///
/// # Errors
///
/// Returns rank/shape/index errors for inconsistent arguments.
pub fn scatter_add_channels(dst: &mut Tensor, src: &Tensor, idx: &[usize]) -> Result<()> {
    if dst.rank() != 4 || src.rank() != 4 {
        return Err(CoreError::Tensor(TensorError::RankMismatch {
            expected: 4,
            got: if dst.rank() != 4 {
                dst.rank()
            } else {
                src.rank()
            },
            op: "scatter_add_channels",
        }));
    }
    let (n, c, h, w) = (dst.dim(0), dst.dim(1), dst.dim(2), dst.dim(3));
    if src.dims() != [n, idx.len(), h, w] {
        return Err(CoreError::Tensor(TensorError::ShapeMismatch {
            expected: vec![n, idx.len(), h, w],
            got: src.dims().to_vec(),
            op: "scatter_add_channels",
        }));
    }
    if let Some(&bad) = idx.iter().find(|&&i| i >= c) {
        return Err(CoreError::Tensor(TensorError::InvalidGeometry {
            reason: format!("channel index {bad} out of range for {c} channels"),
        }));
    }
    let plane = h * w;
    let dv = dst.as_mut_slice();
    let sv = src.as_slice();
    for ni in 0..n {
        for (k, &ci) in idx.iter().enumerate() {
            let d = (ni * c + ci) * plane;
            let s = (ni * idx.len() + k) * plane;
            for (x, &y) in dv[d..d + plane].iter_mut().zip(&sv[s..s + plane]) {
                *x += y;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_book() {
        let book = ChannelBook::identity(&[3, 2]);
        assert_eq!(book.len(), 2);
        assert!(!book.is_empty());
        assert_eq!(book.unit(0), &[0, 1, 2]);
        assert_eq!(book.unit(1), &[0, 1]);
    }

    #[test]
    fn masks_filter_ids() {
        let mut book = ChannelBook::identity(&[4]);
        book.apply_mask(0, &[true, false, true, false]).unwrap();
        assert_eq!(book.unit(0), &[0, 2]);
        book.apply_mask(0, &[false, true]).unwrap();
        assert_eq!(book.unit(0), &[2]);
        assert!(book.apply_mask(0, &[true, true]).is_err());
    }

    #[test]
    fn alignment_positions() {
        let mut narrow = ChannelBook::identity(&[5]);
        let mut wide = ChannelBook::identity(&[5]);
        // wide keeps {0,2,3,4}; narrow keeps {2,4}.
        wide.apply_mask(0, &[true, false, true, true, true])
            .unwrap();
        narrow
            .apply_mask(0, &[false, false, true, false, true])
            .unwrap();
        let maps = narrow.alignment_into(&wide).unwrap();
        assert_eq!(maps[0], vec![1, 3]); // positions of ids 2 and 4 in wide
    }

    #[test]
    fn alignment_rejects_non_subset() {
        let mut narrow = ChannelBook::identity(&[3]);
        let mut wide = ChannelBook::identity(&[3]);
        narrow.apply_mask(0, &[true, false, false]).unwrap();
        wide.apply_mask(0, &[false, true, true]).unwrap();
        assert!(matches!(
            narrow.alignment_into(&wide),
            Err(CoreError::AlignmentError { unit: 0, .. })
        ));
    }

    #[test]
    fn alignment_rejects_unit_count_mismatch() {
        let a = ChannelBook::identity(&[2]);
        let b = ChannelBook::identity(&[2, 2]);
        assert!(a.alignment_into(&b).is_err());
    }

    #[test]
    fn gather_selects_channels() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[1, 3, 2, 2]).unwrap();
        let g = gather_channels(&t, &[2, 0]).unwrap();
        assert_eq!(g.dims(), &[1, 2, 2, 2]);
        assert_eq!(g.as_slice(), &[8.0, 9.0, 10.0, 11.0, 0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn scatter_is_adjoint_of_gather() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let x = tbnet_tensor::init::randn(&[2, 4, 3, 3], 1.0, &mut rng);
        let idx = [3usize, 1];
        let y = tbnet_tensor::init::randn(&[2, 2, 3, 3], 1.0, &mut rng);
        // <gather(x), y> == <x, scatter(y)>
        let gx = gather_channels(&x, &idx).unwrap();
        let lhs: f32 = gx
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let mut sc = Tensor::zeros(x.dims());
        scatter_add_channels(&mut sc, &y, &idx).unwrap();
        let rhs: f32 = sc
            .as_slice()
            .iter()
            .zip(x.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-3);
    }

    #[test]
    fn gather_scatter_validation() {
        let t = Tensor::zeros(&[1, 2, 2, 2]);
        assert!(gather_channels(&t, &[5]).is_err());
        assert!(gather_channels(&Tensor::zeros(&[4]), &[0]).is_err());
        let mut dst = Tensor::zeros(&[1, 2, 2, 2]);
        let src = Tensor::zeros(&[1, 1, 2, 2]);
        assert!(scatter_add_channels(&mut dst, &src, &[9]).is_err());
        assert!(scatter_add_channels(&mut dst, &src, &[0, 1]).is_err());
        let bad = Tensor::zeros(&[2]);
        assert!(scatter_add_channels(&mut dst, &bad, &[0]).is_err());
    }

    #[test]
    fn scatter_accumulates_on_repeated_index() {
        let mut dst = Tensor::zeros(&[1, 2, 1, 1]);
        let src = Tensor::from_vec(vec![1.0, 2.0], &[1, 2, 1, 1]).unwrap();
        scatter_add_channels(&mut dst, &src, &[0, 0]).unwrap();
        assert_eq!(dst.as_slice(), &[3.0, 0.0]);
    }
}
