//! Steps ③–⑤ — iterative two-branch pruning (paper Alg. 1).
//!
//! Every iteration:
//!
//! 1. extract the BatchNorm scales of both branches and form **composite
//!    weights** `|γ_R| + |γ_T|` per channel (step ④) — both branches feed the
//!    merged feature map, so importance must be judged jointly;
//! 2. sort the composite weights, place the threshold at the configured
//!    pruning ratio, and build a keep-mask (Alg. 1 lines 5–11). Channels of
//!    residually-connected units share a *pruning group* and therefore one
//!    mask, keeping skip additions shape-consistent;
//! 3. apply the mask to **both** branches simultaneously — convolution
//!    rows/columns, BN channel state and classifier columns (line 12);
//! 4. fine-tune the pruned two-branch model and compare the accuracy drop
//!    against the budget `θ_drop`; revert and stop when exceeded.
//!
//! The iteration history keeps the pre-iteration `M_R` snapshot that rollback
//! finalization (step ⑥) later restores.

use serde::{Deserialize, Serialize};

use tbnet_data::ImageDataset;
use tbnet_models::{ChainNet, HeadSpec};
use tbnet_tensor::{par, Tensor};

use crate::channels::ChannelBook;
use crate::dp_train::WorkerPolicy;
use crate::transfer::{evaluate_two_branch, train_two_branch_with_workers, TransferConfig};
use crate::{CoreError, Result, TwoBranchModel};

/// Configuration of the iterative pruning loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PruneConfig {
    /// Fraction of all channels removed per iteration (paper: 0.10).
    pub ratio: f32,
    /// Minimum channels every pruning group keeps (prevents disconnection).
    pub min_channels: usize,
    /// θ_drop — the acceptable accuracy drop relative to the reference.
    pub drop_budget: f32,
    /// Upper bound on pruning iterations (safety stop).
    pub max_iterations: usize,
    /// Fine-tuning settings applied after each pruning step.
    pub finetune: TransferConfig,
}

impl PruneConfig {
    /// The paper's configuration (10 % per iteration) with experiment-scale
    /// fine-tuning.
    pub fn paper_scaled(finetune_epochs: usize) -> Self {
        PruneConfig {
            ratio: 0.10,
            min_channels: 2,
            drop_budget: 0.05,
            max_iterations: 8,
            finetune: TransferConfig::paper_scaled(finetune_epochs),
        }
    }

    pub(crate) fn validate(&self) -> Result<()> {
        if !(0.0..1.0).contains(&self.ratio) {
            return Err(CoreError::InvalidConfig {
                field: "ratio",
                reason: format!("must be in [0, 1), got {}", self.ratio),
            });
        }
        if self.min_channels == 0 {
            return Err(CoreError::InvalidConfig {
                field: "min_channels",
                reason: "must be at least 1".into(),
            });
        }
        if self.drop_budget < 0.0 {
            return Err(CoreError::InvalidConfig {
                field: "drop_budget",
                reason: "must be non-negative".into(),
            });
        }
        Ok(())
    }
}

/// Per-iteration record of the pruning loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PruneIteration {
    /// 0-based iteration index.
    pub iteration: usize,
    /// Total channels across all units after this iteration.
    pub channels_after: usize,
    /// Two-branch test accuracy after fine-tuning.
    pub accuracy: f32,
    /// Whether the iteration was kept (accuracy within budget).
    pub kept: bool,
}

/// Result of [`iterative_prune`]: the loop history plus the rollback state
/// for step ⑥.
#[derive(Debug, Clone)]
pub struct PruneOutcome {
    /// Per-iteration records (including the final rejected one, if any).
    pub history: Vec<PruneIteration>,
    /// `M_R` as it was before the most recent *kept* iteration — the state
    /// rollback finalization restores.
    pub rollback_mr: ChainNet,
    /// The matching channel book.
    pub rollback_mr_book: ChannelBook,
    /// Two-branch accuracy of the final (kept) model.
    pub final_accuracy: f32,
}

/// Step ③/④ — per-unit composite channel scores `|γ_R| + |γ_T|`.
///
/// # Errors
///
/// Returns [`CoreError::BranchMismatch`] if the branches disagree on channel
/// counts (they cannot, unless externally rewritten).
pub fn composite_scores(model: &TwoBranchModel) -> Result<Vec<Vec<f32>>> {
    let mr = model.mr().units();
    let mt = model.mt().units();
    let mut scores = Vec::with_capacity(mt.len());
    for (i, (ru, tu)) in mr.iter().zip(mt).enumerate() {
        let gr = ru.bn().gamma().value.as_slice();
        let gt = tu.bn().gamma().value.as_slice();
        if gr.len() != gt.len() {
            return Err(CoreError::BranchMismatch {
                reason: format!(
                    "unit {i}: M_R has {} channels, M_T has {}",
                    gr.len(),
                    gt.len()
                ),
            });
        }
        scores.push(gr.iter().zip(gt).map(|(a, b)| a.abs() + b.abs()).collect());
    }
    Ok(scores)
}

/// Alg. 1 lines 5–11 — builds per-unit keep-masks from composite scores.
///
/// Units sharing a pruning group receive one mask computed from the mean of
/// their scores; the global threshold sits at the `ratio` quantile of all
/// effective scores. Every group keeps at least `min_channels` channels.
///
/// # Errors
///
/// Returns [`CoreError::PruningError`] when grouped units disagree on
/// channel counts.
pub fn build_masks(
    model: &TwoBranchModel,
    scores: &[Vec<f32>],
    ratio: f32,
    min_channels: usize,
) -> Result<Vec<Vec<bool>>> {
    let units = model.mt().units();
    let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for (i, u) in units.iter().enumerate() {
        groups.entry(u.spec().group).or_default().push(i);
    }
    // Group-mean scores keep grouped channels comparable with free channels.
    let mut group_scores: std::collections::BTreeMap<usize, Vec<f32>> = Default::default();
    for (&g, members) in &groups {
        let c = scores[members[0]].len();
        for &m in members {
            if scores[m].len() != c {
                return Err(CoreError::PruningError {
                    reason: format!(
                        "group {g}: units disagree on channel count ({} vs {})",
                        scores[m].len(),
                        c
                    ),
                });
            }
        }
        let mut mean = vec![0.0f32; c];
        for &m in members {
            for (s, &v) in mean.iter_mut().zip(&scores[m]) {
                *s += v;
            }
        }
        for s in &mut mean {
            *s /= members.len() as f32;
        }
        group_scores.insert(g, mean);
    }
    // Global threshold at the ratio quantile of per-unit effective scores
    // (Alg. 1 line 5: T = sort(BN)[N·p]).
    let mut all: Vec<f32> = Vec::new();
    for u in units.iter() {
        all.extend_from_slice(&group_scores[&u.spec().group]);
    }
    all.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let cut = ((all.len() as f32) * ratio).floor() as usize;
    let threshold = if cut == 0 {
        f32::NEG_INFINITY
    } else {
        all[(cut - 1).min(all.len() - 1)]
    };

    // Keep strictly-above-threshold channels (Alg. 1 line 8), topped up to
    // the per-group floor by score.
    let mut group_masks: std::collections::BTreeMap<usize, Vec<bool>> = Default::default();
    for (&g, gs) in &group_scores {
        let mut mask: Vec<bool> = gs.iter().map(|&s| s > threshold).collect();
        let kept = mask.iter().filter(|&&k| k).count();
        let floor = min_channels.min(gs.len());
        if kept < floor {
            let mut order: Vec<usize> = (0..gs.len()).collect();
            order.sort_by(|&a, &b| {
                gs[b]
                    .partial_cmp(&gs[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            mask = vec![false; gs.len()];
            for &i in order.iter().take(floor) {
                mask[i] = true;
            }
        }
        group_masks.insert(g, mask);
    }
    Ok(units
        .iter()
        .map(|u| group_masks[&u.spec().group].clone())
        .collect())
}

fn kept_indices(mask: &[bool]) -> Vec<usize> {
    mask.iter()
        .enumerate()
        .filter_map(|(i, &k)| k.then_some(i))
        .collect()
}

fn select_1d(t: &Tensor, keep: &[usize]) -> Tensor {
    let src = t.as_slice();
    Tensor::from_slice(&keep.iter().map(|&i| src[i]).collect::<Vec<f32>>())
}

fn select_conv_out(w: &Tensor, keep: &[usize]) -> Result<Tensor> {
    let (in_c, kh, kw) = (w.dim(1), w.dim(2), w.dim(3));
    let row = in_c * kh * kw;
    let src = w.as_slice();
    let mut data = Vec::with_capacity(keep.len() * row);
    for &o in keep {
        data.extend_from_slice(&src[o * row..(o + 1) * row]);
    }
    Ok(Tensor::from_vec(data, &[keep.len(), in_c, kh, kw])?)
}

fn select_conv_in(w: &Tensor, keep: &[usize]) -> Result<Tensor> {
    let (o, in_c, kh, kw) = (w.dim(0), w.dim(1), w.dim(2), w.dim(3));
    let plane = kh * kw;
    let src = w.as_slice();
    let mut data = Vec::with_capacity(o * keep.len() * plane);
    for oi in 0..o {
        for &ci in keep {
            let base = (oi * in_c + ci) * plane;
            data.extend_from_slice(&src[base..base + plane]);
        }
    }
    Ok(Tensor::from_vec(data, &[o, keep.len(), kh, kw])?)
}

fn select_linear_in(w: &Tensor, keep: &[usize]) -> Result<Tensor> {
    let (o, in_f) = (w.dim(0), w.dim(1));
    let src = w.as_slice();
    let mut data = Vec::with_capacity(o * keep.len());
    for oi in 0..o {
        for &ci in keep {
            data.push(src[oi * in_f + ci]);
        }
    }
    Ok(Tensor::from_vec(data, &[o, keep.len()])?)
}

/// Applies keep-masks to one branch in place: convolution out/in channels,
/// BN channel state and classifier input features (Alg. 1 line 12).
///
/// # Errors
///
/// Returns [`CoreError::PruningError`] when mask lengths disagree with the
/// live layer shapes or a mask would empty a unit.
#[allow(clippy::needless_range_loop)] // mask index i also addresses unit i+1
pub fn apply_masks_to_chain(net: &mut ChainNet, masks: &[Vec<bool>]) -> Result<()> {
    let n = net.units().len();
    if masks.len() != n {
        return Err(CoreError::PruningError {
            reason: format!("got {} masks for {n} units", masks.len()),
        });
    }
    // Final spatial size, needed to slice a FlattenLinear head. Channel
    // pruning does not change spatial dims, so the pre-prune trace is valid.
    let spec = net.spec();
    let trace = spec.trace()?;
    let last_hw = trace.last().expect("non-empty chain").out_hw;

    for i in 0..n {
        let keep_out = kept_indices(&masks[i]);
        if keep_out.is_empty() {
            return Err(CoreError::PruningError {
                reason: format!("mask would remove every channel of unit {i}"),
            });
        }
        {
            let unit = &mut net.units_mut()[i];
            if masks[i].len() != unit.out_channels() {
                return Err(CoreError::PruningError {
                    reason: format!(
                        "unit {i}: mask length {} vs {} channels",
                        masks[i].len(),
                        unit.out_channels()
                    ),
                });
            }
            let new_w = select_conv_out(&unit.conv().weight().value, &keep_out)?;
            unit.conv_mut().set_weight(new_w);
            let gamma = select_1d(&unit.bn().gamma().value, &keep_out);
            let beta = select_1d(&unit.bn().beta().value, &keep_out);
            let rm = select_1d(unit.bn().running_mean(), &keep_out);
            let rv = select_1d(unit.bn().running_var(), &keep_out);
            unit.bn_mut().set_channel_state(gamma, beta, rm, rv)?;
            unit.sync_spec_channels();
        }
        if i + 1 < n {
            let next = &mut net.units_mut()[i + 1];
            // A depthwise successor has no input-channel axis to slice: its
            // weight is `[C, 1, K, K]` and dim 0 is pruned by its own mask
            // (identical to this one — the spec forces a shared group).
            if !next.conv().is_depthwise() {
                let new_w = select_conv_in(&next.conv().weight().value, &keep_out)?;
                next.conv_mut().set_weight(new_w);
            }
        }
    }

    // Classifier input features follow the last unit's surviving channels.
    let keep_last = kept_indices(&masks[n - 1]);
    let head_kind = net.head().kind();
    let linear = net.head_mut().linear_mut();
    let new_w = match head_kind {
        HeadSpec::GapLinear => select_linear_in(&linear.weight().value, &keep_last)?,
        HeadSpec::FlattenLinear => {
            let area = last_hw.0 * last_hw.1;
            let feature_keep: Vec<usize> = keep_last
                .iter()
                .flat_map(|&c| (0..area).map(move |s| c * area + s))
                .collect();
            select_linear_in(&linear.weight().value, &feature_keep)?
        }
    };
    linear.set_weight(new_w);
    Ok(())
}

/// Applies one set of masks to both branches and their channel books,
/// resetting the merge alignment to identity (the branches stay congruent
/// during iterative pruning).
///
/// # Errors
///
/// See [`apply_masks_to_chain`].
pub fn prune_two_branch_once(model: &mut TwoBranchModel, masks: &[Vec<bool>]) -> Result<()> {
    apply_masks_to_chain(model.mr_mut(), masks)?;
    apply_masks_to_chain(model.mt_mut(), masks)?;
    for (i, mask) in masks.iter().enumerate() {
        model.mr_book_mut().apply_mask(i, mask)?;
        model.mt_book_mut().apply_mask(i, mask)?;
    }
    model.reset_identity_alignment();
    Ok(())
}

/// Total surviving channels across all of `M_T`'s units.
pub fn total_channels(model: &TwoBranchModel) -> usize {
    model.mt().units().iter().map(|u| u.out_channels()).sum()
}

/// Steps ③–⑤ — the full iterative prune/fine-tune/check loop of Alg. 1.
///
/// `reference_acc` is the accuracy the drop budget is measured against
/// (the victim's, per the paper's framing). The per-iteration fine-tune
/// runs through the generic data-parallel engine with
/// `tbnet_tensor::par::max_threads()` workers (see
/// [`iterative_prune_with_workers`] for an explicit count).
///
/// # Errors
///
/// Returns configuration errors, or propagated training/shape errors.
pub fn iterative_prune(
    model: &mut TwoBranchModel,
    train: &ImageDataset,
    test: &ImageDataset,
    reference_acc: f32,
    cfg: &PruneConfig,
) -> Result<PruneOutcome> {
    iterative_prune_with_workers(model, train, test, reference_acc, cfg, par::max_threads())
}

/// [`iterative_prune`] with an explicit [`WorkerPolicy`] for the fine-tune
/// phase (a plain `usize` converts to [`WorkerPolicy::Fixed`]): after every
/// mask application, the pruned two-branch model is fine-tuned through
/// [`crate::dp_train::DataParallelTrainer`], which shards each minibatch
/// across the resolved number of replicas with synchronized BatchNorm
/// statistics. The policy is re-resolved on every iteration against the
/// *post-prune* branch widths, so [`WorkerPolicy::Auto`] backs off to fewer
/// workers as the model narrows and synchronization starts to dominate.
/// Pruned channels stay pruned: training never resizes layers, so the
/// channel books, merge alignment and branch widths are invariant across
/// data-parallel fine-tune steps (the parity suite asserts this).
///
/// # Errors
///
/// Returns configuration errors, or propagated training/shape errors.
pub fn iterative_prune_with_workers(
    model: &mut TwoBranchModel,
    train: &ImageDataset,
    test: &ImageDataset,
    reference_acc: f32,
    cfg: &PruneConfig,
    workers: impl Into<WorkerPolicy>,
) -> Result<PruneOutcome> {
    cfg.validate()?;
    let workers = workers.into();
    let mut history = Vec::new();
    let mut rollback_mr = model.mr().clone();
    let mut rollback_mr_book = model.mr_book().clone();
    let mut final_accuracy = evaluate_two_branch(model, test)?;

    for iteration in 0..cfg.max_iterations {
        let snapshot = model.clone();
        let scores = composite_scores(model)?;
        let masks = build_masks(model, &scores, cfg.ratio, cfg.min_channels)?;
        let before = total_channels(model);
        prune_two_branch_once(model, &masks)?;
        let after = total_channels(model);
        if after == before {
            // Min-channel floors block further progress.
            *model = snapshot;
            break;
        }
        train_two_branch_with_workers(model, train, &cfg.finetune, workers)?;
        let acc = evaluate_two_branch(model, test)?;
        let kept = (reference_acc - acc) <= cfg.drop_budget;
        history.push(PruneIteration {
            iteration,
            channels_after: after,
            accuracy: acc,
            kept,
        });
        if !kept {
            // Alg. 1: revert to the prior state that satisfied the budget.
            *model = snapshot;
            break;
        }
        rollback_mr = snapshot.mr().clone();
        rollback_mr_book = snapshot.mr_book().clone();
        final_accuracy = acc;
    }

    Ok(PruneOutcome {
        history,
        rollback_mr,
        rollback_mr_book,
        final_accuracy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transfer::train_two_branch;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tbnet_data::{DatasetKind, SyntheticCifar};
    use tbnet_models::{resnet, vgg, ChainNet};
    use tbnet_nn::{Layer, Mode};
    use tbnet_tensor::init;

    fn tb_from(spec: &tbnet_models::ModelSpec, seed: u64) -> TwoBranchModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let victim = ChainNet::from_spec(spec, &mut rng).unwrap();
        TwoBranchModel::from_victim(&victim, &mut rng).unwrap()
    }

    fn eval_forward(net: &mut ChainNet, x: &Tensor) -> Tensor {
        net.forward(x, Mode::Eval).unwrap()
    }

    #[test]
    fn composite_scores_add_both_gammas() {
        let spec = vgg::vgg_from_stages("v", &[(4, 1)], 3, 2, (8, 8));
        let mut tb = tb_from(&spec, 0);
        tb.mr_mut().units_mut()[0].bn_mut().gamma_mut().value =
            Tensor::from_slice(&[0.5, -0.25, 1.0, 0.0]);
        tb.mt_mut().units_mut()[0].bn_mut().gamma_mut().value =
            Tensor::from_slice(&[0.1, 0.25, -1.0, 0.0]);
        let s = composite_scores(&tb).unwrap();
        assert_eq!(s[0], vec![0.6, 0.5, 2.0, 0.0]);
    }

    #[test]
    fn masks_prune_lowest_scores() {
        let spec = vgg::vgg_from_stages("v", &[(4, 1), (4, 1)], 3, 2, (8, 8));
        let tb = tb_from(&spec, 1);
        let scores = vec![vec![0.1, 0.9, 0.8, 0.7], vec![0.6, 0.05, 0.5, 0.4]];
        // ratio 0.25 of 8 channels → threshold is the 2nd-smallest (0.1);
        // channels strictly above survive.
        let masks = build_masks(&tb, &scores, 0.25, 1).unwrap();
        assert_eq!(masks[0], vec![false, true, true, true]);
        assert_eq!(masks[1], vec![true, false, true, true]);
    }

    #[test]
    fn zero_ratio_prunes_nothing() {
        let spec = vgg::vgg_from_stages("v", &[(4, 1)], 3, 2, (8, 8));
        let tb = tb_from(&spec, 2);
        let scores = composite_scores(&tb).unwrap();
        let masks = build_masks(&tb, &scores, 0.0, 1).unwrap();
        assert!(masks[0].iter().all(|&k| k));
    }

    #[test]
    fn min_channels_floor_enforced() {
        let spec = vgg::vgg_from_stages("v", &[(4, 1)], 3, 2, (8, 8));
        let tb = tb_from(&spec, 3);
        let scores = vec![vec![0.4, 0.3, 0.2, 0.1]];
        // Aggressive ratio would keep only the top channel; floor keeps 2.
        let masks = build_masks(&tb, &scores, 0.9, 2).unwrap();
        assert_eq!(masks[0], vec![true, true, false, false]);
    }

    #[test]
    fn grouped_units_share_mask() {
        let spec = resnet::resnet_from_stages("r", &[4], 1, 3, 2, (8, 8));
        let tb = tb_from(&spec, 4);
        let scores = composite_scores(&tb).unwrap();
        let masks = build_masks(&tb, &scores, 0.3, 1).unwrap();
        // Stem (unit 0) and block conv2 (unit 2) share group 0 → same mask.
        assert_eq!(masks[0], masks[2]);
    }

    #[test]
    fn pruning_zero_importance_channels_preserves_outputs() {
        // Channels whose γ = β = 0 contribute nothing; removing them must
        // leave eval outputs numerically unchanged.
        let spec = vgg::vgg_from_stages("v", &[(5, 1), (4, 1)], 3, 2, (8, 8));
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = ChainNet::from_spec(&spec, &mut rng).unwrap();
        for &ch in &[1usize, 3] {
            net.units_mut()[0].bn_mut().gamma_mut().value.as_mut_slice()[ch] = 0.0;
            net.units_mut()[0].bn_mut().beta_mut().value.as_mut_slice()[ch] = 0.0;
        }
        let x = init::randn(&[2, 2, 8, 8], 1.0, &mut rng);
        let before = eval_forward(&mut net, &x);
        let masks = vec![
            vec![true, false, true, false, true],
            vec![true, true, true, true],
        ];
        apply_masks_to_chain(&mut net, &masks).unwrap();
        assert_eq!(net.units()[0].out_channels(), 3);
        assert_eq!(net.units()[1].in_channels(), 3);
        let after = eval_forward(&mut net, &x);
        for (a, b) in before.as_slice().iter().zip(after.as_slice()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn pruning_last_unit_slices_flatten_head_correctly() {
        let spec = vgg::vgg_from_stages("v", &[(4, 1)], 3, 2, (8, 8));
        let mut rng = StdRng::seed_from_u64(6);
        let mut net = ChainNet::from_spec(&spec, &mut rng).unwrap();
        net.units_mut()[0].bn_mut().gamma_mut().value.as_mut_slice()[2] = 0.0;
        net.units_mut()[0].bn_mut().beta_mut().value.as_mut_slice()[2] = 0.0;
        let x = init::randn(&[2, 2, 8, 8], 1.0, &mut rng);
        let before = eval_forward(&mut net, &x);
        apply_masks_to_chain(&mut net, &[vec![true, true, false, true]]).unwrap();
        let after = eval_forward(&mut net, &x);
        for (a, b) in before.as_slice().iter().zip(after.as_slice()) {
            assert!((a - b).abs() < 1e-4);
        }
        assert_eq!(net.head().linear().in_features(), 3 * 4 * 4);
    }

    #[test]
    fn gap_head_sliced_too() {
        let spec = resnet::resnet_from_stages("r", &[4], 1, 3, 2, (8, 8));
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = ChainNet::from_spec(&spec, &mut rng).unwrap();
        let masks = vec![
            vec![true, true, false, true],
            vec![true, false, true, true],
            vec![true, true, false, true], // shares group with unit 0
        ];
        apply_masks_to_chain(&mut net, &masks).unwrap();
        assert_eq!(net.head().linear().in_features(), 3);
        let y = eval_forward(&mut net, &Tensor::zeros(&[1, 2, 8, 8]));
        assert_eq!(y.dims(), &[1, 3]);
    }

    #[test]
    fn bad_masks_rejected() {
        let spec = vgg::vgg_from_stages("v", &[(4, 1)], 3, 2, (8, 8));
        let mut rng = StdRng::seed_from_u64(8);
        let mut net = ChainNet::from_spec(&spec, &mut rng).unwrap();
        assert!(apply_masks_to_chain(&mut net, &[vec![false; 4]]).is_err());
        assert!(apply_masks_to_chain(&mut net, &[vec![true; 3]]).is_err());
        assert!(apply_masks_to_chain(&mut net, &[]).is_err());
    }

    #[test]
    fn prune_two_branch_keeps_branches_congruent() {
        let spec = vgg::vgg_from_stages("v", &[(6, 1), (6, 1)], 3, 2, (8, 8));
        let mut tb = tb_from(&spec, 9);
        let masks = vec![
            vec![true, false, true, true, false, true],
            vec![false, true, true, true, true, false],
        ];
        prune_two_branch_once(&mut tb, &masks).unwrap();
        assert_eq!(tb.mr().units()[0].out_channels(), 4);
        assert_eq!(tb.mt().units()[0].out_channels(), 4);
        assert_eq!(tb.mr_book().unit(0), &[0, 2, 3, 5]);
        assert_eq!(tb.mt_book().unit(1), &[1, 2, 3, 4]);
        let y = tb.predict(&Tensor::zeros(&[1, 2, 8, 8])).unwrap();
        assert_eq!(y.dims(), &[1, 3]);
    }

    #[test]
    fn iterative_prune_shrinks_and_keeps_history() {
        let data = SyntheticCifar::generate(
            DatasetKind::Cifar10Like
                .config()
                .with_classes(3)
                .with_train_per_class(10)
                .with_test_per_class(5)
                .with_size(8, 8)
                .with_noise_std(0.2),
        );
        let spec = vgg::vgg_from_stages("v", &[(8, 1), (8, 1)], 3, 3, (8, 8));
        let mut tb = tb_from(&spec, 10);
        train_two_branch(&mut tb, data.train(), &TransferConfig::paper_scaled(3)).unwrap();
        let ref_acc = evaluate_two_branch(&mut tb, data.test()).unwrap();
        let before = total_channels(&tb);
        let cfg = PruneConfig {
            ratio: 0.2,
            min_channels: 2,
            drop_budget: 1.0,
            max_iterations: 3,
            finetune: TransferConfig::paper_scaled(2),
        };
        let outcome = iterative_prune(&mut tb, data.train(), data.test(), ref_acc, &cfg).unwrap();
        assert!(total_channels(&tb) < before);
        assert!(!outcome.history.is_empty());
        assert!(outcome.history.iter().all(|h| h.kept));
        let rb_channels: usize = outcome
            .rollback_mr
            .units()
            .iter()
            .map(|u| u.out_channels())
            .sum();
        assert!(rb_channels >= total_channels(&tb));
    }

    #[test]
    fn iterative_prune_reverts_on_budget_violation() {
        let data = SyntheticCifar::generate(
            DatasetKind::Cifar10Like
                .config()
                .with_classes(3)
                .with_train_per_class(8)
                .with_test_per_class(4)
                .with_size(8, 8)
                .with_noise_std(0.2),
        );
        let spec = vgg::vgg_from_stages("v", &[(8, 1)], 3, 3, (8, 8));
        let mut tb = tb_from(&spec, 11);
        train_two_branch(&mut tb, data.train(), &TransferConfig::paper_scaled(3)).unwrap();
        let before = total_channels(&tb);
        // Reference accuracy of 2.0 is unachievable, so the first iteration
        // is rejected and reverted.
        let cfg = PruneConfig {
            ratio: 0.3,
            min_channels: 1,
            drop_budget: 0.0,
            max_iterations: 3,
            finetune: TransferConfig::paper_scaled(1),
        };
        let outcome = iterative_prune(&mut tb, data.train(), data.test(), 2.0, &cfg).unwrap();
        assert_eq!(total_channels(&tb), before);
        assert_eq!(outcome.history.len(), 1);
        assert!(!outcome.history[0].kept);
    }

    #[test]
    fn config_validation() {
        let mut cfg = PruneConfig::paper_scaled(1);
        cfg.ratio = 1.0;
        assert!(cfg.validate().is_err());
        let mut cfg = PruneConfig::paper_scaled(1);
        cfg.min_channels = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = PruneConfig::paper_scaled(1);
        cfg.drop_budget = -0.1;
        assert!(cfg.validate().is_err());
        assert!(PruneConfig::paper_scaled(1).validate().is_ok());
    }
}
