use std::error::Error;
use std::fmt;

use tbnet_models::ModelError;
use tbnet_nn::NnError;
use tbnet_tee::TeeError;
use tbnet_tensor::TensorError;

/// Error type for the TBNet core pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A tensor kernel failed.
    Tensor(TensorError),
    /// A layer operation failed.
    Nn(NnError),
    /// A model construction/validation failed.
    Model(ModelError),
    /// The TEE substrate reported an error.
    Tee(TeeError),
    /// The two branches are structurally incompatible.
    BranchMismatch {
        /// Description of the incompatibility.
        reason: String,
    },
    /// A channel-alignment map is inconsistent with the tensors it indexes.
    AlignmentError {
        /// Unit index where alignment failed.
        unit: usize,
        /// Description of the inconsistency.
        reason: String,
    },
    /// Pruning could not proceed (e.g. every channel would be removed).
    PruningError {
        /// Description of the failure.
        reason: String,
    },
    /// Saving or loading a checkpoint failed.
    PersistError {
        /// Description of the I/O or encoding failure.
        reason: String,
    },
    /// The pipeline was configured inconsistently.
    InvalidConfig {
        /// Name of the offending field.
        field: &'static str,
        /// Description of the constraint.
        reason: String,
    },
    /// The planner exhausted its search space without finding a candidate
    /// that satisfies the SLO.
    NoFeasiblePlan {
        /// Number of candidate plans explored.
        explored: usize,
        /// Why the tightest candidates still failed.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Tensor(e) => write!(f, "tensor failure: {e}"),
            CoreError::Nn(e) => write!(f, "layer failure: {e}"),
            CoreError::Model(e) => write!(f, "model failure: {e}"),
            CoreError::Tee(e) => write!(f, "tee substrate failure: {e}"),
            CoreError::BranchMismatch { reason } => {
                write!(f, "two-branch structure mismatch: {reason}")
            }
            CoreError::AlignmentError { unit, reason } => {
                write!(f, "channel alignment failed at unit {unit}: {reason}")
            }
            CoreError::PruningError { reason } => write!(f, "pruning failed: {reason}"),
            CoreError::PersistError { reason } => write!(f, "persistence failed: {reason}"),
            CoreError::InvalidConfig { field, reason } => {
                write!(f, "invalid pipeline config `{field}`: {reason}")
            }
            CoreError::NoFeasiblePlan { explored, reason } => {
                write!(f, "no feasible plan in {explored} candidates: {reason}")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Tensor(e) => Some(e),
            CoreError::Nn(e) => Some(e),
            CoreError::Model(e) => Some(e),
            CoreError::Tee(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for CoreError {
    fn from(e: TensorError) -> Self {
        CoreError::Tensor(e)
    }
}

impl From<NnError> for CoreError {
    fn from(e: NnError) -> Self {
        CoreError::Nn(e)
    }
}

impl From<ModelError> for CoreError {
    fn from(e: ModelError) -> Self {
        CoreError::Model(e)
    }
}

impl From<TeeError> for CoreError {
    fn from(e: TeeError) -> Self {
        CoreError::Tee(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e = CoreError::from(TensorError::ZeroSizedParameter { name: "k" });
        assert!(Error::source(&e).is_some());
        let e = CoreError::from(NnError::MissingForwardCache { layer: "x" });
        assert!(Error::source(&e).is_some());
        let e = CoreError::from(ModelError::InvalidSpec { reason: "r".into() });
        assert!(Error::source(&e).is_some());
        let e = CoreError::from(TeeError::UnknownHandle { id: 3 });
        assert!(Error::source(&e).is_some());
        let e = CoreError::BranchMismatch {
            reason: "units".into(),
        };
        assert!(e.to_string().contains("units"));
        assert!(Error::source(&e).is_none());
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
