//! Model persistence: JSON checkpointing of trained networks and finalized
//! two-branch models.
//!
//! The experiment harness trains for minutes per scenario; checkpoints let
//! the table/figure binaries share artifacts and let users audit exactly
//! which weights a deployment shipped. States capture everything inference
//! needs — weights, BatchNorm statistics, channel books and alignment maps —
//! and restoring is validated by prediction-equality tests.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use tbnet_models::{ChainNet, ModelSpec};
use tbnet_tensor::Tensor;

use crate::channels::ChannelBook;
use crate::{CoreError, Result, TwoBranchModel};

/// Serializable state of one conv-BN unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitState {
    /// Convolution weight `[O, I, K, K]`.
    pub conv_weight: Tensor,
    /// BatchNorm scale γ `[O]`.
    pub gamma: Tensor,
    /// BatchNorm offset β `[O]`.
    pub beta: Tensor,
    /// BatchNorm running mean `[O]`.
    pub running_mean: Tensor,
    /// BatchNorm running variance `[O]`.
    pub running_var: Tensor,
}

/// Serializable state of a whole [`ChainNet`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainNetState {
    /// The architecture (reconstructed exactly, including skips/groups).
    pub spec: ModelSpec,
    /// Per-unit weights and statistics.
    pub units: Vec<UnitState>,
    /// Classifier weight `[classes, features]`.
    pub head_weight: Tensor,
    /// Classifier bias `[classes]`.
    pub head_bias: Tensor,
}

impl ChainNetState {
    /// Captures a network's current weights and statistics.
    pub fn capture(net: &ChainNet) -> Self {
        ChainNetState {
            spec: net.spec(),
            units: net
                .units()
                .iter()
                .map(|u| UnitState {
                    conv_weight: u.conv().weight().value.clone(),
                    gamma: u.bn().gamma().value.clone(),
                    beta: u.bn().beta().value.clone(),
                    running_mean: u.bn().running_mean().clone(),
                    running_var: u.bn().running_var().clone(),
                })
                .collect(),
            head_weight: net.head().linear().weight().value.clone(),
            head_bias: net.head().linear().bias().value.clone(),
        }
    }

    /// Rebuilds an executable network from the captured state.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Model`] when the spec fails validation or the
    /// stored tensors disagree with it.
    pub fn restore(&self) -> Result<ChainNet> {
        // Initialize a structurally-correct network, then overwrite weights.
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = ChainNet::from_spec(&self.spec, &mut rng)?;
        if net.units().len() != self.units.len() {
            return Err(CoreError::Model(tbnet_models::ModelError::InvalidSpec {
                reason: format!(
                    "state has {} units, spec builds {}",
                    self.units.len(),
                    net.units().len()
                ),
            }));
        }
        for (unit, state) in net.units_mut().iter_mut().zip(&self.units) {
            if unit.conv().weight().value.dims() != state.conv_weight.dims() {
                return Err(CoreError::Model(tbnet_models::ModelError::InvalidSpec {
                    reason: format!(
                        "stored conv weight {:?} does not match spec {:?}",
                        state.conv_weight.dims(),
                        unit.conv().weight().value.dims()
                    ),
                }));
            }
            unit.conv_mut().set_weight(state.conv_weight.clone());
            unit.bn_mut().set_channel_state(
                state.gamma.clone(),
                state.beta.clone(),
                state.running_mean.clone(),
                state.running_var.clone(),
            )?;
        }
        let expected = net.head().linear().weight().value.dims().to_vec();
        if self.head_weight.dims() != expected {
            return Err(CoreError::Model(tbnet_models::ModelError::InvalidSpec {
                reason: format!(
                    "stored head weight {:?} does not match spec {:?}",
                    self.head_weight.dims(),
                    expected
                ),
            }));
        }
        net.head_mut()
            .linear_mut()
            .set_weight(self.head_weight.clone());
        net.head_mut()
            .linear_mut()
            .bias_mut()
            .set_value(self.head_bias.clone());
        Ok(net)
    }
}

/// Serializable state of a finalized (or in-progress) [`TwoBranchModel`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TwoBranchState {
    /// The unsecured branch.
    pub mr: ChainNetState,
    /// The secure branch.
    pub mt: ChainNetState,
    /// `M_R`'s surviving original channel ids per unit.
    pub mr_book: Vec<Vec<usize>>,
    /// `M_T`'s surviving original channel ids per unit.
    pub mt_book: Vec<Vec<usize>>,
    /// Merge alignment maps (`None` = identity).
    pub align: Vec<Option<Vec<usize>>>,
    /// Whether rollback finalization has run.
    pub finalized: bool,
}

impl TwoBranchState {
    /// Captures a two-branch model.
    pub fn capture(model: &TwoBranchModel) -> Self {
        TwoBranchState {
            mr: ChainNetState::capture(model.mr()),
            mt: ChainNetState::capture(model.mt()),
            mr_book: book_parts(model.mr_book()),
            mt_book: book_parts(model.mt_book()),
            align: model.align().to_vec(),
            finalized: model.is_finalized(),
        }
    }

    /// Rebuilds the two-branch model.
    ///
    /// # Errors
    ///
    /// Returns validation errors when branches or books are inconsistent.
    pub fn restore(&self) -> Result<TwoBranchModel> {
        let mr = self.mr.restore()?;
        let mt = self.mt.restore()?;
        TwoBranchModel::from_parts(
            mr,
            mt,
            ChannelBook::from_parts(self.mr_book.clone()),
            ChannelBook::from_parts(self.mt_book.clone()),
            self.align.clone(),
            self.finalized,
        )
    }
}

fn book_parts(book: &ChannelBook) -> Vec<Vec<usize>> {
    (0..book.len()).map(|i| book.unit(i).to_vec()).collect()
}

/// Saves any serializable state as pretty-printed JSON.
///
/// # Errors
///
/// Returns [`CoreError::PersistError`] on I/O or encoding failure.
pub fn save_json<T: Serialize, P: AsRef<Path>>(value: &T, path: P) -> Result<()> {
    let file = File::create(path.as_ref()).map_err(|e| CoreError::PersistError {
        reason: format!("create {}: {e}", path.as_ref().display()),
    })?;
    serde_json::to_writer(BufWriter::new(file), value).map_err(|e| CoreError::PersistError {
        reason: format!("encode {}: {e}", path.as_ref().display()),
    })
}

/// Loads a serializable state from JSON.
///
/// # Errors
///
/// Returns [`CoreError::PersistError`] on I/O or decoding failure.
pub fn load_json<T: for<'de> Deserialize<'de>, P: AsRef<Path>>(path: P) -> Result<T> {
    let file = File::open(path.as_ref()).map_err(|e| CoreError::PersistError {
        reason: format!("open {}: {e}", path.as_ref().display()),
    })?;
    serde_json::from_reader(BufReader::new(file)).map_err(|e| CoreError::PersistError {
        reason: format!("decode {}: {e}", path.as_ref().display()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tbnet_models::vgg;
    use tbnet_nn::{Layer, Mode};
    use tbnet_tensor::init;

    fn trained_net() -> ChainNet {
        let mut rng = StdRng::seed_from_u64(1);
        let spec = vgg::vgg_from_stages("p", &[(6, 1), (8, 1)], 4, 3, (8, 8));
        ChainNet::from_spec(&spec, &mut rng).unwrap()
    }

    #[test]
    fn chain_net_roundtrip_preserves_predictions() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = trained_net();
        let x = init::randn(&[3, 3, 8, 8], 1.0, &mut rng);
        let before = net.forward(&x, Mode::Eval).unwrap();
        let state = ChainNetState::capture(&net);
        let mut restored = state.restore().unwrap();
        let after = restored.forward(&x, Mode::Eval).unwrap();
        assert_eq!(before.as_slice(), after.as_slice());
    }

    #[test]
    fn restore_rejects_shape_tampering() {
        let net = trained_net();
        let mut state = ChainNetState::capture(&net);
        state.units[0].conv_weight = Tensor::zeros(&[2, 3, 3, 3]);
        // Spec still says 6 channels — mismatch must be caught.
        assert!(state.restore().is_err());
        let mut state = ChainNetState::capture(&net);
        state.head_weight = Tensor::zeros(&[4, 1]);
        assert!(state.restore().is_err());
    }

    #[test]
    fn two_branch_roundtrip_preserves_predictions() {
        let mut rng = StdRng::seed_from_u64(3);
        let victim = trained_net();
        let mut tb = TwoBranchModel::from_victim(&victim, &mut rng).unwrap();
        let x = init::randn(&[2, 3, 8, 8], 1.0, &mut rng);
        let before = tb.predict(&x).unwrap();
        let state = TwoBranchState::capture(&tb);
        let mut restored = state.restore().unwrap();
        let after = restored.predict(&x).unwrap();
        assert_eq!(before.as_slice(), after.as_slice());
        assert_eq!(restored.is_finalized(), tb.is_finalized());
    }

    #[test]
    fn json_file_roundtrip() {
        let net = trained_net();
        let state = ChainNetState::capture(&net);
        let dir = std::env::temp_dir().join("tbnet_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.json");
        save_json(&state, &path).unwrap();
        let loaded: ChainNetState = load_json(&path).unwrap();
        assert_eq!(loaded, state);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        let r: Result<ChainNetState> = load_json("/nonexistent/tbnet.json");
        assert!(matches!(r, Err(CoreError::PersistError { .. })));
    }
}
