//! The two-branch substitution model (paper step ① plus the merge semantics
//! used by every later step).
//!
//! Structure (paper Fig. 1): the unsecured branch `M_R` starts as the victim
//! model (weights included, skip connections stripped for residual victims);
//! the secure branch `M_T` starts as a freshly initialized copy of the
//! victim *architecture* (skips included). Inference interleaves the
//! branches: after unit `i`, `M_R`'s feature map is element-wise added into
//! `M_T`'s feature map, and the sum is the input of `M_T`'s unit `i+1`.
//! Data only ever flows `M_R → M_T`, matching the one-way channel the TEE
//! substrate enforces. The final prediction comes from `M_T`'s classifier.
//!
//! After rollback finalization `M_R` is wider than `M_T`; the merge then
//! gathers the aligned subset of `M_R`'s channels (see
//! [`crate::ChannelBook`]).

use rand::Rng;

use tbnet_models::{accumulate_grad, ChainNet, QuantBranch};
use tbnet_nn::loss::softmax_cross_entropy_scaled;
use tbnet_nn::metrics::accuracy;
use tbnet_nn::optim::Sgd;
use tbnet_nn::{Layer, Mode, Param};
use tbnet_tensor::{backend, ops, BackendKind, Tensor};

use crate::channels::{gather_channels, scatter_add_channels, ChannelBook};
use crate::dp_train::{DpShard, DpTrainable};
use crate::{CoreError, Result};

/// The TBNet two-branch substitution model.
#[derive(Debug, Clone)]
pub struct TwoBranchModel {
    mr: ChainNet,
    mt: ChainNet,
    mr_book: ChannelBook,
    mt_book: ChannelBook,
    /// Per-unit merge alignment: `None` is an identity merge (equal widths);
    /// `Some(idx)` gathers `M_R` channels `idx` before the add.
    align: Vec<Option<Vec<usize>>>,
    /// Cached `M_R` unit-output dims from the last training forward (needed
    /// to scatter merge gradients back).
    r_dims: Vec<Vec<usize>>,
    finalized: bool,
    backend: BackendKind,
    /// Int8 snapshot of `M_R` for [`TwoBranchModel::predict_int8`], built
    /// lazily and dropped whenever `M_R`'s weights or statistics may change
    /// (training forwards, `visit_params`, `mr_mut`, backend switches,
    /// rollback finalization).
    qmr: Option<QuantBranch>,
}

impl TwoBranchModel {
    /// Step ① — two-branch initialization.
    ///
    /// `M_R` clones the victim (architecture, weights and classifier) with
    /// residual skips stripped; `M_T` is a freshly initialized instance of
    /// the full victim architecture.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Model`] when the victim spec fails validation.
    pub fn from_victim<R: Rng + ?Sized>(victim: &ChainNet, rng: &mut R) -> Result<Self> {
        let spec = victim.spec();
        spec.trace()?;
        let mut mr = victim.clone();
        for u in mr.units_mut() {
            u.set_skip_from(None);
        }
        let mt = ChainNet::from_spec(&spec, rng)?;
        let channels: Vec<usize> = spec.units.iter().map(|u| u.out_channels).collect();
        let n = channels.len();
        Ok(TwoBranchModel {
            backend: backend::global_kind(),
            mr,
            mt,
            mr_book: ChannelBook::identity(&channels),
            mt_book: ChannelBook::identity(&channels),
            align: vec![None; n],
            r_dims: vec![Vec::new(); n],
            finalized: false,
            qmr: None,
        })
    }

    /// Reassembles a model from persisted parts, re-validating the branch
    /// and book invariants. Intended for [`crate::persist`]; prefer
    /// [`TwoBranchModel::from_victim`] for construction.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BranchMismatch`] when unit counts disagree or
    /// [`CoreError::AlignmentError`] when an alignment map indexes outside
    /// the branches' channel ranges.
    pub fn from_parts(
        mr: ChainNet,
        mt: ChainNet,
        mr_book: ChannelBook,
        mt_book: ChannelBook,
        align: Vec<Option<Vec<usize>>>,
        finalized: bool,
    ) -> Result<Self> {
        let n = mt.units().len();
        if mr.units().len() != n || mr_book.len() != n || mt_book.len() != n || align.len() != n {
            return Err(CoreError::BranchMismatch {
                reason: format!(
                    "inconsistent part sizes: mr {} units, mt {n}, books {}/{}, align {}",
                    mr.units().len(),
                    mr_book.len(),
                    mt_book.len(),
                    align.len()
                ),
            });
        }
        for (i, (map, (ru, tu))) in align
            .iter()
            .zip(mr.units().iter().zip(mt.units()))
            .enumerate()
        {
            match map {
                None => {
                    if ru.out_channels() != tu.out_channels() {
                        return Err(CoreError::AlignmentError {
                            unit: i,
                            reason: format!(
                                "identity merge with {} vs {} channels",
                                ru.out_channels(),
                                tu.out_channels()
                            ),
                        });
                    }
                }
                Some(idx) => {
                    if idx.len() != tu.out_channels() {
                        return Err(CoreError::AlignmentError {
                            unit: i,
                            reason: format!(
                                "alignment selects {} channels, M_T has {}",
                                idx.len(),
                                tu.out_channels()
                            ),
                        });
                    }
                    if idx.iter().any(|&p| p >= ru.out_channels()) {
                        return Err(CoreError::AlignmentError {
                            unit: i,
                            reason: "alignment indexes past M_R's channels".into(),
                        });
                    }
                }
            }
        }
        Ok(TwoBranchModel {
            backend: backend::global_kind(),
            mr,
            mt,
            mr_book,
            mt_book,
            align,
            r_dims: vec![Vec::new(); n],
            finalized,
            qmr: None,
        })
    }

    /// Re-pins both branches (and the merge arithmetic) to a compute
    /// backend.
    pub fn set_backend(&mut self, kind: BackendKind) {
        self.backend = kind;
        self.mr.set_backend(kind);
        self.mt.set_backend(kind);
        self.qmr = None;
    }

    /// The compute backend the merge and gradient-accumulation arithmetic
    /// runs on (the data-parallel trainer mirrors the backward with it).
    pub fn backend_kind(&self) -> BackendKind {
        self.backend
    }

    /// The unsecured branch `M_R` (attacker-visible in deployment).
    pub fn mr(&self) -> &ChainNet {
        &self.mr
    }

    /// Mutable access to `M_R` (pruning rewrites it). Drops the cached int8
    /// snapshot — the caller may mutate weights through the reference.
    pub fn mr_mut(&mut self) -> &mut ChainNet {
        self.qmr = None;
        &mut self.mr
    }

    /// The secure branch `M_T` (TEE-resident in deployment).
    pub fn mt(&self) -> &ChainNet {
        &self.mt
    }

    /// Mutable access to `M_T`.
    pub fn mt_mut(&mut self) -> &mut ChainNet {
        &mut self.mt
    }

    /// `M_R`'s surviving-channel book.
    pub fn mr_book(&self) -> &ChannelBook {
        &self.mr_book
    }

    /// Mutable access to `M_R`'s channel book (updated by pruning).
    pub fn mr_book_mut(&mut self) -> &mut ChannelBook {
        &mut self.mr_book
    }

    /// `M_T`'s surviving-channel book.
    pub fn mt_book(&self) -> &ChannelBook {
        &self.mt_book
    }

    /// Mutable access to `M_T`'s channel book (updated by pruning).
    pub fn mt_book_mut(&mut self) -> &mut ChannelBook {
        &mut self.mt_book
    }

    /// The per-unit merge alignment maps (`None` = identity).
    pub fn align(&self) -> &[Option<Vec<usize>>] {
        &self.align
    }

    /// Whether rollback finalization has run.
    pub fn is_finalized(&self) -> bool {
        self.finalized
    }

    /// Number of units per branch.
    pub fn unit_count(&self) -> usize {
        self.mt.units().len()
    }

    /// A standalone copy of the unsecured branch — exactly what an attacker
    /// extracts from REE memory under the threat model.
    pub fn extract_unsecured_branch(&self) -> ChainNet {
        self.mr.clone()
    }

    /// Step ⑥ — rollback finalization.
    ///
    /// Replaces `M_R` with its state (and channel book) from *before* the
    /// most recent pruning iteration, making the deployed `M_R` architecture
    /// diverge from `M_T`'s, and computes the channel-alignment maps the TEE
    /// uses to extract matching channels from the wider incoming feature
    /// maps.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::AlignmentError`] / [`CoreError::BranchMismatch`]
    /// when `M_T`'s surviving channels are not a subset of the rolled-back
    /// `M_R`'s.
    pub fn finalize_with_rollback(
        &mut self,
        previous_mr: ChainNet,
        previous_mr_book: ChannelBook,
    ) -> Result<()> {
        if previous_mr.units().len() != self.mt.units().len() {
            return Err(CoreError::BranchMismatch {
                reason: format!(
                    "rolled-back M_R has {} units, M_T has {}",
                    previous_mr.units().len(),
                    self.mt.units().len()
                ),
            });
        }
        let maps = self.mt_book.alignment_into(&previous_mr_book)?;
        self.align = maps
            .into_iter()
            .zip(previous_mr.units().iter().zip(self.mt.units()))
            .map(|(map, (ru, tu))| {
                // Identity merges need no gather.
                let identity = ru.out_channels() == tu.out_channels()
                    && map.iter().enumerate().all(|(i, &p)| i == p);
                (!identity).then_some(map)
            })
            .collect();
        self.mr = previous_mr;
        self.mr_book = previous_mr_book;
        self.finalized = true;
        self.qmr = None;
        Ok(())
    }

    /// Recomputes alignment maps after both books changed in lockstep (used
    /// by pruning, where the branches stay width-identical and alignment
    /// stays identity).
    pub fn reset_identity_alignment(&mut self) {
        self.align = vec![None; self.unit_count()];
    }

    /// Full two-branch forward pass; the logits come from `M_T`'s head.
    ///
    /// # Errors
    ///
    /// Returns shape errors if the branches were rewritten inconsistently.
    #[allow(clippy::needless_range_loop)] // i indexes two branches and the align table
    pub fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if mode.is_train() {
            // Training forwards update BN running statistics, which the int8
            // snapshot bakes in.
            self.qmr = None;
        }
        let n = self.unit_count();
        let mut merged_outs: Vec<Tensor> = Vec::with_capacity(n);
        let mut r = input.clone();
        let mut m = input.clone();
        for i in 0..n {
            let r_out = self.mr.units_mut()[i].forward(&r, None, mode)?;
            if mode.is_train() {
                self.r_dims[i] = r_out.dims().to_vec();
            }
            let skip = self.mt.units()[i]
                .spec()
                .skip_from
                .map(|j| merged_outs[j].clone());
            let t_out = self.mt.units_mut()[i].forward(&m, skip.as_ref(), mode)?;
            let r_sel = match &self.align[i] {
                None => r_out.clone(),
                Some(idx) => gather_channels(&r_out, idx)?,
            };
            let merged =
                self.backend
                    .imp()
                    .add(&t_out, &r_sel)
                    .map_err(|e| CoreError::BranchMismatch {
                        reason: format!("merge at unit {i} failed: {e}"),
                    })?;
            merged_outs.push(merged.clone());
            r = r_out;
            m = merged;
        }
        Ok(self.mt.head_mut().forward(&m, mode)?)
    }

    /// Convenience inference wrapper (eval mode).
    ///
    /// # Errors
    ///
    /// See [`TwoBranchModel::forward`].
    pub fn predict(&mut self, input: &Tensor) -> Result<Tensor> {
        self.forward(input, Mode::Eval)
    }

    /// Inference fast path: both branches run BN-folded packed convolutions
    /// with fused bias/ReLU epilogues, `M_T` additionally fuses the
    /// two-branch merge into its conv epilogue whenever its unit has no
    /// pooling, and pooling runs index-free. Equivalent to
    /// [`TwoBranchModel::predict`] up to f32 rounding of the folded
    /// weights.
    ///
    /// # Errors
    ///
    /// See [`TwoBranchModel::forward`].
    #[allow(clippy::needless_range_loop)] // i indexes two branches and the align table
    pub fn predict_fused(&mut self, input: &Tensor) -> Result<Tensor> {
        let n = self.unit_count();
        let mut is_skip_src = vec![false; n];
        for u in self.mt.units() {
            if let Some(j) = u.spec().skip_from {
                is_skip_src[j] = true;
            }
        }
        let mut merged_outs: Vec<Option<Tensor>> = (0..n).map(|_| None).collect();
        let mut r = input.clone();
        let mut m = input.clone();
        for i in 0..n {
            let r_out = self.mr.units_mut()[i].forward_inference(&r, None, None)?;
            let r_sel = match &self.align[i] {
                None => None,
                Some(idx) => Some(gather_channels(&r_out, idx)?),
            };
            let merge = r_sel.as_ref().unwrap_or(&r_out);
            let skip = self.mt.units()[i].spec().skip_from;
            let skip = skip.and_then(|j| merged_outs[j].as_ref()).cloned();
            let merged = self.mt.units_mut()[i]
                .forward_inference(&m, skip.as_ref(), Some(merge))
                .map_err(|e| CoreError::BranchMismatch {
                    reason: format!("fused merge at unit {i} failed: {e}"),
                })?;
            if is_skip_src[i] {
                merged_outs[i] = Some(merged.clone());
            }
            r = r_out;
            m = merged;
        }
        Ok(self.mt.head_mut().forward(&m, Mode::Eval)?)
    }

    /// Inference with the int8 rich branch: `M_R` runs as a quantized
    /// [`QuantBranch`] snapshot (built lazily, invalidated by anything that
    /// can change `M_R`), while the secure branch and the merge stay in
    /// f32 exactly as in [`TwoBranchModel::predict_fused`]. The TEE-side
    /// arithmetic is untouched — only the attacker-visible branch trades
    /// precision for speed.
    ///
    /// # Errors
    ///
    /// See [`TwoBranchModel::forward`].
    pub fn predict_int8(&mut self, input: &Tensor) -> Result<Tensor> {
        if self.qmr.is_none() {
            self.qmr = Some(QuantBranch::from_chain(&self.mr)?);
        }
        let q = self.qmr.take().expect("quantized branch just ensured");
        let result = self.predict_int8_with(&q, input);
        self.qmr = Some(q);
        result
    }

    /// The quantized `M_R` snapshot used by [`TwoBranchModel::predict_int8`],
    /// building it if absent (e.g. to report its size).
    ///
    /// # Errors
    ///
    /// Returns shape errors for inconsistent layer state.
    pub fn quantized_branch(&mut self) -> Result<&QuantBranch> {
        if self.qmr.is_none() {
            self.qmr = Some(QuantBranch::from_chain(&self.mr)?);
        }
        Ok(self.qmr.as_ref().expect("just ensured"))
    }

    #[allow(clippy::needless_range_loop)] // i indexes two branches and the align table
    fn predict_int8_with(&mut self, q: &QuantBranch, input: &Tensor) -> Result<Tensor> {
        let n = self.unit_count();
        let mut is_skip_src = vec![false; n];
        for u in self.mt.units() {
            if let Some(j) = u.spec().skip_from {
                is_skip_src[j] = true;
            }
        }
        let mut merged_outs: Vec<Option<Tensor>> = (0..n).map(|_| None).collect();
        let mut r = input.clone();
        let mut m = input.clone();
        for i in 0..n {
            let r_out = q.forward_unit(i, &r, None)?;
            let r_sel = match &self.align[i] {
                None => None,
                Some(idx) => Some(gather_channels(&r_out, idx)?),
            };
            let merge = r_sel.as_ref().unwrap_or(&r_out);
            let skip = self.mt.units()[i].spec().skip_from;
            let skip = skip.and_then(|j| merged_outs[j].as_ref()).cloned();
            let merged = self.mt.units_mut()[i]
                .forward_inference(&m, skip.as_ref(), Some(merge))
                .map_err(|e| CoreError::BranchMismatch {
                    reason: format!("int8 merge at unit {i} failed: {e}"),
                })?;
            if is_skip_src[i] {
                merged_outs[i] = Some(merged.clone());
            }
            r = r_out;
            m = merged;
        }
        Ok(self.mt.head_mut().forward(&m, Mode::Eval)?)
    }

    /// Backward pass through both branches, accumulating parameter
    /// gradients. Must follow a training-mode [`TwoBranchModel::forward`].
    ///
    /// # Errors
    ///
    /// Returns missing-cache errors when no training forward preceded it.
    pub fn backward(&mut self, grad_logits: &Tensor) -> Result<()> {
        let n = self.unit_count();
        let g_features = self.mt.head_mut().backward(grad_logits)?;
        let mut gm: Vec<Option<Tensor>> = vec![None; n];
        let mut gr: Vec<Option<Tensor>> = vec![None; n];
        gm[n - 1] = Some(g_features);
        for i in (0..n).rev() {
            let g_merged = gm[i]
                .take()
                .expect("merged output of every unit feeds the chain");
            // The merge `m_i = t_i + select(r_i)` routes the gradient to both
            // branches.
            match &self.align[i] {
                None => accumulate(&mut gr[i], g_merged.clone(), self.backend)?,
                Some(idx) => {
                    if self.r_dims[i].is_empty() {
                        return Err(CoreError::Nn(tbnet_nn::NnError::MissingForwardCache {
                            layer: "TwoBranchModel",
                        }));
                    }
                    let mut z = Tensor::zeros(&self.r_dims[i]);
                    scatter_add_channels(&mut z, &g_merged, idx)?;
                    accumulate(&mut gr[i], z, self.backend)?;
                }
            }
            let ug = self.mt.units_mut()[i].backward(&g_merged)?;
            if let (Some(j), Some(gs)) = (self.mt.units()[i].spec().skip_from, ug.grad_skip) {
                accumulate(&mut gm[j], gs, self.backend)?;
            }
            if i > 0 {
                accumulate(&mut gm[i - 1], ug.grad_input, self.backend)?;
            }
            let g_r = gr[i]
                .take()
                .expect("every M_R output feeds the merge, so a gradient exists");
            let rg = self.mr.units_mut()[i].backward(&g_r)?;
            if i > 0 {
                accumulate(&mut gr[i - 1], rg.grad_input, self.backend)?;
            }
        }
        Ok(())
    }

    /// Visits the trainable parameters of both branches.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        // Visitors (optimizer steps) may mutate M_R's weights.
        self.qmr = None;
        Layer::visit_params(&mut self.mr, f);
        Layer::visit_params(&mut self.mt, f);
        // M_R's classifier head is *not* part of the TBNet computation graph
        // (the prediction comes from M_T), so its stale victim weights are
        // excluded from optimization on purpose: mr.visit_params covers it,
        // but it never receives gradients, and SGD with zero gradient and no
        // weight decay on the bias leaves only the weight-decay shrinkage.
    }

    /// Clears gradients in both branches.
    pub fn zero_grad(&mut self) {
        Layer::zero_grad(&mut self.mr);
        Layer::zero_grad(&mut self.mt);
    }

    /// Total trainable parameters across both branches.
    pub fn param_count(&mut self) -> usize {
        let mut count = 0;
        self.visit_params(&mut |p| count += p.numel());
        count
    }
}

fn accumulate(slot: &mut Option<Tensor>, grad: Tensor, kind: BackendKind) -> Result<()> {
    match slot {
        Some(existing) => {
            kind.imp().add_assign(existing, &grad)?;
        }
        None => *slot = Some(grad),
    }
    Ok(())
}

/// Per-shard scratch of the two-branch data-parallel step: both branches'
/// activation chains of the split forward and the pending per-unit
/// gradients of the split backward (mirrors [`TwoBranchModel::forward`] /
/// [`TwoBranchModel::backward`] exactly).
#[derive(Debug, Default)]
pub struct TwoBranchScratch {
    /// Conv output of the branch unit currently in flight (forward).
    conv_out: Option<Tensor>,
    /// `M_R` unit outputs (pre-merge), for the merge gather and the
    /// scatter shapes of the merge backward.
    outs_r: Vec<Tensor>,
    /// Merged unit outputs (`M_T`'s stream), for `M_T` skip connections.
    outs_m: Vec<Tensor>,
    /// Pre-activation gradient of the branch unit currently in flight
    /// (backward).
    grad_pre: Option<Tensor>,
    /// Pending skip gradient of the `M_T` unit currently in flight.
    grad_skip: Option<Tensor>,
    /// Per-unit merged-output gradients.
    gm: Vec<Option<Tensor>>,
    /// Per-unit `M_R`-output gradients.
    gr: Vec<Option<Tensor>>,
}

/// The two-branch model exposes **two sync points per unit** to the
/// data-parallel trainer — `M_R`'s BatchNorm (even points) then `M_T`'s
/// (odd points) — in the exact execution order of the sequential
/// interleaved forward. The backward schedule revisits them in reverse, so
/// every phase reproduces [`TwoBranchModel::backward`]'s accumulation
/// order: the merge routes each unit's gradient to both branches, `M_T`'s
/// unit backward feeds the merged stream (and its skip sources), and
/// `M_R`'s backward feeds its private stream.
impl DpTrainable for TwoBranchModel {
    type Scratch = TwoBranchScratch;

    fn make_scratch(&self) -> TwoBranchScratch {
        let n = self.unit_count();
        TwoBranchScratch {
            conv_out: None,
            outs_r: Vec::with_capacity(n),
            outs_m: Vec::with_capacity(n),
            grad_pre: None,
            grad_skip: None,
            gm: vec![None; n],
            gr: vec![None; n],
        }
    }

    fn sync_points(&self) -> usize {
        2 * self.unit_count()
    }

    fn sync_widths(&self) -> Vec<usize> {
        // Sync point 2i is M_R unit i's BN, 2i+1 is M_T unit i's — report
        // the live width of each in that exact order.
        self.mr()
            .units()
            .iter()
            .zip(self.mt().units())
            .flat_map(|(ru, tu)| [ru.out_channels(), tu.out_channels()])
            .collect()
    }

    fn backend_kind(&self) -> BackendKind {
        self.backend
    }

    fn zero_grad(&mut self) {
        TwoBranchModel::zero_grad(self);
    }

    fn forward_sync(
        &mut self,
        point: usize,
        shard: &mut DpShard<TwoBranchScratch>,
    ) -> Result<(Tensor, Tensor, usize)> {
        // Data-parallel training mutates BN statistics outside
        // `TwoBranchModel::forward`, so the int8 snapshot goes stale here
        // too.
        self.qmr = None;
        let DpShard { batch, scratch, .. } = shard;
        let i = point / 2;
        let conv_out = if point.is_multiple_of(2) {
            // M_R unit i: consumes M_R's private stream (skips stripped).
            let input = if i == 0 {
                &batch.images
            } else {
                &scratch.outs_r[i - 1]
            };
            self.mr.units_mut()[i].forward_conv(input, Mode::Train)?
        } else {
            // M_T unit i: consumes the merged stream.
            let input = if i == 0 {
                &batch.images
            } else {
                &scratch.outs_m[i - 1]
            };
            self.mt.units_mut()[i].forward_conv(input, Mode::Train)?
        };
        let (mean, var) = ops::channel_mean_var(&conv_out)?;
        let count = conv_out.dim(0) * conv_out.dim(2) * conv_out.dim(3);
        scratch.conv_out = Some(conv_out);
        Ok((mean, var, count))
    }

    fn forward_resume(
        &mut self,
        point: usize,
        shard: &mut DpShard<TwoBranchScratch>,
        mean: &Tensor,
        var: &Tensor,
    ) -> Result<()> {
        let scratch = &mut shard.scratch;
        let conv_out = scratch.conv_out.take().expect("set by the conv phase");
        let i = point / 2;
        if point.is_multiple_of(2) {
            let r_out = self.mr.units_mut()[i].forward_from_conv(
                &conv_out,
                None,
                Mode::Train,
                Some((mean, var)),
            )?;
            scratch.outs_r.push(r_out);
        } else {
            let skip = self.mt.units()[i]
                .spec()
                .skip_from
                .map(|j| scratch.outs_m[j].clone());
            let t_out = self.mt.units_mut()[i].forward_from_conv(
                &conv_out,
                skip.as_ref(),
                Mode::Train,
                Some((mean, var)),
            )?;
            let r_sel = match &self.align[i] {
                None => scratch.outs_r[i].clone(),
                Some(idx) => gather_channels(&scratch.outs_r[i], idx)?,
            };
            let merged =
                self.backend
                    .imp()
                    .add(&t_out, &r_sel)
                    .map_err(|e| CoreError::BranchMismatch {
                        reason: format!("merge at unit {i} failed: {e}"),
                    })?;
            scratch.outs_m.push(merged);
        }
        Ok(())
    }

    fn loss_phase(
        &mut self,
        shard: &mut DpShard<TwoBranchScratch>,
        global_batch: usize,
    ) -> Result<()> {
        let n = self.unit_count();
        let logits = self
            .mt
            .head_mut()
            .forward(&shard.scratch.outs_m[n - 1], Mode::Train)?;
        let out = softmax_cross_entropy_scaled(&logits, &shard.batch.labels, global_batch)?;
        shard.acc = accuracy(&logits, &shard.batch.labels)?;
        shard.loss = out.loss;
        let g = self.mt.head_mut().backward(&out.grad)?;
        shard.scratch.gm[n - 1] = Some(g);
        Ok(())
    }

    fn backward_reduce(
        &mut self,
        point: usize,
        shard: &mut DpShard<TwoBranchScratch>,
    ) -> Result<(Tensor, Tensor, usize)> {
        let scratch = &mut shard.scratch;
        let i = point / 2;
        let halfway = if point % 2 == 1 {
            // M_T unit i. First route the merged gradient to M_R (the merge
            // `m_i = t_i + select(r_i)` feeds both branches), exactly like
            // the sequential backward does before M_T's unit backward.
            let g_merged = scratch.gm[i]
                .take()
                .expect("merged output of every unit feeds the chain");
            match &self.align[i] {
                None => accumulate_grad(&mut scratch.gr[i], g_merged.clone(), self.backend)?,
                Some(idx) => {
                    let mut z = Tensor::zeros(scratch.outs_r[i].dims());
                    scatter_add_channels(&mut z, &g_merged, idx)?;
                    accumulate_grad(&mut scratch.gr[i], z, self.backend)?;
                }
            }
            self.mt.units_mut()[i].backward_to_bn(&g_merged)?
        } else {
            // M_R unit i: consumes the routed + downstream gradient.
            let g_r = scratch.gr[i]
                .take()
                .expect("every M_R output feeds the merge, so a gradient exists");
            self.mr.units_mut()[i].backward_to_bn(&g_r)?
        };
        let count = halfway.grad_pre.dim(0) * halfway.grad_pre.dim(2) * halfway.grad_pre.dim(3);
        scratch.grad_pre = Some(halfway.grad_pre);
        scratch.grad_skip = halfway.grad_skip;
        Ok((halfway.sum_dy, halfway.sum_dy_xhat, count))
    }

    fn backward_resume(
        &mut self,
        point: usize,
        shard: &mut DpShard<TwoBranchScratch>,
        sum_dy: &Tensor,
        sum_dy_xhat: &Tensor,
        total: usize,
    ) -> Result<()> {
        let scratch = &mut shard.scratch;
        let grad_pre = scratch.grad_pre.take().expect("set by the reduce phase");
        let i = point / 2;
        if point % 2 == 1 {
            let grad_input =
                self.mt.units_mut()[i].backward_from_bn(&grad_pre, sum_dy, sum_dy_xhat, total)?;
            if let (Some(j), Some(gs)) = (
                self.mt.units()[i].spec().skip_from,
                scratch.grad_skip.take(),
            ) {
                accumulate_grad(&mut scratch.gm[j], gs, self.backend)?;
            }
            if i > 0 {
                accumulate_grad(&mut scratch.gm[i - 1], grad_input, self.backend)?;
            }
        } else {
            let grad_input =
                self.mr.units_mut()[i].backward_from_bn(&grad_pre, sum_dy, sum_dy_xhat, total)?;
            if i > 0 {
                accumulate_grad(&mut scratch.gr[i - 1], grad_input, self.backend)?;
            }
        }
        Ok(())
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        TwoBranchModel::visit_params(self, f);
    }

    fn penalty(&mut self, lambda: f32) -> f32 {
        // The g(γ_R + γ_T) term of Eq. 1 separates across branches.
        crate::transfer::apply_branch_sparsity(&mut self.mr, lambda)
            + crate::transfer::apply_branch_sparsity(&mut self.mt, lambda)
    }

    fn optimizer_step(&mut self, sgd: &Sgd) {
        // Exactly the sequential loop's `step_both`: the branches step as
        // two separate layer trees (per-parameter updates are independent,
        // so this equals one combined step — kept split for fidelity).
        sgd.step(&mut self.mr as &mut dyn Layer);
        sgd.step(&mut self.mt as &mut dyn Layer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tbnet_models::{resnet, vgg, ChainNet};
    use tbnet_nn::loss::softmax_cross_entropy;
    use tbnet_tensor::init;

    fn tiny_victim(rng: &mut StdRng) -> ChainNet {
        let spec = vgg::vgg_from_stages("v", &[(4, 1), (6, 1)], 3, 2, (8, 8));
        ChainNet::from_spec(&spec, rng).unwrap()
    }

    #[test]
    fn construction_clones_victim_into_mr() {
        let mut rng = StdRng::seed_from_u64(0);
        let victim = tiny_victim(&mut rng);
        let tb = TwoBranchModel::from_victim(&victim, &mut rng).unwrap();
        assert_eq!(tb.unit_count(), 2);
        assert!(!tb.is_finalized());
        // M_R weights equal the victim's.
        assert_eq!(
            tb.mr().units()[0].conv().weight().value.as_slice(),
            victim.units()[0].conv().weight().value.as_slice()
        );
        // M_T weights are fresh (different from the victim's).
        assert_ne!(
            tb.mt().units()[0].conv().weight().value.as_slice(),
            victim.units()[0].conv().weight().value.as_slice()
        );
    }

    #[test]
    fn resnet_mr_loses_skips_mt_keeps_them() {
        let mut rng = StdRng::seed_from_u64(1);
        let spec = resnet::resnet20_tiny(4, 3, (16, 16));
        let victim = ChainNet::from_spec(&spec, &mut rng).unwrap();
        let tb = TwoBranchModel::from_victim(&victim, &mut rng).unwrap();
        assert!(tb.mr().units().iter().all(|u| u.spec().skip_from.is_none()));
        assert!(tb.mt().units().iter().any(|u| u.spec().skip_from.is_some()));
    }

    #[test]
    fn forward_produces_logits() {
        let mut rng = StdRng::seed_from_u64(2);
        let victim = tiny_victim(&mut rng);
        let mut tb = TwoBranchModel::from_victim(&victim, &mut rng).unwrap();
        let x = init::randn(&[3, 2, 8, 8], 1.0, &mut rng);
        let logits = tb.predict(&x).unwrap();
        assert_eq!(logits.dims(), &[3, 3]);
        assert!(logits.all_finite());
    }

    #[test]
    fn backward_gradients_match_numerical() {
        let mut rng = StdRng::seed_from_u64(3);
        let victim = tiny_victim(&mut rng);
        let mut tb = TwoBranchModel::from_victim(&victim, &mut rng).unwrap();
        let x = init::randn(&[2, 2, 8, 8], 1.0, &mut rng);
        let targets = [0usize, 2];

        tb.zero_grad();
        let logits = tb.forward(&x, Mode::Train).unwrap();
        let out = softmax_cross_entropy(&logits, &targets).unwrap();
        tb.backward(&out.grad).unwrap();

        let eps = 1e-2f32;
        // Check one M_T conv weight and one M_R conv weight.
        let loss_with = |tb: &mut TwoBranchModel, x: &Tensor| {
            let logits = tb.forward(x, Mode::Train).unwrap();
            softmax_cross_entropy(&logits, &targets).unwrap().loss
        };
        for branch in ["mt", "mr"] {
            for &idx in &[0usize, 7] {
                let ana = {
                    let net = if branch == "mt" { tb.mt() } else { tb.mr() };
                    net.units()[0].conv().weight().grad.as_slice()[idx]
                };
                let mut plus = tb.clone();
                {
                    let net = if branch == "mt" {
                        plus.mt_mut()
                    } else {
                        plus.mr_mut()
                    };
                    net.units_mut()[0]
                        .conv_mut()
                        .weight_mut()
                        .value
                        .as_mut_slice()[idx] += eps;
                }
                let mut minus = tb.clone();
                {
                    let net = if branch == "mt" {
                        minus.mt_mut()
                    } else {
                        minus.mr_mut()
                    };
                    net.units_mut()[0]
                        .conv_mut()
                        .weight_mut()
                        .value
                        .as_mut_slice()[idx] -= eps;
                }
                let num = (loss_with(&mut plus, &x) - loss_with(&mut minus, &x)) / (2.0 * eps);
                assert!(
                    (num - ana).abs() < 0.02 + 0.05 * ana.abs().max(num.abs()),
                    "{branch} weight[{idx}]: num {num} vs ana {ana}"
                );
            }
        }
    }

    #[test]
    fn mr_gradients_flow_through_merge() {
        // After one forward/backward, M_R conv weights must receive non-zero
        // gradient even though the loss reads M_T's head.
        let mut rng = StdRng::seed_from_u64(4);
        let victim = tiny_victim(&mut rng);
        let mut tb = TwoBranchModel::from_victim(&victim, &mut rng).unwrap();
        let x = init::randn(&[4, 2, 8, 8], 1.0, &mut rng);
        tb.zero_grad();
        let logits = tb.forward(&x, Mode::Train).unwrap();
        let out = softmax_cross_entropy(&logits, &[0, 1, 2, 0]).unwrap();
        tb.backward(&out.grad).unwrap();
        let g = tb.mr().units()[0].conv().weight().grad.l1_norm();
        assert!(g > 0.0, "M_R received no gradient");
        // The victim classifier inside M_R must receive no gradient: it is
        // outside the TBNet graph.
        assert_eq!(tb.mr().head().linear().weight().grad.l1_norm(), 0.0);
    }

    #[test]
    fn extracted_branch_is_detached_copy() {
        let mut rng = StdRng::seed_from_u64(5);
        let victim = tiny_victim(&mut rng);
        let tb = TwoBranchModel::from_victim(&victim, &mut rng).unwrap();
        let mut stolen = tb.extract_unsecured_branch();
        stolen.units_mut()[0]
            .conv_mut()
            .weight_mut()
            .value
            .fill(0.0);
        // Original unaffected.
        assert!(tb.mr().units()[0].conv().weight().value.l1_norm() > 0.0);
    }

    #[test]
    fn rollback_finalization_sets_alignment() {
        let mut rng = StdRng::seed_from_u64(6);
        let victim = tiny_victim(&mut rng);
        let mut tb = TwoBranchModel::from_victim(&victim, &mut rng).unwrap();
        // Simulate one pruning iteration on M_T only via the books: M_T keeps
        // channels {0,2,3} of unit 0 while the rolled-back M_R keeps all 4.
        let prev_mr = tb.mr().clone();
        let prev_book = tb.mr_book().clone();
        tb.mt_book_mut()
            .apply_mask(0, &[true, false, true, true])
            .unwrap();
        // (The actual weight slicing is pruning's job; alignment math only
        // needs the books and unit counts.)
        tb.finalize_with_rollback(prev_mr, prev_book).unwrap();
        assert!(tb.is_finalized());
        assert_eq!(tb.align()[0].as_ref().unwrap(), &vec![0, 2, 3]);
        assert!(tb.align()[1].is_none()); // unchanged unit stays identity
    }

    #[test]
    fn rollback_rejects_non_subset_books() {
        let mut rng = StdRng::seed_from_u64(7);
        let victim = tiny_victim(&mut rng);
        let mut tb = TwoBranchModel::from_victim(&victim, &mut rng).unwrap();
        let prev_mr = tb.mr().clone();
        let mut prev_book = tb.mr_book().clone();
        // M_R book lost channel 0, M_T book still has it.
        prev_book.apply_mask(0, &[false, true, true, true]).unwrap();
        assert!(tb.finalize_with_rollback(prev_mr, prev_book).is_err());
    }

    #[test]
    fn param_visitation_covers_both_branches() {
        let mut rng = StdRng::seed_from_u64(8);
        let victim = tiny_victim(&mut rng);
        let victim_params = {
            let mut v = victim.clone();
            v.param_count()
        };
        let mut tb = TwoBranchModel::from_victim(&victim, &mut rng).unwrap();
        assert_eq!(tb.param_count(), 2 * victim_params);
    }
}
