//! End-to-end orchestration of TBNet's six steps (paper Fig. 1).
//!
//! [`run_pipeline`] is the single entry point the examples and the benchmark
//! harness use: it trains the victim, builds and trains the two-branch
//! substitution model, prunes it iteratively, applies rollback finalization
//! and returns everything the evaluation needs.
//!
//! All three training phases — victim training, knowledge transfer and the
//! per-iteration pruning fine-tune — run through the generic data-parallel
//! engine in [`crate::dp_train`] under the [`WorkerPolicy`] in
//! [`PipelineConfig::workers`] (default: [`WorkerPolicy::Auto`], which
//! tunes a worker count per phase — and per pruning iteration — from the
//! live layer widths plus a memoized step-timing probe, capped at
//! `tbnet_tensor::par::max_threads()`), so the whole pipeline scales with
//! the available cores while reproducing the sequential reference loops to
//! f32 rounding.
//!
//! A run is fully deterministic for a fixed worker count, and `Auto` probe
//! results are memoized per phase shape, so repeated runs in one process
//! repeat their worker choices exactly. Across *different* worker counts
//! results agree only to f32 rounding (the shard fold changes the summation
//! order), so hosts with different core counts — or separate processes
//! whose `Auto` probes commit differently — can diverge at the ~1e-6 level:
//! enough, in principle, to flip a pruning keep/rollback decision that sits
//! exactly on the drop budget. For bit-reproducible runs across machines,
//! pin both the thread count (`TBNET_THREADS=N` or
//! `tbnet_tensor::par::set_max_threads`) and the policy
//! (`cfg.workers = WorkerPolicy::Fixed(W)`).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use tbnet_data::SyntheticCifar;
use tbnet_models::{ChainNet, ModelSpec};

use crate::dp_train::WorkerPolicy;
use crate::pruning::{iterative_prune_with_workers, PruneConfig, PruneIteration};
use crate::train::{train_victim_with_workers, TrainConfig};
use crate::transfer::{
    evaluate_two_branch, train_two_branch_with_workers, TransferConfig, TransferEpoch,
};
use crate::{Result, TwoBranchModel};

/// Configuration of the full pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Victim training settings (step ⓪ — the vendor's model).
    pub victim: TrainConfig,
    /// Knowledge-transfer settings (step ②).
    pub transfer: TransferConfig,
    /// Iterative-pruning settings (steps ③–⑤).
    pub prune: PruneConfig,
    /// Worker policy shared by every training phase. [`WorkerPolicy::Auto`]
    /// (the default) autotunes per phase — and per pruning iteration, on
    /// the live post-prune widths; [`WorkerPolicy::Fixed`] pins the shard
    /// layout for bit-reproducibility across hosts.
    pub workers: WorkerPolicy,
    /// Seed for model initialization.
    pub seed: u64,
}

impl PipelineConfig {
    /// Experiment-scale defaults mirroring the paper's hyper-parameters.
    pub fn paper_scaled(
        victim_epochs: usize,
        transfer_epochs: usize,
        finetune_epochs: usize,
    ) -> Self {
        PipelineConfig {
            victim: TrainConfig::paper_scaled(victim_epochs),
            transfer: TransferConfig::paper_scaled(transfer_epochs),
            prune: PruneConfig::paper_scaled(finetune_epochs),
            workers: WorkerPolicy::Auto,
            seed: 2024,
        }
    }

    /// A fast configuration for smoke tests and examples.
    pub fn smoke() -> Self {
        let mut cfg = PipelineConfig::paper_scaled(4, 4, 2);
        cfg.prune.max_iterations = 2;
        cfg.prune.ratio = 0.15;
        cfg
    }

    /// Specializes this configuration to realize a planner-chosen candidate
    /// ([`crate::planner::optimize_deployment`]): the pruning ratio and
    /// iteration cap are taken from the plan, so a full accuracy-validated
    /// run of [`run_pipeline`] prunes toward the architecture the analytic
    /// search priced.
    ///
    /// The rollback point is not a free knob here: the pipeline's step-⑥
    /// policy always reverts `M_R` by exactly one *kept* iteration, i.e. it
    /// realizes `rollback == prune_iters - 1`. Candidates with a different
    /// rollback stay analytic-only until trained by other means; the
    /// planner's default search prices that policy point too, so there is
    /// always a realizable near-neighbor.
    pub fn for_plan(mut self, plan: &crate::planner::CandidatePlan) -> Self {
        self.prune.ratio = plan.ratio;
        self.prune.max_iterations = plan.prune_iters;
        self
    }
}

/// Everything the pipeline produces.
#[derive(Debug, Clone)]
pub struct TbnetArtifacts {
    /// The trained victim model (the vendor's IP).
    pub victim: ChainNet,
    /// Victim test accuracy.
    pub victim_acc: f32,
    /// The finalized two-branch substitution model.
    pub model: TwoBranchModel,
    /// TBNet test accuracy (from `M_T`'s output).
    pub tbnet_acc: f32,
    /// Knowledge-transfer training history.
    pub transfer_history: Vec<TransferEpoch>,
    /// Pruning-iteration history.
    pub prune_history: Vec<PruneIteration>,
}

impl TbnetArtifacts {
    /// The deployed `M_T` architecture (pruned).
    pub fn mt_spec(&self) -> ModelSpec {
        self.model.mt().spec()
    }

    /// The deployed `M_R` architecture (rolled back, one iteration wider).
    pub fn mr_spec(&self) -> ModelSpec {
        self.model.mr().spec()
    }
}

/// Runs steps ⓪–⑥: victim training, two-branch initialization, knowledge
/// transfer, iterative pruning and rollback finalization.
///
/// # Errors
///
/// Propagates configuration, training and shape errors from the stages.
pub fn run_pipeline(
    spec: &ModelSpec,
    data: &SyntheticCifar,
    cfg: &PipelineConfig,
) -> Result<TbnetArtifacts> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Step ⓪ — the vendor's well-trained victim (data-parallel under the
    // configured worker policy).
    let mut victim = ChainNet::from_spec(spec, &mut rng)?;
    train_victim_with_workers(&mut victim, data.train(), &cfg.victim, cfg.workers)?;
    let victim_acc = crate::train::evaluate(&mut victim, data.test())?;

    // Step ① — two-branch initialization.
    let mut model = TwoBranchModel::from_victim(&victim, &mut rng)?;

    // Step ② — knowledge transfer (Eq. 1), re-resolving the policy on the
    // two-branch model's widths.
    let transfer_history =
        train_two_branch_with_workers(&mut model, data.train(), &cfg.transfer, cfg.workers)?;

    // Steps ③–⑤ — iterative two-branch pruning (Alg. 1); the fine-tune
    // policy re-resolves per iteration on the post-prune widths.
    let outcome = iterative_prune_with_workers(
        &mut model,
        data.train(),
        data.test(),
        victim_acc,
        &cfg.prune,
        cfg.workers,
    )?;

    // Step ⑥ — rollback finalization: M_R reverts one iteration.
    model.finalize_with_rollback(outcome.rollback_mr, outcome.rollback_mr_book)?;
    let tbnet_acc = evaluate_two_branch(&mut model, data.test())?;

    Ok(TbnetArtifacts {
        victim,
        victim_acc,
        model,
        tbnet_acc,
        transfer_history,
        prune_history: outcome.history,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbnet_data::DatasetKind;
    use tbnet_models::vgg;

    fn tiny_data() -> SyntheticCifar {
        SyntheticCifar::generate(
            DatasetKind::Cifar10Like
                .config()
                .with_classes(3)
                .with_train_per_class(12)
                .with_test_per_class(6)
                .with_size(8, 8)
                .with_noise_std(0.25),
        )
    }

    #[test]
    fn full_pipeline_produces_finalized_model() {
        let spec = vgg::vgg_from_stages("v", &[(8, 1), (8, 1)], 3, 3, (8, 8));
        let data = tiny_data();
        let cfg = PipelineConfig::smoke();
        let artifacts = run_pipeline(&spec, &data, &cfg).unwrap();
        assert!(artifacts.model.is_finalized());
        assert!((0.0..=1.0).contains(&artifacts.victim_acc));
        assert!((0.0..=1.0).contains(&artifacts.tbnet_acc));
        assert!(!artifacts.transfer_history.is_empty());
        // M_R (rolled back) is at least as wide as M_T everywhere.
        for (ru, tu) in artifacts
            .model
            .mr()
            .units()
            .iter()
            .zip(artifacts.model.mt().units())
        {
            assert!(ru.out_channels() >= tu.out_channels());
        }
    }

    #[test]
    fn finalized_model_still_infers() {
        let spec = vgg::vgg_from_stages("v", &[(8, 1), (8, 1)], 3, 3, (8, 8));
        let data = tiny_data();
        let mut artifacts = run_pipeline(&spec, &data, &PipelineConfig::smoke()).unwrap();
        let batch = data.test().gather(&[0, 1, 2]);
        let logits = artifacts.model.predict(&batch.images).unwrap();
        assert_eq!(logits.dims(), &[3, 3]);
        assert!(logits.all_finite());
    }

    #[test]
    fn specs_reflect_divergence() {
        let spec = vgg::vgg_from_stages("v", &[(12, 1), (12, 1)], 3, 3, (8, 8));
        let data = tiny_data();
        let mut cfg = PipelineConfig::smoke();
        cfg.prune.drop_budget = 1.0; // guarantee at least one kept iteration
        cfg.prune.ratio = 0.25;
        let artifacts = run_pipeline(&spec, &data, &cfg).unwrap();
        let mr = artifacts.mr_spec();
        let mt = artifacts.mt_spec();
        if !artifacts.prune_history.iter().any(|h| h.kept) {
            // Nothing pruned — divergence impossible; accept but note.
            return;
        }
        let mr_total: usize = mr.units.iter().map(|u| u.out_channels).sum();
        let mt_total: usize = mt.units.iter().map(|u| u.out_channels).sum();
        assert!(
            mr_total > mt_total,
            "rollback should leave M_R ({mr_total}) wider than M_T ({mt_total})"
        );
    }
}
