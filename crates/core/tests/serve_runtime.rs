//! Healthy-path integration tests for the serving runtime: answer parity
//! with the single-threaded fused inference path, terminal-outcome
//! accounting, and calibration of the latency simulator from measured
//! stage times.

mod common;

use std::time::Duration;

use tbnet_core::serve::{Outcome, ServeConfig, ServeEngine};
use tbnet_tee::FaultPlan;

#[test]
fn healthy_path_answers_match_fused_inference() {
    let (artifacts, _) = common::fixture();
    let mut reference = artifacts.model.clone();
    let engine = ServeEngine::start(
        &artifacts.model,
        ServeConfig::fast_test(),
        FaultPlan::none(),
    )
    .unwrap();
    assert!(engine.is_healthy());
    let n = 12usize;
    let ids: Vec<u64> = (0..n)
        .map(|i| engine.submit(&common::test_image(i)).unwrap())
        .collect();
    let report = engine.shutdown();

    assert_eq!(report.counts.admitted, n as u64);
    assert_eq!(
        report.counts.answered, n as u64,
        "a healthy run answers everything: {:?}",
        report.counts
    );
    assert_eq!(report.faults.total_injected(), 0);
    assert!(report.metrics.batches >= 1);
    assert_eq!(report.metrics.batch_samples, n as u64);
    assert!(report.metrics.channel_high_water >= 1);
    assert_eq!(report.metrics.channel_dropped, 0);
    assert!(report.latency_percentile(0.99) >= report.latency_percentile(0.5));

    for (i, id) in ids.iter().enumerate() {
        let c = report
            .completions
            .iter()
            .find(|c| c.id == *id)
            .expect("every admitted id completes");
        let Outcome::Answered {
            logits, latency_ms, ..
        } = &c.outcome
        else {
            panic!("request {i}: expected Answered, got {:?}", c.outcome);
        };
        assert!(*latency_ms > 0.0);
        let expect = reference.predict_fused(&common::test_image(i)).unwrap();
        let diff = logits
            .iter()
            .zip(expect.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(
            diff < 1e-4,
            "request {i}: served logits diverge from predict_fused by {diff}"
        );
    }
}

#[test]
fn zero_deadline_requests_expire_and_burst_overload_sheds() {
    let (artifacts, _) = common::fixture();
    let cfg = ServeConfig {
        queue_high_water: 4,
        ..ServeConfig::fast_test()
    };
    let engine = ServeEngine::start(&artifacts.model, cfg, FaultPlan::none()).unwrap();
    // Two requests that are already past their deadline when a worker
    // reaches them (submitted first, so both clear the high-water mark).
    for i in 0..2 {
        engine
            .submit_with_deadline(&common::test_image(i), Duration::ZERO)
            .unwrap();
    }
    // A burst far past the high-water mark: the queue cannot drain 60
    // requests within the submit loop, so some must be shed.
    for i in 0..60 {
        engine.submit(&common::test_image(i)).unwrap();
    }
    let report = engine.shutdown();
    assert_eq!(report.counts.admitted, 62);
    assert_eq!(report.completions.len(), 62, "no request may be lost");
    assert!(report.counts.expired >= 2, "{:?}", report.counts);
    assert!(report.counts.shed >= 1, "{:?}", report.counts);
    assert!(report.shed_rate() > 0.0);
    let sum = report.counts.answered
        + report.counts.degraded
        + report.counts.shed
        + report.counts.expired;
    assert_eq!(sum, report.counts.admitted);
}

#[test]
fn submit_rejects_non_single_sample_shapes() {
    let (artifacts, _) = common::fixture();
    let engine = ServeEngine::start(
        &artifacts.model,
        ServeConfig::fast_test(),
        FaultPlan::none(),
    )
    .unwrap();
    let bad = tbnet_tensor::Tensor::zeros(&[2, 3, 8, 8]);
    assert!(engine.submit(&bad).is_err(), "batched submits are rejected");
    let bad = tbnet_tensor::Tensor::zeros(&[3, 8]);
    assert!(engine.submit(&bad).is_err(), "rank-2 submits are rejected");
    let report = engine.shutdown();
    assert_eq!(report.counts.admitted, 0);
}

#[test]
fn healthy_run_calibrates_the_simulator_from_measured_stages() {
    let (artifacts, _) = common::fixture();
    let engine = ServeEngine::start(
        &artifacts.model,
        ServeConfig::fast_test(),
        FaultPlan::none(),
    )
    .unwrap();
    for i in 0..16 {
        engine.submit(&common::test_image(i)).unwrap();
    }
    let report = engine.shutdown();
    assert_eq!(report.counts.answered, 16);
    assert!(report.mean_batch >= 1.0);
    assert!(report.measured_overlap > 0.0 && report.measured_overlap.is_finite());

    let mt_spec = artifacts.model.mt().spec();
    let mr_spec = artifacts.model.mr().spec();
    let v = report.validate_pipeline(&mt_spec, &mr_spec).unwrap();
    assert!(
        v.simulated_overlap >= 1.0,
        "the simulated two-branch schedule overlaps stages: {v:?}"
    );
    assert!(v.measured_overlap > 0.0);
    assert!(v.ratio.is_finite() && v.ratio > 0.0, "{v:?}");
    assert!(v.simulated.total_s > 0.0);
}
