//! Deterministic seeded fault-injection tests for the serving runtime:
//! bounded monotone-backoff retries, exactly-once terminal outcomes under
//! a mixed fault schedule with a mid-run consumer crash, and bitwise
//! equivalence of the graceful-degradation path with `predict_int8`.

mod common;

use std::collections::HashSet;
use std::time::Duration;

use tbnet_core::serve::{Outcome, ServeConfig, ServeEngine};
use tbnet_tee::FaultPlan;

#[test]
fn transient_switch_faults_retry_with_monotone_bounded_backoff() {
    let (artifacts, _) = common::fixture();
    // Keep the TEE trusted throughout so faults surface as send retries
    // rather than degraded routing.
    let cfg = ServeConfig {
        unhealthy_after: 1000,
        ..ServeConfig::fast_test()
    };
    let max_retries = cfg.max_send_retries;
    let plan = FaultPlan::seeded(11).with_world_switch_failure_rate(0.3);
    let engine = ServeEngine::start(&artifacts.model, cfg, plan).unwrap();
    for i in 0..16 {
        engine.submit(&common::test_image(i)).unwrap();
    }
    let report = engine.shutdown();

    assert_eq!(report.counts.admitted, 16);
    assert_eq!(
        report.counts.shed + report.counts.expired,
        0,
        "{:?}",
        report.counts
    );
    assert_eq!(
        report.counts.answered + report.counts.degraded,
        16,
        "{:?}",
        report.counts
    );
    assert!(report.faults.world_switch_failures >= 1);
    assert!(
        !report.metrics.retry_traces.is_empty(),
        "a 30% switch-failure rate must force at least one retry"
    );
    let mut total_backoffs = 0u64;
    for trace in &report.metrics.retry_traces {
        assert!(
            trace.len() <= max_retries as usize,
            "retry budget exceeded: {trace:?}"
        );
        assert!(
            trace.windows(2).all(|w| w[0] <= w[1]),
            "backoffs must be monotone non-decreasing: {trace:?}"
        );
        total_backoffs += trace.len() as u64;
    }
    assert_eq!(report.metrics.send_retries, total_backoffs);
}

#[test]
fn mixed_fault_schedule_with_consumer_crash_loses_no_request() {
    let (artifacts, _) = common::fixture();
    let cfg = ServeConfig {
        unhealthy_after: 50,
        ..ServeConfig::fast_test()
    };
    let plan = FaultPlan::seeded(5)
        .with_world_switch_failure_rate(0.15)
        .with_corrupt_payload_at(4)
        .with_consumer_stall_every(7, Duration::from_millis(3))
        .with_consumer_crash_at(10);
    let engine = ServeEngine::start(&artifacts.model, cfg, plan).unwrap();
    let mut submitted = HashSet::new();
    for i in 0..24 {
        submitted.insert(engine.submit(&common::test_image(i)).unwrap());
    }
    for i in 0..2 {
        submitted.insert(
            engine
                .submit_with_deadline(&common::test_image(i), Duration::ZERO)
                .unwrap(),
        );
    }
    let report = engine.shutdown();

    // Exactly-once accounting: every admitted request has one terminal
    // outcome, no duplicates, no strays, nothing lost.
    assert_eq!(report.counts.admitted, 26);
    assert_eq!(report.completions.len(), 26, "zero lost requests");
    let completed: HashSet<u64> = report.completions.iter().map(|c| c.id).collect();
    assert_eq!(completed.len(), 26, "no duplicate completions");
    assert_eq!(completed, submitted);
    let sum = report.counts.answered
        + report.counts.degraded
        + report.counts.shed
        + report.counts.expired;
    assert_eq!(sum, report.counts.admitted);
    assert!(report.counts.expired >= 2, "{:?}", report.counts);
    assert_eq!(
        report.metrics.forced_expired, 0,
        "drain must finish cleanly"
    );

    // The scripted faults actually fired and were recovered from.
    assert!(report.faults.crashes >= 1, "{:?}", report.faults);
    assert!(report.metrics.consumer_restarts >= 1);
    assert!(report.faults.corrupted_payloads >= 1);
    assert!(report.metrics.corruption_detected >= 1);
    assert!(report.faults.stalls >= 1);
    assert!(report.metrics.requeues >= 1);
}

#[test]
fn unhealthy_tee_degrades_bitwise_to_predict_int8() {
    let (artifacts, _) = common::fixture();
    let mut reference = artifacts.model.clone();
    // Every world switch fails: the startup probe marks the TEE unhealthy
    // (fast_test has `unhealthy_after == 1`) before any request is seen.
    let plan = FaultPlan::seeded(3).with_world_switch_failure_rate(1.0);
    let engine = ServeEngine::start(&artifacts.model, ServeConfig::fast_test(), plan).unwrap();
    assert!(!engine.is_healthy(), "startup probe must trip the breaker");
    let n = 10usize;
    let ids: Vec<u64> = (0..n)
        .map(|i| engine.submit(&common::test_image(i)).unwrap())
        .collect();
    let report = engine.shutdown();

    assert_eq!(report.counts.admitted, n as u64);
    assert_eq!(
        report.counts.degraded, n as u64,
        "an unhealthy TEE degrades everything: {:?}",
        report.counts
    );
    assert!(report.faults.world_switch_failures >= 1);

    let mut agree = 0usize;
    for (i, id) in ids.iter().enumerate() {
        let c = report.completions.iter().find(|c| c.id == *id).unwrap();
        let Outcome::Degraded { logits, .. } = &c.outcome else {
            panic!("request {i}: expected Degraded, got {:?}", c.outcome);
        };
        let expect = reference.predict_int8(&common::test_image(i)).unwrap();
        assert_eq!(logits.len(), expect.numel());
        // Bitwise: the fallback is the same per-sample int8 path, batch of
        // one, same weights — not merely approximately equal.
        for (k, (a, b)) in logits.iter().zip(expect.as_slice()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "request {i} logit {k}: {a} vs {b}"
            );
        }
        let top_served = logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(k, _)| k);
        let top_ref = expect
            .as_slice()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(k, _)| k);
        if top_served == top_ref {
            agree += 1;
        }
    }
    assert_eq!(agree, n, "top-1 agreement with predict_int8 must be 100%");
}
