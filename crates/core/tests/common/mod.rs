//! Shared fixture for the serving-runtime integration suites: a tiny
//! finalized two-branch model produced by the full TBNet pipeline, built
//! once per test binary.

#![allow(dead_code)] // each test binary uses a subset of the helpers

use std::sync::OnceLock;

use tbnet_core::pipeline::{run_pipeline, PipelineConfig, TbnetArtifacts};
use tbnet_data::{DatasetKind, SyntheticCifar};
use tbnet_models::vgg;
use tbnet_tensor::Tensor;

static FIXTURE: OnceLock<(TbnetArtifacts, SyntheticCifar)> = OnceLock::new();

/// A finalized smoke-scale TBNet model plus its dataset.
pub fn fixture() -> &'static (TbnetArtifacts, SyntheticCifar) {
    FIXTURE.get_or_init(|| {
        let data = SyntheticCifar::generate(
            DatasetKind::Cifar10Like
                .config()
                .with_classes(3)
                .with_train_per_class(10)
                .with_test_per_class(5)
                .with_size(8, 8)
                .with_noise_std(0.25),
        );
        let spec = vgg::vgg_from_stages("v", &[(8, 1), (8, 1)], 3, 3, (8, 8));
        let mut cfg = PipelineConfig::smoke();
        cfg.prune.drop_budget = 1.0;
        let artifacts = run_pipeline(&spec, &data, &cfg).expect("smoke pipeline");
        (artifacts, data)
    })
}

/// The `i`-th test image (wrapping around) as a `[1, C, H, W]` tensor.
pub fn test_image(i: usize) -> Tensor {
    let (_, data) = fixture();
    data.test().gather(&[i % data.test().len()]).images
}
