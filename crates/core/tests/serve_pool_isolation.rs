//! Regression test for the cap-1 serial contract of the shared worker
//! pool, extended to the serving runtime: after the pool has been warmed
//! under a multi-thread cap, a serve session at `max_threads() == 1` must
//! run every kernel inline — leftover pool workers must not steal its
//! batch tasks (which would migrate thread-local scratch arenas and break
//! the serial contract `run_erased` promises).
//!
//! This test owns its process (one test per integration binary) because it
//! mutates the global thread cap and diffs the process-wide pool job
//! counter; sibling tests sharing the pool would race both.

mod common;

use tbnet_core::serve::{ServeConfig, ServeEngine};
use tbnet_tee::FaultPlan;
use tbnet_tensor::par;

#[test]
fn cap1_serve_session_never_steals_pool_tasks() {
    // Build the fixture before touching the cap so the pipeline's own
    // parallelism does not land in the measured window.
    let (artifacts, _) = common::fixture();

    // Warm the pool under a multi-thread cap so idle workers exist and
    // could steal tasks if the cap-1 path enqueued any.
    par::set_max_threads(4);
    let tripled = par::run((0..16).collect::<Vec<i32>>(), |_i, x| x * 3);
    assert_eq!(tripled[5], 15);
    assert!(
        par::pool_workers() >= 1,
        "warm-up must have spawned pool workers"
    );

    par::set_max_threads(1);
    let before = par::pool_jobs_completed();
    let engine = ServeEngine::start(
        &artifacts.model,
        ServeConfig::fast_test(),
        FaultPlan::none(),
    )
    .unwrap();
    for i in 0..8 {
        engine.submit(&common::test_image(i)).unwrap();
    }
    let report = engine.shutdown();
    assert_eq!(report.counts.answered, 8);
    assert_eq!(
        par::pool_jobs_completed(),
        before,
        "a cap-1 serve session must not enqueue a single pool task"
    );
    par::reset_max_threads();
}
