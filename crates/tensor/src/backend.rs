//! Pluggable compute backends: one kernel contract, two implementations.
//!
//! Every numerical kernel in [`crate::ops`] dispatches through a [`Backend`]:
//!
//! * [`Naive`] — the original single-threaded scalar loops, kept verbatim as
//!   the bit-exact reference oracle that parity tests compare against;
//! * [`Parallel`] — cache-blocked matmul and pool-parallel convolution /
//!   elementwise / reduction kernels riding the persistent workers in
//!   [`crate::par`] (see `ops::parallel` for the determinism contract).
//!
//! The process-wide default backend is [`Parallel`] (TBNet's whole argument
//! is throughput), overridable three ways, in precedence order:
//!
//! 1. [`set_global`] at runtime (e.g. a bench pinning a backend);
//! 2. the `TBNET_BACKEND` environment variable (`naive` / `parallel`);
//! 3. the built-in default.
//!
//! Layers in `tbnet-nn` additionally carry a per-layer [`BackendKind`] so a
//! model can be pinned to a backend independently of the global choice.

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU8, Ordering};

use serde::{Deserialize, Serialize};

use crate::ops::pool::MaxPoolIndices;
use crate::ops::{Conv2dGrads, Epilogue, PackedConv2dWeight};
use crate::{ops, Result, Tensor};

/// The kernel contract every compute backend implements.
///
/// Default method bodies run the naive reference kernels, so a backend only
/// overrides what it accelerates. All methods validate shapes exactly like
/// the original free functions.
pub trait Backend: fmt::Debug + Send + Sync {
    /// Short human-readable backend name (used in bench reports).
    fn name(&self) -> &'static str;

    /// Matrix product `a @ b`; see [`ops::matmul`].
    ///
    /// # Errors
    ///
    /// Rank/dimension errors as documented on [`ops::matmul`].
    fn matmul(&self, a: &Tensor, b: &Tensor) -> Result<Tensor> {
        ops::matmul::matmul_naive(a, b)
    }

    /// Matrix product `aᵀ @ b`; see [`ops::matmul_transpose_a`].
    ///
    /// # Errors
    ///
    /// Rank/dimension errors as documented on [`ops::matmul_transpose_a`].
    fn matmul_transpose_a(&self, a: &Tensor, b: &Tensor) -> Result<Tensor> {
        ops::matmul::matmul_transpose_a_naive(a, b)
    }

    /// Matrix product `a @ bᵀ`; see [`ops::matmul_transpose_b`].
    ///
    /// # Errors
    ///
    /// Rank/dimension errors as documented on [`ops::matmul_transpose_b`].
    fn matmul_transpose_b(&self, a: &Tensor, b: &Tensor) -> Result<Tensor> {
        ops::matmul::matmul_transpose_b_naive(a, b)
    }

    /// 2-D convolution forward; see [`ops::conv2d_forward`].
    ///
    /// # Errors
    ///
    /// Shape/geometry errors as documented on [`ops::conv2d_forward`].
    fn conv2d_forward(
        &self,
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        stride: usize,
        pad: usize,
    ) -> Result<Tensor> {
        ops::conv::conv2d_forward_naive(input, weight, bias, stride, pad)
    }

    /// 2-D convolution backward; see [`ops::conv2d_backward`].
    ///
    /// # Errors
    ///
    /// Shape/geometry errors as documented on [`ops::conv2d_backward`].
    fn conv2d_backward(
        &self,
        input: &Tensor,
        weight: &Tensor,
        grad_out: &Tensor,
        stride: usize,
        pad: usize,
        has_bias: bool,
    ) -> Result<Conv2dGrads> {
        ops::conv::conv2d_backward_naive(input, weight, grad_out, stride, pad, has_bias)
    }

    /// 2-D convolution forward over a pre-packed weight
    /// ([`PackedConv2dWeight`]). Layers cache the pack across calls so
    /// backends with a fused engine skip per-call repacking; backends
    /// without one fall back to the plain kernel on the embedded original
    /// weight, so results are identical either way.
    ///
    /// # Errors
    ///
    /// Shape/geometry errors as documented on [`ops::conv2d_forward`].
    fn conv2d_forward_packed(
        &self,
        input: &Tensor,
        packed: &PackedConv2dWeight,
        bias: Option<&Tensor>,
        stride: usize,
        pad: usize,
    ) -> Result<Tensor> {
        self.conv2d_forward(input, packed.weight(), bias, stride, pad)
    }

    /// Packed convolution forward with a fused [`Epilogue`] (bias +
    /// activation + optional elementwise merge applied while output tiles
    /// are cache-hot). The default body composes the packed forward with
    /// the naive epilogue applier, so it stays the bit-exact reference the
    /// fused engines are tested against.
    ///
    /// # Errors
    ///
    /// Shape/geometry errors as documented on [`ops::conv2d_forward_fused`].
    fn conv2d_forward_fused(
        &self,
        input: &Tensor,
        packed: &PackedConv2dWeight,
        bias: Option<&Tensor>,
        stride: usize,
        pad: usize,
        epilogue: Epilogue<'_>,
    ) -> Result<Tensor> {
        let mut out = self.conv2d_forward_packed(input, packed, bias, stride, pad)?;
        ops::conv::apply_epilogue(&mut out, epilogue)?;
        Ok(out)
    }

    /// 2-D convolution backward over a pre-packed weight; see
    /// [`Backend::conv2d_forward_packed`] for the packing contract.
    ///
    /// # Errors
    ///
    /// Shape/geometry errors as documented on [`ops::conv2d_backward`].
    fn conv2d_backward_packed(
        &self,
        input: &Tensor,
        packed: &PackedConv2dWeight,
        grad_out: &Tensor,
        stride: usize,
        pad: usize,
        has_bias: bool,
    ) -> Result<Conv2dGrads> {
        self.conv2d_backward(input, packed.weight(), grad_out, stride, pad, has_bias)
    }

    /// Depthwise 2-D convolution forward: weight `[C, 1, KH, KW]`, one
    /// kernel per channel, no cross-channel reduction; see
    /// [`ops::conv2d_depthwise_forward`].
    ///
    /// # Errors
    ///
    /// Shape/geometry errors as documented on
    /// [`ops::conv2d_depthwise_forward`].
    fn conv2d_depthwise_forward(
        &self,
        input: &Tensor,
        packed: &PackedConv2dWeight,
        bias: Option<&Tensor>,
        stride: usize,
        pad: usize,
    ) -> Result<Tensor> {
        ops::conv::conv2d_depthwise_forward_naive(input, packed.weight(), bias, stride, pad)
    }

    /// Depthwise forward with a fused [`Epilogue`]. The default body
    /// composes the plain depthwise forward with the naive epilogue
    /// applier, so it stays the reference the fused engine is tested
    /// against.
    ///
    /// # Errors
    ///
    /// Shape/geometry errors as documented on
    /// [`ops::conv2d_depthwise_forward_fused`].
    fn conv2d_depthwise_forward_fused(
        &self,
        input: &Tensor,
        packed: &PackedConv2dWeight,
        bias: Option<&Tensor>,
        stride: usize,
        pad: usize,
        epilogue: Epilogue<'_>,
    ) -> Result<Tensor> {
        let mut out = self.conv2d_depthwise_forward(input, packed, bias, stride, pad)?;
        ops::conv::apply_epilogue(&mut out, epilogue)?;
        Ok(out)
    }

    /// Depthwise 2-D convolution backward; grad-weight is `[C, 1, KH, KW]`.
    ///
    /// # Errors
    ///
    /// Shape/geometry errors as documented on
    /// [`ops::conv2d_depthwise_backward`].
    fn conv2d_depthwise_backward(
        &self,
        input: &Tensor,
        packed: &PackedConv2dWeight,
        grad_out: &Tensor,
        stride: usize,
        pad: usize,
        has_bias: bool,
    ) -> Result<Conv2dGrads> {
        ops::conv::conv2d_depthwise_backward_naive(
            input,
            packed.weight(),
            grad_out,
            stride,
            pad,
            has_bias,
        )
    }

    /// Elementwise `a + b`.
    ///
    /// # Errors
    ///
    /// Shape errors as documented on [`ops::add`].
    fn add(&self, a: &Tensor, b: &Tensor) -> Result<Tensor> {
        ops::elementwise::add_naive(a, b)
    }

    /// Elementwise `a - b`.
    ///
    /// # Errors
    ///
    /// Shape errors as documented on [`ops::sub`].
    fn sub(&self, a: &Tensor, b: &Tensor) -> Result<Tensor> {
        ops::elementwise::sub_naive(a, b)
    }

    /// Elementwise `a ⊙ b`.
    ///
    /// # Errors
    ///
    /// Shape errors as documented on [`ops::hadamard`].
    fn hadamard(&self, a: &Tensor, b: &Tensor) -> Result<Tensor> {
        ops::elementwise::hadamard_naive(a, b)
    }

    /// In-place `a += b`.
    ///
    /// # Errors
    ///
    /// Shape errors as documented on [`ops::add_assign`].
    fn add_assign(&self, a: &mut Tensor, b: &Tensor) -> Result<()> {
        ops::elementwise::add_assign_naive(a, b)
    }

    /// In-place `a += alpha * b`.
    ///
    /// # Errors
    ///
    /// Shape errors as documented on [`ops::add_scaled`].
    fn add_scaled(&self, a: &mut Tensor, b: &Tensor, alpha: f32) -> Result<()> {
        ops::elementwise::add_scaled_naive(a, b, alpha)
    }

    /// Returns `alpha * a`.
    fn scale(&self, a: &Tensor, alpha: f32) -> Tensor {
        ops::elementwise::scale_naive(a, alpha)
    }

    /// Applies `f` elementwise.
    fn unary(&self, a: &Tensor, f: &(dyn Fn(f32) -> f32 + Sync)) -> Tensor {
        ops::elementwise::unary_naive(a, f)
    }

    /// Broadcast-add a `[D]` bias onto each row of `[N, D]`.
    ///
    /// # Errors
    ///
    /// Shape errors as documented on [`ops::add_bias_rows`].
    fn add_bias_rows(&self, out: &mut Tensor, bias: &Tensor) -> Result<()> {
        ops::elementwise::add_bias_rows_naive(out, bias)
    }

    /// Per-channel mean/variance of `[N, C, H, W]`.
    ///
    /// # Errors
    ///
    /// Rank/geometry errors as documented on [`ops::channel_mean_var`].
    fn channel_mean_var(&self, input: &Tensor) -> Result<(Tensor, Tensor)> {
        ops::reduce::channel_mean_var_naive(input)
    }

    /// Per-channel sum of `[N, C, H, W]`.
    ///
    /// # Errors
    ///
    /// Rank errors as documented on [`ops::channel_sum`].
    fn channel_sum(&self, input: &Tensor) -> Result<Tensor> {
        ops::reduce::channel_sum_naive(input)
    }

    /// Sum over the leading axis of `[N, D]`.
    ///
    /// # Errors
    ///
    /// Rank errors as documented on [`ops::sum_axis0`].
    fn sum_axis0(&self, input: &Tensor) -> Result<Tensor> {
        ops::reduce::sum_axis0_naive(input)
    }

    /// Row-wise softmax of `[N, D]`.
    ///
    /// # Errors
    ///
    /// Rank errors as documented on [`ops::softmax_rows`].
    fn softmax_rows(&self, logits: &Tensor) -> Result<Tensor> {
        ops::reduce::softmax_rows_naive(logits)
    }

    /// BatchNorm normalization `(x - mean) * inv_std` per channel.
    ///
    /// # Errors
    ///
    /// Shape errors as documented on [`ops::bn_normalize`].
    fn bn_normalize(&self, input: &Tensor, mean: &Tensor, inv_std: &Tensor) -> Result<Tensor> {
        ops::channel::bn_normalize_naive(input, mean, inv_std)
    }

    /// Channel-wise affine `scale * x + shift`.
    ///
    /// # Errors
    ///
    /// Shape errors as documented on [`ops::channel_affine`].
    fn channel_affine(&self, input: &Tensor, scale: &Tensor, shift: &Tensor) -> Result<Tensor> {
        ops::channel::channel_affine_naive(input, scale, shift)
    }

    /// BatchNorm backward reductions `(Σ dy, Σ dy·x̂)` per channel.
    ///
    /// # Errors
    ///
    /// Shape errors as documented on [`ops::bn_backward_reduce`].
    fn bn_backward_reduce(&self, grad_out: &Tensor, x_hat: &Tensor) -> Result<(Tensor, Tensor)> {
        ops::channel::bn_backward_reduce_naive(grad_out, x_hat)
    }

    /// BatchNorm input gradient.
    ///
    /// # Errors
    ///
    /// Shape errors as documented on [`ops::bn_input_grad`].
    fn bn_input_grad(
        &self,
        grad_out: &Tensor,
        x_hat: &Tensor,
        gamma: &Tensor,
        inv_std: &Tensor,
        sum_dy: &Tensor,
        sum_dy_xhat: &Tensor,
    ) -> Result<Tensor> {
        ops::channel::bn_input_grad_naive(grad_out, x_hat, gamma, inv_std, sum_dy, sum_dy_xhat)
    }

    /// Max pooling forward; see [`ops::maxpool2d_forward`].
    ///
    /// # Errors
    ///
    /// Rank/geometry errors as documented on [`ops::maxpool2d_forward`].
    fn maxpool2d_forward(&self, input: &Tensor, k: usize) -> Result<(Tensor, MaxPoolIndices)> {
        ops::pool::maxpool2d_forward_naive(input, k)
    }

    /// Inference max pooling: forward without argmax bookkeeping; see
    /// [`ops::maxpool2d_eval`].
    ///
    /// # Errors
    ///
    /// Rank/geometry errors as documented on [`ops::maxpool2d_forward`].
    fn maxpool2d_eval(&self, input: &Tensor, k: usize) -> Result<Tensor> {
        ops::pool::maxpool2d_eval_naive(input, k)
    }

    /// Max pooling backward; see [`ops::maxpool2d_backward`].
    ///
    /// # Errors
    ///
    /// Length errors as documented on [`ops::maxpool2d_backward`].
    fn maxpool2d_backward(&self, grad_out: &Tensor, indices: &MaxPoolIndices) -> Result<Tensor> {
        ops::pool::maxpool2d_backward_naive(grad_out, indices)
    }

    /// Global average pooling forward; see [`ops::avgpool2d_global_forward`].
    ///
    /// # Errors
    ///
    /// Rank errors as documented on [`ops::avgpool2d_global_forward`].
    fn avgpool2d_global_forward(&self, input: &Tensor) -> Result<Tensor> {
        ops::pool::avgpool2d_global_forward_naive(input)
    }

    /// Global average pooling backward; see
    /// [`ops::avgpool2d_global_backward`].
    ///
    /// # Errors
    ///
    /// Shape errors as documented on [`ops::avgpool2d_global_backward`].
    fn avgpool2d_global_backward(&self, grad_out: &Tensor, input_dims: &[usize]) -> Result<Tensor> {
        ops::pool::avgpool2d_global_backward_naive(grad_out, input_dims)
    }
}

/// The single-threaded reference backend (the seed implementation,
/// unchanged). Serves as the bit-exact oracle for parity tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct Naive;

impl Backend for Naive {
    fn name(&self) -> &'static str {
        "naive"
    }
}

/// The multi-threaded backend: cache-blocked matmul, per-sample parallel
/// convolution and chunk-parallel elementwise/reduction kernels.
#[derive(Debug, Clone, Copy, Default)]
pub struct Parallel;

impl Backend for Parallel {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn matmul(&self, a: &Tensor, b: &Tensor) -> Result<Tensor> {
        ops::parallel::matmul(a, b)
    }

    fn matmul_transpose_a(&self, a: &Tensor, b: &Tensor) -> Result<Tensor> {
        ops::parallel::matmul_transpose_a(a, b)
    }

    fn matmul_transpose_b(&self, a: &Tensor, b: &Tensor) -> Result<Tensor> {
        ops::parallel::matmul_transpose_b(a, b)
    }

    fn conv2d_forward(
        &self,
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        stride: usize,
        pad: usize,
    ) -> Result<Tensor> {
        ops::parallel::conv2d_forward(input, weight, bias, stride, pad)
    }

    fn conv2d_backward(
        &self,
        input: &Tensor,
        weight: &Tensor,
        grad_out: &Tensor,
        stride: usize,
        pad: usize,
        has_bias: bool,
    ) -> Result<Conv2dGrads> {
        ops::parallel::conv2d_backward(input, weight, grad_out, stride, pad, has_bias)
    }

    fn conv2d_forward_packed(
        &self,
        input: &Tensor,
        packed: &PackedConv2dWeight,
        bias: Option<&Tensor>,
        stride: usize,
        pad: usize,
    ) -> Result<Tensor> {
        ops::parallel::conv2d_forward_packed(input, packed, bias, stride, pad)
    }

    fn conv2d_forward_fused(
        &self,
        input: &Tensor,
        packed: &PackedConv2dWeight,
        bias: Option<&Tensor>,
        stride: usize,
        pad: usize,
        epilogue: Epilogue<'_>,
    ) -> Result<Tensor> {
        ops::parallel::conv2d_forward_packed_fused(input, packed, bias, stride, pad, epilogue)
    }

    fn conv2d_backward_packed(
        &self,
        input: &Tensor,
        packed: &PackedConv2dWeight,
        grad_out: &Tensor,
        stride: usize,
        pad: usize,
        has_bias: bool,
    ) -> Result<Conv2dGrads> {
        ops::parallel::conv2d_backward_packed(input, packed, grad_out, stride, pad, has_bias)
    }

    fn conv2d_depthwise_forward(
        &self,
        input: &Tensor,
        packed: &PackedConv2dWeight,
        bias: Option<&Tensor>,
        stride: usize,
        pad: usize,
    ) -> Result<Tensor> {
        ops::parallel::conv2d_depthwise_forward(input, packed, bias, stride, pad, Epilogue::None)
    }

    fn conv2d_depthwise_forward_fused(
        &self,
        input: &Tensor,
        packed: &PackedConv2dWeight,
        bias: Option<&Tensor>,
        stride: usize,
        pad: usize,
        epilogue: Epilogue<'_>,
    ) -> Result<Tensor> {
        ops::parallel::conv2d_depthwise_forward(input, packed, bias, stride, pad, epilogue)
    }

    fn conv2d_depthwise_backward(
        &self,
        input: &Tensor,
        packed: &PackedConv2dWeight,
        grad_out: &Tensor,
        stride: usize,
        pad: usize,
        has_bias: bool,
    ) -> Result<Conv2dGrads> {
        ops::parallel::conv2d_depthwise_backward(input, packed, grad_out, stride, pad, has_bias)
    }

    fn add(&self, a: &Tensor, b: &Tensor) -> Result<Tensor> {
        ops::parallel::add(a, b)
    }

    fn sub(&self, a: &Tensor, b: &Tensor) -> Result<Tensor> {
        ops::parallel::sub(a, b)
    }

    fn hadamard(&self, a: &Tensor, b: &Tensor) -> Result<Tensor> {
        ops::parallel::hadamard(a, b)
    }

    fn add_assign(&self, a: &mut Tensor, b: &Tensor) -> Result<()> {
        ops::parallel::add_assign(a, b)
    }

    fn add_scaled(&self, a: &mut Tensor, b: &Tensor, alpha: f32) -> Result<()> {
        ops::parallel::add_scaled(a, b, alpha)
    }

    fn scale(&self, a: &Tensor, alpha: f32) -> Tensor {
        ops::parallel::scale(a, alpha)
    }

    fn unary(&self, a: &Tensor, f: &(dyn Fn(f32) -> f32 + Sync)) -> Tensor {
        ops::parallel::unary(a, f)
    }

    fn add_bias_rows(&self, out: &mut Tensor, bias: &Tensor) -> Result<()> {
        ops::parallel::add_bias_rows(out, bias)
    }

    fn channel_mean_var(&self, input: &Tensor) -> Result<(Tensor, Tensor)> {
        ops::parallel::channel_mean_var(input)
    }

    fn channel_sum(&self, input: &Tensor) -> Result<Tensor> {
        ops::parallel::channel_sum(input)
    }

    fn sum_axis0(&self, input: &Tensor) -> Result<Tensor> {
        ops::parallel::sum_axis0(input)
    }

    fn softmax_rows(&self, logits: &Tensor) -> Result<Tensor> {
        ops::parallel::softmax_rows(logits)
    }

    fn bn_normalize(&self, input: &Tensor, mean: &Tensor, inv_std: &Tensor) -> Result<Tensor> {
        ops::parallel::bn_normalize(input, mean, inv_std)
    }

    fn channel_affine(&self, input: &Tensor, scale: &Tensor, shift: &Tensor) -> Result<Tensor> {
        ops::parallel::channel_affine(input, scale, shift)
    }

    fn bn_backward_reduce(&self, grad_out: &Tensor, x_hat: &Tensor) -> Result<(Tensor, Tensor)> {
        ops::parallel::bn_backward_reduce(grad_out, x_hat)
    }

    fn bn_input_grad(
        &self,
        grad_out: &Tensor,
        x_hat: &Tensor,
        gamma: &Tensor,
        inv_std: &Tensor,
        sum_dy: &Tensor,
        sum_dy_xhat: &Tensor,
    ) -> Result<Tensor> {
        ops::parallel::bn_input_grad(grad_out, x_hat, gamma, inv_std, sum_dy, sum_dy_xhat)
    }

    fn maxpool2d_forward(&self, input: &Tensor, k: usize) -> Result<(Tensor, MaxPoolIndices)> {
        ops::parallel::maxpool2d_forward(input, k)
    }

    fn maxpool2d_eval(&self, input: &Tensor, k: usize) -> Result<Tensor> {
        ops::parallel::maxpool2d_eval(input, k)
    }

    fn maxpool2d_backward(&self, grad_out: &Tensor, indices: &MaxPoolIndices) -> Result<Tensor> {
        ops::parallel::maxpool2d_backward(grad_out, indices)
    }

    fn avgpool2d_global_forward(&self, input: &Tensor) -> Result<Tensor> {
        ops::parallel::avgpool2d_global_forward(input)
    }

    fn avgpool2d_global_backward(&self, grad_out: &Tensor, input_dims: &[usize]) -> Result<Tensor> {
        ops::parallel::avgpool2d_global_backward(grad_out, input_dims)
    }
}

static NAIVE: Naive = Naive;
static PARALLEL: Parallel = Parallel;

/// Identifies a backend; the value carried through layer constructors and
/// configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BackendKind {
    /// Single-threaded reference kernels.
    Naive,
    /// Blocked/threaded kernels.
    Parallel,
}

impl BackendKind {
    /// The static backend instance for this kind.
    pub fn imp(self) -> &'static dyn Backend {
        match self {
            BackendKind::Naive => &NAIVE,
            BackendKind::Parallel => &PARALLEL,
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.imp().name())
    }
}

impl FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "naive" => Ok(BackendKind::Naive),
            "parallel" => Ok(BackendKind::Parallel),
            other => Err(format!(
                "unknown backend {other:?} (expected \"naive\" or \"parallel\")"
            )),
        }
    }
}

const KIND_UNSET: u8 = 0;
const KIND_NAIVE: u8 = 1;
const KIND_PARALLEL: u8 = 2;

static GLOBAL_KIND: AtomicU8 = AtomicU8::new(KIND_UNSET);

fn kind_from_env() -> BackendKind {
    match std::env::var("TBNET_BACKEND") {
        Ok(v) => v.parse().unwrap_or_else(|e: String| {
            eprintln!("warning: TBNET_BACKEND ignored: {e}; using parallel");
            BackendKind::Parallel
        }),
        Err(_) => BackendKind::Parallel,
    }
}

/// The process-wide default backend kind.
pub fn global_kind() -> BackendKind {
    match GLOBAL_KIND.load(Ordering::Relaxed) {
        KIND_NAIVE => BackendKind::Naive,
        KIND_PARALLEL => BackendKind::Parallel,
        _ => {
            let kind = kind_from_env();
            set_global(kind);
            kind
        }
    }
}

/// Overrides the process-wide default backend.
pub fn set_global(kind: BackendKind) {
    let v = match kind {
        BackendKind::Naive => KIND_NAIVE,
        BackendKind::Parallel => KIND_PARALLEL,
    };
    GLOBAL_KIND.store(v, Ordering::Relaxed);
}

/// The process-wide default backend instance (what `ops::*` free functions
/// dispatch to).
pub fn global() -> &'static dyn Backend {
    global_kind().imp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_roundtrips_through_str() {
        assert_eq!("naive".parse::<BackendKind>().unwrap(), BackendKind::Naive);
        assert_eq!(
            "Parallel".parse::<BackendKind>().unwrap(),
            BackendKind::Parallel
        );
        assert!("gpu".parse::<BackendKind>().is_err());
        assert_eq!(BackendKind::Naive.to_string(), "naive");
        assert_eq!(BackendKind::Parallel.to_string(), "parallel");
    }

    #[test]
    fn global_kind_is_settable() {
        let before = global_kind();
        set_global(BackendKind::Naive);
        assert_eq!(global_kind(), BackendKind::Naive);
        assert_eq!(global().name(), "naive");
        set_global(before);
    }

    #[test]
    fn backends_expose_names() {
        assert_eq!(BackendKind::Naive.imp().name(), "naive");
        assert_eq!(BackendKind::Parallel.imp().name(), "parallel");
    }
}
