use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Shape, TensorError};

/// An owned, contiguous, row-major `f32` tensor.
///
/// `Tensor` is the single numeric container used throughout the TBNet
/// reproduction: network weights, gradients, activations and datasets are all
/// `Tensor`s. The representation is always contiguous, which keeps the
/// convolution kernels in [`crate::ops`] simple and predictable — the property
/// the TEE cost model relies on when counting bytes.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), tbnet_tensor::TensorError> {
/// use tbnet_tensor::Tensor;
///
/// let mut t = Tensor::zeros(&[2, 3]);
/// *t.at_mut(&[1, 2])? = 5.0;
/// assert_eq!(t.at(&[1, 2])?, 5.0);
/// assert_eq!(t.numel(), 6);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![0.0; shape.numel()],
            shape,
        }
    }

    /// Creates a tensor of ones with the given shape.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![value; shape.numel()],
            shape,
        }
    }

    /// Creates a square identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Wraps a `Vec<f32>` as a tensor with the given shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` disagrees with
    /// the number of elements implied by `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, TensorError> {
        let shape = Shape::new(dims);
        if data.len() != shape.numel() {
            return Err(TensorError::LengthMismatch {
                expected: shape.numel(),
                got: data.len(),
                op: "from_vec",
            });
        }
        Ok(Tensor { data, shape })
    }

    /// Builds a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor {
            data: data.to_vec(),
            shape: Shape::new(&[data.len()]),
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension sizes as a slice (shorthand for `self.shape().dims()`).
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of range.
    pub fn dim(&self, axis: usize) -> usize {
        self.shape.dim(axis)
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of the underlying contiguous buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying contiguous buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Propagates index validation errors from [`Shape::offset`].
    pub fn at(&self, index: &[usize]) -> Result<f32, TensorError> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Mutable reference to the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Propagates index validation errors from [`Shape::offset`].
    pub fn at_mut(&mut self, index: &[usize]) -> Result<&mut f32, TensorError> {
        let off = self.shape.offset(index)?;
        Ok(&mut self.data[off])
    }

    /// Returns a tensor with the same data re-interpreted under a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor, TensorError> {
        let shape = Shape::new(dims);
        if shape.numel() != self.numel() {
            return Err(TensorError::LengthMismatch {
                expected: shape.numel(),
                got: self.numel(),
                op: "reshape",
            });
        }
        Ok(Tensor {
            data: self.data.clone(),
            shape,
        })
    }

    /// In-place fill with a constant.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|x| *x = value);
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        self.data.iter_mut().for_each(|x| *x = f(*x));
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (`None` for an empty tensor).
    pub fn max(&self) -> Option<f32> {
        self.data.iter().copied().reduce(f32::max)
    }

    /// Minimum element (`None` for an empty tensor).
    pub fn min(&self) -> Option<f32> {
        self.data.iter().copied().reduce(f32::min)
    }

    /// Index of the maximum element in the flattened buffer.
    pub fn argmax(&self) -> Option<usize> {
        self.data
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
    }

    /// Squared L2 norm of all elements.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Sum of absolute values (L1 norm) of all elements.
    pub fn l1_norm(&self) -> f32 {
        self.data.iter().map(|&x| x.abs()).sum()
    }

    /// `true` when every element is finite (no NaN/Inf) — useful as a training
    /// invariant in tests.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Matrix product `self @ other` (convenience wrapper around
    /// [`crate::ops::matmul`]).
    ///
    /// # Errors
    ///
    /// See [`crate::ops::matmul`].
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        crate::ops::matmul(self, other)
    }

    /// Elementwise sum (convenience wrapper around [`crate::ops::add`]).
    ///
    /// # Errors
    ///
    /// See [`crate::ops::add`].
    pub fn add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        crate::ops::add(self, other)
    }

    /// Checks that `other` has exactly this tensor's shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] labelled with `op` otherwise.
    pub fn expect_same_shape(&self, other: &Tensor, op: &'static str) -> Result<(), TensorError> {
        if !self.shape.same_as(&other.shape) {
            return Err(TensorError::ShapeMismatch {
                expected: self.shape.dims().to_vec(),
                got: other.shape.dims().to_vec(),
                op,
            });
        }
        Ok(())
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        if self.numel() <= 16 {
            write!(f, "{:?}", self.data)
        } else {
            write!(
                f,
                "[{:.4}, {:.4}, … {} elements …, {:.4}]",
                self.data[0],
                self.data[1],
                self.numel(),
                self.data[self.numel() - 1]
            )
        }
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros(&[2, 2]).sum(), 0.0);
        assert_eq!(Tensor::ones(&[2, 2]).sum(), 4.0);
        assert_eq!(Tensor::full(&[3], 2.5).sum(), 7.5);
        let eye = Tensor::eye(3);
        assert_eq!(eye.sum(), 3.0);
        assert_eq!(eye.at(&[1, 1]).unwrap(), 1.0);
        assert_eq!(eye.at(&[0, 1]).unwrap(), 0.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
    }

    #[test]
    fn indexing_roundtrip() {
        let mut t = Tensor::zeros(&[2, 3, 4]);
        *t.at_mut(&[1, 2, 3]).unwrap() = 9.0;
        assert_eq!(t.at(&[1, 2, 3]).unwrap(), 9.0);
        assert_eq!(t.as_slice()[23], 9.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.dims(), &[3, 2]);
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_slice(&[1.0, -2.0, 3.0]);
        assert_eq!(t.sum(), 2.0);
        assert!((t.mean() - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(t.max(), Some(3.0));
        assert_eq!(t.min(), Some(-2.0));
        assert_eq!(t.argmax(), Some(2));
        assert_eq!(t.l1_norm(), 6.0);
        assert_eq!(t.sq_norm(), 14.0);
    }

    #[test]
    fn map_and_fill() {
        let mut t = Tensor::from_slice(&[1.0, 2.0]);
        let doubled = t.map(|x| 2.0 * x);
        assert_eq!(doubled.as_slice(), &[2.0, 4.0]);
        t.map_inplace(|x| x + 1.0);
        assert_eq!(t.as_slice(), &[2.0, 3.0]);
        t.fill(0.0);
        assert_eq!(t.sum(), 0.0);
    }

    #[test]
    fn finiteness_check() {
        let mut t = Tensor::ones(&[2]);
        assert!(t.all_finite());
        t.as_mut_slice()[0] = f32::NAN;
        assert!(!t.all_finite());
    }

    #[test]
    fn expect_same_shape_errors() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[3, 2]);
        assert!(a.expect_same_shape(&b, "test").is_err());
        assert!(a.expect_same_shape(&a.clone(), "test").is_ok());
    }

    #[test]
    fn debug_output_small_and_large() {
        let small = Tensor::ones(&[2]);
        assert!(format!("{small:?}").contains("1.0"));
        let large = Tensor::ones(&[100]);
        assert!(format!("{large:?}").contains("elements"));
    }

    #[test]
    fn tensor_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tensor>();
    }
}
