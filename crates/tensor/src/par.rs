//! Parallelism substrate: a persistent worker pool shared by the
//! [`Parallel`] backend kernels and the data-parallel trainer in
//! `tbnet-core`.
//!
//! Earlier revisions built every helper on `std::thread::scope`, paying a
//! scoped-spawn (tens of microseconds) on *every* kernel call. This module
//! now owns a process-wide pool of long-lived workers fed through a shared
//! job queue: a helper call enqueues its chunk tasks, the calling thread
//! helps drain the queue, and everyone parks on condvars between calls. No
//! threads are spawned on steady-state hot paths — workers are created
//! lazily on first demand and then reused for the life of the process.
//!
//! Nested calls (a pool task invoking another `par` helper) execute inline
//! on the worker that is already running: this keeps the pool deadlock-free
//! by construction and caps the parallelism at one well-defined level — the
//! outermost helper call.
//!
//! Determinism: all helpers split work into *contiguous* chunks in index
//! order and return per-chunk results in that same order, so reductions
//! that fold chunk results left-to-right are deterministic for a fixed
//! thread count, regardless of which worker ran which chunk.
//!
//! [`Parallel`]: crate::backend::Parallel

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Upper bound on concurrently executing tasks per helper call.
///
/// Resolution order: an explicit [`set_max_threads`] override, else the
/// `TBNET_THREADS` environment variable, else the machine's available
/// parallelism. The resolved value is cached; [`set_max_threads`] replaces
/// it immediately (it is authoritative over the environment) and
/// [`reset_max_threads`] drops the cache so the next read re-derives from
/// the environment — tests use the pair to avoid poisoning each other.
pub fn max_threads() -> usize {
    match THREADS.load(Ordering::Relaxed) {
        0 => {
            let n = threads_from_env();
            THREADS.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

fn threads_from_env() -> usize {
    if let Some(n) = std::env::var("TBNET_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        n.max(1)
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Overrides the thread cap at runtime (tests use this to force multi-chunk
/// code paths on single-core hosts). Values < 1 are treated as 1. The
/// override is authoritative: once set it wins over `TBNET_THREADS` until
/// [`reset_max_threads`] clears it.
pub fn set_max_threads(n: usize) {
    THREADS.store(n.max(1), Ordering::Relaxed);
}

/// Clears any cached or explicitly set thread cap so the next
/// [`max_threads`] call re-reads `TBNET_THREADS` / the hardware count.
/// Without this, a cap memoized (or set) by one test silently leaks into
/// every later `par` call in the process.
pub fn reset_max_threads() {
    THREADS.store(0, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// The persistent worker pool.
// ---------------------------------------------------------------------------

/// Hard ceiling on pool workers, far above any sane `TBNET_THREADS`; a
/// backstop against runaway demand, not a tuning knob.
const MAX_POOL_WORKERS: usize = 256;

/// A borrowed task closure whose lifetime has been erased for transit
/// through the 'static job queue. Only [`run_erased`] creates these, and it
/// does not return until every task has finished running, which is what
/// makes the erasure sound (see the SAFETY comment there).
type TaskFn = &'static (dyn Fn(usize) + Sync);

/// Completion state shared by the tasks of one `run_erased` call.
struct ScopeState {
    remaining: Mutex<usize>,
    all_done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

struct Task {
    run: TaskFn,
    index: usize,
    scope: Arc<ScopeState>,
}

struct Pool {
    queue: Mutex<VecDeque<Task>>,
    task_ready: Condvar,
    workers: AtomicUsize,
    jobs_completed: AtomicUsize,
}

static POOL: OnceLock<Arc<Pool>> = OnceLock::new();

fn pool() -> &'static Arc<Pool> {
    POOL.get_or_init(|| {
        Arc::new(Pool {
            queue: Mutex::new(VecDeque::new()),
            task_ready: Condvar::new(),
            workers: AtomicUsize::new(0),
            jobs_completed: AtomicUsize::new(0),
        })
    })
}

/// Number of live pool workers (0 until first parallel demand). Stable
/// across calls once warmed up — tests assert on this to prove the hot path
/// spawns no threads.
pub fn pool_workers() -> usize {
    POOL.get().map_or(0, |p| p.workers.load(Ordering::Relaxed))
}

/// Total tasks the pool has completed since process start (helping callers
/// included). Monotonic; tests diff it around a region to prove work went
/// through the pool rather than inline.
pub fn pool_jobs_completed() -> usize {
    POOL.get()
        .map_or(0, |p| p.jobs_completed.load(Ordering::Relaxed))
}

thread_local! {
    /// True while this thread is executing a pool task; nested helper calls
    /// observe it and run inline.
    static IN_TASK: Cell<bool> = const { Cell::new(false) };
}

fn worker_loop(pool: Arc<Pool>) {
    loop {
        let task = {
            let mut queue = pool.queue.lock().unwrap();
            loop {
                if let Some(task) = queue.pop_front() {
                    break task;
                }
                queue = pool.task_ready.wait(queue).unwrap();
            }
        };
        run_task(task, &pool);
    }
}

/// Executes one task, recording a panic instead of unwinding (the owning
/// `run_erased` call rethrows it after the barrier) and signalling the
/// scope's completion latch.
fn run_task(task: Task, pool: &Pool) {
    let was_in_task = IN_TASK.with(|flag| flag.replace(true));
    let outcome = catch_unwind(AssertUnwindSafe(|| (task.run)(task.index)));
    IN_TASK.with(|flag| flag.set(was_in_task));
    if let Err(payload) = outcome {
        let mut slot = task.scope.panic.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
    pool.jobs_completed.fetch_add(1, Ordering::Relaxed);
    let mut remaining = task.scope.remaining.lock().unwrap();
    *remaining -= 1;
    if *remaining == 0 {
        task.scope.all_done.notify_all();
    }
}

/// Grows the pool to at least `wanted` workers (grow-only, capped).
fn ensure_workers(pool: &Arc<Pool>, wanted: usize) {
    let wanted = wanted.min(MAX_POOL_WORKERS);
    loop {
        let current = pool.workers.load(Ordering::Relaxed);
        if current >= wanted {
            return;
        }
        if pool
            .workers
            .compare_exchange(current, current + 1, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            let handle = Arc::clone(pool);
            std::thread::Builder::new()
                .name(format!("tbnet-par-{current}"))
                .spawn(move || worker_loop(handle))
                .expect("spawn pool worker");
        }
    }
}

/// Runs `f(0..count)` across the pool and the calling thread, returning
/// only when every call has finished. `count` must be ≥ 2 (smaller runs are
/// inlined by [`run`]).
fn run_erased(count: usize, f: &(dyn Fn(usize) + Sync)) {
    // A cap of 1 means fully serial — run inline instead of enqueueing.
    // Going through the shared queue would let workers spawned under an
    // earlier, larger cap steal tasks, which both violates the serial
    // contract and migrates thread-local scratch arenas across threads so
    // they never reach allocation steady state.
    if max_threads() <= 1 {
        for index in 0..count {
            f(index);
        }
        return;
    }
    let pool = pool();
    // The calling thread participates, so `max_threads() - 1` workers give
    // exactly the configured concurrency; excess tasks queue.
    ensure_workers(pool, count.min(max_threads()).saturating_sub(1));
    // SAFETY: `f` outlives every use of the erased reference. Tasks holding
    // it exist only in the queue or on an executing thread, and this
    // function does not return (or unwind — the caller-help path catches
    // task panics, and the rethrow below happens last) until the scope's
    // `remaining` latch confirms all `count` tasks have finished running.
    #[allow(unsafe_code)]
    let run: TaskFn = unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), TaskFn>(f) };
    let scope = Arc::new(ScopeState {
        remaining: Mutex::new(count),
        all_done: Condvar::new(),
        panic: Mutex::new(None),
    });
    {
        let mut queue = pool.queue.lock().unwrap();
        for index in 0..count {
            queue.push_back(Task {
                run,
                index,
                scope: Arc::clone(&scope),
            });
        }
    }
    pool.task_ready.notify_all();
    // The caller helps drain the queue (its own tasks lead in FIFO order, a
    // concurrent scope's may follow) so enqueued work can never be stranded
    // behind a busy pool, then parks on the completion latch for whatever
    // the workers picked up first.
    loop {
        let task = pool.queue.lock().unwrap().pop_front();
        match task {
            Some(task) => run_task(task, pool),
            None => break,
        }
    }
    let mut remaining = scope.remaining.lock().unwrap();
    while *remaining > 0 {
        remaining = scope.all_done.wait(remaining).unwrap();
    }
    drop(remaining);
    let payload = scope.panic.lock().unwrap().take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

/// Runs `f(index, item)` for every item on the persistent pool, returning
/// results in item order. The calling thread participates, a single item
/// (or a nested call from inside another pool task) runs inline, and a
/// panicking `f` is rethrown here after all other items finish.
///
/// This is the primitive the chunked helpers below — and batch-level loops
/// in `tbnet-core` — are built on.
pub fn run<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    if n <= 1 || IN_TASK.with(|flag| flag.get()) {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let task = |i: usize| {
        let item = slots[i]
            .lock()
            .unwrap()
            .take()
            .expect("each pool task claims its slot exactly once");
        let out = f(i, item);
        *results[i].lock().unwrap() = Some(out);
    };
    run_erased(n, &task);
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap()
                .expect("pool ran every task to completion")
        })
        .collect()
}

/// Splits `0..n` into at most `parts` contiguous near-equal ranges.
pub fn partition(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.clamp(1, n.max(1));
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        if len == 0 {
            break;
        }
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Runs `f` over a partition of `0..n` (at least `min_per_part` indices per
/// part), collecting results in range order. Runs inline when a single part
/// suffices.
pub fn map_parts<R, F>(n: usize, min_per_part: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let parts = if min_per_part == 0 {
        max_threads()
    } else {
        max_threads().min(n.div_ceil(min_per_part.max(1)))
    };
    let ranges = partition(n, parts);
    run(ranges, |_i, r| f(r))
}

/// Splits `data` into contiguous chunks of `chunk_len` elements and runs
/// `f(chunk_index, chunk)` on each, in parallel on the pool. The last chunk
/// may be shorter. Runs inline when one chunk covers everything.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk_len = chunk_len.max(1);
    if data.len() <= chunk_len {
        if !data.is_empty() {
            f(0, data);
        }
        return;
    }
    let chunks: Vec<(usize, &mut [T])> = data.chunks_mut(chunk_len).enumerate().collect();
    run(chunks, |_i, (ci, chunk)| f(ci, chunk));
}

/// Parallel zip over two mutable slices chunked consistently: the `i`-th
/// chunk of `a` (length `a_chunk`) is processed together with the `i`-th
/// chunk of `b` (length `b_chunk`). The two slices must describe the same
/// number of chunks.
pub fn for_each_chunk_mut2<T, U, F>(a: &mut [T], b: &mut [U], a_chunk: usize, b_chunk: usize, f: F)
where
    T: Send,
    U: Send,
    F: Fn(usize, &mut [T], &mut [U]) + Sync,
{
    let a_chunk = a_chunk.max(1);
    let b_chunk = b_chunk.max(1);
    debug_assert_eq!(a.len().div_ceil(a_chunk), b.len().div_ceil(b_chunk));
    if a.len() <= a_chunk {
        if !a.is_empty() {
            f(0, a, b);
        }
        return;
    }
    type ChunkPair<'c, T, U> = (usize, (&'c mut [T], &'c mut [U]));
    let pairs: Vec<ChunkPair<'_, T, U>> = a
        .chunks_mut(a_chunk)
        .zip(b.chunks_mut(b_chunk))
        .enumerate()
        .collect();
    run(pairs, |_i, (ci, (ca, cb))| f(ci, ca, cb));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_everything_in_order() {
        for n in [0usize, 1, 5, 16, 17, 100] {
            for parts in [1usize, 2, 3, 8, 200] {
                let ranges = partition(n, parts);
                let mut covered = 0;
                for r in &ranges {
                    assert_eq!(r.start, covered, "n={n} parts={parts}");
                    covered = r.end;
                }
                assert_eq!(covered, n, "n={n} parts={parts}");
            }
        }
    }

    #[test]
    fn map_parts_results_in_range_order() {
        let sums = map_parts(100, 10, |r| r.sum::<usize>());
        let total: usize = sums.iter().sum();
        assert_eq!(total, (0..100).sum::<usize>());
        // Chunk order must match index order (sums of contiguous ascending
        // ranges are strictly increasing). On a single-core host there may
        // be only one chunk.
        assert!(sums.windows(2).all(|p| p[0] < p[1]));
    }

    #[test]
    fn chunked_mutation_touches_every_element_once() {
        let mut data = vec![0u32; 1000];
        for_each_chunk_mut(&mut data, 64, |i, chunk| {
            for x in chunk.iter_mut() {
                *x += 1 + i as u32;
            }
        });
        assert!(data.iter().all(|&x| x >= 1));
        let expected: u32 = (0..1000).map(|j| 1 + (j / 64) as u32).sum();
        assert_eq!(data.iter().sum::<u32>(), expected);
    }

    #[test]
    fn paired_chunks_stay_aligned() {
        let mut a = vec![0usize; 60]; // unit 6
        let mut b = vec![0usize; 20]; // unit 2
        for_each_chunk_mut2(&mut a, &mut b, 12, 4, |i, ca, cb| {
            for x in ca.iter_mut() {
                *x = i;
            }
            for x in cb.iter_mut() {
                *x = i;
            }
        });
        for i in 0..5 {
            assert!(a[i * 12..(i + 1) * 12].iter().all(|&x| x == i));
            assert!(b[i * 4..(i + 1) * 4].iter().all(|&x| x == i));
        }
    }

    #[test]
    fn small_inputs_run_inline() {
        let mut data = vec![1.0f32; 3];
        for_each_chunk_mut(&mut data, 1000, |i, chunk| {
            assert_eq!(i, 0);
            chunk[0] = 2.0;
        });
        assert_eq!(data[0], 2.0);
        let r = map_parts(2, 1000, |r| r.len());
        assert_eq!(r, vec![2]);
    }

    #[test]
    fn run_preserves_item_order_and_moves_items() {
        let items: Vec<String> = (0..16).map(|i| format!("item-{i}")).collect();
        let out = run(items, |i, s| format!("{i}:{s}"));
        for (i, s) in out.iter().enumerate() {
            assert_eq!(s, &format!("{i}:item-{i}"));
        }
    }

    #[test]
    fn pool_workers_persist_across_calls() {
        // Pin a cap above 1: with a cap of 1 `run` executes fully inline
        // and never touches the pool (see `run_erased`), so on a
        // single-core host there would be nothing to observe here.
        set_max_threads(2);
        // Warm the pool with a first multi-task call…
        let _ = run((0..8).collect::<Vec<_>>(), |_i, x: i32| x * 2);
        let jobs = pool_jobs_completed();
        // …then check later calls run through the pool (the job counter
        // advances) while the worker population stays bounded by the
        // thread cap — sibling tests share the process-wide pool and run
        // concurrently, so a flat-count equality would race; the
        // deterministic no-spawn assertion lives in tests/train_parity.rs,
        // which owns its process and pins the cap.
        for _ in 0..10 {
            let doubled = run((0..8).collect::<Vec<_>>(), |_i, x: i32| x * 2);
            assert_eq!(doubled, vec![0, 2, 4, 6, 8, 10, 12, 14]);
        }
        assert!(pool_jobs_completed() >= jobs + 80);
        assert!(
            pool_workers() <= max_threads().max(threads_from_env()),
            "worker population must stay within the thread cap"
        );
        reset_max_threads();
    }

    #[test]
    fn nested_runs_execute_inline() {
        let depths = run((0..4).collect::<Vec<_>>(), |_i, x: i32| {
            // A nested run from inside a pool task must not re-enter the
            // pool (it would serialize behind ourselves); it runs inline
            // and still produces correct results.
            let inner = run((0..3).collect::<Vec<_>>(), move |_j, y: i32| y + x);
            inner.iter().sum::<i32>()
        });
        assert_eq!(depths, vec![3, 6, 9, 12]);
    }

    #[test]
    fn task_panics_propagate_to_the_caller() {
        let result = std::panic::catch_unwind(|| {
            run((0..6).collect::<Vec<_>>(), |_i, x: i32| {
                if x == 3 {
                    panic!("boom from task {x}");
                }
                x
            })
        });
        assert!(result.is_err(), "task panic must reach the caller");
        // The pool must stay serviceable after a panic.
        let ok = run((0..6).collect::<Vec<_>>(), |_i, x: i32| x + 1);
        assert_eq!(ok, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn thread_cap_override_and_reset() {
        // Hold a lock-free protocol with other tests: this test is the only
        // one that mutates the cap, and it restores the prior state.
        let before = max_threads();
        set_max_threads(3);
        assert_eq!(max_threads(), 3);
        set_max_threads(0); // clamps to 1
        assert_eq!(max_threads(), 1);
        reset_max_threads();
        // After a reset the cap re-derives from the environment/hardware,
        // not from the stale override.
        let derived = max_threads();
        assert!(derived >= 1);
        set_max_threads(before);
        assert_eq!(max_threads(), before);
        reset_max_threads();
    }
}
