//! Scoped-thread parallelism helpers used by the [`Parallel`] backend and by
//! higher-level crates (batch-level parallelism in `tbnet-core`).
//!
//! Everything here is built on `std::thread::scope` — no thread-pool crate is
//! available offline — so helpers are written to spawn at most
//! [`max_threads`] threads per call and to fall back to plain sequential
//! execution when the work is too small to amortize spawn cost (a scoped
//! spawn costs tens of microseconds).
//!
//! Determinism: all helpers split work into *contiguous* chunks in index
//! order and return per-chunk results in that same order, so reductions that
//! fold chunk results left-to-right are deterministic for a fixed thread
//! count.
//!
//! [`Parallel`]: crate::backend::Parallel

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Upper bound on threads spawned by any single helper call.
///
/// Defaults to the machine's available parallelism; override with the
/// `TBNET_THREADS` environment variable or [`set_max_threads`] (values < 1
/// are treated as 1).
pub fn max_threads() -> usize {
    match THREADS.load(Ordering::Relaxed) {
        0 => {
            let n = if let Some(n) = std::env::var("TBNET_THREADS")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
            {
                n.max(1)
            } else {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            };
            THREADS.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// Overrides the thread cap at runtime (tests use this to force multi-chunk
/// code paths on single-core hosts). Values < 1 are treated as 1.
pub fn set_max_threads(n: usize) {
    THREADS.store(n.max(1), Ordering::Relaxed);
}

/// Splits `0..n` into at most `parts` contiguous near-equal ranges.
pub fn partition(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.clamp(1, n.max(1));
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        if len == 0 {
            break;
        }
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Runs `f` over a partition of `0..n` (at least `min_per_part` indices per
/// part), collecting results in range order. Runs inline when a single part
/// suffices.
pub fn map_parts<R, F>(n: usize, min_per_part: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let parts = if min_per_part == 0 {
        max_threads()
    } else {
        max_threads().min(n.div_ceil(min_per_part.max(1)))
    };
    let ranges = partition(n, parts);
    if ranges.len() <= 1 {
        return ranges.into_iter().map(f).collect();
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = ranges.into_iter().map(|r| s.spawn(|| f(r))).collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// Splits `data` into contiguous chunks of `chunk_len` elements and runs
/// `f(chunk_index, chunk)` on each, in parallel. The last chunk may be
/// shorter. Runs inline when one chunk covers everything.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk_len = chunk_len.max(1);
    if data.len() <= chunk_len {
        if !data.is_empty() {
            f(0, data);
        }
        return;
    }
    std::thread::scope(|s| {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            let f = &f;
            s.spawn(move || f(i, chunk));
        }
    });
}

/// Parallel zip over two mutable slices chunked consistently: the `i`-th
/// chunk of `a` (length `a_chunk`) is processed together with the `i`-th
/// chunk of `b` (length `b_chunk`). The two slices must describe the same
/// number of chunks.
pub fn for_each_chunk_mut2<T, U, F>(a: &mut [T], b: &mut [U], a_chunk: usize, b_chunk: usize, f: F)
where
    T: Send,
    U: Send,
    F: Fn(usize, &mut [T], &mut [U]) + Sync,
{
    let a_chunk = a_chunk.max(1);
    let b_chunk = b_chunk.max(1);
    debug_assert_eq!(a.len().div_ceil(a_chunk), b.len().div_ceil(b_chunk));
    if a.len() <= a_chunk {
        if !a.is_empty() {
            f(0, a, b);
        }
        return;
    }
    std::thread::scope(|s| {
        for (i, (ca, cb)) in a.chunks_mut(a_chunk).zip(b.chunks_mut(b_chunk)).enumerate() {
            let f = &f;
            s.spawn(move || f(i, ca, cb));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_everything_in_order() {
        for n in [0usize, 1, 5, 16, 17, 100] {
            for parts in [1usize, 2, 3, 8, 200] {
                let ranges = partition(n, parts);
                let mut covered = 0;
                for r in &ranges {
                    assert_eq!(r.start, covered, "n={n} parts={parts}");
                    covered = r.end;
                }
                assert_eq!(covered, n, "n={n} parts={parts}");
            }
        }
    }

    #[test]
    fn map_parts_results_in_range_order() {
        let sums = map_parts(100, 10, |r| r.sum::<usize>());
        let total: usize = sums.iter().sum();
        assert_eq!(total, (0..100).sum::<usize>());
        // Chunk order must match index order (sums of contiguous ascending
        // ranges are strictly increasing). On a single-core host there may
        // be only one chunk.
        assert!(sums.windows(2).all(|p| p[0] < p[1]));
    }

    #[test]
    fn chunked_mutation_touches_every_element_once() {
        let mut data = vec![0u32; 1000];
        for_each_chunk_mut(&mut data, 64, |i, chunk| {
            for x in chunk.iter_mut() {
                *x += 1 + i as u32;
            }
        });
        assert!(data.iter().all(|&x| x >= 1));
        let expected: u32 = (0..1000).map(|j| 1 + (j / 64) as u32).sum();
        assert_eq!(data.iter().sum::<u32>(), expected);
    }

    #[test]
    fn paired_chunks_stay_aligned() {
        let mut a = vec![0usize; 60]; // unit 6
        let mut b = vec![0usize; 20]; // unit 2
        for_each_chunk_mut2(&mut a, &mut b, 12, 4, |i, ca, cb| {
            for x in ca.iter_mut() {
                *x = i;
            }
            for x in cb.iter_mut() {
                *x = i;
            }
        });
        for i in 0..5 {
            assert!(a[i * 12..(i + 1) * 12].iter().all(|&x| x == i));
            assert!(b[i * 4..(i + 1) * 4].iter().all(|&x| x == i));
        }
    }

    #[test]
    fn small_inputs_run_inline() {
        let mut data = vec![1.0f32; 3];
        for_each_chunk_mut(&mut data, 1000, |i, chunk| {
            assert_eq!(i, 0);
            chunk[0] = 2.0;
        });
        assert_eq!(data[0], 2.0);
        let r = map_parts(2, 1000, |r| r.len());
        assert_eq!(r, vec![2]);
    }
}
