use std::error::Error;
use std::fmt;

/// Error type for every fallible operation in `tbnet-tensor`.
///
/// The variants carry enough context to diagnose shape bugs in the network
/// wiring without a debugger, which matters because the TBNet pruning pipeline
/// rewrites channel counts at runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// Two tensors (or a tensor and an expectation) disagreed on shape.
    ShapeMismatch {
        /// Shape the operation expected.
        expected: Vec<usize>,
        /// Shape it actually received.
        got: Vec<usize>,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// The number of elements does not match the requested shape.
    LengthMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements provided.
        got: usize,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// A tensor had the wrong rank (number of dimensions).
    RankMismatch {
        /// Expected rank.
        expected: usize,
        /// Actual rank.
        got: usize,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// The inner dimensions of a matrix product disagree.
    MatmulDimMismatch {
        /// Columns of the left operand.
        lhs_cols: usize,
        /// Rows of the right operand.
        rhs_rows: usize,
    },
    /// A convolution/pooling geometry is impossible (e.g. kernel larger than
    /// the padded input).
    InvalidGeometry {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// An axis index was out of range for the tensor rank.
    AxisOutOfRange {
        /// The requested axis.
        axis: usize,
        /// The tensor rank.
        rank: usize,
    },
    /// A parameter (stride, kernel size, …) must be non-zero.
    ZeroSizedParameter {
        /// Name of the offending parameter.
        name: &'static str,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, got, op } => write!(
                f,
                "shape mismatch in `{op}`: expected {expected:?}, got {got:?}"
            ),
            TensorError::LengthMismatch { expected, got, op } => write!(
                f,
                "length mismatch in `{op}`: shape implies {expected} elements, got {got}"
            ),
            TensorError::RankMismatch { expected, got, op } => write!(
                f,
                "rank mismatch in `{op}`: expected rank {expected}, got rank {got}"
            ),
            TensorError::MatmulDimMismatch { lhs_cols, rhs_rows } => write!(
                f,
                "matmul inner dimensions disagree: lhs has {lhs_cols} columns, rhs has {rhs_rows} rows"
            ),
            TensorError::InvalidGeometry { reason } => {
                write!(f, "invalid convolution/pooling geometry: {reason}")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank-{rank} tensor")
            }
            TensorError::ZeroSizedParameter { name } => {
                write!(f, "parameter `{name}` must be non-zero")
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = TensorError::ShapeMismatch {
            expected: vec![2, 3],
            got: vec![3, 2],
            op: "add",
        };
        let text = err.to_string();
        assert!(text.contains("add"));
        assert!(text.contains("[2, 3]"));
        assert!(text.contains("[3, 2]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }

    #[test]
    fn matmul_mismatch_message() {
        let err = TensorError::MatmulDimMismatch {
            lhs_cols: 4,
            rhs_rows: 5,
        };
        assert!(err.to_string().contains('4'));
        assert!(err.to_string().contains('5'));
    }
}
