//! Thread-local scratch arena: reusable `f32` buffers for kernel internals.
//!
//! Every fused kernel in `ops::parallel` draws its transient
//! buffers — im2col panels, transposed operand packs, per-chunk gradient
//! accumulators — from this arena instead of the heap. A buffer is checked
//! out with [`take`] / [`take_zeroed`], used for the duration of one kernel
//! call, and returned to the owning thread's free list when its [`Scratch`]
//! guard drops. After a warm-up call the free list holds a buffer of every
//! size the kernel needs, so the steady-state hot path performs **zero heap
//! allocations**: `Vec::resize` within retained capacity never touches the
//! allocator.
//!
//! The arena is *thread-local* on purpose: the persistent workers in
//! [`crate::par`] are long-lived, so each worker warms its own arena once
//! and then reuses it for the life of the process, with no cross-thread
//! synchronization on the hot path. The only global state is a monotonic
//! [`reserved_elems`] counter recording total capacity growth across all
//! threads — benches and the steady-state allocation tests assert it stops
//! moving after warm-up.
//!
//! Checkout uses best-fit selection (the smallest free buffer whose
//! *capacity* covers the request) and grows in power-of-two size classes,
//! which together make the buffer-to-request assignment stable across
//! identically-shaped calls *in any order* — pool tasks migrate between
//! workers from call to call, and the ≤2x class rounding is what lets a
//! permuted checkout order reuse the same capacities instead of nudging
//! them upward forever. That stability is the property the zero-growth
//! assertions rely on.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Total `f32` capacity ever reserved by arena buffers, across all threads.
/// Monotonic: it grows when a checkout outgrows every free buffer and never
/// shrinks (buffers are retained, not freed).
static RESERVED: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's free list of retained buffers.
    static FREE: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
    /// This thread's share of [`RESERVED`] (for tests that must not observe
    /// concurrent growth on sibling test threads).
    static RESERVED_LOCAL: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// A checked-out scratch buffer. Derefs to `[f32]`; returns its allocation
/// to the owning thread's arena on drop.
#[derive(Debug)]
pub struct Scratch {
    buf: Vec<f32>,
}

impl Deref for Scratch {
    type Target = [f32];

    fn deref(&self) -> &[f32] {
        &self.buf
    }
}

impl DerefMut for Scratch {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.buf
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        if buf.capacity() > 0 {
            FREE.with(|f| f.borrow_mut().push(buf));
        }
    }
}

fn checkout(len: usize) -> Vec<f32> {
    if len == 0 {
        return Vec::new();
    }
    let reclaimed = FREE.with(|f| {
        let mut free = f.borrow_mut();
        // Best fit: smallest retained buffer that already covers the
        // request. Falls back to growing the largest retained buffer so the
        // arena converges on one buffer per concurrent checkout size
        // instead of abandoning undersized allocations.
        let best = free
            .iter()
            .enumerate()
            .filter(|(_, b)| b.capacity() >= len)
            .min_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i)
            .or_else(|| {
                free.iter()
                    .enumerate()
                    .max_by_key(|(_, b)| b.capacity())
                    .map(|(i, _)| i)
            });
        best.map(|i| free.swap_remove(i))
    });
    let mut buf = reclaimed.unwrap_or_default();
    if buf.capacity() < len {
        // Grow to the next power-of-two size class. Pool tasks land on
        // different workers from call to call, so a thread's checkout
        // *order* over mixed sizes is not stable; exact-fit growth would
        // then keep nudging capacities upward forever. With ≤2x
        // over-provisioned classes, any permutation of the same request
        // multiset maps to the same capacity classes — growth provably
        // stops once every class exists.
        let class = len.next_power_of_two();
        let before = buf.capacity();
        buf.clear();
        buf.reserve_exact(class);
        let grown = buf.capacity() - before;
        RESERVED.fetch_add(grown, Ordering::Relaxed);
        RESERVED_LOCAL.with(|r| r.set(r.get() + grown));
    }
    buf
}

/// Checks out a scratch buffer of exactly `len` elements with **arbitrary
/// contents** (callers must fully overwrite it). Allocates only if no
/// retained buffer is large enough.
pub fn take(len: usize) -> Scratch {
    let mut buf = checkout(len);
    // SAFETY-free fast resize: elements are plain f32, resize within
    // capacity never reallocates. Contents left over from the previous
    // checkout are deliberately visible — this is the "uninitialized"
    // variant.
    if buf.len() < len {
        buf.resize(len, 0.0);
    } else {
        buf.truncate(len);
    }
    Scratch { buf }
}

/// Checks out a zero-filled scratch buffer of `len` elements.
pub fn take_zeroed(len: usize) -> Scratch {
    let mut s = take(len);
    s.buf.fill(0.0);
    s
}

/// Total `f32` capacity reserved by arena buffers across all threads since
/// process start (monotonic). Steady-state assertions diff this around a
/// repeated workload to prove the second pass reused warm buffers instead
/// of allocating.
pub fn reserved_elems() -> usize {
    RESERVED.load(Ordering::Relaxed)
}

/// The calling thread's share of [`reserved_elems`] — immune to concurrent
/// growth on other threads, so single-threaded steady-state assertions can
/// use it even while sibling tests run.
pub fn thread_reserved_elems() -> usize {
    RESERVED_LOCAL.with(|r| r.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_zeroed_is_zeroed_even_after_reuse() {
        {
            let mut a = take(128);
            a.iter_mut().for_each(|x| *x = 7.0);
        }
        let b = take_zeroed(128);
        assert!(b.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn steady_state_reuses_capacity() {
        // Warm up with a fixed multiset of sizes…
        {
            let _a = take(1000);
            let _b = take_zeroed(500);
            let _c = take(250);
        }
        let reserved = thread_reserved_elems();
        // …then repeat the same checkout pattern: no growth allowed.
        for _ in 0..10 {
            let _a = take(1000);
            let _b = take_zeroed(500);
            let _c = take(250);
        }
        assert_eq!(
            thread_reserved_elems(),
            reserved,
            "steady-state checkouts must not grow the arena"
        );
    }

    #[test]
    fn zero_len_takes_do_not_allocate() {
        let before = thread_reserved_elems();
        let s = take(0);
        assert!(s.is_empty());
        drop(s);
        assert_eq!(thread_reserved_elems(), before);
    }

    #[test]
    fn lengths_are_exact() {
        {
            let big = take(512);
            assert_eq!(big.len(), 512);
        }
        let small = take(10);
        assert_eq!(small.len(), 10, "reused capacity must be truncated");
    }
}
