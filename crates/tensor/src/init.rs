//! Weight-initialization helpers.
//!
//! All initializers are deterministic given the caller's RNG, which is how the
//! experiment harness achieves reproducible victim models across runs.

use rand::Rng;

use crate::Tensor;

/// Fills a new tensor with samples from `N(0, std^2)` using the Box–Muller
/// transform (no distribution crates needed).
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let t = tbnet_tensor::init::randn(&[4, 4], 0.1, &mut rng);
/// assert_eq!(t.numel(), 16);
/// ```
pub fn randn<R: Rng + ?Sized>(dims: &[usize], std: f32, rng: &mut R) -> Tensor {
    let mut t = Tensor::zeros(dims);
    let data = t.as_mut_slice();
    let mut i = 0;
    while i < data.len() {
        let (a, b) = gaussian_pair(rng);
        data[i] = a * std;
        if i + 1 < data.len() {
            data[i + 1] = b * std;
        }
        i += 2;
    }
    t
}

/// Fills a new tensor with samples from `U(lo, hi)`.
pub fn uniform<R: Rng + ?Sized>(dims: &[usize], lo: f32, hi: f32, rng: &mut R) -> Tensor {
    let mut t = Tensor::zeros(dims);
    for x in t.as_mut_slice() {
        *x = rng.gen_range(lo..hi);
    }
    t
}

/// Kaiming/He normal initialization for a convolution weight of shape
/// `[out_c, in_c, kh, kw]` (or a linear weight `[out, in]`): `std =
/// sqrt(2 / fan_in)`, the standard choice for ReLU networks and the one used
/// by the paper's PyTorch baseline.
pub fn kaiming_normal<R: Rng + ?Sized>(dims: &[usize], rng: &mut R) -> Tensor {
    let fan_in: usize = dims.iter().skip(1).product::<usize>().max(1);
    let std = (2.0 / fan_in as f32).sqrt();
    randn(dims, std, rng)
}

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. Used for classifier heads.
pub fn xavier_uniform<R: Rng + ?Sized>(dims: &[usize], rng: &mut R) -> Tensor {
    let fan_out = dims.first().copied().unwrap_or(1).max(1);
    let fan_in: usize = dims.iter().skip(1).product::<usize>().max(1);
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(dims, -a, a, rng)
}

fn gaussian_pair<R: Rng + ?Sized>(rng: &mut R) -> (f32, f32) {
    // Box–Muller; clamp u1 away from zero so ln() stays finite.
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f32::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn randn_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = randn(&[10_000], 1.0, &mut rng);
        let mean = t.mean();
        let var = t.as_slice().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / 10_000.0;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.1, "variance {var} too far from 1");
    }

    #[test]
    fn randn_deterministic_per_seed() {
        let a = randn(&[16], 1.0, &mut StdRng::seed_from_u64(1));
        let b = randn(&[16], 1.0, &mut StdRng::seed_from_u64(1));
        let c = randn(&[16], 1.0, &mut StdRng::seed_from_u64(2));
        assert_eq!(a.as_slice(), b.as_slice());
        assert_ne!(a.as_slice(), c.as_slice());
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = uniform(&[1000], -0.5, 0.5, &mut rng);
        assert!(t.max().unwrap() < 0.5);
        assert!(t.min().unwrap() >= -0.5);
    }

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(4);
        let narrow = kaiming_normal(&[8, 2, 3, 3], &mut rng);
        let wide = kaiming_normal(&[8, 128, 3, 3], &mut rng);
        let std_of = |t: &Tensor| {
            let m = t.mean();
            (t.as_slice().iter().map(|x| (x - m).powi(2)).sum::<f32>() / t.numel() as f32).sqrt()
        };
        assert!(std_of(&narrow) > std_of(&wide));
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = xavier_uniform(&[10, 10], &mut rng);
        let a = (6.0f32 / 20.0).sqrt();
        assert!(t.max().unwrap() <= a);
        assert!(t.min().unwrap() >= -a);
    }

    #[test]
    fn all_finite_outputs() {
        let mut rng = StdRng::seed_from_u64(6);
        assert!(randn(&[1001], 2.0, &mut rng).all_finite());
        assert!(kaiming_normal(&[3, 3, 3, 3], &mut rng).all_finite());
        assert!(xavier_uniform(&[7, 5], &mut rng).all_finite());
    }
}
