use std::fmt;

use serde::{Deserialize, Serialize};

use crate::TensorError;

/// The shape (dimension sizes) of a [`Tensor`](crate::Tensor).
///
/// Shapes are immutable once constructed; tensor-reshaping operations build
/// new `Shape` values. A zero-dimensional shape (`&[]`) describes a scalar
/// with one element, matching NumPy/PyTorch semantics.
///
/// # Example
///
/// ```
/// use tbnet_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.dim(1), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a slice of dimension sizes.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Creates a scalar (rank-0) shape with a single element.
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// The number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// The total number of elements described by this shape.
    ///
    /// A rank-0 shape has one element; any zero-sized dimension yields zero.
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// The size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// The dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Row-major (C-order) strides for this shape, in elements.
    ///
    /// ```
    /// use tbnet_tensor::Shape;
    /// assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
    /// ```
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index into a flat row-major offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if `index` has the wrong length
    /// and [`TensorError::InvalidGeometry`] if any coordinate is out of range.
    pub fn offset(&self, index: &[usize]) -> Result<usize, TensorError> {
        if index.len() != self.rank() {
            return Err(TensorError::RankMismatch {
                expected: self.rank(),
                got: index.len(),
                op: "offset",
            });
        }
        let mut flat = 0usize;
        let strides = self.strides();
        for (axis, (&i, &stride)) in index.iter().zip(strides.iter()).enumerate() {
            if i >= self.0[axis] {
                return Err(TensorError::InvalidGeometry {
                    reason: format!(
                        "index {i} out of range for axis {axis} of size {}",
                        self.0[axis]
                    ),
                });
            }
            flat += i * stride;
        }
        Ok(flat)
    }

    /// Returns `true` when both shapes describe the same dimension sizes.
    pub fn same_as(&self, other: &Shape) -> bool {
        self.0 == other.0
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl AsRef<[usize]> for Shape {
    fn as_ref(&self) -> &[usize] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new(&[4, 3, 2]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.dims(), &[4, 3, 2]);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.strides(), Vec::<usize>::new());
    }

    #[test]
    fn zero_dim_gives_zero_elements() {
        assert_eq!(Shape::new(&[3, 0, 2]).numel(), 0);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
    }

    #[test]
    fn offset_roundtrip() {
        let s = Shape::new(&[2, 3, 4]);
        let mut seen = std::collections::HashSet::new();
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    let off = s.offset(&[i, j, k]).unwrap();
                    assert!(off < 24);
                    assert!(seen.insert(off), "offsets must be unique");
                }
            }
        }
    }

    #[test]
    fn offset_rejects_bad_rank() {
        let s = Shape::new(&[2, 2]);
        assert!(matches!(
            s.offset(&[1]),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn offset_rejects_out_of_range() {
        let s = Shape::new(&[2, 2]);
        assert!(matches!(
            s.offset(&[0, 2]),
            Err(TensorError::InvalidGeometry { .. })
        ));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "(2, 3)");
        assert_eq!(Shape::scalar().to_string(), "()");
    }
}
