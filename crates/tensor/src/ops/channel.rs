//! Per-channel affine/normalization kernels for BatchNorm-shaped work over
//! `[N, C, H, W]` activations.
//!
//! These exist so `tbnet-nn`'s BatchNorm can route its four hot loops
//! (normalize, affine, backward reductions, input gradient) through the
//! compute backend instead of hand-rolled inline loops. The naive forms
//! reproduce the original loop structure exactly — same arithmetic, same
//! accumulation order — so backends stay bit-comparable.

use crate::{Result, Tensor, TensorError};

pub(crate) fn check_nchw(input: &Tensor, op: &'static str) -> Result<(usize, usize, usize, usize)> {
    if input.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            got: input.rank(),
            op,
        });
    }
    Ok((input.dim(0), input.dim(1), input.dim(2), input.dim(3)))
}

pub(crate) fn check_channel_vec(v: &Tensor, c: usize, op: &'static str) -> Result<()> {
    if v.dims() != [c] {
        return Err(TensorError::ShapeMismatch {
            expected: vec![c],
            got: v.dims().to_vec(),
            op,
        });
    }
    Ok(())
}

/// Channel-wise normalization `(x - mean[c]) * inv_std[c]` over `[N, C, H, W]`.
///
/// # Errors
///
/// Returns rank/shape errors when `input` is not 4-D or the statistics are
/// not `[C]`.
pub fn bn_normalize(input: &Tensor, mean: &Tensor, inv_std: &Tensor) -> Result<Tensor> {
    crate::backend::global().bn_normalize(input, mean, inv_std)
}

pub(crate) fn bn_normalize_naive(
    input: &Tensor,
    mean: &Tensor,
    inv_std: &Tensor,
) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw(input, "bn_normalize")?;
    check_channel_vec(mean, c, "bn_normalize (mean)")?;
    check_channel_vec(inv_std, c, "bn_normalize (inv_std)")?;
    let plane = h * w;
    let mut out = input.clone();
    let xv = out.as_mut_slice();
    let mv = mean.as_slice();
    let sv = inv_std.as_slice();
    for ni in 0..n {
        for ci in 0..c {
            let m = mv[ci];
            let is = sv[ci];
            let base = (ni * c + ci) * plane;
            for x in &mut xv[base..base + plane] {
                *x = (*x - m) * is;
            }
        }
    }
    Ok(out)
}

/// Channel-wise affine `scale[c] * x + shift[c]` over `[N, C, H, W]`.
///
/// # Errors
///
/// Returns rank/shape errors when `input` is not 4-D or the coefficients are
/// not `[C]`.
pub fn channel_affine(input: &Tensor, scale: &Tensor, shift: &Tensor) -> Result<Tensor> {
    crate::backend::global().channel_affine(input, scale, shift)
}

pub(crate) fn channel_affine_naive(
    input: &Tensor,
    scale: &Tensor,
    shift: &Tensor,
) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw(input, "channel_affine")?;
    check_channel_vec(scale, c, "channel_affine (scale)")?;
    check_channel_vec(shift, c, "channel_affine (shift)")?;
    let plane = h * w;
    let mut out = input.clone();
    let ov = out.as_mut_slice();
    let g = scale.as_slice();
    let b = shift.as_slice();
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * plane;
            for x in &mut ov[base..base + plane] {
                *x = g[ci] * *x + b[ci];
            }
        }
    }
    Ok(out)
}

/// BatchNorm backward reductions: per-channel `Σ dy` and `Σ dy·x̂` over
/// `[N, C, H, W]`, each returned as a `[C]` tensor.
///
/// # Errors
///
/// Returns rank/shape errors when the operands disagree.
pub fn bn_backward_reduce(grad_out: &Tensor, x_hat: &Tensor) -> Result<(Tensor, Tensor)> {
    crate::backend::global().bn_backward_reduce(grad_out, x_hat)
}

pub(crate) fn bn_backward_reduce_naive(
    grad_out: &Tensor,
    x_hat: &Tensor,
) -> Result<(Tensor, Tensor)> {
    let (n, c, h, w) = check_nchw(grad_out, "bn_backward_reduce")?;
    grad_out.expect_same_shape(x_hat, "bn_backward_reduce")?;
    let plane = h * w;
    let mut sum_dy = Tensor::zeros(&[c]);
    let mut sum_dy_xhat = Tensor::zeros(&[c]);
    let gv = grad_out.as_slice();
    let xv = x_hat.as_slice();
    let dv = sum_dy.as_mut_slice();
    let dxv = sum_dy_xhat.as_mut_slice();
    for ci in 0..c {
        for ni in 0..n {
            let base = (ni * c + ci) * plane;
            let mut s = 0.0f32;
            let mut sx = 0.0f32;
            for off in base..base + plane {
                s += gv[off];
                sx += gv[off] * xv[off];
            }
            dv[ci] += s;
            dxv[ci] += sx;
        }
    }
    Ok((sum_dy, sum_dy_xhat))
}

/// BatchNorm input gradient:
/// `dx = γ[c]·inv_std[c] · (dy − mean(dy) − x̂·mean(dy·x̂))`, where the means
/// divide the per-channel sums by `N·H·W`.
///
/// # Errors
///
/// Returns rank/shape errors when the operands disagree.
pub fn bn_input_grad(
    grad_out: &Tensor,
    x_hat: &Tensor,
    gamma: &Tensor,
    inv_std: &Tensor,
    sum_dy: &Tensor,
    sum_dy_xhat: &Tensor,
) -> Result<Tensor> {
    crate::backend::global().bn_input_grad(grad_out, x_hat, gamma, inv_std, sum_dy, sum_dy_xhat)
}

pub(crate) fn bn_input_grad_naive(
    grad_out: &Tensor,
    x_hat: &Tensor,
    gamma: &Tensor,
    inv_std: &Tensor,
    sum_dy: &Tensor,
    sum_dy_xhat: &Tensor,
) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw(grad_out, "bn_input_grad")?;
    grad_out.expect_same_shape(x_hat, "bn_input_grad")?;
    check_channel_vec(gamma, c, "bn_input_grad (gamma)")?;
    check_channel_vec(inv_std, c, "bn_input_grad (inv_std)")?;
    check_channel_vec(sum_dy, c, "bn_input_grad (sum_dy)")?;
    check_channel_vec(sum_dy_xhat, c, "bn_input_grad (sum_dy_xhat)")?;
    let plane = h * w;
    let count = (n * plane) as f32;
    let mut grad_in = grad_out.clone();
    let gi = grad_in.as_mut_slice();
    let xv = x_hat.as_slice();
    let g = gamma.as_slice();
    let is = inv_std.as_slice();
    let dv = sum_dy.as_slice();
    let dxv = sum_dy_xhat.as_slice();
    for ni in 0..n {
        for ci in 0..c {
            let mean_dy = dv[ci] / count;
            let mean_dy_xhat = dxv[ci] / count;
            let scale = g[ci] * is[ci];
            let base = (ni * c + ci) * plane;
            for off in base..base + plane {
                gi[off] = scale * (gi[off] - mean_dy - xv[off] * mean_dy_xhat);
            }
        }
    }
    Ok(grad_in)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normalize_then_affine_is_batchnorm() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = init::randn(&[4, 3, 5, 5], 2.0, &mut rng);
        let (mean, var) = crate::ops::channel_mean_var(&x).unwrap();
        let inv_std = var.map(|v| 1.0 / (v + 1e-5).sqrt());
        let x_hat = bn_normalize(&x, &mean, &inv_std).unwrap();
        let (m2, v2) = crate::ops::channel_mean_var(&x_hat).unwrap();
        for ci in 0..3 {
            assert!(m2.as_slice()[ci].abs() < 1e-4);
            assert!((v2.as_slice()[ci] - 1.0).abs() < 1e-2);
        }
        let gamma = Tensor::from_slice(&[2.0, 0.5, 1.0]);
        let beta = Tensor::from_slice(&[1.0, -1.0, 0.0]);
        let y = channel_affine(&x_hat, &gamma, &beta).unwrap();
        let (m3, _) = crate::ops::channel_mean_var(&y).unwrap();
        assert!((m3.as_slice()[0] - 1.0).abs() < 1e-3);
        assert!((m3.as_slice()[1] + 1.0).abs() < 1e-3);
    }

    #[test]
    fn backward_reduce_matches_direct_sums() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = init::randn(&[3, 2, 4, 4], 1.0, &mut rng);
        let xh = init::randn(&[3, 2, 4, 4], 1.0, &mut rng);
        let (sd, sdx) = bn_backward_reduce(&g, &xh).unwrap();
        for ci in 0..2 {
            let mut s = 0.0f64;
            let mut sx = 0.0f64;
            for ni in 0..3 {
                for hi in 0..4 {
                    for wi in 0..4 {
                        let gv = g.at(&[ni, ci, hi, wi]).unwrap() as f64;
                        let xv = xh.at(&[ni, ci, hi, wi]).unwrap() as f64;
                        s += gv;
                        sx += gv * xv;
                    }
                }
            }
            assert!((sd.as_slice()[ci] as f64 - s).abs() < 1e-3);
            assert!((sdx.as_slice()[ci] as f64 - sx).abs() < 1e-3);
        }
    }

    #[test]
    fn shape_validation() {
        let bad = Tensor::zeros(&[3]);
        let x = Tensor::zeros(&[1, 2, 2, 2]);
        let c2 = Tensor::zeros(&[2]);
        assert!(bn_normalize(&bad, &c2, &c2).is_err());
        assert!(bn_normalize(&x, &bad, &c2).is_err());
        assert!(channel_affine(&x, &c2, &bad).is_err());
        assert!(bn_backward_reduce(&x, &Tensor::zeros(&[1, 2, 2, 3])).is_err());
        assert!(bn_input_grad(&x, &x, &bad, &c2, &c2, &c2).is_err());
    }
}
