//! Elementwise tensor arithmetic.
//!
//! These functions validate shapes eagerly and return
//! [`TensorError::ShapeMismatch`] on disagreement; the two-branch merge in
//! TBNet relies on `add` for the REE→TEE feature-map combination, so shape
//! bugs there must surface immediately.

use crate::{Result, Tensor};
#[cfg(test)]
use crate::TensorError;

/// Elementwise sum `a + b`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
pub fn add(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    a.expect_same_shape(b, "add")?;
    let mut out = a.clone();
    out.as_mut_slice()
        .iter_mut()
        .zip(b.as_slice())
        .for_each(|(x, &y)| *x += y);
    Ok(out)
}

/// Elementwise difference `a - b`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
pub fn sub(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    a.expect_same_shape(b, "sub")?;
    let mut out = a.clone();
    out.as_mut_slice()
        .iter_mut()
        .zip(b.as_slice())
        .for_each(|(x, &y)| *x -= y);
    Ok(out)
}

/// Elementwise (Hadamard) product `a ⊙ b`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
pub fn hadamard(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    a.expect_same_shape(b, "hadamard")?;
    let mut out = a.clone();
    out.as_mut_slice()
        .iter_mut()
        .zip(b.as_slice())
        .for_each(|(x, &y)| *x *= y);
    Ok(out)
}

/// In-place accumulation `a += b`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
pub fn add_assign(a: &mut Tensor, b: &Tensor) -> Result<()> {
    a.expect_same_shape(b, "add_assign")?;
    a.as_mut_slice()
        .iter_mut()
        .zip(b.as_slice())
        .for_each(|(x, &y)| *x += y);
    Ok(())
}

/// In-place scaled accumulation `a += alpha * b` (the BLAS `axpy`).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
pub fn add_scaled(a: &mut Tensor, b: &Tensor, alpha: f32) -> Result<()> {
    a.expect_same_shape(b, "add_scaled")?;
    a.as_mut_slice()
        .iter_mut()
        .zip(b.as_slice())
        .for_each(|(x, &y)| *x += alpha * y);
    Ok(())
}

/// Returns `alpha * a`.
pub fn scale(a: &Tensor, alpha: f32) -> Tensor {
    a.map(|x| alpha * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_slice(v)
    }

    #[test]
    fn add_sub_mul() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[4.0, 5.0, 6.0]);
        assert_eq!(add(&a, &b).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(sub(&b, &a).unwrap().as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(hadamard(&a, &b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[4]);
        assert!(matches!(
            add(&a, &b),
            Err(TensorError::ShapeMismatch { op: "add", .. })
        ));
        assert!(sub(&a, &b).is_err());
        assert!(hadamard(&a, &b).is_err());
        let mut a2 = a.clone();
        assert!(add_assign(&mut a2, &b).is_err());
        assert!(add_scaled(&mut a2, &b, 1.0).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t(&[1.0, 1.0]);
        let b = t(&[2.0, 4.0]);
        add_scaled(&mut a, &b, 0.5).unwrap();
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
        add_assign(&mut a, &b).unwrap();
        assert_eq!(a.as_slice(), &[4.0, 7.0]);
    }

    #[test]
    fn scale_returns_new() {
        let a = t(&[1.0, -2.0]);
        assert_eq!(scale(&a, -2.0).as_slice(), &[-2.0, 4.0]);
        assert_eq!(a.as_slice(), &[1.0, -2.0]);
    }

    #[test]
    fn add_is_commutative() {
        let a = t(&[1.5, 2.5, -3.0]);
        let b = t(&[0.5, -1.5, 4.0]);
        assert_eq!(
            add(&a, &b).unwrap().as_slice(),
            add(&b, &a).unwrap().as_slice()
        );
    }
}
