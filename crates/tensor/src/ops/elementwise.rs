//! Elementwise tensor arithmetic.
//!
//! These functions validate shapes eagerly and return
//! [`TensorError::ShapeMismatch`](crate::TensorError) on disagreement; the two-branch merge in
//! TBNet relies on `add` for the REE→TEE feature-map combination, so shape
//! bugs there must surface immediately.

#[cfg(test)]
use crate::TensorError;
use crate::{Result, Tensor};

/// Elementwise sum `a + b`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`](crate::TensorError) when the shapes differ.
pub fn add(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    crate::backend::global().add(a, b)
}

pub(crate) fn add_naive(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    a.expect_same_shape(b, "add")?;
    let mut out = a.clone();
    out.as_mut_slice()
        .iter_mut()
        .zip(b.as_slice())
        .for_each(|(x, &y)| *x += y);
    Ok(out)
}

/// Elementwise difference `a - b`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`](crate::TensorError) when the shapes differ.
pub fn sub(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    crate::backend::global().sub(a, b)
}

pub(crate) fn sub_naive(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    a.expect_same_shape(b, "sub")?;
    let mut out = a.clone();
    out.as_mut_slice()
        .iter_mut()
        .zip(b.as_slice())
        .for_each(|(x, &y)| *x -= y);
    Ok(out)
}

/// Elementwise (Hadamard) product `a ⊙ b`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`](crate::TensorError) when the shapes differ.
pub fn hadamard(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    crate::backend::global().hadamard(a, b)
}

pub(crate) fn hadamard_naive(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    a.expect_same_shape(b, "hadamard")?;
    let mut out = a.clone();
    out.as_mut_slice()
        .iter_mut()
        .zip(b.as_slice())
        .for_each(|(x, &y)| *x *= y);
    Ok(out)
}

/// In-place accumulation `a += b`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`](crate::TensorError) when the shapes differ.
pub fn add_assign(a: &mut Tensor, b: &Tensor) -> Result<()> {
    crate::backend::global().add_assign(a, b)
}

pub(crate) fn add_assign_naive(a: &mut Tensor, b: &Tensor) -> Result<()> {
    a.expect_same_shape(b, "add_assign")?;
    a.as_mut_slice()
        .iter_mut()
        .zip(b.as_slice())
        .for_each(|(x, &y)| *x += y);
    Ok(())
}

/// In-place scaled accumulation `a += alpha * b` (the BLAS `axpy`).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`](crate::TensorError) when the shapes differ.
pub fn add_scaled(a: &mut Tensor, b: &Tensor, alpha: f32) -> Result<()> {
    crate::backend::global().add_scaled(a, b, alpha)
}

pub(crate) fn add_scaled_naive(a: &mut Tensor, b: &Tensor, alpha: f32) -> Result<()> {
    a.expect_same_shape(b, "add_scaled")?;
    a.as_mut_slice()
        .iter_mut()
        .zip(b.as_slice())
        .for_each(|(x, &y)| *x += alpha * y);
    Ok(())
}

/// Returns `alpha * a`.
pub fn scale(a: &Tensor, alpha: f32) -> Tensor {
    crate::backend::global().scale(a, alpha)
}

pub(crate) fn scale_naive(a: &Tensor, alpha: f32) -> Tensor {
    a.map(|x| alpha * x)
}

/// Applies `f` to every element through the active backend (parallel for
/// large tensors on the `Parallel` backend).
pub fn unary(a: &Tensor, f: &(dyn Fn(f32) -> f32 + Sync)) -> Tensor {
    crate::backend::global().unary(a, f)
}

pub(crate) fn unary_naive(a: &Tensor, f: &(dyn Fn(f32) -> f32 + Sync)) -> Tensor {
    a.map(f)
}

/// Adds `bias` (`[D]`) to every row of `out` (`[N, D]`) in place — the
/// fully-connected bias broadcast.
///
/// # Errors
///
/// Returns rank/shape errors when the operands disagree.
pub fn add_bias_rows(out: &mut Tensor, bias: &Tensor) -> Result<()> {
    crate::backend::global().add_bias_rows(out, bias)
}

pub(crate) fn check_bias_rows(out: &Tensor, bias: &Tensor) -> Result<(usize, usize)> {
    use crate::TensorError;
    if out.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            got: out.rank(),
            op: "add_bias_rows",
        });
    }
    let (n, d) = (out.dim(0), out.dim(1));
    if bias.dims() != [d] {
        return Err(TensorError::ShapeMismatch {
            expected: vec![d],
            got: bias.dims().to_vec(),
            op: "add_bias_rows",
        });
    }
    Ok((n, d))
}

pub(crate) fn add_bias_rows_naive(out: &mut Tensor, bias: &Tensor) -> Result<()> {
    let (n, d) = check_bias_rows(out, bias)?;
    let ov = out.as_mut_slice();
    let bv = bias.as_slice();
    for ni in 0..n {
        for (x, &b) in ov[ni * d..(ni + 1) * d].iter_mut().zip(bv) {
            *x += b;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_slice(v)
    }

    #[test]
    fn add_sub_mul() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[4.0, 5.0, 6.0]);
        assert_eq!(add(&a, &b).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(sub(&b, &a).unwrap().as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(hadamard(&a, &b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[4]);
        assert!(matches!(
            add(&a, &b),
            Err(TensorError::ShapeMismatch { op: "add", .. })
        ));
        assert!(sub(&a, &b).is_err());
        assert!(hadamard(&a, &b).is_err());
        let mut a2 = a.clone();
        assert!(add_assign(&mut a2, &b).is_err());
        assert!(add_scaled(&mut a2, &b, 1.0).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t(&[1.0, 1.0]);
        let b = t(&[2.0, 4.0]);
        add_scaled(&mut a, &b, 0.5).unwrap();
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
        add_assign(&mut a, &b).unwrap();
        assert_eq!(a.as_slice(), &[4.0, 7.0]);
    }

    #[test]
    fn scale_returns_new() {
        let a = t(&[1.0, -2.0]);
        assert_eq!(scale(&a, -2.0).as_slice(), &[-2.0, 4.0]);
        assert_eq!(a.as_slice(), &[1.0, -2.0]);
    }

    #[test]
    fn add_is_commutative() {
        let a = t(&[1.5, 2.5, -3.0]);
        let b = t(&[0.5, -1.5, 4.0]);
        assert_eq!(
            add(&a, &b).unwrap().as_slice(),
            add(&b, &a).unwrap().as_slice()
        );
    }
}
