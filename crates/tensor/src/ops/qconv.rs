//! Int8 quantized convolution for the exposed REE branch.
//!
//! The TBNet threat model deliberately exposes the rich branch `M_R` in
//! normal-world memory, so its inference precision is a pure speed/accuracy
//! trade with no security budget attached. This module quantizes a
//! (BN-folded) convolution weight **symmetrically per output channel** to
//! signed 7-bit integers and runs the forward pass as a u8×i8 integer GEMM
//! over quantized activations:
//!
//! * weights: `q_w = round(w / s_w[oc])`, `s_w[oc] = max|w[oc]| / 64`. The
//!   ±64 range (instead of ±127) guarantees that a pair-sum
//!   `a₀·w₀ + a₁·w₁ ≤ 2 · 255 · 64 = 32640` never saturates the i16 lanes
//!   of the AVX2 `maddubs` microkernel, so the SIMD and portable paths
//!   compute bit-identical integer accumulators;
//! * activations: affine u8, `q_a = clamp(round(x / s_a) + zp, 0, 255)`.
//!   Padded positions store `zp` (the quantized value of real 0.0), which
//!   keeps the zero-point correction exact:
//!   `Σ (q_a − zp) · q_w = Σ q_a·q_w − zp · Σ q_w`, with `Σ q_w` per output
//!   channel precomputed at quantization time.
//!
//! # Data layout
//!
//! Both operands are packed in **tap quads**: the reduction dimension is
//! grouped as `(ci, ki, jb)` where each quad holds the 4 kernel-row taps
//! `kj = 4·jb .. 4·jb+3` (taps past `kw` carry zero weight, so whatever
//! activation byte sits under them contributes nothing). The activation
//! panel stores, per quad, 4 consecutive input-row bytes for each of 8
//! output positions — 32 bytes, exactly one AVX2 register — so one
//! `maddubs` + `madd(ones)` pair accumulates a whole quad for 8 positions
//! straight into i32 lanes.
//!
//! That layout is what makes the im2col cheap: the sample is quantized once
//! into a zero-point-padded image, and each 32-byte panel block is built
//! with a single sliding-window byte shuffle of an input row (stride 1 and
//! 2), instead of per-byte gather loops with bounds arithmetic.
//!
//! Activation ranges come from the *preceding* unit's BatchNorm running
//! statistics (post-BN activations distribute like `β + γ·x̂`, and ReLU
//! clamps the low side to zero), so deployment needs no calibration pass;
//! the network input, which has no BN upstream, falls back to a dynamic
//! per-tensor min/max scan.
//!
//! Scratch buffers (the padded quantized image and the panel) come from a
//! thread-local byte arena that mirrors [`crate::arena`]'s power-of-two
//! size classes, so steady-state quantized inference allocates only the
//! output tensor.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

use crate::ops::conv::conv_output_size;
use crate::par;
use crate::{Result, Tensor, TensorError};

/// Largest magnitude a quantized weight may take: headroom for the AVX2
/// `maddubs` pair-sum (see module docs).
const W_QMAX: f32 = 64.0;

/// Output positions per GEMM block: one AVX2 register of i32 lanes.
const POS_BLOCK: usize = 8;

// ---------------------------------------------------------------------------
// Thread-local byte arena (u8 twin of `crate::arena`).
// ---------------------------------------------------------------------------

thread_local! {
    static BYTE_FREE: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

/// A checked-out byte scratch buffer; returns to the owning thread's free
/// list on drop.
struct ByteScratch {
    buf: Vec<u8>,
}

impl Deref for ByteScratch {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for ByteScratch {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl Drop for ByteScratch {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        if buf.capacity() > 0 {
            BYTE_FREE.with(|f| f.borrow_mut().push(buf));
        }
    }
}

/// Checks out `len` bytes of scratch with arbitrary contents. Best-fit
/// reuse with power-of-two growth classes, exactly like [`crate::arena`]:
/// once every size class exists, checkouts stop touching the allocator.
fn take_bytes(len: usize) -> ByteScratch {
    if len == 0 {
        return ByteScratch { buf: Vec::new() };
    }
    let reclaimed = BYTE_FREE.with(|f| {
        let mut free = f.borrow_mut();
        let best = free
            .iter()
            .enumerate()
            .filter(|(_, b)| b.capacity() >= len)
            .min_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i)
            .or_else(|| {
                free.iter()
                    .enumerate()
                    .max_by_key(|(_, b)| b.capacity())
                    .map(|(i, _)| i)
            });
        best.map(|i| free.swap_remove(i))
    });
    let mut buf = reclaimed.unwrap_or_default();
    if buf.capacity() < len {
        buf.clear();
        buf.reserve_exact(len.next_power_of_two());
    }
    buf.resize(len, 0);
    ByteScratch { buf }
}

// ---------------------------------------------------------------------------
// Quantized operand types.
// ---------------------------------------------------------------------------

/// A convolution weight quantized symmetrically per output channel, packed
/// in tap quads for the u8×i8 GEMM: row-major `[O, QUADS, 4]` with each
/// quad covering 4 kernel-row taps of one `(ci, ki)` slice (taps past `kw`
/// are zero).
#[derive(Debug, Clone)]
pub struct QuantConv2dWeight {
    q: Vec<i8>,
    scales: Vec<f32>,
    wsum: Vec<i32>,
    o: usize,
    c: usize,
    kh: usize,
    kw: usize,
    /// Quads per kernel row: `ceil(kw / 4)`.
    row_quads: usize,
    /// Total quads per output channel: `c * kh * row_quads`.
    quads: usize,
}

impl QuantConv2dWeight {
    /// Quantizes a `[O, C, KH, KW]` weight (typically the BN-folded
    /// inference weight) to per-output-channel symmetric int8.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-4 weights.
    pub fn quantize(weight: &Tensor) -> Result<Self> {
        if weight.rank() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                got: weight.rank(),
                op: "quantize_conv2d_weight",
            });
        }
        let (o, c, kh, kw) = (weight.dim(0), weight.dim(1), weight.dim(2), weight.dim(3));
        let ckk = c * kh * kw;
        let row_quads = kw.div_ceil(4).max(1);
        let quads = c * kh * row_quads;
        let wv = weight.as_slice();
        let mut q = vec![0i8; o * quads * 4];
        let mut scales = vec![0.0f32; o];
        let mut wsum = vec![0i32; o];
        for oc in 0..o {
            let row = &wv[oc * ckk..(oc + 1) * ckk];
            let maxabs = row.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            let s = if maxabs > 0.0 { maxabs / W_QMAX } else { 1.0 };
            scales[oc] = s;
            let mut sum = 0i32;
            for ci in 0..c {
                for ki in 0..kh {
                    for kj in 0..kw {
                        let x = row[(ci * kh + ki) * kw + kj];
                        let v = (x / s).round().clamp(-W_QMAX, W_QMAX) as i32;
                        sum += v;
                        let quad = (ci * kh + ki) * row_quads + kj / 4;
                        q[(oc * quads + quad) * 4 + kj % 4] = v as i8;
                    }
                }
            }
            wsum[oc] = sum;
        }
        Ok(QuantConv2dWeight {
            q,
            scales,
            wsum,
            o,
            c,
            kh,
            kw,
            row_quads,
            quads,
        })
    }

    /// Output channels.
    pub fn out_channels(&self) -> usize {
        self.o
    }

    /// Input channels.
    pub fn in_channels(&self) -> usize {
        self.c
    }

    /// Kernel height/width.
    pub fn kernel(&self) -> (usize, usize) {
        (self.kh, self.kw)
    }

    /// Bytes held by the quantized weight (the REE memory the int8 branch
    /// ships instead of f32 weights).
    pub fn packed_bytes(&self) -> usize {
        self.q.len() + self.scales.len() * 4 + self.wsum.len() * 4
    }
}

/// Affine u8 activation quantization parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActQuant {
    /// Real-value step per quantization level.
    pub scale: f32,
    /// The u8 code representing real 0.0.
    pub zero_point: u8,
}

impl ActQuant {
    /// Parameters covering the real range `[lo, hi]`. The range is widened
    /// to include 0.0 so the zero point is exact (padding correctness
    /// depends on it).
    pub fn from_range(lo: f32, hi: f32) -> ActQuant {
        let lo = lo.min(0.0);
        let hi = hi.max(0.0);
        let scale = ((hi - lo) / 255.0).max(1e-10);
        let zero_point = (-lo / scale).round().clamp(0.0, 255.0) as u8;
        ActQuant { scale, zero_point }
    }

    /// Dynamic per-tensor calibration: exact min/max scan. Used for the
    /// network input, which has no upstream BatchNorm to derive a static
    /// range from.
    pub fn from_tensor(x: &Tensor) -> ActQuant {
        let (mut lo, mut hi) = (0.0f32, 0.0f32);
        for &v in x.as_slice() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        ActQuant::from_range(lo, hi)
    }

    /// Quantizes one real value to its u8 code.
    #[inline]
    pub fn quantize(&self, x: f32) -> u8 {
        (x / self.scale + f32::from(self.zero_point))
            .round()
            .clamp(0.0, 255.0) as u8
    }
}

// ---------------------------------------------------------------------------
// Integer microkernels.
// ---------------------------------------------------------------------------

/// True when the CPU can run the `maddubs` microkernel.
#[inline]
fn have_avx2() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Portable panel build for one quad: 4 consecutive row bytes per output
/// position. Identical layout to the SIMD shuffle path.
#[inline]
fn build_quad_portable(row: &[u8], dst: &mut [u8], owr: usize, stride: usize, jb4: usize) {
    for p in 0..owr {
        let base = p * stride + jb4;
        dst[p * 4..p * 4 + 4].copy_from_slice(&row[base..base + 4]);
    }
}

/// Portable GEMM for one position block: accumulates every quad of up to 4
/// weight rows into i32, exactly matching the AVX2 kernel (which never
/// saturates by the ±64 weight range).
#[inline]
#[allow(clippy::needless_range_loop)]
fn gemm_block_portable(
    panel: &[u8],
    rows: &[&[i8]],
    quads: usize,
    owr: usize,
    p0: usize,
    acc: &mut [[i32; POS_BLOCK]; 4],
) {
    for a in acc.iter_mut() {
        *a = [0; POS_BLOCK];
    }
    for q in 0..quads {
        let ap = &panel[(q * owr + p0) * 4..(q * owr + p0 + POS_BLOCK) * 4];
        for (r, row) in rows.iter().enumerate() {
            let wq = &row[q * 4..q * 4 + 4];
            for p in 0..POS_BLOCK {
                let mut s = 0i32;
                for l in 0..4 {
                    s += i32::from(ap[p * 4 + l]) * i32::from(wq[l]);
                }
                acc[r][p] += s;
            }
        }
    }
}

/// AVX2 microkernels over the quad layout. `maddubs` multiplies
/// unsigned×signed bytes into i16 pair-sums (non-saturating here by the
/// ±64 weight range), `madd` with ones widens a whole quad to i32 — one
/// instruction pair per quad per weight row covers 8 output positions.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    #![allow(unsafe_code)]

    use std::arch::x86_64::{
        __m256i, _mm256_add_epi32, _mm256_broadcastsi128_si256, _mm256_castsi128_si256,
        _mm256_inserti128_si256, _mm256_loadu_si256, _mm256_madd_epi16, _mm256_maddubs_epi16,
        _mm256_set1_epi16, _mm256_set1_epi32, _mm256_setr_epi8, _mm256_setzero_si256,
        _mm256_shuffle_epi8, _mm256_storeu_si256, _mm_loadu_si128,
    };

    use super::POS_BLOCK;

    /// Builds one 32-byte panel block for stride 1: the 4-byte windows of
    /// `src` starting at offsets `0..8`.
    ///
    /// # Safety
    ///
    /// Requires AVX2; `src` must be readable for 16 bytes and `dst`
    /// writable for 32.
    #[target_feature(enable = "avx2")]
    pub unsafe fn slide1(src: *const u8, dst: *mut u8) {
        // SAFETY: per the function contract; the shuffle indices stay
        // within the broadcast 16-byte lane (max index 10).
        unsafe {
            let idx = _mm256_setr_epi8(
                0, 1, 2, 3, 1, 2, 3, 4, 2, 3, 4, 5, 3, 4, 5, 6, //
                4, 5, 6, 7, 5, 6, 7, 8, 6, 7, 8, 9, 7, 8, 9, 10,
            );
            let b = _mm256_broadcastsi128_si256(_mm_loadu_si128(src.cast()));
            _mm256_storeu_si256(dst.cast(), _mm256_shuffle_epi8(b, idx));
        }
    }

    /// Builds one 32-byte panel block for stride 2: the 4-byte windows of
    /// `src` starting at offsets `0, 2, .., 14`.
    ///
    /// # Safety
    ///
    /// Requires AVX2; `src` must be readable for 24 bytes and `dst`
    /// writable for 32.
    #[target_feature(enable = "avx2")]
    pub unsafe fn slide2(src: *const u8, dst: *mut u8) {
        // SAFETY: per the function contract; lane 0 reads `src[0..16]`,
        // lane 1 reads `src[8..24]`, shuffle indices stay in-lane (max 9).
        unsafe {
            let idx = _mm256_setr_epi8(
                0, 1, 2, 3, 2, 3, 4, 5, 4, 5, 6, 7, 6, 7, 8, 9, //
                0, 1, 2, 3, 2, 3, 4, 5, 4, 5, 6, 7, 6, 7, 8, 9,
            );
            let lo = _mm_loadu_si128(src.cast());
            let hi = _mm_loadu_si128(src.add(8).cast());
            let b = _mm256_inserti128_si256(_mm256_castsi128_si256(lo), hi, 1);
            _mm256_storeu_si256(dst.cast(), _mm256_shuffle_epi8(b, idx));
        }
    }

    /// Integer GEMM for one position block: 4 weight rows × 8 positions,
    /// all quads. Accumulators are written to `acc` as plain i32 lanes.
    ///
    /// # Safety
    ///
    /// Requires AVX2. `panel` must hold `quads * owr * 4` bytes with
    /// `p0 + POS_BLOCK <= owr`; every pointer in `rows` must hold
    /// `quads * 4` weight bytes.
    #[target_feature(enable = "avx2")]
    pub unsafe fn gemm_block4(
        panel: *const u8,
        rows: [*const i8; 4],
        quads: usize,
        owr: usize,
        p0: usize,
        acc: &mut [[i32; POS_BLOCK]; 4],
    ) {
        // SAFETY: per the function contract, every 32-byte panel load and
        // 4-byte weight load below stays in bounds.
        unsafe {
            let ones = _mm256_set1_epi16(1);
            let mut v = [_mm256_setzero_si256(); 4];
            for q in 0..quads {
                let av = _mm256_loadu_si256(panel.add((q * owr + p0) * 4).cast());
                for (r, &row) in rows.iter().enumerate() {
                    let wv = _mm256_set1_epi32(row.add(q * 4).cast::<i32>().read_unaligned());
                    let p16 = _mm256_maddubs_epi16(av, wv);
                    v[r] = _mm256_add_epi32(v[r], _mm256_madd_epi16(p16, ones));
                }
            }
            for (a, vr) in acc.iter_mut().zip(v) {
                _mm256_storeu_si256(a.as_mut_ptr().cast::<__m256i>(), vr);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Forward pass.
// ---------------------------------------------------------------------------

/// Quantized convolution forward: u8 activations × i8 weights with an i32
/// accumulator, dequantized (plus bias and optional fused ReLU) straight
/// into the f32 output.
///
/// Matches the f32 convolution up to quantization error; the secure branch
/// never routes through this path.
///
/// # Errors
///
/// Returns rank/shape errors for inconsistent operands.
pub fn conv2d_forward_q8(
    input: &Tensor,
    qw: &QuantConv2dWeight,
    act: ActQuant,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
    relu: bool,
) -> Result<Tensor> {
    if input.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            got: input.rank(),
            op: "conv2d_q8",
        });
    }
    let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    if c != qw.c {
        return Err(TensorError::ShapeMismatch {
            expected: vec![qw.o, qw.c, qw.kh, qw.kw],
            got: vec![n, c, h, w],
            op: "conv2d_q8 (input channels)",
        });
    }
    let oh = conv_output_size(h, qw.kh, stride, pad)?;
    let ow = conv_output_size(w, qw.kw, stride, pad)?;
    if let Some(b) = bias {
        if b.numel() != qw.o {
            return Err(TensorError::LengthMismatch {
                expected: qw.o,
                got: b.numel(),
                op: "conv2d_q8 (bias)",
            });
        }
    }
    let mut out = Tensor::zeros(&[n, qw.o, oh, ow]);
    let iv = input.as_slice();
    let bias_v = bias.map(Tensor::as_slice);
    let spatial = oh * ow;
    let out_sample = qw.o * spatial;
    par::for_each_chunk_mut(out.as_mut_slice(), out_sample.max(1), |ni, chunk| {
        forward_sample_q8(
            &iv[ni * c * h * w..(ni + 1) * c * h * w],
            qw,
            act,
            bias_v,
            (h, w, oh, ow),
            (stride, pad),
            relu,
            chunk,
        );
    });
    Ok(out)
}

/// One sample of the quantized forward: quantize the sample into a
/// zero-point-padded image, then per output row build the quad panel with
/// sliding-window shuffles and run the integer GEMM.
#[allow(clippy::too_many_arguments)]
fn forward_sample_q8(
    sample: &[f32],
    qw: &QuantConv2dWeight,
    act: ActQuant,
    bias: Option<&[f32]>,
    (h, w, oh, ow): (usize, usize, usize, usize),
    (stride, pad): (usize, usize),
    relu: bool,
    dst: &mut [f32],
) {
    let (c, kh, row_quads, quads) = (qw.c, qw.kh, qw.row_quads, qw.quads);
    let spatial = oh * ow;
    let zp = act.zero_point;
    let zp_i32 = i32::from(zp);
    let inv_scale = 1.0 / act.scale;

    // Zero-point-padded quantized image. The width slack past the real
    // padding keeps every sliding-window load of the tail position block in
    // bounds; slack bytes are zp, and only zero-weight taps or discarded
    // positions ever read them.
    let hpad = h + 2 * pad;
    let wpad = w + 2 * pad + POS_BLOCK * stride + 4 * row_quads + 24;
    let mut qpad = take_bytes(c * hpad * wpad);
    qpad.fill(zp);
    let zpf = f32::from(zp);
    for ci in 0..c {
        for ih in 0..h {
            let src = &sample[(ci * h + ih) * w..(ci * h + ih + 1) * w];
            let drow = &mut qpad[(ci * hpad + ih + pad) * wpad + pad..][..w];
            for (d, &x) in drow.iter_mut().zip(src) {
                // Round-half-up via the saturating cast (truncation equals
                // floor for the non-negative in-range values, and the cast
                // clamps the rest); `round()`/`floor()` would lower to a
                // per-element libm call on baseline targets. Codes differ
                // from `ActQuant::quantize` only on exact half-steps.
                *d = (x * inv_scale + zpf + 0.5) as u8;
            }
        }
    }

    // Panel for one output row: [quad][position][4 taps], positions padded
    // to a POS_BLOCK multiple (padded positions are computed and dropped).
    let owr = ow.div_ceil(POS_BLOCK) * POS_BLOCK;
    let mut panel = take_bytes(quads * owr * 4);
    let simd = have_avx2() && stride <= 2;
    let mut acc = [[0i32; POS_BLOCK]; 4];
    for ohi in 0..oh {
        let mut q = 0;
        for ci in 0..c {
            for ki in 0..kh {
                let row = &qpad[(ci * hpad + ohi * stride + ki) * wpad..][..wpad];
                for jb in 0..row_quads {
                    let dstq = &mut panel[q * owr * 4..(q + 1) * owr * 4];
                    if simd {
                        #[cfg(target_arch = "x86_64")]
                        for p0 in (0..owr).step_by(POS_BLOCK) {
                            // SAFETY: AVX2 verified; the source offset plus
                            // the kernel's read span stays within `wpad`
                            // (see the slack above), and the destination
                            // block is 32 in-bounds panel bytes.
                            #[allow(unsafe_code)]
                            unsafe {
                                let src = row.as_ptr().add(p0 * stride + jb * 4);
                                let d = dstq.as_mut_ptr().add(p0 * 4);
                                if stride == 1 {
                                    avx2::slide1(src, d);
                                } else {
                                    avx2::slide2(src, d);
                                }
                            }
                        }
                    } else {
                        build_quad_portable(row, dstq, owr, stride, jb * 4);
                    }
                    q += 1;
                }
            }
        }

        let t0 = ohi * ow;
        for p0 in (0..ow).step_by(POS_BLOCK) {
            let mut oc = 0;
            while oc < qw.o {
                let nr = (qw.o - oc).min(4);
                let mut rowbuf: [&[i8]; 4] = [&[]; 4];
                for (r, slot) in rowbuf.iter_mut().enumerate().take(nr) {
                    *slot = &qw.q[(oc + r) * quads * 4..(oc + r + 1) * quads * 4];
                }
                let rows = &rowbuf[..nr];
                if simd && nr == 4 {
                    #[cfg(target_arch = "x86_64")]
                    // SAFETY: AVX2 verified; panel holds `quads * owr * 4`
                    // bytes with `p0 + POS_BLOCK <= owr`, each row holds
                    // `quads * 4` bytes.
                    #[allow(unsafe_code)]
                    unsafe {
                        avx2::gemm_block4(
                            panel.as_ptr(),
                            [
                                rows[0].as_ptr(),
                                rows[1].as_ptr(),
                                rows[2].as_ptr(),
                                rows[3].as_ptr(),
                            ],
                            quads,
                            owr,
                            p0,
                            &mut acc,
                        );
                    }
                    #[cfg(not(target_arch = "x86_64"))]
                    gemm_block_portable(&panel, rows, quads, owr, p0, &mut acc);
                } else {
                    gemm_block_portable(&panel, rows, quads, owr, p0, &mut acc);
                }
                let pn = (ow - p0).min(POS_BLOCK);
                for (r, acc_row) in acc.iter().enumerate().take(nr) {
                    let ch = oc + r;
                    let deq = act.scale * qw.scales[ch];
                    let corr = zp_i32 * qw.wsum[ch];
                    let b = bias.map_or(0.0, |bv| bv[ch]);
                    let drow = &mut dst[ch * spatial + t0 + p0..][..pn];
                    for (d, &a) in drow.iter_mut().zip(&acc_row[..pn]) {
                        let mut v = deq * (a - corr) as f32 + b;
                        if relu {
                            v = v.max(0.0);
                        }
                        *d = v;
                    }
                }
                oc += nr;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use crate::ops::conv::conv2d_forward_naive;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quant_error_bound(input: &Tensor, qw: &QuantConv2dWeight, act: ActQuant) -> f32 {
        // Worst case per output: ckk terms each off by ≤ s_a/2 · |w| plus
        // the weight rounding ≤ s_w/2 · |a|; a loose but sufficient bound.
        let ckk = qw.c * qw.kh * qw.kw;
        let wmax = qw.scales.iter().fold(0.0f32, |m, &s| m.max(s)) * W_QMAX;
        let amax = input.as_slice().iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let smax = qw.scales.iter().fold(0.0f32, |m, &s| m.max(s));
        ckk as f32 * (act.scale * wmax + smax * (amax + act.scale))
    }

    #[test]
    fn quantized_forward_tracks_f32_reference() {
        let mut rng = StdRng::seed_from_u64(9);
        for &(c, o, k, stride, pad) in &[
            (3usize, 8usize, 3usize, 1usize, 1usize),
            (8, 16, 1, 1, 0),
            (4, 6, 5, 2, 2),
        ] {
            let x = init::randn(&[2, c, 12, 12], 1.0, &mut rng);
            let w = init::randn(&[o, c, k, k], 0.2, &mut rng);
            let qw = QuantConv2dWeight::quantize(&w).unwrap();
            let act = ActQuant::from_tensor(&x);
            let q = conv2d_forward_q8(&x, &qw, act, None, stride, pad, false).unwrap();
            let f = conv2d_forward_naive(&x, &w, None, stride, pad).unwrap();
            assert_eq!(q.dims(), f.dims());
            let bound = quant_error_bound(&x, &qw, act);
            let max_err = q
                .as_slice()
                .iter()
                .zip(f.as_slice())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(
                max_err <= bound,
                "c{c} o{o} k{k} s{stride} p{pad}: err {max_err} > bound {bound}"
            );
            // The bound is loose; also require practically-tight tracking.
            let scale_ref = f
                .as_slice()
                .iter()
                .fold(0.0f32, |m, &v| m.max(v.abs()))
                .max(1.0);
            assert!(
                max_err / scale_ref < 0.05,
                "c{c} o{o} k{k}: relative error {max_err}/{scale_ref} too large"
            );
        }
    }

    #[test]
    fn odd_geometries_match_portable_reference() {
        // Shapes that exercise the position-block tail, the oc remainder
        // (o not a multiple of 4) and stride-2 shuffles.
        let mut rng = StdRng::seed_from_u64(12);
        for &(c, o, k, stride, pad, hw) in &[
            (5usize, 7usize, 3usize, 1usize, 1usize, 9usize),
            (2, 3, 3, 2, 1, 11),
            (4, 9, 5, 2, 2, 13),
            (3, 4, 1, 1, 0, 6),
        ] {
            let x = init::randn(&[2, c, hw, hw], 1.0, &mut rng);
            let w = init::randn(&[o, c, k, k], 0.2, &mut rng);
            let qw = QuantConv2dWeight::quantize(&w).unwrap();
            let act = ActQuant::from_tensor(&x);
            let q = conv2d_forward_q8(&x, &qw, act, None, stride, pad, false).unwrap();
            let f = conv2d_forward_naive(&x, &w, None, stride, pad).unwrap();
            let scale_ref = f
                .as_slice()
                .iter()
                .fold(0.0f32, |m, &v| m.max(v.abs()))
                .max(1.0);
            let max_err = q
                .as_slice()
                .iter()
                .zip(f.as_slice())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(
                max_err / scale_ref < 0.08,
                "c{c} o{o} k{k} s{stride} p{pad} {hw}x{hw}: err {max_err} vs {scale_ref}"
            );
        }
    }

    #[test]
    fn relu_epilogue_clamps() {
        let mut rng = StdRng::seed_from_u64(10);
        let x = init::randn(&[1, 3, 6, 6], 1.0, &mut rng);
        let w = init::randn(&[4, 3, 3, 3], 0.3, &mut rng);
        let qw = QuantConv2dWeight::quantize(&w).unwrap();
        let act = ActQuant::from_tensor(&x);
        let y = conv2d_forward_q8(&x, &qw, act, None, 1, 1, true).unwrap();
        assert!(y.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn zero_point_covers_negative_ranges() {
        let a = ActQuant::from_range(-2.0, 6.0);
        assert!(a.zero_point > 0);
        // Real 0.0 must round-trip exactly through the zero point.
        assert_eq!(a.quantize(0.0), a.zero_point);
    }

    #[test]
    fn byte_arena_reaches_steady_state() {
        let mut rng = StdRng::seed_from_u64(11);
        let x = init::randn(&[1, 4, 10, 10], 1.0, &mut rng);
        let w = init::randn(&[8, 4, 3, 3], 0.3, &mut rng);
        let qw = QuantConv2dWeight::quantize(&w).unwrap();
        let act = ActQuant::from_tensor(&x);
        let a = conv2d_forward_q8(&x, &qw, act, None, 1, 1, false).unwrap();
        let b = conv2d_forward_q8(&x, &qw, act, None, 1, 1, false).unwrap();
        assert_eq!(
            a.as_slice(),
            b.as_slice(),
            "quantized forward must be deterministic"
        );
    }
}
