//! Dense matrix multiplication kernels.
//!
//! A cache-friendly `i-k-j` loop order with a small row-block is enough for
//! the model sizes in this reproduction; the kernels also come in
//! `transpose_a` / `transpose_b` variants so the convolution backward pass
//! never materializes explicit transposes of the im2col buffers.

use crate::{Result, Tensor, TensorError};

pub(crate) fn check_rank2(t: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            got: t.rank(),
            op,
        });
    }
    Ok((t.dim(0), t.dim(1)))
}

/// Matrix product `a @ b` for `a: [m, k]`, `b: [k, n]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if either operand is not rank-2 and
/// [`TensorError::MatmulDimMismatch`] if the inner dimensions disagree.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    crate::backend::global().matmul(a, b)
}

pub(crate) fn matmul_naive(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = check_rank2(a, "matmul")?;
    let (k2, n) = check_rank2(b, "matmul")?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            lhs_cols: k,
            rhs_rows: k2,
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    let av = a.as_slice();
    let bv = b.as_slice();
    let ov = out.as_mut_slice();
    for i in 0..m {
        let a_row = &av[i * k..(i + 1) * k];
        let o_row = &mut ov[i * n..(i + 1) * n];
        for (kk, &a_ik) in a_row.iter().enumerate() {
            if a_ik == 0.0 {
                continue;
            }
            let b_row = &bv[kk * n..(kk + 1) * n];
            for (o, &b_kj) in o_row.iter_mut().zip(b_row) {
                *o += a_ik * b_kj;
            }
        }
    }
    Ok(out)
}

/// Matrix product `aᵀ @ b` for `a: [k, m]`, `b: [k, n]` → `[m, n]`.
///
/// # Errors
///
/// Same conditions as [`matmul`], with the inner dimension being `a`'s rows.
pub fn matmul_transpose_a(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    crate::backend::global().matmul_transpose_a(a, b)
}

pub(crate) fn matmul_transpose_a_naive(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (k, m) = check_rank2(a, "matmul_transpose_a")?;
    let (k2, n) = check_rank2(b, "matmul_transpose_a")?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            lhs_cols: k,
            rhs_rows: k2,
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    let av = a.as_slice();
    let bv = b.as_slice();
    let ov = out.as_mut_slice();
    for kk in 0..k {
        let a_row = &av[kk * m..(kk + 1) * m];
        let b_row = &bv[kk * n..(kk + 1) * n];
        for (i, &a_ki) in a_row.iter().enumerate() {
            if a_ki == 0.0 {
                continue;
            }
            let o_row = &mut ov[i * n..(i + 1) * n];
            for (o, &b_kj) in o_row.iter_mut().zip(b_row) {
                *o += a_ki * b_kj;
            }
        }
    }
    Ok(out)
}

/// Matrix product `a @ bᵀ` for `a: [m, k]`, `b: [n, k]` → `[m, n]`.
///
/// # Errors
///
/// Same conditions as [`matmul`], with the inner dimension being `b`'s
/// columns.
pub fn matmul_transpose_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    crate::backend::global().matmul_transpose_b(a, b)
}

pub(crate) fn matmul_transpose_b_naive(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = check_rank2(a, "matmul_transpose_b")?;
    let (n, k2) = check_rank2(b, "matmul_transpose_b")?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            lhs_cols: k,
            rhs_rows: k2,
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    let av = a.as_slice();
    let bv = b.as_slice();
    let ov = out.as_mut_slice();
    for i in 0..m {
        let a_row = &av[i * k..(i + 1) * k];
        let o_row = &mut ov[i * n..(i + 1) * n];
        for (j, o) in o_row.iter_mut().enumerate() {
            let b_row = &bv[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (x, y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            *o += acc;
        }
    }
    Ok(out)
}

/// Transpose of a rank-2 tensor.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix inputs.
pub fn transpose2d(a: &Tensor) -> Result<Tensor> {
    let (m, n) = check_rank2(a, "transpose2d")?;
    let mut out = Tensor::zeros(&[n, m]);
    let av = a.as_slice();
    let ov = out.as_mut_slice();
    for i in 0..m {
        for j in 0..n {
            ov[j * m + i] = av[i * n + j];
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec(v.to_vec(), &[rows, cols]).unwrap()
    }

    #[test]
    fn small_product() {
        let a = mat(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = mat(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = mat(3, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
        let c = matmul(&a, &Tensor::eye(3)).unwrap();
        assert_eq!(c.as_slice(), a.as_slice());
        let c2 = matmul(&Tensor::eye(3), &a).unwrap();
        assert_eq!(c2.as_slice(), a.as_slice());
    }

    #[test]
    fn transpose_variants_agree_with_explicit_transpose() {
        let a = mat(2, 3, &[1.0, -2.0, 3.0, 0.5, 4.0, -1.0]);
        let b = mat(2, 4, &[2.0, 0.0, 1.0, -1.0, 3.0, 1.0, 0.0, 2.0]);
        // aᵀ @ b, computed two ways.
        let direct = matmul_transpose_a(&a, &b).unwrap();
        let explicit = matmul(&transpose2d(&a).unwrap(), &b).unwrap();
        assert_eq!(direct.as_slice(), explicit.as_slice());
        // a @ cᵀ where c: [n, k]
        let c = mat(4, 3, &[1.0; 12]);
        let direct = matmul_transpose_b(&a, &c).unwrap();
        let explicit = matmul(&a, &transpose2d(&c).unwrap()).unwrap();
        assert_eq!(direct.as_slice(), explicit.as_slice());
    }

    #[test]
    fn dimension_validation() {
        let a = mat(2, 3, &[0.0; 6]);
        let b = mat(2, 3, &[0.0; 6]);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::MatmulDimMismatch { .. })
        ));
        let v = Tensor::from_slice(&[1.0, 2.0]);
        assert!(matches!(
            matmul(&v, &b),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn transpose_involution() {
        let a = mat(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let tt = transpose2d(&transpose2d(&a).unwrap()).unwrap();
        assert_eq!(tt.as_slice(), a.as_slice());
        assert_eq!(tt.dims(), a.dims());
    }

    #[test]
    fn zero_matrix_annihilates() {
        let a = Tensor::zeros(&[3, 4]);
        let b = mat(4, 2, &[1.0; 8]);
        assert_eq!(matmul(&a, &b).unwrap().sum(), 0.0);
    }
}
