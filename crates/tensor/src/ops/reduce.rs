//! Axis reductions and row-wise softmax.
//!
//! `channel_mean_var` / `channel_sum` implement the per-channel statistics
//! that BatchNorm training needs over `[N, C, H, W]` activations; the
//! composite-BN pruning criterion in TBNet (Alg. 1) is built on the same
//! channel layout.

use crate::{Result, Tensor, TensorError};

/// Per-channel mean and (biased) variance of a `[N, C, H, W]` tensor,
/// reducing over `N`, `H`, `W`. Returns `(mean, var)`, each `[C]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-4-D input and
/// [`TensorError::InvalidGeometry`] when the reduction set is empty.
pub fn channel_mean_var(input: &Tensor) -> Result<(Tensor, Tensor)> {
    crate::backend::global().channel_mean_var(input)
}

pub(crate) fn channel_mean_var_naive(input: &Tensor) -> Result<(Tensor, Tensor)> {
    if input.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            got: input.rank(),
            op: "channel_mean_var",
        });
    }
    let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let count = n * h * w;
    if count == 0 {
        return Err(TensorError::InvalidGeometry {
            reason: "cannot compute channel statistics over an empty batch".into(),
        });
    }
    let mut mean = Tensor::zeros(&[c]);
    let mut var = Tensor::zeros(&[c]);
    let iv = input.as_slice();
    let plane = h * w;
    for ci in 0..c {
        let mut s = 0.0f64;
        for ni in 0..n {
            let base = (ni * c + ci) * plane;
            for &x in &iv[base..base + plane] {
                s += x as f64;
            }
        }
        let m = (s / count as f64) as f32;
        mean.as_mut_slice()[ci] = m;
        let mut v = 0.0f64;
        for ni in 0..n {
            let base = (ni * c + ci) * plane;
            for &x in &iv[base..base + plane] {
                let d = x - m;
                v += (d * d) as f64;
            }
        }
        var.as_mut_slice()[ci] = (v / count as f64) as f32;
    }
    Ok((mean, var))
}

/// Per-channel sum of a `[N, C, H, W]` tensor over `N`, `H`, `W` → `[C]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-4-D input.
pub fn channel_sum(input: &Tensor) -> Result<Tensor> {
    crate::backend::global().channel_sum(input)
}

pub(crate) fn channel_sum_naive(input: &Tensor) -> Result<Tensor> {
    if input.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            got: input.rank(),
            op: "channel_sum",
        });
    }
    let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let mut out = Tensor::zeros(&[c]);
    let iv = input.as_slice();
    let plane = h * w;
    for ci in 0..c {
        let mut s = 0.0f32;
        for ni in 0..n {
            let base = (ni * c + ci) * plane;
            s += iv[base..base + plane].iter().sum::<f32>();
        }
        out.as_mut_slice()[ci] = s;
    }
    Ok(out)
}

/// Sum over the leading axis: `[N, D]` → `[D]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-2-D input.
pub fn sum_axis0(input: &Tensor) -> Result<Tensor> {
    crate::backend::global().sum_axis0(input)
}

pub(crate) fn sum_axis0_naive(input: &Tensor) -> Result<Tensor> {
    if input.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            got: input.rank(),
            op: "sum_axis0",
        });
    }
    let (n, d) = (input.dim(0), input.dim(1));
    let mut out = Tensor::zeros(&[d]);
    let iv = input.as_slice();
    let ov = out.as_mut_slice();
    for ni in 0..n {
        for (o, &x) in ov.iter_mut().zip(&iv[ni * d..(ni + 1) * d]) {
            *o += x;
        }
    }
    Ok(out)
}

/// Numerically-stable row-wise softmax of a `[N, D]` tensor.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-2-D input.
pub fn softmax_rows(logits: &Tensor) -> Result<Tensor> {
    crate::backend::global().softmax_rows(logits)
}

pub(crate) fn softmax_rows_naive(logits: &Tensor) -> Result<Tensor> {
    if logits.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            got: logits.rank(),
            op: "softmax_rows",
        });
    }
    let (n, d) = (logits.dim(0), logits.dim(1));
    let mut out = logits.clone();
    let ov = out.as_mut_slice();
    for ni in 0..n {
        let row = &mut ov[ni * d..(ni + 1) * d];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for x in row.iter_mut() {
            *x = (*x - max).exp();
            sum += *x;
        }
        let inv = 1.0 / sum;
        for x in row.iter_mut() {
            *x *= inv;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn channel_stats_simple() {
        // Channel 0 is constant 2.0; channel 1 alternates ±1 around 0.
        let input = Tensor::from_vec(
            vec![2.0, 2.0, 2.0, 2.0, 1.0, -1.0, 1.0, -1.0],
            &[1, 2, 2, 2],
        )
        .unwrap();
        let (mean, var) = channel_mean_var(&input).unwrap();
        assert_eq!(mean.as_slice(), &[2.0, 0.0]);
        assert_eq!(var.as_slice(), &[0.0, 1.0]);
    }

    #[test]
    fn channel_stats_across_batch() {
        let mut rng = StdRng::seed_from_u64(9);
        let input = init::randn(&[8, 3, 4, 4], 1.0, &mut rng);
        let (mean, var) = channel_mean_var(&input).unwrap();
        // Reference via flat iteration.
        for ci in 0..3 {
            let mut vals = Vec::new();
            for ni in 0..8 {
                for hi in 0..4 {
                    for wi in 0..4 {
                        vals.push(input.at(&[ni, ci, hi, wi]).unwrap());
                    }
                }
            }
            let m: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let v: f32 = vals.iter().map(|x| (x - m).powi(2)).sum::<f32>() / vals.len() as f32;
            assert!((mean.as_slice()[ci] - m).abs() < 1e-4);
            assert!((var.as_slice()[ci] - v).abs() < 1e-4);
        }
    }

    #[test]
    fn channel_sum_matches_stats() {
        let mut rng = StdRng::seed_from_u64(10);
        let input = init::randn(&[4, 2, 3, 3], 1.0, &mut rng);
        let sums = channel_sum(&input).unwrap();
        let (mean, _) = channel_mean_var(&input).unwrap();
        let count = (4 * 3 * 3) as f32;
        for ci in 0..2 {
            assert!((sums.as_slice()[ci] - mean.as_slice()[ci] * count).abs() < 1e-3);
        }
    }

    #[test]
    fn sum_axis0_works() {
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(sum_axis0(&m).unwrap().as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let p = softmax_rows(&logits).unwrap();
        for ni in 0..2 {
            let row = &p.as_slice()[ni * 3..(ni + 1) * 3];
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(row[0] < row[1] && row[1] < row[2]);
        }
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = Tensor::from_vec(vec![1000.0, 1001.0, 1002.0], &[1, 3]).unwrap();
        let b = Tensor::from_vec(vec![0.0, 1.0, 2.0], &[1, 3]).unwrap();
        let pa = softmax_rows(&a).unwrap();
        let pb = softmax_rows(&b).unwrap();
        assert!(pa.all_finite());
        for (x, y) in pa.as_slice().iter().zip(pb.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn rank_validation() {
        let bad = Tensor::zeros(&[3]);
        assert!(channel_mean_var(&bad).is_err());
        assert!(channel_sum(&bad).is_err());
        assert!(sum_axis0(&bad).is_err());
        assert!(softmax_rows(&bad).is_err());
    }

    #[test]
    fn empty_batch_rejected() {
        let empty = Tensor::zeros(&[0, 3, 2, 2]);
        assert!(channel_mean_var(&empty).is_err());
    }
}
