//! Numerical kernels: elementwise arithmetic, matrix multiplication,
//! im2col-based 2-D convolution (forward and backward), pooling and
//! axis reductions.
//!
//! Every kernel is a free function over [`Tensor`](crate::Tensor)s; the layer
//! objects in `tbnet-nn` wrap these with parameter/cache management.

pub(crate) mod channel;
pub(crate) mod conv;
pub(crate) mod elementwise;
pub(crate) mod matmul;
pub(crate) mod parallel;
pub(crate) mod pool;
pub(crate) mod qconv;
pub(crate) mod reduce;

pub use channel::{bn_backward_reduce, bn_input_grad, bn_normalize, channel_affine};
pub use conv::{
    apply_epilogue, col2im, col2im_panel, conv2d_backward, conv2d_depthwise_backward,
    conv2d_depthwise_forward, conv2d_depthwise_forward_fused, conv2d_forward, conv2d_forward_fused,
    conv_output_size, im2col, im2col_panel, Conv2dGrads, Epilogue, PackedConv2dWeight,
};
pub use elementwise::{add, add_assign, add_bias_rows, add_scaled, hadamard, scale, sub, unary};
pub use matmul::{matmul, matmul_transpose_a, matmul_transpose_b, transpose2d};
pub use pool::{
    avgpool2d_global_backward, avgpool2d_global_forward, maxpool2d_backward, maxpool2d_eval,
    maxpool2d_forward, MaxPoolIndices,
};
pub use qconv::{conv2d_forward_q8, ActQuant, QuantConv2dWeight};
pub use reduce::{channel_mean_var, channel_sum, softmax_rows, sum_axis0};
