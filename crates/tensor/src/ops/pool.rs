//! Pooling kernels: 2-D max pooling (with argmax indices for the backward
//! pass) and global average pooling (used by the ResNet-20 classifier head).

use crate::{Result, Tensor, TensorError};

use super::conv::conv_output_size;

/// Argmax bookkeeping produced by [`maxpool2d_forward`], consumed by
/// [`maxpool2d_backward`].
#[derive(Debug, Clone)]
pub struct MaxPoolIndices {
    /// For every output element (flattened `[N, C, OH, OW]` order), the flat
    /// offset of the winning input element within the full input buffer.
    pub(crate) winners: Vec<usize>,
    pub(crate) input_dims: Vec<usize>,
}

impl MaxPoolIndices {
    /// Dimensions of the pooled input, `[N, C, H, W]`.
    pub fn input_dims(&self) -> &[usize] {
        &self.input_dims
    }
}

/// Max pooling over `[N, C, H, W]` with a square `k`-window and stride `k`
/// (non-overlapping, the configuration used by VGG).
///
/// Returns the pooled tensor and the winner indices needed for backprop.
///
/// # Errors
///
/// Returns rank/geometry errors for inconsistent operands.
pub fn maxpool2d_forward(input: &Tensor, k: usize) -> Result<(Tensor, MaxPoolIndices)> {
    crate::backend::global().maxpool2d_forward(input, k)
}

pub(crate) fn maxpool2d_forward_naive(
    input: &Tensor,
    k: usize,
) -> Result<(Tensor, MaxPoolIndices)> {
    if input.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            got: input.rank(),
            op: "maxpool2d",
        });
    }
    let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let oh = conv_output_size(h, k, k, 0)?;
    let ow = conv_output_size(w, k, k, 0)?;
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let mut winners = vec![0usize; n * c * oh * ow];
    let iv = input.as_slice();
    let ov = out.as_mut_slice();
    let mut oidx = 0usize;
    for ni in 0..n {
        for ci in 0..c {
            let plane_base = (ni * c + ci) * h * w;
            for ohi in 0..oh {
                for owi in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_off = plane_base;
                    for ki in 0..k {
                        let ih = ohi * k + ki;
                        for kj in 0..k {
                            let iw = owi * k + kj;
                            let off = plane_base + ih * w + iw;
                            if iv[off] > best {
                                best = iv[off];
                                best_off = off;
                            }
                        }
                    }
                    ov[oidx] = best;
                    winners[oidx] = best_off;
                    oidx += 1;
                }
            }
        }
    }
    Ok((
        out,
        MaxPoolIndices {
            winners,
            input_dims: vec![n, c, h, w],
        },
    ))
}

/// Inference max pooling: [`maxpool2d_forward`] without the argmax
/// bookkeeping, so steady-state inference allocates only the pooled output.
///
/// # Errors
///
/// Returns rank/geometry errors for inconsistent operands.
pub fn maxpool2d_eval(input: &Tensor, k: usize) -> Result<Tensor> {
    crate::backend::global().maxpool2d_eval(input, k)
}

pub(crate) fn maxpool2d_eval_naive(input: &Tensor, k: usize) -> Result<Tensor> {
    if input.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            got: input.rank(),
            op: "maxpool2d",
        });
    }
    let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let oh = conv_output_size(h, k, k, 0)?;
    let ow = conv_output_size(w, k, k, 0)?;
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let iv = input.as_slice();
    let ov = out.as_mut_slice();
    let mut oidx = 0usize;
    for plane in 0..n * c {
        let plane_base = plane * h * w;
        for ohi in 0..oh {
            for owi in 0..ow {
                let mut best = f32::NEG_INFINITY;
                for ki in 0..k {
                    let ih = ohi * k + ki;
                    for kj in 0..k {
                        best = best.max(iv[plane_base + ih * w + owi * k + kj]);
                    }
                }
                ov[oidx] = best;
                oidx += 1;
            }
        }
    }
    Ok(out)
}

/// Backward pass of [`maxpool2d_forward`]: routes each output gradient to the
/// input element that won the max.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] if `grad_out` does not match the
/// recorded pooling geometry.
pub fn maxpool2d_backward(grad_out: &Tensor, indices: &MaxPoolIndices) -> Result<Tensor> {
    crate::backend::global().maxpool2d_backward(grad_out, indices)
}

pub(crate) fn maxpool2d_backward_naive(
    grad_out: &Tensor,
    indices: &MaxPoolIndices,
) -> Result<Tensor> {
    if grad_out.numel() != indices.winners.len() {
        return Err(TensorError::LengthMismatch {
            expected: indices.winners.len(),
            got: grad_out.numel(),
            op: "maxpool2d_backward",
        });
    }
    let mut grad_input = Tensor::zeros(&indices.input_dims);
    let gi = grad_input.as_mut_slice();
    for (&win, &g) in indices.winners.iter().zip(grad_out.as_slice()) {
        gi[win] += g;
    }
    Ok(grad_input)
}

/// Global average pooling: `[N, C, H, W]` → `[N, C]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-4-D input.
pub fn avgpool2d_global_forward(input: &Tensor) -> Result<Tensor> {
    crate::backend::global().avgpool2d_global_forward(input)
}

pub(crate) fn avgpool2d_global_forward_naive(input: &Tensor) -> Result<Tensor> {
    if input.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            got: input.rank(),
            op: "avgpool2d_global",
        });
    }
    let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let mut out = Tensor::zeros(&[n, c]);
    let iv = input.as_slice();
    let ov = out.as_mut_slice();
    let area = (h * w) as f32;
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            let s: f32 = iv[base..base + h * w].iter().sum();
            ov[ni * c + ci] = s / area;
        }
    }
    Ok(out)
}

/// Backward pass of [`avgpool2d_global_forward`]: spreads each channel
/// gradient uniformly over the spatial positions.
///
/// # Errors
///
/// Returns shape errors when `grad_out` is not `[N, C]` matching `input_dims`.
pub fn avgpool2d_global_backward(grad_out: &Tensor, input_dims: &[usize]) -> Result<Tensor> {
    crate::backend::global().avgpool2d_global_backward(grad_out, input_dims)
}

pub(crate) fn avgpool2d_global_backward_naive(
    grad_out: &Tensor,
    input_dims: &[usize],
) -> Result<Tensor> {
    if input_dims.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            got: input_dims.len(),
            op: "avgpool2d_global_backward",
        });
    }
    let (n, c, h, w) = (input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
    if grad_out.dims() != [n, c] {
        return Err(TensorError::ShapeMismatch {
            expected: vec![n, c],
            got: grad_out.dims().to_vec(),
            op: "avgpool2d_global_backward",
        });
    }
    let mut grad_input = Tensor::zeros(input_dims);
    let gv = grad_out.as_slice();
    let gi = grad_input.as_mut_slice();
    let area = (h * w) as f32;
    for ni in 0..n {
        for ci in 0..c {
            let g = gv[ni * c + ci] / area;
            let base = (ni * c + ci) * h * w;
            for x in &mut gi[base..base + h * w] {
                *x = g;
            }
        }
    }
    Ok(grad_input)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_picks_maxima() {
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let (out, _) = maxpool2d_forward(&input, 2).unwrap();
        assert_eq!(out.dims(), &[1, 1, 2, 2]);
        assert_eq!(out.as_slice(), &[4.0, 8.0, 12.0, 16.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_winner() {
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let (_, idx) = maxpool2d_forward(&input, 2).unwrap();
        let grad = Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]).unwrap();
        let gi = maxpool2d_backward(&grad, &idx).unwrap();
        assert_eq!(gi.as_slice(), &[0.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    fn maxpool_backward_validates_length() {
        let input = Tensor::zeros(&[1, 1, 2, 2]);
        let (_, idx) = maxpool2d_forward(&input, 2).unwrap();
        let bad = Tensor::zeros(&[1, 1, 2, 2]);
        assert!(maxpool2d_backward(&bad, &idx).is_err());
    }

    #[test]
    fn maxpool_multichannel_batch() {
        let input = Tensor::from_vec((0..16).map(|x| x as f32).collect(), &[2, 2, 2, 2]).unwrap();
        let (out, _) = maxpool2d_forward(&input, 2).unwrap();
        assert_eq!(out.dims(), &[2, 2, 1, 1]);
        assert_eq!(out.as_slice(), &[3.0, 7.0, 11.0, 15.0]);
    }

    #[test]
    fn global_avgpool_forward_backward() {
        let input = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0],
            &[1, 2, 2, 2],
        )
        .unwrap();
        let out = avgpool2d_global_forward(&input).unwrap();
        assert_eq!(out.dims(), &[1, 2]);
        assert_eq!(out.as_slice(), &[2.5, 25.0]);

        let grad = Tensor::from_vec(vec![4.0, 8.0], &[1, 2]).unwrap();
        let gi = avgpool2d_global_backward(&grad, &[1, 2, 2, 2]).unwrap();
        assert_eq!(gi.as_slice(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn avgpool_gradient_sum_is_preserved() {
        // Sum of distributed gradients equals the incoming gradient.
        let grad = Tensor::from_vec(vec![3.0, -1.5], &[1, 2]).unwrap();
        let gi = avgpool2d_global_backward(&grad, &[1, 2, 4, 4]).unwrap();
        let ch0: f32 = gi.as_slice()[..16].iter().sum();
        let ch1: f32 = gi.as_slice()[16..].iter().sum();
        assert!((ch0 - 3.0).abs() < 1e-6);
        assert!((ch1 + 1.5).abs() < 1e-6);
    }

    #[test]
    fn rank_validation() {
        let bad = Tensor::zeros(&[2, 2]);
        assert!(maxpool2d_forward(&bad, 2).is_err());
        assert!(avgpool2d_global_forward(&bad).is_err());
        assert!(avgpool2d_global_backward(&bad, &[1, 2]).is_err());
    }
}
