//! 2-D convolution: the fused engine's data types and reference kernels.
//!
//! Layout conventions follow PyTorch: activations are `[N, C, H, W]`,
//! convolution weights are `[O, C, KH, KW]`.
//!
//! Two generations of kernels live side by side:
//!
//! * the **naive reference** ([`conv2d_forward_naive`] /
//!   [`conv2d_backward_naive`]) — the seed's whole-matrix im2col + matmul
//!   loops, kept verbatim as the bit-exact oracle that parity tests compare
//!   against;
//! * the **fused engine** (`ops::parallel`), which never materializes the
//!   full `[C*KH*KW, OH*OW]` im2col matrix and performs **zero heap
//!   allocations in steady state**. Its building blocks are defined here:
//!
//!   * [`PackedConv2dWeight`] — the weight repacked *once per weight-update
//!     epoch* into two cache-friendly forms: row-panel blocks of the
//!     `[O, C*KH*KW]` GEMM operand (consumed by the forward microkernel with
//!     contiguous loads) and the pre-transposed `[C*KH*KW, O]` layout
//!     consumed by the backward input-gradient product. Layers cache the
//!     pack and invalidate it whenever the weight may have changed.
//!   * [`im2col_panel`] / [`col2im_panel`] — panel-wise unfold/fold over a
//!     *range of output rows*, writing into (reading from) a caller-provided
//!     scratch slice from the thread-local arena ([`crate::arena`]). The
//!     fused kernels walk output tiles panel by panel so the unfolded patch
//!     matrix stays cache-resident instead of round-tripping through RAM.
//!
//! Shape dispatch in the fused engine picks one of three paths per call:
//! a 1×1 convolution runs as a pure (strided) matmul with no unfold at all;
//! the ubiquitous 3×3 / stride 1 / pad 1 geometry runs a blocked direct
//! kernel (shifted row-axpy stencil, no patch matrix); everything else takes
//! the panel-wise im2col fallback. All three accumulate in the same order as
//! the naive oracle, so parity holds to f32 rounding.
//!
//! The backward pass still recomputes unfolds instead of caching them,
//! trading FLOPs for memory — the same trade a TEE deployment has to make,
//! which keeps the simulated activation footprints honest.

use crate::{Result, Tensor, TensorError};

/// Row-block height of the packed GEMM A-operand: the forward microkernel
/// consumes output channels in blocks of this many rows.
pub(crate) const PACK_MR: usize = 8;

/// A convolution weight repacked for the fused kernels.
///
/// Holds the original `[O, C, KH, KW]` tensor (so any backend without a
/// fused path can fall back to the plain kernels) plus two derived layouts
/// computed once at pack time:
///
/// * `panels` — the `[O, C*KH*KW]` GEMM operand in row-panel form: rows are
///   grouped in blocks of `PACK_MR`, each block stored column-major
///   (`panels[(block * k + kk) * PACK_MR + row_in_block]`), so the forward
///   microkernel's 4×4 register tiles load from consecutive cache lines.
///   Rows past `O` in the last block are zero padding.
/// * `transposed` — `[C*KH*KW, O]` row-major, consumed directly by the
///   backward `grad_cols = Wᵀ @ g` product (the seed re-transposed the
///   weight on every backward call; the pack pays that cost once per
///   weight-update epoch instead).
#[derive(Debug, Clone)]
pub struct PackedConv2dWeight {
    weight: Tensor,
    panels: Vec<f32>,
    transposed: Vec<f32>,
}

impl PackedConv2dWeight {
    /// Packs `weight` (`[O, C, KH, KW]`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-4 weights.
    pub fn new(weight: &Tensor) -> Result<Self> {
        if weight.rank() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                got: weight.rank(),
                op: "pack_conv2d_weight",
            });
        }
        let o = weight.dim(0);
        let ckk = weight.dim(1) * weight.dim(2) * weight.dim(3);
        let wv = weight.as_slice();
        let mut panels = vec![0.0f32; packed_panel_len(o, ckk)];
        pack_panels_into(wv, o, ckk, &mut panels);
        let mut transposed = vec![0.0f32; ckk * o];
        pack_transposed_into(wv, o, ckk, &mut transposed);
        Ok(PackedConv2dWeight {
            weight: weight.clone(),
            panels,
            transposed,
        })
    }

    /// The original `[O, C, KH, KW]` weight.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Output channels.
    pub fn out_channels(&self) -> usize {
        self.weight.dim(0)
    }

    /// GEMM inner dimension `C*KH*KW`.
    pub fn k(&self) -> usize {
        self.weight.dim(1) * self.weight.dim(2) * self.weight.dim(3)
    }

    /// Packs a weight with a BatchNorm fold applied: output channel `oc` of
    /// the packed weight is `weight[oc] * scale[oc]`, and the returned bias
    /// is `shift[oc] + scale[oc] * conv_bias[oc]`.
    ///
    /// With `scale = γ / √(running_var + ε)` and
    /// `shift = β − running_mean · scale`, the packed convolution computes
    /// `BN(conv(x))` exactly — inference drops BatchNorm as a separate pass
    /// and pays the fold once per repack epoch instead.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-4 weights and
    /// [`TensorError::LengthMismatch`] when `scale`/`shift`/`conv_bias`
    /// disagree with the weight's output-channel count.
    pub fn fold_bn(
        weight: &Tensor,
        conv_bias: Option<&Tensor>,
        scale: &[f32],
        shift: &[f32],
    ) -> Result<(Self, Tensor)> {
        if weight.rank() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                got: weight.rank(),
                op: "fold_bn",
            });
        }
        let o = weight.dim(0);
        for (len, what) in [
            (scale.len(), "fold_bn (scale)"),
            (shift.len(), "fold_bn (shift)"),
        ] {
            if len != o {
                return Err(TensorError::LengthMismatch {
                    expected: o,
                    got: len,
                    op: what,
                });
            }
        }
        if let Some(b) = conv_bias {
            if b.numel() != o {
                return Err(TensorError::LengthMismatch {
                    expected: o,
                    got: b.numel(),
                    op: "fold_bn (conv bias)",
                });
            }
        }
        let ckk = weight.dim(1) * weight.dim(2) * weight.dim(3);
        let mut folded = weight.clone();
        let fv = folded.as_mut_slice();
        for oc in 0..o {
            let s = scale[oc];
            for x in &mut fv[oc * ckk..(oc + 1) * ckk] {
                *x *= s;
            }
        }
        let bias: Vec<f32> = match conv_bias {
            Some(b) => b
                .as_slice()
                .iter()
                .enumerate()
                .map(|(oc, &cb)| shift[oc] + scale[oc] * cb)
                .collect(),
            None => shift.to_vec(),
        };
        let pack = PackedConv2dWeight::new(&folded)?;
        Ok((pack, Tensor::from_vec(bias, &[o])?))
    }

    /// Borrowed view over the packed layouts, shared with the transient
    /// (pack-on-the-fly, arena-backed) path in `ops::parallel`.
    pub(crate) fn view(&self) -> PackView<'_> {
        PackView {
            weight: self.weight.as_slice(),
            panels: &self.panels,
            transposed: &self.transposed,
            o: self.weight.dim(0),
            c: self.weight.dim(1),
            kh: self.weight.dim(2),
            kw: self.weight.dim(3),
        }
    }
}

/// Elementwise epilogue fused into a convolution's output while the tiles
/// are still register/cache-hot, so inference never pays a separate
/// activation or merge sweep.
///
/// The operand of the fused-add variants must have exactly the output's
/// `[N, O, OH, OW]` shape. The two add orders cover the two fusions the
/// two-branch model needs:
///
/// * [`Epilogue::AddRelu`] — `y = max(y + t, 0)`: a residual skip added
///   *before* the activation (ResNet-style `M_T` units);
/// * [`Epilogue::ReluAdd`] — `y = max(y, 0) + t`: the branch merge
///   `m = relu(bn(conv(x))) + select(r)` added *after* the activation.
#[derive(Debug, Clone, Copy, Default)]
pub enum Epilogue<'a> {
    /// Plain convolution output.
    #[default]
    None,
    /// `y = max(y, 0)`.
    Relu,
    /// `y = max(y + t, 0)` (add before activation).
    AddRelu(&'a Tensor),
    /// `y = max(y, 0) + t` (add after activation).
    ReluAdd(&'a Tensor),
}

impl Epilogue<'_> {
    /// The fused-add operand, when one is present.
    pub(crate) fn operand(&self) -> Option<&Tensor> {
        match self {
            Epilogue::AddRelu(t) | Epilogue::ReluAdd(t) => Some(t),
            _ => None,
        }
    }

    /// Validates the fused-add operand against the output dims.
    pub(crate) fn check(&self, out_dims: &[usize]) -> Result<()> {
        if let Some(t) = self.operand() {
            if t.dims() != out_dims {
                return Err(TensorError::LengthMismatch {
                    expected: out_dims.iter().product(),
                    got: t.numel(),
                    op: "conv epilogue operand",
                });
            }
        }
        Ok(())
    }
}

/// Reference epilogue application: a plain elementwise sweep over a
/// finished convolution output. The fused engine folds the same arithmetic
/// into its output tiles; backends without a fused path compose this after
/// the unfused convolution, which keeps the naive backend the parity
/// oracle.
///
/// # Errors
///
/// Returns a shape error when the fused-add operand does not match `out`.
pub fn apply_epilogue(out: &mut Tensor, epilogue: Epilogue<'_>) -> Result<()> {
    epilogue.check(out.dims())?;
    match epilogue {
        Epilogue::None => {}
        Epilogue::Relu => {
            for x in out.as_mut_slice() {
                *x = x.max(0.0);
            }
        }
        Epilogue::AddRelu(t) => {
            for (x, &tv) in out.as_mut_slice().iter_mut().zip(t.as_slice()) {
                *x = (*x + tv).max(0.0);
            }
        }
        Epilogue::ReluAdd(t) => {
            for (x, &tv) in out.as_mut_slice().iter_mut().zip(t.as_slice()) {
                *x = x.max(0.0) + tv;
            }
        }
    }
    Ok(())
}

/// Borrowed packed-weight operands: either slices into a cached
/// [`PackedConv2dWeight`] or into arena scratch packed for one call.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PackView<'a> {
    /// Original `[O, C, KH, KW]` data (direct kernels read this).
    pub weight: &'a [f32],
    /// Row-panel form of the `[O, C*KH*KW]` GEMM operand.
    pub panels: &'a [f32],
    /// `[C*KH*KW, O]` row-major.
    pub transposed: &'a [f32],
    /// Output channels.
    pub o: usize,
    /// Input channels.
    pub c: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
}

impl PackView<'_> {
    /// GEMM inner dimension `C*KH*KW`.
    #[inline]
    pub fn k(&self) -> usize {
        self.c * self.kh * self.kw
    }

    /// Element `(i, kk)` of the `[O, C*KH*KW]` operand, read from the panel
    /// layout.
    #[inline]
    pub fn a_at(&self, i: usize, kk: usize) -> f32 {
        self.panels[((i / PACK_MR) * self.k() + kk) * PACK_MR + (i % PACK_MR)]
    }
}

/// Length of the row-panel buffer for an `[o, ckk]` operand (rows padded to
/// a multiple of [`PACK_MR`]).
pub(crate) fn packed_panel_len(o: usize, ckk: usize) -> usize {
    o.div_ceil(PACK_MR).max(1) * PACK_MR * ckk
}

/// Packs `wv` (`[o, ckk]` row-major) into row-panel form. `dst` must be
/// [`packed_panel_len`] long and zeroed (padding rows stay zero).
pub(crate) fn pack_panels_into(wv: &[f32], o: usize, ckk: usize, dst: &mut [f32]) {
    debug_assert_eq!(dst.len(), packed_panel_len(o, ckk));
    for i in 0..o {
        let (block, r) = (i / PACK_MR, i % PACK_MR);
        for kk in 0..ckk {
            dst[(block * ckk + kk) * PACK_MR + r] = wv[i * ckk + kk];
        }
    }
}

/// Writes the `[ckk, o]` transpose of `wv` (`[o, ckk]` row-major) into
/// `dst` (fully overwritten).
pub(crate) fn pack_transposed_into(wv: &[f32], o: usize, ckk: usize, dst: &mut [f32]) {
    debug_assert_eq!(dst.len(), o * ckk);
    for i in 0..o {
        for kk in 0..ckk {
            dst[kk * o + i] = wv[i * ckk + kk];
        }
    }
}

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct Conv2dGrads {
    /// Gradient with respect to the convolution input, `[N, C, H, W]`.
    pub grad_input: Tensor,
    /// Gradient with respect to the weight, `[O, C, KH, KW]`.
    pub grad_weight: Tensor,
    /// Gradient with respect to the bias, `[O]`; `None` when the layer has no
    /// bias (the usual case here, since BatchNorm follows every convolution).
    pub grad_bias: Option<Tensor>,
}

/// Computes the output spatial size of a convolution/pooling window.
///
/// # Errors
///
/// Returns [`TensorError::ZeroSizedParameter`] for a zero kernel/stride and
/// [`TensorError::InvalidGeometry`] when the kernel does not fit in the padded
/// input.
pub fn conv_output_size(input: usize, kernel: usize, stride: usize, pad: usize) -> Result<usize> {
    if kernel == 0 {
        return Err(TensorError::ZeroSizedParameter { name: "kernel" });
    }
    if stride == 0 {
        return Err(TensorError::ZeroSizedParameter { name: "stride" });
    }
    let padded = input + 2 * pad;
    if padded < kernel {
        return Err(TensorError::InvalidGeometry {
            reason: format!("kernel {kernel} larger than padded input {padded}"),
        });
    }
    Ok((padded - kernel) / stride + 1)
}

/// Unfolds one `[C, H, W]` sample into an im2col matrix
/// `[C*KH*KW, OH*OW]` so convolution becomes a single matmul.
///
/// `sample` must point at the `n`-th image of a `[N, C, H, W]` tensor buffer.
///
/// # Errors
///
/// Propagates geometry errors from [`conv_output_size`].
#[allow(clippy::too_many_arguments)]
pub fn im2col(
    sample: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) -> Result<Tensor> {
    let oh = conv_output_size(h, kh, stride, pad)?;
    let ow = conv_output_size(w, kw, stride, pad)?;
    let mut cols = Tensor::zeros(&[c * kh * kw, oh * ow]);
    let cv = cols.as_mut_slice();
    let spatial = oh * ow;
    for ci in 0..c {
        let plane = &sample[ci * h * w..(ci + 1) * h * w];
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                let out_row = &mut cv[row * spatial..(row + 1) * spatial];
                for ohi in 0..oh {
                    let ih = (ohi * stride + ki) as isize - pad as isize;
                    if ih < 0 || ih >= h as isize {
                        continue;
                    }
                    let in_row = &plane[ih as usize * w..(ih as usize + 1) * w];
                    for owi in 0..ow {
                        let iw = (owi * stride + kj) as isize - pad as isize;
                        if iw < 0 || iw >= w as isize {
                            continue;
                        }
                        out_row[ohi * ow + owi] = in_row[iw as usize];
                    }
                }
            }
        }
    }
    Ok(cols)
}

/// Folds an im2col gradient matrix `[C*KH*KW, OH*OW]` back into a `[C, H, W]`
/// input-gradient buffer, accumulating overlapping windows.
///
/// # Errors
///
/// Propagates geometry errors from [`conv_output_size`].
#[allow(clippy::too_many_arguments)]
pub fn col2im(
    cols: &Tensor,
    out: &mut [f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) -> Result<()> {
    let oh = conv_output_size(h, kh, stride, pad)?;
    let ow = conv_output_size(w, kw, stride, pad)?;
    let spatial = oh * ow;
    let cv = cols.as_slice();
    if cv.len() != c * kh * kw * spatial {
        return Err(TensorError::LengthMismatch {
            expected: c * kh * kw * spatial,
            got: cv.len(),
            op: "col2im",
        });
    }
    for ci in 0..c {
        let plane = &mut out[ci * h * w..(ci + 1) * h * w];
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                let col_row = &cv[row * spatial..(row + 1) * spatial];
                for ohi in 0..oh {
                    let ih = (ohi * stride + ki) as isize - pad as isize;
                    if ih < 0 || ih >= h as isize {
                        continue;
                    }
                    for owi in 0..ow {
                        let iw = (owi * stride + kj) as isize - pad as isize;
                        if iw < 0 || iw >= w as isize {
                            continue;
                        }
                        plane[ih as usize * w + iw as usize] += col_row[ohi * ow + owi];
                    }
                }
            }
        }
    }
    Ok(())
}

/// Unfolds the output-row range `oh0..oh1` of one `[C, H, W]` sample into a
/// panel `[C*KH*KW, (oh1-oh0)*OW]` written to `dst` (fully overwritten,
/// padding positions included), so the fused kernels can walk the patch
/// matrix tile by tile instead of materializing all of it.
///
/// `dst` typically comes from the thread-local arena ([`crate::arena`]).
///
/// # Errors
///
/// Propagates geometry errors from [`conv_output_size`], and returns
/// [`TensorError::LengthMismatch`] when `dst` disagrees with the panel
/// shape or [`TensorError::InvalidGeometry`] for an out-of-range row span.
#[allow(clippy::too_many_arguments)]
pub fn im2col_panel(
    sample: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    oh0: usize,
    oh1: usize,
    dst: &mut [f32],
) -> Result<()> {
    let oh = conv_output_size(h, kh, stride, pad)?;
    let ow = conv_output_size(w, kw, stride, pad)?;
    if oh0 > oh1 || oh1 > oh {
        return Err(TensorError::InvalidGeometry {
            reason: format!("panel rows {oh0}..{oh1} out of range for {oh} output rows"),
        });
    }
    let t = (oh1 - oh0) * ow;
    if dst.len() != c * kh * kw * t {
        return Err(TensorError::LengthMismatch {
            expected: c * kh * kw * t,
            got: dst.len(),
            op: "im2col_panel",
        });
    }
    for ci in 0..c {
        let plane = &sample[ci * h * w..(ci + 1) * h * w];
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                let out_row = &mut dst[row * t..(row + 1) * t];
                for (local, ohi) in (oh0..oh1).enumerate() {
                    let seg = &mut out_row[local * ow..(local + 1) * ow];
                    let ih = (ohi * stride + ki) as isize - pad as isize;
                    if ih < 0 || ih >= h as isize {
                        seg.fill(0.0);
                        continue;
                    }
                    let in_row = &plane[ih as usize * w..(ih as usize + 1) * w];
                    if stride == 1 {
                        // iw = owi + kj - pad: one contiguous copy with
                        // zero-filled borders.
                        let shift = kj as isize - pad as isize;
                        let lo = (-shift).clamp(0, ow as isize) as usize;
                        let hi = (w as isize - shift).clamp(0, ow as isize) as usize;
                        seg[..lo].fill(0.0);
                        seg[hi..].fill(0.0);
                        if lo < hi {
                            let src0 = (lo as isize + shift) as usize;
                            seg[lo..hi].copy_from_slice(&in_row[src0..src0 + (hi - lo)]);
                        }
                    } else {
                        for (owi, x) in seg.iter_mut().enumerate() {
                            let iw = (owi * stride + kj) as isize - pad as isize;
                            *x = if iw < 0 || iw >= w as isize {
                                0.0
                            } else {
                                in_row[iw as usize]
                            };
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Adjoint of [`im2col_panel`]: folds a gradient panel
/// `[C*KH*KW, (oh1-oh0)*OW]` back into a `[C, H, W]` input-gradient buffer,
/// accumulating overlapping windows. Folding every panel of a partition of
/// `0..OH` is equivalent to one whole-matrix [`col2im`].
///
/// # Errors
///
/// Same conditions as [`im2col_panel`].
#[allow(clippy::too_many_arguments)]
pub fn col2im_panel(
    cols: &[f32],
    out: &mut [f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    oh0: usize,
    oh1: usize,
) -> Result<()> {
    let oh = conv_output_size(h, kh, stride, pad)?;
    let ow = conv_output_size(w, kw, stride, pad)?;
    if oh0 > oh1 || oh1 > oh {
        return Err(TensorError::InvalidGeometry {
            reason: format!("panel rows {oh0}..{oh1} out of range for {oh} output rows"),
        });
    }
    let t = (oh1 - oh0) * ow;
    if cols.len() != c * kh * kw * t {
        return Err(TensorError::LengthMismatch {
            expected: c * kh * kw * t,
            got: cols.len(),
            op: "col2im_panel",
        });
    }
    for ci in 0..c {
        let plane = &mut out[ci * h * w..(ci + 1) * h * w];
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                let col_row = &cols[row * t..(row + 1) * t];
                for (local, ohi) in (oh0..oh1).enumerate() {
                    let ih = (ohi * stride + ki) as isize - pad as isize;
                    if ih < 0 || ih >= h as isize {
                        continue;
                    }
                    let seg = &col_row[local * ow..(local + 1) * ow];
                    let dst_row = &mut plane[ih as usize * w..(ih as usize + 1) * w];
                    for (owi, &g) in seg.iter().enumerate() {
                        let iw = (owi * stride + kj) as isize - pad as isize;
                        if iw < 0 || iw >= w as isize {
                            continue;
                        }
                        dst_row[iw as usize] += g;
                    }
                }
            }
        }
    }
    Ok(())
}

pub(crate) fn check_conv_shapes(
    input: &Tensor,
    weight: &Tensor,
) -> Result<(usize, usize, usize, usize, usize, usize, usize)> {
    if input.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            got: input.rank(),
            op: "conv2d",
        });
    }
    if weight.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            got: weight.rank(),
            op: "conv2d",
        });
    }
    let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let (o, wc, kh, kw) = (weight.dim(0), weight.dim(1), weight.dim(2), weight.dim(3));
    if c != wc {
        return Err(TensorError::ShapeMismatch {
            expected: vec![o, c, kh, kw],
            got: weight.dims().to_vec(),
            op: "conv2d (input channels)",
        });
    }
    Ok((n, c, h, w, o, kh, kw))
}

/// 2-D convolution forward pass.
///
/// * `input`: `[N, C, H, W]`
/// * `weight`: `[O, C, KH, KW]`
/// * `bias`: optional `[O]`
///
/// Returns `[N, O, OH, OW]`.
///
/// # Errors
///
/// Returns shape/rank/geometry errors for inconsistent operands.
pub fn conv2d_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
) -> Result<Tensor> {
    crate::backend::global().conv2d_forward(input, weight, bias, stride, pad)
}

/// Packed-weight convolution forward with a fused epilogue: bias, activation
/// and (for the two-branch merge) the elementwise add are applied while the
/// output tile is still cache-hot, instead of as separate full-tensor sweeps.
///
/// # Errors
///
/// Returns shape/rank/geometry errors for inconsistent operands, including
/// an epilogue operand whose shape differs from the convolution output.
pub fn conv2d_forward_fused(
    input: &Tensor,
    packed: &PackedConv2dWeight,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
    epilogue: Epilogue<'_>,
) -> Result<Tensor> {
    crate::backend::global().conv2d_forward_fused(input, packed, bias, stride, pad, epilogue)
}

pub(crate) fn conv2d_forward_naive(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
) -> Result<Tensor> {
    let (n, c, h, w, o, kh, kw) = check_conv_shapes(input, weight)?;
    let oh = conv_output_size(h, kh, stride, pad)?;
    let ow = conv_output_size(w, kw, stride, pad)?;
    if let Some(b) = bias {
        if b.dims() != [o] {
            return Err(TensorError::ShapeMismatch {
                expected: vec![o],
                got: b.dims().to_vec(),
                op: "conv2d (bias)",
            });
        }
    }
    let w2d = weight.reshape(&[o, c * kh * kw])?;
    let mut out = Tensor::zeros(&[n, o, oh, ow]);
    let in_sample = c * h * w;
    let out_sample = o * oh * ow;
    let iv = input.as_slice();
    for ni in 0..n {
        let cols = im2col(
            &iv[ni * in_sample..(ni + 1) * in_sample],
            c,
            h,
            w,
            kh,
            kw,
            stride,
            pad,
        )?;
        let prod = super::matmul::matmul_naive(&w2d, &cols)?; // [O, OH*OW]
        let dst = &mut out.as_mut_slice()[ni * out_sample..(ni + 1) * out_sample];
        dst.copy_from_slice(prod.as_slice());
        if let Some(b) = bias {
            let bv = b.as_slice();
            for (oi, &bval) in bv.iter().enumerate() {
                for x in &mut dst[oi * oh * ow..(oi + 1) * oh * ow] {
                    *x += bval;
                }
            }
        }
    }
    Ok(out)
}

/// Validates a depthwise convolution's operand shapes: input `[N, C, H, W]`
/// against weight `[C, 1, KH, KW]` (one `[KH, KW]` kernel per channel).
///
/// # Errors
///
/// Returns rank/shape errors when the weight is not rank 4, its second
/// dimension is not 1, or its channel count differs from the input's.
pub(crate) fn check_depthwise_shapes(
    input: &Tensor,
    weight: &Tensor,
) -> Result<(usize, usize, usize, usize, usize, usize)> {
    if input.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            got: input.rank(),
            op: "conv2d_depthwise",
        });
    }
    if weight.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            got: weight.rank(),
            op: "conv2d_depthwise",
        });
    }
    let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let (wo, wc, kh, kw) = (weight.dim(0), weight.dim(1), weight.dim(2), weight.dim(3));
    if wo != c || wc != 1 {
        return Err(TensorError::ShapeMismatch {
            expected: vec![c, 1, kh, kw],
            got: weight.dims().to_vec(),
            op: "conv2d_depthwise (per-channel weight)",
        });
    }
    Ok((n, c, h, w, kh, kw))
}

/// Depthwise 2-D convolution forward: each input channel is convolved with
/// its own `[KH, KW]` kernel (no cross-channel reduction).
///
/// * `input`: `[N, C, H, W]`
/// * `weight`: `[C, 1, KH, KW]`
/// * `bias`: optional `[C]`
///
/// Returns `[N, C, OH, OW]`.
///
/// # Errors
///
/// Returns shape/rank/geometry errors for inconsistent operands.
pub fn conv2d_depthwise_forward(
    input: &Tensor,
    packed: &PackedConv2dWeight,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
) -> Result<Tensor> {
    crate::backend::global().conv2d_depthwise_forward(input, packed, bias, stride, pad)
}

/// Depthwise forward with a fused bias + epilogue — the depthwise analogue
/// of [`conv2d_forward_fused`].
///
/// # Errors
///
/// Returns shape/rank/geometry errors for inconsistent operands, including
/// an epilogue operand whose shape differs from the convolution output.
pub fn conv2d_depthwise_forward_fused(
    input: &Tensor,
    packed: &PackedConv2dWeight,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
    epilogue: Epilogue<'_>,
) -> Result<Tensor> {
    crate::backend::global()
        .conv2d_depthwise_forward_fused(input, packed, bias, stride, pad, epilogue)
}

/// Depthwise 2-D convolution backward pass.
///
/// # Errors
///
/// Returns shape/rank/geometry errors for inconsistent operands.
pub fn conv2d_depthwise_backward(
    input: &Tensor,
    packed: &PackedConv2dWeight,
    grad_out: &Tensor,
    stride: usize,
    pad: usize,
    has_bias: bool,
) -> Result<Conv2dGrads> {
    crate::backend::global()
        .conv2d_depthwise_backward(input, packed, grad_out, stride, pad, has_bias)
}

/// Reference depthwise forward: direct per-element taps in `ki → kj` order —
/// the oracle the parallel plane kernels are pinned to.
pub(crate) fn conv2d_depthwise_forward_naive(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
) -> Result<Tensor> {
    let (n, c, h, w, kh, kw) = check_depthwise_shapes(input, weight)?;
    let oh = conv_output_size(h, kh, stride, pad)?;
    let ow = conv_output_size(w, kw, stride, pad)?;
    if let Some(b) = bias {
        if b.dims() != [c] {
            return Err(TensorError::ShapeMismatch {
                expected: vec![c],
                got: b.dims().to_vec(),
                op: "conv2d_depthwise (bias)",
            });
        }
    }
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let iv = input.as_slice();
    let wv = weight.as_slice();
    let bv = bias.map(Tensor::as_slice);
    let ov = out.as_mut_slice();
    let spatial = oh * ow;
    for plane in 0..n * c {
        let ch = plane % c.max(1);
        let src = &iv[plane * h * w..(plane + 1) * h * w];
        let taps = &wv[ch * kh * kw..(ch + 1) * kh * kw];
        let dst = &mut ov[plane * spatial..(plane + 1) * spatial];
        let b = bv.map_or(0.0, |b| b[ch]);
        for ohi in 0..oh {
            for owi in 0..ow {
                let mut acc = 0.0f32;
                for ki in 0..kh {
                    let ih = (ohi * stride + ki) as isize - pad as isize;
                    if ih < 0 || ih >= h as isize {
                        continue;
                    }
                    for kj in 0..kw {
                        let iw = (owi * stride + kj) as isize - pad as isize;
                        if iw < 0 || iw >= w as isize {
                            continue;
                        }
                        acc += taps[ki * kw + kj] * src[ih as usize * w + iw as usize];
                    }
                }
                dst[ohi * ow + owi] = acc + b;
            }
        }
    }
    Ok(out)
}

/// Reference depthwise backward: sample-sequential accumulation, the oracle
/// the chunk-folded parallel backward is pinned to.
pub(crate) fn conv2d_depthwise_backward_naive(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    stride: usize,
    pad: usize,
    has_bias: bool,
) -> Result<Conv2dGrads> {
    let (n, c, h, w, kh, kw) = check_depthwise_shapes(input, weight)?;
    let oh = conv_output_size(h, kh, stride, pad)?;
    let ow = conv_output_size(w, kw, stride, pad)?;
    let expected = [n, c, oh, ow];
    if grad_out.dims() != expected {
        return Err(TensorError::ShapeMismatch {
            expected: expected.to_vec(),
            got: grad_out.dims().to_vec(),
            op: "conv2d_depthwise_backward (grad_out)",
        });
    }
    let mut grad_input = Tensor::zeros(&[n, c, h, w]);
    let mut grad_weight = Tensor::zeros(&[c, 1, kh, kw]);
    let mut grad_bias = has_bias.then(|| Tensor::zeros(&[c]));
    let iv = input.as_slice();
    let gv = grad_out.as_slice();
    let wv = weight.as_slice();
    let gi = grad_input.as_mut_slice();
    let gw = grad_weight.as_mut_slice();
    let spatial = oh * ow;
    for plane in 0..n * c {
        let ch = plane % c.max(1);
        let src = &iv[plane * h * w..(plane + 1) * h * w];
        let g_p = &gv[plane * spatial..(plane + 1) * spatial];
        let gi_p = &mut gi[plane * h * w..(plane + 1) * h * w];
        let taps = &wv[ch * kh * kw..(ch + 1) * kh * kw];
        let gw_c = &mut gw[ch * kh * kw..(ch + 1) * kh * kw];
        for ohi in 0..oh {
            for owi in 0..ow {
                let g = g_p[ohi * ow + owi];
                for ki in 0..kh {
                    let ih = (ohi * stride + ki) as isize - pad as isize;
                    if ih < 0 || ih >= h as isize {
                        continue;
                    }
                    for kj in 0..kw {
                        let iw = (owi * stride + kj) as isize - pad as isize;
                        if iw < 0 || iw >= w as isize {
                            continue;
                        }
                        let idx = ih as usize * w + iw as usize;
                        gi_p[idx] += taps[ki * kw + kj] * g;
                        gw_c[ki * kw + kj] += src[idx] * g;
                    }
                }
            }
        }
        if let Some(gb) = grad_bias.as_mut() {
            let s: f32 = g_p.iter().sum();
            gb.as_mut_slice()[ch] += s;
        }
    }
    Ok(Conv2dGrads {
        grad_input,
        grad_weight,
        grad_bias,
    })
}

/// 2-D convolution backward pass.
///
/// Recomputes im2col per sample (see module docs). `grad_out` must be
/// `[N, O, OH, OW]` matching the forward geometry.
///
/// # Errors
///
/// Returns shape/rank/geometry errors for inconsistent operands.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    stride: usize,
    pad: usize,
    has_bias: bool,
) -> Result<Conv2dGrads> {
    crate::backend::global().conv2d_backward(input, weight, grad_out, stride, pad, has_bias)
}

pub(crate) fn conv2d_backward_naive(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    stride: usize,
    pad: usize,
    has_bias: bool,
) -> Result<Conv2dGrads> {
    let (n, c, h, w, o, kh, kw) = check_conv_shapes(input, weight)?;
    let oh = conv_output_size(h, kh, stride, pad)?;
    let ow = conv_output_size(w, kw, stride, pad)?;
    let expected = [n, o, oh, ow];
    if grad_out.dims() != expected {
        return Err(TensorError::ShapeMismatch {
            expected: expected.to_vec(),
            got: grad_out.dims().to_vec(),
            op: "conv2d_backward (grad_out)",
        });
    }
    let w2d = weight.reshape(&[o, c * kh * kw])?;
    let mut grad_input = Tensor::zeros(&[n, c, h, w]);
    let mut grad_w2d = Tensor::zeros(&[o, c * kh * kw]);
    let mut grad_bias = if has_bias {
        Some(Tensor::zeros(&[o]))
    } else {
        None
    };
    let in_sample = c * h * w;
    let out_sample = o * oh * ow;
    let spatial = oh * ow;
    let iv = input.as_slice();
    let gv = grad_out.as_slice();
    for ni in 0..n {
        let cols = im2col(
            &iv[ni * in_sample..(ni + 1) * in_sample],
            c,
            h,
            w,
            kh,
            kw,
            stride,
            pad,
        )?;
        let g_n = Tensor::from_vec(
            gv[ni * out_sample..(ni + 1) * out_sample].to_vec(),
            &[o, spatial],
        )?;
        // grad_w += g_n @ colsᵀ
        let gw = super::matmul::matmul_transpose_b_naive(&g_n, &cols)?;
        super::elementwise::add_assign_naive(&mut grad_w2d, &gw)?;
        // grad_cols = weightᵀ @ g_n
        let gcols = super::matmul::matmul_transpose_a_naive(&w2d, &g_n)?;
        let gi = &mut grad_input.as_mut_slice()[ni * in_sample..(ni + 1) * in_sample];
        col2im(&gcols, gi, c, h, w, kh, kw, stride, pad)?;
        if let Some(gb) = grad_bias.as_mut() {
            for (oi, gbv) in gb.as_mut_slice().iter_mut().enumerate().take(o) {
                let s: f32 = g_n.as_slice()[oi * spatial..(oi + 1) * spatial]
                    .iter()
                    .sum();
                *gbv += s;
            }
        }
    }
    Ok(Conv2dGrads {
        grad_input,
        grad_weight: grad_w2d.reshape(&[o, c, kh, kw])?,
        grad_bias,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Direct (naive) convolution used as a reference implementation.
    fn conv_reference(
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        stride: usize,
        pad: usize,
    ) -> Tensor {
        let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
        let (o, _, kh, kw) = (weight.dim(0), weight.dim(1), weight.dim(2), weight.dim(3));
        let oh = conv_output_size(h, kh, stride, pad).unwrap();
        let ow = conv_output_size(w, kw, stride, pad).unwrap();
        let mut out = Tensor::zeros(&[n, o, oh, ow]);
        for ni in 0..n {
            for oi in 0..o {
                for ohi in 0..oh {
                    for owi in 0..ow {
                        let mut acc = bias.map(|b| b.as_slice()[oi]).unwrap_or(0.0);
                        for ci in 0..c {
                            for ki in 0..kh {
                                for kj in 0..kw {
                                    let ih = (ohi * stride + ki) as isize - pad as isize;
                                    let iw = (owi * stride + kj) as isize - pad as isize;
                                    if ih < 0 || iw < 0 || ih >= h as isize || iw >= w as isize {
                                        continue;
                                    }
                                    acc += input.at(&[ni, ci, ih as usize, iw as usize]).unwrap()
                                        * weight.at(&[oi, ci, ki, kj]).unwrap();
                                }
                            }
                        }
                        *out.at_mut(&[ni, oi, ohi, owi]).unwrap() = acc;
                    }
                }
            }
        }
        out
    }

    #[test]
    fn output_size_formula() {
        assert_eq!(conv_output_size(32, 3, 1, 1).unwrap(), 32);
        assert_eq!(conv_output_size(32, 3, 2, 1).unwrap(), 16);
        assert_eq!(conv_output_size(5, 3, 1, 0).unwrap(), 3);
        assert!(conv_output_size(2, 5, 1, 0).is_err());
        assert!(conv_output_size(8, 0, 1, 0).is_err());
        assert!(conv_output_size(8, 3, 0, 1).is_err());
    }

    #[test]
    fn forward_matches_reference() {
        let mut rng = StdRng::seed_from_u64(11);
        for &(stride, pad) in &[(1usize, 1usize), (1, 0), (2, 1)] {
            let input = init::randn(&[2, 3, 6, 6], 1.0, &mut rng);
            let weight = init::randn(&[4, 3, 3, 3], 0.5, &mut rng);
            let bias = init::randn(&[4], 0.1, &mut rng);
            let fast = conv2d_forward(&input, &weight, Some(&bias), stride, pad).unwrap();
            let slow = conv_reference(&input, &weight, Some(&bias), stride, pad);
            assert_eq!(fast.dims(), slow.dims());
            for (a, b) in fast.as_slice().iter().zip(slow.as_slice()) {
                assert!(
                    (a - b).abs() < 1e-4,
                    "{a} vs {b} (stride {stride} pad {pad})"
                );
            }
        }
    }

    #[test]
    fn one_by_one_conv_is_channel_mix() {
        // A 1x1 convolution with identity-like weights should permute channels.
        let input =
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0], &[1, 2, 2, 2]).unwrap();
        // weight[0] selects channel 1; weight[1] selects channel 0.
        let weight = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[2, 2, 1, 1]).unwrap();
        let out = conv2d_forward(&input, &weight, None, 1, 0).unwrap();
        assert_eq!(out.as_slice(), &[5.0, 6.0, 7.0, 8.0, 1.0, 2.0, 3.0, 4.0]);
    }

    /// Numerical-gradient check of the full backward pass.
    #[test]
    fn backward_matches_numerical_gradient() {
        let mut rng = StdRng::seed_from_u64(21);
        let input = init::randn(&[1, 2, 5, 5], 1.0, &mut rng);
        let weight = init::randn(&[3, 2, 3, 3], 0.5, &mut rng);
        let bias = init::randn(&[3], 0.1, &mut rng);
        let stride = 1;
        let pad = 1;

        // Loss = sum of outputs, so dL/dout = 1 everywhere.
        let out = conv2d_forward(&input, &weight, Some(&bias), stride, pad).unwrap();
        let grad_out = Tensor::ones(out.dims());
        let grads = conv2d_backward(&input, &weight, &grad_out, stride, pad, true).unwrap();

        let eps = 1e-2f32;
        let loss = |inp: &Tensor, wt: &Tensor, b: &Tensor| {
            conv2d_forward(inp, wt, Some(b), stride, pad).unwrap().sum()
        };

        // Check a sample of weight coordinates.
        for &idx in &[0usize, 7, 20, 35, 53] {
            let mut wp = weight.clone();
            wp.as_mut_slice()[idx] += eps;
            let mut wm = weight.clone();
            wm.as_mut_slice()[idx] -= eps;
            let num = (loss(&input, &wp, &bias) - loss(&input, &wm, &bias)) / (2.0 * eps);
            let ana = grads.grad_weight.as_slice()[idx];
            assert!(
                (num - ana).abs() < 2e-2,
                "weight[{idx}]: num {num} vs ana {ana}"
            );
        }
        // Check a sample of input coordinates.
        for &idx in &[0usize, 12, 24, 49] {
            let mut ip = input.clone();
            ip.as_mut_slice()[idx] += eps;
            let mut im = input.clone();
            im.as_mut_slice()[idx] -= eps;
            let num = (loss(&ip, &weight, &bias) - loss(&im, &weight, &bias)) / (2.0 * eps);
            let ana = grads.grad_input.as_slice()[idx];
            assert!(
                (num - ana).abs() < 2e-2,
                "input[{idx}]: num {num} vs ana {ana}"
            );
        }
        // Bias gradient under sum-loss equals #output positions per channel.
        let per_channel = (out.numel() / out.dim(1)) as f32;
        for &g in grads.grad_bias.as_ref().unwrap().as_slice() {
            assert!((g - per_channel).abs() < 1e-3);
        }
    }

    #[test]
    fn im2col_col2im_adjoint() {
        // <im2col(x), y> == <x, col2im(y)> — the operators must be adjoint,
        // otherwise conv backward is silently wrong.
        let mut rng = StdRng::seed_from_u64(31);
        let (c, h, w, kh, kw, s, p) = (2usize, 5usize, 5usize, 3usize, 3usize, 1usize, 1usize);
        let x = init::randn(&[c, h, w], 1.0, &mut rng);
        let cols_shape_rows = c * kh * kw;
        let oh = conv_output_size(h, kh, s, p).unwrap();
        let ow = conv_output_size(w, kw, s, p).unwrap();
        let y = init::randn(&[cols_shape_rows, oh * ow], 1.0, &mut rng);

        let cols = im2col(x.as_slice(), c, h, w, kh, kw, s, p).unwrap();
        let lhs: f32 = cols
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(a, b)| a * b)
            .sum();

        let mut back = vec![0.0f32; c * h * w];
        col2im(&y, &mut back, c, h, w, kh, kw, s, p).unwrap();
        let rhs: f32 = back.iter().zip(x.as_slice()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-2, "{lhs} vs {rhs}");
    }

    #[test]
    fn shape_validation() {
        let input = Tensor::zeros(&[1, 3, 8, 8]);
        let weight = Tensor::zeros(&[4, 2, 3, 3]); // wrong in-channels
        assert!(conv2d_forward(&input, &weight, None, 1, 1).is_err());
        let weight = Tensor::zeros(&[4, 3, 3, 3]);
        let bad_bias = Tensor::zeros(&[5]);
        assert!(conv2d_forward(&input, &weight, Some(&bad_bias), 1, 1).is_err());
        let grad_bad = Tensor::zeros(&[1, 4, 9, 9]);
        assert!(conv2d_backward(&input, &weight, &grad_bad, 1, 1, false).is_err());
    }

    #[test]
    fn no_bias_backward_has_no_bias_grad() {
        let input = Tensor::ones(&[1, 1, 4, 4]);
        let weight = Tensor::ones(&[1, 1, 3, 3]);
        let out = conv2d_forward(&input, &weight, None, 1, 1).unwrap();
        let grads =
            conv2d_backward(&input, &weight, &Tensor::ones(out.dims()), 1, 1, false).unwrap();
        assert!(grads.grad_bias.is_none());
    }
}
