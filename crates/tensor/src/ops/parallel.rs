//! Parallel kernel implementations backing [`crate::backend::Parallel`].
//!
//! Design rules, in priority order:
//!
//! Kernels run on the persistent worker pool in [`crate::par`]; the design
//! rules below are unchanged from the scoped-thread era because the pool
//! preserves the same chunking and fold order.
//!
//! 1. **Determinism.** Work is split into contiguous chunks in index order
//!    and cross-chunk reductions fold partials in chunk order, so a fixed
//!    thread count always produces the same bits. Most kernels here are
//!    additionally *bit-identical* to the naive reference because each output
//!    element's accumulation order is preserved (row-parallel matmul,
//!    per-sample conv forward, per-channel reductions). The only exceptions
//!    are conv-backward's weight/bias accumulators, which fold per-chunk
//!    partials and therefore agree with naive only to rounding.
//! 2. **Cache blocking.** Matmul kernels block over `k` so panels of `b`
//!    stay resident while a chunk of output rows is computed.
//! 3. **Dispatch amortization.** Enqueueing pool tasks and waking workers
//!    costs microseconds, so every kernel computes a per-chunk work floor
//!    and falls back to the naive path (or fewer chunks) when the tensor is
//!    too small.

use crate::ops::channel::{check_channel_vec, check_nchw};
use crate::ops::conv::{check_conv_shapes, col2im, conv_output_size, im2col, Conv2dGrads};
use crate::ops::elementwise::check_bias_rows;
use crate::ops::matmul::check_rank2;
use crate::ops::pool::MaxPoolIndices;
use crate::par;
use crate::{Result, Tensor, TensorError};

/// Minimum flops a matmul must present before threads are spawned.
const MIN_PAR_FLOPS: usize = 1 << 20;

/// Minimum elements for parallel elementwise/unary traversals.
const MIN_PAR_ELEMS: usize = 1 << 16;

/// Per-chunk element floor for elementwise traversals.
const CHUNK_ELEMS: usize = 1 << 15;

fn row_chunk(m: usize, work_per_row: usize) -> usize {
    let min_rows = MIN_PAR_FLOPS
        .div_ceil(work_per_row.max(1))
        .clamp(1, m.max(1));
    m.div_ceil(par::max_threads()).max(min_rows)
}

fn elem_chunk(len: usize) -> usize {
    len.div_ceil(par::max_threads()).max(CHUNK_ELEMS)
}

// ---------------------------------------------------------------------------
// Blocked row kernels over raw slices (shared by matmul and conv).
// ---------------------------------------------------------------------------

/// `k`-panel depth: the `KB x n` slice of `b` walked during one row-block
/// sweep stays cache-resident.
const KB: usize = 64;

/// Accumulates four consecutive `k`-steps into `o_row` with one load/store
/// of each output element. The adds stay in naive order
/// (`(((o + a0*b0) + a1*b1) + a2*b2) + a3*b3`), so the result is
/// bit-identical to four sequential scalar passes while the output element
/// stays in a register.
#[inline]
fn axpy4(o_row: &mut [f32], a: [f32; 4], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) {
    let n = o_row.len();
    let (b0, b1, b2, b3) = (&b0[..n], &b1[..n], &b2[..n], &b3[..n]);
    for j in 0..n {
        o_row[j] = (((o_row[j] + a[0] * b0[j]) + a[1] * b1[j]) + a[2] * b2[j]) + a[3] * b3[j];
    }
}

#[inline]
fn axpy1(o_row: &mut [f32], a: f32, b_row: &[f32]) {
    for (o, &b) in o_row.iter_mut().zip(b_row) {
        *o += a * b;
    }
}

/// Four-row / four-`k` register-blocked update: each loaded `b` panel value
/// feeds four output rows, and each output element takes its four adds in
/// naive `k`-order (bit-identical to the scalar reference).
#[allow(clippy::too_many_arguments)]
#[inline]
fn axpy4x4(
    o0: &mut [f32],
    o1: &mut [f32],
    o2: &mut [f32],
    o3: &mut [f32],
    a: &[[f32; 4]; 4],
    b0: &[f32],
    b1: &[f32],
    b2: &[f32],
    b3: &[f32],
) {
    let n = o0.len();
    let (b0, b1, b2, b3) = (&b0[..n], &b1[..n], &b2[..n], &b3[..n]);
    let (o1, o2, o3) = (&mut o1[..n], &mut o2[..n], &mut o3[..n]);
    for j in 0..n {
        let (x0, x1, x2, x3) = (b0[j], b1[j], b2[j], b3[j]);
        o0[j] = (((o0[j] + a[0][0] * x0) + a[0][1] * x1) + a[0][2] * x2) + a[0][3] * x3;
        o1[j] = (((o1[j] + a[1][0] * x0) + a[1][1] * x1) + a[1][2] * x2) + a[1][3] * x3;
        o2[j] = (((o2[j] + a[2][0] * x0) + a[2][1] * x1) + a[2][2] * x2) + a[2][3] * x3;
        o3[j] = (((o3[j] + a[3][0] * x0) + a[3][1] * x1) + a[3][2] * x2) + a[3][3] * x3;
    }
}

/// `out[row0..row0+rows] += a[row0..] @ b` with `a: [m, k]`, `b: [k, n]`.
/// `out_rows` is the chunk's slice, `rows * n` long. `a_at(i, kk)` abstracts
/// the `a` element layout so the plain and transposed-`a` kernels share one
/// register-blocked body.
fn kernel_rows_with(
    a_at: impl Fn(usize, usize) -> f32,
    bv: &[f32],
    out_rows: &mut [f32],
    row0: usize,
    rows: usize,
    k: usize,
    n: usize,
) {
    for kb in (0..k).step_by(KB) {
        let kend = (kb + KB).min(k);
        let mut i = 0;
        // 8-row blocks: two 4-row tiles share each streamed b panel pass.
        while i + 8 <= rows {
            let (top, bottom) = out_rows[i * n..].split_at_mut(4 * n);
            let (r0, rest) = top.split_at_mut(n);
            let (r1, rest) = rest.split_at_mut(n);
            let (r2, r3) = rest.split_at_mut(n);
            let (r4, rest) = bottom.split_at_mut(n);
            let (r5, rest) = rest.split_at_mut(n);
            let (r6, rest) = rest.split_at_mut(n);
            let r7 = &mut rest[..n];
            let mut kk = kb;
            while kk + 4 <= kend {
                let mut a_hi = [[0.0f32; 4]; 4];
                let mut a_lo = [[0.0f32; 4]; 4];
                for r in 0..4 {
                    for u in 0..4 {
                        a_hi[r][u] = a_at(row0 + i + r, kk + u);
                        a_lo[r][u] = a_at(row0 + i + 4 + r, kk + u);
                    }
                }
                let b0 = &bv[kk * n..(kk + 1) * n];
                let b1 = &bv[(kk + 1) * n..(kk + 2) * n];
                let b2 = &bv[(kk + 2) * n..(kk + 3) * n];
                let b3 = &bv[(kk + 3) * n..(kk + 4) * n];
                axpy4x4(r0, r1, r2, r3, &a_hi, b0, b1, b2, b3);
                axpy4x4(r4, r5, r6, r7, &a_lo, b0, b1, b2, b3);
                kk += 4;
            }
            while kk < kend {
                let b_row = &bv[kk * n..(kk + 1) * n];
                axpy1(r0, a_at(row0 + i, kk), b_row);
                axpy1(r1, a_at(row0 + i + 1, kk), b_row);
                axpy1(r2, a_at(row0 + i + 2, kk), b_row);
                axpy1(r3, a_at(row0 + i + 3, kk), b_row);
                axpy1(r4, a_at(row0 + i + 4, kk), b_row);
                axpy1(r5, a_at(row0 + i + 5, kk), b_row);
                axpy1(r6, a_at(row0 + i + 6, kk), b_row);
                axpy1(r7, a_at(row0 + i + 7, kk), b_row);
                kk += 1;
            }
            i += 8;
        }
        // 4-row blocks: split the chunk into four disjoint row slices.
        while i + 4 <= rows {
            let (r0, rest) = out_rows[i * n..].split_at_mut(n);
            let (r1, rest) = rest.split_at_mut(n);
            let (r2, rest) = rest.split_at_mut(n);
            let r3 = &mut rest[..n];
            let mut kk = kb;
            while kk + 4 <= kend {
                let mut a = [[0.0f32; 4]; 4];
                for (r, a_row) in a.iter_mut().enumerate() {
                    for (u, a_val) in a_row.iter_mut().enumerate() {
                        *a_val = a_at(row0 + i + r, kk + u);
                    }
                }
                axpy4x4(
                    r0,
                    r1,
                    r2,
                    r3,
                    &a,
                    &bv[kk * n..(kk + 1) * n],
                    &bv[(kk + 1) * n..(kk + 2) * n],
                    &bv[(kk + 2) * n..(kk + 3) * n],
                    &bv[(kk + 3) * n..(kk + 4) * n],
                );
                kk += 4;
            }
            while kk < kend {
                let b_row = &bv[kk * n..(kk + 1) * n];
                axpy1(r0, a_at(row0 + i, kk), b_row);
                axpy1(r1, a_at(row0 + i + 1, kk), b_row);
                axpy1(r2, a_at(row0 + i + 2, kk), b_row);
                axpy1(r3, a_at(row0 + i + 3, kk), b_row);
                kk += 1;
            }
            i += 4;
        }
        // Remainder rows: 4-way k unroll, one row at a time.
        while i < rows {
            let o_row = &mut out_rows[i * n..(i + 1) * n];
            let mut kk = kb;
            while kk + 4 <= kend {
                axpy4(
                    o_row,
                    [
                        a_at(row0 + i, kk),
                        a_at(row0 + i, kk + 1),
                        a_at(row0 + i, kk + 2),
                        a_at(row0 + i, kk + 3),
                    ],
                    &bv[kk * n..(kk + 1) * n],
                    &bv[(kk + 1) * n..(kk + 2) * n],
                    &bv[(kk + 2) * n..(kk + 3) * n],
                    &bv[(kk + 3) * n..(kk + 4) * n],
                );
                kk += 4;
            }
            while kk < kend {
                axpy1(o_row, a_at(row0 + i, kk), &bv[kk * n..(kk + 1) * n]);
                kk += 1;
            }
            i += 1;
        }
    }
}

fn kernel_rows(
    av: &[f32],
    bv: &[f32],
    out_rows: &mut [f32],
    row0: usize,
    rows: usize,
    k: usize,
    n: usize,
) {
    kernel_rows_with(|i, kk| av[i * k + kk], bv, out_rows, row0, rows, k, n);
}

/// `out[row0..row0+rows] += a^T[row0..] @ b` with `a: [k, m]`, `b: [k, n]`.
#[allow(clippy::too_many_arguments)]
fn kernel_rows_ta(
    av: &[f32],
    bv: &[f32],
    out_rows: &mut [f32],
    row0: usize,
    rows: usize,
    k: usize,
    m: usize,
    n: usize,
) {
    kernel_rows_with(|i, kk| av[kk * m + i], bv, out_rows, row0, rows, k, n);
}

/// Materializes `a^T` (`[k, m]` -> `[m, k]`) so transposed products can run
/// the contiguous-row kernel instead of taking a strided load per `k` step.
/// Worth it whenever the `O(k*m)` copy is small next to the `O(m*k*n)`
/// product — callers gate on that.
fn transpose_into(av: &[f32], k: usize, m: usize) -> Vec<f32> {
    let mut at = vec![0.0f32; k * m];
    for kk in 0..k {
        let row = &av[kk * m..(kk + 1) * m];
        for (i, &v) in row.iter().enumerate() {
            at[i * k + kk] = v;
        }
    }
    at
}

/// `out[row0..row0+rows] += a[row0..] @ b^T` with `a: [m, k]`, `b: [n, k]`.
///
/// Each output row is one linear stream over `b` (hardware-prefetch
/// friendly). Dot products use four independent accumulator lanes (folded
/// `(l0+l1)+(l2+l3)` at the end), which reorders the floating-point sum
/// relative to the naive kernel -- agreement is to rounding, not bits.
fn kernel_rows_tb(
    av: &[f32],
    bv: &[f32],
    out_rows: &mut [f32],
    row0: usize,
    rows: usize,
    k: usize,
    n: usize,
) {
    let chunks = k / 4 * 4;
    for i in 0..rows {
        let a_row = &av[(row0 + i) * k..(row0 + i + 1) * k];
        let o_row = &mut out_rows[i * n..(i + 1) * n];
        for (j, o) in o_row.iter_mut().enumerate() {
            let b_row = &bv[j * k..(j + 1) * k];
            let mut lanes = [0.0f32; 4];
            let mut kk = 0;
            while kk < chunks {
                lanes[0] += a_row[kk] * b_row[kk];
                lanes[1] += a_row[kk + 1] * b_row[kk + 1];
                lanes[2] += a_row[kk + 2] * b_row[kk + 2];
                lanes[3] += a_row[kk + 3] * b_row[kk + 3];
                kk += 4;
            }
            let mut acc = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
            while kk < k {
                acc += a_row[kk] * b_row[kk];
                kk += 1;
            }
            *o += acc;
        }
    }
}

// ---------------------------------------------------------------------------
// Matmul
// ---------------------------------------------------------------------------

pub(crate) fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = check_rank2(a, "matmul")?;
    let (k2, n) = check_rank2(b, "matmul")?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            lhs_cols: k,
            rhs_rows: k2,
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    let (av, bv) = (a.as_slice(), b.as_slice());
    let rows_per = row_chunk(m, 2 * k * n);
    par::for_each_chunk_mut(out.as_mut_slice(), rows_per * n.max(1), |ci, chunk| {
        let row0 = ci * rows_per;
        kernel_rows(av, bv, chunk, row0, chunk.len() / n.max(1), k, n);
    });
    Ok(out)
}

pub(crate) fn matmul_transpose_a(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (k, m) = check_rank2(a, "matmul_transpose_a")?;
    let (k2, n) = check_rank2(b, "matmul_transpose_a")?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            lhs_cols: k,
            rhs_rows: k2,
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    let (av, bv) = (a.as_slice(), b.as_slice());
    let rows_per = row_chunk(m, 2 * k * n);
    // With a sizable product, pay O(k*m) once to turn every a-load
    // contiguous; tiny products keep the strided kernel.
    if 2 * m * n * k >= MIN_PAR_FLOPS {
        let at = transpose_into(av, k, m);
        par::for_each_chunk_mut(out.as_mut_slice(), rows_per * n.max(1), |ci, chunk| {
            let row0 = ci * rows_per;
            kernel_rows(&at, bv, chunk, row0, chunk.len() / n.max(1), k, n);
        });
    } else {
        par::for_each_chunk_mut(out.as_mut_slice(), rows_per * n.max(1), |ci, chunk| {
            let row0 = ci * rows_per;
            kernel_rows_ta(av, bv, chunk, row0, chunk.len() / n.max(1), k, m, n);
        });
    }
    Ok(out)
}

pub(crate) fn matmul_transpose_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = check_rank2(a, "matmul_transpose_b")?;
    let (n, k2) = check_rank2(b, "matmul_transpose_b")?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            lhs_cols: k,
            rhs_rows: k2,
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    let (av, bv) = (a.as_slice(), b.as_slice());
    let rows_per = row_chunk(m, 2 * k * n);
    // The dot-product kernel cannot vectorize its float reduction, so with a
    // sizable product it pays to materialize b^T once and run the fast
    // streaming kernel instead.
    if 2 * m * n * k >= MIN_PAR_FLOPS {
        let bt = transpose_into(bv, n, k);
        par::for_each_chunk_mut(out.as_mut_slice(), rows_per * n.max(1), |ci, chunk| {
            let row0 = ci * rows_per;
            kernel_rows(av, &bt, chunk, row0, chunk.len() / n.max(1), k, n);
        });
    } else {
        par::for_each_chunk_mut(out.as_mut_slice(), rows_per * n.max(1), |ci, chunk| {
            let row0 = ci * rows_per;
            kernel_rows_tb(av, bv, chunk, row0, chunk.len() / n.max(1), k, n);
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Convolution (im2col, sample-parallel)
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
pub(crate) fn conv2d_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
) -> Result<Tensor> {
    let (n, c, h, w, o, kh, kw) = check_conv_shapes(input, weight)?;
    let oh = conv_output_size(h, kh, stride, pad)?;
    let ow = conv_output_size(w, kw, stride, pad)?;
    if let Some(b) = bias {
        if b.dims() != [o] {
            return Err(TensorError::ShapeMismatch {
                expected: vec![o],
                got: b.dims().to_vec(),
                op: "conv2d (bias)",
            });
        }
    }
    // Tiny convolutions (prune/attack loops run many) are not worth
    // threads or the transposed-product bookkeeping.
    if 2 * n * o * oh * ow * c * kh * kw < MIN_PAR_FLOPS {
        return crate::ops::conv::conv2d_forward_naive(input, weight, bias, stride, pad);
    }
    let w2d = weight.reshape(&[o, c * kh * kw])?;
    let mut out = Tensor::zeros(&[n, o, oh, ow]);
    let in_sample = c * h * w;
    let out_sample = o * oh * ow;
    let spatial = oh * ow;
    let ckk = c * kh * kw;
    let iv = input.as_slice();
    let wv = w2d.as_slice();
    let bias_v = bias.map(Tensor::as_slice);
    let samples_per = n.div_ceil(par::max_threads()).max(1);
    par::for_each_chunk_mut(
        out.as_mut_slice(),
        samples_per * out_sample.max(1),
        |ci, chunk| {
            let first = ci * samples_per;
            for (local, dst) in chunk.chunks_mut(out_sample.max(1)).enumerate() {
                let ni = first + local;
                let cols = im2col(
                    &iv[ni * in_sample..(ni + 1) * in_sample],
                    c,
                    h,
                    w,
                    kh,
                    kw,
                    stride,
                    pad,
                )
                .expect("conv geometry validated before dispatch");
                // dst is zero-initialized, so accumulating the blocked kernel
                // into it equals the naive matmul-then-copy.
                kernel_rows(wv, cols.as_slice(), dst, 0, o, ckk, spatial);
                if let Some(bv) = bias_v {
                    for (oi, &bval) in bv.iter().enumerate() {
                        for x in &mut dst[oi * spatial..(oi + 1) * spatial] {
                            *x += bval;
                        }
                    }
                }
            }
        },
    );
    Ok(out)
}

pub(crate) fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    stride: usize,
    pad: usize,
    has_bias: bool,
) -> Result<Conv2dGrads> {
    let (n, c, h, w, o, kh, kw) = check_conv_shapes(input, weight)?;
    let oh = conv_output_size(h, kh, stride, pad)?;
    let ow = conv_output_size(w, kw, stride, pad)?;
    let expected = [n, o, oh, ow];
    if grad_out.dims() != expected {
        return Err(TensorError::ShapeMismatch {
            expected: expected.to_vec(),
            got: grad_out.dims().to_vec(),
            op: "conv2d_backward (grad_out)",
        });
    }
    // Same work floor as the forward pass (backward does ~2x the flops).
    if 2 * n * o * oh * ow * c * kh * kw < MIN_PAR_FLOPS {
        return crate::ops::conv::conv2d_backward_naive(
            input, weight, grad_out, stride, pad, has_bias,
        );
    }
    let w2d = weight.reshape(&[o, c * kh * kw])?;
    let mut grad_input = Tensor::zeros(&[n, c, h, w]);
    let in_sample = c * h * w;
    let out_sample = o * oh * ow;
    let spatial = oh * ow;
    let ckk = c * kh * kw;
    let iv = input.as_slice();
    let gv = grad_out.as_slice();
    // One O(o*ckk) transpose of the weight makes the per-sample
    // `grad_cols = weight^T @ g_n` products run on contiguous rows.
    let wt = transpose_into(w2d.as_slice(), o, ckk);
    let wtv = wt.as_slice();
    let samples_per = n.div_ceil(par::max_threads()).max(1);

    // Each chunk owns its samples' grad_input slice and accumulates local
    // weight/bias partials; partials fold in chunk order below.
    let worker = |ci: usize, gi_chunk: &mut [f32]| -> (Vec<f32>, Vec<f32>) {
        let first = ci * samples_per;
        let mut gw_local = vec![0.0f32; o * ckk];
        let mut gb_local = vec![0.0f32; if has_bias { o } else { 0 }];
        for (local, gi) in gi_chunk.chunks_mut(in_sample.max(1)).enumerate() {
            let ni = first + local;
            let cols = im2col(
                &iv[ni * in_sample..(ni + 1) * in_sample],
                c,
                h,
                w,
                kh,
                kw,
                stride,
                pad,
            )
            .expect("conv geometry validated before dispatch");
            let g_n = &gv[ni * out_sample..(ni + 1) * out_sample];
            // grad_w += g_n @ colsᵀ, computed transposed
            // (gwᵀ += cols @ g_nᵀ) so the product streams rows
            // instead of running unvectorizable dot reductions;
            // transposing g_n is O(o·spatial), tiny next to the
            // O(o·ckk·spatial) product.
            let g_nt = transpose_into(g_n, o, spatial);
            kernel_rows(cols.as_slice(), &g_nt, &mut gw_local, 0, ckk, spatial, o);
            // grad_cols = weightᵀ @ g_n (weight pre-transposed)
            let mut gcols = Tensor::zeros(&[ckk, spatial]);
            kernel_rows(wtv, g_n, gcols.as_mut_slice(), 0, ckk, o, spatial);
            col2im(&gcols, gi, c, h, w, kh, kw, stride, pad)
                .expect("conv geometry validated before dispatch");
            for (oi, gb) in gb_local.iter_mut().enumerate() {
                let s: f32 = g_n[oi * spatial..(oi + 1) * spatial].iter().sum();
                *gb += s;
            }
        }
        (gw_local, gb_local)
    };
    // Single chunk → run inline; no point paying a scoped-thread spawn.
    let partials: Vec<(Vec<f32>, Vec<f32>)> = if samples_per >= n {
        vec![worker(0, grad_input.as_mut_slice())]
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = grad_input
                .as_mut_slice()
                .chunks_mut(samples_per * in_sample.max(1))
                .enumerate()
                .map(|(ci, gi_chunk)| {
                    let worker = &worker;
                    s.spawn(move || worker(ci, gi_chunk))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    };

    // Chunk partials hold gwᵀ; fold in chunk order, then transpose once.
    let mut gwt = vec![0.0f32; ckk * o];
    let mut grad_bias = if has_bias {
        Some(Tensor::zeros(&[o]))
    } else {
        None
    };
    for (gw_local, gb_local) in &partials {
        for (x, y) in gwt.iter_mut().zip(gw_local) {
            *x += y;
        }
        if let Some(gb) = grad_bias.as_mut() {
            for (x, y) in gb.as_mut_slice().iter_mut().zip(gb_local) {
                *x += y;
            }
        }
    }
    let grad_w2d = Tensor::from_vec(transpose_into(&gwt, ckk, o), &[o, ckk])?;
    Ok(Conv2dGrads {
        grad_input,
        grad_weight: grad_w2d.reshape(&[o, c, kh, kw])?,
        grad_bias,
    })
}

// ---------------------------------------------------------------------------
// Elementwise
// ---------------------------------------------------------------------------

fn zip_mut(a: &mut Tensor, b: &Tensor, f: impl Fn(&mut f32, f32) + Sync) {
    let len = a.numel();
    let bv = b.as_slice();
    if len < MIN_PAR_ELEMS {
        for (x, &y) in a.as_mut_slice().iter_mut().zip(bv) {
            f(x, y);
        }
        return;
    }
    let chunk = elem_chunk(len);
    par::for_each_chunk_mut(a.as_mut_slice(), chunk, |ci, ca| {
        let off = ci * chunk;
        let end = off + ca.len();
        for (x, &y) in ca.iter_mut().zip(&bv[off..end]) {
            f(x, y);
        }
    });
}

pub(crate) fn add(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    a.expect_same_shape(b, "add")?;
    let mut out = a.clone();
    zip_mut(&mut out, b, |x, y| *x += y);
    Ok(out)
}

pub(crate) fn sub(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    a.expect_same_shape(b, "sub")?;
    let mut out = a.clone();
    zip_mut(&mut out, b, |x, y| *x -= y);
    Ok(out)
}

pub(crate) fn hadamard(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    a.expect_same_shape(b, "hadamard")?;
    let mut out = a.clone();
    zip_mut(&mut out, b, |x, y| *x *= y);
    Ok(out)
}

pub(crate) fn add_assign(a: &mut Tensor, b: &Tensor) -> Result<()> {
    a.expect_same_shape(b, "add_assign")?;
    zip_mut(a, b, |x, y| *x += y);
    Ok(())
}

pub(crate) fn add_scaled(a: &mut Tensor, b: &Tensor, alpha: f32) -> Result<()> {
    a.expect_same_shape(b, "add_scaled")?;
    zip_mut(a, b, |x, y| *x += alpha * y);
    Ok(())
}

pub(crate) fn scale(a: &Tensor, alpha: f32) -> Tensor {
    unary(a, &|x| alpha * x)
}

pub(crate) fn unary(a: &Tensor, f: &(dyn Fn(f32) -> f32 + Sync)) -> Tensor {
    let len = a.numel();
    if len < MIN_PAR_ELEMS {
        return a.map(f);
    }
    let mut out = a.clone();
    let chunk = elem_chunk(len);
    par::for_each_chunk_mut(out.as_mut_slice(), chunk, |_ci, ca| {
        for x in ca.iter_mut() {
            *x = f(*x);
        }
    });
    out
}

pub(crate) fn add_bias_rows(out: &mut Tensor, bias: &Tensor) -> Result<()> {
    let (n, d) = check_bias_rows(out, bias)?;
    let bv = bias.as_slice();
    if n * d < MIN_PAR_ELEMS {
        return crate::ops::elementwise::add_bias_rows_naive(out, bias);
    }
    let rows_per = n
        .div_ceil(par::max_threads())
        .max(CHUNK_ELEMS.div_ceil(d.max(1)));
    par::for_each_chunk_mut(out.as_mut_slice(), rows_per * d.max(1), |_ci, chunk| {
        for row in chunk.chunks_mut(d.max(1)) {
            for (x, &b) in row.iter_mut().zip(bv) {
                *x += b;
            }
        }
    });
    Ok(())
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

pub(crate) fn channel_mean_var(input: &Tensor) -> Result<(Tensor, Tensor)> {
    let (n, c, h, w) = check_nchw(input, "channel_mean_var")?;
    let count = n * h * w;
    if count == 0 {
        return Err(TensorError::InvalidGeometry {
            reason: "cannot compute channel statistics over an empty batch".into(),
        });
    }
    if n * c * h * w < MIN_PAR_ELEMS {
        return crate::ops::reduce::channel_mean_var_naive(input);
    }
    let plane = h * w;
    let mut mean = Tensor::zeros(&[c]);
    let mut var = Tensor::zeros(&[c]);
    let iv = input.as_slice();
    let channels_per = c.div_ceil(par::max_threads()).max(1);
    par::for_each_chunk_mut2(
        mean.as_mut_slice(),
        var.as_mut_slice(),
        channels_per,
        channels_per,
        |chunk_i, mc, vc| {
            let c0 = chunk_i * channels_per;
            for (local, (m_out, v_out)) in mc.iter_mut().zip(vc.iter_mut()).enumerate() {
                let ci = c0 + local;
                let mut s = 0.0f64;
                for ni in 0..n {
                    let base = (ni * c + ci) * plane;
                    for &x in &iv[base..base + plane] {
                        s += x as f64;
                    }
                }
                let m = (s / count as f64) as f32;
                *m_out = m;
                let mut v = 0.0f64;
                for ni in 0..n {
                    let base = (ni * c + ci) * plane;
                    for &x in &iv[base..base + plane] {
                        let d = x - m;
                        v += (d * d) as f64;
                    }
                }
                *v_out = (v / count as f64) as f32;
            }
        },
    );
    Ok((mean, var))
}

pub(crate) fn channel_sum(input: &Tensor) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw(input, "channel_sum")?;
    if n * c * h * w < MIN_PAR_ELEMS {
        return crate::ops::reduce::channel_sum_naive(input);
    }
    let plane = h * w;
    let mut out = Tensor::zeros(&[c]);
    let iv = input.as_slice();
    let channels_per = c.div_ceil(par::max_threads()).max(1);
    par::for_each_chunk_mut(out.as_mut_slice(), channels_per, |chunk_i, oc| {
        let c0 = chunk_i * channels_per;
        for (local, o) in oc.iter_mut().enumerate() {
            let ci = c0 + local;
            let mut s = 0.0f32;
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                s += iv[base..base + plane].iter().sum::<f32>();
            }
            *o = s;
        }
    });
    Ok(out)
}

pub(crate) fn sum_axis0(input: &Tensor) -> Result<Tensor> {
    if input.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            got: input.rank(),
            op: "sum_axis0",
        });
    }
    let (n, d) = (input.dim(0), input.dim(1));
    if n * d < MIN_PAR_ELEMS {
        return crate::ops::reduce::sum_axis0_naive(input);
    }
    let mut out = Tensor::zeros(&[d]);
    let iv = input.as_slice();
    let cols_per = d.div_ceil(par::max_threads()).max(1);
    par::for_each_chunk_mut(out.as_mut_slice(), cols_per, |chunk_i, oc| {
        let d0 = chunk_i * cols_per;
        for ni in 0..n {
            let row = &iv[ni * d + d0..ni * d + d0 + oc.len()];
            for (o, &x) in oc.iter_mut().zip(row) {
                *o += x;
            }
        }
    });
    Ok(out)
}

pub(crate) fn softmax_rows(logits: &Tensor) -> Result<Tensor> {
    if logits.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            got: logits.rank(),
            op: "softmax_rows",
        });
    }
    let (n, d) = (logits.dim(0), logits.dim(1));
    if n * d < MIN_PAR_ELEMS {
        return crate::ops::reduce::softmax_rows_naive(logits);
    }
    let mut out = logits.clone();
    let rows_per = n.div_ceil(par::max_threads()).max(1);
    par::for_each_chunk_mut(out.as_mut_slice(), rows_per * d.max(1), |_ci, chunk| {
        for row in chunk.chunks_mut(d.max(1)) {
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for x in row.iter_mut() {
                *x = (*x - max).exp();
                sum += *x;
            }
            let inv = 1.0 / sum;
            for x in row.iter_mut() {
                *x *= inv;
            }
        }
    });
    Ok(out)
}

// ---------------------------------------------------------------------------
// BatchNorm channel kernels (sample-chunked elementwise, channel reductions)
// ---------------------------------------------------------------------------

/// Runs `f(plane_range_start_channel, sample_chunk)` over whole-sample chunks
/// of `data` (`[N, C, H, W]` flattened), passing the first sample index.
fn for_sample_chunks(data: &mut [f32], sample_len: usize, f: impl Fn(usize, &mut [f32]) + Sync) {
    let n = data.len().checked_div(sample_len).unwrap_or(0);
    let samples_per = n.div_ceil(par::max_threads()).max(1);
    par::for_each_chunk_mut(data, samples_per * sample_len.max(1), |ci, chunk| {
        f(ci * samples_per, chunk);
    });
}

pub(crate) fn bn_normalize(input: &Tensor, mean: &Tensor, inv_std: &Tensor) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw(input, "bn_normalize")?;
    check_channel_vec(mean, c, "bn_normalize (mean)")?;
    check_channel_vec(inv_std, c, "bn_normalize (inv_std)")?;
    if n * c * h * w < MIN_PAR_ELEMS {
        return crate::ops::channel::bn_normalize_naive(input, mean, inv_std);
    }
    let plane = h * w;
    let mut out = input.clone();
    let mv = mean.as_slice();
    let sv = inv_std.as_slice();
    for_sample_chunks(out.as_mut_slice(), c * plane, |_first, chunk| {
        for sample in chunk.chunks_mut(c * plane) {
            for (ci, ch) in sample.chunks_mut(plane).enumerate() {
                let m = mv[ci];
                let is = sv[ci];
                for x in ch.iter_mut() {
                    *x = (*x - m) * is;
                }
            }
        }
    });
    Ok(out)
}

pub(crate) fn channel_affine(input: &Tensor, scale: &Tensor, shift: &Tensor) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw(input, "channel_affine")?;
    check_channel_vec(scale, c, "channel_affine (scale)")?;
    check_channel_vec(shift, c, "channel_affine (shift)")?;
    if n * c * h * w < MIN_PAR_ELEMS {
        return crate::ops::channel::channel_affine_naive(input, scale, shift);
    }
    let plane = h * w;
    let mut out = input.clone();
    let g = scale.as_slice();
    let b = shift.as_slice();
    for_sample_chunks(out.as_mut_slice(), c * plane, |_first, chunk| {
        for sample in chunk.chunks_mut(c * plane) {
            for (ci, ch) in sample.chunks_mut(plane).enumerate() {
                for x in ch.iter_mut() {
                    *x = g[ci] * *x + b[ci];
                }
            }
        }
    });
    Ok(out)
}

pub(crate) fn bn_backward_reduce(grad_out: &Tensor, x_hat: &Tensor) -> Result<(Tensor, Tensor)> {
    let (n, c, h, w) = check_nchw(grad_out, "bn_backward_reduce")?;
    grad_out.expect_same_shape(x_hat, "bn_backward_reduce")?;
    if n * c * h * w < MIN_PAR_ELEMS {
        return crate::ops::channel::bn_backward_reduce_naive(grad_out, x_hat);
    }
    let plane = h * w;
    let mut sum_dy = Tensor::zeros(&[c]);
    let mut sum_dy_xhat = Tensor::zeros(&[c]);
    let gv = grad_out.as_slice();
    let xv = x_hat.as_slice();
    let channels_per = c.div_ceil(par::max_threads()).max(1);
    par::for_each_chunk_mut2(
        sum_dy.as_mut_slice(),
        sum_dy_xhat.as_mut_slice(),
        channels_per,
        channels_per,
        |chunk_i, dc, dxc| {
            let c0 = chunk_i * channels_per;
            for (local, (d_out, dx_out)) in dc.iter_mut().zip(dxc.iter_mut()).enumerate() {
                let ci = c0 + local;
                for ni in 0..n {
                    let base = (ni * c + ci) * plane;
                    let mut s = 0.0f32;
                    let mut sx = 0.0f32;
                    for off in base..base + plane {
                        s += gv[off];
                        sx += gv[off] * xv[off];
                    }
                    *d_out += s;
                    *dx_out += sx;
                }
            }
        },
    );
    Ok((sum_dy, sum_dy_xhat))
}

pub(crate) fn bn_input_grad(
    grad_out: &Tensor,
    x_hat: &Tensor,
    gamma: &Tensor,
    inv_std: &Tensor,
    sum_dy: &Tensor,
    sum_dy_xhat: &Tensor,
) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw(grad_out, "bn_input_grad")?;
    grad_out.expect_same_shape(x_hat, "bn_input_grad")?;
    check_channel_vec(gamma, c, "bn_input_grad (gamma)")?;
    check_channel_vec(inv_std, c, "bn_input_grad (inv_std)")?;
    check_channel_vec(sum_dy, c, "bn_input_grad (sum_dy)")?;
    check_channel_vec(sum_dy_xhat, c, "bn_input_grad (sum_dy_xhat)")?;
    if n * c * h * w < MIN_PAR_ELEMS {
        return crate::ops::channel::bn_input_grad_naive(
            grad_out,
            x_hat,
            gamma,
            inv_std,
            sum_dy,
            sum_dy_xhat,
        );
    }
    let plane = h * w;
    let count = (n * plane) as f32;
    let mut grad_in = grad_out.clone();
    let xv = x_hat.as_slice();
    let g = gamma.as_slice();
    let is = inv_std.as_slice();
    let dv = sum_dy.as_slice();
    let dxv = sum_dy_xhat.as_slice();
    let sample_len = c * plane;
    let samples_per = n.div_ceil(par::max_threads()).max(1);
    par::for_each_chunk_mut(
        grad_in.as_mut_slice(),
        samples_per * sample_len.max(1),
        |ci, chunk| {
            let first = ci * samples_per;
            for (local, sample) in chunk.chunks_mut(sample_len).enumerate() {
                let ni = first + local;
                for (cidx, ch) in sample.chunks_mut(plane).enumerate() {
                    let mean_dy = dv[cidx] / count;
                    let mean_dy_xhat = dxv[cidx] / count;
                    let scale = g[cidx] * is[cidx];
                    let base = (ni * c + cidx) * plane;
                    for (off, x) in ch.iter_mut().enumerate() {
                        *x = scale * (*x - mean_dy - xv[base + off] * mean_dy_xhat);
                    }
                }
            }
        },
    );
    Ok(grad_in)
}

// ---------------------------------------------------------------------------
// Pooling
// ---------------------------------------------------------------------------

pub(crate) fn maxpool2d_forward(input: &Tensor, k: usize) -> Result<(Tensor, MaxPoolIndices)> {
    let (n, c, h, w) = check_nchw(input, "maxpool2d")?;
    let oh = conv_output_size(h, k, k, 0)?;
    let ow = conv_output_size(w, k, k, 0)?;
    if n * c * h * w < MIN_PAR_ELEMS {
        return crate::ops::pool::maxpool2d_forward_naive(input, k);
    }
    let planes = n * c;
    let out_plane = oh * ow;
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let mut winners = vec![0usize; planes * out_plane];
    let iv = input.as_slice();
    let planes_per = planes.div_ceil(par::max_threads()).max(1);
    par::for_each_chunk_mut2(
        out.as_mut_slice(),
        &mut winners,
        planes_per * out_plane.max(1),
        planes_per * out_plane.max(1),
        |chunk_i, oc, wc| {
            let p0 = chunk_i * planes_per;
            for (local, (op, wp)) in oc
                .chunks_mut(out_plane.max(1))
                .zip(wc.chunks_mut(out_plane.max(1)))
                .enumerate()
            {
                let plane_base = (p0 + local) * h * w;
                let mut oidx = 0usize;
                for ohi in 0..oh {
                    for owi in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_off = plane_base;
                        for ki in 0..k {
                            let ih = ohi * k + ki;
                            for kj in 0..k {
                                let iw = owi * k + kj;
                                let off = plane_base + ih * w + iw;
                                if iv[off] > best {
                                    best = iv[off];
                                    best_off = off;
                                }
                            }
                        }
                        op[oidx] = best;
                        wp[oidx] = best_off;
                        oidx += 1;
                    }
                }
            }
        },
    );
    Ok((
        out,
        MaxPoolIndices {
            winners,
            input_dims: vec![n, c, h, w],
        },
    ))
}

pub(crate) fn maxpool2d_backward(grad_out: &Tensor, indices: &MaxPoolIndices) -> Result<Tensor> {
    if grad_out.numel() != indices.winners.len() {
        return Err(TensorError::LengthMismatch {
            expected: indices.winners.len(),
            got: grad_out.numel(),
            op: "maxpool2d_backward",
        });
    }
    let dims = &indices.input_dims;
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    if n * c * h * w < MIN_PAR_ELEMS {
        return crate::ops::pool::maxpool2d_backward_naive(grad_out, indices);
    }
    let planes = n * c;
    let in_plane = h * w;
    let out_plane = grad_out.numel().checked_div(planes).unwrap_or(0);
    let mut grad_input = Tensor::zeros(dims);
    let gv = grad_out.as_slice();
    let wv = &indices.winners;
    let planes_per = planes.div_ceil(par::max_threads()).max(1);
    // Winner offsets stay inside their own plane, so chunking the input
    // gradient by whole planes gives disjoint writes.
    par::for_each_chunk_mut(
        grad_input.as_mut_slice(),
        planes_per * in_plane.max(1),
        |chunk_i, gi_chunk| {
            let p0 = chunk_i * planes_per;
            let in_base = p0 * in_plane;
            let out_lo = p0 * out_plane;
            let out_hi = (out_lo + gi_chunk.len() / in_plane.max(1) * out_plane).min(gv.len());
            for (&win, &g) in wv[out_lo..out_hi].iter().zip(&gv[out_lo..out_hi]) {
                gi_chunk[win - in_base] += g;
            }
        },
    );
    Ok(grad_input)
}

pub(crate) fn avgpool2d_global_forward(input: &Tensor) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw(input, "avgpool2d_global")?;
    if n * c * h * w < MIN_PAR_ELEMS {
        return crate::ops::pool::avgpool2d_global_forward_naive(input);
    }
    let mut out = Tensor::zeros(&[n, c]);
    let iv = input.as_slice();
    let area = (h * w) as f32;
    let plane = h * w;
    let planes_per = (n * c).div_ceil(par::max_threads()).max(1);
    par::for_each_chunk_mut(out.as_mut_slice(), planes_per, |chunk_i, oc| {
        let p0 = chunk_i * planes_per;
        for (local, o) in oc.iter_mut().enumerate() {
            let base = (p0 + local) * plane;
            let s: f32 = iv[base..base + plane].iter().sum();
            *o = s / area;
        }
    });
    Ok(out)
}

pub(crate) fn avgpool2d_global_backward(grad_out: &Tensor, input_dims: &[usize]) -> Result<Tensor> {
    if input_dims.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            got: input_dims.len(),
            op: "avgpool2d_global_backward",
        });
    }
    let (n, c, h, w) = (input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
    if grad_out.dims() != [n, c] {
        return Err(TensorError::ShapeMismatch {
            expected: vec![n, c],
            got: grad_out.dims().to_vec(),
            op: "avgpool2d_global_backward",
        });
    }
    if n * c * h * w < MIN_PAR_ELEMS {
        return crate::ops::pool::avgpool2d_global_backward_naive(grad_out, input_dims);
    }
    let mut grad_input = Tensor::zeros(input_dims);
    let gv = grad_out.as_slice();
    let area = (h * w) as f32;
    let plane = h * w;
    let planes_per = (n * c).div_ceil(par::max_threads()).max(1);
    par::for_each_chunk_mut(
        grad_input.as_mut_slice(),
        planes_per * plane.max(1),
        |chunk_i, chunk| {
            let p0 = chunk_i * planes_per;
            for (local, gp) in chunk.chunks_mut(plane.max(1)).enumerate() {
                let g = gv[p0 + local] / area;
                for x in gp.iter_mut() {
                    *x = g;
                }
            }
        },
    );
    Ok(grad_input)
}
