//! Parallel kernel implementations backing [`crate::backend::Parallel`].
//!
//! Design rules, in priority order:
//!
//! Kernels run on the persistent worker pool in [`crate::par`]; the design
//! rules below are unchanged from the scoped-thread era because the pool
//! preserves the same chunking and fold order.
//!
//! 1. **Determinism.** Work is split into contiguous chunks in index order
//!    and cross-chunk reductions fold partials in chunk order, so a fixed
//!    thread count always produces the same bits. Most kernels here are
//!    additionally *bit-identical* to the naive reference because each output
//!    element's accumulation order is preserved (row-parallel matmul,
//!    output-tile conv forward, per-channel reductions). The exceptions,
//!    which agree with naive only to rounding: conv-backward's weight/bias
//!    accumulators (fold per-chunk partials) and the direct 3×3 forward on
//!    AVX2+FMA hosts (same accumulation order, but fused multiply-add
//!    rounds once per tap instead of twice).
//! 2. **Cache blocking.** Matmul kernels block over `k` so panels of `b`
//!    stay resident while a chunk of output rows is computed; the fused
//!    convolution engine (see `ops::conv`) unfolds im2col *panels* into the
//!    thread-local arena ([`crate::arena`]) instead of materializing the
//!    whole patch matrix, consumes weights packed once per weight-update
//!    epoch ([`PackedConv2dWeight`]), and shape-dispatches 1×1 and
//!    3×3/s1/p1 geometries to unfold-free kernels.
//! 3. **Zero steady-state allocation.** Every transient buffer — im2col
//!    panels, operand transposes, per-chunk gradient partials — is arena
//!    scratch; after one warm-up call the hot path performs no heap
//!    allocations beyond the returned tensors.
//! 4. **Dispatch amortization.** Enqueueing pool tasks and waking workers
//!    costs microseconds, so every kernel computes a per-chunk work floor
//!    and falls back to fewer chunks (or one inline chunk) when the tensor
//!    is too small.

use crate::arena;
use crate::ops::channel::{check_channel_vec, check_nchw};
use crate::ops::conv::{
    check_conv_shapes, check_depthwise_shapes, col2im_panel, conv_output_size, im2col_panel,
    pack_panels_into, pack_transposed_into, packed_panel_len, Conv2dGrads, Epilogue, PackView,
    PackedConv2dWeight,
};
use crate::ops::elementwise::check_bias_rows;
use crate::ops::matmul::check_rank2;
use crate::ops::pool::MaxPoolIndices;
use crate::par;
use crate::{Result, Tensor, TensorError};

/// Minimum flops a matmul must present before threads are spawned.
const MIN_PAR_FLOPS: usize = 1 << 20;

/// Minimum elements for parallel elementwise/unary traversals.
const MIN_PAR_ELEMS: usize = 1 << 16;

/// Per-chunk element floor for elementwise traversals.
const CHUNK_ELEMS: usize = 1 << 15;

fn row_chunk(m: usize, work_per_row: usize) -> usize {
    let min_rows = MIN_PAR_FLOPS
        .div_ceil(work_per_row.max(1))
        .clamp(1, m.max(1));
    m.div_ceil(par::max_threads()).max(min_rows)
}

fn elem_chunk(len: usize) -> usize {
    len.div_ceil(par::max_threads()).max(CHUNK_ELEMS)
}

// ---------------------------------------------------------------------------
// Runtime SIMD dispatch.
//
// rustc's default x86-64 target only emits SSE2, which caps every f32
// kernel at 4 lanes; the build hosts (and any production x86 deployment
// this decade) have AVX2. The hot kernels therefore come in two codegen
// flavours sharing one `#[inline(always)]` body: the baseline symbol and an
// `#[target_feature(enable = "avx2")]` clone whose body re-vectorizes at 8
// lanes. Dispatch is a memoized CPUID check per kernel call — nanoseconds
// against kernels that run micro- to milliseconds. Numerics are identical:
// wider lanes change neither the per-element accumulation order nor
// contraction (Rust keeps `ffp-contract=off`), so AVX2 results are
// bit-identical to the baseline's.
// ---------------------------------------------------------------------------

/// True when the running CPU supports AVX2 (always false off x86-64).
#[inline]
fn have_avx2() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        // is_x86_feature_detected! memoizes in a process-wide atomic.
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Expands to a baseline + AVX2 pair of wrappers around an
/// `#[inline(always)]` kernel body, plus the dispatching entry point.
macro_rules! simd_dispatch {
    (fn $name:ident / $avx2:ident / $body:ident
     <$($gen:ident : $bound:path),*> ($($arg:ident : $ty:ty),* $(,)?)) => {
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2")]
        fn $avx2<$($gen: $bound),*>($($arg: $ty),*) {
            $body($($arg),*)
        }

        #[inline]
        fn $name<$($gen: $bound),*>($($arg: $ty),*) {
            #[cfg(target_arch = "x86_64")]
            if have_avx2() {
                // SAFETY: the AVX2 clone is only reached after
                // `is_x86_feature_detected!("avx2")` confirmed the CPU
                // supports every instruction it may contain.
                #[allow(unsafe_code)]
                return unsafe { $avx2($($arg),*) };
            }
            $body($($arg),*)
        }
    };
}

// ---------------------------------------------------------------------------
// Blocked row kernels over raw slices (shared by matmul and conv).
// ---------------------------------------------------------------------------

/// `k`-panel depth: the `KB x n` slice of `b` walked during one row-block
/// sweep stays cache-resident.
const KB: usize = 64;

/// Accumulates four consecutive `k`-steps into `o_row` with one load/store
/// of each output element. The adds stay in naive order
/// (`(((o + a0*b0) + a1*b1) + a2*b2) + a3*b3`), so the result is
/// bit-identical to four sequential scalar passes while the output element
/// stays in a register.
#[inline(always)]
fn axpy4(o_row: &mut [f32], a: [f32; 4], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) {
    let n = o_row.len();
    let (b0, b1, b2, b3) = (&b0[..n], &b1[..n], &b2[..n], &b3[..n]);
    for j in 0..n {
        o_row[j] = (((o_row[j] + a[0] * b0[j]) + a[1] * b1[j]) + a[2] * b2[j]) + a[3] * b3[j];
    }
}

#[inline(always)]
fn axpy1(o_row: &mut [f32], a: f32, b_row: &[f32]) {
    for (o, &b) in o_row.iter_mut().zip(b_row) {
        *o += a * b;
    }
}

/// Four-row / four-`k` register-blocked update: each loaded `b` panel value
/// feeds four output rows, and each output element takes its four adds in
/// naive `k`-order (bit-identical to the scalar reference).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn axpy4x4(
    o0: &mut [f32],
    o1: &mut [f32],
    o2: &mut [f32],
    o3: &mut [f32],
    a: &[[f32; 4]; 4],
    b0: &[f32],
    b1: &[f32],
    b2: &[f32],
    b3: &[f32],
) {
    let n = o0.len();
    let (b0, b1, b2, b3) = (&b0[..n], &b1[..n], &b2[..n], &b3[..n]);
    let (o1, o2, o3) = (&mut o1[..n], &mut o2[..n], &mut o3[..n]);
    for j in 0..n {
        let (x0, x1, x2, x3) = (b0[j], b1[j], b2[j], b3[j]);
        o0[j] = (((o0[j] + a[0][0] * x0) + a[0][1] * x1) + a[0][2] * x2) + a[0][3] * x3;
        o1[j] = (((o1[j] + a[1][0] * x0) + a[1][1] * x1) + a[1][2] * x2) + a[1][3] * x3;
        o2[j] = (((o2[j] + a[2][0] * x0) + a[2][1] * x1) + a[2][2] * x2) + a[2][3] * x3;
        o3[j] = (((o3[j] + a[3][0] * x0) + a[3][1] * x1) + a[3][2] * x2) + a[3][3] * x3;
    }
}

/// `out[row0..row0+rows] += a[row0..] @ b` with `a: [m, k]`, `b: [k, n]`.
/// `out_rows` is the chunk's slice, `rows * n` long. `a_at(i, kk)` abstracts
/// the `a` element layout so the plain and transposed-`a` kernels share one
/// register-blocked body. Codegens twice (baseline + AVX2); call through
/// [`kernel_rows_with`].
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn kernel_rows_with_body<F: Fn(usize, usize) -> f32>(
    a_at: F,
    bv: &[f32],
    out_rows: &mut [f32],
    row0: usize,
    rows: usize,
    k: usize,
    n: usize,
) {
    for kb in (0..k).step_by(KB) {
        let kend = (kb + KB).min(k);
        let mut i = 0;
        // 8-row blocks: two 4-row tiles share each streamed b panel pass.
        while i + 8 <= rows {
            let (top, bottom) = out_rows[i * n..].split_at_mut(4 * n);
            let (r0, rest) = top.split_at_mut(n);
            let (r1, rest) = rest.split_at_mut(n);
            let (r2, r3) = rest.split_at_mut(n);
            let (r4, rest) = bottom.split_at_mut(n);
            let (r5, rest) = rest.split_at_mut(n);
            let (r6, rest) = rest.split_at_mut(n);
            let r7 = &mut rest[..n];
            let mut kk = kb;
            while kk + 4 <= kend {
                let mut a_hi = [[0.0f32; 4]; 4];
                let mut a_lo = [[0.0f32; 4]; 4];
                for r in 0..4 {
                    for u in 0..4 {
                        a_hi[r][u] = a_at(row0 + i + r, kk + u);
                        a_lo[r][u] = a_at(row0 + i + 4 + r, kk + u);
                    }
                }
                let b0 = &bv[kk * n..(kk + 1) * n];
                let b1 = &bv[(kk + 1) * n..(kk + 2) * n];
                let b2 = &bv[(kk + 2) * n..(kk + 3) * n];
                let b3 = &bv[(kk + 3) * n..(kk + 4) * n];
                axpy4x4(r0, r1, r2, r3, &a_hi, b0, b1, b2, b3);
                axpy4x4(r4, r5, r6, r7, &a_lo, b0, b1, b2, b3);
                kk += 4;
            }
            while kk < kend {
                let b_row = &bv[kk * n..(kk + 1) * n];
                axpy1(r0, a_at(row0 + i, kk), b_row);
                axpy1(r1, a_at(row0 + i + 1, kk), b_row);
                axpy1(r2, a_at(row0 + i + 2, kk), b_row);
                axpy1(r3, a_at(row0 + i + 3, kk), b_row);
                axpy1(r4, a_at(row0 + i + 4, kk), b_row);
                axpy1(r5, a_at(row0 + i + 5, kk), b_row);
                axpy1(r6, a_at(row0 + i + 6, kk), b_row);
                axpy1(r7, a_at(row0 + i + 7, kk), b_row);
                kk += 1;
            }
            i += 8;
        }
        // 4-row blocks: split the chunk into four disjoint row slices.
        while i + 4 <= rows {
            let (r0, rest) = out_rows[i * n..].split_at_mut(n);
            let (r1, rest) = rest.split_at_mut(n);
            let (r2, rest) = rest.split_at_mut(n);
            let r3 = &mut rest[..n];
            let mut kk = kb;
            while kk + 4 <= kend {
                let mut a = [[0.0f32; 4]; 4];
                for (r, a_row) in a.iter_mut().enumerate() {
                    for (u, a_val) in a_row.iter_mut().enumerate() {
                        *a_val = a_at(row0 + i + r, kk + u);
                    }
                }
                axpy4x4(
                    r0,
                    r1,
                    r2,
                    r3,
                    &a,
                    &bv[kk * n..(kk + 1) * n],
                    &bv[(kk + 1) * n..(kk + 2) * n],
                    &bv[(kk + 2) * n..(kk + 3) * n],
                    &bv[(kk + 3) * n..(kk + 4) * n],
                );
                kk += 4;
            }
            while kk < kend {
                let b_row = &bv[kk * n..(kk + 1) * n];
                axpy1(r0, a_at(row0 + i, kk), b_row);
                axpy1(r1, a_at(row0 + i + 1, kk), b_row);
                axpy1(r2, a_at(row0 + i + 2, kk), b_row);
                axpy1(r3, a_at(row0 + i + 3, kk), b_row);
                kk += 1;
            }
            i += 4;
        }
        // Remainder rows: 4-way k unroll, one row at a time.
        while i < rows {
            let o_row = &mut out_rows[i * n..(i + 1) * n];
            let mut kk = kb;
            while kk + 4 <= kend {
                axpy4(
                    o_row,
                    [
                        a_at(row0 + i, kk),
                        a_at(row0 + i, kk + 1),
                        a_at(row0 + i, kk + 2),
                        a_at(row0 + i, kk + 3),
                    ],
                    &bv[kk * n..(kk + 1) * n],
                    &bv[(kk + 1) * n..(kk + 2) * n],
                    &bv[(kk + 2) * n..(kk + 3) * n],
                    &bv[(kk + 3) * n..(kk + 4) * n],
                );
                kk += 4;
            }
            while kk < kend {
                axpy1(o_row, a_at(row0 + i, kk), &bv[kk * n..(kk + 1) * n]);
                kk += 1;
            }
            i += 1;
        }
    }
}

simd_dispatch!(fn kernel_rows_with / kernel_rows_with_avx2 / kernel_rows_with_body
<F: Fn(usize, usize) -> f32>(
    a_at: F,
    bv: &[f32],
    out_rows: &mut [f32],
    row0: usize,
    rows: usize,
    k: usize,
    n: usize,
));

fn kernel_rows(
    av: &[f32],
    bv: &[f32],
    out_rows: &mut [f32],
    row0: usize,
    rows: usize,
    k: usize,
    n: usize,
) {
    kernel_rows_with(|i, kk| av[i * k + kk], bv, out_rows, row0, rows, k, n);
}

/// `out[row0..row0+rows] += a^T[row0..] @ b` with `a: [k, m]`, `b: [k, n]`.
#[allow(clippy::too_many_arguments)]
fn kernel_rows_ta(
    av: &[f32],
    bv: &[f32],
    out_rows: &mut [f32],
    row0: usize,
    rows: usize,
    k: usize,
    m: usize,
    n: usize,
) {
    kernel_rows_with(|i, kk| av[kk * m + i], bv, out_rows, row0, rows, k, n);
}

/// Packs `a^T` (`[k, m]` -> `[m, k]`) into a caller-provided scratch slice
/// so transposed products can run the contiguous-row kernel instead of
/// taking a strided load per `k` step. The walk is tiled 32×32 so both the
/// source reads and the destination writes stay within a cache line's reach
/// regardless of which operand is the strided one. Worth it whenever the
/// `O(k*m)` copy is small next to the `O(m*k*n)` product — callers gate on
/// that, and draw `dst` from the thread-local arena so the pack allocates
/// nothing in steady state.
fn transpose_pack_into(av: &[f32], k: usize, m: usize, dst: &mut [f32]) {
    debug_assert_eq!(dst.len(), k * m);
    const TB: usize = 32;
    for kb in (0..k).step_by(TB) {
        let kend = (kb + TB).min(k);
        for mb in (0..m).step_by(TB) {
            let mend = (mb + TB).min(m);
            for kk in kb..kend {
                let row = &av[kk * m..(kk + 1) * m];
                for i in mb..mend {
                    dst[i * k + kk] = row[i];
                }
            }
        }
    }
}

/// `out[row0..row0+rows] += a[row0..] @ b^T` with `a: [m, k]`, `b: [n, k]`.
///
/// Each output row is one linear stream over `b` (hardware-prefetch
/// friendly). Dot products use four independent accumulator lanes (folded
/// `(l0+l1)+(l2+l3)` at the end), which reorders the floating-point sum
/// relative to the naive kernel -- agreement is to rounding, not bits.
#[inline(always)]
fn kernel_rows_tb_body(
    av: &[f32],
    bv: &[f32],
    out_rows: &mut [f32],
    row0: usize,
    rows: usize,
    k: usize,
    n: usize,
) {
    let chunks = k / 4 * 4;
    for i in 0..rows {
        let a_row = &av[(row0 + i) * k..(row0 + i + 1) * k];
        let o_row = &mut out_rows[i * n..(i + 1) * n];
        for (j, o) in o_row.iter_mut().enumerate() {
            let b_row = &bv[j * k..(j + 1) * k];
            let mut lanes = [0.0f32; 4];
            let mut kk = 0;
            while kk < chunks {
                lanes[0] += a_row[kk] * b_row[kk];
                lanes[1] += a_row[kk + 1] * b_row[kk + 1];
                lanes[2] += a_row[kk + 2] * b_row[kk + 2];
                lanes[3] += a_row[kk + 3] * b_row[kk + 3];
                kk += 4;
            }
            let mut acc = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
            while kk < k {
                acc += a_row[kk] * b_row[kk];
                kk += 1;
            }
            *o += acc;
        }
    }
}

simd_dispatch!(fn kernel_rows_tb / kernel_rows_tb_avx2 / kernel_rows_tb_body
<>(
    av: &[f32],
    bv: &[f32],
    out_rows: &mut [f32],
    row0: usize,
    rows: usize,
    k: usize,
    n: usize,
));

// ---------------------------------------------------------------------------
// Matmul
// ---------------------------------------------------------------------------

pub(crate) fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = check_rank2(a, "matmul")?;
    let (k2, n) = check_rank2(b, "matmul")?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            lhs_cols: k,
            rhs_rows: k2,
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    let (av, bv) = (a.as_slice(), b.as_slice());
    let rows_per = row_chunk(m, 2 * k * n);
    par::for_each_chunk_mut(out.as_mut_slice(), rows_per * n.max(1), |ci, chunk| {
        let row0 = ci * rows_per;
        kernel_rows(av, bv, chunk, row0, chunk.len() / n.max(1), k, n);
    });
    Ok(out)
}

pub(crate) fn matmul_transpose_a(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (k, m) = check_rank2(a, "matmul_transpose_a")?;
    let (k2, n) = check_rank2(b, "matmul_transpose_a")?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            lhs_cols: k,
            rhs_rows: k2,
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    let (av, bv) = (a.as_slice(), b.as_slice());
    let rows_per = row_chunk(m, 2 * k * n);
    // With a sizable product, pay O(k*m) once to pack the A-panels into the
    // arena and turn every a-load contiguous; tiny products keep the
    // strided kernel.
    if 2 * m * n * k >= MIN_PAR_FLOPS {
        let mut at = arena::take(k * m);
        transpose_pack_into(av, k, m, &mut at);
        let atv: &[f32] = &at;
        par::for_each_chunk_mut(out.as_mut_slice(), rows_per * n.max(1), |ci, chunk| {
            let row0 = ci * rows_per;
            kernel_rows(atv, bv, chunk, row0, chunk.len() / n.max(1), k, n);
        });
    } else {
        par::for_each_chunk_mut(out.as_mut_slice(), rows_per * n.max(1), |ci, chunk| {
            let row0 = ci * rows_per;
            kernel_rows_ta(av, bv, chunk, row0, chunk.len() / n.max(1), k, m, n);
        });
    }
    Ok(out)
}

pub(crate) fn matmul_transpose_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = check_rank2(a, "matmul_transpose_b")?;
    let (n, k2) = check_rank2(b, "matmul_transpose_b")?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            lhs_cols: k,
            rhs_rows: k2,
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    let (av, bv) = (a.as_slice(), b.as_slice());
    let rows_per = row_chunk(m, 2 * k * n);
    // The dot-product kernel cannot vectorize its float reduction, so with a
    // sizable product it pays to pack b^T once (into the arena) and run the
    // fast streaming kernel instead.
    if 2 * m * n * k >= MIN_PAR_FLOPS {
        let mut bt = arena::take(n * k);
        transpose_pack_into(bv, n, k, &mut bt);
        let btv: &[f32] = &bt;
        par::for_each_chunk_mut(out.as_mut_slice(), rows_per * n.max(1), |ci, chunk| {
            let row0 = ci * rows_per;
            kernel_rows(av, btv, chunk, row0, chunk.len() / n.max(1), k, n);
        });
    } else {
        par::for_each_chunk_mut(out.as_mut_slice(), rows_per * n.max(1), |ci, chunk| {
            let row0 = ci * rows_per;
            kernel_rows_tb(av, bv, chunk, row0, chunk.len() / n.max(1), k, n);
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Convolution: the fused engine.
//
// Three shape-dispatched paths (see `ops::conv` module docs), all drawing
// scratch from the thread-local arena so the steady-state hot path never
// touches the heap, all pool-chunked over output tiles (contiguous spans of
// `[N*O, OH*OW]` output rows) so single-sample inference still parallelizes.
// ---------------------------------------------------------------------------

/// Target panel width (output columns) for the panel-wise im2col fallback:
/// a `[C*KH*KW, PANEL_COLS]` patch panel stays L2-resident while the GEMM
/// sweeps its row blocks over it.
const PANEL_COLS: usize = 128;

/// The kernel a given convolution geometry dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ConvPath {
    /// 1×1 kernels: a pure (strided) matmul, no unfold at all.
    MatmulOneByOne,
    /// 3×3 / stride 1 / pad 1: blocked direct kernel (shifted row-axpy
    /// stencil), no patch matrix.
    Direct3x3,
    /// 3×3 / stride ≥ 2 / pad 1 (the ResNet stage-entry shape): direct
    /// stencil over strided column taps — the im2col panel for this shape
    /// is 9× the output it produces, so skipping the unfold wins harder
    /// than in the stride-1 case.
    Direct3x3Strided,
    /// 5×5 / stride 1 / pad 2: direct shifted row-axpy over five-tap rows.
    /// The wider window raises the arithmetic intensity per loaded input
    /// row, so the direct crossover sits above the 3×3 one.
    Direct5x5,
    /// Everything else: panel-wise im2col into the arena.
    Im2colPanels,
}

/// Per-sample flop ceiling below which the direct 3×3 stencil beats the
/// panel GEMM (measured on the bench shapes: the stencil's lighter setup
/// and zero unfold win while the working set is cache-tight; at larger
/// geometry the packed GEMM's register blocking takes over).
const DIRECT3X3_MAX_SAMPLE_FLOPS: usize = 1 << 21;

/// Widened crossover for the direct 5×5 stencil: 25 taps per output element
/// amortize each loaded input row over more arithmetic than 9 taps do, so
/// the direct path stays ahead of the panel GEMM to twice the flop count.
const DIRECT5X5_MAX_SAMPLE_FLOPS: usize = 1 << 22;

/// Chooses the kernel for a convolution geometry. `sample_flops` is the
/// per-sample multiply-add count (`2 · O · OH·OW · C·KH·KW`).
pub(crate) fn conv_path(
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    sample_flops: usize,
) -> ConvPath {
    if kh == 1 && kw == 1 && pad == 0 {
        ConvPath::MatmulOneByOne
    } else if kh == 3 && kw == 3 && pad == 1 && sample_flops <= DIRECT3X3_MAX_SAMPLE_FLOPS {
        if stride == 1 {
            ConvPath::Direct3x3
        } else {
            ConvPath::Direct3x3Strided
        }
    } else if kh == 5
        && kw == 5
        && stride == 1
        && pad == 2
        && sample_flops <= DIRECT5X5_MAX_SAMPLE_FLOPS
    {
        ConvPath::Direct5x5
    } else {
        ConvPath::Im2colPanels
    }
}

/// Validated geometry of one conv2d call, shared by forward and backward.
#[derive(Debug, Clone, Copy)]
struct ConvGeom {
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    o: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    oh: usize,
    ow: usize,
}

impl ConvGeom {
    fn validate(input: &Tensor, pv: &PackView<'_>, stride: usize, pad: usize) -> Result<Self> {
        if input.rank() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                got: input.rank(),
                op: "conv2d",
            });
        }
        let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
        if c != pv.c {
            return Err(TensorError::ShapeMismatch {
                expected: vec![pv.o, c, pv.kh, pv.kw],
                got: vec![pv.o, pv.c, pv.kh, pv.kw],
                op: "conv2d (input channels)",
            });
        }
        let oh = conv_output_size(h, pv.kh, stride, pad)?;
        let ow = conv_output_size(w, pv.kw, stride, pad)?;
        Ok(ConvGeom {
            n,
            c,
            h,
            w,
            o: pv.o,
            kh: pv.kh,
            kw: pv.kw,
            stride,
            pad,
            oh,
            ow,
        })
    }

    #[inline]
    fn spatial(&self) -> usize {
        self.oh * self.ow
    }

    #[inline]
    fn ckk(&self) -> usize {
        self.c * self.kh * self.kw
    }

    #[inline]
    fn in_sample(&self) -> usize {
        self.c * self.h * self.w
    }

    #[inline]
    fn out_sample(&self) -> usize {
        self.o * self.spatial()
    }

    /// Output rows per im2col panel (`tile_rows * ow ≈ PANEL_COLS` output
    /// columns per panel).
    #[inline]
    fn tile_rows(&self) -> usize {
        (PANEL_COLS / self.ow.max(1)).clamp(1, self.oh.max(1))
    }

    #[inline]
    fn path(&self) -> ConvPath {
        let sample_flops = 2 * self.o * self.spatial() * self.ckk();
        conv_path(self.kh, self.kw, self.stride, self.pad, sample_flops)
    }
}

fn check_conv_bias(bias: Option<&Tensor>, o: usize) -> Result<()> {
    if let Some(b) = bias {
        if b.dims() != [o] {
            return Err(TensorError::ShapeMismatch {
                expected: vec![o],
                got: b.dims().to_vec(),
                op: "conv2d (bias)",
            });
        }
    }
    Ok(())
}

/// The shifted row-axpy stencil at the heart of the direct 3×3 kernel:
/// `dst[j] += w0*src[j-1] + w1*src[j] + w2*src[j+1]` with zero-padding at
/// the row borders, each element's adds in `kj` order (matching the naive
/// oracle's accumulation order bit for bit).
#[inline(always)]
fn axpy_shift3(dst: &mut [f32], src: &[f32], w0: f32, w1: f32, w2: f32) {
    let n = dst.len();
    let src = &src[..n];
    if n == 0 {
        return;
    }
    if n == 1 {
        dst[0] += w1 * src[0];
        return;
    }
    dst[0] = (dst[0] + w1 * src[0]) + w2 * src[1];
    for j in 1..n - 1 {
        dst[j] = ((dst[j] + w0 * src[j - 1]) + w1 * src[j]) + w2 * src[j + 1];
    }
    dst[n - 1] = (dst[n - 1] + w0 * src[n - 2]) + w1 * src[n - 1];
}

/// Strided variant of [`axpy_shift3`]: output column `owi` reads input
/// columns `owi*stride + kj - 1`, dropping taps that fall in the horizontal
/// padding. `src` is the full input row (`W` wide); each element's adds stay
/// in `kj` order.
#[inline(always)]
fn axpy_shift3_strided(dst: &mut [f32], src: &[f32], w0: f32, w1: f32, w2: f32, stride: usize) {
    let w = src.len();
    for (owi, d) in dst.iter_mut().enumerate() {
        let base = owi * stride;
        let mut acc = *d;
        if base >= 1 {
            acc += w0 * src[base - 1];
        }
        acc += w1 * src[base];
        if base + 1 < w {
            acc += w2 * src[base + 1];
        }
        *d = acc;
    }
}

/// Five-tap shifted row-axpy for the direct 5×5 / stride 1 / pad 2 kernel:
/// `dst[j] += Σ_kj t[kj] * src[j + kj - 2]`, dropping taps that fall in the
/// horizontal padding. The two border columns on each side take the checked
/// path; the interior runs branch-free with all five taps in `kj` order.
#[inline(always)]
fn axpy_shift5(dst: &mut [f32], src: &[f32], t: &[f32; 5]) {
    let n = dst.len();
    let src = &src[..n];
    if n == 0 {
        return;
    }
    let lo = 2.min(n);
    let hi = n.saturating_sub(2).max(lo);
    for j in (0..lo).chain(hi..n) {
        let mut acc = dst[j];
        for (kj, &tv) in t.iter().enumerate() {
            let iw = (j + kj) as isize - 2;
            if iw >= 0 && (iw as usize) < n {
                acc += tv * src[iw as usize];
            }
        }
        dst[j] = acc;
    }
    for j in lo..hi {
        dst[j] = ((((dst[j] + t[0] * src[j - 2]) + t[1] * src[j - 1]) + t[2] * src[j])
            + t[3] * src[j + 1])
            + t[4] * src[j + 2];
    }
}

/// Fully fused 3×3 stencil: one pass over an output row applies all nine
/// taps of one input channel to four output-channel rows. `rm1`/`r0`/`rp1`
/// are the three input rows feeding this output row (callers substitute a
/// zero row at the vertical borders, which reproduces the naive oracle's
/// explicit `+w·0.0` padding terms). Each output element accumulates its
/// nine taps in `ki → kj` order — the oracle's order. Lengths are pinned up
/// front so the interior loop is bounds-check-free and vectorizes.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn stencil9_x4(
    d0: &mut [f32],
    d1: &mut [f32],
    d2: &mut [f32],
    d3: &mut [f32],
    rm1: &[f32],
    r0: &[f32],
    rp1: &[f32],
    wq: &[[[f32; 3]; 3]; 4],
) {
    let n = d0.len();
    let (d1, d2, d3) = (&mut d1[..n], &mut d2[..n], &mut d3[..n]);
    let (rm1, r0, rp1) = (&rm1[..n], &r0[..n], &rp1[..n]);
    if n == 0 {
        return;
    }
    // Column borders: the kj = 0 (left) / kj = 2 (right) taps fall on
    // horizontal padding and are dropped (they contribute exact zeros).
    macro_rules! edge {
        // Applies the two in-bounds column taps `kj0 < kj1` at column `j`
        // (tap `kj` reads `src[j + kj - 1]`; the caller guarantees both
        // indices are in range).
        ($d:ident, $w:expr, $j:expr, $kj0:expr, $kj1:expr) => {
            $d[$j] = (((((($d[$j] + $w[0][$kj0] * rm1[$j + $kj0 - 1])
                + $w[0][$kj1] * rm1[$j + $kj1 - 1])
                + $w[1][$kj0] * r0[$j + $kj0 - 1])
                + $w[1][$kj1] * r0[$j + $kj1 - 1])
                + $w[2][$kj0] * rp1[$j + $kj0 - 1])
                + $w[2][$kj1] * rp1[$j + $kj1 - 1]);
        };
    }
    if n == 1 {
        for (d, w) in [(&mut *d0, &wq[0]), (d1, &wq[1]), (d2, &wq[2]), (d3, &wq[3])] {
            d[0] = ((d[0] + w[0][1] * rm1[0]) + w[1][1] * r0[0]) + w[2][1] * rp1[0];
        }
        return;
    }
    edge!(d0, wq[0], 0, 1, 2);
    edge!(d1, wq[1], 0, 1, 2);
    edge!(d2, wq[2], 0, 1, 2);
    edge!(d3, wq[3], 0, 1, 2);
    let last = n - 1;
    for j in 1..last {
        let (am, bm, cm) = (rm1[j - 1], rm1[j], rm1[j + 1]);
        let (a0, b0, c0) = (r0[j - 1], r0[j], r0[j + 1]);
        let (ap, bp, cp) = (rp1[j - 1], rp1[j], rp1[j + 1]);
        macro_rules! tap {
            ($d:ident, $w:expr) => {
                $d[j] = (((((((($d[j] + $w[0][0] * am) + $w[0][1] * bm) + $w[0][2] * cm)
                    + $w[1][0] * a0)
                    + $w[1][1] * b0)
                    + $w[1][2] * c0)
                    + $w[2][0] * ap)
                    + $w[2][1] * bp)
                    + $w[2][2] * cp;
            };
        }
        tap!(d0, wq[0]);
        tap!(d1, wq[1]);
        tap!(d2, wq[2]);
        tap!(d3, wq[3]);
    }
    edge!(d0, wq[0], last, 0, 1);
    edge!(d1, wq[1], last, 0, 1);
    edge!(d2, wq[2], last, 0, 1);
    edge!(d3, wq[3], last, 0, 1);
}

/// Direct 3×3 / stride 1 / pad 1 forward for output channels
/// `ch0..ch0+rows` of one sample: `dst` is the `[rows, H*W]` output span
/// (zero-initialized). Output channels are walked in blocks of four so each
/// loaded input row feeds four accumulator planes; per output element the
/// adds land in `ci → ki → kj` order, matching the naive im2col oracle.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn direct3x3_rows_body(
    sample: &[f32],
    wv: &[f32],
    dst: &mut [f32],
    ch0: usize,
    rows: usize,
    c: usize,
    h: usize,
    w: usize,
) {
    let spatial = h * w;
    // Stand-in for the vertically-padded rows above/below the image.
    let zrow = arena::take_zeroed(w);
    let mut r = 0;
    while r + 4 <= rows {
        let (p0, rest) = dst[r * spatial..(r + 4) * spatial].split_at_mut(spatial);
        let (p1, rest) = rest.split_at_mut(spatial);
        let (p2, p3) = rest.split_at_mut(spatial);
        for ci in 0..c {
            let plane = &sample[ci * spatial..(ci + 1) * spatial];
            // This ci's 3×3 taps for the four channels of the block.
            let mut wq = [[[0.0f32; 3]; 3]; 4];
            for (q, taps) in wq.iter_mut().enumerate() {
                let base = (((ch0 + r + q) * c + ci) * 3) * 3;
                for (ki, row) in taps.iter_mut().enumerate() {
                    row.copy_from_slice(&wv[base + 3 * ki..base + 3 * ki + 3]);
                }
            }
            for ohi in 0..h {
                let rm1 = if ohi > 0 {
                    &plane[(ohi - 1) * w..ohi * w]
                } else {
                    &zrow[..]
                };
                let r0 = &plane[ohi * w..(ohi + 1) * w];
                let rp1 = if ohi + 1 < h {
                    &plane[(ohi + 1) * w..(ohi + 2) * w]
                } else {
                    &zrow[..]
                };
                let span = ohi * w..(ohi + 1) * w;
                stencil9_x4(
                    &mut p0[span.clone()],
                    &mut p1[span.clone()],
                    &mut p2[span.clone()],
                    &mut p3[span],
                    rm1,
                    r0,
                    rp1,
                    &wq,
                );
            }
        }
        r += 4;
    }
    // Remainder channels (rows not a multiple of four): one row at a time,
    // per-ki passes.
    while r < rows {
        let block = &mut dst[r * spatial..(r + 1) * spatial];
        for ci in 0..c {
            let plane = &sample[ci * spatial..(ci + 1) * spatial];
            for ki in 0..3usize {
                let wbase = (((ch0 + r) * c + ci) * 3 + ki) * 3;
                let lo = 1usize.saturating_sub(ki);
                let hi = (h + 1 - ki).min(h);
                for ohi in lo..hi {
                    let in_row = &plane[(ohi + ki - 1) * w..(ohi + ki) * w];
                    let dst_row = &mut block[ohi * w..(ohi + 1) * w];
                    axpy_shift3(dst_row, in_row, wv[wbase], wv[wbase + 1], wv[wbase + 2]);
                }
            }
        }
        r += 1;
    }
}

/// AVX2+FMA implementation of the direct 3×3 stencil. Rust never contracts
/// `a*b + c` on its own (`ffp-contract=off`), so the portable kernel pays
/// separate multiply and add issue slots *and* 36 live broadcast weights —
/// more than the 16 vector registers x86 offers. Explicit `vfmaddps`
/// halves the arithmetic ops and lets the weight broadcasts ride as memory
/// operands, which is what makes the direct path beat im2col GEMM on this
/// geometry (the same trick production conv JITs use). Accumulation stays
/// in the oracle's `ci → ki → kj` order; only FMA's fused rounding differs,
/// well inside the 1e-5 parity budget.
#[cfg(target_arch = "x86_64")]
mod direct3x3_fma {
    #![allow(unsafe_code)]

    use std::arch::x86_64::{
        __m256, __m256i, _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_loadu_si256, _mm256_maskload_ps,
        _mm256_maskstore_ps, _mm256_set1_ps, _mm256_storeu_ps,
    };

    /// Sliding-window mask table: `MASKS[8 - rem ..]` yields a lane mask
    /// with the first `rem` lanes active.
    const MASKS: [i32; 16] = [-1, -1, -1, -1, -1, -1, -1, -1, 0, 0, 0, 0, 0, 0, 0, 0];

    /// One input channel's contribution to four output-channel planes,
    /// all rows, all nine taps. Taking the whole plane in one call lets the
    /// 36 broadcast weights be materialized once instead of once per row.
    ///
    /// `d` points at the four channels' output planes (each `h*w` long,
    /// disjoint), `plane` at the input channel, `zrow` at `w` zeros (the
    /// stand-in for vertically-padded rows).
    ///
    /// # Safety
    ///
    /// Caller must have verified `avx2` and `fma` CPU support and that the
    /// pointers address the stated extents (`h*w` f32s for `d`/`plane`,
    /// `w` for `zrow`), with the `d` planes mutually disjoint.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn stencil_plane_x4(
        d: [*mut f32; 4],
        plane: *const f32,
        zrow: *const f32,
        wq: &[[[f32; 3]; 3]; 4],
        h: usize,
        w: usize,
    ) {
        unsafe {
            // Broadcast the 36 taps once per (channel, block); LLVM spills
            // what does not fit and re-feeds the FMAs from the stack as
            // memory operands.
            let mut wv: [[__m256; 9]; 4] = [[_mm256_set1_ps(0.0); 9]; 4];
            for q in 0..4 {
                for ki in 0..3 {
                    for kj in 0..3 {
                        wv[q][3 * ki + kj] = _mm256_set1_ps(wq[q][ki][kj]);
                    }
                }
            }
            for ohi in 0..h {
                let rm1 = if ohi > 0 {
                    plane.add((ohi - 1) * w)
                } else {
                    zrow
                };
                let r0 = plane.add(ohi * w);
                let rp1 = if ohi + 1 < h {
                    plane.add((ohi + 1) * w)
                } else {
                    zrow
                };
                let row = ohi * w;
                if w == 1 {
                    for q in 0..4 {
                        let dq = d[q].add(row);
                        *dq = ((*dq + wq[q][0][1] * *rm1) + wq[q][1][1] * *r0) + wq[q][2][1] * *rp1;
                    }
                    continue;
                }
                // Interior columns in 8-lane groups.
                let mut j = 1usize;
                while j + 8 < w {
                    let am = _mm256_loadu_ps(rm1.add(j - 1));
                    let bm = _mm256_loadu_ps(rm1.add(j));
                    let cm = _mm256_loadu_ps(rm1.add(j + 1));
                    let a0 = _mm256_loadu_ps(r0.add(j - 1));
                    let b0 = _mm256_loadu_ps(r0.add(j));
                    let c0 = _mm256_loadu_ps(r0.add(j + 1));
                    let ap = _mm256_loadu_ps(rp1.add(j - 1));
                    let bp = _mm256_loadu_ps(rp1.add(j));
                    let cp = _mm256_loadu_ps(rp1.add(j + 1));
                    for q in 0..4 {
                        let dq = d[q].add(row + j);
                        let mut acc = _mm256_loadu_ps(dq);
                        acc = _mm256_fmadd_ps(wv[q][0], am, acc);
                        acc = _mm256_fmadd_ps(wv[q][1], bm, acc);
                        acc = _mm256_fmadd_ps(wv[q][2], cm, acc);
                        acc = _mm256_fmadd_ps(wv[q][3], a0, acc);
                        acc = _mm256_fmadd_ps(wv[q][4], b0, acc);
                        acc = _mm256_fmadd_ps(wv[q][5], c0, acc);
                        acc = _mm256_fmadd_ps(wv[q][6], ap, acc);
                        acc = _mm256_fmadd_ps(wv[q][7], bp, acc);
                        acc = _mm256_fmadd_ps(wv[q][8], cp, acc);
                        _mm256_storeu_ps(dq, acc);
                    }
                    j += 8;
                }
                // Masked tail group: the last `rem < 8` interior columns
                // run as one predicated vector group instead of scalars.
                let rem = (w - 1).saturating_sub(j);
                if rem > 0 {
                    let mask: __m256i =
                        _mm256_loadu_si256(MASKS[8 - rem..].as_ptr().cast::<__m256i>());
                    let am = _mm256_maskload_ps(rm1.add(j - 1), mask);
                    let bm = _mm256_maskload_ps(rm1.add(j), mask);
                    let cm = _mm256_maskload_ps(rm1.add(j + 1), mask);
                    let a0 = _mm256_maskload_ps(r0.add(j - 1), mask);
                    let b0 = _mm256_maskload_ps(r0.add(j), mask);
                    let c0 = _mm256_maskload_ps(r0.add(j + 1), mask);
                    let ap = _mm256_maskload_ps(rp1.add(j - 1), mask);
                    let bp = _mm256_maskload_ps(rp1.add(j), mask);
                    let cp = _mm256_maskload_ps(rp1.add(j + 1), mask);
                    for q in 0..4 {
                        let dq = d[q].add(row + j);
                        let mut acc = _mm256_maskload_ps(dq, mask);
                        acc = _mm256_fmadd_ps(wv[q][0], am, acc);
                        acc = _mm256_fmadd_ps(wv[q][1], bm, acc);
                        acc = _mm256_fmadd_ps(wv[q][2], cm, acc);
                        acc = _mm256_fmadd_ps(wv[q][3], a0, acc);
                        acc = _mm256_fmadd_ps(wv[q][4], b0, acc);
                        acc = _mm256_fmadd_ps(wv[q][5], c0, acc);
                        acc = _mm256_fmadd_ps(wv[q][6], ap, acc);
                        acc = _mm256_fmadd_ps(wv[q][7], bp, acc);
                        acc = _mm256_fmadd_ps(wv[q][8], cp, acc);
                        _mm256_maskstore_ps(dq, mask, acc);
                    }
                }
                // Column borders: the out-of-image tap is horizontal padding.
                for q in 0..4 {
                    let t = wq[q];
                    let dq = d[q].add(row);
                    let mut acc = *dq;
                    acc = t[0][1].mul_add(*rm1, acc);
                    acc = t[0][2].mul_add(*rm1.add(1), acc);
                    acc = t[1][1].mul_add(*r0, acc);
                    acc = t[1][2].mul_add(*r0.add(1), acc);
                    acc = t[2][1].mul_add(*rp1, acc);
                    acc = t[2][2].mul_add(*rp1.add(1), acc);
                    *dq = acc;
                    let last = w - 1;
                    let dq = d[q].add(row + last);
                    let mut acc = *dq;
                    acc = t[0][0].mul_add(*rm1.add(last - 1), acc);
                    acc = t[0][1].mul_add(*rm1.add(last), acc);
                    acc = t[1][0].mul_add(*r0.add(last - 1), acc);
                    acc = t[1][1].mul_add(*r0.add(last), acc);
                    acc = t[2][0].mul_add(*rp1.add(last - 1), acc);
                    acc = t[2][1].mul_add(*rp1.add(last), acc);
                    *dq = acc;
                }
            }
        }
    }
}

/// True when the CPU can run the FMA stencil.
#[inline]
fn have_avx2_fma() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// FMA-accelerated variant of [`direct3x3_rows_body`]: same loop structure,
/// intrinsic row stencil.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
fn direct3x3_rows_fma(
    sample: &[f32],
    wv: &[f32],
    dst: &mut [f32],
    ch0: usize,
    rows: usize,
    c: usize,
    h: usize,
    w: usize,
) {
    let spatial = h * w;
    let zrow = arena::take_zeroed(w);
    let mut r = 0;
    while r + 4 <= rows {
        let (p0, rest) = dst[r * spatial..(r + 4) * spatial].split_at_mut(spatial);
        let (p1, rest) = rest.split_at_mut(spatial);
        let (p2, p3) = rest.split_at_mut(spatial);
        for ci in 0..c {
            let plane = &sample[ci * spatial..(ci + 1) * spatial];
            let mut wq = [[[0.0f32; 3]; 3]; 4];
            for (q, taps) in wq.iter_mut().enumerate() {
                let base = (((ch0 + r + q) * c + ci) * 3) * 3;
                for (ki, row) in taps.iter_mut().enumerate() {
                    row.copy_from_slice(&wv[base + 3 * ki..base + 3 * ki + 3]);
                }
            }
            let d = [
                p0.as_mut_ptr(),
                p1.as_mut_ptr(),
                p2.as_mut_ptr(),
                p3.as_mut_ptr(),
            ];
            // SAFETY: avx2+fma verified by the dispatcher below; the four
            // output planes come from disjoint `split_at_mut` regions and
            // `plane`/`zrow` span `h*w` / `w` in-bounds f32s.
            #[allow(unsafe_code)]
            unsafe {
                direct3x3_fma::stencil_plane_x4(d, plane.as_ptr(), zrow.as_ptr(), &wq, h, w);
            }
        }
        r += 4;
    }
    if r < rows {
        // Remainder channels reuse the portable path.
        direct3x3_rows_body(
            sample,
            wv,
            &mut dst[r * spatial..],
            ch0 + r,
            rows - r,
            c,
            h,
            w,
        );
    }
}

/// Direct 3×3 dispatcher: FMA stencil when the CPU has it, portable
/// stencil otherwise.
#[allow(clippy::too_many_arguments)]
fn direct3x3_rows(
    sample: &[f32],
    wv: &[f32],
    dst: &mut [f32],
    ch0: usize,
    rows: usize,
    c: usize,
    h: usize,
    w: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if have_avx2_fma() {
        return direct3x3_rows_fma(sample, wv, dst, ch0, rows, c, h, w);
    }
    direct3x3_rows_body(sample, wv, dst, ch0, rows, c, h, w)
}

/// Direct 3×3 / stride ≥ 2 / pad 1 forward for output channels
/// `ch0..ch0+rows` of one sample: per `ki` tap row, each valid output row
/// pulls its strided column taps straight from the input row — no patch
/// matrix, no gather. Per output element the adds land in `ci → ki → kj`
/// order, matching the naive im2col oracle.
#[allow(clippy::too_many_arguments)]
fn direct3x3_strided_rows(
    sample: &[f32],
    wv: &[f32],
    dst: &mut [f32],
    ch0: usize,
    rows: usize,
    g: &ConvGeom,
) {
    let (c, h, w, s) = (g.c, g.h, g.w, g.stride);
    let (oh, ow) = (g.oh, g.ow);
    let spatial = oh * ow;
    for r in 0..rows {
        let block = &mut dst[r * spatial..(r + 1) * spatial];
        for ci in 0..c {
            let plane = &sample[ci * h * w..(ci + 1) * h * w];
            for ki in 0..3usize {
                let wbase = (((ch0 + r) * c + ci) * 3 + ki) * 3;
                let (w0, w1, w2) = (wv[wbase], wv[wbase + 1], wv[wbase + 2]);
                for ohi in 0..oh {
                    let ih = (ohi * s + ki) as isize - 1;
                    if ih < 0 || ih >= h as isize {
                        continue;
                    }
                    let in_row = &plane[ih as usize * w..(ih as usize + 1) * w];
                    let dst_row = &mut block[ohi * ow..(ohi + 1) * ow];
                    axpy_shift3_strided(dst_row, in_row, w0, w1, w2, s);
                }
            }
        }
    }
}

/// Direct 5×5 / stride 1 / pad 2 forward for output channels
/// `ch0..ch0+rows` of one sample (`OH = H`, `OW = W`): per `ki` tap row the
/// valid output rows sweep [`axpy_shift5`] over the shifted input row. Per
/// output element the adds land in `ci → ki → kj` order, matching the naive
/// im2col oracle.
#[allow(clippy::too_many_arguments)]
fn direct5x5_rows(
    sample: &[f32],
    wv: &[f32],
    dst: &mut [f32],
    ch0: usize,
    rows: usize,
    c: usize,
    h: usize,
    w: usize,
) {
    let spatial = h * w;
    for r in 0..rows {
        let block = &mut dst[r * spatial..(r + 1) * spatial];
        for ci in 0..c {
            let plane = &sample[ci * spatial..(ci + 1) * spatial];
            for ki in 0..5usize {
                let wbase = (((ch0 + r) * c + ci) * 5 + ki) * 5;
                let mut taps = [0.0f32; 5];
                taps.copy_from_slice(&wv[wbase..wbase + 5]);
                // Input row `ohi + ki - 2`; rows falling in the vertical
                // padding contribute exact zeros and are skipped.
                let lo = 2usize.saturating_sub(ki);
                let hi = (h + 2).saturating_sub(ki).min(h);
                for ohi in lo..hi {
                    let ih = ohi + ki - 2;
                    axpy_shift5(
                        &mut block[ohi * w..(ohi + 1) * w],
                        &plane[ih * w..(ih + 1) * w],
                        &taps,
                    );
                }
            }
        }
    }
}

/// Per-segment epilogue operand: the same variants as
/// [`Epilogue`](crate::ops::conv::Epilogue), with the fused-add tensor
/// already narrowed to the slice aligned with the `[rows, OH*OW]` output
/// span being computed.
#[derive(Clone, Copy)]
enum RowEpilogue<'a> {
    None,
    Relu,
    AddRelu(&'a [f32]),
    ReluAdd(&'a [f32]),
}

/// Forward kernel for output channels `ch0..ch0+rows` of one sample.
/// `dst` is the `[rows, OH*OW]` output span, zero-initialized by the caller.
#[allow(clippy::too_many_arguments)] // internal kernel plumbing, not public API
fn forward_sample_rows(
    sample: &[f32],
    pv: &PackView<'_>,
    g: &ConvGeom,
    dst: &mut [f32],
    ch0: usize,
    rows: usize,
    bias: Option<&[f32]>,
    epilogue: RowEpilogue<'_>,
) {
    let spatial = g.spatial();
    match g.path() {
        ConvPath::MatmulOneByOne if g.stride == 1 => {
            // The sample *is* the `[C, H*W]` patch matrix.
            kernel_rows_with(|i, kk| pv.a_at(i, kk), sample, dst, ch0, rows, g.c, spatial);
        }
        ConvPath::MatmulOneByOne => {
            // Strided 1×1: gather the subsampled `[C, OH*OW]` operand, then
            // one matmul. Still no kh/kw unfold.
            let mut cols = arena::take(g.c * spatial);
            for ci in 0..g.c {
                let plane = &sample[ci * g.h * g.w..(ci + 1) * g.h * g.w];
                let dst_row = &mut cols[ci * spatial..(ci + 1) * spatial];
                let mut t = 0;
                for ohi in 0..g.oh {
                    let in_row = &plane[ohi * g.stride * g.w..];
                    for owi in 0..g.ow {
                        dst_row[t] = in_row[owi * g.stride];
                        t += 1;
                    }
                }
            }
            kernel_rows_with(|i, kk| pv.a_at(i, kk), &cols, dst, ch0, rows, g.c, spatial);
        }
        ConvPath::Direct3x3 => {
            direct3x3_rows(sample, pv.weight, dst, ch0, rows, g.c, g.h, g.w);
        }
        ConvPath::Direct3x3Strided => {
            direct3x3_strided_rows(sample, pv.weight, dst, ch0, rows, g);
        }
        ConvPath::Direct5x5 => {
            direct5x5_rows(sample, pv.weight, dst, ch0, rows, g.c, g.h, g.w);
        }
        ConvPath::Im2colPanels => {
            let ckk = g.ckk();
            let tile_rows = g.tile_rows();
            for oh0 in (0..g.oh).step_by(tile_rows.max(1)) {
                let oh1 = (oh0 + tile_rows).min(g.oh);
                let t = (oh1 - oh0) * g.ow;
                let mut panel = arena::take(ckk * t);
                im2col_panel(
                    sample, g.c, g.h, g.w, g.kh, g.kw, g.stride, g.pad, oh0, oh1, &mut panel,
                )
                .expect("conv geometry validated before dispatch");
                let mut prod = arena::take_zeroed(rows * t);
                kernel_rows_with(|i, kk| pv.a_at(i, kk), &panel, &mut prod, ch0, rows, ckk, t);
                let t0 = oh0 * g.ow;
                for r in 0..rows {
                    dst[r * spatial + t0..r * spatial + t0 + t]
                        .copy_from_slice(&prod[r * t..(r + 1) * t]);
                }
            }
        }
    }
    // Bias and epilogue fold into one sweep while the tile is cache-hot:
    // the per-channel bias add, the activation and the fused elementwise
    // merge never become separate passes over a cold output.
    if bias.is_none() && matches!(epilogue, RowEpilogue::None) {
        return;
    }
    for r in 0..rows {
        let b = bias.map_or(0.0, |bv| bv[ch0 + r]);
        let row = &mut dst[r * spatial..(r + 1) * spatial];
        match epilogue {
            RowEpilogue::None => {
                for x in row {
                    *x += b;
                }
            }
            RowEpilogue::Relu => {
                for x in row {
                    *x = (*x + b).max(0.0);
                }
            }
            RowEpilogue::AddRelu(t) => {
                for (x, &tv) in row.iter_mut().zip(&t[r * spatial..(r + 1) * spatial]) {
                    *x = (*x + b + tv).max(0.0);
                }
            }
            RowEpilogue::ReluAdd(t) => {
                for (x, &tv) in row.iter_mut().zip(&t[r * spatial..(r + 1) * spatial]) {
                    *x = (*x + b).max(0.0) + tv;
                }
            }
        }
    }
}

/// Picks the output-row chunk size for forward pool dispatch over the
/// `[N*O, OH*OW]` row view: at least enough rows to clear the per-chunk
/// work floor, at most `max_threads` chunks.
fn conv_rows_per(total_rows: usize, flops_per_row: usize) -> usize {
    let min_rows = MIN_PAR_FLOPS
        .div_ceil(flops_per_row.max(1))
        .clamp(1, total_rows.max(1));
    total_rows.div_ceil(par::max_threads()).max(min_rows)
}

fn conv2d_forward_view(
    input: &Tensor,
    pv: &PackView<'_>,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
    epilogue: Epilogue<'_>,
) -> Result<Tensor> {
    let g = ConvGeom::validate(input, pv, stride, pad)?;
    check_conv_bias(bias, g.o)?;
    let out_dims = [g.n, g.o, g.oh, g.ow];
    epilogue.check(&out_dims)?;
    let mut out = Tensor::zeros(&out_dims);
    let spatial = g.spatial();
    let iv = input.as_slice();
    let bias_v = bias.map(Tensor::as_slice);
    // The fused-add operand shares the output's layout, so every
    // `[rows, OH*OW]` segment of it is addressable by the same row offsets.
    let epi_v = epilogue.operand().map(Tensor::as_slice);
    let rows_per = conv_rows_per(g.n * g.o, 2 * g.ckk() * spatial);
    par::for_each_chunk_mut(
        out.as_mut_slice(),
        rows_per * spatial.max(1),
        |ci, chunk| {
            // A chunk is a span of output rows; split it at sample boundaries
            // so each segment reads exactly one sample.
            let mut row = ci * rows_per;
            let mut off = 0;
            while off < chunk.len() {
                let (ni, ch0) = (row / g.o.max(1), row % g.o.max(1));
                let rows = (g.o - ch0).min((chunk.len() - off) / spatial.max(1));
                let sample = &iv[ni * g.in_sample()..(ni + 1) * g.in_sample()];
                let seg = row * spatial..(row + rows) * spatial;
                let row_epi = match (&epilogue, epi_v) {
                    (Epilogue::None, _) => RowEpilogue::None,
                    (Epilogue::Relu, _) => RowEpilogue::Relu,
                    (Epilogue::AddRelu(_), Some(ev)) => RowEpilogue::AddRelu(&ev[seg]),
                    (Epilogue::ReluAdd(_), Some(ev)) => RowEpilogue::ReluAdd(&ev[seg]),
                    _ => unreachable!("fused-add epilogues carry an operand"),
                };
                forward_sample_rows(
                    sample,
                    pv,
                    &g,
                    &mut chunk[off..off + rows * spatial],
                    ch0,
                    rows,
                    bias_v,
                    row_epi,
                );
                row += rows;
                off += rows * spatial.max(1);
            }
        },
    );
    Ok(out)
}

/// Fused forward over a cached [`PackedConv2dWeight`] — the steady-state
/// layer path: zero heap allocations beyond the returned tensor.
pub(crate) fn conv2d_forward_packed(
    input: &Tensor,
    packed: &PackedConv2dWeight,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
) -> Result<Tensor> {
    conv2d_forward_view(input, &packed.view(), bias, stride, pad, Epilogue::None)
}

/// [`conv2d_forward_packed`] with a fused bias + epilogue applied while the
/// output tiles are hot — the inference fast path.
pub(crate) fn conv2d_forward_packed_fused(
    input: &Tensor,
    packed: &PackedConv2dWeight,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
    epilogue: Epilogue<'_>,
) -> Result<Tensor> {
    conv2d_forward_view(input, &packed.view(), bias, stride, pad, epilogue)
}

/// Fused forward from a raw weight tensor: packs into the arena for this
/// one call (still allocation-free in steady state) and runs the same
/// engine.
#[allow(clippy::too_many_arguments)]
pub(crate) fn conv2d_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
) -> Result<Tensor> {
    let (_, c, _, _, o, kh, kw) = check_conv_shapes(input, weight)?;
    let ckk = c * kh * kw;
    let wv = weight.as_slice();
    let mut panels = arena::take_zeroed(packed_panel_len(o, ckk));
    pack_panels_into(wv, o, ckk, &mut panels);
    let mut transposed = arena::take(ckk * o);
    pack_transposed_into(wv, o, ckk, &mut transposed);
    let pv = PackView {
        weight: wv,
        panels: &panels,
        transposed: &transposed,
        o,
        c,
        kh,
        kw,
    };
    conv2d_forward_view(input, &pv, bias, stride, pad, Epilogue::None)
}

/// Backward kernel for the samples of one chunk. `gi_chunk` is the chunk's
/// `[samples, C*H*W]` grad-input span (zero-initialized), `gwt` the chunk's
/// `[C*KH*KW, O]` transposed weight-gradient accumulator, `gb` its `[O]`
/// bias accumulator (empty when the conv has no bias).
#[allow(clippy::too_many_arguments)]
fn backward_samples(
    first: usize,
    count: usize,
    gi_chunk: &mut [f32],
    gwt: &mut [f32],
    gb: &mut [f32],
    iv: &[f32],
    gv: &[f32],
    pv: &PackView<'_>,
    g: &ConvGeom,
) {
    let spatial = g.spatial();
    let ckk = g.ckk();
    let o = g.o;
    let ins = g.in_sample();
    let one_by_one_s1 = g.path() == ConvPath::MatmulOneByOne && g.stride == 1;
    for local in 0..count {
        let gi = &mut gi_chunk[local * ins..(local + 1) * ins];
        let ni = first + local;
        let sample = &iv[ni * g.in_sample()..(ni + 1) * g.in_sample()];
        let g_n = &gv[ni * g.out_sample()..(ni + 1) * g.out_sample()];
        if one_by_one_s1 {
            // col2im is the identity for 1×1/stride-1: the grad-input
            // sample *is* `Wᵀ @ g_n`, and the patch matrix for the
            // weight gradient is the input sample itself.
            kernel_rows(pv.transposed, g_n, gi, 0, g.c, o, spatial);
            let tile = PANEL_COLS.clamp(1, spatial.max(1));
            for t0 in (0..spatial).step_by(tile) {
                let t = (t0 + tile).min(spatial) - t0;
                let mut g_npt = arena::take(t * o);
                for oi in 0..o {
                    for tt in 0..t {
                        g_npt[tt * o + oi] = g_n[oi * spatial + t0 + tt];
                    }
                }
                // gwᵀ[c, o] += sample[:, t0..t0+t] @ g_npt
                kernel_rows_with(
                    |i, kk| sample[i * spatial + t0 + kk],
                    &g_npt,
                    gwt,
                    0,
                    g.c,
                    t,
                    o,
                );
            }
        } else {
            let tile_rows = g.tile_rows();
            for oh0 in (0..g.oh).step_by(tile_rows.max(1)) {
                let oh1 = (oh0 + tile_rows).min(g.oh);
                let t = (oh1 - oh0) * g.ow;
                let t0 = oh0 * g.ow;
                let mut panel = arena::take(ckk * t);
                im2col_panel(
                    sample, g.c, g.h, g.w, g.kh, g.kw, g.stride, g.pad, oh0, oh1, &mut panel,
                )
                .expect("conv geometry validated before dispatch");
                // Gather the grad-out panel `[O, t]` (contiguous row
                // segments) and its transpose `[t, O]`.
                let mut g_np = arena::take(o * t);
                for oi in 0..o {
                    g_np[oi * t..(oi + 1) * t]
                        .copy_from_slice(&g_n[oi * spatial + t0..oi * spatial + t0 + t]);
                }
                let mut g_npt = arena::take(t * o);
                transpose_pack_into(&g_np, o, t, &mut g_npt);
                // gwᵀ[ckk, o] += panel @ g_npᵀ — row-streaming, panel-local.
                kernel_rows(&panel, &g_npt, gwt, 0, ckk, t, o);
                // grad_cols panel = Wᵀ @ g_np (weight pre-transposed at
                // pack time), folded straight back into the sample.
                let mut gcols = arena::take_zeroed(ckk * t);
                kernel_rows(pv.transposed, &g_np, &mut gcols, 0, ckk, o, t);
                col2im_panel(
                    &gcols, gi, g.c, g.h, g.w, g.kh, g.kw, g.stride, g.pad, oh0, oh1,
                )
                .expect("conv geometry validated before dispatch");
            }
        }
        if !gb.is_empty() {
            for (oi, acc) in gb.iter_mut().enumerate() {
                let s: f32 = g_n[oi * spatial..(oi + 1) * spatial].iter().sum();
                *acc += s;
            }
        }
    }
}

fn conv2d_backward_view(
    input: &Tensor,
    pv: &PackView<'_>,
    grad_out: &Tensor,
    stride: usize,
    pad: usize,
    has_bias: bool,
) -> Result<Conv2dGrads> {
    let g = ConvGeom::validate(input, pv, stride, pad)?;
    let expected = [g.n, g.o, g.oh, g.ow];
    if grad_out.dims() != expected {
        return Err(TensorError::ShapeMismatch {
            expected: expected.to_vec(),
            got: grad_out.dims().to_vec(),
            op: "conv2d_backward (grad_out)",
        });
    }
    let ckk = g.ckk();
    let o = g.o;
    let mut grad_input = Tensor::zeros(&[g.n, g.c, g.h, g.w]);
    let mut grad_weight = Tensor::zeros(&[o, g.c, g.kh, g.kw]);
    let mut grad_bias = has_bias.then(|| Tensor::zeros(&[o]));
    let iv = input.as_slice();
    let gv = grad_out.as_slice();
    let gb_len = if has_bias { o } else { 0 };

    // Backward does ~2x the forward flops per output element; chunk over
    // whole samples so grad-input writes stay disjoint.
    let min_samples = MIN_PAR_FLOPS
        .div_ceil((4 * ckk * g.spatial() * o.max(1)).max(1))
        .clamp(1, g.n.max(1));
    let samples_per = g.n.div_ceil(par::max_threads()).max(min_samples);
    let parts = if grad_input.numel() == 0 {
        1
    } else {
        g.n.div_ceil(samples_per.max(1)).max(1)
    };

    // Per-chunk weight/bias partials live in the caller's arena and fold in
    // chunk order (deterministic for a fixed thread cap).
    let mut gwt_acc = arena::take_zeroed(ckk * o);
    let mut gb_acc = arena::take_zeroed(gb_len);
    if parts <= 1 {
        backward_samples(
            0,
            g.n,
            grad_input.as_mut_slice(),
            &mut gwt_acc,
            &mut gb_acc,
            iv,
            gv,
            pv,
            &g,
        );
    } else {
        let mut gw_parts: Vec<arena::Scratch> = (0..parts - 1)
            .map(|_| arena::take_zeroed(ckk * o))
            .collect();
        let mut gb_parts: Vec<arena::Scratch> =
            (0..parts - 1).map(|_| arena::take_zeroed(gb_len)).collect();
        {
            // (chunk index, grad-input span, gwᵀ partial, bias partial)
            type BwdItem<'a> = (usize, &'a mut [f32], &'a mut [f32], &'a mut [f32]);
            let mut items: Vec<BwdItem<'_>> = Vec::new();
            let mut gi_chunks = grad_input
                .as_mut_slice()
                .chunks_mut(samples_per * g.in_sample().max(1));
            let first_gi = gi_chunks.next().expect("at least one sample per part");
            items.push((0, first_gi, &mut gwt_acc, &mut gb_acc));
            for ((ci, gi), (gw, gb)) in gi_chunks
                .enumerate()
                .zip(gw_parts.iter_mut().zip(gb_parts.iter_mut()))
            {
                items.push((ci + 1, gi, gw, gb));
            }
            par::run(items, |_, (ci, gi, gw, gb)| {
                let count = gi.len() / g.in_sample().max(1);
                backward_samples(ci * samples_per, count, gi, gw, gb, iv, gv, pv, &g);
            });
        }
        for gw in &gw_parts {
            for (x, y) in gwt_acc.iter_mut().zip(gw.iter()) {
                *x += y;
            }
        }
        for gbp in &gb_parts {
            for (x, y) in gb_acc.iter_mut().zip(gbp.iter()) {
                *x += y;
            }
        }
    }

    // The accumulator holds gwᵀ `[ckk, o]`; write it transposed straight
    // into the `[O, C, KH, KW]` gradient tensor.
    let gw_out = grad_weight.as_mut_slice();
    for kk in 0..ckk {
        for i in 0..o {
            gw_out[i * ckk + kk] = gwt_acc[kk * o + i];
        }
    }
    if let Some(gb) = grad_bias.as_mut() {
        gb.as_mut_slice().copy_from_slice(&gb_acc);
    }
    Ok(Conv2dGrads {
        grad_input,
        grad_weight,
        grad_bias,
    })
}

/// Fused backward over a cached [`PackedConv2dWeight`] — the steady-state
/// layer path: zero heap allocations beyond the returned gradients.
pub(crate) fn conv2d_backward_packed(
    input: &Tensor,
    packed: &PackedConv2dWeight,
    grad_out: &Tensor,
    stride: usize,
    pad: usize,
    has_bias: bool,
) -> Result<Conv2dGrads> {
    conv2d_backward_view(input, &packed.view(), grad_out, stride, pad, has_bias)
}

/// Fused backward from a raw weight tensor (packs into the arena for this
/// one call).
pub(crate) fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    stride: usize,
    pad: usize,
    has_bias: bool,
) -> Result<Conv2dGrads> {
    let (_, c, _, _, o, kh, kw) = check_conv_shapes(input, weight)?;
    let ckk = c * kh * kw;
    let wv = weight.as_slice();
    let mut panels = arena::take_zeroed(packed_panel_len(o, ckk));
    pack_panels_into(wv, o, ckk, &mut panels);
    let mut transposed = arena::take(ckk * o);
    pack_transposed_into(wv, o, ckk, &mut transposed);
    let pv = PackView {
        weight: wv,
        panels: &panels,
        transposed: &transposed,
        o,
        c,
        kh,
        kw,
    };
    conv2d_backward_view(input, &pv, grad_out, stride, pad, has_bias)
}

// ---------------------------------------------------------------------------
// Depthwise convolution: per-channel kernels, no cross-channel GEMM.
//
// A depthwise conv's patch matrix would be block-diagonal — im2col wastes
// C× its bandwidth materializing zeros — so the engine never unfolds:
// each `(sample, channel)` output plane is one stencil over its own input
// plane, chunked across the pool like the dense forward's output tiles.
// ---------------------------------------------------------------------------

/// One depthwise output plane: `dst` (`[OH, OW]`, zero-initialized) from one
/// input plane and that channel's `[KH, KW]` taps. Shape-dispatches to the
/// shifted row-axpy stencils where they exist; per output element the adds
/// land in `ki → kj` order, matching the naive oracle.
#[allow(clippy::too_many_arguments)]
fn depthwise_plane_forward(
    src: &[f32],
    taps: &[f32],
    dst: &mut [f32],
    h: usize,
    w: usize,
    oh: usize,
    ow: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) {
    if kh == 3 && kw == 3 && pad == 1 {
        for ki in 0..3usize {
            let (w0, w1, w2) = (taps[3 * ki], taps[3 * ki + 1], taps[3 * ki + 2]);
            for ohi in 0..oh {
                let ih = (ohi * stride + ki) as isize - 1;
                if ih < 0 || ih >= h as isize {
                    continue;
                }
                let in_row = &src[ih as usize * w..(ih as usize + 1) * w];
                let dst_row = &mut dst[ohi * ow..(ohi + 1) * ow];
                if stride == 1 {
                    axpy_shift3(dst_row, in_row, w0, w1, w2);
                } else {
                    axpy_shift3_strided(dst_row, in_row, w0, w1, w2, stride);
                }
            }
        }
        return;
    }
    if kh == 5 && kw == 5 && stride == 1 && pad == 2 {
        for ki in 0..5usize {
            let mut t5 = [0.0f32; 5];
            t5.copy_from_slice(&taps[5 * ki..5 * ki + 5]);
            let lo = 2usize.saturating_sub(ki);
            let hi = (h + 2).saturating_sub(ki).min(h);
            for ohi in lo..hi {
                let ih = ohi + ki - 2;
                axpy_shift5(
                    &mut dst[ohi * w..(ohi + 1) * w],
                    &src[ih * w..(ih + 1) * w],
                    &t5,
                );
            }
        }
        return;
    }
    // Generic geometry: direct per-element taps, still unfold-free.
    for ohi in 0..oh {
        for owi in 0..ow {
            let mut acc = 0.0f32;
            for ki in 0..kh {
                let ih = (ohi * stride + ki) as isize - pad as isize;
                if ih < 0 || ih >= h as isize {
                    continue;
                }
                let in_row = &src[ih as usize * w..(ih as usize + 1) * w];
                for kj in 0..kw {
                    let iw = (owi * stride + kj) as isize - pad as isize;
                    if iw < 0 || iw >= w as isize {
                        continue;
                    }
                    acc += taps[ki * kw + kj] * in_row[iw as usize];
                }
            }
            dst[ohi * ow + owi] = acc;
        }
    }
}

/// Depthwise forward with fused bias + epilogue: input `[N, C, H, W]`,
/// weight `[C, 1, KH, KW]`, output `[N, C, OH, OW]`. Pool-chunked over
/// `(sample, channel)` output planes.
pub(crate) fn conv2d_depthwise_forward(
    input: &Tensor,
    packed: &PackedConv2dWeight,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
    epilogue: Epilogue<'_>,
) -> Result<Tensor> {
    let weight = packed.weight();
    let (n, c, h, w, kh, kw) = check_depthwise_shapes(input, weight)?;
    let oh = conv_output_size(h, kh, stride, pad)?;
    let ow = conv_output_size(w, kw, stride, pad)?;
    check_conv_bias(bias, c)?;
    let out_dims = [n, c, oh, ow];
    epilogue.check(&out_dims)?;
    let mut out = Tensor::zeros(&out_dims);
    let spatial = oh * ow;
    let iv = input.as_slice();
    let wv = weight.as_slice();
    let bias_v = bias.map(Tensor::as_slice);
    let epi_v = epilogue.operand().map(Tensor::as_slice);
    let planes_per = conv_rows_per(n * c, 2 * spatial * kh * kw);
    par::for_each_chunk_mut(
        out.as_mut_slice(),
        planes_per * spatial.max(1),
        |ci, chunk| {
            let mut plane = ci * planes_per;
            let mut off = 0;
            while off + spatial <= chunk.len() && spatial > 0 {
                let ch = plane % c.max(1);
                let src = &iv[plane * h * w..(plane + 1) * h * w];
                let taps = &wv[ch * kh * kw..(ch + 1) * kh * kw];
                let dst = &mut chunk[off..off + spatial];
                depthwise_plane_forward(src, taps, dst, h, w, oh, ow, kh, kw, stride, pad);
                let b = bias_v.map_or(0.0, |bv| bv[ch]);
                let span = plane * spatial..(plane + 1) * spatial;
                match (&epilogue, epi_v) {
                    (Epilogue::None, _) => {
                        if b != 0.0 {
                            for x in dst.iter_mut() {
                                *x += b;
                            }
                        }
                    }
                    (Epilogue::Relu, _) => {
                        for x in dst.iter_mut() {
                            *x = (*x + b).max(0.0);
                        }
                    }
                    (Epilogue::AddRelu(_), Some(ev)) => {
                        for (x, &tv) in dst.iter_mut().zip(&ev[span]) {
                            *x = (*x + b + tv).max(0.0);
                        }
                    }
                    (Epilogue::ReluAdd(_), Some(ev)) => {
                        for (x, &tv) in dst.iter_mut().zip(&ev[span]) {
                            *x = (*x + b).max(0.0) + tv;
                        }
                    }
                    _ => unreachable!("fused-add epilogues carry an operand"),
                }
                plane += 1;
                off += spatial;
            }
        },
    );
    Ok(out)
}

/// Depthwise backward kernel for the samples of one chunk: `gi_chunk` is the
/// chunk's `[samples, C*H*W]` grad-input span (zero-initialized), `gw` the
/// chunk's `[C*KH*KW]` weight-gradient accumulator, `gb` its `[C]` bias
/// accumulator (empty when the conv has no bias).
#[allow(clippy::too_many_arguments)]
fn depthwise_backward_samples(
    first: usize,
    count: usize,
    gi_chunk: &mut [f32],
    gw: &mut [f32],
    gb: &mut [f32],
    iv: &[f32],
    gv: &[f32],
    wv: &[f32],
    dims: (
        usize,
        usize,
        usize,
        usize,
        usize,
        usize,
        usize,
        usize,
        usize,
    ),
) {
    let (c, h, w, oh, ow, kh, kw, stride, pad) = dims;
    let spatial = oh * ow;
    for local in 0..count {
        let ni = first + local;
        for ch in 0..c {
            let src = &iv[(ni * c + ch) * h * w..(ni * c + ch + 1) * h * w];
            let g_p = &gv[(ni * c + ch) * spatial..(ni * c + ch + 1) * spatial];
            let gi_p = &mut gi_chunk[(local * c + ch) * h * w..(local * c + ch + 1) * h * w];
            let taps = &wv[ch * kh * kw..(ch + 1) * kh * kw];
            let gw_c = &mut gw[ch * kh * kw..(ch + 1) * kh * kw];
            for ohi in 0..oh {
                for owi in 0..ow {
                    let g = g_p[ohi * ow + owi];
                    if g == 0.0 {
                        continue;
                    }
                    for ki in 0..kh {
                        let ih = (ohi * stride + ki) as isize - pad as isize;
                        if ih < 0 || ih >= h as isize {
                            continue;
                        }
                        for kj in 0..kw {
                            let iw = (owi * stride + kj) as isize - pad as isize;
                            if iw < 0 || iw >= w as isize {
                                continue;
                            }
                            let idx = ih as usize * w + iw as usize;
                            gi_p[idx] += taps[ki * kw + kj] * g;
                            gw_c[ki * kw + kj] += src[idx] * g;
                        }
                    }
                }
            }
            if !gb.is_empty() {
                let s: f32 = g_p.iter().sum();
                gb[ch] += s;
            }
        }
    }
}

/// Depthwise backward: grad-input `[N, C, H, W]`, grad-weight
/// `[C, 1, KH, KW]`, optional grad-bias `[C]`. Chunked over whole samples;
/// per-chunk weight/bias partials fold in chunk order.
pub(crate) fn conv2d_depthwise_backward(
    input: &Tensor,
    packed: &PackedConv2dWeight,
    grad_out: &Tensor,
    stride: usize,
    pad: usize,
    has_bias: bool,
) -> Result<Conv2dGrads> {
    let weight = packed.weight();
    let (n, c, h, w, kh, kw) = check_depthwise_shapes(input, weight)?;
    let oh = conv_output_size(h, kh, stride, pad)?;
    let ow = conv_output_size(w, kw, stride, pad)?;
    let expected = [n, c, oh, ow];
    if grad_out.dims() != expected {
        return Err(TensorError::ShapeMismatch {
            expected: expected.to_vec(),
            got: grad_out.dims().to_vec(),
            op: "conv2d_depthwise_backward (grad_out)",
        });
    }
    let mut grad_input = Tensor::zeros(&[n, c, h, w]);
    let mut grad_weight = Tensor::zeros(&[c, 1, kh, kw]);
    let mut grad_bias = has_bias.then(|| Tensor::zeros(&[c]));
    let iv = input.as_slice();
    let gv = grad_out.as_slice();
    let wv = weight.as_slice();
    let gb_len = if has_bias { c } else { 0 };
    let dims = (c, h, w, oh, ow, kh, kw, stride, pad);
    let in_sample = c * h * w;

    let min_samples = MIN_PAR_FLOPS
        .div_ceil((4 * c * oh * ow * kh * kw).max(1))
        .clamp(1, n.max(1));
    let samples_per = n.div_ceil(par::max_threads()).max(min_samples);
    let parts = if grad_input.numel() == 0 {
        1
    } else {
        n.div_ceil(samples_per.max(1)).max(1)
    };

    let mut gw_acc = arena::take_zeroed(c * kh * kw);
    let mut gb_acc = arena::take_zeroed(gb_len);
    if parts <= 1 {
        depthwise_backward_samples(
            0,
            n,
            grad_input.as_mut_slice(),
            &mut gw_acc,
            &mut gb_acc,
            iv,
            gv,
            wv,
            dims,
        );
    } else {
        let mut gw_parts: Vec<arena::Scratch> = (0..parts - 1)
            .map(|_| arena::take_zeroed(c * kh * kw))
            .collect();
        let mut gb_parts: Vec<arena::Scratch> =
            (0..parts - 1).map(|_| arena::take_zeroed(gb_len)).collect();
        {
            type BwdItem<'a> = (usize, &'a mut [f32], &'a mut [f32], &'a mut [f32]);
            let mut items: Vec<BwdItem<'_>> = Vec::new();
            let mut gi_chunks = grad_input
                .as_mut_slice()
                .chunks_mut(samples_per * in_sample.max(1));
            let first_gi = gi_chunks.next().expect("at least one sample per part");
            items.push((0, first_gi, &mut gw_acc, &mut gb_acc));
            for ((ci, gi), (gw, gb)) in gi_chunks
                .enumerate()
                .zip(gw_parts.iter_mut().zip(gb_parts.iter_mut()))
            {
                items.push((ci + 1, gi, gw, gb));
            }
            par::run(items, |_, (ci, gi, gw, gb)| {
                let count = gi.len() / in_sample.max(1);
                depthwise_backward_samples(ci * samples_per, count, gi, gw, gb, iv, gv, wv, dims);
            });
        }
        for gw in &gw_parts {
            for (x, y) in gw_acc.iter_mut().zip(gw.iter()) {
                *x += y;
            }
        }
        for gbp in &gb_parts {
            for (x, y) in gb_acc.iter_mut().zip(gbp.iter()) {
                *x += y;
            }
        }
    }

    grad_weight.as_mut_slice().copy_from_slice(&gw_acc);
    if let Some(gb) = grad_bias.as_mut() {
        gb.as_mut_slice().copy_from_slice(&gb_acc);
    }
    Ok(Conv2dGrads {
        grad_input,
        grad_weight,
        grad_bias,
    })
}

// ---------------------------------------------------------------------------
// Elementwise
// ---------------------------------------------------------------------------

fn zip_mut(a: &mut Tensor, b: &Tensor, f: impl Fn(&mut f32, f32) + Sync) {
    let len = a.numel();
    let bv = b.as_slice();
    if len < MIN_PAR_ELEMS {
        for (x, &y) in a.as_mut_slice().iter_mut().zip(bv) {
            f(x, y);
        }
        return;
    }
    let chunk = elem_chunk(len);
    par::for_each_chunk_mut(a.as_mut_slice(), chunk, |ci, ca| {
        let off = ci * chunk;
        let end = off + ca.len();
        for (x, &y) in ca.iter_mut().zip(&bv[off..end]) {
            f(x, y);
        }
    });
}

pub(crate) fn add(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    a.expect_same_shape(b, "add")?;
    let mut out = a.clone();
    zip_mut(&mut out, b, |x, y| *x += y);
    Ok(out)
}

pub(crate) fn sub(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    a.expect_same_shape(b, "sub")?;
    let mut out = a.clone();
    zip_mut(&mut out, b, |x, y| *x -= y);
    Ok(out)
}

pub(crate) fn hadamard(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    a.expect_same_shape(b, "hadamard")?;
    let mut out = a.clone();
    zip_mut(&mut out, b, |x, y| *x *= y);
    Ok(out)
}

pub(crate) fn add_assign(a: &mut Tensor, b: &Tensor) -> Result<()> {
    a.expect_same_shape(b, "add_assign")?;
    zip_mut(a, b, |x, y| *x += y);
    Ok(())
}

pub(crate) fn add_scaled(a: &mut Tensor, b: &Tensor, alpha: f32) -> Result<()> {
    a.expect_same_shape(b, "add_scaled")?;
    zip_mut(a, b, |x, y| *x += alpha * y);
    Ok(())
}

pub(crate) fn scale(a: &Tensor, alpha: f32) -> Tensor {
    unary(a, &|x| alpha * x)
}

pub(crate) fn unary(a: &Tensor, f: &(dyn Fn(f32) -> f32 + Sync)) -> Tensor {
    let len = a.numel();
    if len < MIN_PAR_ELEMS {
        return a.map(f);
    }
    let mut out = a.clone();
    let chunk = elem_chunk(len);
    par::for_each_chunk_mut(out.as_mut_slice(), chunk, |_ci, ca| {
        for x in ca.iter_mut() {
            *x = f(*x);
        }
    });
    out
}

pub(crate) fn add_bias_rows(out: &mut Tensor, bias: &Tensor) -> Result<()> {
    let (n, d) = check_bias_rows(out, bias)?;
    let bv = bias.as_slice();
    if n * d < MIN_PAR_ELEMS {
        return crate::ops::elementwise::add_bias_rows_naive(out, bias);
    }
    let rows_per = n
        .div_ceil(par::max_threads())
        .max(CHUNK_ELEMS.div_ceil(d.max(1)));
    par::for_each_chunk_mut(out.as_mut_slice(), rows_per * d.max(1), |_ci, chunk| {
        for row in chunk.chunks_mut(d.max(1)) {
            for (x, &b) in row.iter_mut().zip(bv) {
                *x += b;
            }
        }
    });
    Ok(())
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

pub(crate) fn channel_mean_var(input: &Tensor) -> Result<(Tensor, Tensor)> {
    let (n, c, h, w) = check_nchw(input, "channel_mean_var")?;
    let count = n * h * w;
    if count == 0 {
        return Err(TensorError::InvalidGeometry {
            reason: "cannot compute channel statistics over an empty batch".into(),
        });
    }
    if n * c * h * w < MIN_PAR_ELEMS {
        return crate::ops::reduce::channel_mean_var_naive(input);
    }
    let plane = h * w;
    let mut mean = Tensor::zeros(&[c]);
    let mut var = Tensor::zeros(&[c]);
    let iv = input.as_slice();
    let channels_per = c.div_ceil(par::max_threads()).max(1);
    par::for_each_chunk_mut2(
        mean.as_mut_slice(),
        var.as_mut_slice(),
        channels_per,
        channels_per,
        |chunk_i, mc, vc| {
            let c0 = chunk_i * channels_per;
            for (local, (m_out, v_out)) in mc.iter_mut().zip(vc.iter_mut()).enumerate() {
                let ci = c0 + local;
                let mut s = 0.0f64;
                for ni in 0..n {
                    let base = (ni * c + ci) * plane;
                    for &x in &iv[base..base + plane] {
                        s += x as f64;
                    }
                }
                let m = (s / count as f64) as f32;
                *m_out = m;
                let mut v = 0.0f64;
                for ni in 0..n {
                    let base = (ni * c + ci) * plane;
                    for &x in &iv[base..base + plane] {
                        let d = x - m;
                        v += (d * d) as f64;
                    }
                }
                *v_out = (v / count as f64) as f32;
            }
        },
    );
    Ok((mean, var))
}

pub(crate) fn channel_sum(input: &Tensor) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw(input, "channel_sum")?;
    if n * c * h * w < MIN_PAR_ELEMS {
        return crate::ops::reduce::channel_sum_naive(input);
    }
    let plane = h * w;
    let mut out = Tensor::zeros(&[c]);
    let iv = input.as_slice();
    let channels_per = c.div_ceil(par::max_threads()).max(1);
    par::for_each_chunk_mut(out.as_mut_slice(), channels_per, |chunk_i, oc| {
        let c0 = chunk_i * channels_per;
        for (local, o) in oc.iter_mut().enumerate() {
            let ci = c0 + local;
            let mut s = 0.0f32;
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                s += iv[base..base + plane].iter().sum::<f32>();
            }
            *o = s;
        }
    });
    Ok(out)
}

pub(crate) fn sum_axis0(input: &Tensor) -> Result<Tensor> {
    if input.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            got: input.rank(),
            op: "sum_axis0",
        });
    }
    let (n, d) = (input.dim(0), input.dim(1));
    if n * d < MIN_PAR_ELEMS {
        return crate::ops::reduce::sum_axis0_naive(input);
    }
    let mut out = Tensor::zeros(&[d]);
    let iv = input.as_slice();
    let cols_per = d.div_ceil(par::max_threads()).max(1);
    par::for_each_chunk_mut(out.as_mut_slice(), cols_per, |chunk_i, oc| {
        let d0 = chunk_i * cols_per;
        for ni in 0..n {
            let row = &iv[ni * d + d0..ni * d + d0 + oc.len()];
            for (o, &x) in oc.iter_mut().zip(row) {
                *o += x;
            }
        }
    });
    Ok(out)
}

pub(crate) fn softmax_rows(logits: &Tensor) -> Result<Tensor> {
    if logits.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            got: logits.rank(),
            op: "softmax_rows",
        });
    }
    let (n, d) = (logits.dim(0), logits.dim(1));
    if n * d < MIN_PAR_ELEMS {
        return crate::ops::reduce::softmax_rows_naive(logits);
    }
    let mut out = logits.clone();
    let rows_per = n.div_ceil(par::max_threads()).max(1);
    par::for_each_chunk_mut(out.as_mut_slice(), rows_per * d.max(1), |_ci, chunk| {
        for row in chunk.chunks_mut(d.max(1)) {
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for x in row.iter_mut() {
                *x = (*x - max).exp();
                sum += *x;
            }
            let inv = 1.0 / sum;
            for x in row.iter_mut() {
                *x *= inv;
            }
        }
    });
    Ok(out)
}

// ---------------------------------------------------------------------------
// BatchNorm channel kernels (sample-chunked elementwise, channel reductions)
// ---------------------------------------------------------------------------

/// Runs `f(plane_range_start_channel, sample_chunk)` over whole-sample chunks
/// of `data` (`[N, C, H, W]` flattened), passing the first sample index.
fn for_sample_chunks(data: &mut [f32], sample_len: usize, f: impl Fn(usize, &mut [f32]) + Sync) {
    let n = data.len().checked_div(sample_len).unwrap_or(0);
    let samples_per = n.div_ceil(par::max_threads()).max(1);
    par::for_each_chunk_mut(data, samples_per * sample_len.max(1), |ci, chunk| {
        f(ci * samples_per, chunk);
    });
}

pub(crate) fn bn_normalize(input: &Tensor, mean: &Tensor, inv_std: &Tensor) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw(input, "bn_normalize")?;
    check_channel_vec(mean, c, "bn_normalize (mean)")?;
    check_channel_vec(inv_std, c, "bn_normalize (inv_std)")?;
    if n * c * h * w < MIN_PAR_ELEMS {
        return crate::ops::channel::bn_normalize_naive(input, mean, inv_std);
    }
    let plane = h * w;
    let mut out = input.clone();
    let mv = mean.as_slice();
    let sv = inv_std.as_slice();
    for_sample_chunks(out.as_mut_slice(), c * plane, |_first, chunk| {
        for sample in chunk.chunks_mut(c * plane) {
            for (ci, ch) in sample.chunks_mut(plane).enumerate() {
                let m = mv[ci];
                let is = sv[ci];
                for x in ch.iter_mut() {
                    *x = (*x - m) * is;
                }
            }
        }
    });
    Ok(out)
}

pub(crate) fn channel_affine(input: &Tensor, scale: &Tensor, shift: &Tensor) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw(input, "channel_affine")?;
    check_channel_vec(scale, c, "channel_affine (scale)")?;
    check_channel_vec(shift, c, "channel_affine (shift)")?;
    if n * c * h * w < MIN_PAR_ELEMS {
        return crate::ops::channel::channel_affine_naive(input, scale, shift);
    }
    let plane = h * w;
    let mut out = input.clone();
    let g = scale.as_slice();
    let b = shift.as_slice();
    for_sample_chunks(out.as_mut_slice(), c * plane, |_first, chunk| {
        for sample in chunk.chunks_mut(c * plane) {
            for (ci, ch) in sample.chunks_mut(plane).enumerate() {
                for x in ch.iter_mut() {
                    *x = g[ci] * *x + b[ci];
                }
            }
        }
    });
    Ok(out)
}

pub(crate) fn bn_backward_reduce(grad_out: &Tensor, x_hat: &Tensor) -> Result<(Tensor, Tensor)> {
    let (n, c, h, w) = check_nchw(grad_out, "bn_backward_reduce")?;
    grad_out.expect_same_shape(x_hat, "bn_backward_reduce")?;
    if n * c * h * w < MIN_PAR_ELEMS {
        return crate::ops::channel::bn_backward_reduce_naive(grad_out, x_hat);
    }
    let plane = h * w;
    let mut sum_dy = Tensor::zeros(&[c]);
    let mut sum_dy_xhat = Tensor::zeros(&[c]);
    let gv = grad_out.as_slice();
    let xv = x_hat.as_slice();
    let channels_per = c.div_ceil(par::max_threads()).max(1);
    par::for_each_chunk_mut2(
        sum_dy.as_mut_slice(),
        sum_dy_xhat.as_mut_slice(),
        channels_per,
        channels_per,
        |chunk_i, dc, dxc| {
            let c0 = chunk_i * channels_per;
            for (local, (d_out, dx_out)) in dc.iter_mut().zip(dxc.iter_mut()).enumerate() {
                let ci = c0 + local;
                for ni in 0..n {
                    let base = (ni * c + ci) * plane;
                    let mut s = 0.0f32;
                    let mut sx = 0.0f32;
                    for off in base..base + plane {
                        s += gv[off];
                        sx += gv[off] * xv[off];
                    }
                    *d_out += s;
                    *dx_out += sx;
                }
            }
        },
    );
    Ok((sum_dy, sum_dy_xhat))
}

pub(crate) fn bn_input_grad(
    grad_out: &Tensor,
    x_hat: &Tensor,
    gamma: &Tensor,
    inv_std: &Tensor,
    sum_dy: &Tensor,
    sum_dy_xhat: &Tensor,
) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw(grad_out, "bn_input_grad")?;
    grad_out.expect_same_shape(x_hat, "bn_input_grad")?;
    check_channel_vec(gamma, c, "bn_input_grad (gamma)")?;
    check_channel_vec(inv_std, c, "bn_input_grad (inv_std)")?;
    check_channel_vec(sum_dy, c, "bn_input_grad (sum_dy)")?;
    check_channel_vec(sum_dy_xhat, c, "bn_input_grad (sum_dy_xhat)")?;
    if n * c * h * w < MIN_PAR_ELEMS {
        return crate::ops::channel::bn_input_grad_naive(
            grad_out,
            x_hat,
            gamma,
            inv_std,
            sum_dy,
            sum_dy_xhat,
        );
    }
    let plane = h * w;
    let count = (n * plane) as f32;
    let mut grad_in = grad_out.clone();
    let xv = x_hat.as_slice();
    let g = gamma.as_slice();
    let is = inv_std.as_slice();
    let dv = sum_dy.as_slice();
    let dxv = sum_dy_xhat.as_slice();
    let sample_len = c * plane;
    let samples_per = n.div_ceil(par::max_threads()).max(1);
    par::for_each_chunk_mut(
        grad_in.as_mut_slice(),
        samples_per * sample_len.max(1),
        |ci, chunk| {
            let first = ci * samples_per;
            for (local, sample) in chunk.chunks_mut(sample_len).enumerate() {
                let ni = first + local;
                for (cidx, ch) in sample.chunks_mut(plane).enumerate() {
                    let mean_dy = dv[cidx] / count;
                    let mean_dy_xhat = dxv[cidx] / count;
                    let scale = g[cidx] * is[cidx];
                    let base = (ni * c + cidx) * plane;
                    for (off, x) in ch.iter_mut().enumerate() {
                        *x = scale * (*x - mean_dy - xv[base + off] * mean_dy_xhat);
                    }
                }
            }
        },
    );
    Ok(grad_in)
}

// ---------------------------------------------------------------------------
// Pooling
// ---------------------------------------------------------------------------

pub(crate) fn maxpool2d_forward(input: &Tensor, k: usize) -> Result<(Tensor, MaxPoolIndices)> {
    let (n, c, h, w) = check_nchw(input, "maxpool2d")?;
    let oh = conv_output_size(h, k, k, 0)?;
    let ow = conv_output_size(w, k, k, 0)?;
    if n * c * h * w < MIN_PAR_ELEMS {
        return crate::ops::pool::maxpool2d_forward_naive(input, k);
    }
    let planes = n * c;
    let out_plane = oh * ow;
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let mut winners = vec![0usize; planes * out_plane];
    let iv = input.as_slice();
    let planes_per = planes.div_ceil(par::max_threads()).max(1);
    par::for_each_chunk_mut2(
        out.as_mut_slice(),
        &mut winners,
        planes_per * out_plane.max(1),
        planes_per * out_plane.max(1),
        |chunk_i, oc, wc| {
            let p0 = chunk_i * planes_per;
            for (local, (op, wp)) in oc
                .chunks_mut(out_plane.max(1))
                .zip(wc.chunks_mut(out_plane.max(1)))
                .enumerate()
            {
                let plane_base = (p0 + local) * h * w;
                let mut oidx = 0usize;
                for ohi in 0..oh {
                    for owi in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_off = plane_base;
                        for ki in 0..k {
                            let ih = ohi * k + ki;
                            for kj in 0..k {
                                let iw = owi * k + kj;
                                let off = plane_base + ih * w + iw;
                                if iv[off] > best {
                                    best = iv[off];
                                    best_off = off;
                                }
                            }
                        }
                        op[oidx] = best;
                        wp[oidx] = best_off;
                        oidx += 1;
                    }
                }
            }
        },
    );
    Ok((
        out,
        MaxPoolIndices {
            winners,
            input_dims: vec![n, c, h, w],
        },
    ))
}

/// Inference max pooling: no argmax bookkeeping, so the only allocation is
/// the pooled output tensor (the training variant also builds a
/// full-output-size winner index).
pub(crate) fn maxpool2d_eval(input: &Tensor, k: usize) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw(input, "maxpool2d")?;
    let oh = conv_output_size(h, k, k, 0)?;
    let ow = conv_output_size(w, k, k, 0)?;
    if n * c * h * w < MIN_PAR_ELEMS {
        return crate::ops::pool::maxpool2d_eval_naive(input, k);
    }
    let planes = n * c;
    let out_plane = oh * ow;
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let iv = input.as_slice();
    let planes_per = planes.div_ceil(par::max_threads()).max(1);
    par::for_each_chunk_mut(
        out.as_mut_slice(),
        planes_per * out_plane.max(1),
        |chunk_i, oc| {
            let p0 = chunk_i * planes_per;
            for (local, op) in oc.chunks_mut(out_plane.max(1)).enumerate() {
                let plane_base = (p0 + local) * h * w;
                let mut oidx = 0usize;
                for ohi in 0..oh {
                    for owi in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        for ki in 0..k {
                            let ih = ohi * k + ki;
                            for kj in 0..k {
                                let off = plane_base + ih * w + owi * k + kj;
                                best = best.max(iv[off]);
                            }
                        }
                        op[oidx] = best;
                        oidx += 1;
                    }
                }
            }
        },
    );
    Ok(out)
}

pub(crate) fn maxpool2d_backward(grad_out: &Tensor, indices: &MaxPoolIndices) -> Result<Tensor> {
    if grad_out.numel() != indices.winners.len() {
        return Err(TensorError::LengthMismatch {
            expected: indices.winners.len(),
            got: grad_out.numel(),
            op: "maxpool2d_backward",
        });
    }
    let dims = &indices.input_dims;
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    if n * c * h * w < MIN_PAR_ELEMS {
        return crate::ops::pool::maxpool2d_backward_naive(grad_out, indices);
    }
    let planes = n * c;
    let in_plane = h * w;
    let out_plane = grad_out.numel().checked_div(planes).unwrap_or(0);
    let mut grad_input = Tensor::zeros(dims);
    let gv = grad_out.as_slice();
    let wv = &indices.winners;
    let planes_per = planes.div_ceil(par::max_threads()).max(1);
    // Winner offsets stay inside their own plane, so chunking the input
    // gradient by whole planes gives disjoint writes.
    par::for_each_chunk_mut(
        grad_input.as_mut_slice(),
        planes_per * in_plane.max(1),
        |chunk_i, gi_chunk| {
            let p0 = chunk_i * planes_per;
            let in_base = p0 * in_plane;
            let out_lo = p0 * out_plane;
            let out_hi = (out_lo + gi_chunk.len() / in_plane.max(1) * out_plane).min(gv.len());
            for (&win, &g) in wv[out_lo..out_hi].iter().zip(&gv[out_lo..out_hi]) {
                gi_chunk[win - in_base] += g;
            }
        },
    );
    Ok(grad_input)
}

pub(crate) fn avgpool2d_global_forward(input: &Tensor) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw(input, "avgpool2d_global")?;
    if n * c * h * w < MIN_PAR_ELEMS {
        return crate::ops::pool::avgpool2d_global_forward_naive(input);
    }
    let mut out = Tensor::zeros(&[n, c]);
    let iv = input.as_slice();
    let area = (h * w) as f32;
    let plane = h * w;
    let planes_per = (n * c).div_ceil(par::max_threads()).max(1);
    par::for_each_chunk_mut(out.as_mut_slice(), planes_per, |chunk_i, oc| {
        let p0 = chunk_i * planes_per;
        for (local, o) in oc.iter_mut().enumerate() {
            let base = (p0 + local) * plane;
            let s: f32 = iv[base..base + plane].iter().sum();
            *o = s / area;
        }
    });
    Ok(out)
}

pub(crate) fn avgpool2d_global_backward(grad_out: &Tensor, input_dims: &[usize]) -> Result<Tensor> {
    if input_dims.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            got: input_dims.len(),
            op: "avgpool2d_global_backward",
        });
    }
    let (n, c, h, w) = (input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
    if grad_out.dims() != [n, c] {
        return Err(TensorError::ShapeMismatch {
            expected: vec![n, c],
            got: grad_out.dims().to_vec(),
            op: "avgpool2d_global_backward",
        });
    }
    if n * c * h * w < MIN_PAR_ELEMS {
        return crate::ops::pool::avgpool2d_global_backward_naive(grad_out, input_dims);
    }
    let mut grad_input = Tensor::zeros(input_dims);
    let gv = grad_out.as_slice();
    let area = (h * w) as f32;
    let plane = h * w;
    let planes_per = (n * c).div_ceil(par::max_threads()).max(1);
    par::for_each_chunk_mut(
        grad_input.as_mut_slice(),
        planes_per * plane.max(1),
        |chunk_i, chunk| {
            let p0 = chunk_i * planes_per;
            for (local, gp) in chunk.chunks_mut(plane.max(1)).enumerate() {
                let g = gv[p0 + local] / area;
                for x in gp.iter_mut() {
                    *x = g;
                }
            }
        },
    );
    Ok(grad_input)
}
