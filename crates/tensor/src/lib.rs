//! Dense `f32` tensor substrate for the TBNet reproduction.
//!
//! This crate provides the minimal-but-complete numerical kernel set needed to
//! train and run the convolutional networks used by the TBNet paper
//! (DAC 2024): an owned, contiguous, row-major [`Tensor`] type plus forward
//! *and* backward kernels for matrix multiplication, 2-D convolution
//! (im2col-based), pooling and reductions.
//!
//! The crate is deliberately dependency-light: everything is implemented from
//! scratch on `Vec<f32>` so that the higher layers (`tbnet-nn`, `tbnet-core`)
//! control exactly what arithmetic runs where — which is what the TEE cost
//! model in `tbnet-tee` accounts for.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), tbnet_tensor::TensorError> {
//! use tbnet_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
//! # Ok(())
//! # }
//! ```

// Unsafe is denied everywhere except audited points that carry a local
// `#[allow]` and a SAFETY argument: the persistent thread pool's scoped-task
// transmute in `par` (the same trick `std::thread::scope` performs
// internally) and the explicit-SIMD microkernels in `ops::parallel` and
// `ops::qconv`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod shape;
mod tensor;

pub mod arena;
pub mod backend;
pub mod init;
pub mod ops;
pub mod par;

pub use backend::{Backend, BackendKind, Naive, Parallel};
pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, TensorError>;
