//! ResNet-20 architecture builders (He et al., CIFAR variant).
//!
//! A ResNet-20 is a 3×3 stem followed by three stages of three basic blocks
//! (two 3×3 convolutions each) and a global-average-pool + linear head:
//! 19 convolutions + 1 linear = 20 weight layers.
//!
//! Identity skips connect each block's input to its output whenever the
//! shapes match (stride 1, equal channels). The stage-entry blocks of stages
//! 2 and 3 downsample (stride 2) and double the width; their shortcut is
//! omitted (a common lightweight variant of option-A shortcuts — documented
//! in `DESIGN.md`). Residually-connected units share a pruning *group* so the
//! TBNet channel masks keep the additions shape-consistent.

use crate::{HeadSpec, ModelSpec, UnitSpec};

/// Builds a CIFAR-style ResNet spec with the given stage widths and blocks
/// per stage. `widths.len()` defines the number of stages; stages after the
/// first start with a stride-2 downsampling block.
///
/// # Panics
///
/// Panics if `widths` is empty or `blocks_per_stage` is zero.
pub fn resnet_from_stages(
    name: &str,
    widths: &[usize],
    blocks_per_stage: usize,
    classes: usize,
    in_channels: usize,
    input_hw: (usize, usize),
) -> ModelSpec {
    assert!(!widths.is_empty(), "need at least one stage");
    assert!(blocks_per_stage > 0, "need at least one block per stage");

    let mut units: Vec<UnitSpec> = Vec::new();
    let mut next_group = 0usize;
    let mut fresh_group = || {
        let g = next_group;
        next_group += 1;
        g
    };

    // Stem: one 3×3 conv at the first stage's width. Its output joins the
    // stage-1 residual chain, so it shares that chain's group.
    let stage1_chain_group = fresh_group();
    units.push(UnitSpec::conv3x3(widths[0], stage1_chain_group));

    // Index of the unit whose output is the current block input.
    let mut block_input_unit = 0usize;
    let mut in_width = widths[0];

    for (s, &width) in widths.iter().enumerate() {
        // The group shared by every residual endpoint in this stage.
        let mut chain_group = if s == 0 {
            stage1_chain_group
        } else {
            // Allocated lazily when the first block of the stage is emitted.
            usize::MAX
        };
        for b in 0..blocks_per_stage {
            let downsample = s > 0 && b == 0;
            let stride = if downsample { 2 } else { 1 };
            // conv1: free-standing group (internal channels prune freely).
            let conv1 = UnitSpec::conv3x3(width, fresh_group()).with_stride(stride);
            units.push(conv1);
            // conv2: stage chain group; identity skip when shapes allow.
            if chain_group == usize::MAX {
                chain_group = fresh_group();
            }
            let mut conv2 = UnitSpec::conv3x3(width, chain_group);
            let can_skip = !downsample && in_width == width;
            if can_skip {
                conv2 = conv2.with_skip_from(block_input_unit);
            }
            units.push(conv2);
            block_input_unit = units.len() - 1;
            in_width = width;
        }
    }

    ModelSpec {
        name: name.to_string(),
        in_channels,
        input_hw,
        classes,
        units,
        head: HeadSpec::GapLinear,
    }
}

/// Builds a bottleneck-residual spec: a 3×3 stem, then per stage `blocks`
/// blocks of `1×1 reduce (w/2) → 3×3 → 1×1 expand (w)`, with an identity
/// skip around every block whose shapes match (stride 1, equal widths).
/// Stages after the first enter with a stride-2 downsampling reduce and no
/// shortcut, like [`resnet_from_stages`].
///
/// This is the geometry where the fused inference path pays off most: the
/// 1×1 convolutions do little arithmetic per activation, so the separate
/// BN/ReLU/skip-merge sweeps of the training-shaped forward are a large
/// fraction of its runtime.
///
/// # Panics
///
/// Panics if `widths` is empty, any width is odd, or `blocks` is zero.
pub fn bottleneck_from_stages(
    name: &str,
    widths: &[usize],
    blocks: usize,
    classes: usize,
    in_channels: usize,
    input_hw: (usize, usize),
) -> ModelSpec {
    assert!(!widths.is_empty(), "need at least one stage");
    assert!(blocks > 0, "need at least one block per stage");
    assert!(
        widths.iter().all(|w| w % 2 == 0),
        "bottleneck widths must be even (mid width is w/2)"
    );

    let mut units: Vec<UnitSpec> = Vec::new();
    let mut next_group = 0usize;
    let mut fresh_group = || {
        let g = next_group;
        next_group += 1;
        g
    };

    // Stem joins the stage-1 residual chain (its output feeds the first
    // block's shortcut), so it shares that chain's pruning group.
    let stage1_chain = fresh_group();
    units.push(UnitSpec::conv3x3(widths[0], stage1_chain));
    let mut block_input_unit = 0usize;

    for (s, &width) in widths.iter().enumerate() {
        let chain = if s == 0 { stage1_chain } else { fresh_group() };
        let mid = width / 2;
        for b in 0..blocks {
            let downsample = s > 0 && b == 0;
            let stride = if downsample { 2 } else { 1 };
            units.push(UnitSpec {
                out_channels: mid,
                kernel: 1,
                stride,
                pad: 0,
                pool_after: None,
                group: fresh_group(),
                skip_from: None,
                depthwise: false,
            });
            units.push(UnitSpec::conv3x3(mid, fresh_group()));
            let mut expand = UnitSpec {
                out_channels: width,
                kernel: 1,
                stride: 1,
                pad: 0,
                pool_after: None,
                group: chain,
                skip_from: None,
                depthwise: false,
            };
            if !downsample {
                expand = expand.with_skip_from(block_input_unit);
            }
            units.push(expand);
            block_input_unit = units.len() - 1;
        }
    }

    ModelSpec {
        name: name.to_string(),
        in_channels,
        input_hw,
        classes,
        units,
        head: HeadSpec::GapLinear,
    }
}

/// The paper's ResNet-20 at CIFAR scale: widths (16, 32, 64), three blocks
/// per stage, 32×32 inputs.
pub fn resnet20(classes: usize, in_channels: usize, input_hw: (usize, usize)) -> ModelSpec {
    resnet_from_stages("ResNet20", &[16, 32, 64], 3, classes, in_channels, input_hw)
}

/// Width-scaled ResNet-20 used by the experiment harness (16×16 inputs,
/// widths 8/16/32). Same topology — 19 convolutions, identity skips, GAP
/// head — at a quarter of the width.
pub fn resnet20_tiny(classes: usize, in_channels: usize, input_hw: (usize, usize)) -> ModelSpec {
    resnet_from_stages(
        "ResNet20-t",
        &[8, 16, 32],
        3,
        classes,
        in_channels,
        input_hw,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet20_has_20_weight_layers() {
        let spec = resnet20(10, 3, (32, 32));
        assert_eq!(spec.units.len(), 19); // stem + 3 stages × 3 blocks × 2
        assert!(spec.trace().is_ok());
        assert_eq!(spec.head, HeadSpec::GapLinear);
        assert_eq!(spec.head_in_features().unwrap(), 64);
    }

    #[test]
    fn downsampling_halves_spatial_twice() {
        let spec = resnet20(10, 3, (32, 32));
        let t = spec.trace().unwrap();
        assert_eq!(t.last().unwrap().out_hw, (8, 8));
        assert_eq!(t.last().unwrap().out_channels, 64);
    }

    #[test]
    fn skip_placement() {
        let spec = resnet20(10, 3, (32, 32));
        let skips: Vec<Option<usize>> = spec.units.iter().map(|u| u.skip_from).collect();
        // Stem has no skip.
        assert_eq!(skips[0], None);
        // Stage 1: all three blocks skip (stride 1, equal widths).
        assert_eq!(skips[2], Some(0)); // block 1 conv2 ← stem
        assert_eq!(skips[4], Some(2));
        assert_eq!(skips[6], Some(4));
        // Stage 2: first block downsumples → no skip; later blocks skip.
        assert_eq!(skips[8], None);
        assert_eq!(skips[10], Some(8));
        assert_eq!(skips[12], Some(10));
        // Stage 3 mirrors stage 2.
        assert_eq!(skips[14], None);
        assert_eq!(skips[16], Some(14));
        assert_eq!(skips[18], Some(16));
    }

    #[test]
    fn residual_endpoints_share_groups() {
        let spec = resnet20(10, 3, (32, 32));
        // Stage-1 chain: stem and all conv2 units of stage 1.
        let g = spec.units[0].group;
        assert_eq!(spec.units[2].group, g);
        assert_eq!(spec.units[4].group, g);
        assert_eq!(spec.units[6].group, g);
        // Stage-2 chain is a different group shared by its conv2 units.
        let g2 = spec.units[8].group;
        assert_ne!(g2, g);
        assert_eq!(spec.units[10].group, g2);
        assert_eq!(spec.units[12].group, g2);
        // conv1 units have their own groups.
        assert_ne!(spec.units[1].group, g);
    }

    #[test]
    fn without_skips_still_traces() {
        let spec = resnet20_tiny(10, 3, (16, 16)).without_skips();
        assert!(spec.trace().is_ok());
        assert!(spec.units.iter().all(|u| u.skip_from.is_none()));
    }

    #[test]
    fn tiny_variant_shapes() {
        let spec = resnet20_tiny(100, 3, (16, 16));
        let t = spec.trace().unwrap();
        assert_eq!(t.last().unwrap().out_hw, (4, 4));
        assert_eq!(spec.head_in_features().unwrap(), 32);
        assert_eq!(spec.classes, 100);
    }

    #[test]
    fn group_count_is_consistent() {
        let spec = resnet20(10, 3, (32, 32));
        // 3 chain groups + 9 conv1 groups = 12.
        assert_eq!(spec.group_count(), 12);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_blocks_panics() {
        resnet_from_stages("x", &[8], 0, 10, 3, (16, 16));
    }

    #[test]
    fn bottleneck_traces_and_skips() {
        let spec = bottleneck_from_stages("bn", &[32, 64], 2, 10, 3, (32, 32));
        // Stem + 2 stages × 2 blocks × 3 convs.
        assert_eq!(spec.units.len(), 13);
        let t = spec.trace().unwrap();
        assert_eq!(t.last().unwrap().out_channels, 64);
        assert_eq!(t.last().unwrap().out_hw, (16, 16));
        let skips: Vec<Option<usize>> = spec.units.iter().map(|u| u.skip_from).collect();
        // Stage 1: both blocks skip (stem → expand 3 → expand 6); stage 2's
        // entry block downsamples (no skip), its second block skips.
        assert_eq!(skips[3], Some(0));
        assert_eq!(skips[6], Some(3));
        assert_eq!(skips[9], None);
        assert_eq!(skips[12], Some(9));
        // Kernel mix: 1×1 reduce/expand around each 3×3.
        assert_eq!(spec.units[1].kernel, 1);
        assert_eq!(spec.units[2].kernel, 3);
        assert_eq!(spec.units[3].kernel, 1);
        // Residual endpoints share the chain group per stage.
        assert_eq!(spec.units[3].group, spec.units[0].group);
        assert_eq!(spec.units[6].group, spec.units[0].group);
        assert_eq!(spec.units[9].group, spec.units[12].group);
        assert_ne!(spec.units[9].group, spec.units[0].group);
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn bottleneck_odd_width_panics() {
        bottleneck_from_stages("x", &[9], 1, 10, 3, (16, 16));
    }
}
